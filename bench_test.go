package kagen

// One testing.B benchmark per figure of the paper's evaluation (§8),
// scaled to laptop sizes, plus the ablation benches of DESIGN.md §7.
// The benchmark bodies live in internal/benchreg so that cmd/benchsuite
// can execute the identical code with testing.Benchmark and record the
// ns/op, B/op and allocs/op trajectory in BENCH_kagen.json; the full
// parameter sweeps that regenerate each figure's series also live in
// cmd/benchsuite (internal/experiments).

import (
	"testing"

	"repro/internal/benchreg"
)

// --- Figure 6: sequential Erdős–Rényi, KaGen vs Batagelj–Brandes ---

func BenchmarkFig06SeqGNM(b *testing.B) { benchreg.Group(b, "Fig06SeqGNM") }

// --- Figures 7/8: G(n,m) weak and strong scaling (per-PE chunk cost) ---

func BenchmarkFig07WeakGNM(b *testing.B)   { benchreg.Group(b, "Fig07WeakGNM") }
func BenchmarkFig08StrongGNM(b *testing.B) { benchreg.Group(b, "Fig08StrongGNM") }

// --- Figure 9: 2-D RGG, KaGen vs Holtgrewe et al. ---

func BenchmarkFig09RGG2DComparison(b *testing.B) { benchreg.Group(b, "Fig09RGG2DComparison") }

// --- Figures 10/11: RGG weak and strong scaling ---

func BenchmarkFig10WeakRGG(b *testing.B)   { benchreg.Group(b, "Fig10WeakRGG") }
func BenchmarkFig11StrongRGG(b *testing.B) { benchreg.Group(b, "Fig11StrongRGG") }

// --- Figures 12/13: RDG weak and strong scaling ---

func BenchmarkFig12WeakRDG(b *testing.B)   { benchreg.Group(b, "Fig12WeakRDG") }
func BenchmarkFig13StrongRDG(b *testing.B) { benchreg.Group(b, "Fig13StrongRDG") }

// --- Figure 14: shared-memory RHG race ---

func BenchmarkFig14RHGRace(b *testing.B) { benchreg.Group(b, "Fig14RHGRace") }

// --- Figures 15/16: RHG weak and strong scaling ---

func BenchmarkFig15WeakRHG(b *testing.B)   { benchreg.Group(b, "Fig15WeakRHG") }
func BenchmarkFig16StrongRHG(b *testing.B) { benchreg.Group(b, "Fig16StrongRHG") }

// --- Figures 17/18: R-MAT weak and strong scaling ---

func BenchmarkFig17WeakRMAT(b *testing.B)   { benchreg.Group(b, "Fig17WeakRMAT") }
func BenchmarkFig18StrongRMAT(b *testing.B) { benchreg.Group(b, "Fig18StrongRMAT") }

// --- Undirected triangular streamers (no per-pair buffering) ---

func BenchmarkStreamUndirected(b *testing.B) { benchreg.Group(b, "StreamUndirected") }

// --- Cell-index optimization (flat cell index + O(log P) setup) ---

func BenchmarkCellIndex(b *testing.B) { benchreg.Group(b, "CellIndex") }

// --- Ablations (DESIGN.md §7) ---

func BenchmarkAblationBinomial(b *testing.B)    { benchreg.Group(b, "AblationBinomial") }
func BenchmarkAblationRHGTrig(b *testing.B)     { benchreg.Group(b, "AblationRHGTrig") }
func BenchmarkAblationGNPSkip(b *testing.B)     { benchreg.Group(b, "AblationGNPSkip") }
func BenchmarkAblationRGGCell(b *testing.B)     { benchreg.Group(b, "AblationRGGCell") }
func BenchmarkAblationSRHGGamma(b *testing.B)   { benchreg.Group(b, "AblationSRHGGamma") }
func BenchmarkAblationMorton(b *testing.B)      { benchreg.Group(b, "AblationMorton") }
func BenchmarkAblationRHGOutward(b *testing.B)  { benchreg.Group(b, "AblationRHGOutward") }
func BenchmarkAblationStreamSetup(b *testing.B) { benchreg.Group(b, "AblationStreamSetup") }

// --- Delaunay insert hot path (adaptive predicates + arenas) ---

func BenchmarkDelaunay(b *testing.B) { benchreg.Group(b, "Delaunay") }

// --- Observability hot-path cost (disabled paths must be alloc-free) ---

func BenchmarkObs(b *testing.B) { benchreg.Group(b, "Obs") }
