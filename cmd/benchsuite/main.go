// Command benchsuite drives the paper's evaluation at laptop scale.
//
// In its default mode it regenerates every figure of §8 (Figs. 6-18) as
// CSV-like series tables; see internal/experiments for the sweep
// definitions and EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
//
// With -bench it instead executes the per-configuration micro-benchmarks
// of bench_test.go (shared via internal/benchreg) through
// testing.Benchmark and writes the measured ns/op, B/op and allocs/op per
// benchmark as JSON — the file committed as BENCH_kagen.json, which pins
// the repository's performance trajectory. -checkjson validates the shape
// of such a file (used by CI to keep the format honest).
//
// -compare diffs two such files (typically the committed baseline against
// a fresh -bench run) on ns/op and allocs/op and exits non-zero when any
// benchmark regressed beyond the threshold — the CI regression gate.
//
// Usage:
//
//	benchsuite [-exp all|fig06|fig07|...|fig18] [-quick] [-seed N]
//	benchsuite -bench [-benchtime 0.5s] [-quick] [-o BENCH_kagen.json]
//	benchsuite -checkjson BENCH_kagen.json
//	benchsuite -compare [-threshold pct] [-allocs-only] old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/benchreg"
	"repro/internal/experiments"
)

// benchFile is the JSON shape written by -bench and verified by -checkjson.
type benchFile struct {
	Schema     string       `json:"schema"`
	GoOS       string       `json:"goos"`
	GoArch     string       `json:"goarch"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name     string  `json:"name"`
	N        int     `json:"n"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

const benchSchema = "kagen-bench/v1"

func main() {
	testing.Init() // registers test.benchtime before flag.Parse
	var (
		quick      = flag.Bool("quick", false, "smaller sizes, fewer points per series; with -bench, one iteration per benchmark")
		seed       = flag.Uint64("seed", 42, "instance seed")
		exp        = flag.String("exp", "all", "experiment to run (all, fig06..fig18)")
		bench      = flag.Bool("bench", false, "run the micro-benchmark registry and write JSON instead of the figure sweeps")
		benchtime  = flag.String("benchtime", "0.5s", "per-benchmark measuring time for -bench (testing.B semantics, e.g. 1s or 100x)")
		out        = flag.String("o", "", "output file for -bench JSON (default: stdout)")
		checkjson  = flag.String("checkjson", "", "validate the shape of an existing bench JSON file and exit")
		compare    = flag.Bool("compare", false, "compare two bench JSON files (old.json new.json) and fail on regressions")
		threshold  = flag.Float64("threshold", 10, "max allowed regression in percent for -compare")
		allocsOnly = flag.Bool("allocs-only", false, "with -compare, gate only on allocs/op (timings are noisy on shared runners)")
	)
	flag.Parse()

	switch {
	case *compare:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("benchsuite: -compare needs exactly two files, got %d", flag.NArg()))
		}
		if err := compareBenchFiles(flag.Arg(0), flag.Arg(1), *threshold, *allocsOnly); err != nil {
			fatal(err)
		}
	case *checkjson != "":
		if err := checkBenchFile(*checkjson); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid %s file\n", *checkjson, benchSchema)
	case *bench:
		if err := runBench(*quick, *benchtime, *out); err != nil {
			fatal(err)
		}
	default:
		err := experiments.Run(*exp, experiments.Config{
			Quick: *quick,
			Seed:  *seed,
			Out:   os.Stdout,
		})
		if err != nil {
			fatal(err)
		}
	}
}

// runBench executes every registered leaf benchmark with testing.Benchmark
// and writes the results as a benchFile.
func runBench(quick bool, benchtime, out string) error {
	if quick {
		benchtime = "1x"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchsuite: bad -benchtime: %w", err)
	}
	file := benchFile{Schema: benchSchema, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, c := range benchreg.All() {
		r := testing.Benchmark(c.F)
		file.Benchmarks = append(file.Benchmarks, benchEntry{
			Name:     c.Name,
			N:        r.N,
			NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BOp:      r.AllocedBytesPerOp(),
			AllocsOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-48s %12.0f ns/op %12d B/op %9d allocs/op\n",
			c.Name, file.Benchmarks[len(file.Benchmarks)-1].NsOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// checkBenchFile validates that a JSON file has the benchFile shape: the
// schema marker, at least one benchmark, and sane fields on every entry.
func checkBenchFile(path string) error {
	_, err := loadBenchFile(path)
	return err
}

// loadBenchFile reads, parses and shape-validates a bench JSON file.
func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file benchFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if file.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, file.Schema, benchSchema)
	}
	if len(file.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	seen := make(map[string]bool, len(file.Benchmarks))
	for i, b := range file.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("%s: benchmark %d has no name", path, i)
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("%s: duplicate benchmark %q", path, b.Name)
		}
		seen[b.Name] = true
		if b.N <= 0 || b.NsOp < 0 || b.BOp < 0 || b.AllocsOp < 0 {
			return nil, fmt.Errorf("%s: benchmark %q has invalid measurements", path, b.Name)
		}
	}
	return &file, nil
}

// compareBenchFiles diffs the benchmarks shared by two bench JSON files.
// A benchmark regresses when its new ns/op or allocs/op exceeds the old
// value by more than threshold percent (allocs additionally get a slack
// of 2 allocations, so a 0→1 jitter never trips the gate). Benchmarks
// present in only one file are reported but never fail the comparison —
// the registry is allowed to evolve. Returns an error listing every
// regression, which fatal() turns into a non-zero exit.
func compareBenchFiles(oldPath, newPath string, threshold float64, allocsOnly bool) error {
	oldFile, err := loadBenchFile(oldPath)
	if err != nil {
		return err
	}
	newFile, err := loadBenchFile(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]benchEntry, len(oldFile.Benchmarks))
	for _, b := range oldFile.Benchmarks {
		oldBy[b.Name] = b
	}
	pct := func(oldV, newV float64) float64 {
		if oldV <= 0 {
			return 0
		}
		return (newV - oldV) / oldV * 100
	}
	var regressions []string
	matched := 0
	for _, nb := range newFile.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "new benchmark (no baseline): %s\n", nb.Name)
			continue
		}
		matched++
		delete(oldBy, nb.Name)
		if !allocsOnly {
			if d := pct(ob.NsOp, nb.NsOp); d > threshold {
				regressions = append(regressions, fmt.Sprintf(
					"%s: ns/op %+.1f%% (%.0f -> %.0f)", nb.Name, d, ob.NsOp, nb.NsOp))
			}
		}
		allowed := float64(ob.AllocsOp)*(1+threshold/100) + 2
		if float64(nb.AllocsOp) > allowed {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %d -> %d (allowed %.0f)", nb.Name, ob.AllocsOp, nb.AllocsOp, allowed))
		}
	}
	for name := range oldBy {
		fmt.Fprintf(os.Stderr, "baseline benchmark missing from new run: %s\n", name)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchsuite: %d of %d benchmarks regressed beyond %.0f%%:\n  %s",
			len(regressions), matched, threshold, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("%d benchmarks compared, none regressed beyond %.0f%%\n", matched, threshold)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
