// Command benchsuite regenerates every figure of the paper's evaluation
// (§8, Figs. 6-18) at laptop scale and prints the series as CSV-like
// tables; see internal/experiments for the sweep definitions and
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	benchsuite [-exp all|fig06|fig07|...|fig18] [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "smaller sizes, fewer points per series")
		seed  = flag.Uint64("seed", 42, "instance seed")
		exp   = flag.String("exp", "all", "experiment to run (all, fig06..fig18)")
	)
	flag.Parse()
	err := experiments.Run(*exp, experiments.Config{
		Quick: *quick,
		Seed:  *seed,
		Out:   os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
