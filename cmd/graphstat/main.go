// Command graphstat reads an edge-list file (text or binary, as written by
// cmd/kagen) and prints summary statistics, a degree histogram and — when
// requested — a power-law exponent estimate.
//
// Usage:
//
//	graphstat [-binary] [-histogram] [-powerlaw dmin] file
package main

import (
	"flag"
	"fmt"
	"os"

	kagen "repro"
)

func main() {
	var (
		binary    = flag.Bool("binary", false, "input is the binary edge-list format")
		histogram = flag.Bool("histogram", false, "print the degree histogram")
		powerlaw  = flag.Uint64("powerlaw", 0, "estimate the power-law exponent with this dmin (0 = off)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: graphstat [flags] file")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var el *kagen.EdgeList
	if *binary {
		el, err = kagen.ReadEdgeListBinary(f)
	} else {
		el, err = kagen.ReadEdgeListText(f)
	}
	if err != nil {
		fatal(err)
	}

	s := kagen.ComputeStats(el)
	fmt.Printf("vertices      %d\n", s.N)
	fmt.Printf("edges         %d\n", s.M)
	fmt.Printf("avg degree    %.3f\n", s.AvgDegree)
	fmt.Printf("min degree    %d\n", s.MinDegree)
	fmt.Printf("max degree    %d\n", s.MaxDegree)
	fmt.Printf("components    %d\n", s.Components)
	fmt.Printf("self loops    %d\n", s.SelfLoops)

	if *powerlaw > 0 {
		gamma := kagen.PowerLawExponentMLE(kagen.OutDegrees(el), *powerlaw)
		fmt.Printf("powerlaw MLE  %.3f (dmin=%d)\n", gamma, *powerlaw)
	}
	if *histogram {
		hist := kagen.DegreeHistogram(el)
		fmt.Println("degree histogram:")
		for d, c := range hist {
			if c > 0 {
				fmt.Printf("  %6d %d\n", d, c)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphstat:", err)
	os.Exit(1)
}
