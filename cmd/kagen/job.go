package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/job"
	"repro/internal/obs"
)

// jobUsage is printed for `kagen job` without (or with an unknown)
// subcommand.
const jobUsage = `usage: kagen job <command> [flags]

Plan, execute, checkpoint and resume distributed generation runs with
zero inter-worker communication. A job destination — a local directory
or an s3:// URI (-out is an alias of -dir) — holds the spec (job.json),
one shard per PE, and one checkpoint manifest per worker; any worker can
crash (or be preempted) and resume from its last chunk-granular
checkpoint, producing output byte-identical to an uninterrupted run. On
an object store, shards stream as striped multipart uploads — parts
upload while later chunks are still generating — and manifests only
ever record offsets the store durably holds.

Every chunk is re-derivable from the spec alone, so integrity never
rests on the bytes on disk: manifests carry per-chunk SHA-256 digests
under a Merkle root, verify re-derives chunks and compares, and repair
regenerates exactly what failed.

commands:
  init    write a new job spec into a directory
  run     execute one worker's PE range (continues from checkpoints)
  resume  like run, but requires an existing manifest
  status  summarize per-worker progress and resumable gaps (-watch polls)
  verify  re-derive sampled (or all) chunks and check manifests + shards
  repair  regenerate and splice back everything verify finds corrupt
  merge   concatenate the finished shards into one edge-list file
  trace   export the job's recorded spans as Chrome trace-event JSON

Every subcommand takes -log-level/-log-format (structured logs to
stderr). run/resume also take -trace (record worker/PE/chunk/upload
spans; persisted under <dir>/trace/ and exported by "job trace"),
-cpuprofile and -memprofile.

examples:
  kagen job init   -dir j -model gnm_undirected -n 1000000 -m 16000000 \
                   -pes 64 -chunks-per-pe 16 -job-workers 4 -format binary.gz
  kagen job run    -dir j -worker 0   # one process per worker, any order
  kagen job resume -dir j -worker 0   # after a crash
  kagen job status -dir j
  kagen job verify -dir j -sample 4   # spot-check 4 chunks per PE
  kagen job verify -dir j -all        # exhaustive audit
  kagen job repair -dir j             # fix what verify -all finds
  kagen job merge  -dir j -o graph.bin.gz
  kagen job run    -dir j -worker 0 -trace w0.json -log-level info
  kagen job trace  -dir j -o trace.json  # open in Perfetto / chrome://tracing
  kagen job status -dir j -watch      # live per-PE progress + edges/sec

  kagen job init   -out s3://bucket/jobs/j -model rgg2d -n 1000000 -pes 16
  kagen job run    -out s3://bucket/jobs/j -worker 0
  kagen job verify -out s3://bucket/jobs/j -all
  kagen job merge  -out s3://bucket/jobs/j -o s3://bucket/graph.txt
`

func jobMain(args []string) {
	if len(args) == 0 {
		fmt.Fprint(os.Stderr, jobUsage)
		os.Exit(2)
	}
	switch args[0] {
	case "init":
		jobInit(args[1:])
	case "run", "resume":
		jobRun(args[0], args[1:])
	case "status":
		jobStatus(args[1:])
	case "verify":
		jobVerify(args[1:])
	case "repair":
		jobRepair(args[1:])
	case "merge":
		jobMerge(args[1:])
	case "trace":
		jobTrace(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "kagen job: unknown command %q\n\n", args[0])
		fmt.Fprint(os.Stderr, jobUsage)
		os.Exit(2)
	}
}

func jobInit(args []string) {
	fs := flag.NewFlagSet("kagen job init", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "job destination: a directory or s3:// URI (created if missing)")
		out     = fs.String("out", "", "alias of -dir")
		model   = fs.String("model", "gnm_undirected", "model: "+modelList())
		n       = fs.Uint64("n", 1<<16, "number of vertices")
		m       = fs.Uint64("m", 1<<20, "number of edges (gnm, rmat)")
		p       = fs.Float64("p", 0.001, "edge probability (gnp)")
		r       = fs.Float64("r", 0, "radius (rgg; 0 = connectivity radius)")
		deg     = fs.Float64("deg", 16, "average degree (srhg)")
		gamma   = fs.Float64("gamma", 2.8, "power-law exponent (srhg)")
		d       = fs.Uint64("d", 4, "edges per vertex (ba)")
		scale   = fs.Uint("scale", 16, "log2 of vertex count (rmat)")
		blocks  = fs.Int("blocks", 2, "number of communities (sbm)")
		pin     = fs.Float64("pin", 0, "intra-community probability (sbm; 0 = 8*p)")
		pout    = fs.Float64("pout", 0, "inter-community probability (sbm; 0 = p)")
		seed    = fs.Uint64("seed", 1, "random seed")
		pes     = fs.Uint64("pes", 1, "logical PEs (one shard each)")
		cpp     = fs.Uint64("chunks-per-pe", 1, "chunks per PE (checkpoint granularity; part of the instance definition)")
		workers = fs.Uint64("job-workers", 1, "worker processes the PE set is split across")
		format  = fs.String("format", "text", "shard format: text, binary, text.gz, binary.gz")
	)
	applyLog := logFlags(fs, "warn")
	fs.Parse(args)
	applyLog()
	dest := jobDest(fs, *dir, *out)
	spec := job.Spec{
		Model: *model, N: *n, M: *m, Prob: *p, R: *r, AvgDeg: *deg,
		Gamma: *gamma, D: *d, Scale: *scale, Blocks: *blocks, PIn: *pin,
		POut: *pout, Seed: *seed, PEs: *pes, ChunksPerPE: *cpp,
		Workers: *workers, Format: *format,
	}
	if err := job.Init(dest, spec); err != nil {
		fatal(err)
	}
	spec = spec.Normalized()
	fmt.Printf("job %s: %s over %d PEs x %d chunks, %d worker(s), format %s\nspec hash %s\n",
		dest, spec.Model, spec.PEs, spec.ChunksPerPE, spec.Workers, spec.Format, spec.Hash())
}

func jobRun(verb string, args []string) {
	fs := flag.NewFlagSet("kagen job "+verb, flag.ExitOnError)
	var (
		dir        = fs.String("dir", "", "job destination: a directory or s3:// URI")
		out        = fs.String("out", "", "alias of -dir")
		worker     = fs.Uint64("worker", 0, "worker index in [0, job-workers)")
		workers    = fs.Int("workers", 0, "worker goroutines for the chunk pipeline (0 = GOMAXPROCS)")
		batch      = fs.Int("batch", 0, "edge batch capacity (0 = default)")
		failAfter  = fs.Int("fail-after", 0, "abort after this many checkpoints as a simulated crash (testing hook; 0 = never)")
		traceOut   = fs.String("trace", "", "record worker/PE/chunk/upload spans and write Chrome trace-event JSON to this file")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile (after GC) to this file when the run ends")
	)
	applyLog := logFlags(fs, "warn")
	fs.Parse(args)
	applyLog()
	dest := jobDest(fs, *dir, *out)
	opts := job.RunOptions{Goroutines: *workers, BatchSize: *batch}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace(0)
		// The active trace is what the storage layer's upload-part spans
		// attach to; RunOptions.Trace is what the job layer threads through.
		obs.SetActive(tr)
		opts.Trace = tr
	}
	if *failAfter > 0 {
		remaining := *failAfter
		opts.OnCheckpoint = func(pe, chunks, edges uint64) error {
			remaining--
			if remaining <= 0 {
				return fmt.Errorf("injected failure after checkpoint (pe %d, %d chunks)", pe, chunks)
			}
			return nil
		}
	}
	var cpuF *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuF = f
	}
	var err error
	if verb == "resume" {
		err = job.Resume(dest, *worker, opts)
	} else {
		err = job.Run(dest, *worker, opts)
	}
	// Profiles and the trace are diagnostic artifacts: write them even
	// when the run failed, and only surface their errors when the run
	// itself succeeded.
	if cpuF != nil {
		pprof.StopCPUProfile()
		if cerr := cpuF.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if *memProfile != "" {
		if perr := writeHeapProfile(*memProfile); perr != nil && err == nil {
			err = perr
		}
	}
	if tr != nil {
		if terr := writeTraceFile(*traceOut, tr); terr != nil && err == nil {
			err = terr
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("worker %d done\n", *worker)
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the final live set before snapshotting
	return pprof.WriteHeapProfile(f)
}

func writeTraceFile(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jobTrace exports the per-worker trace files a traced run persisted
// under <dir>/trace/ as one merged Chrome trace-event JSON document.
func jobTrace(args []string) {
	fs := flag.NewFlagSet("kagen job trace", flag.ExitOnError)
	dir := fs.String("dir", "", "job destination: a directory or s3:// URI")
	jout := fs.String("out", "", "alias of -dir")
	out := fs.String("o", "", "output file (default: stdout)")
	applyLog := logFlags(fs, "warn")
	fs.Parse(args)
	applyLog()
	dest := jobDest(fs, *dir, *jout)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := job.WriteTraceJSON(dest, w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Printf("trace written to %s\n", *out)
	}
}

func jobStatus(args []string) {
	fs := flag.NewFlagSet("kagen job status", flag.ExitOnError)
	dir := fs.String("dir", "", "job destination: a directory or s3:// URI")
	out := fs.String("out", "", "alias of -dir")
	watch := fs.Bool("watch", false, "poll progress until the job completes, with per-PE throughput")
	interval := fs.Duration("interval", time.Second, "poll interval for -watch")
	applyLog := logFlags(fs, "warn")
	fs.Parse(args)
	applyLog()
	dest := jobDest(fs, *dir, *out)
	if *watch {
		jobWatch(dest, *interval)
		return
	}
	st, err := job.Inspect(dest)
	if err != nil {
		fatal(err)
	}
	spec := st.Spec
	fmt.Printf("job %s: %s, seed %d, %d PEs x %d chunks, format %s\nspec hash %s\n",
		dest, spec.Model, spec.Seed, spec.PEs, spec.ChunksPerPE, spec.Format, st.SpecHash)
	for _, w := range st.Workers {
		donePEs, chunksDone, chunks := 0, uint64(0), uint64(0)
		var edges uint64
		for _, pe := range w.PEs {
			chunks += pe.Chunks
			chunksDone += pe.ChunksDone
			edges += pe.Edges
			if pe.Done {
				donePEs++
			}
		}
		state := "not started"
		if w.Started {
			state = fmt.Sprintf("%d/%d PEs, %d/%d chunks, %d edges", donePEs, len(w.PEs), chunksDone, chunks, edges)
		}
		fmt.Printf("worker %d: %s\n", w.Worker, state)
	}
	if gaps := st.Gaps(); len(gaps) > 0 {
		fmt.Printf("resumable gaps (%d PEs):\n", len(gaps))
		for _, g := range gaps {
			fmt.Printf("  pe %d (worker %d): %d/%d chunks committed\n", g.PE, g.Worker, g.ChunksDone, g.Chunks)
		}
	} else {
		fmt.Println("complete")
	}
}

// jobWatch polls Inspect and prints one frame per interval: a job-wide
// summary plus, for every in-progress PE, its chunk progress and edge
// throughput since the previous frame. It exits when the job completes.
func jobWatch(dest string, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	prevEdges := map[uint64]uint64{}
	prevAt := time.Time{}
	for {
		st, err := job.Inspect(dest)
		if err != nil {
			fatal(err)
		}
		now := time.Now()
		var chunks, chunksDone, edges uint64
		var donePEs, totalPEs int
		for _, w := range st.Workers {
			for _, pe := range w.PEs {
				totalPEs++
				chunks += pe.Chunks
				chunksDone += pe.ChunksDone
				edges += pe.Edges
				if pe.Done {
					donePEs++
				}
			}
		}
		fmt.Printf("[%s] %s: %d/%d PEs, %d/%d chunks, %d edges\n",
			now.Format("15:04:05"), st.Spec.Model, donePEs, totalPEs, chunksDone, chunks, edges)
		dt := now.Sub(prevAt).Seconds()
		for _, w := range st.Workers {
			for _, pe := range w.PEs {
				if pe.Done || pe.ChunksDone == 0 {
					continue
				}
				rate := "-"
				if prev, seen := prevEdges[pe.PE]; seen && !prevAt.IsZero() && dt > 0 {
					rate = fmt.Sprintf("%.0f edges/s", float64(pe.Edges-prev)/dt)
				}
				fmt.Printf("  pe %d (worker %d): %d/%d chunks, %d edges, %s\n",
					pe.PE, pe.Worker, pe.ChunksDone, pe.Chunks, pe.Edges, rate)
				prevEdges[pe.PE] = pe.Edges
			}
		}
		if st.Complete() {
			fmt.Println("complete")
			return
		}
		prevAt = now
		time.Sleep(interval)
	}
}

func jobVerify(args []string) {
	fs := flag.NewFlagSet("kagen job verify", flag.ExitOnError)
	var (
		dir    = fs.String("dir", "", "job destination: a directory or s3:// URI")
		out    = fs.String("out", "", "alias of -dir")
		all    = fs.Bool("all", false, "check every committed chunk instead of a sample")
		sample = fs.Int("sample", 2, "chunks checked per PE when sampling")
		seed   = fs.Int64("seed", 0, "sampling seed (same seed = same chunks)")
	)
	applyLog := logFlags(fs, "warn")
	fs.Parse(args)
	applyLog()
	dest := jobDest(fs, *dir, *out)
	res, err := job.Verify(dest, job.VerifyOptions{All: *all, Sample: *sample, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	printVerifyResult(res)
	if !res.OK() {
		os.Exit(1)
	}
}

func printVerifyResult(res *job.VerifyResult) {
	fmt.Printf("verified %d chunks across %d PEs\n", res.ChunksChecked, res.PEsChecked)
	for _, f := range res.Faults {
		fmt.Printf("FAULT %s\n", f)
	}
	if res.OK() {
		fmt.Println("ok")
	} else {
		fmt.Printf("%d faults\n", len(res.Faults))
	}
}

func jobRepair(args []string) {
	fs := flag.NewFlagSet("kagen job repair", flag.ExitOnError)
	dir := fs.String("dir", "", "job destination: a directory or s3:// URI")
	out := fs.String("out", "", "alias of -dir")
	applyLog := logFlags(fs, "warn")
	fs.Parse(args)
	applyLog()
	dest := jobDest(fs, *dir, *out)
	// Repair is verify-driven: an exhaustive pass finds every fault, the
	// repair regenerates exactly those, and a second pass proves the job
	// clean — all from the spec, no other worker consulted.
	res, err := job.Verify(dest, job.VerifyOptions{All: true})
	if err != nil {
		fatal(err)
	}
	if res.OK() {
		fmt.Printf("verified %d chunks: nothing to repair\n", res.ChunksChecked)
		return
	}
	for _, f := range res.Faults {
		fmt.Printf("FAULT %s\n", f)
	}
	rep, err := job.Repair(dest, res.Faults)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("repaired: %d chunks spliced, %d PEs regenerated, %d manifests rebuilt\n",
		rep.ChunksSpliced, rep.PEsReset, rep.WorkersRebuilt)
	after, err := job.Verify(dest, job.VerifyOptions{All: true})
	if err != nil {
		fatal(err)
	}
	printVerifyResult(after)
	if len(rep.Unrepaired) > 0 || !after.OK() {
		os.Exit(1)
	}
}

func jobMerge(args []string) {
	fs := flag.NewFlagSet("kagen job merge", flag.ExitOnError)
	dir := fs.String("dir", "", "job destination: a directory or s3:// URI")
	jout := fs.String("out", "", "alias of -dir")
	out := fs.String("o", "", "merged output: a file or s3:// URI (default: stdout)")
	applyLog := logFlags(fs, "warn")
	fs.Parse(args)
	applyLog()
	dest := jobDest(fs, *dir, *jout)
	if *out == "" {
		if err := job.Merge(dest, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := job.MergeToFile(dest, *out); err != nil {
		fatal(err)
	}
	fmt.Printf("merged into %s\n", *out)
}

// jobDest resolves the -dir/-out pair (aliases — -out reads naturally
// for object-store destinations) into the job destination.
func jobDest(fs *flag.FlagSet, dir, out string) string {
	if dir != "" && out != "" && dir != out {
		fmt.Fprintln(os.Stderr, "kagen job: -dir and -out are aliases — set one, not both")
		os.Exit(2)
	}
	dest := dir
	if dest == "" {
		dest = out
	}
	if dest == "" {
		fmt.Fprintln(os.Stderr, "kagen job: -dir (or -out) is required")
		fs.Usage()
		os.Exit(2)
	}
	return dest
}
