// Command kagen generates graphs from the supported network models and
// writes them as edge lists (text or binary) or METIS adjacency files.
//
// Examples:
//
//	kagen -model gnm_undirected -n 65536 -m 1048576 -o graph.txt
//	kagen -model rhg -n 1048576 -deg 16 -gamma 2.8 -pes 8 -format metis -o graph.metis
//	kagen -model rgg2d -n 100000 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	kagen "repro"
)

func main() {
	var (
		model   = flag.String("model", "gnm_undirected", "model: "+modelList())
		n       = flag.Uint64("n", 1<<16, "number of vertices")
		m       = flag.Uint64("m", 1<<20, "number of edges (gnm, rmat)")
		p       = flag.Float64("p", 0.001, "edge probability (gnp)")
		r       = flag.Float64("r", 0, "radius (rgg; 0 = connectivity radius)")
		deg     = flag.Float64("deg", 16, "average degree (rhg, srhg)")
		gamma   = flag.Float64("gamma", 2.8, "power-law exponent (rhg, srhg)")
		d       = flag.Uint64("d", 4, "edges per vertex (ba)")
		scale   = flag.Uint("scale", 16, "log2 of vertex count (rmat)")
		blocks  = flag.Int("blocks", 2, "number of communities (sbm)")
		pin     = flag.Float64("pin", 0, "intra-community probability (sbm; 0 = 8*p)")
		pout    = flag.Float64("pout", 0, "inter-community probability (sbm; 0 = p)")
		pes     = flag.Uint64("pes", 1, "number of logical PEs (chunks)")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default: stdout)")
		format  = flag.String("format", "text", "output format: text, binary, metis, none")
		stats   = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()

	gen, err := kagen.New(kagen.Model(*model), kagen.ModelParams{
		N: *n, M: *m, P: *p, R: *r, AvgDeg: *deg, Gamma: *gamma, D: *d,
		Scale: *scale, Blocks: *blocks, PIn: *pin, POut: *pout,
	}, kagen.Options{Seed: *seed, PEs: *pes, Workers: *workers})
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	el, err := gen.Generate()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *stats {
		s := kagen.ComputeStats(el)
		fmt.Fprintf(os.Stderr,
			"model=%s n=%d edges=%d avg_degree=%.2f max_degree=%d components=%d self_loops=%d time=%s\n",
			*model, s.N, s.M, s.AvgDegree, s.MaxDegree, s.Components, s.SelfLoops, elapsed)
	}

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = kagen.WriteEdgeListText(w, el)
	case "binary":
		err = kagen.WriteEdgeListBinary(w, el)
	case "metis":
		err = kagen.WriteMetis(w, el)
	case "none":
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func modelList() string {
	names := make([]string, 0, len(kagen.Models()))
	for _, m := range kagen.Models() {
		names = append(names, string(m))
	}
	return strings.Join(names, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kagen:", err)
	os.Exit(1)
}
