// Command kagen generates graphs from the supported network models and
// writes them as edge lists (text or binary) or METIS adjacency files.
//
// With -stream the graph is never materialized: the model's streaming
// generator runs all PEs on a worker pool and the edge stream is written
// straight to the sink in deterministic PE order, so instances larger
// than memory can be generated (formats: text, binary, text.gz,
// binary.gz, their sharded-<fmt> variants, and none; with the sharded
// formats -o names a directory of per-PE files).
//
// The `kagen job` subcommands plan, execute, checkpoint and resume
// multi-process generation runs with zero inter-worker communication;
// see `kagen job` for usage. `kagen serve` runs the long-lived
// multi-tenant generation service over the same job machinery — jobs are
// content-addressed by their spec hash, overload is rejected with 429,
// and a killed server resumes every incomplete job on restart; see
// `kagen serve -h`.
//
// Examples:
//
//	kagen -model gnm_undirected -n 65536 -m 1048576 -o graph.txt
//	kagen -model rhg -n 1048576 -deg 16 -gamma 2.8 -pes 8 -format metis -o graph.metis
//	kagen -model rgg2d -n 100000 -stats
//	kagen -model rgg2d -n 100000000 -pes 256 -stream -format binary.gz -o huge.bin.gz
//	kagen -model srhg -n 10000000 -pes 64 -stream -format sharded-text.gz -o shards/
//	kagen job init -dir j -model gnm_undirected -n 100000000 -m 1000000000 -pes 128 -chunks-per-pe 8 -job-workers 4 -format binary.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	kagen "repro"
	"repro/internal/obs"
)

// logFlags registers the shared -log-level/-log-format flags on a
// flagset and returns the function that applies them after parsing.
func logFlags(fs *flag.FlagSet, defaultLevel string) func() {
	level := fs.String("log-level", defaultLevel, "log level: debug, info, warn, error")
	format := fs.String("log-format", "text", "log format: text or json (one line per event, to stderr)")
	return func() {
		if err := obs.Configure(*level, *format, nil); err != nil {
			fatal(err)
		}
	}
}

func printVersion() {
	version, goVersion := obs.BuildInfo()
	fmt.Printf("kagen %s (%s)\n", version, goVersion)
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "job":
			jobMain(os.Args[2:])
			return
		case "serve":
			serveMain(os.Args[2:])
			return
		case "version", "-version", "--version":
			printVersion()
			return
		}
	}
	var (
		model   = flag.String("model", "gnm_undirected", "model: "+modelList())
		n       = flag.Uint64("n", 1<<16, "number of vertices")
		m       = flag.Uint64("m", 1<<20, "number of edges (gnm, rmat)")
		p       = flag.Float64("p", 0.001, "edge probability (gnp)")
		r       = flag.Float64("r", 0, "radius (rgg; 0 = connectivity radius)")
		deg     = flag.Float64("deg", 16, "average degree (rhg, srhg)")
		gamma   = flag.Float64("gamma", 2.8, "power-law exponent (rhg, srhg)")
		d       = flag.Uint64("d", 4, "edges per vertex (ba)")
		scale   = flag.Uint("scale", 16, "log2 of vertex count (rmat)")
		blocks  = flag.Int("blocks", 2, "number of communities (sbm)")
		pin     = flag.Float64("pin", 0, "intra-community probability (sbm; 0 = 8*p)")
		pout    = flag.Float64("pout", 0, "inter-community probability (sbm; 0 = p)")
		pes     = flag.Uint64("pes", 1, "number of logical PEs (chunks)")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "output destination: a file, file:// or s3:// URI (default: stdout; a directory or URI prefix for sharded formats)")
		format  = flag.String("format", "text", "output format: text, binary, metis, none; with -stream also text.gz, binary.gz and sharded-<fmt>")
		stats   = flag.Bool("stats", false, "print graph statistics to stderr")
		stream  = flag.Bool("stream", false, "stream edges to the sink without materializing the graph")
	)
	applyLog := logFlags(flag.CommandLine, "warn")
	flag.Parse()
	applyLog()

	gen, err := kagen.New(kagen.Model(*model), kagen.ModelParams{
		N: *n, M: *m, P: *p, R: *r, AvgDeg: *deg, Gamma: *gamma, D: *d,
		Scale: *scale, Blocks: *blocks, PIn: *pin, POut: *pout,
	}, kagen.Options{Seed: *seed, PEs: *pes, Workers: *workers})
	if err != nil {
		fatal(err)
	}

	if *stream {
		runStream(gen, *model, *format, *out, *workers, *stats)
		return
	}

	start := time.Now()
	el, err := gen.Generate()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *stats {
		s := kagen.ComputeStats(el)
		fmt.Fprintf(os.Stderr,
			"model=%s n=%d edges=%d avg_degree=%.2f max_degree=%d components=%d self_loops=%d time=%s\n",
			*model, s.N, s.M, s.AvgDegree, s.MaxDegree, s.Components, s.SelfLoops, elapsed)
	}

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = kagen.WriteEdgeListText(w, el)
	case "binary":
		err = kagen.WriteEdgeListBinary(w, el)
	case "metis":
		err = kagen.WriteMetis(w, el)
	case "none":
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// countingSink wraps a Sink and counts the delivered edges for -stats.
type countingSink struct {
	kagen.Sink
	edges uint64
}

func (c *countingSink) Batch(pe uint64, edges []kagen.Edge) error {
	c.edges += uint64(len(edges))
	return c.Sink.Batch(pe, edges)
}

// discardSink counts edges without writing them (-format none).
type discardSink struct{}

func (discardSink) Begin(n, pes uint64) error             { return nil }
func (discardSink) Batch(pe uint64, e []kagen.Edge) error { return nil }
func (discardSink) EndPE(pe uint64) error                 { return nil }
func (discardSink) Close() error                          { return nil }

func runStream(gen kagen.Generator, model, format, out string, workers int, stats bool) {
	s, ok := kagen.AsStreamer(gen)
	if !ok {
		fatal(fmt.Errorf("model %q is materialize-only and cannot stream (drop -stream)", model))
	}

	var sink kagen.Sink
	switch {
	case format == "none":
		sink = discardSink{}
	case strings.HasPrefix(format, "sharded-"):
		f, err := kagen.ParseFormat(strings.TrimPrefix(format, "sharded-"))
		if err != nil {
			fatal(err)
		}
		if out == "" {
			fatal(fmt.Errorf("format %q needs -o <directory or URI>", format))
		}
		sink, err = kagen.OpenSink(out, f, kagen.SinkSharded(model))
		if err != nil {
			fatal(err)
		}
	default:
		f, err := kagen.ParseFormat(format)
		if err != nil {
			fatal(err)
		}
		// OpenSink resolves out — "" or "-" is stdout (where a non-seekable
		// pipe makes the binary sink fall back to sentinel framing, which
		// readers accept), a path or file:// is the local filesystem, and
		// s3:// streams a striped multipart upload to the object store.
		sink, err = kagen.OpenSink(out, f)
		if err != nil {
			fatal(err)
		}
	}

	counting := &countingSink{Sink: sink}
	start := time.Now()
	if err := kagen.Stream(s, workers, counting); err != nil {
		fatal(err)
	}
	if stats {
		fmt.Fprintf(os.Stderr, "model=%s n=%d edges=%d pes=%d time=%s\n",
			model, s.N(), counting.edges, s.PEs(), time.Since(start))
	}
}

func modelList() string {
	names := make([]string, 0, len(kagen.Models()))
	for _, m := range kagen.Models() {
		names = append(names, string(m))
	}
	return strings.Join(names, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kagen:", err)
	os.Exit(1)
}
