package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/obs"
	"repro/internal/serve"
)

const serveUsage = `usage: kagen serve -dir DATA [flags]

Run the multi-tenant generation service. POST a job spec (the kagen job
JSON format) to /jobs and poll the returned ID; identical specs are
served from the content-addressed result cache (the spec's SHA-256 hash
is the job ID), a bounded queue rejects overload with 429, and a killed
server resumes every incomplete job on restart from its chunk-granular
checkpoints.

endpoints:
  POST   /jobs             submit a spec; 202 queued, 200 cached/deduped, 429 full
  GET    /jobs             list jobs
  GET    /jobs/{id}        job status
  DELETE /jobs/{id}        cancel a queued/running job, evict a finished one
  GET    /jobs/{id}/result merged edge list in the job's format
  GET    /jobs/{id}/shards/{pe}  one PE's shard (supports Range)
  GET    /jobs/{id}/trace  Chrome trace-event JSON of the job's execution
  GET    /metrics          Prometheus text exposition
  GET    /healthz          liveness
  GET    /debug/pprof/*    CPU/heap/goroutine profiles (with -pprof)

Requests and job lifecycle events are logged structurally to stderr
(-log-level info is the default here; -log-format json for machines).

example:
  kagen serve -dir /var/lib/kagen -addr :8080 -executors 4 -pprof &
  curl -s -X POST localhost:8080/jobs -d \
    '{"model":"gnm_undirected","n":65536,"m":1048576,"seed":1,"pes":4,"chunks_per_pe":4}'
`

func serveMain(args []string) {
	fs := flag.NewFlagSet("kagen serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, serveUsage)
		fs.PrintDefaults()
	}
	var (
		dir       = fs.String("dir", "", "data directory (one job per spec hash; created if missing)")
		addr      = fs.String("addr", ":8080", "listen address")
		executors = fs.Int("executors", 2, "jobs executing concurrently")
		queue     = fs.Int("queue", 16, "submission queue bound (full queue returns 429)")
		workers   = fs.Int("workers", 0, "chunk pipeline goroutines per job (0 = GOMAXPROCS)")
		pprofOn   = fs.Bool("pprof", false, "expose /debug/pprof/* profiling endpoints")
		noTrace   = fs.Bool("no-trace", false, "disable span recording for executed jobs (/jobs/{id}/trace returns 404)")
	)
	applyLog := logFlags(fs, "info")
	fs.Parse(args)
	applyLog()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "kagen serve: -dir is required")
		fs.Usage()
		os.Exit(2)
	}
	srv, err := serve.New(serve.Config{
		Dir: *dir, Executors: *executors, QueueCap: *queue, Goroutines: *workers,
		Pprof: *pprofOn, DisableTrace: *noTrace,
	})
	if err != nil {
		fatal(err)
	}
	log := obs.Logger("serve")
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Info("shutting down (incomplete jobs resume on restart)")
		// Stop executors first — running jobs park at their next durable
		// checkpoint — then stop accepting connections.
		srv.Close()
		hs.Close()
	}()
	log.Info("listening", "addr", *addr, "dir", *dir, "pprof", *pprofOn)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}
