// Command validate checks a generated edge-list file against the defining
// and distributional properties of its network model, printing one line
// per check. Exit status 1 if any check fails.
//
// The input is a single edge-list file in any streaming format (text,
// binary, text.gz, binary.gz), or — with -sharded — the directory of
// per-PE shard files written by `kagen -stream -format sharded-<fmt>`,
// merged in PE order before checking. With -job the argument is a kagen
// job directory: the model and its parameters come from the job spec, the
// worker manifests decide which PE shards are complete, only those are
// read, and unfinished PEs are reported as resumable gaps (an incomplete
// job fails the "job complete" check, so exit status still gates CI).
//
// Usage:
//
//	validate -model gnm_undirected -n 65536 -m 1048576 graph.txt
//	validate -model rhg -n 1048576 -deg 16 -gamma 2.8 -binary graph.bin
//	validate -model sbm -n 65536 -pin 0.01 -pout 0.001 -sharded 8 shards/
//	validate -model rgg2d -n 1000000 -format binary.gz graph.bin.gz
//	validate -job jobdir/
package main

import (
	"flag"
	"fmt"
	"os"

	kagen "repro"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/validate"
)

func main() {
	var (
		model    = flag.String("model", "", "model the file claims to be")
		n        = flag.Uint64("n", 0, "number of vertices")
		m        = flag.Uint64("m", 0, "number of edges (gnm, rmat)")
		p        = flag.Float64("p", 0, "edge probability (gnp)")
		r        = flag.Float64("r", 0, "radius (rgg)")
		deg      = flag.Float64("deg", 0, "average degree (rhg)")
		gamma    = flag.Float64("gamma", 0, "power-law exponent (rhg)")
		d        = flag.Uint64("d", 0, "edges per vertex (ba)")
		scale    = flag.Uint("scale", 0, "log2 vertices (rmat)")
		blocks   = flag.Int("blocks", 2, "communities (sbm)")
		pin      = flag.Float64("pin", 0, "intra-community probability (sbm)")
		pout     = flag.Float64("pout", 0, "inter-community probability (sbm)")
		binary   = flag.Bool("binary", false, "input is the binary format (shorthand for -format binary)")
		informat = flag.String("format", "", "input format: text, binary, text.gz, binary.gz (default: text, or binary with -binary)")
		sharded  = flag.Uint64("sharded", 0, "input is a ShardedSink directory with this many PE shards")
		prefix   = flag.String("prefix", "", "shard file prefix (default: the model name)")
		jobDir   = flag.Bool("job", false, "input is a kagen job directory (model and parameters from its spec)")
	)
	flag.Parse()
	if flag.NArg() != 1 || (*model == "" && !*jobDir) {
		fmt.Fprintln(os.Stderr, "usage: validate -model <name> [params] file|shard-dir\n       validate -job jobdir")
		os.Exit(2)
	}
	if *jobDir {
		report(validateJob(flag.Arg(0)))
		return
	}
	format := kagen.FormatText
	if *binary {
		format = kagen.FormatBinary
	}
	if *informat != "" {
		var err error
		if format, err = kagen.ParseFormat(*informat); err != nil {
			fatal(err)
		}
	}
	el, err := readInput(flag.Arg(0), *model, format, *sharded, *prefix)
	if err != nil {
		fatal(err)
	}
	checks, err := modelChecks(*model, el, kagen.ModelParams{
		N: *n, M: *m, P: *p, R: *r, AvgDeg: *deg, Gamma: *gamma, D: *d,
		Scale: *scale, Blocks: *blocks, PIn: *pin, POut: *pout,
	})
	if err != nil {
		fatal(err)
	}
	report(checks)
}

// modelChecks dispatches to the model's check suite, after applying the
// generator registry's parameter defaults — validation always checks
// against exactly what New would have generated with.
func modelChecks(model string, el *kagen.EdgeList, mp kagen.ModelParams) ([]validate.Check, error) {
	mp = kagen.ResolveModelParams(kagen.Model(model), mp)
	switch kagen.Model(model) {
	case kagen.ModelGNMDirected:
		return validate.GNM(el, mp.N, mp.M, true), nil
	case kagen.ModelGNMUndirected:
		return validate.GNM(el, mp.N, mp.M, false), nil
	case kagen.ModelGNPDirected:
		return validate.GNP(el, mp.N, mp.P, true), nil
	case kagen.ModelGNPUndirected:
		return validate.GNP(el, mp.N, mp.P, false), nil
	case kagen.ModelRGG2D:
		return validate.RGG(el, mp.N, mp.R, 2), nil
	case kagen.ModelRGG3D:
		return validate.RGG(el, mp.N, mp.R, 3), nil
	case kagen.ModelRDG2D:
		return validate.RDG(el, mp.N, 2), nil
	case kagen.ModelRDG3D:
		return validate.RDG(el, mp.N, 3), nil
	case kagen.ModelRHG, kagen.ModelSRHG:
		return validate.RHG(el, mp.N, mp.AvgDeg, mp.Gamma), nil
	case kagen.ModelBA:
		return validate.BA(el, mp.N, mp.D), nil
	case kagen.ModelRMAT:
		return validate.RMAT(el, mp.Scale, mp.M), nil
	case kagen.ModelSBM:
		ch := core.Chunking{N: mp.N, Chunks: uint64(mp.Blocks)}
		sizes := make([]uint64, mp.Blocks)
		for i := range sizes {
			sizes[i] = ch.Size(uint64(i))
		}
		return validate.SBM(el, sizes, mp.PIn, mp.POut), nil
	}
	return nil, fmt.Errorf("unknown model %q", model)
}

// validateJob checks a job directory: completed shards must parse, the
// job must be complete (resumable gaps are reported, and fail the check),
// and — once complete — the merged output must pass the model suite with
// the parameters pinned in the job spec.
func validateJob(dir string) []validate.Check {
	st, err := job.Inspect(dir)
	if err != nil {
		fatal(err)
	}
	spec := st.Spec
	fmt.Printf("job %s: %s, seed %d, %d PEs x %d chunks, format %s\n",
		dir, spec.Model, spec.Seed, spec.PEs, spec.ChunksPerPE, spec.Format)

	var checks []validate.Check
	format := spec.ShardFormat()
	completed := st.CompletedPEs()
	merged := &kagen.EdgeList{}
	parseErr := error(nil)
	for _, pe := range completed {
		el, err := kagen.ReadEdgeListFrom(job.ShardPath(dir, pe, format), format)
		if err != nil {
			parseErr = err
			break
		}
		if el.N > merged.N {
			merged.N = el.N
		}
		merged.Edges = append(merged.Edges, el.Edges...)
	}
	detail := fmt.Sprintf("%d completed PE shard(s), %d edges", len(completed), merged.Len())
	if parseErr != nil {
		detail = parseErr.Error()
	}
	checks = append(checks, validate.Check{Name: "completed shards parse", Passed: parseErr == nil, Detail: detail})

	gaps := st.Gaps()
	gapDetail := "no resumable gaps"
	if len(gaps) > 0 {
		gapDetail = fmt.Sprintf("%d PE(s) resumable:", len(gaps))
		for _, g := range gaps {
			gapDetail += fmt.Sprintf(" pe%d@%d/%d(w%d)", g.PE, g.ChunksDone, g.Chunks, g.Worker)
		}
	}
	checks = append(checks, validate.Check{Name: "job complete", Passed: len(gaps) == 0, Detail: gapDetail})

	if len(gaps) == 0 && parseErr == nil {
		mp := specModelParams(spec)
		mc, err := modelChecks(spec.Model, merged, mp)
		if err != nil {
			fatal(err)
		}
		checks = append(checks, mc...)
	}
	return checks
}

// specModelParams maps a job spec to the validator's parameter union;
// modelChecks resolves the registry defaults on top.
func specModelParams(spec job.Spec) kagen.ModelParams {
	return kagen.ModelParams{
		N: spec.N, M: spec.M, P: spec.Prob, R: spec.R, AvgDeg: spec.AvgDeg,
		Gamma: spec.Gamma, D: spec.D, Scale: spec.Scale, Blocks: spec.Blocks,
		PIn: spec.PIn, POut: spec.POut,
	}
}

// report prints the check lines and exits 1 if any failed.
func report(checks []validate.Check) {
	failed := 0
	for _, c := range checks {
		status := "ok  "
		if !c.Passed {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %-32s %s\n", status, c.Name, c.Detail)
	}
	if failed > 0 {
		fmt.Printf("%d of %d checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("all %d checks passed\n", len(checks))
}

// readInput loads the edge list to check: a single edge-list object in
// any streaming format, or — when sharded > 0 — a sharded-sink
// destination whose per-PE shards are merged in PE order. Destinations
// are URIs: a bare path or file:// reads the local filesystem, s3://
// reads straight from the object store.
func readInput(path, model string, format kagen.Format, sharded uint64, prefix string) (*kagen.EdgeList, error) {
	if sharded > 0 {
		if prefix == "" {
			prefix = model
		}
		return kagen.ReadShardedEdgeListFrom(path, prefix, format, sharded)
	}
	return kagen.ReadEdgeListFrom(path, format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}
