// Command validate checks a generated edge-list file against the defining
// and distributional properties of its network model, printing one line
// per check. Exit status 1 if any check fails.
//
// The input is a single edge-list file, or — with -sharded — the
// directory of per-PE shard files written by `kagen -stream -format
// sharded-text|sharded-binary`, merged in PE order before checking.
//
// Usage:
//
//	validate -model gnm_undirected -n 65536 -m 1048576 graph.txt
//	validate -model rhg -n 1048576 -deg 16 -gamma 2.8 -binary graph.bin
//	validate -model sbm -n 65536 -pin 0.01 -pout 0.001 -sharded 8 shards/
package main

import (
	"flag"
	"fmt"
	"os"

	kagen "repro"
	"repro/internal/core"
	"repro/internal/validate"
)

func main() {
	var (
		model   = flag.String("model", "", "model the file claims to be")
		n       = flag.Uint64("n", 0, "number of vertices")
		m       = flag.Uint64("m", 0, "number of edges (gnm, rmat)")
		p       = flag.Float64("p", 0, "edge probability (gnp)")
		r       = flag.Float64("r", 0, "radius (rgg)")
		deg     = flag.Float64("deg", 0, "average degree (rhg)")
		gamma   = flag.Float64("gamma", 0, "power-law exponent (rhg)")
		d       = flag.Uint64("d", 0, "edges per vertex (ba)")
		scale   = flag.Uint("scale", 0, "log2 vertices (rmat)")
		blocks  = flag.Int("blocks", 2, "communities (sbm)")
		pin     = flag.Float64("pin", 0, "intra-community probability (sbm)")
		pout    = flag.Float64("pout", 0, "inter-community probability (sbm)")
		binary  = flag.Bool("binary", false, "input is the binary format")
		sharded = flag.Uint64("sharded", 0, "input is a ShardedSink directory with this many PE shards")
		prefix  = flag.String("prefix", "", "shard file prefix (default: the model name)")
	)
	flag.Parse()
	if flag.NArg() != 1 || *model == "" {
		fmt.Fprintln(os.Stderr, "usage: validate -model <name> [params] file|shard-dir")
		os.Exit(2)
	}
	el, err := readInput(flag.Arg(0), *model, *binary, *sharded, *prefix)
	if err != nil {
		fatal(err)
	}

	var checks []validate.Check
	switch kagen.Model(*model) {
	case kagen.ModelGNMDirected:
		checks = validate.GNM(el, *n, *m, true)
	case kagen.ModelGNMUndirected:
		checks = validate.GNM(el, *n, *m, false)
	case kagen.ModelGNPDirected:
		checks = validate.GNP(el, *n, *p, true)
	case kagen.ModelGNPUndirected:
		checks = validate.GNP(el, *n, *p, false)
	case kagen.ModelRGG2D:
		checks = validate.RGG(el, *n, *r, 2)
	case kagen.ModelRGG3D:
		checks = validate.RGG(el, *n, *r, 3)
	case kagen.ModelRDG2D:
		checks = validate.RDG(el, *n, 2)
	case kagen.ModelRDG3D:
		checks = validate.RDG(el, *n, 3)
	case kagen.ModelRHG, kagen.ModelSRHG:
		checks = validate.RHG(el, *n, *deg, *gamma)
	case kagen.ModelBA:
		checks = validate.BA(el, *n, *d)
	case kagen.ModelRMAT:
		checks = validate.RMAT(el, *scale, *m)
	case kagen.ModelSBM:
		ch := core.Chunking{N: *n, Chunks: uint64(*blocks)}
		sizes := make([]uint64, *blocks)
		for i := range sizes {
			sizes[i] = ch.Size(uint64(i))
		}
		checks = validate.SBM(el, sizes, *pin, *pout)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}

	failed := 0
	for _, c := range checks {
		status := "ok  "
		if !c.Passed {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %-32s %s\n", status, c.Name, c.Detail)
	}
	if failed > 0 {
		fmt.Printf("%d of %d checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("all %d checks passed\n", len(checks))
}

// readInput loads the edge list to check: a single text or binary file,
// or — when sharded > 0 — a ShardedSink directory whose per-PE shards are
// merged in PE order.
func readInput(path, model string, binary bool, sharded uint64, prefix string) (*kagen.EdgeList, error) {
	if sharded > 0 {
		if prefix == "" {
			prefix = model
		}
		return kagen.ReadShardedEdgeList(path, prefix, binary, sharded)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if binary {
		return kagen.ReadEdgeListBinary(f)
	}
	return kagen.ReadEdgeListText(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}
