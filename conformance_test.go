package kagen

import (
	"runtime"
	"testing"
)

// conformanceParams are deliberately small: the suite runs every model
// several times over.
var conformanceParams = ModelParams{
	N: 400, M: 1600, P: 0.02, AvgDeg: 8, Gamma: 2.8, D: 3, Scale: 9,
}

// streamableModels documents which registry models expose a streaming
// view. The materialize-only set (value false) is part of the library
// contract: only the in-memory RHG remains materialize-only, because sRHG
// supersedes it for streaming. The undirected ER variants and SBM stream
// their triangular chunk rows pair by pair (no per-pair buffering).
var streamableModels = map[Model]bool{
	ModelGNMDirected:   true,
	ModelGNMUndirected: true,
	ModelGNPDirected:   true,
	ModelGNPUndirected: true,
	ModelRGG2D:         true,
	ModelRGG3D:         true,
	ModelRDG2D:         true,
	ModelRDG3D:         true,
	ModelRHG:           false,
	ModelSRHG:          true,
	ModelBA:            true,
	ModelRMAT:          true,
	ModelSBM:           true,
}

func newConformanceGen(t *testing.T, model Model, workers int) Generator {
	t.Helper()
	gen, err := New(model, conformanceParams, Options{Seed: 99, PEs: 5, Workers: workers})
	if err != nil {
		t.Fatalf("%s: %v", model, err)
	}
	return gen
}

func sameEdges(t *testing.T, model Model, label string, got, want []Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s has %d edges, want %d", model, label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: %s edge %d = %v, want %v", model, label, i, got[i], want[i])
		}
	}
}

// TestConformance is the cross-model contract suite: for every registry
// model it asserts that (a) Generate equals the concatenated Chunk
// outputs edge for edge, (b) the output is invariant under the worker
// count, and (c) every streamable model's StreamChunk emits exactly the
// Chunk edges — including through the parallel streaming runtime.
func TestConformance(t *testing.T) {
	if len(streamableModels) != len(Models()) {
		t.Fatalf("streamableModels covers %d models, registry has %d",
			len(streamableModels), len(Models()))
	}
	for _, model := range Models() {
		model := model
		t.Run(string(model), func(t *testing.T) {
			t.Parallel()
			gen := newConformanceGen(t, model, 2)
			whole, err := gen.Generate()
			if err != nil {
				t.Fatal(err)
			}

			// (a) Chunk concatenation equals Generate, in order.
			var concat []Edge
			for pe := uint64(0); pe < gen.PEs(); pe++ {
				part, err := gen.Chunk(pe)
				if err != nil {
					t.Fatalf("chunk %d: %v", pe, err)
				}
				concat = append(concat, part...)
			}
			sameEdges(t, model, "chunk concatenation", concat, whole.Edges)

			// (b) Worker-count invariance, byte for byte (not just as sets).
			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				alt, err := newConformanceGen(t, model, workers).Generate()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if alt.N != whole.N {
					t.Fatalf("workers=%d: n %d, want %d", workers, alt.N, whole.N)
				}
				sameEdges(t, model, "worker-invariance", alt.Edges, whole.Edges)
			}

			// (c) Streaming parity.
			s, ok := AsStreamer(gen)
			if ok != streamableModels[model] {
				t.Fatalf("AsStreamer = %v, documented contract says %v", ok, streamableModels[model])
			}
			if !ok {
				return
			}
			if s.N() != whole.N {
				t.Fatalf("streamer N %d, want %d", s.N(), whole.N)
			}
			if s.PEs() != gen.PEs() {
				t.Fatalf("streamer PEs %d, want %d", s.PEs(), gen.PEs())
			}
			for pe := uint64(0); pe < s.PEs(); pe++ {
				want, err := gen.Chunk(pe)
				if err != nil {
					t.Fatal(err)
				}
				var got []Edge
				if err := s.StreamChunk(pe, func(e Edge) { got = append(got, e) }); err != nil {
					t.Fatalf("stream chunk %d: %v", pe, err)
				}
				sameEdges(t, model, "stream/chunk parity", got, want)
			}

			// The parallel streaming runtime delivers the same stream for
			// any worker count.
			for _, workers := range []int{1, 3} {
				sink := &collectSink{}
				if err := Stream(s, workers, sink); err != nil {
					t.Fatalf("Stream workers=%d: %v", workers, err)
				}
				if sink.n != whole.N || sink.pes != s.PEs() {
					t.Fatalf("sink header (%d, %d), want (%d, %d)",
						sink.n, sink.pes, whole.N, s.PEs())
				}
				if !sink.closed {
					t.Fatal("sink not closed")
				}
				sameEdges(t, model, "pe.Stream delivery", sink.edges, whole.Edges)
			}
		})
	}
}

// collectSink gathers the stream in memory and asserts the sink protocol:
// per PE in increasing order, zero or more non-empty Batch calls followed
// by exactly one EndPE.
type collectSink struct {
	n, pes uint64
	lastPE int // last PE whose EndPE arrived
	edges  []Edge
	closed bool
}

func (c *collectSink) Begin(n, pes uint64) error {
	c.n, c.pes = n, pes
	c.lastPE = -1
	return nil
}

func (c *collectSink) Batch(pe uint64, edges []Edge) error {
	if int(pe) != c.lastPE+1 {
		panic("sink: batch for a PE other than the delivery head")
	}
	if len(edges) == 0 {
		panic("sink: empty batch delivered")
	}
	c.edges = append(c.edges, edges...)
	return nil
}

func (c *collectSink) EndPE(pe uint64) error {
	if int(pe) != c.lastPE+1 {
		panic("sink: EndPE out of order")
	}
	c.lastPE = int(pe)
	return nil
}

func (c *collectSink) Close() error {
	c.closed = true
	return nil
}

// TestStreamerConstructorsMatchRegistry: the dedicated streamer
// constructors produce the same streams as the registry's streaming view.
func TestStreamerConstructorsMatchRegistry(t *testing.T) {
	opt := Options{Seed: 4, PEs: 3}
	direct := []struct {
		name string
		s    Streamer
		gen  Generator
	}{
		{"rgg2d", NewRGGStreamer(300, 0.08, 2, opt), NewRGG(300, 0.08, 2, opt)},
		{"rgg3d", NewRGGStreamer(200, 0.2, 3, opt), NewRGG(200, 0.2, 3, opt)},
		{"rdg2d", NewRDGStreamer(250, 2, opt), NewRDG(250, 2, opt)},
		{"rdg3d", NewRDGStreamer(120, 3, opt), NewRDG(120, 3, opt)},
		{"srhg", NewSRHGStreamer(300, 8, 2.8, opt), NewSRHG(300, 8, 2.8, opt)},
	}
	for _, c := range direct {
		for pe := uint64(0); pe < c.s.PEs(); pe++ {
			want, err := c.gen.Chunk(pe)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			var got []Edge
			if err := c.s.StreamChunk(pe, func(e Edge) { got = append(got, e) }); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			sameEdges(t, Model(c.name), "constructor stream", got, want)
		}
	}
}

func TestSpatialStreamerErrors(t *testing.T) {
	if err := NewRGGStreamer(100, 2.0, 2, Options{}).StreamChunk(0, func(Edge) {}); err == nil {
		t.Error("rgg: invalid radius accepted")
	}
	if err := NewRDGStreamer(100, 4, Options{}).StreamChunk(0, func(Edge) {}); err == nil {
		t.Error("rdg: invalid dim accepted")
	}
	if err := NewSRHGStreamer(100, 8, 1.0, Options{}).StreamChunk(0, func(Edge) {}); err == nil {
		t.Error("srhg: invalid gamma accepted")
	}
	if err := NewRGGStreamer(100, 0.1, 2, Options{PEs: 2}).StreamChunk(7, func(Edge) {}); err == nil {
		t.Error("rgg: out-of-range PE accepted")
	}
}
