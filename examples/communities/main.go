// Communities: the stochastic block model (the paper's §9 future-work
// model, implemented here on top of the communication-free G(n,p) chunk
// machinery) as a benchmark for community detection. The example sweeps
// the signal strength pIn/pOut of a planted partition, runs label
// propagation, and measures how well the planted blocks are recovered —
// the classic detectability experiment.
package main

import (
	"fmt"

	kagen "repro"
)

func main() {
	const n = 8000
	const blocks = 4
	const pOut = 0.001
	opt := kagen.Options{Seed: 44, PEs: 8}

	fmt.Printf("planted partition: n=%d, %d blocks, pOut=%g\n\n", n, blocks, pOut)
	fmt.Printf("%10s %10s %12s %12s\n", "pIn/pOut", "edges", "communities", "rand_index")

	truth := make([]uint64, n)
	per := uint64(n) / blocks
	for v := uint64(0); v < n; v++ {
		b := v / per
		if b >= blocks {
			b = blocks - 1
		}
		truth[v] = b
	}

	for _, ratio := range []float64{2, 5, 10, 25, 50} {
		pIn := pOut * ratio
		el, err := kagen.SBM(n, blocks, pIn, pOut, opt)
		if err != nil {
			panic(err)
		}
		labels := kagen.LabelPropagation(el, 30)
		ri := kagen.RandIndexSample(labels, truth, 200000)
		fmt.Printf("%10.0f %10d %12d %12.3f\n",
			ratio, el.Len()/2, distinct(labels), ri)
	}

	fmt.Println("\nreading: near pIn ~ pOut the partition is undetectable (Rand")
	fmt.Println("index ~ the uninformed baseline); with a strong planted signal")
	fmt.Println("label propagation recovers the four blocks almost perfectly")
	fmt.Println("(Rand index -> 1).")
}

func distinct(labels []uint64) int {
	set := map[uint64]bool{}
	for _, l := range labels {
		set[l] = true
	}
	return len(set)
}
