// Graph500: the benchmark scenario of the paper's introduction — the
// Graph 500 benchmark generates R-MAT graphs at massive scale, and the
// paper's point is that the communication-free generators make richer
// models (uniform ER, hyperbolic) viable at the same scale and faster.
//
// The example generates a "mini Graph 500" instance with R-MAT and with
// the undirected G(n,m) generator at identical n and m, compares
// generation throughput (edges per second), and runs the benchmark's
// kernel-1 style BFS from a random root on both graphs.
package main

import (
	"fmt"
	"time"

	kagen "repro"
)

func main() {
	const scale = 18
	const edgeFactor = 16
	n := uint64(1) << scale
	m := n * edgeFactor
	opt := kagen.Options{Seed: 31, PEs: 8}

	fmt.Printf("mini Graph 500: scale %d (n = %d), %d edges\n\n", scale, n, m)

	type result struct {
		name  string
		el    *kagen.EdgeList
		genTm time.Duration
	}
	var results []result

	start := time.Now()
	rm, err := kagen.RMAT(scale, m, opt)
	if err != nil {
		panic(err)
	}
	results = append(results, result{"rmat", rm, time.Since(start)})

	start = time.Now()
	er, err := kagen.GNM(n, m/2, false, opt) // m/2 pairs = m directed entries
	if err != nil {
		panic(err)
	}
	results = append(results, result{"gnm", er, time.Since(start)})

	fmt.Printf("%-6s %12s %14s %12s %10s\n", "model", "edges", "gen time", "edges/s", "maxdeg")
	for _, r := range results {
		s := kagen.ComputeStats(r.el)
		fmt.Printf("%-6s %12d %14s %12.0f %10d\n",
			r.name, r.el.Len(), r.genTm.Round(time.Millisecond),
			float64(r.el.Len())/r.genTm.Seconds(), s.MaxDegree)
	}

	for _, r := range results {
		visited, levels, bfsTm := bfs(r.el, 1)
		fmt.Printf("\nBFS on %s from vertex 1: reached %d of %d vertices in %d levels (%s, %.0f TEPS)\n",
			r.name, visited, n, levels, bfsTm.Round(time.Millisecond),
			float64(r.el.Len())/bfsTm.Seconds())
	}
	fmt.Println("\nreading: R-MAT pays O(log n) variates per edge and produces a")
	fmt.Println("skewed degree profile; the uniform G(n,m) generator is several")
	fmt.Println("times faster per edge at identical scale — Fig. 17/18 of the paper.")
}

// bfs runs a level-synchronous BFS and returns (visited, levels, time).
func bfs(el *kagen.EdgeList, root uint64) (int, int, time.Duration) {
	start := time.Now()
	adj := make([][]uint64, el.N)
	for _, e := range el.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	dist := make([]int32, el.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	frontier := []uint64{root}
	visited := 1
	levels := 0
	for len(frontier) > 0 {
		levels++
		var next []uint64
		for _, v := range frontier {
			for _, u := range adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					next = append(next, u)
					visited++
				}
			}
		}
		frontier = next
	}
	return visited, levels, time.Since(start)
}
