// Mesh: random Delaunay graphs as unstructured meshes for scientific
// computing (paper §2.1.4). The periodic boundary makes a small mesh
// representative of a large simulated system, exactly like the periodic
// boxes of molecular-dynamics codes. The example generates a 2-D and a
// 3-D periodic mesh, verifies the structural invariants a solver relies
// on (regularity, connectivity), and runs a toy heat-diffusion step to
// show the mesh in use.
package main

import (
	"fmt"

	kagen "repro"
)

func main() {
	opt := kagen.Options{Seed: 12, PEs: 4}

	for _, c := range []struct {
		dim int
		n   uint64
	}{{2, 20_000}, {3, 4_000}} {
		gen, err := kagen.New(kagen.Model(fmt.Sprintf("rdg%dd", c.dim)),
			kagen.ModelParams{N: c.n}, opt)
		if err != nil {
			panic(err)
		}
		el, err := gen.Generate()
		if err != nil {
			panic(err)
		}
		s := kagen.ComputeStats(el)
		fmt.Printf("%d-D periodic Delaunay mesh: %d cells, %d links, avg degree %.3f, components %d\n",
			c.dim, s.N, s.M/2, s.AvgDegree, s.Components)
	}

	// Toy diffusion on the 2-D mesh: one Jacobi sweep per step over the
	// adjacency; the periodic mesh has no boundary, so mass is conserved.
	const n = 10_000
	el, err := kagen.RDG2D(n, opt)
	if err != nil {
		panic(err)
	}
	neighbors := make([][]uint64, n)
	for _, e := range el.Edges {
		neighbors[e.U] = append(neighbors[e.U], e.V)
	}
	temp := make([]float64, n)
	temp[0] = float64(n) // a point heat source
	next := make([]float64, n)
	// Conservative explicit scheme: kappa below 1/maxdegree keeps it
	// stable, and the flux form conserves total mass exactly.
	const kappa = 1.0 / 32
	var total float64
	for step := 0; step < 50; step++ {
		for v := uint64(0); v < n; v++ {
			flux := 0.0
			for _, u := range neighbors[v] {
				flux += temp[u] - temp[v]
			}
			next[v] = temp[v] + kappa*flux
		}
		temp, next = next, temp
	}
	for _, t := range temp {
		total += t
	}
	var peak float64
	for _, t := range temp {
		if t > peak {
			peak = t
		}
	}
	fmt.Printf("\ndiffusion on the 2-D mesh after 50 steps: mass %.1f (conserved: %v), peak %.4f\n",
		total, total > float64(n)*0.99 && total < float64(n)*1.01, peak)
}
