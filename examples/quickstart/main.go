// Quickstart: generate one small instance of every supported model and
// print its summary statistics. Demonstrates the registry API, the
// Options struct and the invariant that worker count never changes the
// generated graph.
package main

import (
	"fmt"

	kagen "repro"
)

func main() {
	params := kagen.ModelParams{
		N:      10_000,
		M:      80_000,
		P:      0.002,
		AvgDeg: 16,
		Gamma:  2.8,
		D:      4,
		Scale:  13,
	}
	opt := kagen.Options{Seed: 2026, PEs: 8, Workers: 0}

	fmt.Printf("%-16s %10s %10s %10s %8s %8s\n",
		"model", "vertices", "edges", "avgdeg", "maxdeg", "comps")
	for _, model := range kagen.Models() {
		gen, err := kagen.New(model, params, opt)
		if err != nil {
			panic(err)
		}
		el, err := gen.Generate()
		if err != nil {
			panic(err)
		}
		s := kagen.ComputeStats(el)
		fmt.Printf("%-16s %10d %10d %10.2f %8d %8d\n",
			model, s.N, s.M, s.AvgDegree, s.MaxDegree, s.Components)
	}

	// Same seed, different worker counts: bit-identical output — the
	// communication-free guarantee of the paper.
	a, _ := kagen.GNM(1000, 5000, false, kagen.Options{Seed: 7, PEs: 8, Workers: 1})
	b, _ := kagen.GNM(1000, 5000, false, kagen.Options{Seed: 7, PEs: 8, Workers: 8})
	a.Sort()
	b.Sort()
	identical := a.Len() == b.Len()
	for i := 0; identical && i < a.Len(); i++ {
		identical = a.Edges[i] == b.Edges[i]
	}
	fmt.Printf("\nworker-count independence (1 vs 8 workers): identical=%v\n", identical)
}
