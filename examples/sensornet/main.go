// Sensornet: the ad-hoc wireless network scenario that motivates random
// geometric graphs (paper §1, [1], [8]). Nodes are sensors dropped
// uniformly over a square field; two sensors can talk when they are within
// radio range r. The example sweeps the radio range around the
// connectivity threshold 0.55*sqrt(ln n / n) used throughout the paper's
// experiments and reports when the network becomes a single connected
// component, plus the energy proxy (average degree ~ interference).
package main

import (
	"fmt"

	kagen "repro"
)

func main() {
	const n = 20_000
	opt := kagen.Options{Seed: 99, PEs: 16}

	rc := kagen.RGGConnectivityRadius(n, 2)
	fmt.Printf("sensors: %d, threshold radius r_c = %.5f\n\n", n, rc)
	fmt.Printf("%8s %12s %12s %10s %12s\n", "r/r_c", "radius", "links", "avgdeg", "components")

	for _, f := range []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0} {
		r := rc * f
		el, err := kagen.RGG2D(n, r, opt)
		if err != nil {
			panic(err)
		}
		s := kagen.ComputeStats(el)
		fmt.Printf("%8.2f %12.5f %12d %10.2f %12d\n",
			f, r, s.M/2, s.AvgDegree, s.Components)
	}

	fmt.Println("\nreading: below r_c the network shatters into many islands;")
	fmt.Println("slightly above r_c one giant component forms while the degree")
	fmt.Println("(interference/energy proxy) grows only quadratically in r.")
}
