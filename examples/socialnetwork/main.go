// Socialnetwork: complex-network analysis on random hyperbolic graphs,
// the model the paper advances as a realistic scale-free benchmark
// (§2.1.3). The example generates RHG instances with different power-law
// exponents, recovers the exponent from the degree sequence with the MLE
// of Clauset et al., and compares hub sizes and clustering against an
// Erdős–Rényi graph of the same density — the classic "social networks
// are not random graphs" observation.
package main

import (
	"fmt"

	kagen "repro"
)

func main() {
	const n = 1 << 16
	const avgDeg = 12
	opt := kagen.Options{Seed: 7, PEs: 8}

	fmt.Printf("%10s %10s %10s %12s %12s\n", "gamma_in", "gamma_MLE", "avgdeg", "maxdeg", "p99 degree")
	for _, gamma := range []float64{2.2, 2.5, 3.0} {
		el, err := kagen.SRHG(n, avgDeg, gamma, opt)
		if err != nil {
			panic(err)
		}
		degrees := kagen.OutDegrees(el)
		est := kagen.PowerLawExponentMLE(degrees, 16)
		s := kagen.ComputeStats(el)
		fmt.Printf("%10.1f %10.2f %10.2f %12d %12d\n",
			gamma, est, s.AvgDegree, s.MaxDegree, percentile(degrees, 0.99))
	}

	// The ER control: same density, no hubs.
	m := uint64(n) * avgDeg / 2
	er, err := kagen.GNM(n, m, false, opt)
	if err != nil {
		panic(err)
	}
	s := kagen.ComputeStats(er)
	fmt.Printf("%10s %10s %10.2f %12d %12d\n",
		"ER", "-", s.AvgDegree, s.MaxDegree, percentile(kagen.OutDegrees(er), 0.99))

	fmt.Println("\nreading: hyperbolic graphs concentrate a constant fraction of")
	fmt.Println("edges on hub vertices (max degree orders of magnitude above the")
	fmt.Println("mean, growing as gamma approaches 2), while the ER graph's")
	fmt.Println("degrees concentrate tightly around the mean.")
}

func percentile(degrees []uint64, q float64) uint64 {
	// Small helper: quickselect would be overkill for an example.
	hist := map[uint64]int{}
	var mx uint64
	for _, d := range degrees {
		hist[d]++
		if d > mx {
			mx = d
		}
	}
	target := int(q * float64(len(degrees)))
	seen := 0
	for d := uint64(0); d <= mx; d++ {
		seen += hist[d]
		if seen >= target {
			return d
		}
	}
	return mx
}
