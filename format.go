package kagen

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
)

// Format identifies a streaming edge-list encoding. The gzip-compressed
// variants are first-class formats: long streaming runs write them
// directly (no recompression pass), and every reader in the repository —
// ReadEdgeList, cmd/validate, the job runner's merge — decompresses them
// transparently. Compressed binary streams carry the StreamingEdgeCount
// sentinel in their header (the count cannot be patched into compressed
// bytes), which ReadEdgeListBinary reads as until-EOF framing.
type Format string

// Supported streaming formats.
const (
	FormatText     Format = "text"
	FormatBinary   Format = "binary"
	FormatTextGz   Format = "text.gz"
	FormatBinaryGz Format = "binary.gz"
)

// StreamingEdgeCount is the sentinel header edge count of binary streams
// whose writer cannot seek (compressed or piped output); see
// ReadEdgeListBinary.
const StreamingEdgeCount = graph.StreamingEdgeCount

// Formats lists the streaming formats.
func Formats() []Format {
	return []Format{FormatText, FormatBinary, FormatTextGz, FormatBinaryGz}
}

// ParseFormat parses a format name as written on a command line or in a
// job spec.
func ParseFormat(s string) (Format, error) {
	switch f := Format(s); f {
	case FormatText, FormatBinary, FormatTextGz, FormatBinaryGz:
		return f, nil
	}
	return "", fmt.Errorf("kagen: unknown format %q (want text, binary, text.gz or binary.gz)", s)
}

// Binary reports whether the format's payload is the binary edge-list
// encoding.
func (f Format) Binary() bool { return f == FormatBinary || f == FormatBinaryGz }

// Compressed reports whether the format is gzip-compressed.
func (f Format) Compressed() bool { return f == FormatTextGz || f == FormatBinaryGz }

// Ext returns the file extension of the format (without leading dot).
func (f Format) Ext() string {
	switch f {
	case FormatBinary:
		return "bin"
	case FormatTextGz:
		return "txt.gz"
	case FormatBinaryGz:
		return "bin.gz"
	default:
		return "txt"
	}
}

// AppendEdges appends the payload encoding of a batch of edges to buf and
// returns the grown buffer: "u v\n" lines for the text formats, 16-byte
// little-endian (u, v) records for the binary formats. Headers are not
// included; see AppendHeader.
func (f Format) AppendEdges(buf []byte, edges []Edge) []byte {
	if f.Binary() {
		return appendEdgeBinary(buf, edges)
	}
	return appendEdgeText(buf, edges)
}

// AppendHeader appends the format's stream header for an instance with n
// vertices: "# n\n" for text, (n, StreamingEdgeCount) for binary. The
// binary sentinel makes the header final — resumable and compressed
// writers never need to come back and patch an edge count.
func (f Format) AppendHeader(buf []byte, n uint64) []byte {
	if f.Binary() {
		return appendBinaryHeader(buf, n, StreamingEdgeCount)
	}
	return fmt.Appendf(buf, "# %d\n", n)
}

// NewFormatSink returns a Sink writing the format to w. It is the
// io.Writer-level primitive under OpenSink — use it when the bytes go
// into an existing writer (an HTTP response, a pipe); use OpenSink when
// they go to a destination URI. The plain binary
// format patches the true edge count into the header at Close when w
// supports random-access writes and falls back to the StreamingEdgeCount
// sentinel otherwise. The probe matters: a piped stdout is an *os.File
// that satisfies io.WriteSeeker but fails every Seek, and a shell
// `>> file` redirect seeks fine but silently redirects the Close-time
// header patch to EOF (O_APPEND) — both must select sentinel framing up
// front rather than surface as a corrupt file or a lost run at Close.
// The compressed formats always use sentinel framing.
func NewFormatSink(w io.Writer, f Format) Sink {
	switch f {
	case FormatBinary:
		if ws, ok := w.(io.WriteSeeker); ok && seekPatchable(ws) {
			return NewBinarySink(ws)
		}
		return NewBinaryStreamSink(w)
	case FormatTextGz:
		gz := gzip.NewWriter(w)
		return &gzSink{inner: NewTextSink(gz), gz: gz}
	case FormatBinaryGz:
		gz := gzip.NewWriter(w)
		return &gzSink{inner: NewBinaryStreamSink(gz), gz: gz}
	default:
		return NewTextSink(w)
	}
}

// ReadEdgeList reads one edge-list stream in the given format,
// decompressing the gzip variants.
func ReadEdgeList(r io.Reader, f Format) (*EdgeList, error) {
	if f.Compressed() {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		r = gz
	}
	if f.Binary() {
		return ReadEdgeListBinary(r)
	}
	return ReadEdgeListText(r)
}

// ReadEdgeListFile reads one edge-list file in the given format.
// ReadEdgeListFrom is the same over any destination URI.
func ReadEdgeListFile(path string, f Format) (*EdgeList, error) {
	return ReadEdgeListFrom(path, f)
}

// seekPatchable reports whether ws supports the seek-back header patch:
// Seek must work (rules out pipes and terminals) and, for an *os.File,
// positioned writes must not be redirected to EOF by append mode (an
// empty WriteAt is a no-op on a regular file but fails immediately on a
// file opened with O_APPEND).
func seekPatchable(ws io.WriteSeeker) bool {
	if _, err := ws.Seek(0, io.SeekCurrent); err != nil {
		return false
	}
	if f, ok := ws.(*os.File); ok {
		if _, err := f.WriteAt(nil, 0); err != nil {
			return false
		}
	}
	return true
}

// gzSink funnels an inner sink through a gzip stream: Close first flushes
// the inner sink's buffers into the gzip writer, then finishes the gzip
// member.
type gzSink struct {
	inner Sink
	gz    *gzip.Writer
}

func (s *gzSink) Begin(n, pes uint64) error           { return s.inner.Begin(n, pes) }
func (s *gzSink) Batch(pe uint64, edges []Edge) error { return s.inner.Batch(pe, edges) }
func (s *gzSink) EndPE(pe uint64) error               { return s.inner.EndPE(pe) }
func (s *gzSink) Close() error {
	err := s.inner.Close()
	if cerr := s.gz.Close(); err == nil {
		err = cerr
	}
	return err
}
