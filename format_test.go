package kagen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestParseFormat: every supported name round-trips, anything else fails.
func TestParseFormat(t *testing.T) {
	for _, f := range Formats() {
		got, err := ParseFormat(string(f))
		if err != nil || got != f {
			t.Errorf("ParseFormat(%q) = %v, %v", f, got, err)
		}
	}
	for _, bad := range []string{"", "texty", "gzip", "binary.gzip", "sharded-text"} {
		if _, err := ParseFormat(bad); err == nil {
			t.Errorf("ParseFormat(%q) accepted", bad)
		}
	}
}

// TestFormatSinkRoundTrip: streaming through every format's sink and
// reading the file back reproduces the materialized instance, compressed
// formats included.
func TestFormatSinkRoundTrip(t *testing.T) {
	for _, c := range streamRoundTripCases(t) {
		want, err := c.gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, format := range Formats() {
			path := filepath.Join(t.TempDir(), "edges."+format.Ext())
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := Stream(c.s, 3, NewFormatSink(f, format)); err != nil {
				t.Fatalf("%s/%s: %v", c.name, format, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := ReadEdgeListFile(path, format)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, format, err)
			}
			requireSameList(t, c.name+"/"+string(format), got, want)
		}
	}
}

// TestBinaryStreamSinkSentinel: the sentinel-framed binary stream needs
// no seeking and reads back until EOF; a torn trailing record is an
// error, not silent truncation.
func TestBinaryStreamSinkSentinel(t *testing.T) {
	s := NewGNMStreamer(300, 1500, true, Options{Seed: 4, PEs: 3})
	var buf bytes.Buffer
	if err := Stream(s, 2, NewBinaryStreamSink(&buf)); err != nil {
		t.Fatal(err)
	}
	want, err := NewGNM(300, 1500, true, Options{Seed: 4, PEs: 3}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	requireSameList(t, "sentinel", got, want)

	torn := buf.Bytes()[:buf.Len()-7]
	if _, err := ReadEdgeListBinary(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn sentinel stream read back without error")
	}
}

// TestStreamChunksFromMatchesFullStream: the resumable entry point is a
// pure suffix/slice of the full stream — for every split point, streaming
// [0, k) and then [k, P) concatenates to exactly the full run's sequence.
func TestStreamChunksFromMatchesFullStream(t *testing.T) {
	s := NewRGGStreamer(400, 0.08, 2, Options{Seed: 21, PEs: 6})
	full := collectStream(t, s, 0, s.PEs())
	for k := uint64(0); k <= s.PEs(); k++ {
		head := collectStream(t, s, 0, k)
		tail := collectStream(t, s, k, s.PEs()-k)
		if len(head)+len(tail) != len(full) {
			t.Fatalf("split at %d: %d+%d edges, want %d", k, len(head), len(tail), len(full))
		}
		for i, e := range full {
			var got Edge
			if i < len(head) {
				got = head[i]
			} else {
				got = tail[i-len(head)]
			}
			if got != e {
				t.Fatalf("split at %d: edge %d = %v, want %v", k, i, got, e)
			}
		}
	}
}

// TestStreamChunksFromRejectsBadRange: out-of-range chunk windows error
// and still close the sink.
func TestStreamChunksFromRejectsBadRange(t *testing.T) {
	s := NewGNMStreamer(300, 1500, true, Options{Seed: 4, PEs: 3})
	sink := &failingSink{failAt: ^uint64(0)}
	if err := StreamChunksFrom(s, 2, 2, 1, 0, sink); err == nil {
		t.Fatal("range past PEs accepted")
	}
	if !sink.closed {
		t.Fatal("sink not closed after range error")
	}
}

// collectStream gathers the edges of a chunk range through a memory sink.
func collectStream(t *testing.T, s Streamer, first, count uint64) []Edge {
	t.Helper()
	var edges []Edge
	sink := &rangeCollectSink{edges: &edges}
	if err := StreamChunksFrom(s, first, count, 3, 64, sink); err != nil {
		t.Fatal(err)
	}
	return edges
}

type rangeCollectSink struct{ edges *[]Edge }

func (c *rangeCollectSink) Begin(n, pes uint64) error { return nil }
func (c *rangeCollectSink) Batch(pe uint64, e []Edge) error {
	*c.edges = append(*c.edges, e...)
	return nil
}
func (c *rangeCollectSink) EndPE(pe uint64) error { return nil }
func (c *rangeCollectSink) Close() error          { return nil }
