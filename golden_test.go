package kagen

import (
	"encoding/binary"
	"hash/fnv"
	"testing"
)

// edgeHash returns an order-independent digest of an edge list: FNV-1a
// over the sorted edges.
func edgeHash(el *EdgeList) uint64 {
	el.Sort()
	h := fnv.New64a()
	var buf [16]byte
	for _, e := range el.Edges {
		binary.LittleEndian.PutUint64(buf[0:], e.U)
		binary.LittleEndian.PutUint64(buf[8:], e.V)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestGoldenInstances pins the exact instance produced for each model at a
// fixed (seed, PEs). The instance definition — hash functions, stream
// derivation, splitting recursion, offset computations — is part of the
// library contract: a changed hash here means previously generated graphs
// can no longer be reproduced, which must be a conscious, documented
// decision.
//
// To re-pin after an intentional change: go test -run TestGoldenInstances
// -update-golden, then copy the printed values.
var updateGolden = false

// streamDigest runs every PE of a streamer in order and returns the edge
// count and the order-dependent FNV-1a hash of the emitted stream — unlike
// edgeHash it pins the exact emission order, not just the edge set.
func streamDigest(t *testing.T, s Streamer) (uint64, uint64) {
	t.Helper()
	h := fnv.New64a()
	var buf [16]byte
	var count uint64
	for pe := uint64(0); pe < s.PEs(); pe++ {
		if err := s.StreamChunk(pe, func(e Edge) {
			binary.LittleEndian.PutUint64(buf[0:], e.U)
			binary.LittleEndian.PutUint64(buf[8:], e.V)
			h.Write(buf[:])
			count++
		}); err != nil {
			t.Fatal(err)
		}
	}
	return count, h.Sum64()
}

// TestGoldenStreams pins the exact edge stream of the streamers (count
// and order-dependent hash) at a fixed (seed, PEs). The emission order —
// cell traversal for RGG, simplex traversal for RDG, sweep order for
// sRHG, triangular chunk-row order for the undirected ER variants and SBM
// — is part of the streaming contract: sinks observe it directly, so
// changing it silently changes every streamed file.
func TestGoldenStreams(t *testing.T) {
	opt := Options{Seed: 12345, PEs: 4}
	cases := []struct {
		name      string
		s         Streamer
		wantCount uint64
		wantHash  uint64
	}{
		{"rgg2d", NewRGGStreamer(400, 0.08, 2, opt), 3042, 0xde0663fc97ffefcd},
		{"rgg3d", NewRGGStreamer(300, 0.2, 3, opt), 2290, 0x6790dd562cdce521},
		{"rdg2d", NewRDGStreamer(300, 2, opt), 1800, 0xf27bb576d30214fd},
		{"rdg3d", NewRDGStreamer(150, 3, opt), 2354, 0x7aa5a7b658d90345},
		{"srhg", NewSRHGStreamer(400, 8, 2.8, opt), 2352, 0x1906675efad96fad},
		{"gnm_undirected", NewGNMStreamer(500, 2000, false, opt), 4000, 0x0ea16647178254c1},
		{"gnp_undirected", NewGNPStreamer(500, 0.01, false, opt), 2496, 0xf9a7284063168c29},
		{"sbm", NewSBMStreamer(500, 2, 0.05, 0.005, opt), 6872, 0x078072506fcc5f45},
	}
	for _, c := range cases {
		count, hash := streamDigest(t, c.s)
		if updateGolden {
			t.Logf("{%q, ..., %d, %#x},", c.name, count, hash)
			continue
		}
		if count != c.wantCount || hash != c.wantHash {
			t.Errorf("%s: stream (count %d, hash %#x), want (%d, %#x) — the streaming order changed",
				c.name, count, hash, c.wantCount, c.wantHash)
		}
	}
}

func TestGoldenInstances(t *testing.T) {
	opt := Options{Seed: 12345, PEs: 4, Workers: 2}
	cases := []struct {
		name string
		gen  func() (*EdgeList, error)
		want uint64
	}{
		{"gnm_directed", func() (*EdgeList, error) { return GNM(500, 2000, true, opt) }, 0xcda3f3199957656f},
		{"gnm_undirected", func() (*EdgeList, error) { return GNM(500, 2000, false, opt) }, 0x20251e4d98c65c09},
		{"gnp_directed", func() (*EdgeList, error) { return GNP(500, 0.01, true, opt) }, 0xdf438599e9c7b05c},
		{"rgg2d", func() (*EdgeList, error) { return RGG2D(400, 0.08, opt) }, 0xa8efe5a2333d7b79},
		{"rgg3d", func() (*EdgeList, error) { return RGG3D(300, 0.2, opt) }, 0x8e51739817f7198d},
		{"rdg2d", func() (*EdgeList, error) { return RDG2D(300, opt) }, 0x4944a7b066e44ea1},
		{"rhg", func() (*EdgeList, error) { return RHG(400, 8, 2.8, opt) }, 0xe49e4820becb8eed},
		{"srhg", func() (*EdgeList, error) { return SRHG(400, 8, 2.8, opt) }, 0x8122a4d747ef66cd},
		{"ba", func() (*EdgeList, error) { return BA(500, 3, opt) }, 0x713b03e34a83f171},
		{"rmat", func() (*EdgeList, error) { return RMAT(9, 2000, opt) }, 0xa199dae0d3a46ba8},
		{"sbm", func() (*EdgeList, error) { return SBM(500, 2, 0.05, 0.005, opt) }, 0x7aac482c42e28ecd},
	}
	for _, c := range cases {
		el, err := c.gen()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := edgeHash(el)
		if updateGolden {
			t.Logf("{%q, ..., %#x},", c.name, got)
			continue
		}
		if got != c.want {
			t.Errorf("%s: instance hash %#x, want %#x — the instance definition changed", c.name, got, c.want)
		}
	}
}
