// Package ba implements the communication-free Barabási–Albert
// preferential-attachment generator (paper §3.5.1) using the algorithm of
// Sanders and Schulz [4], which parallelizes the linear-time sequential
// algorithm of Batagelj and Brandes.
//
// The sequential algorithm fills an array M of length 2nd: M[2k] = k/d
// (the source of edge k) and M[2k+1] = M[r] for r drawn uniformly from
// [0, 2k] — copying an earlier entry implements preferential attachment
// because vertex v appears in M proportionally to its current degree.
// Sanders–Schulz observe that M[r] can be recomputed on demand: an even r
// resolves immediately to vertex r/(2d); an odd r recurses into the draw
// of slot (r-1)/2, which is reproducible because every slot's draw is
// seeded by a hash of the slot index. The expected recursion depth is
// constant, so any PE generates any edge in O(1) without communication.
package ba

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pe"
	"repro/internal/prng"
)

// Params configures a Barabási–Albert instance.
type Params struct {
	N    uint64 // number of vertices
	D    uint64 // edges added per vertex
	Seed uint64
	// Chunks is the number of logical PEs (vertex ranges). 0 means 1.
	Chunks uint64
}

func (p Params) chunks() uint64 {
	if p.Chunks == 0 {
		return 1
	}
	return p.Chunks
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N == 0 || p.D == 0 {
		return fmt.Errorf("ba: n and d must be positive")
	}
	if p.chunks() > p.N {
		return fmt.Errorf("ba: more chunks (%d) than vertices (%d)", p.chunks(), p.N)
	}
	return nil
}

// draw returns the random value of slot k: uniform in [0, 2k].
func draw(seed, k uint64) uint64 {
	r := prng.New(seed, core.TagBA, k)
	return r.UintN(2*k + 1)
}

// Target resolves the endpoint M[2k+1] of edge k by retracing the
// pseudorandom copy chain (the core of the Sanders–Schulz algorithm).
func Target(seed, k, d uint64) uint64 {
	r := draw(seed, k)
	for r%2 == 1 {
		r = draw(seed, (r-1)/2)
	}
	return (r / 2) / d
}

// Generate produces the full graph: n*d directed edges (v, target), where
// self-loops occur with the same (vanishing) frequency as in the
// sequential Batagelj–Brandes algorithm.
func Generate(p Params, workers int) (*graph.EdgeList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	results := pe.ForEach(int(p.chunks()), workers, func(c int) []graph.Edge {
		return GenerateChunk(p, uint64(c))
	})
	return graph.Merge(p.N, results...), nil
}

// GenerateChunk emits the edges of the chunk's vertex range.
func GenerateChunk(p Params, chunk uint64) []graph.Edge {
	ch := core.Chunking{N: p.N, Chunks: p.chunks()}
	edges := make([]graph.Edge, 0, ch.Size(chunk)*p.D)
	StreamChunk(p, chunk, func(e graph.Edge) { edges = append(edges, e) })
	return edges
}

// StreamChunk emits the chunk's edges through a callback without
// materializing them (memory-bounded generation).
func StreamChunk(p Params, chunk uint64, emit func(graph.Edge)) {
	ch := core.Chunking{N: p.N, Chunks: p.chunks()}
	lo, hi := ch.Start(chunk), ch.End(chunk)
	for v := lo; v < hi; v++ {
		for i := uint64(0); i < p.D; i++ {
			k := v*p.D + i
			emit(graph.Edge{U: v, V: Target(p.Seed, k, p.D)})
		}
	}
}

// SequentialReference runs the classic Batagelj–Brandes array algorithm
// with the same per-slot draws; used by the tests to validate the
// chain-retracing resolution.
func SequentialReference(p Params) *graph.EdgeList {
	m := p.N * p.D
	arr := make([]uint64, 2*m)
	edges := make([]graph.Edge, 0, m)
	for k := uint64(0); k < m; k++ {
		arr[2*k] = k / p.D
		arr[2*k+1] = arr[draw(p.Seed, k)]
		edges = append(edges, graph.Edge{U: arr[2*k], V: arr[2*k+1]})
	}
	return &graph.EdgeList{N: p.N, Edges: edges}
}
