package ba

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// TestMatchesSequentialReference: the chain-retracing resolution must
// reproduce the Batagelj–Brandes array algorithm edge for edge.
func TestMatchesSequentialReference(t *testing.T) {
	for _, p := range []Params{
		{N: 500, D: 3, Seed: 1, Chunks: 1},
		{N: 500, D: 3, Seed: 1, Chunks: 7},
		{N: 1000, D: 1, Seed: 2, Chunks: 4},
		{N: 200, D: 8, Seed: 3, Chunks: 16},
	} {
		want := SequentialReference(p)
		got, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("%+v: %d edges, want %d", p, got.Len(), want.Len())
		}
		// Both emit in global edge-index order per chunk; sort to compare.
		got.Sort()
		want.Sort()
		for i := range want.Edges {
			if got.Edges[i] != want.Edges[i] {
				t.Fatalf("%+v: edge %d differs: %v vs %v", p, i, got.Edges[i], want.Edges[i])
			}
		}
	}
}

func TestEdgeCountAndSources(t *testing.T) {
	p := Params{N: 2000, D: 4, Seed: 5, Chunks: 8}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(el.Len()) != p.N*p.D {
		t.Fatalf("%d edges, want %d", el.Len(), p.N*p.D)
	}
	// Every vertex is the source of exactly d edges.
	counts := make([]uint64, p.N)
	for _, e := range el.Edges {
		counts[e.U]++
		if e.V > e.U {
			t.Fatalf("edge %v attaches to a future vertex", e)
		}
	}
	for v, c := range counts {
		if c != p.D {
			t.Fatalf("vertex %d has %d out-edges, want %d", v, c, p.D)
		}
	}
}

// TestPowerLawInDegree: the in-degree distribution follows a power law
// with exponent ~3.
func TestPowerLawInDegree(t *testing.T) {
	p := Params{N: 1 << 16, D: 4, Seed: 7, Chunks: 8}
	el, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	inDeg := make([]uint64, p.N)
	for _, e := range el.Edges {
		inDeg[e.V]++
	}
	gamma := graph.PowerLawExponentMLE(inDeg, 10)
	if math.IsNaN(gamma) || gamma < 2.4 || gamma > 3.6 {
		t.Errorf("estimated in-degree exponent %v, want ~3", gamma)
	}
}

// TestPreferentialAttachment: early vertices accumulate much higher degree
// than late ones.
func TestPreferentialAttachment(t *testing.T) {
	p := Params{N: 1 << 14, D: 4, Seed: 9, Chunks: 4}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	inDeg := make([]uint64, p.N)
	for _, e := range el.Edges {
		inDeg[e.V]++
	}
	var earlySum, lateSum uint64
	tenth := p.N / 10
	for v := uint64(0); v < tenth; v++ {
		earlySum += inDeg[v]
	}
	for v := p.N - tenth; v < p.N; v++ {
		lateSum += inDeg[v]
	}
	if earlySum < 5*lateSum {
		t.Errorf("first decile in-degree %d not dominating last decile %d", earlySum, lateSum)
	}
}

func TestWorkerIndependence(t *testing.T) {
	p := Params{N: 3000, D: 2, Seed: 11, Chunks: 16}
	a, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	a.Sort()
	b.Sort()
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{N: 0, D: 1}).Validate(); err == nil {
		t.Error("n=0 accepted")
	}
	if err := (Params{N: 10, D: 0}).Validate(); err == nil {
		t.Error("d=0 accepted")
	}
	if err := (Params{N: 4, D: 1, Chunks: 8}).Validate(); err == nil {
		t.Error("chunks>n accepted")
	}
}

func BenchmarkChunk(b *testing.B) {
	p := Params{N: 1 << 18, D: 8, Seed: 1, Chunks: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 7)
	}
}
