// Package baseline implements the competitor algorithms the paper
// benchmarks KaGen against: the sequential linear-time Erdős–Rényi
// generators of Batagelj and Brandes (the algorithm family behind the
// Boost generator of Fig. 6), the naive and Holtgrewe-style random
// geometric graph generators (Fig. 9), and a query-centric random
// hyperbolic generator without precomputed trigonometry in the spirit of
// NkGen (Fig. 14).
package baseline

import (
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/hyperbolic"
	"repro/internal/prng"
)

// GNMBatageljBrandes draws a uniform G(n,m) with the virtual Fisher–Yates
// shuffle of Batagelj & Brandes (§3.1): m swaps over the implicit edge
// universe, tracked in a hash map, in O(n + m) time. Like the Boost
// generator it also materializes an adjacency structure, which is why its
// running time depends on n as well as m (the effect visible in Fig. 6).
func GNMBatageljBrandes(n, m uint64, directed bool, seed uint64) *graph.EdgeList {
	r := prng.NewFromRaw(seed)
	universe := n * (n - 1)
	if !directed {
		universe /= 2
	}
	replaced := make(map[uint64]uint64, m)
	edges := make([]graph.Edge, 0, m)
	pick := func(idx uint64) uint64 {
		if v, ok := replaced[idx]; ok {
			return v
		}
		return idx
	}
	for i := uint64(0); i < m; i++ {
		j := i + r.UintN(universe-i)
		vi, vj := pick(i), pick(j)
		replaced[j] = vi
		replaced[i] = vj // keeps the map total on [0, m)
		edges = append(edges, decodeEdge(vj, n, directed))
	}
	el := &graph.EdgeList{N: n, Edges: edges}
	// Build the adjacency structure the Boost generator would maintain.
	graph.BuildCSR(el)
	return el
}

func decodeEdge(idx, n uint64, directed bool) graph.Edge {
	if directed {
		u := idx / (n - 1)
		rem := idx % (n - 1)
		v := rem
		if rem >= u {
			v = rem + 1
		}
		return graph.Edge{U: u, V: v}
	}
	// Strict lower triangle.
	row := uint64((1 + math.Sqrt(1+8*float64(idx))) / 2)
	for row*(row-1)/2 > idx {
		row--
	}
	for (row+1)*row/2 <= idx {
		row++
	}
	return graph.Edge{U: row, V: idx - row*(row-1)/2}
}

// GNPBatageljBrandes draws G(n,p) by geometric skip sampling (Algorithm D
// family), O(n + m) expected.
func GNPBatageljBrandes(n uint64, p float64, directed bool, seed uint64) *graph.EdgeList {
	r := prng.NewFromRaw(seed)
	universe := n * (n - 1)
	if !directed {
		universe /= 2
	}
	el := &graph.EdgeList{N: n}
	if p <= 0 {
		return el
	}
	if p >= 1 {
		for idx := uint64(0); idx < universe; idx++ {
			el.Edges = append(el.Edges, decodeEdge(idx, n, directed))
		}
		return el
	}
	idx := dist.GeometricSkip(r, p)
	for idx < universe {
		el.Edges = append(el.Edges, decodeEdge(idx, n, directed))
		idx += 1 + dist.GeometricSkip(r, p)
	}
	graph.BuildCSR(el)
	return el
}

// RGGNaive is the Θ(n²) all-pairs random geometric graph reference (§3.2).
func RGGNaive(pts []geometry.Point, dim int, radius float64) *graph.EdgeList {
	r2 := radius * radius
	el := &graph.EdgeList{N: uint64(len(pts))}
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			if geometry.Dist2(dim, pts[i].X, pts[j].X) <= r2 {
				el.Edges = append(el.Edges, graph.Edge{U: pts[i].ID, V: pts[j].ID})
			}
		}
	}
	return el
}

// HoltgreweCostModel captures the communication cost of the sort-and-
// exchange RGG generator of Holtgrewe et al. (§3.2). The generator sorts
// all vertices globally (a sample sort whose exchange phase is an
// all-to-all: every PE exchanges partition boundaries and vertex payloads
// with every other PE), so each PE pays a volume term O(n/P) plus a
// latency term Θ(P). The Θ(P) message count is what lets the
// communication-free generator overtake the baseline at large P — the
// crossover of Fig. 9.
type HoltgreweCostModel struct {
	BytesPerVertex  float64 // wire size of one vertex
	BandwidthBytesS float64 // per-PE bandwidth in bytes/second
	LatencyS        float64 // per-message latency in seconds
}

// DefaultHoltgreweCost returns a cost model resembling a commodity
// cluster interconnect.
func DefaultHoltgreweCost() HoltgreweCostModel {
	return HoltgreweCostModel{
		BytesPerVertex:  24,
		BandwidthBytesS: 1e9,
		LatencyS:        20e-6,
	}
}

// SimulatedExchangeSeconds returns the modeled communication time of one
// PE for an instance with n vertices on P PEs: the all-to-all vertex
// exchange of the sample sort (volume n/P, P-1 partners).
func (c HoltgreweCostModel) SimulatedExchangeSeconds(n, p uint64) float64 {
	if p <= 1 {
		return 0
	}
	perPE := float64(n) / float64(p)
	return perPE*c.BytesPerVertex/c.BandwidthBytesS + c.LatencyS*float64(p-1)
}

// UniformPoints draws n points uniformly from the unit cube with a plain
// sequential stream (the way the baselines place vertices).
func UniformPoints(n uint64, dim int, seed uint64) []geometry.Point {
	r := prng.NewFromRaw(seed)
	pts := make([]geometry.Point, n)
	for i := range pts {
		var x [3]float64
		for d := 0; d < dim; d++ {
			x[d] = r.Float64()
		}
		pts[i] = geometry.Point{X: x, ID: uint64(i)}
	}
	return pts
}

// RGGHoltgrewe runs the computation phase of the Holtgrewe et al.
// generator for 2-D: sort the points into the global cell grid ("the
// exchange"), then generate edges cell-locally without any ghost
// recomputation. It returns the edge list; callers add the simulated
// exchange time from the cost model to the measured computation time.
// The pts slice is reordered in place.
func RGGHoltgrewe(pts []geometry.Point, radius float64) *graph.EdgeList {
	n := uint64(len(pts))
	gridDim := uint64(1 / radius)
	if gridDim < 1 {
		gridDim = 1
	}
	cellSide := 1 / float64(gridDim)
	cellOf := func(p geometry.Point) uint64 {
		cx := uint64(p.X[0] / cellSide)
		cy := uint64(p.X[1] / cellSide)
		if cx >= gridDim {
			cx = gridDim - 1
		}
		if cy >= gridDim {
			cy = gridDim - 1
		}
		return cx*gridDim + cy
	}
	// The "exchange": a global sort by cell.
	sort.Slice(pts, func(i, j int) bool { return cellOf(pts[i]) < cellOf(pts[j]) })
	// Cell index.
	starts := make(map[uint64][2]int)
	for i := 0; i < len(pts); {
		c := cellOf(pts[i])
		j := i
		for j < len(pts) && cellOf(pts[j]) == c {
			j++
		}
		starts[c] = [2]int{i, j}
		i = j
	}
	r2 := radius * radius
	el := &graph.EdgeList{N: n}
	for i := range pts {
		c := cellOf(pts[i])
		cx, cy := int64(c/gridDim), int64(c%gridDim)
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= int64(gridDim) || ny >= int64(gridDim) {
					continue
				}
				rng, ok := starts[uint64(nx)*gridDim+uint64(ny)]
				if !ok {
					continue
				}
				for j := rng[0]; j < rng[1]; j++ {
					if i == j {
						continue
					}
					if geometry.Dist2(2, pts[i].X, pts[j].X) <= r2 {
						el.Edges = append(el.Edges, graph.Edge{U: pts[i].ID, V: pts[j].ID})
					}
				}
			}
		}
	}
	return el
}

// RHGNkGen is a query-centric random hyperbolic generator in the spirit of
// NkGen (§3.3): annulus buckets with per-query angular bounds, but — unlike
// the KaGen generators — every candidate check evaluates hyperbolic
// cosines directly instead of using precomputed per-point constants. Its
// per-edge cost is therefore dominated by trigonometric evaluations, the
// effect visible in Fig. 14.
func RHGNkGen(n uint64, avgDeg, gamma float64, seed uint64) *graph.EdgeList {
	alpha := hyperbolic.AlphaFromGamma(gamma)
	bigR := hyperbolic.DiskRadius(n, avgDeg, alpha)
	r := prng.NewFromRaw(seed)

	type pt struct {
		theta, rad float64
		id         uint64
	}
	bounds := hyperbolic.Annuli(alpha, 0, bigR)
	k := len(bounds) - 1
	buckets := make([][]pt, k)
	for i := uint64(0); i < n; i++ {
		theta := r.Float64() * 2 * math.Pi
		rad := hyperbolic.SampleRadius(r, alpha, 0, bigR)
		b := sort.SearchFloat64s(bounds, rad) - 1
		if b < 0 {
			b = 0
		}
		if b >= k {
			b = k - 1
		}
		buckets[b] = append(buckets[b], pt{theta, rad, i})
	}
	for b := range buckets {
		sort.Slice(buckets[b], func(i, j int) bool { return buckets[b][i].theta < buckets[b][j].theta })
	}

	el := &graph.EdgeList{N: n}
	for b := 0; b < k; b++ {
		for _, p := range buckets[b] {
			for j := 0; j < k; j++ {
				dt := hyperbolic.DeltaTheta(p.rad, bounds[j], bigR)
				scan := func(lo, hi float64) {
					bk := buckets[j]
					start := sort.Search(len(bk), func(x int) bool { return bk[x].theta >= lo })
					for x := start; x < len(bk) && bk[x].theta <= hi; x++ {
						q := bk[x]
						if q.id == p.id {
							continue
						}
						// Direct distance evaluation (no precomputation).
						if hyperbolic.Distance(p.rad, p.theta, q.rad, q.theta) < bigR {
							el.Edges = append(el.Edges, graph.Edge{U: p.id, V: q.id})
						}
					}
				}
				if dt >= math.Pi {
					scan(0, 2*math.Pi)
					continue
				}
				lo, hi := p.theta-dt, p.theta+dt
				switch {
				case lo < 0:
					scan(lo+2*math.Pi, 2*math.Pi)
					scan(0, hi)
				case hi > 2*math.Pi:
					scan(lo, 2*math.Pi)
					scan(0, hi-2*math.Pi)
				default:
					scan(lo, hi)
				}
			}
		}
	}
	return el
}
