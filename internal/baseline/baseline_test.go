package baseline

import (
	"math"
	"testing"

	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/hyperbolic"
)

func TestGNMBatageljBrandesCounts(t *testing.T) {
	for _, directed := range []bool{true, false} {
		el := GNMBatageljBrandes(500, 3000, directed, 1)
		if el.Len() != 3000 {
			t.Fatalf("directed=%v: %d edges", directed, el.Len())
		}
		if el.CountDuplicates() != 0 {
			t.Errorf("directed=%v: duplicates present", directed)
		}
		if el.CountSelfLoops() != 0 {
			t.Errorf("directed=%v: self loops present", directed)
		}
		for _, e := range el.Edges {
			if e.U >= 500 || e.V >= 500 {
				t.Fatalf("edge %v out of range", e)
			}
		}
	}
}

func TestGNMBatageljBrandesUniform(t *testing.T) {
	const n = 10
	const m = 5
	counts := make(map[graph.Edge]int)
	const trials = 20000
	for s := uint64(0); s < trials; s++ {
		el := GNMBatageljBrandes(n, m, false, s)
		for _, e := range el.Edges {
			counts[e]++
		}
	}
	want := float64(trials) * m / 45
	for u := uint64(1); u < n; u++ {
		for v := uint64(0); v < u; v++ {
			c := counts[graph.Edge{U: u, V: v}]
			if math.Abs(float64(c)-want)/want > 0.1 {
				t.Errorf("pair (%d,%d): %d, want ~%v", u, v, c, want)
			}
		}
	}
}

func TestGNPBatageljBrandesDensity(t *testing.T) {
	const n = 2000
	const p = 0.004
	el := GNPBatageljBrandes(n, p, true, 7)
	mean := float64(n) * (n - 1) * p
	sigma := math.Sqrt(mean)
	if math.Abs(float64(el.Len())-mean) > 6*sigma {
		t.Errorf("%d edges, want %v +- %v", el.Len(), mean, 6*sigma)
	}
	if GNPBatageljBrandes(100, 0, true, 1).Len() != 0 {
		t.Error("p=0 not empty")
	}
	if GNPBatageljBrandes(20, 1, true, 1).Len() != 20*19 {
		t.Error("p=1 not complete")
	}
}

// TestHoltgreweMatchesNaive: the sort-and-exchange generator produces the
// exact RGG of its point set.
func TestHoltgreweMatchesNaive(t *testing.T) {
	pts := UniformPoints(400, 2, 3)
	const radius = 0.08
	want := RGGNaive(pts, 2, radius)
	got := RGGHoltgrewe(append([]geometry.Point(nil), pts...), radius)
	want.Sort()
	got.Sort()
	if want.Len() != got.Len() {
		t.Fatalf("naive %d edges, holtgrewe %d", want.Len(), got.Len())
	}
	for i := range want.Edges {
		if want.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestHoltgreweCostModel(t *testing.T) {
	c := DefaultHoltgreweCost()
	if c.SimulatedExchangeSeconds(1<<20, 1) != 0 {
		t.Error("single PE should not communicate")
	}
	t4 := c.SimulatedExchangeSeconds(1<<20, 4)
	t64 := c.SimulatedExchangeSeconds(1<<20, 64)
	if t4 <= 0 || t64 <= 0 {
		t.Error("positive comm times expected")
	}
	// Volume shrinks with P but latency grows: per-PE time for huge P is
	// dominated by the latency term.
	tHuge := c.SimulatedExchangeSeconds(1<<20, 1<<14)
	if tHuge >= t4 && tHuge <= 0 {
		t.Error("cost model inconsistent")
	}
}

// TestRHGNkGenStats: the baseline produces a hyperbolic graph with
// plausible degree statistics (its correctness backs Fig. 14).
func TestRHGNkGenStats(t *testing.T) {
	const n = 1 << 13
	el := RHGNkGen(n, 12, 3.0, 5)
	stats := graph.ComputeStats(el)
	if stats.AvgDegree < 6 || stats.AvgDegree > 20 {
		t.Errorf("avg degree %v, want near 12", stats.AvgDegree)
	}
	// Both orientations present.
	set := make(map[graph.Edge]bool, el.Len())
	for _, e := range el.Edges {
		set[e] = true
	}
	for _, e := range el.Edges {
		if !set[graph.Edge{U: e.V, V: e.U}] {
			t.Fatal("missing mirror orientation")
		}
	}
}

// TestRHGNkGenExact: against the all-pairs reference on its own points we
// cannot compare directly (points are internal), but a small instance must
// at least produce every edge twice and no self loops.
func TestRHGNkGenConsistency(t *testing.T) {
	el := RHGNkGen(500, 8, 2.5, 9)
	if el.CountSelfLoops() != 0 {
		t.Error("self loops present")
	}
	und := el.UndirectedSet()
	if el.Len() != 2*len(und) {
		t.Errorf("%d directed copies vs %d undirected edges", el.Len(), len(und))
	}
}

func TestDeltaThetaDegenerate(t *testing.T) {
	// Guard added for the NkGen baseline: b = 0 with r >= R.
	if dt := hyperbolic.DeltaTheta(10, 0, 10); dt != 0 {
		t.Errorf("DeltaTheta(r=R, b=0) = %v, want 0", dt)
	}
	if dt := hyperbolic.DeltaTheta(5, 0, 10); dt != math.Pi {
		t.Errorf("DeltaTheta inside = %v, want pi", dt)
	}
}
