// Package benchreg is the benchmark registry shared by the `go test`
// benchmarks (bench_test.go) and the cmd/benchsuite JSON runner: one leaf
// case per figure configuration of the paper's evaluation (§8, Figs. 6-18)
// plus the ablation benches of DESIGN.md §7. Keeping the bodies here, in a
// non-test package, lets cmd/benchsuite execute the exact same code with
// testing.Benchmark and record the per-benchmark ns/op, B/op and allocs/op
// trajectory in BENCH_kagen.json.
package benchreg

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/delaunay"
	"repro/internal/dist"
	"repro/internal/gnm"
	"repro/internal/gnp"
	"repro/internal/graph"
	"repro/internal/hyperbolic"
	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/rdg"
	"repro/internal/rgg"
	"repro/internal/rhg"
	"repro/internal/rmat"
	"repro/internal/sbm"
	"repro/internal/srhg"
)

// Case is one leaf benchmark: Name is the full slash-separated benchmark
// name below the "Benchmark" prefix (e.g. "Fig06SeqGNM/kagen/directed").
type Case struct {
	Name string
	F    func(b *testing.B)
}

// Group runs every registered case under the given top-level group as
// sub-benchmarks of b, reconstructing the usual `go test -bench` naming.
func Group(b *testing.B, group string) {
	prefix := group + "/"
	found := false
	for _, c := range All() {
		if !strings.HasPrefix(c.Name, prefix) {
			continue
		}
		found = true
		b.Run(strings.TrimPrefix(c.Name, prefix), c.F)
	}
	if !found {
		b.Fatalf("benchreg: no cases registered under group %q", group)
	}
}

// All returns every leaf case in deterministic order.
func All() []Case {
	var cases []Case
	add := func(name string, f func(b *testing.B)) {
		cases = append(cases, Case{Name: name, F: f})
	}

	// --- Figure 6: sequential Erdős–Rényi, KaGen vs Batagelj–Brandes ---
	{
		const n = 1 << 16
		const m = 1 << 18
		for _, directed := range []bool{true, false} {
			directed := directed
			name := "undirected"
			if directed {
				name = "directed"
			}
			add("Fig06SeqGNM/kagen/"+name, func(b *testing.B) {
				p := gnm.Params{N: n, M: m, Directed: directed, Seed: 1, Chunks: 1}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					gnm.GenerateChunk(p, 0)
				}
			})
			add("Fig06SeqGNM/batagelj-brandes/"+name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					baseline.GNMBatageljBrandes(n, m, directed, uint64(i))
				}
			})
		}
	}

	// --- Figures 7/8: G(n,m) weak and strong scaling (per-PE chunk cost) ---
	{
		const perPE = 1 << 16 // m/P
		for _, P := range []uint64{1, 16, 256} {
			for _, directed := range []bool{true, false} {
				P, directed := P, directed
				add(fmt.Sprintf("Fig07WeakGNM/P=%d/directed=%v", P, directed), func(b *testing.B) {
					m := uint64(perPE) * P
					p := gnm.Params{N: m / 16, M: m, Directed: directed, Seed: 1, Chunks: P}
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						gnm.GenerateChunk(p, P/2)
					}
				})
			}
		}
	}
	{
		const m = 1 << 20
		for _, P := range []uint64{4, 16, 64, 256} {
			P := P
			add(fmt.Sprintf("Fig08StrongGNM/P=%d", P), func(b *testing.B) {
				p := gnm.Params{N: m / 16, M: m, Directed: true, Seed: 1, Chunks: P}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					gnm.GenerateChunk(p, P/2)
				}
			})
		}
	}

	// --- Figure 9: 2-D RGG, KaGen vs Holtgrewe et al. ---
	{
		const perPE = 1 << 12
		const P = 16
		n := uint64(perPE * P)
		r := rgg.ConnectivityRadius(n, 2) / 4 // sqrt(P) = 4
		add("Fig09RGG2DComparison/kagen-chunk", func(b *testing.B) {
			p := rgg.Params{N: n, R: r, Dim: 2, Seed: 1, Chunks: P}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rgg.GenerateChunk(p, P/2)
			}
		})
		add("Fig09RGG2DComparison/holtgrewe-perPE", func(b *testing.B) {
			// The baseline's computation per PE: its share of the sorted
			// generation (measured over the full instance and divided).
			pts := baseline.UniformPoints(n, 2, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				baseline.RGGHoltgrewe(pts, r)
			}
		})
	}

	// --- Figures 10/11: RGG weak and strong scaling ---
	{
		const perPE = 1 << 12
		for _, dim := range []int{2, 3} {
			for _, P := range []uint64{1, 16, 64} {
				dim, P := dim, P
				add(fmt.Sprintf("Fig10WeakRGG/dim=%d/P=%d", dim, P), func(b *testing.B) {
					n := uint64(perPE) * P
					p := rgg.Params{N: n, Dim: dim, Seed: 1, Chunks: P}
					p.R = rgg.ConnectivityRadius(n, dim)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						rgg.GenerateChunk(p, P/2)
					}
				})
			}
		}
	}
	{
		const n = 1 << 16
		for _, dim := range []int{2, 3} {
			for _, P := range []uint64{4, 16, 64} {
				dim, P := dim, P
				add(fmt.Sprintf("Fig11StrongRGG/dim=%d/P=%d", dim, P), func(b *testing.B) {
					p := rgg.Params{N: n, Dim: dim, Seed: 1, Chunks: P}
					p.R = rgg.ConnectivityRadius(n, dim)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						rgg.GenerateChunk(p, P/2)
					}
				})
			}
		}
	}

	// --- Figures 12/13: RDG weak and strong scaling ---
	{
		const perPE = 1 << 10
		for _, dim := range []int{2, 3} {
			for _, P := range []uint64{1, 4, 16} {
				dim, P := dim, P
				add(fmt.Sprintf("Fig12WeakRDG/dim=%d/P=%d", dim, P), func(b *testing.B) {
					p := rdg.Params{N: uint64(perPE) * P, Dim: dim, Seed: 1, Chunks: P}
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						rdg.GenerateChunk(p, P/2)
					}
				})
			}
		}
	}
	{
		const n = 1 << 14
		for _, dim := range []int{2, 3} {
			for _, P := range []uint64{4, 16, 64} {
				dim, P := dim, P
				add(fmt.Sprintf("Fig13StrongRDG/dim=%d/P=%d", dim, P), func(b *testing.B) {
					p := rdg.Params{N: n, Dim: dim, Seed: 1, Chunks: P}
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						rdg.GenerateChunk(p, P/2)
					}
				})
			}
		}
	}

	// --- Figure 14: shared-memory RHG race ---
	{
		const n = 1 << 14
		const deg = 16
		for _, gamma := range []float64{2.2, 3.0} {
			gamma := gamma
			add(fmt.Sprintf("Fig14RHGRace/nkgen/gamma=%v", gamma), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					baseline.RHGNkGen(n, deg, gamma, uint64(i))
				}
			})
			add(fmt.Sprintf("Fig14RHGRace/rhg/gamma=%v", gamma), func(b *testing.B) {
				p := rhg.Params{N: n, AvgDeg: deg, Gamma: gamma, Seed: 1, Chunks: 1}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rhg.GenerateChunk(p, 0)
				}
			})
			add(fmt.Sprintf("Fig14RHGRace/srhg/gamma=%v", gamma), func(b *testing.B) {
				p := srhg.Params{N: n, AvgDeg: deg, Gamma: gamma, Seed: 1, Chunks: 1}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					srhg.GenerateChunk(p, 0)
				}
			})
		}
	}

	// --- Figures 15/16: RHG weak and strong scaling ---
	{
		const perPE = 1 << 11
		for _, P := range []uint64{1, 4, 16} {
			P := P
			add(fmt.Sprintf("Fig15WeakRHG/rhg/P=%d", P), func(b *testing.B) {
				p := rhg.Params{N: uint64(perPE) * P, AvgDeg: 16, Gamma: 3.0, Seed: 1, Chunks: P}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rhg.GenerateChunk(p, P/2)
				}
			})
			add(fmt.Sprintf("Fig15WeakRHG/srhg/P=%d", P), func(b *testing.B) {
				p := srhg.Params{N: uint64(perPE) * P, AvgDeg: 16, Gamma: 3.0, Seed: 1, Chunks: P}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					srhg.GenerateChunk(p, P/2)
				}
			})
		}
	}
	{
		const n = 1 << 14
		for _, P := range []uint64{4, 16, 64} {
			P := P
			add(fmt.Sprintf("Fig16StrongRHG/rhg/P=%d", P), func(b *testing.B) {
				p := rhg.Params{N: n, AvgDeg: 16, Gamma: 3.0, Seed: 1, Chunks: P}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rhg.GenerateChunk(p, P/2)
				}
			})
			add(fmt.Sprintf("Fig16StrongRHG/srhg/P=%d", P), func(b *testing.B) {
				p := srhg.Params{N: n, AvgDeg: 16, Gamma: 3.0, Seed: 1, Chunks: P}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					srhg.GenerateChunk(p, P/2)
				}
			})
		}
	}

	// --- Figures 17/18: R-MAT weak and strong scaling ---
	{
		const perPE = 1 << 14
		for _, P := range []uint64{1, 16, 256} {
			P := P
			add(fmt.Sprintf("Fig17WeakRMAT/P=%d", P), func(b *testing.B) {
				m := uint64(perPE) * P
				scale := uint(14)
				for (uint64(1) << scale) < m/16 {
					scale++
				}
				p := rmat.Params{Scale: scale, M: m, Seed: 1, Chunks: P}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rmat.GenerateChunk(p, P/2)
				}
			})
		}
	}
	{
		const m = 1 << 20
		for _, P := range []uint64{4, 16, 64, 256} {
			P := P
			add(fmt.Sprintf("Fig18StrongRMAT/P=%d", P), func(b *testing.B) {
				p := rmat.Params{Scale: 16, M: m, Seed: 1, Chunks: P}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rmat.GenerateChunk(p, P/2)
				}
			})
		}
	}

	// --- Undirected triangular streamers (DESIGN.md "Triangular stream
	// decomposition"): steady-state allocations per streamed chunk must stay
	// O(1) — the per-pair count map these replaced grew with P. The CI
	// allocation gate enforces the bound against the committed baseline. ---
	{
		const P = 16
		const m = uint64(1<<16) * P
		const n = m / 16
		add("StreamUndirected/gnm/P=16", func(b *testing.B) {
			p := gnm.Params{N: n, M: m, Directed: false, Seed: 1, Chunks: P}
			b.ReportAllocs()
			var edges uint64
			for i := 0; i < b.N; i++ {
				gnm.StreamUndirectedChunk(p, P/2, func(graph.Edge) { edges++ })
			}
			_ = edges
		})
		add("StreamUndirected/gnp/P=16", func(b *testing.B) {
			// Edge probability chosen so the expected edge count matches the
			// G(n,m) case above.
			prob := float64(m) / (float64(n) * float64(n-1) / 2)
			p := gnp.Params{N: n, P: prob, Seed: 1, Chunks: P}
			b.ReportAllocs()
			var edges uint64
			for i := 0; i < b.N; i++ {
				gnp.StreamUndirectedChunk(p, P/2, func(graph.Edge) { edges++ })
			}
			_ = edges
		})
		add("StreamUndirected/sbm/P=16", func(b *testing.B) {
			prob := float64(m) / (float64(n) * float64(n-1) / 2)
			p := sbm.PlantedPartition(n, 4, 4*prob, prob/2, 1, P)
			var edges uint64
			// One warm call so the single-iteration CI quick run measures
			// steady state, not first-call setup allocations.
			sbm.StreamChunk(p, P/2, func(graph.Edge) { edges++ })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sbm.StreamChunk(p, P/2, func(graph.Edge) { edges++ })
			}
			_ = edges
		})
	}

	// --- Cell-index optimization benches (DESIGN.md "Flat cell index") ---

	// Per-PE setup must not scale with NumChunks: NewCellAccess plus one
	// chunk rank query at P=4096 is O(log P) draws, where the former eager
	// implementation materialized all 4096 chunk counts.
	{
		const n = 1 << 22
		r := rgg.ConnectivityRadius(n, 2)
		add("CellIndex/setup/P=4096", func(b *testing.B) {
			g := rgg.NewGrid(n, 2, rgg.RGGTarget(n, 2, r), 4096, 1,
				core.TagRGGCounts, core.TagRGGCell, core.TagRGGPoints)
			b.ReportAllocs()
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				acc := rgg.NewCellAccess(g)
				total += acc.ChunkTotal(g.NumChunks / 2)
			}
			_ = total
		})
	}

	// Steady-state streaming allocations of the spatial generators at
	// Fig09/Fig12 scale — the arena keeps these near-constant per chunk.
	{
		const perPE = 1 << 12
		const P = 16
		n := uint64(perPE * P)
		add("CellIndex/rgg-stream-fig09", func(b *testing.B) {
			p := rgg.Params{N: n, R: rgg.ConnectivityRadius(n, 2) / 4, Dim: 2, Seed: 1, Chunks: P}
			b.ReportAllocs()
			var edges uint64
			for i := 0; i < b.N; i++ {
				rgg.StreamChunk(p, P/2, func(graph.Edge) { edges++ })
			}
			_ = edges
		})
		add("CellIndex/rdg-stream", func(b *testing.B) {
			p := rdg.Params{N: 1 << 12, Dim: 2, Seed: 1, Chunks: 4}
			b.ReportAllocs()
			var edges uint64
			for i := 0; i < b.N; i++ {
				rdg.StreamChunk(p, 2, func(graph.Edge) { edges++ })
			}
			_ = edges
		})
	}

	// --- Ablations (DESIGN.md §7) ---

	// A1: binomial sampler inversion vs BTRS around the crossover.
	{
		binomials := []struct {
			name string
			n    uint64
			p    float64
		}{
			{"inversion/np=5", 1 << 16, 5.0 / (1 << 16)},
			{"btrs/np=50", 1 << 16, 50.0 / (1 << 16)},
			{"btrs/np=5000", 1 << 20, 5000.0 / (1 << 20)},
		}
		for _, c := range binomials {
			c := c
			add("AblationBinomial/"+c.name, func(b *testing.B) {
				r := prng.NewFromRaw(1)
				for i := 0; i < b.N; i++ {
					dist.Binomial(r, c.n, c.p)
				}
			})
		}
	}

	// A2: RHG adjacency test with precomputed constants (Eq. 9) vs direct
	// hyperbolic distance (Eq. 4) — the optimization of §7.2.1.
	{
		add("AblationRHGTrig/precomputed", func(b *testing.B) {
			geo, pts := ablationTrigSetup()
			acc := 0
			for i := 0; i < b.N; i++ {
				p := pts[i%256]
				q := pts[(i*7+1)%256]
				if geo.IsNeighbor(p, q) {
					acc++
				}
			}
			_ = acc
		})
		add("AblationRHGTrig/direct", func(b *testing.B) {
			_, pts := ablationTrigSetup()
			acc := 0
			for i := 0; i < b.N; i++ {
				p := pts[i%256]
				q := pts[(i*7+1)%256]
				if hyperbolic.Distance(p.R, p.Theta, q.R, q.Theta) < 20 {
					acc++
				}
			}
			_ = acc
		})
	}

	// A3: G(n,p) chunk sampling, binomial+Algorithm D vs geometric skips.
	{
		base := gnp.Params{N: 1 << 16, P: 1.0 / (1 << 10), Directed: true, Seed: 1, Chunks: 16}
		add("AblationGNPSkip/binomial+vitter", func(b *testing.B) {
			p := base
			for i := 0; i < b.N; i++ {
				gnp.GenerateChunk(p, 7)
			}
		})
		add("AblationGNPSkip/geometric-skip", func(b *testing.B) {
			p := base
			p.SkipSampling = true
			for i := 0; i < b.N; i++ {
				gnp.GenerateChunk(p, 7)
			}
		})
	}

	// A4: RGG cell side max(r, n^(-1/d)) vs always r — the clamp avoids
	// overly fine grids for sub-density radii.
	{
		const n = 1 << 14
		r := rgg.ConnectivityRadius(n, 2) / 8 // much smaller than n^-1/2
		add("AblationRGGCell/clamped-target", func(b *testing.B) {
			p := rgg.Params{N: n, R: r, Dim: 2, Seed: 1, Chunks: 4}
			for i := 0; i < b.N; i++ {
				rgg.GenerateChunk(p, 1)
			}
		})
		// The unclamped variant is emulated by the naive baseline on the same
		// density to show the cost of losing the grid bound entirely.
		add("AblationRGGCell/no-grid-naive", func(b *testing.B) {
			pts := baseline.UniformPoints(n/4, 2, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				baseline.RGGNaive(pts, 2, r)
			}
		})
	}

	// A5: sRHG single-chunk sweep cost across gamma (cell batching pressure).
	for _, gamma := range []float64{2.2, 2.6, 3.0, 4.0} {
		gamma := gamma
		add(fmt.Sprintf("AblationSRHGGamma/gamma=%v", gamma), func(b *testing.B) {
			p := srhg.Params{N: 1 << 13, AvgDeg: 16, Gamma: gamma, Seed: 1, Chunks: 4}
			for i := 0; i < b.N; i++ {
				srhg.GenerateChunk(p, 1)
			}
		})
	}

	// A6: Morton-ordered chunk ownership vs an (emulated) row-major one: the
	// Z-order keeps a PE's chunks adjacent, which shrinks the ghost surface.
	// We measure the ghost recomputation volume indirectly via chunk runtime
	// at equal parameters but different PE->chunk mappings.
	{
		const n = 1 << 14
		p := rgg.Params{N: n, Dim: 2, Seed: 1, Chunks: 16}
		p.R = rgg.ConnectivityRadius(n, 2)
		add("AblationMorton/morton-contiguous", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rgg.GenerateChunk(p, 5)
			}
		})
		// Emulated scattered ownership: the same number of chunks gathered
		// from the four corners of the Morton range (one chunk from each
		// quadrant), maximizing ghost surface.
		add("AblationMorton/scattered", func(b *testing.B) {
			q := p
			q.Chunks = 64
			for i := 0; i < b.N; i++ {
				rgg.GenerateChunk(q, 0)
				rgg.GenerateChunk(q, 21)
				rgg.GenerateChunk(q, 42)
				rgg.GenerateChunk(q, 63)
			}
		})
	}

	// A7: RHG partitioned (inward+outward queries) vs outward-only mode — the
	// speedup §8.6 attributes to skipping the inward recomputation.
	{
		base := rhg.Params{N: 1 << 14, AvgDeg: 16, Gamma: 2.5, Seed: 1, Chunks: 16}
		add("AblationRHGOutward/partitioned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rhg.GenerateChunk(base, 7)
			}
		})
		add("AblationRHGOutward/outward-only", func(b *testing.B) {
			p := base
			p.OutwardOnly = true
			for i := 0; i < b.N; i++ {
				rhg.GenerateChunk(p, 7)
			}
		})
	}

	// A8: derived-stream setup cost — xoshiro256** (used) vs a full Mersenne
	// Twister seeding per structural stream (the naive fidelity choice).
	add("AblationStreamSetup/xoshiro", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := prng.New(42, uint64(i))
			r.Uint64()
		}
	})
	add("AblationStreamSetup/mt19937", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := prng.NewMTHashed(42, uint64(i))
			r.Uint64()
		}
	})

	// --- Delaunay insert hot path (adaptive predicates + arenas) ---
	{
		const n = 4096
		add("Delaunay/insert2d", func(b *testing.B) {
			r := prng.New(7, 1)
			pts := make([][2]float64, n)
			for i := range pts {
				pts[i] = [2]float64{r.Float64(), r.Float64()}
			}
			t := delaunay.NewT2(n)
			// Warm the arenas past any hint shortfall so even a 1-iteration
			// run measures the steady state.
			for _, p := range pts {
				t.Insert(p)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Reset()
				for _, p := range pts {
					t.Insert(p)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "inserts/s")
		})
		add("Delaunay/insert3d", func(b *testing.B) {
			r := prng.New(7, 2)
			pts := make([][3]float64, n)
			for i := range pts {
				pts[i] = [3]float64{r.Float64(), r.Float64(), r.Float64()}
			}
			t := delaunay.NewT3(n)
			for _, p := range pts {
				t.Insert(p)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Reset()
				for _, p := range pts {
					t.Insert(p)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "inserts/s")
		})
		// Filter hit-rate on the RDG-like workload: points plus torus-wrapped
		// copies, whose exactly coplanar quadruples force the exact fallback.
		add("Delaunay/filter3d", func(b *testing.B) {
			const half = 1024
			r := prng.New(7, 3)
			pts := make([][3]float64, 0, 2*half)
			for i := 0; i < half; i++ {
				p := [3]float64{r.Float64(), r.Float64(), r.Float64()}
				pts = append(pts, p, [3]float64{p[0] + 1, p[1], p[2]})
			}
			t := delaunay.NewT3(len(pts))
			for _, p := range pts {
				t.Insert(p)
			}
			var stats delaunay.FilterStats
			delaunay.CollectFilterStats(&stats)
			defer delaunay.CollectFilterStats(nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Reset()
				for _, p := range pts {
					t.Insert(p)
				}
			}
			b.StopTimer()
			if tot := stats.InSphereFast + stats.InSphereExact; tot > 0 {
				b.ReportMetric(float64(stats.InSphereExact)/float64(tot), "insphere-exact-frac")
			}
			if tot := stats.Orient3DFast + stats.Orient3DExact; tot > 0 {
				b.ReportMetric(float64(stats.Orient3DExact)/float64(tot), "orient3d-exact-frac")
			}
		})
	}

	// --- Observability hot-path cost (DESIGN.md "Observability") ---
	// The disabled paths are what every generation hot loop pays when
	// nothing is tracing or logging; the allocation gate pins them at
	// zero allocs/op so instrumentation can never tax an untraced run.
	{
		add("Obs/span-disabled", func(b *testing.B) {
			var tr *obs.Trace // nil = tracing off, the production default
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp := tr.Start("job", "chunk-generate", obs.GenLane(uint64(i)), obs.Span{})
				sp.End()
			}
		})
		add("Obs/span-enabled", func(b *testing.B) {
			tr := obs.NewTrace(b.N + 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.Start("job", "chunk-generate", obs.GenLane(uint64(i)), obs.Span{})
				sp.End()
			}
		})
		add("Obs/log-disabled", func(b *testing.B) {
			log := obs.Logger("bench")
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer() // the child-logger setup above is one-time cost
			for i := 0; i < b.N; i++ {
				// The guarded pattern the hot paths use: one leveled Enabled
				// probe, no argument boxing when the level is off.
				if log.Enabled(ctx, slog.LevelDebug) {
					log.Debug("checkpoint", "chunk", i)
				}
			}
		})
	}

	return cases
}

// ablationTrigSetup builds the shared point set of the A2 ablation.
func ablationTrigSetup() (hyperbolic.Geo, []hyperbolic.Point) {
	geo := hyperbolic.NewGeo(20, 0.75)
	pts := make([]hyperbolic.Point, 256)
	r := prng.NewFromRaw(3)
	for i := range pts {
		pts[i] = hyperbolic.MakePoint(uint64(i), r.Float64()*6.28, r.Float64()*20)
	}
	return geo, pts
}
