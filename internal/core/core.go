// Package core holds the machinery shared by every communication-free
// generator: the chunking of the vertex set, the seed-tag namespace that
// keeps the pseudorandom streams of different generators and recursion
// levels independent, and the per-PE result bookkeeping used by the
// scaling experiments.
package core

import (
	"math"

	"repro/internal/graph"
)

// Seed tags namespace the hash streams of the individual generators so
// that reusing one user seed across models cannot correlate their
// randomness. The values are arbitrary distinct constants.
const (
	TagGNMDirected   uint64 = 0x47 << 32 // directed G(n,m) sample counting
	TagGNMUndirected uint64 = 0x48 << 32 // undirected triangular splitting
	TagGNMChunk      uint64 = 0x49 << 32 // per-chunk edge sampling
	TagGNP           uint64 = 0x4a << 32 // per-chunk binomial counts
	TagRGGCounts     uint64 = 0x4b << 32 // RGG per-chunk vertex counts
	TagRGGCell       uint64 = 0x4c << 32 // RGG per-chunk cell splitting
	TagRGGPoints     uint64 = 0x54 << 32 // RGG per-cell point streams
	TagRHGAnnuli     uint64 = 0x4d << 32 // RHG vertices per annulus
	TagRHGChunk      uint64 = 0x4e << 32 // RHG per-(annulus,chunk) splitting
	TagRHGPoints     uint64 = 0x4f << 32 // RHG point streams
	TagRDGCell       uint64 = 0x50 << 32 // RDG per-cell point streams
	TagBA            uint64 = 0x51 << 32 // BA per-slot target draws
	TagRMAT          uint64 = 0x52 << 32 // R-MAT per-edge streams
	TagSRHG          uint64 = 0x53 << 32 // sRHG request/point streams
)

// Chunking is the balanced partition of the vertex set [0, n) into
// `Chunks` consecutive ranges: chunk i holds [i*n/Chunks, (i+1)*n/Chunks).
// It is shared by the ER generators and by any generator that needs a
// vertex-id based ownership function.
type Chunking struct {
	N      uint64
	Chunks uint64
}

// Start returns the first vertex of chunk i.
func (c Chunking) Start(i uint64) uint64 { return i * c.N / c.Chunks }

// End returns one past the last vertex of chunk i.
func (c Chunking) End(i uint64) uint64 { return (i + 1) * c.N / c.Chunks }

// Size returns the number of vertices in chunk i.
func (c Chunking) Size(i uint64) uint64 { return c.End(i) - c.Start(i) }

// RangeSize returns the number of vertices in chunks [lo, hi).
func (c Chunking) RangeSize(lo, hi uint64) uint64 {
	return hi*c.N/c.Chunks - lo*c.N/c.Chunks
}

// Owner returns the chunk that owns vertex v. It inverts Start/End:
// Start(i) <= v < End(i) holds exactly for i = floor(((v+1)*Chunks-1)/N).
func (c Chunking) Owner(v uint64) uint64 {
	return ((v+1)*c.Chunks - 1) / c.N
}

// Result is the output of one logical PE: its local edges plus the work
// counters that the experiments report.
type Result struct {
	PE    int
	Edges []graph.Edge
	// RedundantVertices counts vertices the PE generated that belong to
	// another PE (ghost cells, recomputed chunks) — the recomputation
	// overhead the paper's weak-scaling discussion attributes cost to.
	RedundantVertices uint64
	// Comparisons counts candidate distance evaluations (spatial models).
	Comparisons uint64
}

// TriangularIndex maps a linear index of the strict lower triangle of a
// matrix (row-major: (1,0), (2,0), (2,1), (3,0), ...) to its (row, col)
// coordinates. It is the offset computation that converts samples of a
// diagonal chunk of the undirected ER adjacency matrix into vertex pairs.
func TriangularIndex(idx uint64) (row, col uint64) {
	// row is the largest r with r(r-1)/2 <= idx; start from the float
	// estimate and correct for rounding.
	row = uint64((1 + math.Sqrt(1+8*float64(idx))) / 2)
	for row*(row-1)/2 > idx {
		row--
	}
	for (row+1)*row/2 <= idx {
		row++
	}
	col = idx - row*(row-1)/2
	return row, col
}

// MergeResults concatenates per-PE results into a single edge list.
func MergeResults(n uint64, results []Result) *graph.EdgeList {
	parts := make([][]graph.Edge, len(results))
	for i, r := range results {
		parts[i] = r.Edges
	}
	return graph.Merge(n, parts...)
}
