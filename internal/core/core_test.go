package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestChunkingCoversAllVertices(t *testing.T) {
	f := func(nRaw uint16, cRaw uint8) bool {
		n := uint64(nRaw) + 1
		chunks := uint64(cRaw)%n + 1
		ch := Chunking{N: n, Chunks: chunks}
		if ch.Start(0) != 0 || ch.End(chunks-1) != n {
			return false
		}
		var total uint64
		for i := uint64(0); i < chunks; i++ {
			if ch.End(i) < ch.Start(i) {
				return false
			}
			if i > 0 && ch.Start(i) != ch.End(i-1) {
				return false
			}
			total += ch.Size(i)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChunkingOwnerInverse(t *testing.T) {
	f := func(nRaw uint16, cRaw uint8, vRaw uint16) bool {
		n := uint64(nRaw) + 1
		chunks := uint64(cRaw)%n + 1
		v := uint64(vRaw) % n
		ch := Chunking{N: n, Chunks: chunks}
		owner := ch.Owner(v)
		return owner < chunks && ch.Start(owner) <= v && v < ch.End(owner)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestChunkingBalanced(t *testing.T) {
	ch := Chunking{N: 1000, Chunks: 7}
	var mn, mx uint64 = 1000, 0
	for i := uint64(0); i < 7; i++ {
		s := ch.Size(i)
		if s < mn {
			mn = s
		}
		if s > mx {
			mx = s
		}
	}
	if mx-mn > 1 {
		t.Errorf("chunk sizes range [%d, %d], want difference <= 1", mn, mx)
	}
}

func TestTriangularIndexExhaustive(t *testing.T) {
	idx := uint64(0)
	for row := uint64(1); row < 60; row++ {
		for col := uint64(0); col < row; col++ {
			r, c := TriangularIndex(idx)
			if r != row || c != col {
				t.Fatalf("idx %d: got (%d,%d) want (%d,%d)", idx, r, c, row, col)
			}
			idx++
		}
	}
}

func TestTriangularIndexLarge(t *testing.T) {
	// Near the float64 precision edge of the sqrt estimate.
	for _, idx := range []uint64{1 << 40, 1<<45 + 12345, 1 << 50} {
		r, c := TriangularIndex(idx)
		if c >= r {
			t.Fatalf("idx %d: col %d >= row %d", idx, c, r)
		}
		if r*(r-1)/2+c != idx {
			t.Fatalf("idx %d: roundtrip gives %d", idx, r*(r-1)/2+c)
		}
	}
}

func TestMergeResults(t *testing.T) {
	res := []Result{
		{PE: 0, Edges: []graph.Edge{{U: 0, V: 1}}},
		{PE: 1, Edges: []graph.Edge{{U: 1, V: 0}, {U: 1, V: 2}}},
	}
	el := MergeResults(3, res)
	if el.N != 3 || el.Len() != 3 {
		t.Fatalf("merged n=%d m=%d", el.N, el.Len())
	}
}

func TestSeedTagsDistinct(t *testing.T) {
	tags := []uint64{
		TagGNMDirected, TagGNMUndirected, TagGNMChunk, TagGNP,
		TagRGGCounts, TagRGGCell, TagRGGPoints, TagRHGAnnuli, TagRHGChunk, TagRHGPoints,
		TagRDGCell, TagBA, TagRMAT, TagSRHG,
	}
	seen := map[uint64]bool{}
	for _, tag := range tags {
		if seen[tag] {
			t.Fatalf("duplicate tag %x", tag)
		}
		seen[tag] = true
	}
}

func FuzzTriangularIndex(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(12345))
	f.Add(uint64(1) << 50)
	f.Fuzz(func(t *testing.T, idx uint64) {
		if idx > 1<<52 {
			return
		}
		r, c := TriangularIndex(idx)
		if c >= r {
			t.Fatalf("idx %d: col %d >= row %d", idx, c, r)
		}
		if r*(r-1)/2+c != idx {
			t.Fatalf("idx %d: roundtrip %d", idx, r*(r-1)/2+c)
		}
	})
}

func FuzzChunkingOwner(f *testing.F) {
	f.Add(uint64(10), uint64(3), uint64(5))
	f.Add(uint64(1), uint64(1), uint64(0))
	f.Fuzz(func(t *testing.T, n, chunks, v uint64) {
		if n == 0 || n > 1<<40 {
			return
		}
		chunks = chunks%n + 1
		v %= n
		ch := Chunking{N: n, Chunks: chunks}
		owner := ch.Owner(v)
		if owner >= chunks || ch.Start(owner) > v || v >= ch.End(owner) {
			t.Fatalf("n=%d chunks=%d v=%d: owner %d range [%d,%d)", n, chunks, v, owner, ch.Start(owner), ch.End(owner))
		}
	})
}
