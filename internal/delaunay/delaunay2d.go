package delaunay

import "fmt"

// superCoord places the three artificial bounding vertices far outside the
// unit-cube domain (including its periodic copies in [-1, 2]).
const superCoord = 1e4

// Tri is one triangle: V are point indices (counter-clockwise), N[i] is
// the index of the neighbour opposite V[i] (-1 at the outer boundary).
type Tri struct {
	V [3]int32
	N [3]int32
}

// T2 is an incremental 2-D Delaunay triangulation. Point indices 0..2 are
// the artificial super-triangle vertices. Per-triangle liveness and cavity
// membership share one state word (see the T3 epoch scheme).
type T2 struct {
	Pts      [][2]float64
	Tris     []Tri
	state    []uint32 // parallel to Tris: deadBit | cavity epoch
	free     []int32
	last     int32 // walk start hint
	liveHint int32 // most recently allocated tri; live between insertions
	epoch    uint32

	// scratch buffers reused across insertions
	cavity  []int32
	stack   []int32
	bnd     []boundary2
	newTris []int32
	// Fan-link scratch, indexed by vertex: vstart[v] is the new triangle
	// whose boundary edge starts at v, vend[v] the one whose edge ends at
	// v. Each insertion writes both slots of every boundary-cycle vertex
	// before any slot is read, so no per-insert clearing is needed.
	vstart []int32
	vend   []int32
	seen   map[[2]int32]bool // Edges dedup scratch, reused across calls
}

// boundary2 is one cavity boundary edge, oriented CCW seen from inside
// the cavity, with the triangle outside it (-1 at the hull).
type boundary2 struct {
	a, b    int32
	outside int32
}

// NewT2 creates a triangulation whose super-triangle encloses the domain
// [-superCoord/2, superCoord/2]^2. hint pre-sizes the point and triangle
// arenas (a planar triangulation has < 2n triangles, plus free-list
// churn) so steady-state insertion never grows them.
func NewT2(hint int) *T2 {
	t := &T2{
		Pts:     make([][2]float64, 0, hint+3),
		Tris:    make([]Tri, 0, 4*hint+8),
		state:   make([]uint32, 0, 4*hint+8),
		free:    make([]int32, 0, 32),
		cavity:  make([]int32, 0, 32),
		stack:   make([]int32, 0, 32),
		bnd:     make([]boundary2, 0, 32),
		newTris: make([]int32, 0, 32),
		vstart:  make([]int32, 0, hint+3),
		vend:    make([]int32, 0, hint+3),
		seen:    make(map[[2]int32]bool),
	}
	t.Pts = append(t.Pts,
		[2]float64{-3 * superCoord, -3 * superCoord},
		[2]float64{3 * superCoord, -3 * superCoord},
		[2]float64{0, 3 * superCoord},
	)
	t.Tris = append(t.Tris, Tri{V: [3]int32{0, 1, 2}, N: [3]int32{-1, -1, -1}})
	t.state = append(t.state, 0)
	return t
}

// Reset rewinds the triangulation to its freshly constructed state — only
// the super-triangle — while keeping every backing allocation (point and
// triangle stores, scratch buffers). A caller that triangulates many
// point sets of similar size reuses one T2 and allocates nothing in
// steady state; the insertion behaviour after Reset is bit-identical to a
// fresh NewT2.
func (t *T2) Reset() {
	t.Pts = t.Pts[:3]
	t.Tris = t.Tris[:1]
	t.Tris[0] = Tri{V: [3]int32{0, 1, 2}, N: [3]int32{-1, -1, -1}}
	t.state = t.state[:1]
	t.state[0] = 0
	t.free = t.free[:0]
	t.last = 0
	t.liveHint = 0
	t.vstart = t.vstart[:0]
	t.vend = t.vend[:0]
}

// nextEpoch advances the cavity epoch, clearing stale stamps in bulk on
// the (once per 2^31 insertions) wraparound.
func (t *T2) nextEpoch() uint32 {
	t.epoch++
	if t.epoch&epochMask == 0 {
		for i, s := range t.state {
			t.state[i] = s & deadBit
		}
		t.epoch = 1
	}
	return t.epoch
}

// Insert adds a point and returns its index.
func (t *T2) Insert(p [2]float64) int32 {
	idx := int32(len(t.Pts))
	t.Pts = append(t.Pts, p)
	for len(t.vstart) < len(t.Pts) {
		t.vstart = append(t.vstart, -1)
		t.vend = append(t.vend, -1)
	}

	loc := t.locate(p)

	// Collect the cavity: every triangle whose circumcircle contains p,
	// grown by BFS from the containing triangle.
	ep := t.nextEpoch()
	t.cavity = t.cavity[:0]
	t.stack = t.stack[:0]
	t.stack = append(t.stack, loc)
	t.state[loc] = ep
	for len(t.stack) > 0 {
		cur := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.cavity = append(t.cavity, cur)
		for _, nb := range t.Tris[cur].N {
			if nb < 0 || t.state[nb] == ep {
				continue
			}
			tri := &t.Tris[nb]
			if InCircle(t.Pts[tri.V[0]], t.Pts[tri.V[1]], t.Pts[tri.V[2]], p) > 0 {
				t.state[nb] = ep
				t.stack = append(t.stack, nb)
			}
		}
	}

	// Gather boundary edges (edge (V[i+1], V[i+2]) of a cavity triangle
	// whose neighbour N[i] is outside), create the fan of new triangles.
	edges := t.bnd[:0]
	for _, cur := range t.cavity {
		tri := t.Tris[cur]
		for i := 0; i < 3; i++ {
			nb := tri.N[i]
			if nb >= 0 && t.state[nb] == ep {
				continue
			}
			edges = append(edges, boundary2{
				a: tri.V[(i+1)%3], b: tri.V[(i+2)%3], outside: nb,
			})
		}
	}
	t.bnd = edges

	newTris := t.newTris[:0]
	for _, e := range edges {
		ti := t.alloc()
		t.Tris[ti] = Tri{V: [3]int32{e.a, e.b, idx}, N: [3]int32{-1, -1, e.outside}}
		if e.outside >= 0 {
			out := &t.Tris[e.outside]
			for i := 0; i < 3; i++ {
				if out.V[i] != e.a && out.V[i] != e.b {
					out.N[i] = ti
					break
				}
			}
		}
		t.vstart[e.a] = ti // tri whose boundary edge starts at a
		t.vend[e.b] = ti   // tri whose boundary edge ends at b
		newTris = append(newTris, ti)
	}
	// Link the fan: tri (a,b,idx) has neighbour opposite a across edge
	// (b, idx) — the tri starting at b; neighbour opposite b across edge
	// (idx, a) — the tri ending at a.
	for _, ti := range newTris {
		tri := &t.Tris[ti]
		a, b := tri.V[0], tri.V[1]
		tri.N[0] = t.vstart[b]
		tri.N[1] = t.vend[a]
	}
	// Retire the cavity.
	for _, cur := range t.cavity {
		t.state[cur] = deadBit
		t.free = append(t.free, cur)
	}
	t.last = newTris[0]
	t.newTris = newTris
	return idx
}

func (t *T2) alloc() int32 {
	if n := len(t.free); n > 0 {
		ti := t.free[n-1]
		t.free = t.free[:n-1]
		t.state[ti] = 0
		t.liveHint = ti
		return ti
	}
	t.Tris = append(t.Tris, Tri{})
	t.state = append(t.state, 0)
	ti := int32(len(t.Tris) - 1)
	t.liveHint = ti
	return ti
}

// locate walks from the hint triangle to the triangle containing p.
func (t *T2) locate(p [2]float64) int32 {
	cur := t.last
	if cur < 0 || int(cur) >= len(t.Tris) || t.state[cur]&deadBit != 0 {
		// liveHint is maintained live by alloc (see T2), so the walk can
		// always start there — no O(tris) rescan of dead slots.
		cur = t.liveHint
	}
	for steps := 0; steps < 8*len(t.Tris)+64; steps++ {
		tri := t.Tris[cur]
		moved := false
		for i := 0; i < 3; i++ {
			a := t.Pts[tri.V[(i+1)%3]]
			b := t.Pts[tri.V[(i+2)%3]]
			if Orient2D(a, b, p) < 0 {
				nb := tri.N[i]
				if nb < 0 {
					// Outside the super-triangle: should not happen for
					// points within the domain.
					panic(fmt.Sprintf("delaunay: point %v escapes the super-triangle", p))
				}
				cur = nb
				moved = true
				break
			}
		}
		if !moved {
			return cur
		}
	}
	panic("delaunay: point location did not terminate")
}

// IsSuper reports whether a point index is a super-triangle vertex.
func (t *T2) IsSuper(idx int32) bool { return idx < 3 }

// Dead reports whether a triangle slot has been retired by an insertion.
func (t *T2) Dead(ti int) bool { return t.state[ti]&deadBit != 0 }

// Edges calls emit once for every undirected edge (a < b) between real
// (non-super) points.
func (t *T2) Edges(emit func(a, b int32)) {
	if t.seen == nil {
		t.seen = make(map[[2]int32]bool)
	}
	seen := t.seen
	clear(seen)
	for ti := range t.Tris {
		if t.state[ti]&deadBit != 0 {
			continue
		}
		tri := t.Tris[ti]
		for i := 0; i < 3; i++ {
			a, b := tri.V[i], tri.V[(i+1)%3]
			if a < 3 || b < 3 {
				continue
			}
			if a > b {
				a, b = b, a
			}
			key := [2]int32{a, b}
			if !seen[key] {
				seen[key] = true
				emit(a, b)
			}
		}
	}
}

// Triangles calls emit for every live triangle with only real vertices.
func (t *T2) Triangles(emit func(v0, v1, v2 int32)) {
	for ti := range t.Tris {
		if t.state[ti]&deadBit != 0 {
			continue
		}
		tri := t.Tris[ti]
		if tri.V[0] < 3 || tri.V[1] < 3 || tri.V[2] < 3 {
			continue
		}
		emit(tri.V[0], tri.V[1], tri.V[2])
	}
}

// Circumcircle returns the circumcenter and squared radius of a triangle
// given by point indices.
func (t *T2) Circumcircle(v0, v1, v2 int32) (cx, cy, r2 float64) {
	a, b, c := t.Pts[v0], t.Pts[v1], t.Pts[v2]
	return circumcircle(a, b, c)
}

func circumcircle(a, b, c [2]float64) (cx, cy, r2 float64) {
	bx := b[0] - a[0]
	by := b[1] - a[1]
	cxv := c[0] - a[0]
	cyv := c[1] - a[1]
	d := 2 * (bx*cyv - by*cxv)
	if d == 0 {
		return a[0], a[1], 0
	}
	b2 := bx*bx + by*by
	c2 := cxv*cxv + cyv*cyv
	ux := (cyv*b2 - by*c2) / d
	uy := (bx*c2 - cxv*b2) / d
	return a[0] + ux, a[1] + uy, ux*ux + uy*uy
}

// Triangulate2D builds the Delaunay triangulation of a point set.
func Triangulate2D(pts [][2]float64) *T2 {
	t := NewT2(len(pts))
	for _, p := range pts {
		t.Insert(p)
	}
	return t
}
