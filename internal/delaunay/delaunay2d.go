package delaunay

import "fmt"

// superCoord places the three artificial bounding vertices far outside the
// unit-cube domain (including its periodic copies in [-1, 2]).
const superCoord = 1e4

// Tri is one triangle: V are point indices (counter-clockwise), N[i] is
// the index of the neighbour opposite V[i] (-1 at the outer boundary).
type Tri struct {
	V [3]int32
	N [3]int32
}

// T2 is an incremental 2-D Delaunay triangulation. Point indices 0..2 are
// the artificial super-triangle vertices.
type T2 struct {
	Pts  [][2]float64
	Tris []Tri
	dead []bool
	free []int32
	last int32 // walk start hint

	// scratch buffers reused across insertions
	cavity   []int32
	inCav    map[int32]bool
	stack    []int32
	edgeTri  map[int32]int32 // boundary edge start vertex -> new tri
	edgeTri2 map[int32]int32 // boundary edge end vertex -> new tri
	bnd      []boundary2
	newTris  []int32
}

// boundary2 is one cavity boundary edge, oriented CCW seen from inside
// the cavity, with the triangle outside it (-1 at the hull).
type boundary2 struct {
	a, b    int32
	outside int32
}

// NewT2 creates a triangulation whose super-triangle encloses the domain
// [-superCoord/2, superCoord/2]^2.
func NewT2(hint int) *T2 {
	t := &T2{
		Pts:      make([][2]float64, 0, hint+3),
		inCav:    make(map[int32]bool),
		edgeTri:  make(map[int32]int32),
		edgeTri2: make(map[int32]int32),
	}
	t.Pts = append(t.Pts,
		[2]float64{-3 * superCoord, -3 * superCoord},
		[2]float64{3 * superCoord, -3 * superCoord},
		[2]float64{0, 3 * superCoord},
	)
	t.Tris = append(t.Tris, Tri{V: [3]int32{0, 1, 2}, N: [3]int32{-1, -1, -1}})
	t.dead = append(t.dead, false)
	return t
}

// Reset rewinds the triangulation to its freshly constructed state — only
// the super-triangle — while keeping every backing allocation (point and
// triangle stores, scratch buffers, maps). A caller that triangulates
// many point sets of similar size reuses one T2 and allocates nothing in
// steady state; the insertion behaviour after Reset is bit-identical to a
// fresh NewT2.
func (t *T2) Reset() {
	t.Pts = t.Pts[:3]
	t.Tris = t.Tris[:1]
	t.Tris[0] = Tri{V: [3]int32{0, 1, 2}, N: [3]int32{-1, -1, -1}}
	t.dead = t.dead[:1]
	t.dead[0] = false
	t.free = t.free[:0]
	t.last = 0
}

// Insert adds a point and returns its index.
func (t *T2) Insert(p [2]float64) int32 {
	idx := int32(len(t.Pts))
	t.Pts = append(t.Pts, p)

	loc := t.locate(p)

	// Collect the cavity: every triangle whose circumcircle contains p,
	// grown by BFS from the containing triangle.
	t.cavity = t.cavity[:0]
	t.stack = t.stack[:0]
	for k := range t.inCav {
		delete(t.inCav, k)
	}
	t.stack = append(t.stack, loc)
	t.inCav[loc] = true
	for len(t.stack) > 0 {
		cur := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.cavity = append(t.cavity, cur)
		for _, nb := range t.Tris[cur].N {
			if nb < 0 || t.inCav[nb] {
				continue
			}
			tri := &t.Tris[nb]
			if InCircle(t.Pts[tri.V[0]], t.Pts[tri.V[1]], t.Pts[tri.V[2]], p) > 0 {
				t.inCav[nb] = true
				t.stack = append(t.stack, nb)
			}
		}
	}

	// Gather boundary edges (edge (V[i+1], V[i+2]) of a cavity triangle
	// whose neighbour N[i] is outside), create the fan of new triangles.
	for k := range t.edgeTri {
		delete(t.edgeTri, k)
	}
	for k := range t.edgeTri2 {
		delete(t.edgeTri2, k)
	}
	edges := t.bnd[:0]
	for _, cur := range t.cavity {
		tri := t.Tris[cur]
		for i := 0; i < 3; i++ {
			nb := tri.N[i]
			if nb >= 0 && t.inCav[nb] {
				continue
			}
			edges = append(edges, boundary2{
				a: tri.V[(i+1)%3], b: tri.V[(i+2)%3], outside: nb,
			})
		}
	}
	t.bnd = edges

	newTris := t.newTris[:0]
	for _, e := range edges {
		ti := t.alloc()
		t.Tris[ti] = Tri{V: [3]int32{e.a, e.b, idx}, N: [3]int32{-1, -1, e.outside}}
		if e.outside >= 0 {
			out := &t.Tris[e.outside]
			for i := 0; i < 3; i++ {
				if out.V[i] != e.a && out.V[i] != e.b {
					out.N[i] = ti
					break
				}
			}
		}
		t.edgeTri[e.a] = ti  // tri whose boundary edge starts at a
		t.edgeTri2[e.b] = ti // tri whose boundary edge ends at b
		newTris = append(newTris, ti)
	}
	// Link the fan: tri (a,b,idx) has neighbour opposite a across edge
	// (b, idx) — the tri starting at b; neighbour opposite b across edge
	// (idx, a) — the tri ending at a.
	for _, ti := range newTris {
		tri := &t.Tris[ti]
		a, b := tri.V[0], tri.V[1]
		tri.N[0] = t.edgeTri[b]
		tri.N[1] = t.edgeTri2[a]
	}
	// Retire the cavity.
	for _, cur := range t.cavity {
		t.dead[cur] = true
		t.free = append(t.free, cur)
	}
	t.last = newTris[0]
	t.newTris = newTris
	return idx
}

func (t *T2) alloc() int32 {
	if n := len(t.free); n > 0 {
		ti := t.free[n-1]
		t.free = t.free[:n-1]
		t.dead[ti] = false
		return ti
	}
	t.Tris = append(t.Tris, Tri{})
	t.dead = append(t.dead, false)
	return int32(len(t.Tris) - 1)
}

// locate walks from the hint triangle to the triangle containing p.
func (t *T2) locate(p [2]float64) int32 {
	cur := t.last
	if cur < 0 || int(cur) >= len(t.Tris) || t.dead[cur] {
		for i := range t.Tris {
			if !t.dead[i] {
				cur = int32(i)
				break
			}
		}
	}
	for steps := 0; steps < 8*len(t.Tris)+64; steps++ {
		tri := t.Tris[cur]
		moved := false
		for i := 0; i < 3; i++ {
			a := t.Pts[tri.V[(i+1)%3]]
			b := t.Pts[tri.V[(i+2)%3]]
			if Orient2D(a, b, p) < 0 {
				nb := tri.N[i]
				if nb < 0 {
					// Outside the super-triangle: should not happen for
					// points within the domain.
					panic(fmt.Sprintf("delaunay: point %v escapes the super-triangle", p))
				}
				cur = nb
				moved = true
				break
			}
		}
		if !moved {
			return cur
		}
	}
	panic("delaunay: point location did not terminate")
}

// IsSuper reports whether a point index is a super-triangle vertex.
func (t *T2) IsSuper(idx int32) bool { return idx < 3 }

// Dead reports whether a triangle slot has been retired by an insertion.
func (t *T2) Dead(ti int) bool { return t.dead[ti] }

// Edges calls emit once for every undirected edge (a < b) between real
// (non-super) points.
func (t *T2) Edges(emit func(a, b int32)) {
	seen := make(map[[2]int32]bool)
	for ti := range t.Tris {
		if t.dead[ti] {
			continue
		}
		tri := t.Tris[ti]
		for i := 0; i < 3; i++ {
			a, b := tri.V[i], tri.V[(i+1)%3]
			if a < 3 || b < 3 {
				continue
			}
			if a > b {
				a, b = b, a
			}
			key := [2]int32{a, b}
			if !seen[key] {
				seen[key] = true
				emit(a, b)
			}
		}
	}
}

// Triangles calls emit for every live triangle with only real vertices.
func (t *T2) Triangles(emit func(v0, v1, v2 int32)) {
	for ti := range t.Tris {
		if t.dead[ti] {
			continue
		}
		tri := t.Tris[ti]
		if tri.V[0] < 3 || tri.V[1] < 3 || tri.V[2] < 3 {
			continue
		}
		emit(tri.V[0], tri.V[1], tri.V[2])
	}
}

// Circumcircle returns the circumcenter and squared radius of a triangle
// given by point indices.
func (t *T2) Circumcircle(v0, v1, v2 int32) (cx, cy, r2 float64) {
	a, b, c := t.Pts[v0], t.Pts[v1], t.Pts[v2]
	return circumcircle(a, b, c)
}

func circumcircle(a, b, c [2]float64) (cx, cy, r2 float64) {
	bx := b[0] - a[0]
	by := b[1] - a[1]
	cxv := c[0] - a[0]
	cyv := c[1] - a[1]
	d := 2 * (bx*cyv - by*cxv)
	if d == 0 {
		return a[0], a[1], 0
	}
	b2 := bx*bx + by*by
	c2 := cxv*cxv + cyv*cyv
	ux := (cyv*b2 - by*c2) / d
	uy := (bx*c2 - cxv*b2) / d
	return a[0] + ux, a[1] + uy, ux*ux + uy*uy
}

// Triangulate2D builds the Delaunay triangulation of a point set.
func Triangulate2D(pts [][2]float64) *T2 {
	t := NewT2(len(pts))
	for _, p := range pts {
		t.Insert(p)
	}
	return t
}
