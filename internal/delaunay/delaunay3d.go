package delaunay

import "fmt"

// Tet is one tetrahedron: V are point indices with positive orientation
// (Orient3D(V0,V1,V2,V3) > 0), N[i] the neighbour opposite V[i].
type Tet struct {
	V [4]int32
	N [4]int32
}

// faceOrder[i] lists the vertex slots of the face opposite slot i, ordered
// so that Orient3D(face, V[i]) > 0 for a positively oriented tetrahedron.
var faceOrder = [4][3]int{{2, 1, 3}, {0, 2, 3}, {0, 3, 1}, {0, 1, 2}}

// Per-tet state word: the top bit marks a retired (dead) slot, the low 31
// bits hold the cavity epoch stamp. A tet is in the current insertion's
// cavity iff its state equals the current epoch — dead slots can never
// match because the dead bit is set, and freshly allocated tets carry
// state 0 while epochs start at 1. No per-insert clearing is needed; the
// epoch increment invalidates every stale stamp at once.
const (
	deadBit   = uint32(1) << 31
	epochMask = deadBit - 1
)

// T3 is an incremental 3-D Delaunay tetrahedralization. Point indices 0..3
// are the artificial bounding tetrahedron.
type T3 struct {
	Pts   [][3]float64
	Tets  []Tet
	state []uint32 // parallel to Tets: deadBit | cavity epoch
	free  []int32
	last  int32
	// liveHint is the most recently allocated tet. Retirement only happens
	// inside Insert after that insertion's allocations, so the hint always
	// names a live tet between insertions — an O(1) locate fallback.
	liveHint int32
	epoch    uint32

	cavity  []int32
	stack   []int32
	faces   []boundary3
	newTets []int32
	edges   edgeTable
	seen    map[[2]int32]bool // Edges dedup scratch, reused across calls
}

// boundary3 is one cavity boundary face with the tetrahedron outside it
// (-1 at the hull).
type boundary3 struct {
	f       [3]int32
	outside int32
}

// edgeTable matches the two cavity-boundary faces sharing each boundary
// edge. It is an open-addressed, epoch-stamped scratch table: begin()
// bumps the stamp, which empties every slot logically without touching
// memory, and matched pairs are marked consumed (tet = -1) rather than
// deleted so linear-probe chains stay intact. The unmatched counter
// restores the old map invariant: it must be zero after every insertion.
type edgeTable struct {
	slots     []edgeSlot
	stamp     uint32
	unmatched int
}

type edgeSlot struct {
	stamp uint32
	tet   int32
	slot  int32
	key   [2]int32
}

// begin readies the table for up to n entries at load factor <= 1/2.
func (e *edgeTable) begin(n int) {
	want := 16
	for want < 2*n {
		want <<= 1
	}
	if want > len(e.slots) {
		e.slots = make([]edgeSlot, want)
		e.stamp = 0
	}
	e.stamp++
	if e.stamp == 0 {
		for i := range e.slots {
			e.slots[i] = edgeSlot{}
		}
		e.stamp = 1
	}
	e.unmatched = 0
}

// match looks the edge up: on a hit it consumes the stored face and
// returns it; on a miss it records (tet, slot) and returns ok=false.
func (e *edgeTable) match(key [2]int32, tet, slot int32) (mtet, mslot int32, ok bool) {
	mask := uint32(len(e.slots) - 1)
	i := (uint32(key[0])*2654435761 ^ uint32(key[1])*2246822519) & mask
	for {
		s := &e.slots[i]
		if s.stamp != e.stamp {
			*s = edgeSlot{stamp: e.stamp, tet: tet, slot: slot, key: key}
			e.unmatched++
			return 0, 0, false
		}
		if s.key == key && s.tet >= 0 {
			mtet, mslot = s.tet, s.slot
			s.tet = -1
			e.unmatched--
			return mtet, mslot, true
		}
		i = (i + 1) & mask
	}
}

// NewT3 creates a tetrahedralization whose super-tetrahedron encloses the
// domain comfortably. hint is the expected number of inserted points; the
// tet arena is pre-sized for the ≈6.77·n tets of a random 3-D point set
// plus free-list churn, so steady-state insertion never grows it.
func NewT3(hint int) *T3 {
	t := &T3{
		Pts:     make([][3]float64, 0, hint+4),
		Tets:    make([]Tet, 0, 8*hint+16),
		state:   make([]uint32, 0, 8*hint+16),
		free:    make([]int32, 0, 64),
		cavity:  make([]int32, 0, 64),
		stack:   make([]int32, 0, 64),
		faces:   make([]boundary3, 0, 64),
		newTets: make([]int32, 0, 64),
		seen:    make(map[[2]int32]bool),
	}
	const s = superCoord
	t.Pts = append(t.Pts,
		[3]float64{-3 * s, -3 * s, -3 * s},
		[3]float64{9 * s, -3 * s, -3 * s},
		[3]float64{-3 * s, 9 * s, -3 * s},
		[3]float64{-3 * s, -3 * s, 9 * s},
	)
	// Orient3D of these four is positive (right-handed axes).
	t.Tets = append(t.Tets, Tet{V: [4]int32{0, 1, 2, 3}, N: [4]int32{-1, -1, -1, -1}})
	t.state = append(t.state, 0)
	return t
}

// Reset rewinds the tetrahedralization to its freshly constructed state —
// only the super-tetrahedron — keeping every backing allocation; see
// T2.Reset.
func (t *T3) Reset() {
	t.Pts = t.Pts[:4]
	t.Tets = t.Tets[:1]
	t.Tets[0] = Tet{V: [4]int32{0, 1, 2, 3}, N: [4]int32{-1, -1, -1, -1}}
	t.state = t.state[:1]
	t.state[0] = 0
	t.free = t.free[:0]
	t.last = 0
	t.liveHint = 0
}

// nextEpoch advances the cavity epoch, clearing stale stamps in bulk on
// the (once per 2^31 insertions) wraparound.
func (t *T3) nextEpoch() uint32 {
	t.epoch++
	if t.epoch&epochMask == 0 {
		for i, s := range t.state {
			t.state[i] = s & deadBit
		}
		t.epoch = 1
	}
	return t.epoch
}

// Insert adds a point and returns its index.
func (t *T3) Insert(p [3]float64) int32 {
	idx := int32(len(t.Pts))
	t.Pts = append(t.Pts, p)

	loc := t.locate(p)

	ep := t.nextEpoch()
	t.cavity = t.cavity[:0]
	t.stack = t.stack[:0]
	t.stack = append(t.stack, loc)
	t.state[loc] = ep
	for len(t.stack) > 0 {
		cur := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.cavity = append(t.cavity, cur)
		for _, nb := range t.Tets[cur].N {
			if nb < 0 || t.state[nb] == ep {
				continue
			}
			tt := &t.Tets[nb]
			if InSphere(t.Pts[tt.V[0]], t.Pts[tt.V[1]], t.Pts[tt.V[2]], t.Pts[tt.V[3]], p) > 0 {
				t.state[nb] = ep
				t.stack = append(t.stack, nb)
			}
		}
	}

	faces := t.faces[:0]
	for _, cur := range t.cavity {
		tt := t.Tets[cur]
		for i := 0; i < 4; i++ {
			nb := tt.N[i]
			if nb >= 0 && t.state[nb] == ep {
				continue
			}
			fo := faceOrder[i]
			faces = append(faces, boundary3{
				f:       [3]int32{tt.V[fo[0]], tt.V[fo[1]], tt.V[fo[2]]},
				outside: nb,
			})
		}
	}
	t.faces = faces

	// Create one new tet per boundary face and link internal faces via the
	// shared-edge table (each edge of the boundary polyhedron is shared by
	// exactly two faces).
	t.edges.begin(3 * len(faces))
	newTets := t.newTets[:0]
	for _, bf := range faces {
		ti := t.alloc()
		t.Tets[ti] = Tet{
			V: [4]int32{bf.f[0], bf.f[1], bf.f[2], idx},
			N: [4]int32{-1, -1, -1, bf.outside},
		}
		if bf.outside >= 0 {
			out := &t.Tets[bf.outside]
			for i := 0; i < 4; i++ {
				v := out.V[i]
				if v != bf.f[0] && v != bf.f[1] && v != bf.f[2] {
					out.N[i] = ti
					break
				}
			}
		}
		// Internal faces: opposite f[j] is the face (other two, idx) —
		// keyed by the boundary-face edge not containing f[j].
		for j := 0; j < 3; j++ {
			a, b := bf.f[(j+1)%3], bf.f[(j+2)%3]
			if a > b {
				a, b = b, a
			}
			if mt, ms, ok := t.edges.match([2]int32{a, b}, ti, int32(j)); ok {
				t.Tets[ti].N[j] = mt
				t.Tets[mt].N[ms] = ti
			}
		}
		newTets = append(newTets, ti)
	}
	if t.edges.unmatched != 0 {
		panic(fmt.Sprintf("delaunay3d: %d unmatched boundary edges", t.edges.unmatched))
	}
	for _, cur := range t.cavity {
		t.state[cur] = deadBit
		t.free = append(t.free, cur)
	}
	t.last = newTets[0]
	t.newTets = newTets
	return idx
}

func (t *T3) alloc() int32 {
	if n := len(t.free); n > 0 {
		ti := t.free[n-1]
		t.free = t.free[:n-1]
		t.state[ti] = 0
		t.liveHint = ti
		return ti
	}
	t.Tets = append(t.Tets, Tet{})
	t.state = append(t.state, 0)
	ti := int32(len(t.Tets) - 1)
	t.liveHint = ti
	return ti
}

func (t *T3) locate(p [3]float64) int32 {
	cur := t.last
	if cur < 0 || int(cur) >= len(t.Tets) || t.state[cur]&deadBit != 0 {
		// liveHint is maintained live by alloc (see T3), so the walk can
		// always start there — no O(tets) rescan of dead slots.
		cur = t.liveHint
	}
	for steps := 0; steps < 8*len(t.Tets)+64; steps++ {
		tt := t.Tets[cur]
		moved := false
		for i := 0; i < 4; i++ {
			fo := faceOrder[i]
			a := t.Pts[tt.V[fo[0]]]
			b := t.Pts[tt.V[fo[1]]]
			c := t.Pts[tt.V[fo[2]]]
			if Orient3D(a, b, c, p) < 0 {
				nb := tt.N[i]
				if nb < 0 {
					panic(fmt.Sprintf("delaunay3d: point %v escapes the super-tetrahedron", p))
				}
				cur = nb
				moved = true
				break
			}
		}
		if !moved {
			return cur
		}
	}
	panic("delaunay3d: point location did not terminate")
}

// IsSuper reports whether a point index belongs to the bounding tetrahedron.
func (t *T3) IsSuper(idx int32) bool { return idx < 4 }

// Dead reports whether a tetrahedron slot has been retired by an insertion.
func (t *T3) Dead(ti int) bool { return t.state[ti]&deadBit != 0 }

// Edges calls emit once per undirected edge (a < b) between real points.
func (t *T3) Edges(emit func(a, b int32)) {
	if t.seen == nil {
		t.seen = make(map[[2]int32]bool)
	}
	seen := t.seen
	clear(seen)
	for ti := range t.Tets {
		if t.state[ti]&deadBit != 0 {
			continue
		}
		tt := t.Tets[ti]
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				a, b := tt.V[i], tt.V[j]
				if a < 4 || b < 4 {
					continue
				}
				if a > b {
					a, b = b, a
				}
				key := [2]int32{a, b}
				if !seen[key] {
					seen[key] = true
					emit(a, b)
				}
			}
		}
	}
}

// Tetrahedra calls emit for every live tetrahedron with only real vertices.
func (t *T3) Tetrahedra(emit func(v [4]int32)) {
	for ti := range t.Tets {
		if t.state[ti]&deadBit != 0 {
			continue
		}
		tt := t.Tets[ti]
		if tt.V[0] < 4 || tt.V[1] < 4 || tt.V[2] < 4 || tt.V[3] < 4 {
			continue
		}
		emit(tt.V)
	}
}

// Circumsphere returns the circumcenter and squared radius of the
// tetrahedron with the given point indices.
func (t *T3) Circumsphere(v [4]int32) (c [3]float64, r2 float64) {
	return circumsphere(t.Pts[v[0]], t.Pts[v[1]], t.Pts[v[2]], t.Pts[v[3]])
}

func circumsphere(a, b, c, d [3]float64) (center [3]float64, r2 float64) {
	// Solve the linear system for the center relative to a.
	var m [3][3]float64
	var rhs [3]float64
	for i, p := range [][3]float64{b, c, d} {
		dx := p[0] - a[0]
		dy := p[1] - a[1]
		dz := p[2] - a[2]
		m[i] = [3]float64{dx, dy, dz}
		rhs[i] = 0.5 * (dx*dx + dy*dy + dz*dz)
	}
	det3 := func(r0, r1, r2 [3]float64) float64 {
		return r0[0]*(r1[1]*r2[2]-r1[2]*r2[1]) -
			r0[1]*(r1[0]*r2[2]-r1[2]*r2[0]) +
			r0[2]*(r1[0]*r2[1]-r1[1]*r2[0])
	}
	det := det3(m[0], m[1], m[2])
	if det == 0 {
		return a, 0
	}
	replace := func(col int) [3][3]float64 {
		out := m
		for i := 0; i < 3; i++ {
			out[i][col] = rhs[i]
		}
		return out
	}
	mx, my, mz := replace(0), replace(1), replace(2)
	ux := det3(mx[0], mx[1], mx[2]) / det
	uy := det3(my[0], my[1], my[2]) / det
	uz := det3(mz[0], mz[1], mz[2]) / det
	return [3]float64{a[0] + ux, a[1] + uy, a[2] + uz}, ux*ux + uy*uy + uz*uz
}

// Triangulate3D builds the Delaunay tetrahedralization of a point set.
func Triangulate3D(pts [][3]float64) *T3 {
	t := NewT3(len(pts))
	for _, p := range pts {
		t.Insert(p)
	}
	return t
}
