package delaunay

import (
	"math"
	"testing"

	"repro/internal/prng"
)

func TestOrient2D(t *testing.T) {
	a, b := [2]float64{0, 0}, [2]float64{1, 0}
	if Orient2D(a, b, [2]float64{0, 1}) <= 0 {
		t.Error("CCW triple not positive")
	}
	if Orient2D(a, b, [2]float64{0, -1}) >= 0 {
		t.Error("CW triple not negative")
	}
	if Orient2D(a, b, [2]float64{2, 0}) != 0 {
		t.Error("collinear triple not zero")
	}
}

func TestOrient2DNearDegenerate(t *testing.T) {
	// Points nearly collinear: the filter must fall through to exact
	// arithmetic and give consistent signs.
	a := [2]float64{0, 0}
	b := [2]float64{1e-30, 1e-30}
	c := [2]float64{2e-30, 2e-30}
	if Orient2D(a, b, c) != 0 {
		t.Error("exactly collinear tiny points should give zero")
	}
	d := [2]float64{2e-30, 2.0000000000000004e-30}
	s1 := Orient2D(a, b, d)
	s2 := Orient2D(b, a, d)
	if s1 == 0 || s2 == 0 || (s1 > 0) == (s2 > 0) {
		t.Errorf("inconsistent signs under swap: %v %v", s1, s2)
	}
}

func TestInCircle(t *testing.T) {
	a, b, c := [2]float64{0, 0}, [2]float64{1, 0}, [2]float64{0, 1}
	if InCircle(a, b, c, [2]float64{0.5, 0.5}) <= 0 {
		t.Error("circumcenter region point should be inside")
	}
	if InCircle(a, b, c, [2]float64{5, 5}) >= 0 {
		t.Error("far point should be outside")
	}
	if v := InCircle(a, b, c, [2]float64{1, 1}); v != 0 {
		t.Errorf("cocircular point should give 0, got %v", v)
	}
}

func TestOrient3D(t *testing.T) {
	a := [3]float64{0, 0, 0}
	b := [3]float64{1, 0, 0}
	c := [3]float64{0, 1, 0}
	if Orient3D(a, b, c, [3]float64{0, 0, 1}) <= 0 {
		t.Error("positive-side point not positive")
	}
	if Orient3D(a, b, c, [3]float64{0, 0, -1}) >= 0 {
		t.Error("negative-side point not negative")
	}
	if Orient3D(a, b, c, [3]float64{3, 4, 0}) != 0 {
		t.Error("coplanar point not zero")
	}
}

func TestInSphere(t *testing.T) {
	a := [3]float64{0, 0, 0}
	b := [3]float64{1, 0, 0}
	c := [3]float64{0, 1, 0}
	d := [3]float64{0, 0, 1}
	if Orient3D(a, b, c, d) <= 0 {
		t.Fatal("test tetra must be positively oriented")
	}
	if InSphere(a, b, c, d, [3]float64{0.5, 0.5, 0.5}) <= 0 {
		t.Error("circumcenter should be inside")
	}
	if InSphere(a, b, c, d, [3]float64{5, 5, 5}) >= 0 {
		t.Error("far point should be outside")
	}
	if v := InSphere(a, b, c, d, [3]float64{1, 1, 1}); v != 0 {
		t.Errorf("cospherical point should give 0, got %v", v)
	}
}

func randomPoints2(n int, seed uint64) [][2]float64 {
	r := prng.NewFromRaw(seed)
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{r.Float64(), r.Float64()}
	}
	return pts
}

func randomPoints3(n int, seed uint64) [][3]float64 {
	r := prng.NewFromRaw(seed)
	pts := make([][3]float64, n)
	for i := range pts {
		pts[i] = [3]float64{r.Float64(), r.Float64(), r.Float64()}
	}
	return pts
}

// TestDelaunay2DEmptyCircle: the defining property — no point inside any
// triangle's circumcircle (checked against all points, for triangles made
// of real vertices whose circumcircle is well inside the domain; triangles
// near the hull interact with the finite super-triangle).
func TestDelaunay2DEmptyCircle(t *testing.T) {
	pts := randomPoints2(250, 42)
	tr := Triangulate2D(pts)
	checked := 0
	tr.Triangles(func(v0, v1, v2 int32) {
		cx, cy, r2 := tr.Circumcircle(v0, v1, v2)
		r := math.Sqrt(r2)
		// Only validate circles fully inside the unit square: these cannot
		// be affected by the artificial bounding triangle.
		if cx-r < 0 || cx+r > 1 || cy-r < 0 || cy+r > 1 {
			return
		}
		checked++
		for i, p := range tr.Pts {
			if int32(i) == v0 || int32(i) == v1 || int32(i) == v2 || i < 3 {
				continue
			}
			if InCircle(tr.Pts[v0], tr.Pts[v1], tr.Pts[v2], p) > 0 {
				t.Fatalf("point %d inside circumcircle of (%d,%d,%d)", i, v0, v1, v2)
			}
		}
	})
	if checked < 100 {
		t.Fatalf("only %d interior triangles checked", checked)
	}
}

// TestDelaunay2DStructure: Euler-type sanity — every input point inserted,
// edges connect valid indices, neighbour pointers are mutual.
func TestDelaunay2DStructure(t *testing.T) {
	pts := randomPoints2(500, 7)
	tr := Triangulate2D(pts)
	if len(tr.Pts) != 503 {
		t.Fatalf("%d points stored, want 503", len(tr.Pts))
	}
	edges := 0
	tr.Edges(func(a, b int32) {
		if a >= b || a < 3 || int(b) >= len(tr.Pts) {
			t.Fatalf("bad edge (%d,%d)", a, b)
		}
		edges++
	})
	// A planar triangulation of n points has at most 3n-6 edges and, for
	// random points, close to 3n.
	if edges < 2*500 || edges > 3*500 {
		t.Errorf("%d edges for 500 points", edges)
	}
	// Mutual neighbour pointers.
	for ti := range tr.Tris {
		if tr.Dead(ti) {
			continue
		}
		for _, nb := range tr.Tris[ti].N {
			if nb < 0 {
				continue
			}
			if tr.Dead(int(nb)) {
				t.Fatalf("triangle %d points to dead neighbour %d", ti, nb)
			}
			found := false
			for _, back := range tr.Tris[nb].N {
				if back == int32(ti) {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbour pointer %d->%d not mutual", ti, nb)
			}
		}
	}
}

// TestDelaunay2DOrientation: all live triangles stay counter-clockwise.
func TestDelaunay2DOrientation(t *testing.T) {
	pts := randomPoints2(300, 9)
	tr := Triangulate2D(pts)
	for ti := range tr.Tris {
		if tr.Dead(ti) {
			continue
		}
		v := tr.Tris[ti].V
		if Orient2D(tr.Pts[v[0]], tr.Pts[v[1]], tr.Pts[v[2]]) <= 0 {
			t.Fatalf("triangle %d not CCW", ti)
		}
	}
}

// TestDelaunay2DGrid: a regular grid stresses cocircular degeneracies
// (every unit square's corners are cocircular).
func TestDelaunay2DGrid(t *testing.T) {
	var pts [][2]float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pts = append(pts, [2]float64{float64(i) / 8, float64(j) / 8})
		}
	}
	tr := Triangulate2D(pts)
	count := 0
	tr.Triangles(func(v0, v1, v2 int32) { count++ })
	// 7x7 squares, two triangles each = 98 interior triangles minimum
	// (hull triangles may touch the super-vertices).
	if count < 90 {
		t.Errorf("grid produced only %d real triangles", count)
	}
}

// TestDelaunay3DEmptySphere: no real point strictly inside a well-interior
// tetrahedron's circumsphere.
func TestDelaunay3DEmptySphere(t *testing.T) {
	pts := randomPoints3(220, 11)
	tr := Triangulate3D(pts)
	checked := 0
	tr.Tetrahedra(func(v [4]int32) {
		c, r2 := tr.Circumsphere(v)
		r := math.Sqrt(r2)
		for d := 0; d < 3; d++ {
			if c[d]-r < 0 || c[d]+r > 1 {
				return
			}
		}
		checked++
		for i, p := range tr.Pts {
			if i < 4 || int32(i) == v[0] || int32(i) == v[1] || int32(i) == v[2] || int32(i) == v[3] {
				continue
			}
			if InSphere(tr.Pts[v[0]], tr.Pts[v[1]], tr.Pts[v[2]], tr.Pts[v[3]], p) > 0 {
				t.Fatalf("point %d inside circumsphere of %v", i, v)
			}
		}
	})
	if checked < 50 {
		t.Fatalf("only %d interior tetrahedra checked", checked)
	}
}

func TestDelaunay3DStructure(t *testing.T) {
	pts := randomPoints3(300, 13)
	tr := Triangulate3D(pts)
	if len(tr.Pts) != 304 {
		t.Fatalf("%d points stored", len(tr.Pts))
	}
	for ti := range tr.Tets {
		if tr.Dead(ti) {
			continue
		}
		v := tr.Tets[ti].V
		if Orient3D(tr.Pts[v[0]], tr.Pts[v[1]], tr.Pts[v[2]], tr.Pts[v[3]]) <= 0 {
			t.Fatalf("tet %d not positively oriented", ti)
		}
		for _, nb := range tr.Tets[ti].N {
			if nb < 0 {
				continue
			}
			found := false
			for _, back := range tr.Tets[nb].N {
				if back == int32(ti) {
					found = true
				}
			}
			if !found {
				t.Fatalf("tet neighbour %d->%d not mutual", ti, nb)
			}
		}
	}
	edges := 0
	tr.Edges(func(a, b int32) { edges++ })
	// Random 3D Delaunay has ~7.8 edges per point on average (interior);
	// accept a broad band.
	if edges < 4*300 || edges > 9*300 {
		t.Errorf("%d edges for 300 points", edges)
	}
}

// TestCircumcircleCorrect: circumcenter equidistant from all three points.
func TestCircumcircleCorrect(t *testing.T) {
	r := prng.NewFromRaw(17)
	for i := 0; i < 1000; i++ {
		a := [2]float64{r.Float64(), r.Float64()}
		b := [2]float64{r.Float64(), r.Float64()}
		c := [2]float64{r.Float64(), r.Float64()}
		cx, cy, r2 := circumcircle(a, b, c)
		for _, p := range [][2]float64{a, b, c} {
			d2 := (p[0]-cx)*(p[0]-cx) + (p[1]-cy)*(p[1]-cy)
			if math.Abs(d2-r2) > 1e-6*(1+r2) {
				t.Fatalf("circumcircle not equidistant: %v vs %v", d2, r2)
			}
		}
	}
}

// TestCircumsphereCorrect: same in 3D.
func TestCircumsphereCorrect(t *testing.T) {
	r := prng.NewFromRaw(19)
	for i := 0; i < 1000; i++ {
		a := [3]float64{r.Float64(), r.Float64(), r.Float64()}
		b := [3]float64{r.Float64(), r.Float64(), r.Float64()}
		c := [3]float64{r.Float64(), r.Float64(), r.Float64()}
		d := [3]float64{r.Float64(), r.Float64(), r.Float64()}
		center, r2 := circumsphere(a, b, c, d)
		for _, p := range [][3]float64{a, b, c, d} {
			var d2 float64
			for k := 0; k < 3; k++ {
				d2 += (p[k] - center[k]) * (p[k] - center[k])
			}
			if math.Abs(d2-r2) > 1e-5*(1+r2) {
				t.Fatalf("circumsphere not equidistant: %v vs %v", d2, r2)
			}
		}
	}
}

func BenchmarkTriangulate2D(b *testing.B) {
	pts := randomPoints2(2000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Triangulate2D(pts)
	}
}

func BenchmarkTriangulate3D(b *testing.B) {
	pts := randomPoints3(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Triangulate3D(pts)
	}
}

// TestDelaunay3DLattice: a cubic lattice is maximally degenerate (every
// cell's 8 corners are cospherical); the filtered exact predicates must
// still produce a valid tetrahedralization with mutual neighbour pointers
// and positive orientation.
func TestDelaunay3DLattice(t *testing.T) {
	var pts [][3]float64
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			for k := 0; k < 5; k++ {
				pts = append(pts, [3]float64{float64(i) / 5, float64(j) / 5, float64(k) / 5})
			}
		}
	}
	tr := Triangulate3D(pts)
	count := 0
	for ti := range tr.Tets {
		if tr.Dead(ti) {
			continue
		}
		v := tr.Tets[ti].V
		if Orient3D(tr.Pts[v[0]], tr.Pts[v[1]], tr.Pts[v[2]], tr.Pts[v[3]]) <= 0 {
			t.Fatalf("tet %d not positively oriented", ti)
		}
		for _, nb := range tr.Tets[ti].N {
			if nb < 0 {
				continue
			}
			mutual := false
			for _, back := range tr.Tets[nb].N {
				if back == int32(ti) {
					mutual = true
				}
			}
			if !mutual {
				t.Fatalf("non-mutual neighbour %d -> %d", ti, nb)
			}
		}
		count++
	}
	// A 4x4x4 cube decomposition yields at least 5 tets per cell.
	if count < 4*4*4*5 {
		t.Errorf("lattice produced only %d tets", count)
	}
}

// TestDelaunay2DCollinearRows: many collinear points stress the walk and
// the zero-orientation handling.
func TestDelaunay2DCollinearRows(t *testing.T) {
	var pts [][2]float64
	for i := 0; i < 30; i++ {
		pts = append(pts, [2]float64{float64(i) / 30, 0.5})
	}
	for i := 0; i < 30; i++ {
		pts = append(pts, [2]float64{float64(i) / 30, 0.6})
	}
	tr := Triangulate2D(pts)
	edges := 0
	tr.Edges(func(a, b int32) { edges++ })
	if edges < 59 {
		t.Errorf("two collinear rows produced only %d edges", edges)
	}
}
