package delaunay

import "math"

// Error-free float64 expansion arithmetic after Shewchuk ("Adaptive
// Precision Floating-Point Arithmetic and Fast Robust Geometric
// Predicates", 1997). A value is represented as an expansion: a sum of
// float64 components, nonoverlapping and sorted by increasing magnitude,
// whose exact sum is the represented number. The sign of an expansion is
// the sign of its largest (last) component. All routines work on
// caller-provided fixed-size arrays, so the exact predicate fallbacks
// built from them allocate nothing.
//
// Exactness requires that no intermediate product overflows and no
// nonzero roundoff term falls into the subnormal range. The generators
// only ever evaluate predicates on coordinates in [-9e4, 9e4] (the
// super-simplex scale), where every intermediate stays comfortably within
// normal float64 range; see DESIGN.md "Adaptive predicates and the tet
// arena" for the bound.

// twoSum computes a+b exactly as x+y with x = fl(a+b).
func twoSum(a, b float64) (x, y float64) {
	x = a + b
	bvirt := x - a
	avirt := x - bvirt
	bround := b - bvirt
	around := a - avirt
	return x, around + bround
}

// fastTwoSum is twoSum under the precondition |a| >= |b|.
func fastTwoSum(a, b float64) (x, y float64) {
	x = a + b
	bvirt := x - a
	return x, b - bvirt
}

// twoDiff computes a-b exactly as x+y with x = fl(a-b).
func twoDiff(a, b float64) (x, y float64) {
	x = a - b
	bvirt := a - x
	avirt := x + bvirt
	bround := bvirt - b
	around := a - avirt
	return x, around + bround
}

// twoProduct computes a*b exactly as x+y with x = fl(a*b). math.FMA
// rounds a*b-x in one step, and a*b-x is exactly representable, so y is
// the exact roundoff (Ogita/Rump/Oishi; replaces Shewchuk's Split).
func twoProduct(a, b float64) (x, y float64) {
	x = a * b
	return x, math.FMA(a, b, -x)
}

// fastExpansionSum adds expansions e and f into h, eliminating zero
// components (Shewchuk's FAST-EXPANSION-SUM-ZEROELIM). h must not alias e
// or f and needs room for len(e)+len(f) components. Returns the component
// count, at least 1 (h[0] = 0 for a zero sum).
func fastExpansionSum(e, f, h []float64) int {
	elen, flen := len(e), len(f)
	eidx, fidx, hidx := 0, 0, 0
	enow, fnow := e[0], f[0]
	var q, hh float64
	if (fnow > enow) == (fnow > -enow) {
		q = enow
		eidx++
		if eidx < elen {
			enow = e[eidx]
		}
	} else {
		q = fnow
		fidx++
		if fidx < flen {
			fnow = f[fidx]
		}
	}
	if eidx < elen && fidx < flen {
		if (fnow > enow) == (fnow > -enow) {
			q, hh = fastTwoSum(enow, q)
			eidx++
			if eidx < elen {
				enow = e[eidx]
			}
		} else {
			q, hh = fastTwoSum(fnow, q)
			fidx++
			if fidx < flen {
				fnow = f[fidx]
			}
		}
		if hh != 0 {
			h[hidx] = hh
			hidx++
		}
		for eidx < elen && fidx < flen {
			if (fnow > enow) == (fnow > -enow) {
				q, hh = twoSum(q, enow)
				eidx++
				if eidx < elen {
					enow = e[eidx]
				}
			} else {
				q, hh = twoSum(q, fnow)
				fidx++
				if fidx < flen {
					fnow = f[fidx]
				}
			}
			if hh != 0 {
				h[hidx] = hh
				hidx++
			}
		}
	}
	for eidx < elen {
		q, hh = twoSum(q, enow)
		eidx++
		if eidx < elen {
			enow = e[eidx]
		}
		if hh != 0 {
			h[hidx] = hh
			hidx++
		}
	}
	for fidx < flen {
		q, hh = twoSum(q, fnow)
		fidx++
		if fidx < flen {
			fnow = f[fidx]
		}
		if hh != 0 {
			h[hidx] = hh
			hidx++
		}
	}
	if q != 0 || hidx == 0 {
		h[hidx] = q
		hidx++
	}
	return hidx
}

// scaleExpansion multiplies expansion e by b into h, eliminating zero
// components (Shewchuk's SCALE-EXPANSION-ZEROELIM with FMA products). h
// must not alias e and needs room for 2*len(e) components.
func scaleExpansion(e []float64, b float64, h []float64) int {
	q, hh := twoProduct(e[0], b)
	hidx := 0
	if hh != 0 {
		h[hidx] = hh
		hidx++
	}
	for i := 1; i < len(e); i++ {
		t1, t0 := twoProduct(e[i], b)
		q2, hh := twoSum(q, t0)
		if hh != 0 {
			h[hidx] = hh
			hidx++
		}
		q, hh = fastTwoSum(t1, q2)
		if hh != 0 {
			h[hidx] = hh
			hidx++
		}
	}
	if q != 0 || hidx == 0 {
		h[hidx] = q
		hidx++
	}
	return hidx
}

// negateExpansion writes -e into out and returns the component count.
func negateExpansion(e []float64, out []float64) int {
	for i, v := range e {
		out[i] = -v
	}
	return len(e)
}

// prodTwoTwo multiplies the 2-expansions (e0,e1) and (f0,f1) — lo, hi
// order — into out (up to 8 components), returning the count.
func prodTwoTwo(e0, e1, f0, f1 float64, out *[8]float64) int {
	e := [2]float64{e0, e1}
	var t1, t2 [4]float64
	n1 := scaleExpansion(e[:], f0, t1[:])
	n2 := scaleExpansion(e[:], f1, t2[:])
	return fastExpansionSum(t1[:n1], t2[:n2], out[:])
}
