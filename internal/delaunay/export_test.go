package delaunay

// Test-only exports: the cross-check suite (delaunay_test package) compares
// the expansion-arithmetic exact fallbacks directly against a math/big
// reference, bypassing the floating-point filter.
var (
	Orient2DExact = orient2dExact
	InCircleExact = inCircleExact
	Orient3DExact = orient3dExact
	InSphereExact = inSphereExact
)

// Filter bounds, exported for the cross-check suite to classify inputs.
const (
	Orient2DBound = orient2dBound
	Orient3DBound = orient3dBound
	InCircleBound = inCircleBound
	InSphereBound = inSphereBound
)
