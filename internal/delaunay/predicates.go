// Package delaunay implements incremental Bowyer–Watson Delaunay
// triangulation in two and three dimensions — the substrate of the random
// Delaunay graph generator (paper §6), standing in for the CGAL backend of
// the original implementation.
//
// Geometric predicates use a floating-point filter: the determinant is
// evaluated in float64 together with a bound on its rounding error; only
// when the sign is uncertain is the computation repeated in high-precision
// arithmetic (math/big.Float), which keeps the triangulation robust
// without paying the exact-arithmetic cost on the common path.
package delaunay

import "math/big"

// filterEps scales the permanent (the sum of absolute products) into an
// error bound for the float64 determinant evaluation. 2^-44 is loose
// enough to cover every rounding path of the small determinants used here.
const filterEps = 1.0 / (1 << 44)

// bigPrec is the mantissa precision for the exact fallback; large enough
// that all products and sums of float64 inputs keep their sign.
const bigPrec = 420

// Orient2D returns a positive value if (a, b, c) wind counter-clockwise,
// negative if clockwise, zero if collinear.
func Orient2D(a, b, c [2]float64) float64 {
	adx, ady := a[0]-c[0], a[1]-c[1]
	bdx, bdy := b[0]-c[0], b[1]-c[1]
	det := adx*bdy - ady*bdx
	perm := abs(adx*bdy) + abs(ady*bdx)
	if det > perm*filterEps || -det > perm*filterEps {
		return det
	}
	return orient2DExact(a, b, c)
}

func orient2DExact(a, b, c [2]float64) float64 {
	bf := func(x float64) *big.Float { return big.NewFloat(x).SetPrec(bigPrec) }
	adx := new(big.Float).SetPrec(bigPrec).Sub(bf(a[0]), bf(c[0]))
	ady := new(big.Float).SetPrec(bigPrec).Sub(bf(a[1]), bf(c[1]))
	bdx := new(big.Float).SetPrec(bigPrec).Sub(bf(b[0]), bf(c[0]))
	bdy := new(big.Float).SetPrec(bigPrec).Sub(bf(b[1]), bf(c[1]))
	t1 := new(big.Float).SetPrec(bigPrec).Mul(adx, bdy)
	t2 := new(big.Float).SetPrec(bigPrec).Mul(ady, bdx)
	det := t1.Sub(t1, t2)
	f, _ := det.Float64()
	return f
}

// InCircle returns a positive value if d lies inside the circumcircle of
// the counter-clockwise triangle (a, b, c), negative outside, zero on it.
func InCircle(a, b, c, d [2]float64) float64 {
	adx, ady := a[0]-d[0], a[1]-d[1]
	bdx, bdy := b[0]-d[0], b[1]-d[1]
	cdx, cdy := c[0]-d[0], c[1]-d[1]

	ad2 := adx*adx + ady*ady
	bd2 := bdx*bdx + bdy*bdy
	cd2 := cdx*cdx + cdy*cdy

	m1 := bdx*cdy - bdy*cdx
	m2 := adx*cdy - ady*cdx
	m3 := adx*bdy - ady*bdx

	det := ad2*m1 - bd2*m2 + cd2*m3
	perm := ad2*(abs(bdx*cdy)+abs(bdy*cdx)) +
		bd2*(abs(adx*cdy)+abs(ady*cdx)) +
		cd2*(abs(adx*bdy)+abs(ady*bdx))
	if det > perm*filterEps || -det > perm*filterEps {
		return det
	}
	return inCircleExact(a, b, c, d)
}

func inCircleExact(a, b, c, d [2]float64) float64 {
	rows := make([][3]*big.Float, 3)
	for i, p := range [][2]float64{a, b, c} {
		dx := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[0]), big.NewFloat(d[0]))
		dy := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[1]), big.NewFloat(d[1]))
		sq := new(big.Float).SetPrec(bigPrec).Mul(dx, dx)
		sq.Add(sq, new(big.Float).SetPrec(bigPrec).Mul(dy, dy))
		rows[i] = [3]*big.Float{dx, dy, sq}
	}
	det := det3Big(rows)
	f, _ := det.Float64()
	return f
}

// det3Big computes a 3x3 determinant of big.Float rows.
func det3Big(r [][3]*big.Float) *big.Float {
	mul := func(x, y *big.Float) *big.Float {
		return new(big.Float).SetPrec(bigPrec).Mul(x, y)
	}
	sub := func(x, y *big.Float) *big.Float {
		return new(big.Float).SetPrec(bigPrec).Sub(x, y)
	}
	m1 := sub(mul(r[1][1], r[2][2]), mul(r[1][2], r[2][1]))
	m2 := sub(mul(r[1][0], r[2][2]), mul(r[1][2], r[2][0]))
	m3 := sub(mul(r[1][0], r[2][1]), mul(r[1][1], r[2][0]))
	det := mul(r[0][0], m1)
	det.Sub(det, mul(r[0][1], m2))
	det.Add(det, mul(r[0][2], m3))
	return det
}

// Orient3D returns a positive value if d lies on the positive side of the
// plane through (a, b, c) — the side towards which (b-a) x (c-a) points —
// negative on the other side, zero if coplanar.
func Orient3D(a, b, c, d [3]float64) float64 {
	// det of rows (b-a, c-a, d-a): positive when d is on the side of
	// (b-a) x (c-a).
	bax, bay, baz := b[0]-a[0], b[1]-a[1], b[2]-a[2]
	cax, cay, caz := c[0]-a[0], c[1]-a[1], c[2]-a[2]
	dax, day, daz := d[0]-a[0], d[1]-a[1], d[2]-a[2]

	det := bax*(cay*daz-caz*day) - bay*(cax*daz-caz*dax) + baz*(cax*day-cay*dax)
	perm := abs(bax)*(abs(cay*daz)+abs(caz*day)) +
		abs(bay)*(abs(cax*daz)+abs(caz*dax)) +
		abs(baz)*(abs(cax*day)+abs(cay*dax))
	if det > perm*filterEps || -det > perm*filterEps {
		return det
	}
	return orient3DExact(a, b, c, d)
}

func orient3DExact(a, b, c, d [3]float64) float64 {
	rows := make([][3]*big.Float, 3)
	for i, p := range [][3]float64{b, c, d} {
		dx := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[0]), big.NewFloat(a[0]))
		dy := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[1]), big.NewFloat(a[1]))
		dz := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[2]), big.NewFloat(a[2]))
		rows[i] = [3]*big.Float{dx, dy, dz}
	}
	f, _ := det3Big(rows).Float64()
	return f
}

// InSphere returns a positive value if e lies inside the circumsphere of
// the positively oriented tetrahedron (a, b, c, d) (Orient3D(a,b,c,d) > 0),
// negative outside, zero on it.
func InSphere(a, b, c, d, e [3]float64) float64 {
	pts := [4][3]float64{a, b, c, d}
	var dx, dy, dz, sq [4]float64
	var perm float64
	for i, p := range pts {
		dx[i] = p[0] - e[0]
		dy[i] = p[1] - e[1]
		dz[i] = p[2] - e[2]
		sq[i] = dx[i]*dx[i] + dy[i]*dy[i] + dz[i]*dz[i]
	}
	// Expand along the squared-length column: det of the 4x4 matrix
	// [dx dy dz sq] rows a..d.
	minor := func(i, j, k int) float64 {
		return dx[i]*(dy[j]*dz[k]-dz[j]*dy[k]) -
			dy[i]*(dx[j]*dz[k]-dz[j]*dx[k]) +
			dz[i]*(dx[j]*dy[k]-dy[j]*dx[k])
	}
	minorAbs := func(i, j, k int) float64 {
		return abs(dx[i])*(abs(dy[j]*dz[k])+abs(dz[j]*dy[k])) +
			abs(dy[i])*(abs(dx[j]*dz[k])+abs(dz[j]*dx[k])) +
			abs(dz[i])*(abs(dx[j]*dy[k])+abs(dy[j]*dx[k]))
	}
	// Expansion along the sq column gives negative-inside for positively
	// oriented tetrahedra; the signs below are flipped so that positive
	// means inside.
	det := sq[0]*minor(1, 2, 3) - sq[1]*minor(0, 2, 3) +
		sq[2]*minor(0, 1, 3) - sq[3]*minor(0, 1, 2)
	perm = sq[0]*minorAbs(1, 2, 3) + sq[1]*minorAbs(0, 2, 3) +
		sq[2]*minorAbs(0, 1, 3) + sq[3]*minorAbs(0, 1, 2)
	if det > perm*filterEps || -det > perm*filterEps {
		return det
	}
	return inSphereExact(a, b, c, d, e)
}

func inSphereExact(a, b, c, d, e [3]float64) float64 {
	type row struct{ x, y, z, s *big.Float }
	rows := make([]row, 4)
	for i, p := range [][3]float64{a, b, c, d} {
		dx := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[0]), big.NewFloat(e[0]))
		dy := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[1]), big.NewFloat(e[1]))
		dz := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[2]), big.NewFloat(e[2]))
		sq := new(big.Float).SetPrec(bigPrec).Mul(dx, dx)
		sq.Add(sq, new(big.Float).SetPrec(bigPrec).Mul(dy, dy))
		sq.Add(sq, new(big.Float).SetPrec(bigPrec).Mul(dz, dz))
		rows[i] = row{dx, dy, dz, sq}
	}
	minor := func(i, j, k int) *big.Float {
		return det3Big([][3]*big.Float{
			{rows[i].x, rows[i].y, rows[i].z},
			{rows[j].x, rows[j].y, rows[j].z},
			{rows[k].x, rows[k].y, rows[k].z},
		})
	}
	mul := func(x, y *big.Float) *big.Float {
		return new(big.Float).SetPrec(bigPrec).Mul(x, y)
	}
	det := mul(rows[0].s, minor(1, 2, 3))
	det.Sub(det, mul(rows[1].s, minor(0, 2, 3)))
	det.Add(det, mul(rows[2].s, minor(0, 1, 3)))
	det.Sub(det, mul(rows[3].s, minor(0, 1, 2)))
	f, _ := det.Float64()
	return f
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
