// Package delaunay implements incremental Bowyer–Watson Delaunay
// triangulation in two and three dimensions — the substrate of the random
// Delaunay graph generator (paper §6), standing in for the CGAL backend of
// the original implementation.
//
// Geometric predicates are adaptive in the style of Shewchuk: the
// determinant is evaluated in float64 together with a statically derived
// bound on its rounding error, and only when the sign is uncertain is the
// computation repeated exactly in error-free float64 expansion arithmetic
// (expansion.go). Both paths determine the true sign, so which path runs
// never changes an emitted triangulation, and neither path allocates.
package delaunay

import "math"

// Statically derived stage-A filter constants: |fl(det) - det| <=
// bound * permanent for the float evaluations below, where the permanent
// is the same formula with every subtraction of products replaced by an
// addition of absolute values. The constants are Shewchuk's A-stage
// bounds (epsilon = 2^-53); the float determinant trees here match his
// stage-A trees term for term, and the inSphere constant carries extra
// headroom for the sequential (rather than balanced) final summation.
const (
	epsilon       = 1.0 / (1 << 53)
	orient2dBound = (3 + 16*epsilon) * epsilon
	orient3dBound = (7 + 56*epsilon) * epsilon
	inCircleBound = (10 + 96*epsilon) * epsilon
	inSphereBound = (20 + 256*epsilon) * epsilon
)

// FilterStats counts fast-path (filter certain) and exact-path (expansion
// fallback) predicate evaluations per predicate. Collection is test-only:
// production code leaves the package hook nil and pays one predictable
// branch per call. Not safe for concurrent collectors.
type FilterStats struct {
	Orient2DFast, Orient2DExact uint64
	InCircleFast, InCircleExact uint64
	Orient3DFast, Orient3DExact uint64
	InSphereFast, InSphereExact uint64
}

// filterStats, when non-nil, receives per-call filter outcome counts.
var filterStats *FilterStats

// CollectFilterStats installs (or, with nil, removes) the stats sink.
// Test and microbenchmark use only — single goroutine.
func CollectFilterStats(s *FilterStats) { filterStats = s }

// Orient2D returns a positive value if (a, b, c) wind counter-clockwise,
// negative if clockwise, zero if collinear.
func Orient2D(a, b, c [2]float64) float64 {
	adx, ady := a[0]-c[0], a[1]-c[1]
	bdx, bdy := b[0]-c[0], b[1]-c[1]
	det := adx*bdy - ady*bdx
	perm := abs(adx*bdy) + abs(ady*bdx)
	if det > perm*orient2dBound || -det > perm*orient2dBound {
		if filterStats != nil {
			filterStats.Orient2DFast++
		}
		return det
	}
	if filterStats != nil {
		filterStats.Orient2DExact++
	}
	return orient2dExact(a, b, c)
}

// orient2dExact evaluates (a0-c0)(b1-c1) - (a1-c1)(b0-c0) exactly: the
// translated coordinates are 2-expansions (twoDiff), so the determinant
// is a difference of two 8-component products.
func orient2dExact(a, b, c [2]float64) float64 {
	adx1, adx0 := twoDiff(a[0], c[0])
	ady1, ady0 := twoDiff(a[1], c[1])
	bdx1, bdx0 := twoDiff(b[0], c[0])
	bdy1, bdy0 := twoDiff(b[1], c[1])
	var t1, t2, neg [8]float64
	n1 := prodTwoTwo(adx0, adx1, bdy0, bdy1, &t1)
	n2 := prodTwoTwo(ady0, ady1, bdx0, bdx1, &t2)
	negateExpansion(t2[:n2], neg[:])
	var det [16]float64
	n := fastExpansionSum(t1[:n1], neg[:n2], det[:])
	return det[n-1]
}

// InCircle returns a positive value if d lies inside the circumcircle of
// the counter-clockwise triangle (a, b, c), negative outside, zero on it.
func InCircle(a, b, c, d [2]float64) float64 {
	adx, ady := a[0]-d[0], a[1]-d[1]
	bdx, bdy := b[0]-d[0], b[1]-d[1]
	cdx, cdy := c[0]-d[0], c[1]-d[1]

	ad2 := adx*adx + ady*ady
	bd2 := bdx*bdx + bdy*bdy
	cd2 := cdx*cdx + cdy*cdy

	m1 := bdx*cdy - bdy*cdx
	m2 := adx*cdy - ady*cdx
	m3 := adx*bdy - ady*bdx

	det := ad2*m1 - bd2*m2 + cd2*m3
	perm := ad2*(abs(bdx*cdy)+abs(bdy*cdx)) +
		bd2*(abs(adx*cdy)+abs(ady*cdx)) +
		cd2*(abs(adx*bdy)+abs(ady*bdx))
	if det > perm*inCircleBound || -det > perm*inCircleBound {
		if filterStats != nil {
			filterStats.InCircleFast++
		}
		return det
	}
	if filterStats != nil {
		filterStats.InCircleExact++
	}
	return inCircleExact(a, b, c, d)
}

// pairMinor writes the exact 4-expansion of px*qy - qx*py into out.
func pairMinor(p, q [2]float64, out *[4]float64) int {
	t1hi, t1lo := twoProduct(p[0], q[1])
	t2hi, t2lo := twoProduct(q[0], p[1])
	a := [2]float64{t1lo, t1hi}
	b := [2]float64{-t2lo, -t2hi}
	return fastExpansionSum(a[:], b[:], out[:])
}

// liftScale2 computes (px^2+py^2) * N exactly as px*(px*N) + py*(py*N),
// scaling by one float64 at a time. len(N) <= 12, out holds 96.
func liftScale2(p [2]float64, n []float64, out *[96]float64) int {
	var t24 [24]float64
	var tx, ty [48]float64
	k := scaleExpansion(n, p[0], t24[:])
	nx := scaleExpansion(t24[:k], p[0], tx[:])
	k = scaleExpansion(n, p[1], t24[:])
	ny := scaleExpansion(t24[:k], p[1], ty[:])
	return fastExpansionSum(tx[:nx], ty[:ny], out[:])
}

// inCircleExact evaluates the 4x4 determinant with rows
// (px, py, px^2+py^2, 1) over a, b, c, d exactly. Row-reducing by d and
// a column operation shows it equals the translated 3x3 determinant of
// the float path, so the signs agree on every input.
func inCircleExact(a, b, c, d [2]float64) float64 {
	var mab, mac, mad, mbc, mbd, mcd [4]float64
	nab := pairMinor(a, b, &mab)
	nac := pairMinor(a, c, &mac)
	nad := pairMinor(a, d, &mad)
	nbc := pairMinor(b, c, &mbc)
	nbd := pairMinor(b, d, &mbd)
	ncd := pairMinor(c, d, &mcd)

	// N_pqr = m_qr - m_pr + m_pq: the 3x3 minor over columns (x, y, 1).
	var neg [4]float64
	var t8 [8]float64
	triple := func(mqr []float64, mpr []float64, mpq []float64, out *[12]float64) int {
		nn := negateExpansion(mpr, neg[:])
		k := fastExpansionSum(mqr, neg[:nn], t8[:])
		return fastExpansionSum(t8[:k], mpq, out[:])
	}
	var nbcd, nacd, nabd, nabc [12]float64
	kbcd := triple(mcd[:ncd], mbd[:nbd], mbc[:nbc], &nbcd)
	kacd := triple(mcd[:ncd], mad[:nad], mac[:nac], &nacd)
	kabd := triple(mbd[:nbd], mad[:nad], mab[:nab], &nabd)
	kabc := triple(mbc[:nbc], mac[:nac], mab[:nab], &nabc)

	// det = +la*N_bcd - lb*N_acd + lc*N_abd - ld*N_abc.
	var ta, tb, tc, td [96]float64
	na := liftScale2(a, nbcd[:kbcd], &ta)
	nb := liftScale2(b, nacd[:kacd], &tb)
	nc := liftScale2(c, nabd[:kabd], &tc)
	nd := liftScale2(d, nabc[:kabc], &td)
	var negb, negd [96]float64
	negateExpansion(tb[:nb], negb[:])
	negateExpansion(td[:nd], negd[:])
	var s1, s2 [192]float64
	k1 := fastExpansionSum(ta[:na], negb[:nb], s1[:])
	k2 := fastExpansionSum(tc[:nc], negd[:nd], s2[:])
	var det [384]float64
	n := fastExpansionSum(s1[:k1], s2[:k2], det[:])
	return det[n-1]
}

// Orient3D returns a positive value if d lies on the positive side of the
// plane through (a, b, c) — the side towards which (b-a) x (c-a) points —
// negative on the other side, zero if coplanar.
func Orient3D(a, b, c, d [3]float64) float64 {
	// det of rows (b-a, c-a, d-a): positive when d is on the side of
	// (b-a) x (c-a).
	bax, bay, baz := b[0]-a[0], b[1]-a[1], b[2]-a[2]
	cax, cay, caz := c[0]-a[0], c[1]-a[1], c[2]-a[2]
	dax, day, daz := d[0]-a[0], d[1]-a[1], d[2]-a[2]

	det := bax*(cay*daz-caz*day) - bay*(cax*daz-caz*dax) + baz*(cax*day-cay*dax)
	perm := abs(bax)*(abs(cay*daz)+abs(caz*day)) +
		abs(bay)*(abs(cax*daz)+abs(caz*dax)) +
		abs(baz)*(abs(cax*day)+abs(cay*dax))
	if det > perm*orient3dBound || -det > perm*orient3dBound {
		if filterStats != nil {
			filterStats.Orient3DFast++
		}
		return det
	}
	if filterStats != nil {
		filterStats.Orient3DExact++
	}
	return orient3dExact(a, b, c, d)
}

// orient3dExact evaluates the translated 3x3 determinant exactly: the
// differences are 2-expansions, each 2x2 cofactor a 16-component
// expansion, and each row term at most 64 components.
func orient3dExact(a, b, c, d [3]float64) float64 {
	var ba, ca, da [3][2]float64 // [axis]{lo, hi}
	for i := 0; i < 3; i++ {
		ba[i][1], ba[i][0] = twoDiff(b[i], a[i])
		ca[i][1], ca[i][0] = twoDiff(c[i], a[i])
		da[i][1], da[i][0] = twoDiff(d[i], a[i])
	}
	// cross_x = cay*daz - caz*day, and cyclic; term_i = row_i * cross_i.
	var term [3][64]float64
	var tn [3]int
	cross := func(u, v int, out *[16]float64) int {
		// ca[u]*da[v] - ca[v]*da[u]
		var p1, p2, neg [8]float64
		n1 := prodTwoTwo(ca[u][0], ca[u][1], da[v][0], da[v][1], &p1)
		n2 := prodTwoTwo(ca[v][0], ca[v][1], da[u][0], da[u][1], &p2)
		negateExpansion(p2[:n2], neg[:])
		return fastExpansionSum(p1[:n1], neg[:n2], out[:])
	}
	var cr [16]float64
	var t32a, t32b [32]float64
	for i := 0; i < 3; i++ {
		u, v := (i+1)%3, (i+2)%3
		k := cross(u, v, &cr)
		n1 := scaleExpansion(cr[:k], ba[i][0], t32a[:])
		n2 := scaleExpansion(cr[:k], ba[i][1], t32b[:])
		tn[i] = fastExpansionSum(t32a[:n1], t32b[:n2], term[i][:])
	}
	// det = term0 + term1 + term2: cross(2,0) = caz*dax - cax*daz is
	// already the negated cofactor of bay, so every term adds.
	var s [128]float64
	k := fastExpansionSum(term[0][:tn[0]], term[1][:tn[1]], s[:])
	var det [192]float64
	n := fastExpansionSum(s[:k], term[2][:tn[2]], det[:])
	return det[n-1]
}

// InSphere returns a positive value if e lies inside the circumsphere of
// the positively oriented tetrahedron (a, b, c, d) (Orient3D(a,b,c,d) > 0),
// negative outside, zero on it.
func InSphere(a, b, c, d, e [3]float64) float64 {
	pts := [4][3]float64{a, b, c, d}
	var dx, dy, dz, sq [4]float64
	var perm float64
	for i, p := range pts {
		dx[i] = p[0] - e[0]
		dy[i] = p[1] - e[1]
		dz[i] = p[2] - e[2]
		sq[i] = dx[i]*dx[i] + dy[i]*dy[i] + dz[i]*dz[i]
	}
	// Expand along the squared-length column: det of the 4x4 matrix
	// [dx dy dz sq] rows a..d.
	minor := func(i, j, k int) float64 {
		return dx[i]*(dy[j]*dz[k]-dz[j]*dy[k]) -
			dy[i]*(dx[j]*dz[k]-dz[j]*dx[k]) +
			dz[i]*(dx[j]*dy[k]-dy[j]*dx[k])
	}
	minorAbs := func(i, j, k int) float64 {
		return abs(dx[i])*(abs(dy[j]*dz[k])+abs(dz[j]*dy[k])) +
			abs(dy[i])*(abs(dx[j]*dz[k])+abs(dz[j]*dx[k])) +
			abs(dz[i])*(abs(dx[j]*dy[k])+abs(dy[j]*dx[k]))
	}
	// Expansion along the sq column gives negative-inside for positively
	// oriented tetrahedra; the signs below are flipped so that positive
	// means inside.
	det := sq[0]*minor(1, 2, 3) - sq[1]*minor(0, 2, 3) +
		sq[2]*minor(0, 1, 3) - sq[3]*minor(0, 1, 2)
	perm = sq[0]*minorAbs(1, 2, 3) + sq[1]*minorAbs(0, 2, 3) +
		sq[2]*minorAbs(0, 1, 3) + sq[3]*minorAbs(0, 1, 2)
	if det > perm*inSphereBound || -det > perm*inSphereBound {
		if filterStats != nil {
			filterStats.InSphereFast++
		}
		return det
	}
	if filterStats != nil {
		filterStats.InSphereExact++
	}
	return inSphereExact(a, b, c, d, e)
}

// liftScale3 computes (px^2+py^2+pz^2) * N exactly as
// px*(px*N) + py*(py*N) + pz*(pz*N). len(N) <= 96, out holds 1152.
func liftScale3(p [3]float64, n []float64, out *[1152]float64) int {
	var t192 [192]float64
	var tx, ty, tz [384]float64
	k := scaleExpansion(n, p[0], t192[:])
	nx := scaleExpansion(t192[:k], p[0], tx[:])
	k = scaleExpansion(n, p[1], t192[:])
	ny := scaleExpansion(t192[:k], p[1], ty[:])
	k = scaleExpansion(n, p[2], t192[:])
	nz := scaleExpansion(t192[:k], p[2], tz[:])
	var t768 [768]float64
	nxy := fastExpansionSum(tx[:nx], ty[:ny], t768[:])
	return fastExpansionSum(t768[:nxy], tz[:nz], out[:])
}

// inSphereExact evaluates the 5x5 determinant with rows
// (px, py, pz, px^2+py^2+pz^2, 1) over a..e exactly (cofactor expansion
// along the lifted column, as in Shewchuk's insphereexact). Row-reducing
// by e and a column operation shows it equals the negated translated 4x4
// determinant of the float path, so the combination below carries the
// flipped signs and agrees with the float path on every input.
func inSphereExact(a, b, c, d, e [3]float64) float64 {
	p2 := func(p [3]float64) [2]float64 { return [2]float64{p[0], p[1]} }
	// Pairwise xy minors m_pq = px*qy - qx*py, 4-expansions.
	var mab, mac, mad, mae, mbc, mbd, mbe, mcd, mce, mde [4]float64
	nab := pairMinor(p2(a), p2(b), &mab)
	nac := pairMinor(p2(a), p2(c), &mac)
	nad := pairMinor(p2(a), p2(d), &mad)
	nae := pairMinor(p2(a), p2(e), &mae)
	nbc := pairMinor(p2(b), p2(c), &mbc)
	nbd := pairMinor(p2(b), p2(d), &mbd)
	nbe := pairMinor(p2(b), p2(e), &mbe)
	ncd := pairMinor(p2(c), p2(d), &mcd)
	nce := pairMinor(p2(c), p2(e), &mce)
	nde := pairMinor(p2(d), p2(e), &mde)

	// 3x3 minors over (x, y, z): M_pqr = pz*m_qr - qz*m_pr + rz*m_pq.
	var t8a, t8b, t8c [8]float64
	var t16 [16]float64
	zTriple := func(pz, qz, rz float64, mqr, mpr, mpq []float64, out *[24]float64) int {
		n1 := scaleExpansion(mqr, pz, t8a[:])
		n2 := scaleExpansion(mpr, -qz, t8b[:])
		n3 := scaleExpansion(mpq, rz, t8c[:])
		k := fastExpansionSum(t8a[:n1], t8b[:n2], t16[:])
		return fastExpansionSum(t16[:k], t8c[:n3], out[:])
	}
	var mabc, mabd, mabe, macd, mace, made, mbcd, mbce, mbde, mcde [24]float64
	kabc := zTriple(a[2], b[2], c[2], mbc[:nbc], mac[:nac], mab[:nab], &mabc)
	kabd := zTriple(a[2], b[2], d[2], mbd[:nbd], mad[:nad], mab[:nab], &mabd)
	kabe := zTriple(a[2], b[2], e[2], mbe[:nbe], mae[:nae], mab[:nab], &mabe)
	kacd := zTriple(a[2], c[2], d[2], mcd[:ncd], mad[:nad], mac[:nac], &macd)
	kace := zTriple(a[2], c[2], e[2], mce[:nce], mae[:nae], mac[:nac], &mace)
	kade := zTriple(a[2], d[2], e[2], mde[:nde], mae[:nae], mad[:nad], &made)
	kbcd := zTriple(b[2], c[2], d[2], mcd[:ncd], mbd[:nbd], mbc[:nbc], &mbcd)
	kbce := zTriple(b[2], c[2], e[2], mce[:nce], mbe[:nbe], mbc[:nbc], &mbce)
	kbde := zTriple(b[2], d[2], e[2], mde[:nde], mbe[:nbe], mbd[:nbd], &mbde)
	kcde := zTriple(c[2], d[2], e[2], mde[:nde], mce[:nce], mcd[:ncd], &mcde)

	// 4x4 minors over (x, y, z, 1):
	// N_pqrs = -M_qrs + M_prs - M_pqs + M_pqr.
	var neg24a, neg24b [24]float64
	var t48a, t48b [48]float64
	quad := func(mqrs, mprs, mpqs, mpqr []float64, out *[96]float64) int {
		n1 := negateExpansion(mqrs, neg24a[:])
		n2 := negateExpansion(mpqs, neg24b[:])
		ka := fastExpansionSum(neg24a[:n1], mprs, t48a[:])
		kb := fastExpansionSum(neg24b[:n2], mpqr, t48b[:])
		return fastExpansionSum(t48a[:ka], t48b[:kb], out[:])
	}
	var nbcde, nacde, nabde, nabce, nabcd [96]float64
	kbcde := quad(mcde[:kcde], mbde[:kbde], mbce[:kbce], mbcd[:kbcd], &nbcde)
	kacde := quad(mcde[:kcde], made[:kade], mace[:kace], macd[:kacd], &nacde)
	kabde := quad(mbde[:kbde], made[:kade], mabe[:kabe], mabd[:kabd], &nabde)
	kabce := quad(mbce[:kbce], mace[:kace], mabe[:kabe], mabc[:kabc], &nabce)
	kabcd := quad(mbcd[:kbcd], macd[:kacd], mabd[:kabd], mabc[:kabc], &nabcd)

	// Lifted terms with the positive-inside sign convention:
	// det = +la*N_bcde - lb*N_acde + lc*N_abde - ld*N_abce + le*N_abcd.
	var ta, tb, tc, td, te [1152]float64
	na := liftScale3(a, nbcde[:kbcde], &ta)
	nb := liftScale3(b, nacde[:kacde], &tb)
	nc := liftScale3(c, nabde[:kabde], &tc)
	nd := liftScale3(d, nabce[:kabce], &td)
	ne := liftScale3(e, nabcd[:kabcd], &te)
	var negb, negd [1152]float64
	negateExpansion(tb[:nb], negb[:])
	negateExpansion(td[:nd], negd[:])
	var s1, s2 [2304]float64
	k1 := fastExpansionSum(ta[:na], negb[:nb], s1[:])
	k2 := fastExpansionSum(tc[:nc], negd[:nd], s2[:])
	var s12 [4608]float64
	k12 := fastExpansionSum(s1[:k1], s2[:k2], s12[:])
	var det [5760]float64
	n := fastExpansionSum(s12[:k12], te[:ne], det[:])
	return det[n-1]
}

// abs is math.Abs (a compiler intrinsic — branch-free), aliased for the
// permanent computations where it dominates the filter's cost.
func abs(x float64) float64 { return math.Abs(x) }
