package delaunay_test

// Fuzz targets for the adaptive predicates: any finite input whose
// coordinates lie within the documented exactness domain must produce the
// same sign as the big.Rat reference, which is exact for every float64.

import (
	"math"
	"testing"

	"repro/internal/delaunay"
)

// fuzzable rejects inputs outside the exactness contract of the expansion
// arithmetic (see expansion.go): non-finite values, and magnitudes far
// outside the generator domain where products could overflow or roundoff
// terms could fall into the subnormal range.
func fuzzable(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		if a := math.Abs(v); a != 0 && (a < 1e-20 || a > 1e20) {
			return false
		}
	}
	return true
}

func FuzzOrient2D(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 0.0, 2.0, 0.0)
	f.Add(0.5, 0.5, 0.5, 0.5, 0.25, 0.75)
	f.Add(1e4, -1e4, -3e4, 9e4, 0.1, 0.2)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy float64) {
		if !fuzzable(ax, ay, bx, by, cx, cy) {
			t.Skip()
		}
		a, b, c := [2]float64{ax, ay}, [2]float64{bx, by}, [2]float64{cx, cy}
		want := ratOrient2D(a, b, c)
		if got := sign(delaunay.Orient2D(a, b, c)); got != want {
			t.Fatalf("Orient2D(%v,%v,%v) sign=%d want %d", a, b, c, got, want)
		}
	})
}

func FuzzInCircle(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0)
	f.Add(0.25, 0.5, 0.5, 0.25, 0.75, 0.5, 0.5, 0.75)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		if !fuzzable(ax, ay, bx, by, cx, cy, dx, dy) {
			t.Skip()
		}
		a, b, c, d := [2]float64{ax, ay}, [2]float64{bx, by}, [2]float64{cx, cy}, [2]float64{dx, dy}
		want := ratInCircle(a, b, c, d)
		if got := sign(delaunay.InCircle(a, b, c, d)); got != want {
			t.Fatalf("InCircle(%v,%v,%v,%v) sign=%d want %d", a, b, c, d, got, want)
		}
	})
}

func FuzzOrient3D(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0)
	f.Add(0.1, 0.2, 0.3, 1.1, 0.2, 0.3, 0.1, 1.2, 0.3, 1.1, 1.2, 0.3)
	f.Fuzz(func(t *testing.T, ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz float64) {
		if !fuzzable(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz) {
			t.Skip()
		}
		a := [3]float64{ax, ay, az}
		b := [3]float64{bx, by, bz}
		c := [3]float64{cx, cy, cz}
		d := [3]float64{dx, dy, dz}
		want := ratOrient3D(a, b, c, d)
		if got := sign(delaunay.Orient3D(a, b, c, d)); got != want {
			t.Fatalf("Orient3D(%v,%v,%v,%v) sign=%d want %d", a, b, c, d, got, want)
		}
	})
}

func FuzzInSphere(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.25, 0.25, 0.25)
	f.Fuzz(func(t *testing.T, ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz, ex, ey, ez float64) {
		if !fuzzable(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz, ex, ey, ez) {
			t.Skip()
		}
		a := [3]float64{ax, ay, az}
		b := [3]float64{bx, by, bz}
		c := [3]float64{cx, cy, cz}
		d := [3]float64{dx, dy, dz}
		e := [3]float64{ex, ey, ez}
		want := ratInSphere(a, b, c, d, e)
		if got := sign(delaunay.InSphere(a, b, c, d, e)); got != want {
			t.Fatalf("InSphere(%v,%v,%v,%v,%v) sign=%d want %d", a, b, c, d, e, got, want)
		}
	})
}
