package delaunay_test

// Cross-check suite for the expansion-arithmetic exact predicates: every
// sign they produce must match (a) the old math/big.Float fallback
// implementation (420-bit, replicated verbatim below) that the adaptive
// predicates replaced, and (b) a big.Rat reference that is exact for all
// float64 inputs. Inputs cover the generator coordinate domain, uniform
// random configurations, and adversarial degeneracies: collinear,
// coplanar, and cospherical point sets perturbed by a few ulps, plus the
// torus-wrapped parallelogram configurations that made the old filter
// punt on exactly coplanar quadruples.

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/delaunay"
)

const bigPrec = 420

// --- old big.Float reference (verbatim semantics of the replaced code) ---

func bigOrient2D(a, b, c [2]float64) float64 {
	bf := func(x float64) *big.Float { return big.NewFloat(x).SetPrec(bigPrec) }
	adx := new(big.Float).SetPrec(bigPrec).Sub(bf(a[0]), bf(c[0]))
	ady := new(big.Float).SetPrec(bigPrec).Sub(bf(a[1]), bf(c[1]))
	bdx := new(big.Float).SetPrec(bigPrec).Sub(bf(b[0]), bf(c[0]))
	bdy := new(big.Float).SetPrec(bigPrec).Sub(bf(b[1]), bf(c[1]))
	t1 := new(big.Float).SetPrec(bigPrec).Mul(adx, bdy)
	t2 := new(big.Float).SetPrec(bigPrec).Mul(ady, bdx)
	det := t1.Sub(t1, t2)
	f, _ := det.Float64()
	return f
}

func det3Big(r [][3]*big.Float) *big.Float {
	mul := func(x, y *big.Float) *big.Float {
		return new(big.Float).SetPrec(bigPrec).Mul(x, y)
	}
	sub := func(x, y *big.Float) *big.Float {
		return new(big.Float).SetPrec(bigPrec).Sub(x, y)
	}
	m1 := sub(mul(r[1][1], r[2][2]), mul(r[1][2], r[2][1]))
	m2 := sub(mul(r[1][0], r[2][2]), mul(r[1][2], r[2][0]))
	m3 := sub(mul(r[1][0], r[2][1]), mul(r[1][1], r[2][0]))
	det := mul(r[0][0], m1)
	det.Sub(det, mul(r[0][1], m2))
	det.Add(det, mul(r[0][2], m3))
	return det
}

func bigInCircle(a, b, c, d [2]float64) float64 {
	rows := make([][3]*big.Float, 3)
	for i, p := range [][2]float64{a, b, c} {
		dx := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[0]), big.NewFloat(d[0]))
		dy := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[1]), big.NewFloat(d[1]))
		sq := new(big.Float).SetPrec(bigPrec).Mul(dx, dx)
		sq.Add(sq, new(big.Float).SetPrec(bigPrec).Mul(dy, dy))
		rows[i] = [3]*big.Float{dx, dy, sq}
	}
	f, _ := det3Big(rows).Float64()
	return f
}

func bigOrient3D(a, b, c, d [3]float64) float64 {
	rows := make([][3]*big.Float, 3)
	for i, p := range [][3]float64{b, c, d} {
		dx := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[0]), big.NewFloat(a[0]))
		dy := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[1]), big.NewFloat(a[1]))
		dz := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[2]), big.NewFloat(a[2]))
		rows[i] = [3]*big.Float{dx, dy, dz}
	}
	f, _ := det3Big(rows).Float64()
	return f
}

func bigInSphere(a, b, c, d, e [3]float64) float64 {
	type row struct{ x, y, z, s *big.Float }
	rows := make([]row, 4)
	for i, p := range [][3]float64{a, b, c, d} {
		dx := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[0]), big.NewFloat(e[0]))
		dy := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[1]), big.NewFloat(e[1]))
		dz := new(big.Float).SetPrec(bigPrec).Sub(big.NewFloat(p[2]), big.NewFloat(e[2]))
		sq := new(big.Float).SetPrec(bigPrec).Mul(dx, dx)
		sq.Add(sq, new(big.Float).SetPrec(bigPrec).Mul(dy, dy))
		sq.Add(sq, new(big.Float).SetPrec(bigPrec).Mul(dz, dz))
		rows[i] = row{dx, dy, dz, sq}
	}
	minor := func(i, j, k int) *big.Float {
		return det3Big([][3]*big.Float{
			{rows[i].x, rows[i].y, rows[i].z},
			{rows[j].x, rows[j].y, rows[j].z},
			{rows[k].x, rows[k].y, rows[k].z},
		})
	}
	mul := func(x, y *big.Float) *big.Float {
		return new(big.Float).SetPrec(bigPrec).Mul(x, y)
	}
	det := mul(rows[0].s, minor(1, 2, 3))
	det.Sub(det, mul(rows[1].s, minor(0, 2, 3)))
	det.Add(det, mul(rows[2].s, minor(0, 1, 3)))
	det.Sub(det, mul(rows[3].s, minor(0, 1, 2)))
	f, _ := det.Float64()
	return f
}

// --- big.Rat reference: exact for every finite float64 input ---

func ratOrient2D(a, b, c [2]float64) int {
	r := func(x float64) *big.Rat { return new(big.Rat).SetFloat64(x) }
	adx := new(big.Rat).Sub(r(a[0]), r(c[0]))
	ady := new(big.Rat).Sub(r(a[1]), r(c[1]))
	bdx := new(big.Rat).Sub(r(b[0]), r(c[0]))
	bdy := new(big.Rat).Sub(r(b[1]), r(c[1]))
	det := new(big.Rat).Sub(new(big.Rat).Mul(adx, bdy), new(big.Rat).Mul(ady, bdx))
	return det.Sign()
}

func det3Rat(r [3][3]*big.Rat) *big.Rat {
	mul := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Mul(x, y) }
	sub := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Sub(x, y) }
	m1 := sub(mul(r[1][1], r[2][2]), mul(r[1][2], r[2][1]))
	m2 := sub(mul(r[1][0], r[2][2]), mul(r[1][2], r[2][0]))
	m3 := sub(mul(r[1][0], r[2][1]), mul(r[1][1], r[2][0]))
	det := mul(r[0][0], m1)
	det.Sub(det, mul(r[0][1], m2))
	det.Add(det, mul(r[0][2], m3))
	return det
}

func ratOrient3D(a, b, c, d [3]float64) int {
	var rows [3][3]*big.Rat
	for i, p := range [][3]float64{b, c, d} {
		for j := 0; j < 3; j++ {
			rows[i][j] = new(big.Rat).Sub(new(big.Rat).SetFloat64(p[j]), new(big.Rat).SetFloat64(a[j]))
		}
	}
	return det3Rat(rows).Sign()
}

func ratInCircle(a, b, c, d [2]float64) int {
	var rows [3][3]*big.Rat
	for i, p := range [][2]float64{a, b, c} {
		dx := new(big.Rat).Sub(new(big.Rat).SetFloat64(p[0]), new(big.Rat).SetFloat64(d[0]))
		dy := new(big.Rat).Sub(new(big.Rat).SetFloat64(p[1]), new(big.Rat).SetFloat64(d[1]))
		sq := new(big.Rat).Add(new(big.Rat).Mul(dx, dx), new(big.Rat).Mul(dy, dy))
		rows[i] = [3]*big.Rat{dx, dy, sq}
	}
	return det3Rat(rows).Sign()
}

func ratInSphere(a, b, c, d, e [3]float64) int {
	type row struct{ x, y, z, s *big.Rat }
	var rows [4]row
	for i, p := range [][3]float64{a, b, c, d} {
		dx := new(big.Rat).Sub(new(big.Rat).SetFloat64(p[0]), new(big.Rat).SetFloat64(e[0]))
		dy := new(big.Rat).Sub(new(big.Rat).SetFloat64(p[1]), new(big.Rat).SetFloat64(e[1]))
		dz := new(big.Rat).Sub(new(big.Rat).SetFloat64(p[2]), new(big.Rat).SetFloat64(e[2]))
		sq := new(big.Rat).Mul(dx, dx)
		sq.Add(sq, new(big.Rat).Mul(dy, dy))
		sq.Add(sq, new(big.Rat).Mul(dz, dz))
		rows[i] = row{dx, dy, dz, sq}
	}
	minor := func(i, j, k int) *big.Rat {
		return det3Rat([3][3]*big.Rat{
			{rows[i].x, rows[i].y, rows[i].z},
			{rows[j].x, rows[j].y, rows[j].z},
			{rows[k].x, rows[k].y, rows[k].z},
		})
	}
	det := new(big.Rat).Mul(rows[0].s, minor(1, 2, 3))
	det.Sub(det, new(big.Rat).Mul(rows[1].s, minor(0, 2, 3)))
	det.Add(det, new(big.Rat).Mul(rows[2].s, minor(0, 1, 3)))
	det.Sub(det, new(big.Rat).Mul(rows[3].s, minor(0, 1, 2)))
	return det.Sign()
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// ulps nudges x by n ulps (n may be negative).
func ulps(x float64, n int) float64 {
	for ; n > 0; n-- {
		x = math.Nextafter(x, math.Inf(1))
	}
	for ; n < 0; n++ {
		x = math.Nextafter(x, math.Inf(-1))
	}
	return x
}

func check2(t *testing.T, tag string, a, b, c [2]float64) {
	t.Helper()
	want := ratOrient2D(a, b, c)
	if got := sign(delaunay.Orient2DExact(a, b, c)); got != want {
		t.Fatalf("%s: Orient2DExact(%v,%v,%v) sign=%d want %d", tag, a, b, c, got, want)
	}
	if got := sign(delaunay.Orient2D(a, b, c)); got != want {
		t.Fatalf("%s: Orient2D(%v,%v,%v) sign=%d want %d", tag, a, b, c, got, want)
	}
	if old := sign(bigOrient2D(a, b, c)); old != want {
		t.Fatalf("%s: big.Float reference disagrees with big.Rat: %d vs %d", tag, old, want)
	}
}

func checkCirc(t *testing.T, tag string, a, b, c, d [2]float64) {
	t.Helper()
	want := ratInCircle(a, b, c, d)
	if got := sign(delaunay.InCircleExact(a, b, c, d)); got != want {
		t.Fatalf("%s: InCircleExact(%v,%v,%v,%v) sign=%d want %d", tag, a, b, c, d, got, want)
	}
	if got := sign(delaunay.InCircle(a, b, c, d)); got != want {
		t.Fatalf("%s: InCircle(%v,%v,%v,%v) sign=%d want %d", tag, a, b, c, d, got, want)
	}
	if old := sign(bigInCircle(a, b, c, d)); old != want {
		t.Fatalf("%s: big.Float reference disagrees with big.Rat: %d vs %d", tag, old, want)
	}
}

func check3(t *testing.T, tag string, a, b, c, d [3]float64) {
	t.Helper()
	want := ratOrient3D(a, b, c, d)
	if got := sign(delaunay.Orient3DExact(a, b, c, d)); got != want {
		t.Fatalf("%s: Orient3DExact(%v,%v,%v,%v) sign=%d want %d", tag, a, b, c, d, got, want)
	}
	if got := sign(delaunay.Orient3D(a, b, c, d)); got != want {
		t.Fatalf("%s: Orient3D(%v,%v,%v,%v) sign=%d want %d", tag, a, b, c, d, got, want)
	}
	if old := sign(bigOrient3D(a, b, c, d)); old != want {
		t.Fatalf("%s: big.Float reference disagrees with big.Rat: %d vs %d", tag, old, want)
	}
}

func checkSph(t *testing.T, tag string, a, b, c, d, e [3]float64) {
	t.Helper()
	// The references replicate the predicate's own sign-flipped
	// (positive = inside) determinant, so signs compare directly.
	want := ratInSphere(a, b, c, d, e)
	if got := sign(delaunay.InSphereExact(a, b, c, d, e)); got != want {
		t.Fatalf("%s: InSphereExact(%v,%v,%v,%v,%v) sign=%d want %d", tag, a, b, c, d, e, got, want)
	}
	if got := sign(delaunay.InSphere(a, b, c, d, e)); got != want {
		t.Fatalf("%s: InSphere(%v,%v,%v,%v,%v) sign=%d want %d", tag, a, b, c, d, e, got, want)
	}
	if old := sign(bigInSphere(a, b, c, d, e)); old != want {
		t.Fatalf("%s: big.Float reference disagrees with big.Rat: %d vs %d", tag, old, want)
	}
}

func TestXCheckOrient2D(t *testing.T) {
	rng := rand.New(rand.NewSource(0x2d01))
	pt := func(scale float64) [2]float64 {
		return [2]float64{(rng.Float64() - 0.5) * scale, (rng.Float64() - 0.5) * scale}
	}
	for i := 0; i < 2000; i++ {
		check2(t, "random", pt(2), pt(2), pt(2))
		// Collinear triple (b = a + t*(c-a) in exact arithmetic only when t
		// has few bits), perturbed by ulps.
		a, c := pt(1.8e5), pt(1.8e5)
		b := [2]float64{(a[0] + c[0]) / 2, (a[1] + c[1]) / 2}
		b[rng.Intn(2)] = ulps(b[rng.Intn(2)], rng.Intn(5)-2)
		check2(t, "collinear", a, b, c)
		// Duplicate and axis-aligned cases.
		check2(t, "dup", a, a, c)
		check2(t, "axis", [2]float64{a[0], 0}, [2]float64{c[0], 0}, [2]float64{b[0], ulps(0, rng.Intn(3)-1)})
	}
}

func TestXCheckInCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(0x2d02))
	for i := 0; i < 1500; i++ {
		// Four points near a common circle: radius r around center o,
		// perturbed by a few ulps.
		ox, oy := (rng.Float64()-0.5)*2e4, (rng.Float64()-0.5)*2e4
		r := rng.Float64()*100 + 1
		var p [4][2]float64
		for j := range p {
			th := rng.Float64() * 2 * math.Pi
			p[j] = [2]float64{
				ulps(ox+r*math.Cos(th), rng.Intn(5)-2),
				ulps(oy+r*math.Sin(th), rng.Intn(5)-2),
			}
		}
		checkCirc(t, "cocircular", p[0], p[1], p[2], p[3])
		// Unit-lattice points are exactly cocircular in many configurations.
		q := [4][2]float64{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
		off := [2]float64{math.Trunc((rng.Float64() - 0.5) * 2e4), math.Trunc((rng.Float64() - 0.5) * 2e4)}
		for j := range q {
			q[j][0] += off[0]
			q[j][1] += off[1]
		}
		checkCirc(t, "lattice", q[0], q[1], q[2], q[3])
	}
}

func TestXCheckOrient3D(t *testing.T) {
	rng := rand.New(rand.NewSource(0x2d03))
	pt := func(scale float64) [3]float64 {
		return [3]float64{(rng.Float64() - 0.5) * scale, (rng.Float64() - 0.5) * scale, (rng.Float64() - 0.5) * scale}
	}
	for i := 0; i < 2000; i++ {
		check3(t, "random", pt(2), pt(2), pt(2), pt(2))
		// Torus-wrapped parallelogram: p, p+off, q, q+off are exactly
		// coplanar — the configuration that made the old filter punt.
		p, q := pt(1), pt(1)
		off := [3]float64{float64(rng.Intn(3) - 1), float64(rng.Intn(3) - 1), float64(rng.Intn(3) - 1)}
		p2 := [3]float64{p[0] + off[0], p[1] + off[1], p[2] + off[2]}
		q2 := [3]float64{q[0] + off[0], q[1] + off[1], q[2] + off[2]}
		check3(t, "parallelogram", p, p2, q, q2)
		// Coplanar quadruple perturbed by ulps.
		a, b, c := pt(1.8e5), pt(1.8e5), pt(1.8e5)
		d := [3]float64{
			ulps((a[0]+b[0]+c[0])/4, rng.Intn(5)-2),
			ulps((a[1]+b[1]+c[1])/4, rng.Intn(5)-2),
			ulps((a[2]+b[2]+c[2])/4, rng.Intn(5)-2),
		}
		check3(t, "near-coplanar", a, b, c, d)
		check3(t, "dup", a, b, a, c)
	}
}

func TestXCheckInSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(0x2d04))
	for i := 0; i < 600; i++ {
		// Five points near a common sphere, perturbed by ulps.
		o := [3]float64{(rng.Float64() - 0.5) * 2e4, (rng.Float64() - 0.5) * 2e4, (rng.Float64() - 0.5) * 2e4}
		r := rng.Float64()*100 + 1
		var p [5][3]float64
		for j := range p {
			th, ph := rng.Float64()*2*math.Pi, math.Acos(2*rng.Float64()-1)
			p[j] = [3]float64{
				ulps(o[0]+r*math.Sin(ph)*math.Cos(th), rng.Intn(5)-2),
				ulps(o[1]+r*math.Sin(ph)*math.Sin(th), rng.Intn(5)-2),
				ulps(o[2]+r*math.Cos(ph), rng.Intn(5)-2),
			}
		}
		// Orient the base tetrahedron positively, as Insert's callers do.
		if delaunay.Orient3D(p[0], p[1], p[2], p[3]) < 0 {
			p[0], p[1] = p[1], p[0]
		}
		checkSph(t, "cospherical", p[0], p[1], p[2], p[3], p[4])
		// Unit-lattice cube corners are exactly cospherical.
		q := [5][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}}
		off := [3]float64{
			math.Trunc((rng.Float64() - 0.5) * 2e4),
			math.Trunc((rng.Float64() - 0.5) * 2e4),
			math.Trunc((rng.Float64() - 0.5) * 2e4),
		}
		for j := range q {
			for k := 0; k < 3; k++ {
				q[j][k] += off[k]
			}
		}
		if delaunay.Orient3D(q[0], q[1], q[2], q[3]) < 0 {
			q[0], q[1] = q[1], q[0]
		}
		checkSph(t, "lattice", q[0], q[1], q[2], q[3], q[4])
	}
}
