package delaunay

import (
	"math/rand"
	"testing"
)

// TestResetBitIdentical2D: triangulating a point set on a Reset T2 — even
// one previously used for a different, larger set — produces exactly the
// triangle set of a fresh triangulation. The RDG generator relies on this
// to pool one triangulation across a PE's chunks without changing the
// instance definition.
func TestResetBitIdentical2D(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sets := make([][][2]float64, 3)
	for i := range sets {
		pts := make([][2]float64, 40+i*60)
		for j := range pts {
			pts[j] = [2]float64{rng.Float64(), rng.Float64()}
		}
		sets[i] = pts
	}
	pooled := NewT2(8)
	// Warm the pool on the largest set so later Resets shrink, too.
	for _, p := range sets[2] {
		pooled.Insert(p)
	}
	for _, pts := range sets {
		fresh := Triangulate2D(pts)
		pooled.Reset()
		for _, p := range pts {
			pooled.Insert(p)
		}
		var want, got [][3]int32
		fresh.Triangles(func(a, b, c int32) { want = append(want, [3]int32{a, b, c}) })
		pooled.Triangles(func(a, b, c int32) { got = append(got, [3]int32{a, b, c}) })
		if len(want) != len(got) {
			t.Fatalf("%d points: %d triangles after reset, want %d", len(pts), len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%d points: triangle %d = %v, want %v — Reset is not bit-identical", len(pts), i, got[i], want[i])
			}
		}
	}
}

// TestResetBitIdentical3D: the 3-D analogue of TestResetBitIdentical2D.
func TestResetBitIdentical3D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets := make([][][3]float64, 2)
	for i := range sets {
		pts := make([][3]float64, 30+i*40)
		for j := range pts {
			pts[j] = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		sets[i] = pts
	}
	pooled := NewT3(8)
	for _, p := range sets[1] {
		pooled.Insert(p)
	}
	for _, pts := range sets {
		fresh := Triangulate3D(pts)
		pooled.Reset()
		for _, p := range pts {
			pooled.Insert(p)
		}
		var want, got [][4]int32
		fresh.Tetrahedra(func(v [4]int32) { want = append(want, v) })
		pooled.Tetrahedra(func(v [4]int32) { got = append(got, v) })
		if len(want) != len(got) {
			t.Fatalf("%d points: %d tets after reset, want %d", len(pts), len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%d points: tet %d = %v, want %v — Reset is not bit-identical", len(pts), i, got[i], want[i])
			}
		}
	}
}
