// Package dist provides the exact discrete variate samplers the
// communication-free generators draw from hash-seeded streams: binomial
// (inversion below, BTRS rejection above the crossover), hypergeometric
// (inversion from the mode), multinomial (sequential conditional
// binomials) and the geometric skip of Batagelj–Brandes style samplers.
//
// Determinism contract: for a fixed prng.Random stream every sampler
// consumes a fixed, parameter-dependent number of variates and returns the
// same value on every PE — the samplers are part of the instance
// definition pinned by the golden tests.
package dist

import (
	"math"

	"repro/internal/prng"
)

// binomialInversionCutoff is the n*p crossover between the O(n*p)
// inversion sampler and the O(1) BTRS rejection sampler (ablation A1).
const binomialInversionCutoff = 10

// Binomial returns a sample of the Binomial(n, p) distribution: the number
// of successes among n independent trials of probability p.
func Binomial(r *prng.Random, n uint64, p float64) uint64 {
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exploit symmetry so the effective p is at most 1/2 (keeps both the
	// inversion product and the BTRS constants well conditioned).
	if p > 0.5 {
		return n - Binomial(r, n, 1-p)
	}
	if float64(n)*p < binomialInversionCutoff {
		return binomialInversion(r, n, p)
	}
	return binomialBTRS(r, n, p)
}

// binomialInversion samples by sequential search of the CDF from 0, using
// the multiplicative pmf recurrence. Expected O(n*p + 1) iterations.
func binomialInversion(r *prng.Random, n uint64, p float64) uint64 {
	q := 1 - p
	s := p / q
	// f(0) = q^n; computed in log space to survive large n.
	f := math.Exp(float64(n) * math.Log(q))
	u := r.Float64()
	var k uint64
	for {
		if u < f {
			return k
		}
		u -= f
		k++
		if k > n {
			// Float round-off exhausted the mass; clamp to the support.
			return n
		}
		f *= s * float64(n-k+1) / float64(k)
	}
}

// binomialBTRS samples with the transformed rejection method with squeeze
// of Hörmann ("The generation of binomial random variates", 1993),
// algorithm BTRS. Requires p <= 1/2 and n*p >= 10.
func binomialBTRS(r *prng.Random, n uint64, p float64) uint64 {
	nf := float64(n)
	q := 1 - p
	spq := math.Sqrt(nf * p * q)

	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b

	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor(float64(n+1) * p) // mode
	h := lgammaf(m+1) + lgammaf(nf-m+1)

	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > nf {
			continue
		}
		k := kf
		if us >= 0.07 && v <= vr {
			return uint64(k)
		}
		// Acceptance test in log space against the exact pmf ratio.
		v = math.Log(v * alpha / (a/(us*us) + b))
		if v <= h-lgammaf(k+1)-lgammaf(nf-k+1)+(k-m)*lpq {
			return uint64(k)
		}
	}
}

func lgammaf(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// hruaSampleCutoff is the effective sample size below which the O(mean)
// chop-down inversion replaces the O(1) HRUA rejection sampler.
const hruaSampleCutoff = 10

// Hypergeometric returns the number of "good" items in a sample of k items
// drawn without replacement from a universe of `total` items of which
// `good` are good. Large samples use the HRUA ratio-of-uniforms rejection
// algorithm of Stadlober (the variant popularized by numpy); tiny samples
// fall back to chop-down inversion from the lower support bound.
func Hypergeometric(r *prng.Random, total, good, k uint64) uint64 {
	if k == 0 || good == 0 {
		return 0
	}
	if k >= total {
		return good
	}
	if good >= total {
		return k
	}
	m := k
	if total-k < m {
		m = total - k
	}
	if m > hruaSampleCutoff {
		return hypergeometricHRUA(r, total, good, k)
	}
	return hypergeometricInversion(r, total, good, k)
}

// hypergeometricInversion samples by sequential search of the CDF from the
// lower support bound with the multiplicative pmf recurrence.
func hypergeometricInversion(r *prng.Random, total, good, k uint64) uint64 {
	tf, gf, kf := float64(total), float64(good), float64(k)
	lo := uint64(0)
	if k+good > total {
		lo = k + good - total
	}
	hi := good
	if k < good {
		hi = k
	}
	lpmf := func(x float64) float64 {
		return lgammaf(gf+1) - lgammaf(x+1) - lgammaf(gf-x+1) +
			lgammaf(tf-gf+1) - lgammaf(kf-x+1) - lgammaf(tf-gf-kf+x+1) -
			(lgammaf(tf+1) - lgammaf(kf+1) - lgammaf(tf-kf+1))
	}
	f := math.Exp(lpmf(float64(lo)))
	u := r.Float64()
	x := lo
	for {
		if u < f {
			return x
		}
		u -= f
		if x >= hi {
			// Float round-off exhausted the mass; clamp to the support.
			return hi
		}
		// pmf(x+1)/pmf(x)
		xf := float64(x)
		f *= (gf - xf) * (kf - xf) / ((xf + 1) * (tf - gf - kf + xf + 1))
		x++
	}
}

// hypergeometricHRUA samples with Stadlober's HRUA ratio-of-uniforms
// rejection: candidates w = d6 + d8*(y-0.5)/x are accepted by a squeeze,
// then an exact log-pmf comparison. The symmetry reductions at entry and
// exit keep the worked distribution in its well-conditioned quadrant.
func hypergeometricHRUA(r *prng.Random, total, good, k uint64) uint64 {
	const d1 = 1.7155277699214135 // 2*sqrt(2/e)
	const d2 = 0.8989161620588988 // 3 - 2*sqrt(3/e)
	tf := float64(total)
	bad := total - good
	mingb := good
	if bad < mingb {
		mingb = bad
	}
	maxgb := total - mingb
	m := k
	if total-k < m {
		m = total - k
	}
	mf, mingbf, maxgbf := float64(m), float64(mingb), float64(maxgb)
	kf := float64(k)
	d4 := mingbf / tf
	d5 := 1 - d4
	d6 := mf*d4 + 0.5
	d7 := math.Sqrt((tf-mf)*kf*d4*d5/(tf-1) + 0.5)
	d8 := d1*d7 + d2
	d9 := math.Floor((mf + 1) * (mingbf + 1) / (tf + 2)) // mode
	d10 := lgammaf(d9+1) + lgammaf(mingbf-d9+1) + lgammaf(mf-d9+1) + lgammaf(maxgbf-mf+d9+1)
	d11 := math.Min(math.Min(mf, mingbf)+1, math.Floor(d6+16*d7))
	var z float64
	for {
		x := r.Float64()
		y := r.Float64()
		if x == 0 {
			continue // w would be NaN/Inf; keep the stream moving
		}
		w := d6 + d8*(y-0.5)/x
		if w < 0 || w >= d11 {
			continue
		}
		z = math.Floor(w)
		t := d10 - (lgammaf(z+1) + lgammaf(mingbf-z+1) + lgammaf(mf-z+1) + lgammaf(maxgbf-mf+z+1))
		if x*(4-x)-3 <= t {
			break
		}
		if x*(x-t) >= 1 {
			continue
		}
		if 2*math.Log(x) <= t {
			break
		}
	}
	zi := uint64(z)
	if good > bad {
		zi = m - zi
	}
	if m < k {
		zi = good - zi
	}
	return zi
}

// Multinomial distributes n items over len(masses) categories with
// probabilities proportional to masses, by sequential conditional
// binomials. The draw order (category 0 first) is part of the instance
// definition.
func Multinomial(r *prng.Random, n uint64, masses []float64) []uint64 {
	out := make([]uint64, len(masses))
	var totalMass float64
	for _, m := range masses {
		totalMass += m
	}
	remaining := n
	for i, m := range masses {
		if remaining == 0 || totalMass <= 0 {
			break
		}
		if i == len(masses)-1 {
			out[i] = remaining
			break
		}
		frac := m / totalMass
		if frac > 1 {
			frac = 1
		}
		c := Binomial(r, remaining, frac)
		out[i] = c
		remaining -= c
		totalMass -= m
	}
	return out
}

// GeometricSkip returns the number of failures before the next success of
// a Bernoulli(p) sequence — the gap of Batagelj–Brandes style skip
// sampling. p must be in (0, 1]; p >= 1 always returns 0.
func GeometricSkip(r *prng.Random, p float64) uint64 {
	if p >= 1 {
		return 0
	}
	u := r.Float64Open()
	skip := math.Floor(math.Log(u) / math.Log1p(-p))
	if skip < 0 {
		return 0
	}
	if skip >= math.MaxUint64 {
		return math.MaxUint64
	}
	return uint64(skip)
}
