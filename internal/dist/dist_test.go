package dist

import (
	"math"
	"testing"

	"repro/internal/prng"
)

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n uint64
		p float64
	}{
		{100, 0.3},      // inversion
		{1 << 16, 0.01}, // BTRS (np ~ 655)
		{1 << 20, 0.5},  // BTRS, symmetric
		{50, 0.9},       // symmetry reduction
	}
	for _, c := range cases {
		r := prng.NewFromRaw(42)
		const samples = 20000
		var sum, sum2 float64
		for i := 0; i < samples; i++ {
			k := Binomial(r, c.n, c.p)
			if k > c.n {
				t.Fatalf("Binomial(%d, %v) = %d out of range", c.n, c.p, k)
			}
			kf := float64(k)
			sum += kf
			sum2 += kf * kf
		}
		mean := sum / samples
		variance := sum2/samples - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		sd := math.Sqrt(wantVar)
		if math.Abs(mean-wantMean) > 5*sd/math.Sqrt(samples)+1e-9 {
			t.Errorf("Binomial(%d, %v): mean %v, want %v", c.n, c.p, mean, wantMean)
		}
		if wantVar > 0 && math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("Binomial(%d, %v): variance %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := prng.NewFromRaw(1)
	if got := Binomial(r, 0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := Binomial(r, 100, 0); got != 0 {
		t.Errorf("Binomial(100, 0) = %d", got)
	}
	if got := Binomial(r, 100, 1); got != 100 {
		t.Errorf("Binomial(100, 1) = %d", got)
	}
}

func TestHypergeometricMoments(t *testing.T) {
	cases := []struct {
		total, good, k uint64
	}{
		{1000, 300, 100},
		{1 << 20, 1 << 10, 1 << 15},
		{100, 90, 50}, // symmetry reduction (good > total/2)
		{100, 30, 80}, // symmetry reduction (k > total/2)
	}
	for _, c := range cases {
		r := prng.NewFromRaw(7)
		const samples = 20000
		var sum, sum2 float64
		lo := uint64(0)
		if c.k+c.good > c.total {
			lo = c.k + c.good - c.total
		}
		hi := c.good
		if c.k < hi {
			hi = c.k
		}
		for i := 0; i < samples; i++ {
			x := Hypergeometric(r, c.total, c.good, c.k)
			if x < lo || x > hi {
				t.Fatalf("Hypergeometric(%d,%d,%d) = %d outside [%d,%d]",
					c.total, c.good, c.k, x, lo, hi)
			}
			xf := float64(x)
			sum += xf
			sum2 += xf * xf
		}
		tf, gf, kf := float64(c.total), float64(c.good), float64(c.k)
		wantMean := kf * gf / tf
		wantVar := wantMean * (tf - gf) / tf * (tf - kf) / (tf - 1)
		mean := sum / samples
		variance := sum2/samples - mean*mean
		if math.Abs(mean-wantMean) > 5*math.Sqrt(wantVar/samples)+1e-9 {
			t.Errorf("Hypergeometric(%d,%d,%d): mean %v, want %v",
				c.total, c.good, c.k, mean, wantMean)
		}
		if wantVar > 1 && math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("Hypergeometric(%d,%d,%d): variance %v, want %v",
				c.total, c.good, c.k, variance, wantVar)
		}
	}
}

func TestHypergeometricEdgeCases(t *testing.T) {
	r := prng.NewFromRaw(1)
	if got := Hypergeometric(r, 100, 40, 0); got != 0 {
		t.Errorf("k=0: got %d", got)
	}
	if got := Hypergeometric(r, 100, 0, 40); got != 0 {
		t.Errorf("good=0: got %d", got)
	}
	if got := Hypergeometric(r, 100, 40, 100); got != 40 {
		t.Errorf("k=total: got %d", got)
	}
	if got := Hypergeometric(r, 100, 100, 40); got != 40 {
		t.Errorf("good=total: got %d", got)
	}
}

func TestMultinomialSumsAndMoments(t *testing.T) {
	masses := []float64{0.5, 0.25, 0.125, 0.125}
	const n = 10000
	r := prng.NewFromRaw(3)
	const samples = 2000
	sums := make([]float64, len(masses))
	for i := 0; i < samples; i++ {
		counts := Multinomial(r, n, masses)
		var total uint64
		for j, c := range counts {
			total += c
			sums[j] += float64(c)
		}
		if total != n {
			t.Fatalf("Multinomial counts sum to %d, want %d", total, n)
		}
	}
	for j, m := range masses {
		mean := sums[j] / samples
		want := float64(n) * m
		sd := math.Sqrt(want * (1 - m))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(samples)+1e-9 {
			t.Errorf("category %d: mean %v, want %v", j, mean, want)
		}
	}
}

func TestGeometricSkipMoments(t *testing.T) {
	const p = 0.01
	r := prng.NewFromRaw(9)
	const samples = 50000
	var sum float64
	for i := 0; i < samples; i++ {
		sum += float64(GeometricSkip(r, p))
	}
	mean := sum / samples
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("GeometricSkip mean %v, want %v", mean, want)
	}
	if got := GeometricSkip(r, 1); got != 0 {
		t.Errorf("GeometricSkip(p=1) = %d", got)
	}
}

// TestDeterminism: identical streams must yield identical draws — the
// property every communication-free generator relies on.
func TestDeterminism(t *testing.T) {
	draw := func() [4]uint64 {
		r := prng.New(123, 0x99, 7)
		return [4]uint64{
			Binomial(&r, 1<<20, 0.37),
			Hypergeometric(&r, 1<<20, 1<<15, 1<<12),
			Multinomial(&r, 1000, []float64{1, 2, 3})[1],
			GeometricSkip(&r, 0.001),
		}
	}
	a, b := draw(), draw()
	if a != b {
		t.Fatalf("non-deterministic draws: %v vs %v", a, b)
	}
}
