// Package experiments regenerates every figure of the paper's evaluation
// (§8, Figs. 6-18) at laptop scale and prints the series as CSV-like
// tables. Absolute numbers differ from the paper (different hardware, PEs
// simulated by goroutines); the shapes — who wins, scaling slopes,
// crossovers — are the reproduction target. EXPERIMENTS.md records both.
//
// For the scaling figures the reported per-configuration time is the
// *simulated parallel time*: the maximum wall time over the logical PEs
// (each PE runs single-threaded, exactly like one MPI rank would). For
// P > 16 a spread sample of 16 PEs is timed and the maximum reported.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/baseline"
	"repro/internal/gnm"
	"repro/internal/rdg"
	"repro/internal/rgg"
	"repro/internal/rhg"
	"repro/internal/rmat"
	"repro/internal/srhg"
)

// Config selects sweep sizes and the instance seed.
type Config struct {
	Quick bool   // smaller sizes, fewer points per series
	Seed  uint64 // instance seed
	Out   io.Writer
}

type runner struct {
	Config
}

// Names lists the experiments in paper order.
func Names() []string {
	return []string{
		"fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	}
}

// Run executes one experiment (or all of them for name "all").
func Run(name string, cfg Config) error {
	r := runner{cfg}
	table := map[string]func(){
		"fig06": r.fig06, "fig07": r.fig07, "fig08": r.fig08,
		"fig09": r.fig09, "fig10": r.fig10, "fig11": r.fig11,
		"fig12": r.fig12, "fig13": r.fig13, "fig14": r.fig14,
		"fig15": r.fig15, "fig16": r.fig16, "fig17": r.fig17,
		"fig18": r.fig18,
	}
	if name == "all" {
		for _, n := range Names() {
			table[n]()
		}
		return nil
	}
	fn, ok := table[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", name)
	}
	fn()
	return nil
}

// timeIt returns the wall time of one call.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// samplePEs returns up to k PE ids spread over [0, P).
func samplePEs(P uint64, k int) []uint64 {
	if P <= uint64(k) {
		out := make([]uint64, P)
		for i := range out {
			out[i] = uint64(i)
		}
		return out
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = uint64(i) * (P - 1) / uint64(k-1)
	}
	return out
}

// maxChunkSeconds times the given chunk function on a PE sample and
// returns the maximum (the simulated parallel makespan).
func maxChunkSeconds(P uint64, fn func(pe uint64)) float64 {
	var mx float64
	for _, pe := range samplePEs(P, 16) {
		s := timeIt(func() { fn(pe) })
		if s > mx {
			mx = s
		}
	}
	return mx
}

func (r runner) header(fig, desc, cols string) {
	fmt.Fprintf(r.Out, "\n# %s — %s\n%s\n", fig, desc, cols)
}

// --- Fig. 6: sequential ER, KaGen vs Batagelj-Brandes (Boost stand-in) ---

func (r runner) fig06() {
	ns := []uint64{1 << 14, 1 << 16}
	maxM := uint64(1 << 20)
	if r.Quick {
		ns = []uint64{1 << 14}
		maxM = 1 << 18
	}
	r.header("fig06", "sequential G(n,m): seconds vs m (KaGen vs Batagelj-Brandes)",
		"variant,n,m,kagen_s,bb_s")
	for _, directed := range []bool{true, false} {
		variant := "undirected"
		if directed {
			variant = "directed"
		}
		for _, n := range ns {
			for m := uint64(1 << 12); m <= maxM; m <<= 2 {
				p := gnm.Params{N: n, M: m, Directed: directed, Seed: r.Seed, Chunks: 1}
				tk := timeIt(func() { gnm.GenerateChunk(p, 0) })
				tb := timeIt(func() { baseline.GNMBatageljBrandes(n, m, directed, r.Seed) })
				fmt.Fprintf(r.Out, "%s,%d,%d,%.4f,%.4f\n", variant, n, m, tk, tb)
			}
		}
	}
}

// --- Figs. 7/8: G(n,m) weak and strong scaling ---

func (r runner) fig07() {
	perPEs := []uint64{1 << 14, 1 << 16}
	maxP := uint64(256)
	if r.Quick {
		perPEs = []uint64{1 << 14}
		maxP = 64
	}
	r.header("fig07", "G(n,m) weak scaling: simulated parallel seconds vs P (m/P fixed)",
		"variant,m_per_pe,P,seconds")
	for _, directed := range []bool{true, false} {
		variant := "undirected"
		if directed {
			variant = "directed"
		}
		for _, perPE := range perPEs {
			for P := uint64(1); P <= maxP; P <<= 2 {
				m := perPE * P
				p := gnm.Params{N: m / 16, M: m, Directed: directed, Seed: r.Seed, Chunks: P}
				s := maxChunkSeconds(P, func(pe uint64) { gnm.GenerateChunk(p, pe) })
				fmt.Fprintf(r.Out, "%s,%d,%d,%.4f\n", variant, perPE, P, s)
			}
		}
	}
}

func (r runner) fig08() {
	ms := []uint64{1 << 20, 1 << 22}
	if r.Quick {
		ms = []uint64{1 << 18}
	}
	r.header("fig08", "G(n,m) strong scaling: simulated parallel seconds vs P (m fixed)",
		"variant,m,P,seconds")
	for _, directed := range []bool{true, false} {
		variant := "undirected"
		if directed {
			variant = "directed"
		}
		for _, m := range ms {
			for P := uint64(4); P <= 256; P <<= 2 {
				p := gnm.Params{N: m / 16, M: m, Directed: directed, Seed: r.Seed, Chunks: P}
				s := maxChunkSeconds(P, func(pe uint64) { gnm.GenerateChunk(p, pe) })
				fmt.Fprintf(r.Out, "%s,%d,%d,%.4f\n", variant, m, P, s)
			}
		}
	}
}

// --- Fig. 9: 2-D RGG, KaGen vs Holtgrewe ---

func (r runner) fig09() {
	perPE := uint64(1 << 12)
	maxP := uint64(64)
	if r.Quick {
		maxP = 16
	}
	cost := baseline.DefaultHoltgreweCost()
	r.header("fig09", "2-D RGG: simulated parallel seconds vs P (n/P fixed; Holtgrewe = compute/P + modeled exchange)",
		"P,n,kagen_s,holtgrewe_total_s,holtgrewe_compute_s,holtgrewe_comm_s")
	var lastKagen, lastCompute float64
	var maxSeen uint64
	for P := uint64(1); P <= maxP; P <<= 1 {
		n := perPE * P
		rad := rgg.ConnectivityRadius(n, 2) / math.Sqrt(float64(P))
		p := rgg.Params{N: n, R: rad, Dim: 2, Seed: r.Seed, Chunks: P}
		tk := maxChunkSeconds(P, func(pe uint64) { rgg.GenerateChunk(p, pe) })
		pts := baseline.UniformPoints(n, 2, r.Seed)
		tcompute := timeIt(func() { baseline.RGGHoltgrewe(pts, rad) }) / float64(P)
		tcomm := cost.SimulatedExchangeSeconds(n, P)
		fmt.Fprintf(r.Out, "%d,%d,%.4f,%.4f,%.4f,%.4f\n", P, n, tk, tcompute+tcomm, tcompute, tcomm)
		lastKagen, lastCompute, maxSeen = tk, tcompute, P
	}
	// Extrapolate the modeled communication term to find the crossover the
	// paper observes at large P (both compute terms are flat in weak
	// scaling, only the latency term grows).
	for P := maxSeen * 2; P <= 1<<20; P <<= 1 {
		if lastCompute+cost.SimulatedExchangeSeconds(perPE*P, P) > lastKagen {
			fmt.Fprintf(r.Out, "modeled crossover (KaGen wins) at P = %d\n", P)
			return
		}
	}
	fmt.Fprintln(r.Out, "modeled crossover beyond P = 2^20")
}

// --- Figs. 10/11: RGG weak and strong scaling ---

func (r runner) fig10() {
	perPEs := []uint64{1 << 12, 1 << 14}
	maxP := uint64(64)
	if r.Quick {
		perPEs = []uint64{1 << 12}
		maxP = 16
	}
	r.header("fig10", "RGG weak scaling: simulated parallel seconds vs P (n/P fixed)",
		"dim,n_per_pe,P,seconds")
	for _, dim := range []int{2, 3} {
		for _, perPE := range perPEs {
			for P := uint64(1); P <= maxP; P <<= 2 {
				n := perPE * P
				p := rgg.Params{N: n, Dim: dim, Seed: r.Seed, Chunks: P}
				p.R = rgg.ConnectivityRadius(n, dim)
				s := maxChunkSeconds(P, func(pe uint64) { rgg.GenerateChunk(p, pe) })
				fmt.Fprintf(r.Out, "%d,%d,%d,%.4f\n", dim, perPE, P, s)
			}
		}
	}
}

func (r runner) fig11() {
	ns := []uint64{1 << 16, 1 << 18}
	if r.Quick {
		ns = []uint64{1 << 14}
	}
	r.header("fig11", "RGG strong scaling: simulated parallel seconds vs P (n fixed)",
		"dim,n,P,seconds")
	for _, dim := range []int{2, 3} {
		for _, n := range ns {
			for P := uint64(4); P <= 64; P <<= 2 {
				p := rgg.Params{N: n, Dim: dim, Seed: r.Seed, Chunks: P}
				p.R = rgg.ConnectivityRadius(n, dim)
				s := maxChunkSeconds(P, func(pe uint64) { rgg.GenerateChunk(p, pe) })
				fmt.Fprintf(r.Out, "%d,%d,%d,%.4f\n", dim, n, P, s)
			}
		}
	}
}

// --- Figs. 12/13: RDG weak and strong scaling ---

func (r runner) fig12() {
	perPEs2 := []uint64{1 << 10, 1 << 12}
	maxP := uint64(16)
	if r.Quick {
		perPEs2 = []uint64{1 << 10}
		maxP = 4
	}
	r.header("fig12", "RDG weak scaling: simulated parallel seconds vs P (n/P fixed)",
		"dim,n_per_pe,P,seconds")
	for _, dim := range []int{2, 3} {
		perPEs := perPEs2
		if dim == 3 {
			perPEs = []uint64{perPEs2[0] / 2}
		}
		for _, perPE := range perPEs {
			for P := uint64(1); P <= maxP; P <<= 2 {
				p := rdg.Params{N: perPE * P, Dim: dim, Seed: r.Seed, Chunks: P}
				s := maxChunkSeconds(P, func(pe uint64) { rdg.GenerateChunk(p, pe) })
				fmt.Fprintf(r.Out, "%d,%d,%d,%.4f\n", dim, perPE, P, s)
			}
		}
	}
}

func (r runner) fig13() {
	ns := map[int][]uint64{2: {1 << 14}, 3: {1 << 12}}
	r.header("fig13", "RDG strong scaling: simulated parallel seconds vs P (n fixed)",
		"dim,n,P,seconds")
	for _, dim := range []int{2, 3} {
		for _, n := range ns[dim] {
			for P := uint64(4); P <= 64; P <<= 2 {
				p := rdg.Params{N: n, Dim: dim, Seed: r.Seed, Chunks: P}
				s := maxChunkSeconds(P, func(pe uint64) { rdg.GenerateChunk(p, pe) })
				fmt.Fprintf(r.Out, "%d,%d,%d,%.4f\n", dim, n, P, s)
			}
		}
	}
}

// --- Fig. 14: shared-memory RHG race ---

func (r runner) fig14() {
	maxN := uint64(1 << 17)
	if r.Quick {
		maxN = 1 << 14
	}
	r.header("fig14", "RHG race (sequential): seconds and edges/s vs n",
		"gamma,avg_deg,n,algorithm,seconds,edges,edges_per_s")
	for _, gamma := range []float64{2.2, 3.0} {
		for _, deg := range []float64{16, 64} {
			for n := uint64(1 << 12); n <= maxN; n <<= 1 {
				run := func(name string, fn func() int) {
					var edges int
					s := timeIt(func() { edges = fn() })
					fmt.Fprintf(r.Out, "%.1f,%.0f,%d,%s,%.4f,%d,%.0f\n",
						gamma, deg, n, name, s, edges, float64(edges)/s)
				}
				run("nkgen", func() int {
					return baseline.RHGNkGen(n, deg, gamma, r.Seed).Len()
				})
				run("rhg", func() int {
					p := rhg.Params{N: n, AvgDeg: deg, Gamma: gamma, Seed: r.Seed, Chunks: 1}
					return len(rhg.GenerateChunk(p, 0).Edges)
				})
				run("srhg", func() int {
					p := srhg.Params{N: n, AvgDeg: deg, Gamma: gamma, Seed: r.Seed, Chunks: 1}
					return len(srhg.GenerateChunk(p, 0).Edges)
				})
			}
		}
	}
}

// --- Figs. 15/16: RHG weak and strong scaling ---

func (r runner) fig15() {
	perPEs := []uint64{1 << 10, 1 << 12}
	maxP := uint64(64)
	if r.Quick {
		perPEs = []uint64{1 << 10}
		maxP = 16
	}
	r.header("fig15", "RHG weak scaling (d=16, gamma=3): simulated parallel seconds vs P",
		"algorithm,n_per_pe,P,seconds")
	for _, perPE := range perPEs {
		for P := uint64(1); P <= maxP; P <<= 2 {
			n := perPE * P
			pr := rhg.Params{N: n, AvgDeg: 16, Gamma: 3.0, Seed: r.Seed, Chunks: P}
			s := maxChunkSeconds(P, func(pe uint64) { rhg.GenerateChunk(pr, pe) })
			fmt.Fprintf(r.Out, "rhg,%d,%d,%.4f\n", perPE, P, s)
			ps := srhg.Params{N: n, AvgDeg: 16, Gamma: 3.0, Seed: r.Seed, Chunks: P}
			s = maxChunkSeconds(P, func(pe uint64) { srhg.GenerateChunk(ps, pe) })
			fmt.Fprintf(r.Out, "srhg,%d,%d,%.4f\n", perPE, P, s)
		}
	}
}

func (r runner) fig16() {
	ns := []uint64{1 << 14, 1 << 16}
	if r.Quick {
		ns = []uint64{1 << 13}
	}
	r.header("fig16", "RHG strong scaling (d=16, gamma=3): simulated parallel seconds vs P",
		"algorithm,n,P,seconds")
	for _, n := range ns {
		for P := uint64(4); P <= 64; P <<= 2 {
			pr := rhg.Params{N: n, AvgDeg: 16, Gamma: 3.0, Seed: r.Seed, Chunks: P}
			s := maxChunkSeconds(P, func(pe uint64) { rhg.GenerateChunk(pr, pe) })
			fmt.Fprintf(r.Out, "rhg,%d,%d,%.4f\n", n, P, s)
			ps := srhg.Params{N: n, AvgDeg: 16, Gamma: 3.0, Seed: r.Seed, Chunks: P}
			s = maxChunkSeconds(P, func(pe uint64) { srhg.GenerateChunk(ps, pe) })
			fmt.Fprintf(r.Out, "srhg,%d,%d,%.4f\n", n, P, s)
		}
	}
}

// --- Figs. 17/18: R-MAT weak and strong scaling ---

func (r runner) fig17() {
	perPEs := []uint64{1 << 14, 1 << 16}
	maxP := uint64(256)
	if r.Quick {
		perPEs = []uint64{1 << 14}
		maxP = 64
	}
	r.header("fig17", "R-MAT weak scaling: simulated parallel seconds vs P (m/P fixed, n = m/16)",
		"m_per_pe,P,seconds")
	for _, perPE := range perPEs {
		for P := uint64(1); P <= maxP; P <<= 2 {
			m := perPE * P
			scale := uint(10)
			for (uint64(1) << scale) < m/16 {
				scale++
			}
			p := rmat.Params{Scale: scale, M: m, Seed: r.Seed, Chunks: P}
			s := maxChunkSeconds(P, func(pe uint64) { rmat.GenerateChunk(p, pe) })
			fmt.Fprintf(r.Out, "%d,%d,%.4f\n", perPE, P, s)
		}
	}
}

func (r runner) fig18() {
	ms := []uint64{1 << 20, 1 << 22}
	if r.Quick {
		ms = []uint64{1 << 18}
	}
	r.header("fig18", "R-MAT strong scaling: simulated parallel seconds vs P (m fixed)",
		"m,P,seconds")
	for _, m := range ms {
		for P := uint64(4); P <= 256; P <<= 2 {
			p := rmat.Params{Scale: 16, M: m, Seed: r.Seed, Chunks: P}
			s := maxChunkSeconds(P, func(pe uint64) { rmat.GenerateChunk(p, pe) })
			fmt.Fprintf(r.Out, "%d,%d,%.4f\n", m, P, s)
		}
	}
}
