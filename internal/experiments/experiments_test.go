package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestUnknownExperiment: Run must reject unknown names.
func TestUnknownExperiment(t *testing.T) {
	if err := Run("fig99", Config{Out: &bytes.Buffer{}}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Fatalf("%d experiments, want 13 (Figs. 6-18)", len(names))
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "fig") {
			t.Errorf("bad experiment name %q", n)
		}
	}
}

// runAndParse executes one experiment in quick mode and returns its rows.
func runAndParse(t *testing.T, name string) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(name, Config{Quick: true, Seed: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	var rows []string
	for _, line := range strings.Split(buf.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rows = append(rows, line)
	}
	return rows
}

// TestFig06Series: the cheapest experiment end to end — must produce a
// header plus one row per (variant, n, m) combination with positive times.
func TestFig06Series(t *testing.T) {
	rows := runAndParse(t, "fig06")
	dataRows := 0
	for _, row := range rows {
		if !strings.Contains(row, ",") {
			continue
		}
		fields := strings.Split(row, ",")
		if fields[0] == "variant" {
			continue // column header
		}
		if len(fields) != 5 {
			t.Fatalf("row %q has %d fields", row, len(fields))
		}
		dataRows++
	}
	// Quick mode: 1 n x 4 m values x 2 variants.
	if dataRows != 8 {
		t.Errorf("fig06 quick produced %d data rows, want 8", dataRows)
	}
}

// TestFig17Series: weak-scaling harness plumbing (cheap experiment).
func TestFig17Series(t *testing.T) {
	rows := runAndParse(t, "fig17")
	dataRows := 0
	for _, row := range rows {
		fields := strings.Split(row, ",")
		if len(fields) == 3 && fields[0] != "m_per_pe" {
			dataRows++
		}
	}
	if dataRows < 3 {
		t.Errorf("fig17 quick produced only %d rows", dataRows)
	}
}

func TestSamplePEs(t *testing.T) {
	// All PEs when P <= 16.
	s := samplePEs(5, 16)
	if len(s) != 5 {
		t.Fatalf("got %d samples", len(s))
	}
	for i, pe := range s {
		if pe != uint64(i) {
			t.Fatalf("sample %d = %d", i, pe)
		}
	}
	// Spread sample includes first and last for big P.
	s = samplePEs(1000, 16)
	if len(s) != 16 {
		t.Fatalf("got %d samples", len(s))
	}
	if s[0] != 0 || s[15] != 999 {
		t.Fatalf("sample endpoints %d, %d", s[0], s[15])
	}
	for _, pe := range s {
		if pe >= 1000 {
			t.Fatalf("sample %d out of range", pe)
		}
	}
}
