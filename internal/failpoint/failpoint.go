// Package failpoint is the fault-injection layer for crash and
// corruption testing: named failpoints compiled into the production
// paths (the job runner's checkpoint commit, the manifest rename) stay
// completely inert until armed, then fire exactly once after a
// configured number of evaluations. Tests arm them in-process with Arm;
// CLI processes (and CI chaos jobs) arm them through the
// KAGEN_FAILPOINTS environment variable, so the same corruption
// scenarios run against the real binary without hand-rolled file
// surgery.
//
// The disarmed fast path is one atomic load (Armed), so a failpoint
// site in a hot loop costs nothing in production.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrCrash is the sentinel wrapped by every failpoint-induced abort. A
// site that simulates a process crash returns an error wrapping ErrCrash
// and the caller unwinds exactly as a real crash at that instant would
// leave the disk.
var ErrCrash = errors.New("failpoint: simulated crash")

// Crash returns the error a firing crash-style failpoint reports.
func Crash(name string) error {
	return fmt.Errorf("failpoint %s armed: %w", name, ErrCrash)
}

var (
	mu     sync.Mutex
	points map[string]int // remaining evaluations until the point fires
	armed  atomic.Int32   // len(points), read lock-free by Armed
)

func init() {
	ArmFromEnv(os.Getenv("KAGEN_FAILPOINTS"))
}

// ArmFromEnv arms every failpoint in a comma-separated "name" or
// "name=N" list (N = fire on the Nth evaluation, default 1). Unparsable
// entries are ignored — a typo'd injection must not take down a
// production process that merely imports the package.
func ArmFromEnv(spec string) {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, after := entry, 1
		if i := strings.IndexByte(entry, '='); i >= 0 {
			name = entry[:i]
			n, err := strconv.Atoi(entry[i+1:])
			if err != nil || n < 1 {
				continue
			}
			after = n
		}
		Arm(name, after)
	}
}

// Arm arms a failpoint to fire on its after-th evaluation (after < 1
// means the first). Re-arming an armed point resets its countdown.
func Arm(name string, after int) {
	if after < 1 {
		after = 1
	}
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]int)
	}
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = after
}

// Disarm removes a failpoint without firing it.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint. Tests arm points globally, so every
// arming test must Reset in cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armed.Store(0)
}

// Armed reports whether any failpoint is armed — the zero-cost guard a
// site checks before doing any work to describe its fault.
func Armed() bool { return armed.Load() > 0 }

// Eval records one evaluation of the named site and reports whether the
// point fires now. A fired point disarms itself: each arming injects
// exactly one fault.
func Eval(name string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	n, ok := points[name]
	if !ok {
		return false
	}
	if n--; n > 0 {
		points[name] = n
		return false
	}
	delete(points, name)
	armed.Add(-1)
	return true
}
