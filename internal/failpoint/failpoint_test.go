package failpoint

import (
	"errors"
	"testing"
)

func TestDisarmedIsInert(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	if Armed() {
		t.Fatal("fresh state reports armed")
	}
	if Eval("job/crash") {
		t.Fatal("disarmed point fired")
	}
}

func TestCountdownFiresOnceOnNth(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm("p", 3)
	if !Armed() {
		t.Fatal("armed point not reported")
	}
	for i := 1; i <= 2; i++ {
		if Eval("p") {
			t.Fatalf("fired on evaluation %d, armed for 3", i)
		}
	}
	if !Eval("p") {
		t.Fatal("did not fire on the 3rd evaluation")
	}
	if Eval("p") || Armed() {
		t.Fatal("fired point did not disarm itself")
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	ArmFromEnv(" a , b=2 ,, c=x, d=-1 ,e=1")
	for _, name := range []string{"c", "d"} {
		if Eval(name) {
			t.Errorf("unparsable entry %q armed a point", name)
		}
	}
	if !Eval("a") || !Eval("e") {
		t.Error("default-count entries did not fire on first evaluation")
	}
	if Eval("b") {
		t.Error("b=2 fired on first evaluation")
	}
	if !Eval("b") {
		t.Error("b=2 did not fire on second evaluation")
	}
	if Armed() {
		t.Error("points remain armed after all fired")
	}
}

func TestRearmResetsCountdown(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm("p", 2)
	Eval("p")
	Arm("p", 2)
	if Eval("p") {
		t.Fatal("re-arm did not reset the countdown")
	}
	if !Eval("p") {
		t.Fatal("re-armed point never fired")
	}
}

func TestCrashWrapsSentinel(t *testing.T) {
	err := Crash("some/site")
	if !errors.Is(err, ErrCrash) {
		t.Fatal("Crash error does not wrap ErrCrash")
	}
}
