// Package geometry provides the Euclidean helpers of the spatial
// generators: Morton (Z-order) curves for locality-aware chunk assignment
// (§5.1) and small vector utilities over points in the unit cube.
package geometry

// MortonEncode2 interleaves the bits of x and y (up to 32 bits each) into
// a Z-order index.
func MortonEncode2(x, y uint32) uint64 {
	return spread2(uint64(x)) | spread2(uint64(y))<<1
}

// MortonDecode2 is the inverse of MortonEncode2.
func MortonDecode2(m uint64) (x, y uint32) {
	return compact2(m), compact2(m >> 1)
}

func spread2(x uint64) uint64 {
	x &= 0xffffffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

func compact2(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// MortonEncode3 interleaves the bits of x, y and z (up to 21 bits each)
// into a Z-order index.
func MortonEncode3(x, y, z uint32) uint64 {
	return spread3(uint64(x)) | spread3(uint64(y))<<1 | spread3(uint64(z))<<2
}

// MortonDecode3 is the inverse of MortonEncode3.
func MortonDecode3(m uint64) (x, y, z uint32) {
	return compact3(m), compact3(m >> 1), compact3(m >> 2)
}

func spread3(x uint64) uint64 {
	x &= 0x1fffff
	x = (x | x<<32) & 0x001f00000000ffff
	x = (x | x<<16) & 0x001f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

func compact3(x uint64) uint32 {
	x &= 0x1249249249249249
	x = (x | x>>2) & 0x10c30c30c30c30c3
	x = (x | x>>4) & 0x100f00f00f00f00f
	x = (x | x>>8) & 0x001f0000ff0000ff
	x = (x | x>>16) & 0x001f00000000ffff
	x = (x | x>>32) & 0x00000000001fffff
	return uint32(x)
}

// MortonEncode dispatches on dimension (2 or 3); unused coordinates are
// ignored.
func MortonEncode(dim int, c [3]uint32) uint64 {
	if dim == 2 {
		return MortonEncode2(c[0], c[1])
	}
	return MortonEncode3(c[0], c[1], c[2])
}

// MortonDecode dispatches on dimension (2 or 3).
func MortonDecode(dim int, m uint64) [3]uint32 {
	var c [3]uint32
	if dim == 2 {
		c[0], c[1] = MortonDecode2(m)
	} else {
		c[0], c[1], c[2] = MortonDecode3(m)
	}
	return c
}

// Point is a point in the unit cube; only the first Dim coordinates of a
// generator's dimension are meaningful.
type Point struct {
	X  [3]float64
	ID uint64
}

// Dist2 returns the squared Euclidean distance of two points in dim
// dimensions.
func Dist2(dim int, a, b [3]float64) float64 {
	var s float64
	for i := 0; i < dim; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
