package geometry

import (
	"testing"
	"testing/quick"
)

func TestMorton2RoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := MortonDecode2(MortonEncode2(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMorton3RoundTrip(t *testing.T) {
	f := func(xr, yr, zr uint32) bool {
		x, y, z := xr&0x1fffff, yr&0x1fffff, zr&0x1fffff
		gx, gy, gz := MortonDecode3(MortonEncode3(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMorton2Order(t *testing.T) {
	// The Z-curve visits the 2x2 blocks in order (0,0),(1,0),(0,1),(1,1)
	// for the (x,y) bit interleaving used here.
	want := []uint64{0, 1, 2, 3}
	got := []uint64{
		MortonEncode2(0, 0), MortonEncode2(1, 0),
		MortonEncode2(0, 1), MortonEncode2(1, 1),
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestMortonLocality: consecutive Morton indices decode to cells at
// Chebyshev distance 1 at least half of the time within a small block —
// a sanity property of the locality-aware assignment.
func TestMortonLocality(t *testing.T) {
	close := 0
	const total = 255
	for m := uint64(0); m < total; m++ {
		x1, y1 := MortonDecode2(m)
		x2, y2 := MortonDecode2(m + 1)
		dx := int64(x2) - int64(x1)
		dy := int64(y2) - int64(y1)
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx <= 1 && dy <= 1 {
			close++
		}
	}
	if close < total/2 {
		t.Errorf("only %d of %d consecutive pairs adjacent", close, total)
	}
}

func TestMortonDispatch(t *testing.T) {
	c := [3]uint32{5, 9, 0}
	if MortonEncode(2, c) != MortonEncode2(5, 9) {
		t.Error("2d dispatch wrong")
	}
	c3 := [3]uint32{5, 9, 13}
	if MortonEncode(3, c3) != MortonEncode3(5, 9, 13) {
		t.Error("3d dispatch wrong")
	}
	if MortonDecode(2, MortonEncode2(7, 3)) != [3]uint32{7, 3, 0} {
		t.Error("2d decode dispatch wrong")
	}
	if MortonDecode(3, MortonEncode3(7, 3, 1)) != [3]uint32{7, 3, 1} {
		t.Error("3d decode dispatch wrong")
	}
}

func TestDist2(t *testing.T) {
	a := [3]float64{0, 0, 0}
	b := [3]float64{3, 4, 12}
	if d := Dist2(2, a, b); d != 25 {
		t.Errorf("2d dist2 = %v, want 25", d)
	}
	if d := Dist2(3, a, b); d != 169 {
		t.Errorf("3d dist2 = %v, want 169", d)
	}
}
