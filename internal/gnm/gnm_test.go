package gnm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestDirectedExactCount(t *testing.T) {
	for _, chunks := range []uint64{1, 2, 7, 16} {
		p := Params{N: 1000, M: 5000, Directed: true, Seed: 42, Chunks: chunks}
		el, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if el.Len() != 5000 {
			t.Errorf("chunks=%d: %d edges, want 5000", chunks, el.Len())
		}
		if el.CountSelfLoops() != 0 {
			t.Errorf("chunks=%d: self loops present", chunks)
		}
		if el.CountDuplicates() != 0 {
			t.Errorf("chunks=%d: duplicate edges present", chunks)
		}
		for _, e := range el.Edges {
			if e.U >= p.N || e.V >= p.N {
				t.Fatalf("edge %v out of range", e)
			}
		}
	}
}

func TestDirectedCompleteGraph(t *testing.T) {
	p := Params{N: 40, M: 40 * 39, Directed: true, Seed: 1, Chunks: 4}
	el, err := Generate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if el.Len() != 40*39 {
		t.Fatalf("%d edges, want %d", el.Len(), 40*39)
	}
	el.Dedup()
	if el.Len() != 40*39 {
		t.Fatal("complete graph contains duplicates")
	}
}

func TestUndirectedCounts(t *testing.T) {
	for _, chunks := range []uint64{1, 2, 5, 13} {
		p := Params{N: 500, M: 3000, Seed: 7, Chunks: chunks}
		el, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Partitioned output: each undirected edge once per endpoint.
		if el.Len() != 6000 {
			t.Errorf("chunks=%d: %d directed copies, want 6000", chunks, el.Len())
		}
		und := el.UndirectedSet()
		if len(und) != 3000 {
			t.Errorf("chunks=%d: %d undirected edges, want 3000", chunks, len(und))
		}
		if el.CountSelfLoops() != 0 {
			t.Errorf("chunks=%d: self loops present", chunks)
		}
	}
}

// TestUndirectedBothOrientations: the merged output must contain (u,v) and
// (v,u) for every sampled pair — each endpoint's owner emits its copy.
func TestUndirectedBothOrientations(t *testing.T) {
	p := Params{N: 300, M: 2000, Seed: 3, Chunks: 8}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[graph.Edge]bool, el.Len())
	for _, e := range el.Edges {
		present[e] = true
	}
	for _, e := range el.Edges {
		if !present[graph.Edge{U: e.V, V: e.U}] {
			t.Fatalf("missing reverse orientation of %v", e)
		}
	}
}

// TestRedundancyConsistency is invariant 2 of DESIGN.md: PE i and PE j
// generate identical edges for their shared chunk (i,j).
func TestRedundancyConsistency(t *testing.T) {
	p := Params{N: 400, M: 2500, Seed: 11, Chunks: 8}
	ch := chunkingOf(p)
	for i := uint64(0); i < 8; i++ {
		for j := uint64(0); j < i; j++ {
			ei := GenerateChunk(p, i)
			ej := GenerateChunk(p, j)
			// Edges of PE i with the other endpoint in chunk j.
			setI := make(map[graph.Edge]bool)
			for _, e := range ei {
				if ch.Owner(e.U) == i && ch.Owner(e.V) == j {
					setI[e] = true
				}
			}
			count := 0
			for _, e := range ej {
				if ch.Owner(e.U) == j && ch.Owner(e.V) == i {
					if !setI[graph.Edge{U: e.V, V: e.U}] {
						t.Fatalf("chunk (%d,%d): PE %d has %v but PE %d lacks the mirror", i, j, j, e, i)
					}
					count++
				}
			}
			if count != len(setI) {
				t.Fatalf("chunk (%d,%d): PE %d sees %d cross edges, PE %d sees %d", i, j, i, len(setI), j, count)
			}
		}
	}
}

func chunkingOf(p Params) interface{ Owner(uint64) uint64 } {
	return chunking{p}
}

type chunking struct{ p Params }

func (c chunking) Owner(v uint64) uint64 {
	P := c.p.chunks()
	return ((v+1)*P - 1) / c.p.N
}

// TestWorkerIndependence: the merged edge set must not depend on how many
// goroutines execute the logical PEs (communication-free determinism).
func TestWorkerIndependence(t *testing.T) {
	for _, directed := range []bool{true, false} {
		p := Params{N: 600, M: 4000, Directed: directed, Seed: 5, Chunks: 16}
		base, err := Generate(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		base.Sort()
		for _, workers := range []int{2, 4, 16} {
			got, err := Generate(p, workers)
			if err != nil {
				t.Fatal(err)
			}
			got.Sort()
			if got.Len() != base.Len() {
				t.Fatalf("directed=%v workers=%d: edge count changed", directed, workers)
			}
			for i := range base.Edges {
				if base.Edges[i] != got.Edges[i] {
					t.Fatalf("directed=%v workers=%d: edge %d differs", directed, workers, i)
				}
			}
		}
	}
}

// TestDirectedUniformity: across many seeds every possible directed edge
// appears with probability m / (n(n-1)).
func TestDirectedUniformity(t *testing.T) {
	const n = 12
	const m = 16
	const trials = 8000
	counts := make(map[graph.Edge]int)
	for s := uint64(0); s < trials; s++ {
		p := Params{N: n, M: m, Directed: true, Seed: s, Chunks: 3}
		el, err := Generate(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range el.Edges {
			counts[e]++
		}
	}
	want := float64(trials) * m / float64(n*(n-1))
	for u := uint64(0); u < n; u++ {
		for v := uint64(0); v < n; v++ {
			if u == v {
				continue
			}
			c := counts[graph.Edge{U: u, V: v}]
			if math.Abs(float64(c)-want)/want > 0.15 {
				t.Errorf("edge (%d,%d): %d occurrences, want ~%v", u, v, c, want)
			}
		}
	}
}

// TestUndirectedUniformity: same for unordered pairs.
func TestUndirectedUniformity(t *testing.T) {
	const n = 10
	const m = 9
	const trials = 8000
	counts := make(map[graph.Edge]int)
	for s := uint64(0); s < trials; s++ {
		p := Params{N: n, M: m, Seed: s, Chunks: 4}
		el, err := Generate(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range el.UndirectedSet() {
			counts[e]++
		}
	}
	want := float64(trials) * m / float64(n*(n-1)/2)
	for u := uint64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			c := counts[graph.Edge{U: u, V: v}]
			if math.Abs(float64(c)-want)/want > 0.15 {
				t.Errorf("pair {%d,%d}: %d occurrences, want ~%v", u, v, c, want)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{N: 0, M: 0}).Validate(); err == nil {
		t.Error("n=0 accepted")
	}
	if err := (Params{N: 10, M: 46}).Validate(); err == nil {
		t.Error("undirected m > max accepted")
	}
	if err := (Params{N: 10, M: 45}).Validate(); err != nil {
		t.Errorf("undirected complete graph rejected: %v", err)
	}
	if err := (Params{N: 10, M: 90, Directed: true}).Validate(); err != nil {
		t.Errorf("directed complete graph rejected: %v", err)
	}
	if err := (Params{N: 10, M: 91, Directed: true}).Validate(); err == nil {
		t.Error("directed m > max accepted")
	}
	if err := (Params{N: 4, M: 1, Chunks: 8}).Validate(); err == nil {
		t.Error("more chunks than vertices accepted")
	}
}

func TestTriangularIndex(t *testing.T) {
	// Exhaustive check of the first rows.
	idx := uint64(0)
	for row := uint64(1); row < 80; row++ {
		for col := uint64(0); col < row; col++ {
			r, c := triangularIndex(idx)
			if r != row || c != col {
				t.Fatalf("index %d: got (%d,%d), want (%d,%d)", idx, r, c, row, col)
			}
			idx++
		}
	}
}

func TestTriangularIndexProperty(t *testing.T) {
	f := func(raw uint32) bool {
		idx := uint64(raw)
		r, c := triangularIndex(idx)
		return c < r && r*(r-1)/2+c == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyValidInstances: arbitrary parameters produce exactly the
// requested number of edges with the partitioned-output convention.
func TestPropertyValidInstances(t *testing.T) {
	f := func(seed uint16, nRaw, mRaw uint16, cRaw uint8, directed bool) bool {
		n := uint64(nRaw%200) + 2
		maxM := n * (n - 1)
		if !directed {
			maxM /= 2
		}
		m := uint64(mRaw) % (maxM + 1)
		chunks := uint64(cRaw%8) + 1
		if chunks > n {
			chunks = n
		}
		p := Params{N: n, M: m, Directed: directed, Seed: uint64(seed), Chunks: chunks}
		el, err := Generate(p, 2)
		if err != nil {
			return false
		}
		if directed {
			return uint64(el.Len()) == m && el.CountDuplicates() == 0 && el.CountSelfLoops() == 0
		}
		return uint64(el.Len()) == 2*m && uint64(len(el.UndirectedSet())) == m && el.CountSelfLoops() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDirectedChunk(b *testing.B) {
	p := Params{N: 1 << 18, M: 1 << 22, Directed: true, Seed: 1, Chunks: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 7)
	}
}

func BenchmarkUndirectedChunk(b *testing.B) {
	p := Params{N: 1 << 18, M: 1 << 22, Seed: 1, Chunks: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 7)
	}
}

// TestStreamUndirectedMatchesChunk: the streaming sweep must emit exactly
// the materialized chunk's edges in order, and UndirectedChunkEdgeCount
// must predict the emission count exactly (it is the pre-sizing contract
// of the collector).
func TestStreamUndirectedMatchesChunk(t *testing.T) {
	for _, chunks := range []uint64{1, 2, 5, 13} {
		p := Params{N: 500, M: 3000, Seed: 7, Chunks: chunks}
		for c := uint64(0); c < chunks; c++ {
			want := GenerateChunk(p, c)
			if n := UndirectedChunkEdgeCount(p, c); n != uint64(len(want)) {
				t.Fatalf("chunks=%d pe=%d: predicted %d edges, materialized %d", chunks, c, n, len(want))
			}
			got := make([]graph.Edge, 0, len(want))
			StreamUndirectedChunk(p, c, func(e graph.Edge) { got = append(got, e) })
			if len(got) != len(want) {
				t.Fatalf("chunks=%d pe=%d: streamed %d edges, want %d", chunks, c, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("chunks=%d pe=%d: edge %d = %v, want %v", chunks, c, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPairEdgeCountsSumToM: the per-pair O(log P) descents must distribute
// exactly M edges over the triangular chunk matrix — the same invariant the
// former full splitting recursion guaranteed by construction.
func TestPairEdgeCountsSumToM(t *testing.T) {
	for _, chunks := range []uint64{1, 3, 8, 16} {
		p := Params{N: 640, M: 5000, Seed: 21, Chunks: chunks}
		ch := core.Chunking{N: p.N, Chunks: chunks}
		var total uint64
		for i := uint64(0); i < chunks; i++ {
			for j := uint64(0); j <= i; j++ {
				total += pairEdgeCount(p, ch, i, j)
			}
		}
		if total != p.M {
			t.Errorf("chunks=%d: pair counts sum to %d, want %d", chunks, total, p.M)
		}
	}
}

// TestStreamUndirectedAllocs: the in-order sweep must run in O(1) steady-
// state allocations per chunk — the per-pair count map it replaced grew
// with P.
func TestStreamUndirectedAllocs(t *testing.T) {
	p := Params{N: 1 << 12, M: 1 << 15, Seed: 1, Chunks: 16}
	var sink uint64
	allocs := testing.AllocsPerRun(5, func() {
		StreamUndirectedChunk(p, 8, func(e graph.Edge) { sink += e.U })
	})
	if allocs > 4 {
		t.Errorf("StreamUndirectedChunk allocates %.0f times per chunk, want O(1)", allocs)
	}
	_ = sink
}
