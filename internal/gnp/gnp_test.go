package gnp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestDirectedEdgeCountConcentration(t *testing.T) {
	const n = 2000
	const p = 0.005
	params := Params{N: n, P: p, Directed: true, Seed: 9, Chunks: 8}
	el, err := Generate(params, 4)
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(n) * (n - 1) * p
	sigma := math.Sqrt(mean * (1 - p))
	if math.Abs(float64(el.Len())-mean) > 6*sigma {
		t.Errorf("edge count %d, want %v +- %v", el.Len(), mean, 6*sigma)
	}
	if el.CountSelfLoops() != 0 || el.CountDuplicates() != 0 {
		t.Error("self loops or duplicates present")
	}
}

func TestUndirectedEdgeCountConcentration(t *testing.T) {
	const n = 2000
	const p = 0.005
	params := Params{N: n, P: p, Seed: 10, Chunks: 8}
	el, err := Generate(params, 4)
	if err != nil {
		t.Fatal(err)
	}
	und := el.UndirectedSet()
	// Every undirected edge must appear exactly twice in the merged list.
	if el.Len() != 2*len(und) {
		t.Errorf("merged %d directed copies for %d undirected edges", el.Len(), len(und))
	}
	mean := float64(n) * (n - 1) / 2 * p
	sigma := math.Sqrt(mean * (1 - p))
	if math.Abs(float64(len(und))-mean) > 6*sigma {
		t.Errorf("undirected count %d, want %v +- %v", len(und), mean, 6*sigma)
	}
}

// TestSkipSamplingSameDistribution: both code paths must produce graphs of
// statistically identical density (they draw from the same model).
func TestSkipSamplingDistributionMatch(t *testing.T) {
	const n = 1200
	const p = 0.01
	var totalBinom, totalSkip int
	const trials = 20
	for s := uint64(0); s < trials; s++ {
		a, err := Generate(Params{N: n, P: p, Directed: true, Seed: s, Chunks: 4}, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Params{N: n, P: p, Directed: true, Seed: s + 1000, Chunks: 4, SkipSampling: true}, 2)
		if err != nil {
			t.Fatal(err)
		}
		totalBinom += a.Len()
		totalSkip += b.Len()
	}
	mean := float64(n) * (n - 1) * p * trials
	for name, total := range map[string]int{"binomial": totalBinom, "skip": totalSkip} {
		if math.Abs(float64(total)-mean)/mean > 0.02 {
			t.Errorf("%s path: total %d, want ~%v", name, total, mean)
		}
	}
}

// TestPerEdgeProbability: each specific edge appears with probability p.
func TestPerEdgeProbability(t *testing.T) {
	const n = 30
	const p = 0.2
	const trials = 4000
	counts := make(map[graph.Edge]int)
	for s := uint64(0); s < trials; s++ {
		el, err := Generate(Params{N: n, P: p, Directed: true, Seed: s, Chunks: 3}, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range el.Edges {
			counts[e]++
		}
	}
	sigma := math.Sqrt(p * (1 - p) / trials)
	bad := 0
	for u := uint64(0); u < n; u++ {
		for v := uint64(0); v < n; v++ {
			if u == v {
				continue
			}
			frac := float64(counts[graph.Edge{U: u, V: v}]) / trials
			if math.Abs(frac-p) > 5*sigma {
				bad++
			}
		}
	}
	// With ~870 edges tested at 5 sigma, even a few outliers would signal
	// a real bias.
	if bad > 3 {
		t.Errorf("%d edges deviate by more than 5 sigma", bad)
	}
}

func TestWorkerIndependence(t *testing.T) {
	for _, skip := range []bool{false, true} {
		params := Params{N: 800, P: 0.01, Seed: 5, Chunks: 16, SkipSampling: skip}
		base, err := Generate(params, 1)
		if err != nil {
			t.Fatal(err)
		}
		base.Sort()
		got, err := Generate(params, 8)
		if err != nil {
			t.Fatal(err)
		}
		got.Sort()
		if got.Len() != base.Len() {
			t.Fatalf("skip=%v: edge count depends on workers", skip)
		}
		for i := range base.Edges {
			if base.Edges[i] != got.Edges[i] {
				t.Fatalf("skip=%v: edge %d differs", skip, i)
			}
		}
	}
}

// TestRedundancyConsistency: both owners of a chunk pair emit mirrored
// copies of exactly the same pairs.
func TestRedundancyConsistency(t *testing.T) {
	params := Params{N: 400, P: 0.02, Seed: 13, Chunks: 6}
	all, err := Generate(params, 4)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[graph.Edge]int)
	for _, e := range all.Edges {
		present[e]++
	}
	for e, c := range present {
		if c != 1 {
			t.Fatalf("edge %v emitted %d times, want exactly once", e, c)
		}
		if present[graph.Edge{U: e.V, V: e.U}] != 1 {
			t.Fatalf("edge %v has no mirror", e)
		}
	}
}

func TestExtremes(t *testing.T) {
	// p = 0: empty graph.
	el, err := Generate(Params{N: 100, P: 0, Seed: 1, Chunks: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if el.Len() != 0 {
		t.Errorf("p=0 produced %d edges", el.Len())
	}
	// p = 1: complete graph.
	el, err = Generate(Params{N: 50, P: 1, Directed: true, Seed: 1, Chunks: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if el.Len() != 50*49 {
		t.Errorf("p=1 directed produced %d edges, want %d", el.Len(), 50*49)
	}
	el, err = Generate(Params{N: 50, P: 1, Seed: 1, Chunks: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(el.UndirectedSet()) != 50*49/2 {
		t.Errorf("p=1 undirected produced %d pairs, want %d", len(el.UndirectedSet()), 50*49/2)
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{N: 0, P: 0.5}).Validate(); err == nil {
		t.Error("n=0 accepted")
	}
	if err := (Params{N: 10, P: -0.1}).Validate(); err == nil {
		t.Error("negative p accepted")
	}
	if err := (Params{N: 10, P: 1.1}).Validate(); err == nil {
		t.Error("p>1 accepted")
	}
	if err := (Params{N: 4, P: 0.5, Chunks: 5}).Validate(); err == nil {
		t.Error("chunks>n accepted")
	}
}

func TestPropertyNoLoopsNoDuplicates(t *testing.T) {
	f := func(seed uint16, nRaw uint16, pRaw uint16, cRaw uint8, directed, skip bool) bool {
		n := uint64(nRaw%300) + 2
		p := float64(pRaw) / 65536.0 * 0.2
		chunks := uint64(cRaw%6) + 1
		if chunks > n {
			chunks = n
		}
		params := Params{N: n, P: p, Directed: directed, Seed: uint64(seed), Chunks: chunks, SkipSampling: skip}
		el, err := Generate(params, 2)
		if err != nil {
			return false
		}
		return el.CountSelfLoops() == 0 && el.CountDuplicates() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDirectedChunkBinomial(b *testing.B) {
	p := Params{N: 1 << 18, P: 1.0 / (1 << 12), Directed: true, Seed: 1, Chunks: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 7)
	}
}

func BenchmarkDirectedChunkSkip(b *testing.B) {
	p := Params{N: 1 << 18, P: 1.0 / (1 << 12), Directed: true, Seed: 1, Chunks: 16, SkipSampling: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 7)
	}
}

// TestStreamUndirectedMatchesChunk: the streaming sweep must emit exactly
// the materialized chunk's edges in order, for both sampling code paths.
func TestStreamUndirectedMatchesChunk(t *testing.T) {
	for _, skip := range []bool{false, true} {
		for _, chunks := range []uint64{1, 2, 5, 13} {
			p := Params{N: 500, P: 0.02, Seed: 7, Chunks: chunks, SkipSampling: skip}
			for c := uint64(0); c < chunks; c++ {
				want := GenerateChunk(p, c)
				got := make([]graph.Edge, 0, len(want))
				StreamUndirectedChunk(p, c, func(e graph.Edge) { got = append(got, e) })
				if len(got) != len(want) {
					t.Fatalf("skip=%v chunks=%d pe=%d: streamed %d edges, want %d", skip, chunks, c, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("skip=%v chunks=%d pe=%d: edge %d = %v, want %v", skip, chunks, c, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestStreamUndirectedAllocs: the pair sweep holds only one pair's sampler
// state — no per-pair buffering.
func TestStreamUndirectedAllocs(t *testing.T) {
	p := Params{N: 1 << 12, P: 0.002, Seed: 1, Chunks: 16}
	var sink uint64
	allocs := testing.AllocsPerRun(5, func() {
		StreamUndirectedChunk(p, 8, func(e graph.Edge) { sink += e.U })
	})
	if allocs > 4 {
		t.Errorf("StreamUndirectedChunk allocates %.0f times per chunk, want O(1)", allocs)
	}
	_ = sink
}
