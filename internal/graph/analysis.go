package graph

import (
	"math"
	"slices"

	"repro/internal/prng"
)

// BFSDistances returns the hop distance from root to every vertex over the
// undirected interpretation of the edge list (-1 for unreachable) and the
// number of reached vertices.
func BFSDistances(e *EdgeList, root uint64) ([]int32, int) {
	adj := make([][]uint64, e.N)
	for _, edge := range e.Edges {
		adj[edge.U] = append(adj[edge.U], edge.V)
		adj[edge.V] = append(adj[edge.V], edge.U)
	}
	dist := make([]int32, e.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	frontier := []uint64{root}
	reached := 1
	for len(frontier) > 0 {
		var next []uint64
		for _, v := range frontier {
			for _, u := range adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					next = append(next, u)
					reached++
				}
			}
		}
		frontier = next
	}
	return dist, reached
}

// EffectiveDiameter returns the 90th-percentile BFS distance from the
// given root (a cheap single-source proxy for the effective diameter used
// in network analysis).
func EffectiveDiameter(e *EdgeList, root uint64) int32 {
	dist, reached := BFSDistances(e, root)
	if reached <= 1 {
		return 0
	}
	// Histogram of distances.
	var mx int32
	for _, d := range dist {
		if d > mx {
			mx = d
		}
	}
	hist := make([]int, mx+1)
	for _, d := range dist {
		if d >= 0 {
			hist[d]++
		}
	}
	target := int(math.Ceil(0.9 * float64(reached)))
	seen := 0
	for d, c := range hist {
		seen += c
		if seen >= target {
			return int32(d)
		}
	}
	return mx
}

// DegreeAssortativity returns the Pearson correlation of the degrees at
// the two endpoints of every edge (Newman's assortativity coefficient).
// Social networks are assortative (> 0); technological and hyperbolic
// graphs are typically disassortative (< 0).
func DegreeAssortativity(e *EdgeList) float64 {
	if len(e.Edges) == 0 {
		return 0
	}
	deg := OutDegrees(e)
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(e.Edges))
	for _, edge := range e.Edges {
		x := float64(deg[edge.U])
		y := float64(deg[edge.V])
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// LabelPropagation runs asynchronous label propagation for at most
// maxRounds sweeps and returns the final label of every vertex. Vertices
// are visited in a seeded random order each round; a vertex keeps its
// current label when it is among the most frequent neighbour labels
// (otherwise a global minimum label percolates through weak cuts and
// collapses all communities). Deterministic for a fixed seed.
func LabelPropagation(e *EdgeList, maxRounds int, seed uint64) []uint64 {
	adj := make([][]uint64, e.N)
	for _, edge := range e.Edges {
		adj[edge.U] = append(adj[edge.U], edge.V)
		adj[edge.V] = append(adj[edge.V], edge.U)
	}
	labels := make([]uint64, e.N)
	order := make([]uint64, e.N)
	for i := range labels {
		labels[i] = uint64(i)
		order[i] = uint64(i)
	}
	r := prng.New(seed, 0x6c6162656c) // "label"
	counts := make(map[uint64]int)
	for round := 0; round < maxRounds; round++ {
		// Fisher-Yates shuffle of the sweep order.
		for i := len(order) - 1; i > 0; i-- {
			j := r.UintN(uint64(i + 1))
			order[i], order[j] = order[j], order[i]
		}
		changed := 0
		for _, v := range order {
			if len(adj[v]) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, u := range adj[v] {
				counts[labels[u]]++
			}
			bestCount := 0
			for _, c := range counts {
				if c > bestCount {
					bestCount = c
				}
			}
			if counts[labels[v]] == bestCount {
				continue // keep the current label on ties
			}
			// Choose uniformly among the argmax labels. Sorting first
			// removes the runtime's map-iteration nondeterminism so the
			// result is a pure function of the seed.
			var cands []uint64
			for label, c := range counts {
				if c == bestCount {
					cands = append(cands, label)
				}
			}
			slices.Sort(cands)
			labels[v] = cands[r.UintN(uint64(len(cands)))]
			changed++
		}
		if changed == 0 {
			break
		}
	}
	return labels
}

// RandIndexSample estimates the Rand index between a clustering and a
// ground-truth assignment by sampling pairs: the fraction of vertex pairs
// on which the two agree (same cluster in both, or different in both).
func RandIndexSample(labels, truth []uint64, samples int, seed uint64) float64 {
	if len(labels) != len(truth) || len(labels) < 2 {
		return 0
	}
	r := prng.New(seed, 0x72616e64) // "rand"
	n := uint64(len(labels))
	agree := 0
	for i := 0; i < samples; i++ {
		a := r.UintN(n)
		b := r.UintN(n - 1)
		if b >= a {
			b++
		}
		sameL := labels[a] == labels[b]
		sameT := truth[a] == truth[b]
		if sameL == sameT {
			agree++
		}
	}
	return float64(agree) / float64(samples)
}
