package graph

import (
	"math"
	"testing"
)

func pathGraph(n uint64) *EdgeList {
	e := &EdgeList{N: n}
	for v := uint64(0); v+1 < n; v++ {
		e.Edges = append(e.Edges, Edge{v, v + 1})
	}
	return e
}

func TestBFSDistancesPath(t *testing.T) {
	e := pathGraph(6)
	dist, reached := BFSDistances(e, 0)
	if reached != 6 {
		t.Fatalf("reached %d", reached)
	}
	for v := uint64(0); v < 6; v++ {
		if dist[v] != int32(v) {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
}

func TestBFSDistancesDisconnected(t *testing.T) {
	e := &EdgeList{N: 4, Edges: []Edge{{0, 1}}}
	dist, reached := BFSDistances(e, 0)
	if reached != 2 {
		t.Fatalf("reached %d, want 2", reached)
	}
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatal("unreachable vertices should have distance -1")
	}
}

func TestEffectiveDiameter(t *testing.T) {
	// Path of 11 vertices from one end: distances 0..10; 90th percentile
	// of 11 reached vertices is distance 9.
	e := pathGraph(11)
	d := EffectiveDiameter(e, 0)
	if d != 9 {
		t.Fatalf("effective diameter %d, want 9", d)
	}
	// Star: everything at distance 1.
	star := &EdgeList{N: 8}
	for v := uint64(1); v < 8; v++ {
		star.Edges = append(star.Edges, Edge{0, v})
	}
	if d := EffectiveDiameter(star, 0); d != 1 {
		t.Fatalf("star diameter %d, want 1", d)
	}
	// Isolated root.
	iso := &EdgeList{N: 3}
	if d := EffectiveDiameter(iso, 0); d != 0 {
		t.Fatalf("isolated diameter %d, want 0", d)
	}
}

func TestDegreeAssortativityRegularGraph(t *testing.T) {
	// A cycle is perfectly regular: zero variance, defined as 0 here.
	cycle := &EdgeList{N: 6}
	for v := uint64(0); v < 6; v++ {
		cycle.Edges = append(cycle.Edges, Edge{v, (v + 1) % 6}, Edge{(v + 1) % 6, v})
	}
	if a := DegreeAssortativity(cycle); a != 0 {
		t.Fatalf("regular graph assortativity %v, want 0", a)
	}
}

func TestDegreeAssortativityStar(t *testing.T) {
	// A star is maximally disassortative: hubs connect to leaves only.
	star := &EdgeList{N: 10}
	for v := uint64(1); v < 10; v++ {
		star.Edges = append(star.Edges, Edge{0, v}, Edge{v, 0})
	}
	a := DegreeAssortativity(star)
	if math.Abs(a-(-1)) > 1e-9 {
		t.Fatalf("star assortativity %v, want -1", a)
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	// Two 5-cliques joined by a single edge: two communities.
	e := &EdgeList{N: 10}
	addClique := func(lo, hi uint64) {
		for u := lo; u < hi; u++ {
			for v := lo; v < hi; v++ {
				if u != v {
					e.Edges = append(e.Edges, Edge{u, v})
				}
			}
		}
	}
	addClique(0, 5)
	addClique(5, 10)
	e.Edges = append(e.Edges, Edge{4, 5}, Edge{5, 4})
	labels := LabelPropagation(e, 50, 1)
	for v := uint64(1); v < 5; v++ {
		if labels[v] != labels[0] {
			t.Fatalf("clique 1 not uniform: %v", labels[:5])
		}
	}
	for v := uint64(6); v < 10; v++ {
		if labels[v] != labels[5] {
			t.Fatalf("clique 2 not uniform: %v", labels[5:])
		}
	}
}

func TestLabelPropagationIsolated(t *testing.T) {
	e := &EdgeList{N: 3, Edges: []Edge{{0, 1}, {1, 0}}}
	labels := LabelPropagation(e, 10, 1)
	if labels[2] != 2 {
		t.Fatalf("isolated vertex label changed: %d", labels[2])
	}
}
