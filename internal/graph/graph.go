// Package graph provides the data structures shared by all generators:
// edge lists (the native output of the communication-free generators),
// compressed sparse row adjacency, and the statistics used to validate
// generated instances against the theory of the underlying network models.
package graph

import (
	"cmp"
	"slices"
)

// Edge is a directed edge (U, V). Undirected generators emit each edge once
// per endpoint (both orientations across the owning PEs), matching the
// partitioned-output convention of the paper.
type Edge struct {
	U, V uint64
}

// EdgeList is a list of edges over vertices [0, N).
type EdgeList struct {
	N     uint64
	Edges []Edge
}

// Len returns the number of (directed) edges.
func (e *EdgeList) Len() int { return len(e.Edges) }

// Sort orders edges lexicographically by (U, V). The comparison runs on
// the packed (U, V) key pair through slices.SortFunc — no interface
// boxing, no index-closure indirection — which is markedly faster than
// the previous sort.Slice on the hot Sort/Dedup paths. Equal edges are
// identical values, so the unstable order change is unobservable.
func (e *EdgeList) Sort() {
	slices.SortFunc(e.Edges, compareEdges)
}

// compareEdges is the lexicographic (U, V) order.
func compareEdges(a, b Edge) int {
	if c := cmp.Compare(a.U, b.U); c != 0 {
		return c
	}
	return cmp.Compare(a.V, b.V)
}

// Dedup sorts the list and removes exact duplicates in place.
func (e *EdgeList) Dedup() {
	if len(e.Edges) == 0 {
		return
	}
	e.Sort()
	out := e.Edges[:1]
	for _, edge := range e.Edges[1:] {
		if edge != out[len(out)-1] {
			out = append(out, edge)
		}
	}
	e.Edges = out
}

// UndirectedSet returns the set of undirected edges {min,max}, deduplicated
// and sorted. Self-loops are preserved as (v,v).
func (e *EdgeList) UndirectedSet() []Edge {
	out := make([]Edge, 0, len(e.Edges))
	for _, edge := range e.Edges {
		u, v := edge.U, edge.V
		if u > v {
			u, v = v, u
		}
		out = append(out, Edge{u, v})
	}
	l := EdgeList{N: e.N, Edges: out}
	l.Dedup()
	return l.Edges
}

// Merge concatenates per-PE edge lists into one list over n vertices.
func Merge(n uint64, parts ...[]Edge) *EdgeList {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	edges := make([]Edge, 0, total)
	for _, p := range parts {
		edges = append(edges, p...)
	}
	return &EdgeList{N: n, Edges: edges}
}

// CountSelfLoops returns the number of edges (v, v).
func (e *EdgeList) CountSelfLoops() int {
	c := 0
	for _, edge := range e.Edges {
		if edge.U == edge.V {
			c++
		}
	}
	return c
}

// CountDuplicates returns the number of exact duplicate directed edges.
func (e *EdgeList) CountDuplicates() int {
	seen := make(map[Edge]struct{}, len(e.Edges))
	dup := 0
	for _, edge := range e.Edges {
		if _, ok := seen[edge]; ok {
			dup++
		} else {
			seen[edge] = struct{}{}
		}
	}
	return dup
}

// CSR is a compressed sparse row adjacency structure.
type CSR struct {
	N       uint64
	Offsets []uint64 // length N+1
	Targets []uint64 // length = number of directed edges
}

// BuildCSR constructs a CSR from an edge list (directed interpretation).
func BuildCSR(e *EdgeList) *CSR {
	n := e.N
	offsets := make([]uint64, n+1)
	for _, edge := range e.Edges {
		offsets[edge.U+1]++
	}
	for i := uint64(1); i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	targets := make([]uint64, len(e.Edges))
	cursor := make([]uint64, n)
	for _, edge := range e.Edges {
		targets[offsets[edge.U]+cursor[edge.U]] = edge.V
		cursor[edge.U]++
	}
	// Sort each adjacency list for reproducible iteration and fast lookup.
	for v := uint64(0); v < n; v++ {
		slices.Sort(targets[offsets[v]:offsets[v+1]])
	}
	return &CSR{N: n, Offsets: offsets, Targets: targets}
}

// Degree returns the out-degree of v.
func (c *CSR) Degree(v uint64) uint64 { return c.Offsets[v+1] - c.Offsets[v] }

// Neighbors returns the sorted adjacency list of v (shared storage).
func (c *CSR) Neighbors(v uint64) []uint64 {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// HasEdge reports whether the directed edge (u, v) exists.
func (c *CSR) HasEdge(u, v uint64) bool {
	_, ok := slices.BinarySearch(c.Neighbors(u), v)
	return ok
}

// UnionFind is a weighted-union path-halving disjoint set forest.
type UnionFind struct {
	parent []uint64
	size   []uint64
	count  int
}

// NewUnionFind returns a forest of n singletons.
func NewUnionFind(n uint64) *UnionFind {
	parent := make([]uint64, n)
	size := make([]uint64, n)
	for i := range parent {
		parent[i] = uint64(i)
		size[i] = 1
	}
	return &UnionFind{parent: parent, size: size, count: int(n)}
}

// Find returns the representative of x.
func (u *UnionFind) Find(x uint64) uint64 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning true if they were distinct.
func (u *UnionFind) Union(a, b uint64) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.count--
	return true
}

// Components returns the number of disjoint sets.
func (u *UnionFind) Components() int { return u.count }
