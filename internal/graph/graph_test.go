package graph

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestEdgeListSortDedup(t *testing.T) {
	e := &EdgeList{N: 5, Edges: []Edge{{3, 1}, {0, 2}, {3, 1}, {0, 1}, {0, 2}}}
	e.Dedup()
	want := []Edge{{0, 1}, {0, 2}, {3, 1}}
	if len(e.Edges) != len(want) {
		t.Fatalf("got %v", e.Edges)
	}
	for i := range want {
		if e.Edges[i] != want[i] {
			t.Fatalf("got %v, want %v", e.Edges, want)
		}
	}
}

func TestUndirectedSet(t *testing.T) {
	e := &EdgeList{N: 4, Edges: []Edge{{1, 2}, {2, 1}, {0, 3}, {3, 3}}}
	set := e.UndirectedSet()
	want := []Edge{{0, 3}, {1, 2}, {3, 3}}
	if len(set) != len(want) {
		t.Fatalf("got %v", set)
	}
	for i := range want {
		if set[i] != want[i] {
			t.Fatalf("got %v, want %v", set, want)
		}
	}
}

func TestCSR(t *testing.T) {
	e := &EdgeList{N: 4, Edges: []Edge{{0, 1}, {0, 3}, {1, 0}, {2, 3}, {0, 2}}}
	csr := BuildCSR(e)
	if csr.Degree(0) != 3 || csr.Degree(1) != 1 || csr.Degree(2) != 1 || csr.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %v", csr.Offsets)
	}
	adj := csr.Neighbors(0)
	if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		t.Fatal("adjacency not sorted")
	}
	if !csr.HasEdge(0, 2) || csr.HasEdge(3, 0) || csr.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestCSRPreservesEdgeCount(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := uint64(nRaw) + 1
		e := &EdgeList{N: n}
		for i := 0; i+1 < len(raw); i += 2 {
			e.Edges = append(e.Edges, Edge{uint64(raw[i]) % n, uint64(raw[i+1]) % n})
		}
		csr := BuildCSR(e)
		var total uint64
		for v := uint64(0); v < n; v++ {
			total += csr.Degree(v)
		}
		return total == uint64(len(e.Edges)) && len(csr.Targets) == len(e.Edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Components() != 6 {
		t.Fatal("initial components")
	}
	uf.Union(0, 1)
	uf.Union(1, 2)
	uf.Union(4, 5)
	if uf.Components() != 3 {
		t.Fatalf("components = %d, want 3", uf.Components())
	}
	if uf.Find(0) != uf.Find(2) {
		t.Fatal("0 and 2 should be connected")
	}
	if uf.Find(3) == uf.Find(0) {
		t.Fatal("3 should be isolated")
	}
	if uf.Union(0, 2) {
		t.Fatal("union of connected elements should return false")
	}
}

func TestComputeStats(t *testing.T) {
	// Undirected triangle stored with both orientations plus isolated vertex 3.
	e := &EdgeList{N: 4, Edges: []Edge{
		{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0},
	}}
	s := ComputeStats(e)
	if s.AvgDegree != 1.5 {
		t.Errorf("avg degree %v, want 1.5", s.AvgDegree)
	}
	if s.MaxDegree != 2 || s.MinDegree != 0 {
		t.Errorf("min/max degree %d/%d", s.MinDegree, s.MaxDegree)
	}
	if s.Components != 2 {
		t.Errorf("components %d, want 2", s.Components)
	}
	if s.SelfLoops != 0 {
		t.Errorf("self loops %d", s.SelfLoops)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: clustering 1.0.
	tri := &EdgeList{N: 3, Edges: []Edge{{0, 1}, {1, 2}, {0, 2}}}
	if c := GlobalClusteringCoefficient(tri); c != 1.0 {
		t.Errorf("triangle clustering %v, want 1", c)
	}
	// Path 0-1-2: one wedge, no triangle.
	path := &EdgeList{N: 3, Edges: []Edge{{0, 1}, {1, 2}}}
	if c := GlobalClusteringCoefficient(path); c != 0.0 {
		t.Errorf("path clustering %v, want 0", c)
	}
}

func TestPowerLawMLE(t *testing.T) {
	// Synthetic exact power law: counts proportional to d^-3.
	var degrees []uint64
	for d := uint64(1); d <= 100; d++ {
		count := int(1e7 / float64(d*d*d))
		for i := 0; i < count; i++ {
			degrees = append(degrees, d)
		}
	}
	gamma := PowerLawExponentMLE(degrees, 2)
	if gamma < 2.7 || gamma > 3.3 {
		t.Errorf("estimated gamma %v, want ~3", gamma)
	}
}

func TestTextRoundTrip(t *testing.T) {
	e := &EdgeList{N: 5, Edges: []Edge{{0, 1}, {2, 3}, {4, 0}}}
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, e); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != e.N || len(got.Edges) != len(e.Edges) {
		t.Fatalf("round trip: got n=%d m=%d", got.N, len(got.Edges))
	}
	for i := range e.Edges {
		if got.Edges[i] != e.Edges[i] {
			t.Fatalf("edge %d: got %v want %v", i, got.Edges[i], e.Edges[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	e := &EdgeList{N: 1 << 40, Edges: []Edge{{1 << 39, 7}, {0, 1<<40 - 1}}}
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, e); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != e.N || len(got.Edges) != 2 || got.Edges[0] != e.Edges[0] || got.Edges[1] != e.Edges[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWriteMetis(t *testing.T) {
	e := &EdgeList{N: 3, Edges: []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}}}
	var buf bytes.Buffer
	if err := WriteMetis(&buf, e); err != nil {
		t.Fatal(err)
	}
	want := "3 2\n2\n1 3\n2\n"
	if buf.String() != want {
		t.Errorf("metis output %q, want %q", buf.String(), want)
	}
}

func TestMergeAndCounts(t *testing.T) {
	merged := Merge(10, []Edge{{0, 1}}, []Edge{{1, 2}, {0, 1}}, nil)
	if merged.Len() != 3 {
		t.Fatalf("merged len %d", merged.Len())
	}
	if merged.CountDuplicates() != 1 {
		t.Errorf("duplicates %d, want 1", merged.CountDuplicates())
	}
	withLoop := &EdgeList{N: 3, Edges: []Edge{{1, 1}, {0, 2}}}
	if withLoop.CountSelfLoops() != 1 {
		t.Errorf("self loops %d, want 1", withLoop.CountSelfLoops())
	}
}

func TestDegreePercentile(t *testing.T) {
	degrees := []uint64{5, 1, 3, 2, 4}
	if p := DegreePercentile(degrees, 0); p != 1 {
		t.Errorf("p0 = %d", p)
	}
	if p := DegreePercentile(degrees, 100); p != 5 {
		t.Errorf("p100 = %d", p)
	}
	if p := DegreePercentile(degrees, 50); p != 3 {
		t.Errorf("p50 = %d", p)
	}
	if p := DegreePercentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %d", p)
	}
}

func TestReadEdgeListTextErrors(t *testing.T) {
	if _, err := ReadEdgeListText(bytes.NewBufferString("# notanumber\n1 2\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadEdgeListText(bytes.NewBufferString("# 5\n1\n")); err == nil {
		t.Error("short edge line accepted")
	}
	if _, err := ReadEdgeListText(bytes.NewBufferString("# 5\na b\n")); err == nil {
		t.Error("non-numeric edge accepted")
	}
	// Vertices beyond the header grow n.
	el, err := ReadEdgeListText(bytes.NewBufferString("# 2\n0 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if el.N != 8 {
		t.Errorf("n = %d, want 8 (grown by edge endpoint)", el.N)
	}
}

func TestReadEdgeListBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, &EdgeList{N: 3, Edges: []Edge{{0, 1}, {1, 2}}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadEdgeListBinary(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated binary stream accepted")
	}
	if _, err := ReadEdgeListBinary(bytes.NewReader(raw[:4])); err == nil {
		t.Error("truncated header accepted")
	}
}
