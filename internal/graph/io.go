package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeListText writes one "u v" pair per line preceded by a header
// line "# n m".
func WriteEdgeListText(w io.Writer, e *EdgeList) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", e.N, len(e.Edges)); err != nil {
		return err
	}
	for _, edge := range e.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", edge.U, edge.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// StreamEdgeListText incrementally parses the format written by
// WriteEdgeListText: header (if non-nil) is called with the vertex count
// of a leading "# n ..." comment, then edge is called once per edge line
// in file order. It is the single text decoder — the materializing
// ReadEdgeListText and the job runner's streaming shard merge are both
// built on it, so the parsing rules cannot drift apart.
func StreamEdgeListText(r io.Reader, header func(n uint64) error, edge func(u, v uint64) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if first {
				fields := strings.Fields(line[1:])
				if len(fields) >= 1 {
					n, err := strconv.ParseUint(fields[0], 10, 64)
					if err != nil {
						return fmt.Errorf("graph: bad header: %v", err)
					}
					if header != nil {
						if err := header(n); err != nil {
							return err
						}
					}
				}
				first = false
			}
			continue
		}
		first = false
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return err
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		if err := edge(u, v); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadEdgeListText parses the format written by WriteEdgeListText.
func ReadEdgeListText(r io.Reader) (*EdgeList, error) {
	e := &EdgeList{}
	err := StreamEdgeListText(r,
		func(n uint64) error { e.N = n; return nil },
		func(u, v uint64) error {
			e.Edges = append(e.Edges, Edge{u, v})
			if u >= e.N {
				e.N = u + 1
			}
			if v >= e.N {
				e.N = v + 1
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// WriteEdgeListBinary writes a compact little-endian binary format:
// n (u64), m (u64), then m pairs of u64.
func WriteEdgeListBinary(w io.Writer, e *EdgeList) error {
	bw := bufio.NewWriter(w)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], e.N)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(e.Edges)))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for _, edge := range e.Edges {
		binary.LittleEndian.PutUint64(buf[0:], edge.U)
		binary.LittleEndian.PutUint64(buf[8:], edge.V)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// StreamingEdgeCount is the sentinel edge count of the binary header for
// streamed output: a writer that cannot seek back to patch the real count
// into the header (a pipe, or a compressed stream) writes it, and readers
// consume (u, v) pairs until EOF instead of a fixed count.
const StreamingEdgeCount = ^uint64(0)

// StreamEdgeListBinary incrementally parses the format written by
// WriteEdgeListBinary: header (if non-nil) receives the declared vertex
// and edge counts (m may be StreamingEdgeCount), then edge is called once
// per record. A fixed count reads exactly m records; the sentinel reads
// until EOF, where a trailing partial record is an error. It is the
// single binary decoder, shared by ReadEdgeListBinary and the job
// runner's streaming shard merge.
func StreamEdgeListBinary(r io.Reader, header func(n, m uint64) error, edge func(u, v uint64) error) error {
	br := bufio.NewReader(r)
	var buf [16]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return err
	}
	m := binary.LittleEndian.Uint64(buf[8:])
	if header != nil {
		if err := header(binary.LittleEndian.Uint64(buf[0:]), m); err != nil {
			return err
		}
	}
	for i := uint64(0); m == StreamingEdgeCount || i < m; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if err == io.EOF && m == StreamingEdgeCount {
				return nil
			}
			return err // ErrUnexpectedEOF on a partial record
		}
		if err := edge(binary.LittleEndian.Uint64(buf[0:]), binary.LittleEndian.Uint64(buf[8:])); err != nil {
			return err
		}
	}
	return nil
}

// ReadEdgeListBinary parses the format written by WriteEdgeListBinary,
// accepting both fixed-count and sentinel (until-EOF) framing.
func ReadEdgeListBinary(r io.Reader) (*EdgeList, error) {
	e := &EdgeList{}
	err := StreamEdgeListBinary(r,
		func(n, m uint64) error {
			e.N = n
			if m != StreamingEdgeCount {
				e.Edges = make([]Edge, 0, m)
			}
			return nil
		},
		func(u, v uint64) error {
			e.Edges = append(e.Edges, Edge{U: u, V: v})
			return nil
		})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// WriteMetis writes the graph in METIS adjacency format (1-indexed,
// undirected interpretation: the list must already contain both
// orientations of every edge).
func WriteMetis(w io.Writer, e *EdgeList) error {
	csr := BuildCSR(e)
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", e.N, len(e.Edges)/2); err != nil {
		return err
	}
	for v := uint64(0); v < e.N; v++ {
		adj := csr.Neighbors(v)
		for i, u := range adj {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(u+1, 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
