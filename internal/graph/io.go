package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeListText writes one "u v" pair per line preceded by a header
// line "# n m".
func WriteEdgeListText(w io.Writer, e *EdgeList) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", e.N, len(e.Edges)); err != nil {
		return err
	}
	for _, edge := range e.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", edge.U, edge.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeListText parses the format written by WriteEdgeListText.
func ReadEdgeListText(r io.Reader) (*EdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	e := &EdgeList{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if first {
				fields := strings.Fields(line[1:])
				if len(fields) >= 1 {
					n, err := strconv.ParseUint(fields[0], 10, 64)
					if err != nil {
						return nil, fmt.Errorf("graph: bad header: %v", err)
					}
					e.N = n
				}
				first = false
			}
			continue
		}
		first = false
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, err
		}
		e.Edges = append(e.Edges, Edge{u, v})
		if u >= e.N {
			e.N = u + 1
		}
		if v >= e.N {
			e.N = v + 1
		}
	}
	return e, sc.Err()
}

// WriteEdgeListBinary writes a compact little-endian binary format:
// n (u64), m (u64), then m pairs of u64.
func WriteEdgeListBinary(w io.Writer, e *EdgeList) error {
	bw := bufio.NewWriter(w)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], e.N)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(e.Edges)))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for _, edge := range e.Edges {
		binary.LittleEndian.PutUint64(buf[0:], edge.U)
		binary.LittleEndian.PutUint64(buf[8:], edge.V)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeListBinary parses the format written by WriteEdgeListBinary.
func ReadEdgeListBinary(r io.Reader) (*EdgeList, error) {
	br := bufio.NewReader(r)
	var buf [16]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, err
	}
	e := &EdgeList{N: binary.LittleEndian.Uint64(buf[0:])}
	m := binary.LittleEndian.Uint64(buf[8:])
	e.Edges = make([]Edge, 0, m)
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		e.Edges = append(e.Edges, Edge{
			U: binary.LittleEndian.Uint64(buf[0:]),
			V: binary.LittleEndian.Uint64(buf[8:]),
		})
	}
	return e, nil
}

// WriteMetis writes the graph in METIS adjacency format (1-indexed,
// undirected interpretation: the list must already contain both
// orientations of every edge).
func WriteMetis(w io.Writer, e *EdgeList) error {
	csr := BuildCSR(e)
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", e.N, len(e.Edges)/2); err != nil {
		return err
	}
	for v := uint64(0); v < e.N; v++ {
		adj := csr.Neighbors(v)
		for i, u := range adj {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(u+1, 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
