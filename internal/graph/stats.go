package graph

import (
	"math"
	"slices"
)

// Stats summarizes a generated instance for validation and reporting.
type Stats struct {
	N          uint64
	M          int // directed edge count as stored
	MinDegree  uint64
	MaxDegree  uint64
	AvgDegree  float64
	SelfLoops  int
	Components int
}

// ComputeStats builds summary statistics from an edge list. For undirected
// graphs stored with both orientations, AvgDegree is the true average
// degree (each incident edge counted once per endpoint).
func ComputeStats(e *EdgeList) Stats {
	degrees := OutDegrees(e)
	var mn, mx, sum uint64
	mn = math.MaxUint64
	for _, d := range degrees {
		if d < mn {
			mn = d
		}
		if d > mx {
			mx = d
		}
		sum += d
	}
	if e.N == 0 {
		mn = 0
	}
	uf := NewUnionFind(e.N)
	for _, edge := range e.Edges {
		uf.Union(edge.U, edge.V)
	}
	avg := 0.0
	if e.N > 0 {
		avg = float64(sum) / float64(e.N)
	}
	return Stats{
		N:          e.N,
		M:          len(e.Edges),
		MinDegree:  mn,
		MaxDegree:  mx,
		AvgDegree:  avg,
		SelfLoops:  e.CountSelfLoops(),
		Components: uf.Components(),
	}
}

// OutDegrees returns the out-degree of every vertex.
func OutDegrees(e *EdgeList) []uint64 {
	degrees := make([]uint64, e.N)
	for _, edge := range e.Edges {
		degrees[edge.U]++
	}
	return degrees
}

// DegreeHistogram returns hist[d] = number of vertices with out-degree d.
func DegreeHistogram(e *EdgeList) []uint64 {
	degrees := OutDegrees(e)
	var mx uint64
	for _, d := range degrees {
		if d > mx {
			mx = d
		}
	}
	hist := make([]uint64, mx+1)
	for _, d := range degrees {
		hist[d]++
	}
	return hist
}

// PowerLawExponentMLE estimates the exponent gamma of a power-law degree
// distribution P(d) ~ d^-gamma using the discrete maximum likelihood
// estimator of Clauset, Shalizi & Newman with a fixed cutoff dmin:
// gamma = 1 + n / sum(ln(d_i / (dmin - 0.5))). Degrees below dmin are
// ignored. Used to validate RHG (gamma = 2*alpha + 1) and BA (gamma ~ 3).
func PowerLawExponentMLE(degrees []uint64, dmin uint64) float64 {
	if dmin == 0 {
		dmin = 1
	}
	var n float64
	var logSum float64
	for _, d := range degrees {
		if d < dmin {
			continue
		}
		n++
		logSum += math.Log(float64(d) / (float64(dmin) - 0.5))
	}
	if logSum == 0 {
		return math.NaN()
	}
	return 1 + n/logSum
}

// GlobalClusteringCoefficient computes 3*triangles/openTriads on the
// undirected simple graph induced by the edge list. Intended for small
// validation graphs (it enumerates wedges).
func GlobalClusteringCoefficient(e *EdgeList) float64 {
	// Build symmetric simple adjacency.
	sym := &EdgeList{N: e.N}
	for _, edge := range e.Edges {
		if edge.U == edge.V {
			continue
		}
		sym.Edges = append(sym.Edges, Edge{edge.U, edge.V}, Edge{edge.V, edge.U})
	}
	sym.Dedup()
	csr := BuildCSR(sym)
	var closed, total float64
	for v := uint64(0); v < e.N; v++ {
		adj := csr.Neighbors(v)
		d := len(adj)
		if d < 2 {
			continue
		}
		total += float64(d*(d-1)) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if csr.HasEdge(adj[i], adj[j]) {
					closed++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return closed / total
}

// DegreePercentile returns the q-th percentile (0..100) of vertex degrees.
func DegreePercentile(degrees []uint64, q float64) uint64 {
	if len(degrees) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), degrees...)
	slices.Sort(sorted)
	idx := int(q / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
