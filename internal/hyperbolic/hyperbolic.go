// Package hyperbolic provides the geometry kit of the random hyperbolic
// graph generators (§7 and Appendix A/B of the paper): the native-disk
// coordinate model, radial density sampling, angular deviation bounds, and
// the trigonometric-function-free adjacency test of §7.2.1.
//
// A point has a polar coordinate theta in [0, 2*pi) and a radial
// coordinate r in [0, R]; two points are adjacent iff their hyperbolic
// distance (Eq. 4) is below the disk radius R.
package hyperbolic

import (
	"math"

	"repro/internal/prng"
)

// DiskRadius returns R = 2 ln n + C (Eq. 1) with C chosen so that the
// expected average degree approaches avgDeg (Eq. 2):
// avgDeg = (2/pi) * (alpha/(alpha-1/2))^2 * e^(-C/2).
func DiskRadius(n uint64, avgDeg, alpha float64) float64 {
	xi := alpha / (alpha - 0.5)
	c := -2 * math.Log(avgDeg*math.Pi/(2*xi*xi))
	return 2*math.Log(float64(n)) + c
}

// AlphaFromGamma converts a power-law exponent gamma = 2*alpha + 1 into
// the dispersion parameter alpha (valid for gamma > 2).
func AlphaFromGamma(gamma float64) float64 { return (gamma - 1) / 2 }

// RadialCDFMass returns mu(B_r(0)) under density Eq. 3:
// (cosh(alpha*r) - 1) / (cosh(alpha*R) - 1).
func RadialCDFMass(alpha, bigR, r float64) float64 {
	return (math.Cosh(alpha*r) - 1) / (math.Cosh(alpha*bigR) - 1)
}

// AnnulusMass returns the probability that a point lands in the annulus
// [a, b) (the p_i of §7.1).
func AnnulusMass(alpha, bigR, a, b float64) float64 {
	return (math.Cosh(alpha*b) - math.Cosh(alpha*a)) / (math.Cosh(alpha*bigR) - 1)
}

// SampleRadius draws a radius from the density Eq. 3 restricted to [a, b]
// by inverse-CDF sampling.
func SampleRadius(r *prng.Random, alpha, a, b float64) float64 {
	ca := math.Cosh(alpha * a)
	cb := math.Cosh(alpha * b)
	x := ca + r.Float64()*(cb-ca)
	if x < 1 {
		x = 1
	}
	return math.Acosh(x) / alpha
}

// Distance returns the hyperbolic distance of two points (Eq. 4).
func Distance(r1, t1, r2, t2 float64) float64 {
	arg := math.Cosh(r1)*math.Cosh(r2) - math.Sinh(r1)*math.Sinh(r2)*math.Cos(t1-t2)
	if arg < 1 {
		arg = 1
	}
	return math.Acosh(arg)
}

// DeltaTheta returns the maximum angular deviation (Eq. A.3) at which a
// point with radius b can still be within hyperbolic distance bigR of a
// point with radius r. Returns pi when the whole circle qualifies.
func DeltaTheta(r, b, bigR float64) float64 {
	if r+b < bigR {
		return math.Pi
	}
	if r <= 0 || b <= 0 {
		// One point at the origin: its distance to the other is exactly
		// r+b >= bigR here, so it is not a neighbour.
		return 0
	}
	arg := (math.Cosh(r)*math.Cosh(b) - math.Cosh(bigR)) / (math.Sinh(r) * math.Sinh(b))
	if arg <= -1 {
		return math.Pi
	}
	if arg >= 1 {
		return 0
	}
	return math.Acos(arg)
}

// Point carries a vertex's coordinates together with the pre-computed
// values of §7.2.1 that reduce each adjacency test to a handful of
// multiplications (Eq. 9).
type Point struct {
	ID       uint64
	Theta, R float64
	CosT     float64 // cos(theta)
	SinT     float64 // sin(theta)
	CothR    float64 // coth(r)
	InvSinhR float64 // 1 / sinh(r)
}

// minRadius guards the pre-computed reciprocals against r = 0 (a
// zero-probability event under the radial density, but reachable through
// u = 0 in the inverse CDF).
const minRadius = 1e-12

// MakePoint builds a Point with its pre-computed adjacency constants.
func MakePoint(id uint64, theta, r float64) Point {
	if r < minRadius {
		r = minRadius
	}
	sinh := math.Sinh(r)
	return Point{
		ID:       id,
		Theta:    theta,
		R:        r,
		CosT:     math.Cos(theta),
		SinT:     math.Sin(theta),
		CothR:    math.Cosh(r) / sinh,
		InvSinhR: 1 / sinh,
	}
}

// Geo bundles the per-instance constants of the adjacency test.
type Geo struct {
	R     float64 // disk radius
	CoshR float64
	Alpha float64
}

// NewGeo precomputes the instance constants.
func NewGeo(bigR, alpha float64) Geo {
	return Geo{R: bigR, CoshR: math.Cosh(bigR), Alpha: alpha}
}

// IsNeighbor evaluates Eq. 9: dist(p, q) < R without trigonometric or
// hyperbolic function calls, using the precomputed per-point constants.
func (g Geo) IsNeighbor(p, q Point) bool {
	lhs := p.CosT*q.CosT + p.SinT*q.SinT // cos(theta_p - theta_q)
	rhs := p.CothR*q.CothR - g.CoshR*p.InvSinhR*q.InvSinhR
	return lhs > rhs
}

// DeltaThetaPre evaluates Eq. 8 for a query point p against an annulus
// with precomputed lower-boundary constants cothB and coshRInvSinhB =
// cosh(R)/sinh(b). Returns pi if the whole annulus qualifies.
func (g Geo) DeltaThetaPre(p Point, cothB, coshRInvSinhB float64) float64 {
	arg := p.CothR*cothB - coshRInvSinhB*p.InvSinhR
	if arg <= -1 {
		return math.Pi
	}
	if arg >= 1 {
		return 0
	}
	return math.Acos(arg)
}

// Annuli returns the radial boundaries of the band structure of §7.1/§7.2
// over [lo, R]: k = max(1, floor(alpha*(R-lo)/ln 2)) annuli of equal
// height. The returned slice has k+1 boundaries; the first is lo and the
// last is exactly R.
func Annuli(alpha, lo, bigR float64) []float64 {
	k := int(alpha * (bigR - lo) / math.Ln2)
	if k < 1 {
		k = 1
	}
	bounds := make([]float64, k+1)
	h := (bigR - lo) / float64(k)
	for i := 0; i <= k; i++ {
		bounds[i] = lo + float64(i)*h
	}
	bounds[k] = bigR
	return bounds
}

// ExpectedDegree returns the asymptotic expected average degree for the
// given parameters (inverse of DiskRadius).
func ExpectedDegree(n uint64, bigR, alpha float64) float64 {
	xi := alpha / (alpha - 0.5)
	c := bigR - 2*math.Log(float64(n))
	return 2 / math.Pi * xi * xi * math.Exp(-c/2)
}
