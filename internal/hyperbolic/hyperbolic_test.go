package hyperbolic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestDiskRadiusInvertsExpectedDegree(t *testing.T) {
	for _, c := range []struct {
		n     uint64
		deg   float64
		alpha float64
	}{
		{1 << 16, 16, 0.75},
		{1 << 20, 256, 1.0},
		{1 << 14, 8, 0.6},
	} {
		bigR := DiskRadius(c.n, c.deg, c.alpha)
		got := ExpectedDegree(c.n, bigR, c.alpha)
		if math.Abs(got-c.deg)/c.deg > 1e-9 {
			t.Errorf("n=%d deg=%v alpha=%v: roundtrip degree %v", c.n, c.deg, c.alpha, got)
		}
		if bigR <= 0 {
			t.Errorf("R = %v not positive", bigR)
		}
	}
}

func TestAlphaFromGamma(t *testing.T) {
	if a := AlphaFromGamma(3.0); a != 1.0 {
		t.Errorf("gamma=3 -> alpha %v, want 1", a)
	}
	if a := AlphaFromGamma(2.2); math.Abs(a-0.6) > 1e-12 {
		t.Errorf("gamma=2.2 -> alpha %v, want 0.6", a)
	}
}

func TestRadialCDFMassMonotone(t *testing.T) {
	const alpha, bigR = 0.8, 20.0
	prev := 0.0
	for r := 0.0; r <= bigR; r += 0.5 {
		m := RadialCDFMass(alpha, bigR, r)
		if m < prev-1e-15 {
			t.Fatalf("CDF not monotone at r=%v", r)
		}
		prev = m
	}
	if math.Abs(RadialCDFMass(alpha, bigR, bigR)-1) > 1e-12 {
		t.Error("CDF at R must be 1")
	}
	if RadialCDFMass(alpha, bigR, 0) != 0 {
		t.Error("CDF at 0 must be 0")
	}
}

func TestSampleRadiusRespectsBounds(t *testing.T) {
	r := prng.NewFromRaw(3)
	const alpha = 0.7
	for i := 0; i < 20000; i++ {
		x := SampleRadius(r, alpha, 5, 9)
		if x < 5-1e-9 || x > 9+1e-9 {
			t.Fatalf("radius %v outside [5,9]", x)
		}
	}
}

// TestSampleRadiusDistribution: empirical mass below the midpoint must
// match the conditional CDF.
func TestSampleRadiusDistribution(t *testing.T) {
	r := prng.NewFromRaw(4)
	const alpha = 0.9
	const a, b = 3.0, 8.0
	const mid = 6.0
	const trials = 200000
	below := 0
	for i := 0; i < trials; i++ {
		if SampleRadius(r, alpha, a, b) < mid {
			below++
		}
	}
	want := (math.Cosh(alpha*mid) - math.Cosh(alpha*a)) / (math.Cosh(alpha*b) - math.Cosh(alpha*a))
	got := float64(below) / trials
	if math.Abs(got-want) > 0.005 {
		t.Errorf("P[r < mid] = %v, want %v", got, want)
	}
}

func TestDistanceProperties(t *testing.T) {
	// Symmetry and identity.
	f := func(r1Raw, t1Raw, r2Raw, t2Raw uint16) bool {
		r1 := float64(r1Raw) / 65535 * 10
		r2 := float64(r2Raw) / 65535 * 10
		t1 := float64(t1Raw) / 65535 * 2 * math.Pi
		t2 := float64(t2Raw) / 65535 * 2 * math.Pi
		d12 := Distance(r1, t1, r2, t2)
		d21 := Distance(r2, t2, r1, t1)
		if math.Abs(d12-d21) > 1e-9 {
			return false
		}
		// Eq. 4 suffers catastrophic cancellation near distance 0: the
		// error of acosh(1+eps) is ~sqrt(2*eps) with eps ~ ulp(cosh^2 r).
		return Distance(r1, t1, r1, t1) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Same angle: distance is |r1 - r2|.
	if d := Distance(3, 1, 7, 1); math.Abs(d-4) > 1e-9 {
		t.Errorf("colinear distance %v, want 4", d)
	}
	// Opposite angles: distance is r1 + r2 (on a geodesic through origin).
	if d := Distance(3, 0, 4, math.Pi); math.Abs(d-7) > 1e-9 {
		t.Errorf("antipodal distance %v, want 7", d)
	}
}

// TestIsNeighborMatchesDistance: Eq. 9 must agree with the direct distance
// comparison away from the decision boundary.
func TestIsNeighborMatchesDistance(t *testing.T) {
	const bigR = 15.0
	g := NewGeo(bigR, 0.8)
	r := prng.NewFromRaw(5)
	agree, boundary := 0, 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		p := MakePoint(0, r.Float64()*2*math.Pi, r.Float64()*bigR)
		q := MakePoint(1, r.Float64()*2*math.Pi, r.Float64()*bigR)
		d := Distance(p.R, p.Theta, q.R, q.Theta)
		if math.Abs(d-bigR) < 1e-9 {
			boundary++
			continue
		}
		if g.IsNeighbor(p, q) == (d < bigR) {
			agree++
		}
	}
	if agree+boundary != trials {
		t.Errorf("Eq.9 disagrees with distance on %d of %d pairs", trials-agree-boundary, trials)
	}
}

// TestDeltaThetaIsUpperBound: any point q in an annulus with lower bound b
// that is a neighbor of p must satisfy |theta_p - theta_q| <= DeltaTheta.
func TestDeltaThetaIsUpperBound(t *testing.T) {
	const bigR = 12.0
	g := NewGeo(bigR, 0.8)
	r := prng.NewFromRaw(6)
	for i := 0; i < 20000; i++ {
		rp := 1 + r.Float64()*(bigR-1)
		b := 1 + r.Float64()*(bigR-1)
		rq := b + r.Float64()*(bigR-b) // q at or above the lower bound
		dt := DeltaTheta(rp, b, bigR)
		// Random angular separation; check the implication.
		sep := r.Float64() * math.Pi
		p := MakePoint(0, 0, rp)
		q := MakePoint(1, sep, rq)
		if g.IsNeighbor(p, q) && sep > dt+1e-9 {
			t.Fatalf("neighbor at separation %v beyond bound %v (rp=%v b=%v rq=%v)", sep, dt, rp, b, rq)
		}
	}
}

// TestDeltaThetaPreMatches: the precomputed form (Eq. 8) equals the direct
// form (Eq. A.3).
func TestDeltaThetaPreMatches(t *testing.T) {
	const bigR = 14.0
	g := NewGeo(bigR, 0.9)
	r := prng.NewFromRaw(7)
	for i := 0; i < 10000; i++ {
		rp := 0.5 + r.Float64()*(bigR-0.5)
		b := 0.5 + r.Float64()*(bigR-0.5)
		p := MakePoint(0, 1.0, rp)
		direct := DeltaTheta(rp, b, bigR)
		pre := g.DeltaThetaPre(p, math.Cosh(b)/math.Sinh(b), g.CoshR/math.Sinh(b))
		if math.Abs(direct-pre) > 1e-7 {
			t.Fatalf("rp=%v b=%v: direct %v != pre %v", rp, b, direct, pre)
		}
	}
}

func TestAnnuli(t *testing.T) {
	bounds := Annuli(1.0, 7.0, 21.0)
	if bounds[0] != 7 || bounds[len(bounds)-1] != 21 {
		t.Fatalf("bounds %v must span [7, 21]", bounds)
	}
	k := len(bounds) - 1
	wantK := int(math.Floor(14.0 / math.Ln2))
	if k != wantK {
		t.Errorf("k = %d, want %d", k, wantK)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatal("bounds not increasing")
		}
	}
	// Tiny band still yields one annulus.
	tiny := Annuli(0.6, 5, 5.1)
	if len(tiny) != 2 {
		t.Errorf("tiny band: %v", tiny)
	}
}

func TestMakePointGuardsZeroRadius(t *testing.T) {
	p := MakePoint(0, 1, 0)
	if math.IsInf(p.CothR, 0) || math.IsNaN(p.CothR) {
		t.Error("coth not guarded at r=0")
	}
	if math.IsInf(p.InvSinhR, 0) || math.IsNaN(p.InvSinhR) {
		t.Error("1/sinh not guarded at r=0")
	}
}

func BenchmarkIsNeighborPrecomputed(b *testing.B) {
	g := NewGeo(15, 0.8)
	p := MakePoint(0, 1.0, 7)
	q := MakePoint(1, 1.5, 9)
	for i := 0; i < b.N; i++ {
		g.IsNeighbor(p, q)
	}
}

func BenchmarkIsNeighborDirect(b *testing.B) {
	p := MakePoint(0, 1.0, 7)
	q := MakePoint(1, 1.5, 9)
	for i := 0; i < b.N; i++ {
		_ = Distance(p.R, p.Theta, q.R, q.Theta) < 15
	}
}
