package job

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConcurrentRunRejectedByLock is the locking contract: while one Run
// of a worker is in flight, a second Run of the same worker index must
// fail fast with ErrWorkerRunning — and the shard a single run produced
// must be byte-identical to a run that was never contended, proving the
// loser wrote nothing.
func TestConcurrentRunRejectedByLock(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 11,
		PEs: 2, ChunksPerPE: 3, Workers: 1, Format: "text"}

	clean := t.TempDir()
	if err := Init(clean, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, clean, spec)

	dir := t.TempDir()
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	inHook := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		var once bool
		done <- Run(dir, 0, RunOptions{OnCheckpoint: func(pe, chunks, edges uint64) error {
			if !once {
				once = true
				close(inHook)
				<-release
			}
			return nil
		}})
	}()
	<-inHook // the first run holds the lock and is mid-job

	err := Run(dir, 0, RunOptions{})
	if !errors.Is(err, ErrWorkerRunning) {
		t.Fatalf("concurrent run of the same worker returned %v, want ErrWorkerRunning", err)
	}
	if !strings.Contains(err.Error(), "worker 0") {
		t.Errorf("lock error does not name the worker: %v", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("contended run failed: %v", err)
	}

	want := readShards(t, clean, spec)
	got := readShards(t, dir, spec)
	for pe, wb := range want {
		if string(got[pe]) != string(wb) {
			t.Errorf("shard %d differs after contended run (%d vs %d bytes)", pe, len(got[pe]), len(wb))
		}
	}

	// The lock is released with the run: a later Run (a no-op — all PEs
	// done) must not be refused.
	if err := Run(dir, 0, RunOptions{}); err != nil {
		t.Fatalf("run after release refused: %v", err)
	}
}

// TestRunAfterKilledHolder: the lock must not outlive its holder's file
// descriptors — a crashed process (released lock, leftover lock file)
// must not block the resume path.
func TestRunAfterKilledHolder(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 200, M: 400, Seed: 5,
		PEs: 1, ChunksPerPE: 2, Workers: 1, Format: "text"}
	dir := t.TempDir()
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	// Acquire and release as a crash would (descriptor close, file left
	// behind), then Run against the leftover lock file.
	l, err := acquireWorkerLock(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(LockPath(dir, 0)); err != nil {
		t.Fatalf("lock file should remain after release: %v", err)
	}
	if err := Run(dir, 0, RunOptions{}); err != nil {
		t.Fatalf("run against a released lock file refused: %v", err)
	}
}

// TestInitSurvivesTmpLeftovers covers the crash windows of the durable
// Init: a stale .tmp from a crashed earlier attempt must not block a
// retried Init, must not shadow a committed spec, and a directory whose
// crash predates the rename is not a job at all.
func TestInitSurvivesTmpLeftovers(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 200, M: 400, Seed: 5,
		PEs: 2, ChunksPerPE: 2, Workers: 1, Format: "text"}

	t.Run("stale tmp before init", func(t *testing.T) {
		dir := t.TempDir()
		tmp := SpecPath(dir) + ".tmp"
		if err := os.WriteFile(tmp, []byte("{torn spec from a crash"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := Init(dir, spec); err != nil {
			t.Fatalf("init over a stale tmp failed: %v", err)
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Error("init left its temp file behind")
		}
		got, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got.Hash() != spec.Hash() {
			t.Error("loaded spec does not match the initialized one")
		}
	})

	t.Run("stale tmp after init", func(t *testing.T) {
		dir := t.TempDir()
		if err := Init(dir, spec); err != nil {
			t.Fatal(err)
		}
		// A crashed duplicate init attempt dies before its rename: the
		// leftover tmp must not affect loading or running the job.
		if err := os.WriteFile(SpecPath(dir)+".tmp", []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); err != nil {
			t.Fatalf("load with a stale tmp present failed: %v", err)
		}
		if err := Run(dir, 0, RunOptions{}); err != nil {
			t.Fatalf("run with a stale tmp present failed: %v", err)
		}
	})

	t.Run("crash before rename is not a job", func(t *testing.T) {
		root := t.TempDir()
		dir := filepath.Join(root, "half")
		if err := os.MkdirAll(filepath.Join(dir, "shards"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(SpecPath(dir)+".tmp", []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); err == nil {
			t.Error("half-initialized directory loaded as a job")
		}
		dirs, err := List(root)
		if err != nil {
			t.Fatal(err)
		}
		if len(dirs) != 0 {
			t.Errorf("List returned a half-initialized directory: %v", dirs)
		}
	})
}

// TestListFindsJobs: List returns exactly the directories holding a
// committed spec, sorted by name.
func TestListFindsJobs(t *testing.T) {
	root := t.TempDir()
	spec := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1,
		PEs: 1, Workers: 1, Format: "text"}
	for _, name := range []string{"b-job", "a-job"} {
		if err := Init(filepath.Join(root, name), spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Join(root, "not-a-job"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "stray-file"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	dirs, err := List(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(root, "a-job"), filepath.Join(root, "b-job")}
	if len(dirs) != 2 || dirs[0] != want[0] || dirs[1] != want[1] {
		t.Errorf("List = %v, want %v", dirs, want)
	}
}
