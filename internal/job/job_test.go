package job

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	kagen "repro"
	"repro/internal/failpoint"
	"repro/internal/merkle"
)

var errSimCrash = errors.New("simulated crash")

// interruptAfter returns an OnCheckpoint hook that aborts the run as a
// simulated crash after n durable checkpoints.
func interruptAfter(n int) func(pe, chunks, edges uint64) error {
	count := 0
	return func(pe, chunks, edges uint64) error {
		count++
		if count >= n {
			return errSimCrash
		}
		return nil
	}
}

// runAll runs every worker of a job to completion.
func runAll(t *testing.T, dir string, spec Spec) {
	t.Helper()
	for w := uint64(0); w < spec.Normalized().Workers; w++ {
		if err := Run(dir, w, RunOptions{Goroutines: 2}); err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// readShards returns the raw bytes of every shard file, keyed by PE.
func readShards(t *testing.T, dir string, spec Spec) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte)
	for pe := uint64(0); pe < spec.Normalized().PEs; pe++ {
		b, err := os.ReadFile(ShardPath(dir, pe, spec.ShardFormat()))
		if err != nil {
			t.Fatal(err)
		}
		out[pe] = b
	}
	return out
}

func testSpecs() []Spec {
	base := Spec{Seed: 99, PEs: 4, ChunksPerPE: 3, Workers: 2}
	var specs []Spec
	for _, f := range []string{"text", "binary", "text.gz", "binary.gz"} {
		s := base
		s.Model, s.N, s.M, s.Format = "gnm_undirected", 600, 4000, f
		specs = append(specs, s)
	}
	for _, f := range []string{"text", "binary.gz"} {
		s := base
		s.Model, s.N, s.R, s.Format = "rgg2d", 500, 0.07, f
		specs = append(specs, s)

		s = base
		s.Model, s.N, s.Prob, s.Blocks, s.PIn, s.POut, s.Format = "sbm", 500, 0, 2, 0.05, 0.005, f
		specs = append(specs, s)
	}
	return specs
}

// TestCrashResumeByteIdentical is the core contract: a job interrupted
// mid-PE after a recorded checkpoint — with a torn tail past the
// checkpoint, as a real crash leaves — and then resumed produces shard
// files byte-identical to an uninterrupted run, across models and
// compressed and uncompressed formats.
func TestCrashResumeByteIdentical(t *testing.T) {
	for _, spec := range testSpecs() {
		spec := spec
		t.Run(fmt.Sprintf("%s-%s", spec.Model, spec.Format), func(t *testing.T) {
			clean := t.TempDir()
			if err := Init(clean, spec); err != nil {
				t.Fatal(err)
			}
			runAll(t, clean, spec)

			crashed := t.TempDir()
			if err := Init(crashed, spec); err != nil {
				t.Fatal(err)
			}
			// Worker 0 owns PEs 0-1 (6 chunks): the torn-tail failpoint
			// fires at the 4th checkpoint — mid-PE 1, exercising a
			// chunk-granular restart — appending garbage past the committed
			// offset exactly as a crash mid-batch would, then "crashing".
			t.Cleanup(failpoint.Reset)
			failpoint.Arm("job/torn-tail", 4)
			err := Run(crashed, 0, RunOptions{Goroutines: 2})
			if !errors.Is(err, failpoint.ErrCrash) {
				t.Fatalf("interrupted run returned %v, want simulated crash", err)
			}

			st, err := Inspect(crashed)
			if err != nil {
				t.Fatal(err)
			}
			gaps := st.Gaps()
			if len(gaps) == 0 {
				t.Fatal("interrupted job reports no gaps")
			}
			partial := gaps[0]
			if partial.ChunksDone == 0 || partial.ChunksDone >= partial.Chunks {
				t.Fatalf("expected a mid-PE gap, got PE %d at %d/%d chunks",
					partial.PE, partial.ChunksDone, partial.Chunks)
			}

			if _, err := os.Stat(ManifestPath(crashed, 0)); err != nil {
				t.Fatalf("no manifest after interrupted run: %v", err)
			}
			if err := Resume(crashed, 0, RunOptions{Goroutines: 2}); err != nil {
				t.Fatalf("resume: %v", err)
			}
			// Worker 1 runs clean (crash-free workers are independent).
			if err := Run(crashed, 1, RunOptions{Goroutines: 2}); err != nil {
				t.Fatal(err)
			}

			want := readShards(t, clean, spec)
			got := readShards(t, crashed, spec)
			for pe, wb := range want {
				if string(got[pe]) != string(wb) {
					t.Errorf("shard %d differs after crash+resume (%d vs %d bytes)", pe, len(got[pe]), len(wb))
				}
			}

			st, err = Inspect(crashed)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Complete() {
				t.Fatal("resumed job not complete")
			}

			// Merged outputs are byte-identical too.
			mc := filepath.Join(clean, "merged")
			mr := filepath.Join(crashed, "merged")
			if err := MergeToFile(clean, mc); err != nil {
				t.Fatal(err)
			}
			if err := MergeToFile(crashed, mr); err != nil {
				t.Fatal(err)
			}
			cb, err := os.ReadFile(mc)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := os.ReadFile(mr)
			if err != nil {
				t.Fatal(err)
			}
			if string(cb) != string(rb) {
				t.Errorf("merged output differs after crash+resume")
			}
		})
	}
}

// TestJobMatchesDirectStream: the job's merged edge list equals the
// direct generator output for the same instance definition (same seed,
// Chunks = PEs*ChunksPerPE) — the job runner adds durability, not a new
// instance.
func TestJobMatchesDirectStream(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 7,
		PEs: 3, ChunksPerPE: 4, Workers: 1, Format: "text.gz"}
	dir := t.TempDir()
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, dir, spec)
	merged := filepath.Join(dir, "merged.txt.gz")
	if err := MergeToFile(dir, merged); err != nil {
		t.Fatal(err)
	}
	got, err := kagen.ReadEdgeListFile(merged, kagen.FormatTextGz)
	if err != nil {
		t.Fatal(err)
	}
	want, err := kagen.GNM(spec.N, spec.M, false, kagen.Options{Seed: spec.Seed, PEs: spec.TotalChunks()})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("merged job has %d edges, direct run %d", got.Len(), want.Len())
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("edge %d: job %v, direct %v", i, got.Edges[i], want.Edges[i])
		}
	}
}

// TestEmptyChunksCheckpointAndResume: a sparse instance over many chunks
// produces empty chunks; their checkpoints are free (offset unchanged)
// and resume across them stays byte-identical.
func TestEmptyChunksCheckpointAndResume(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 256, M: 8, Seed: 3,
		PEs: 4, ChunksPerPE: 4, Workers: 1, Format: "text"}
	clean := t.TempDir()
	if err := Init(clean, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, clean, spec)

	crashed := t.TempDir()
	if err := Init(crashed, spec); err != nil {
		t.Fatal(err)
	}
	err := Run(crashed, 0, RunOptions{OnCheckpoint: interruptAfter(6)})
	if !errors.Is(err, errSimCrash) {
		t.Fatalf("got %v, want simulated crash", err)
	}
	if err := Resume(crashed, 0, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	want := readShards(t, clean, spec)
	got := readShards(t, crashed, spec)
	for pe, wb := range want {
		if string(got[pe]) != string(wb) {
			t.Errorf("shard %d differs", pe)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1,
		PEs: 4, ChunksPerPE: 2, Workers: 2, Format: "text"}.Normalized()
	m := newManifest(spec, 1)
	leaves := []merkle.Digest{sha256.Sum256([]byte("chunk0")), sha256.Sum256([]byte("chunk1"))}
	root := merkle.Root(leaves)
	m.PEs[0] = PEProgress{
		PE: m.PEs[0].PE, ChunksDone: 2, Offset: 123, Edges: 55, Done: true,
		HeaderEnd: 10,
		Chunks: []ChunkRecord{
			{Digest: hex.EncodeToString(leaves[0][:]), End: 70, Edges: 30},
			{Digest: hex.EncodeToString(leaves[1][:]), End: 123, Edges: 25},
		},
		Root: hex.EncodeToString(root[:]),
	}
	m.PEs[1] = PEProgress{
		PE: m.PEs[1].PE, ChunksDone: 1, Offset: 17, Edges: 9,
		HeaderEnd: 5,
		Chunks:    []ChunkRecord{{Digest: hex.EncodeToString(leaves[0][:]), End: 17, Edges: 9}},
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("atomic write left its temp file behind")
	}
	got, err := ReadManifest(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecHash != m.SpecHash || got.Worker != m.Worker || len(got.PEs) != len(m.PEs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.PEs {
		if !reflect.DeepEqual(got.PEs[i], m.PEs[i]) {
			t.Fatalf("PE %d round trip mismatch: %+v vs %+v", i, got.PEs[i], m.PEs[i])
		}
	}
}

// TestManifestRejectsCorruption: every class of manifest damage — torn
// JSON, trailing garbage, unknown fields, a foreign spec hash, impossible
// progress — must fail loudly instead of seeding a resume.
func TestManifestRejectsCorruption(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1,
		PEs: 4, ChunksPerPE: 2, Workers: 2, Format: "text"}.Normalized()
	path := filepath.Join(t.TempDir(), "manifest.json")
	write := func(s string) {
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	valid := func() string {
		m := newManifest(spec, 0)
		if err := WriteManifest(path, m); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}()

	cases := map[string]string{
		"torn JSON":        valid[:len(valid)/2],
		"trailing garbage": valid + "{}",
		"unknown field":    strings.Replace(valid, `"spec_hash"`, `"spec_hash_v2"`, 1),
		"foreign hash":     strings.Replace(valid, spec.Hash(), strings.Repeat("ab", 32), 1),
		"excess chunks":    strings.Replace(valid, `"chunks_done": 0`, `"chunks_done": 99`, 1),
		"wrong PE":         strings.Replace(valid, `"pe": 1`, `"pe": 3`, 1),
	}
	for name, content := range cases {
		write(content)
		if _, err := ReadManifest(path, spec); err == nil {
			t.Errorf("%s: corrupt manifest accepted", name)
		}
	}

	// The pristine manifest still reads back fine (the harness itself is
	// not rejecting everything).
	write(valid)
	if _, err := ReadManifest(path, spec); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}

	// A done PE with missing chunks is impossible state.
	m := newManifest(spec, 0)
	m.PEs[0].Done = true
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path, spec); err == nil {
		t.Error("done PE with 0 chunks accepted")
	}

	// Integrity-section damage: a finalized PE whose chunk digests or root
	// were tampered with must fail the read-time Merkle re-check.
	leaves := []merkle.Digest{sha256.Sum256([]byte("a")), sha256.Sum256([]byte("b"))}
	root := merkle.Root(leaves)
	m = newManifest(spec, 0)
	m.PEs[0] = PEProgress{
		PE: m.PEs[0].PE, ChunksDone: 2, Offset: 40, Edges: 6, Done: true, HeaderEnd: 8,
		Chunks: []ChunkRecord{
			{Digest: hex.EncodeToString(leaves[0][:]), End: 20, Edges: 4},
			{Digest: hex.EncodeToString(leaves[1][:]), End: 40, Edges: 2},
		},
		Root: hex.EncodeToString(root[:]),
	}
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path, spec); err != nil {
		t.Fatalf("well-formed integrity section rejected: %v", err)
	}
	tampered := m.PEs[0]
	for name, mutate := range map[string]func(p *PEProgress){
		"tampered digest": func(p *PEProgress) {
			d := sha256.Sum256([]byte("evil"))
			p.Chunks[0].Digest = hex.EncodeToString(d[:])
		},
		"tampered root": func(p *PEProgress) {
			d := sha256.Sum256([]byte("evil root"))
			p.Root = hex.EncodeToString(d[:])
		},
		"offsets not monotone": func(p *PEProgress) { p.Chunks[1].End = 10 },
		"edge sum mismatch":    func(p *PEProgress) { p.Chunks[1].Edges = 99 },
		"root on unfinished PE": func(p *PEProgress) {
			p.Done = false
			p.ChunksDone = 1
			p.Chunks = p.Chunks[:1]
			p.Offset = 20
			p.Edges = 4
		},
	} {
		cp := tampered
		cp.Chunks = append([]ChunkRecord(nil), tampered.Chunks...)
		mutate(&cp)
		m.PEs[0] = cp
		if err := WriteManifest(path, m); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(path, spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSpecHashBindsInstanceDefinition: any change to the instance
// definition or execution shape changes the hash, and defaults normalize
// before hashing.
func TestSpecHashBindsInstanceDefinition(t *testing.T) {
	base := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1,
		PEs: 4, ChunksPerPE: 2, Workers: 2, Format: "text"}
	h := base.Hash()
	mutations := []func(*Spec){
		func(s *Spec) { s.Seed = 2 },
		func(s *Spec) { s.N = 101 },
		func(s *Spec) { s.ChunksPerPE = 4 },
		func(s *Spec) { s.PEs = 8 },
		func(s *Spec) { s.Model = "gnp_undirected" },
		func(s *Spec) { s.Format = "text.gz" },
	}
	for i, mutate := range mutations {
		s := base
		mutate(&s)
		if s.Hash() == h {
			t.Errorf("mutation %d did not change the spec hash", i)
		}
	}
	// Explicit defaults hash identically to omitted fields.
	a := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1}
	b := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1,
		PEs: 1, ChunksPerPE: 1, Workers: 1, Format: "text"}
	if a.Hash() != b.Hash() {
		t.Error("normalization does not apply before hashing")
	}
}

func TestResumeRequiresManifest(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1, PEs: 2, Workers: 2, Format: "text"}
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	if err := Resume(dir, 0, RunOptions{}); err == nil {
		t.Fatal("resume without a manifest succeeded")
	}
}

func TestInitRefusesExistingJob(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1, PEs: 2, Workers: 1, Format: "text"}
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	if err := Init(dir, spec); err == nil {
		t.Fatal("second init over the same directory succeeded")
	}
}

func TestMergeRefusesIncompleteJob(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 5,
		PEs: 4, ChunksPerPE: 2, Workers: 2, Format: "text"}
	dir := t.TempDir()
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	if err := Run(dir, 0, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	// Worker 1 never ran: merge must refuse and name the gap.
	if err := MergeToFile(dir, filepath.Join(dir, "merged")); err == nil {
		t.Fatal("merge of an incomplete job succeeded")
	}
	st, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Complete() {
		t.Fatal("half-run job reports complete")
	}
	if got := len(st.Gaps()); got != 2 {
		t.Fatalf("want 2 gap PEs (worker 1's), got %d", got)
	}
	if got := len(st.CompletedPEs()); got != 2 {
		t.Fatalf("want 2 completed PEs, got %d", got)
	}
}

// TestSpecValidation: execution-shape errors are caught at init.
func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Model: "nope", N: 10, PEs: 1, Workers: 1, Format: "text"},
		{Model: "gnm_undirected", N: 10, M: 5, PEs: 2, Workers: 4, Format: "text"},
		{Model: "gnm_undirected", N: 10, M: 5, PEs: 1, Workers: 1, Format: "sharded-avian"},
		{Model: "rhg", N: 100, AvgDeg: 8, Gamma: 2.8, PEs: 1, Workers: 1, Format: "text"}, // materialize-only
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, s)
		}
	}
	good := Spec{Model: "rgg2d", N: 1000, R: 0.05, PEs: 4, ChunksPerPE: 2, Workers: 2, Format: "binary.gz"}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}
