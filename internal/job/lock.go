package job

import (
	"errors"
	"fmt"

	"repro/internal/storage"
)

// ErrWorkerRunning reports a Run/Resume refused because another process
// holds the worker's lock. Callers distinguish it with errors.Is.
var ErrWorkerRunning = fmt.Errorf("job: worker already running")

// LockPath returns the lock object of one worker inside a job directory.
func LockPath(dir string, worker uint64) string {
	return storage.Join(dir, fmt.Sprintf("worker-w%04d.lock", worker))
}

// workerLock is an exclusive per-worker mutex held for the duration of
// Run/Resume. Without it, two processes running the same worker index
// both pass the manifest check, then interleave truncates and appends on
// the same shard and race on the manifest rename — a corrupt shard that
// still looks committed. The backend supplies the mechanism: flock(2) on
// the filesystem (a killed process — the serve crash-recovery path —
// releases it automatically), a TTL lease object on S3.
type workerLock struct {
	un storage.Unlock
}

// acquireWorkerLock takes worker's exclusive lock in dir, failing fast
// with ErrWorkerRunning (naming the holder, when the backend records
// one) if another process already holds it.
func acquireWorkerLock(dir string, worker uint64) (*workerLock, error) {
	store, err := storage.Resolve(dir)
	if err != nil {
		return nil, err
	}
	un, err := store.Lock(LockPath(dir, worker))
	if err != nil {
		if errors.Is(err, storage.ErrLocked) {
			return nil, fmt.Errorf("%w: worker %d of %s is locked (%v)",
				ErrWorkerRunning, worker, dir, err)
		}
		return nil, err
	}
	return &workerLock{un: un}, nil
}

// Release drops the lock.
func (l *workerLock) Release() error {
	if l.un == nil {
		return nil
	}
	err := l.un.Release()
	l.un = nil
	return err
}
