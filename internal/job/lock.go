package job

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// ErrWorkerRunning reports a Run/Resume refused because another process
// holds the worker's lock. Callers distinguish it with errors.Is.
var ErrWorkerRunning = fmt.Errorf("job: worker already running")

// LockPath returns the lock file of one worker inside a job directory.
func LockPath(dir string, worker uint64) string {
	return filepath.Join(dir, fmt.Sprintf("worker-w%04d.lock", worker))
}

// workerLock is an exclusive per-worker mutex held for the duration of
// Run/Resume. Without it, two processes running the same worker index
// both pass the manifest check, then interleave truncates and appends on
// the same shard and race on the manifest rename — a corrupt shard that
// still looks committed. On unix the lock is flock(2)-based, so a killed
// process (the serve crash-recovery path) releases it automatically and
// a restart resumes without manual cleanup; the lock file itself is left
// behind on release — unlinking it would race a concurrent acquirer onto
// an orphaned inode, letting two processes both "hold" the lock.
type workerLock struct {
	f *os.File
}

// acquireWorkerLock takes worker's exclusive lock in dir, failing fast
// with ErrWorkerRunning (naming the PID that holds it, when recorded) if
// another process already holds it.
func acquireWorkerLock(dir string, worker uint64) (*workerLock, error) {
	path := LockPath(dir, worker)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := tryLockFile(f); err != nil {
		holder := ""
		if b, rerr := os.ReadFile(path); rerr == nil {
			if pid := bytes.TrimSpace(b); len(pid) > 0 {
				holder = fmt.Sprintf(" by pid %s", pid)
			}
		}
		f.Close()
		return nil, fmt.Errorf("%w: worker %d of %s is locked%s (%s)",
			ErrWorkerRunning, worker, dir, holder, path)
	}
	// Record the holder for diagnostics only — the kernel lock, not the
	// PID, is the source of truth.
	if err := f.Truncate(0); err == nil {
		f.WriteAt([]byte(fmt.Sprintf("%d\n", os.Getpid())), 0)
	}
	return &workerLock{f: f}, nil
}

// Release drops the lock. Closing the file releases the kernel lock on
// unix; the fallback implementation unlocks explicitly first.
func (l *workerLock) Release() error {
	if l.f == nil {
		return nil
	}
	err := unlockFile(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
