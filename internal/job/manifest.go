package job

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/merkle"
	"repro/internal/storage"
)

// ChunkRecord is the durable integrity record of one committed chunk:
// the SHA-256 digest of the chunk's payload bytes (the format-encoded
// edges, before any compression — see the digest discussion in
// DESIGN.md), the shard byte offset the chunk ends at, and its edge
// count. The digests double as the leaves of the PE's Merkle tree.
type ChunkRecord struct {
	// Digest is the hex SHA-256 of the chunk's payload bytes.
	Digest string `json:"d"`
	// End is the shard offset after this chunk (== next chunk's start).
	End int64 `json:"end"`
	// Edges is the number of edges the chunk emitted.
	Edges uint64 `json:"e"`
}

// PEProgress is the durable progress record of one PE's shard. Offset is
// the shard file's byte length after the last committed chunk — a crash
// may leave bytes past it (a torn batch, an unfinished gzip member), and
// resume truncates to Offset before appending, so everything at or below
// the offset is final.
type PEProgress struct {
	PE uint64 `json:"pe"`
	// ChunksDone counts the PE's chunks whose edges are durably in the
	// shard; the next chunk to generate is ChunksDone.
	ChunksDone uint64 `json:"chunks_done"`
	// Offset is the committed shard length in bytes (header included).
	Offset int64 `json:"offset"`
	// Edges counts the edges committed through the last checkpoint.
	Edges uint64 `json:"edges"`
	// Done marks the shard finalized: all chunks committed and the file
	// closed.
	Done bool `json:"done"`
	// HeaderEnd is the committed length of the shard header (checkpoint
	// zero); chunk 0's bytes start here.
	HeaderEnd int64 `json:"header_end,omitempty"`
	// Chunks holds one integrity record per committed chunk
	// (len(Chunks) == ChunksDone always).
	Chunks []ChunkRecord `json:"chunks,omitempty"`
	// Root is the hex Merkle root over the chunk digests, set when the
	// PE finalizes. Any worker can re-derive any leaf from the spec
	// alone and check it against Root through an inclusion proof.
	Root string `json:"root,omitempty"`
}

// leafDigests decodes the PE's chunk digests into Merkle leaves.
func (p *PEProgress) leafDigests() ([]merkle.Digest, error) {
	leaves := make([]merkle.Digest, len(p.Chunks))
	for i, c := range p.Chunks {
		if err := decodeDigest(c.Digest, &leaves[i]); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
	}
	return leaves, nil
}

// chunkBounds returns the shard byte range [start, end) of one committed
// chunk.
func (p *PEProgress) chunkBounds(chunk int) (start, end int64) {
	start = p.HeaderEnd
	if chunk > 0 {
		start = p.Chunks[chunk-1].End
	}
	return start, p.Chunks[chunk].End
}

// decodeDigest parses a hex SHA-256 digest into d.
func decodeDigest(s string, d *merkle.Digest) error {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(d) {
		return fmt.Errorf("bad digest %q", s)
	}
	copy(d[:], b)
	return nil
}

// Manifest is one worker's checkpoint state: the spec hash it is bound
// to, the worker index, and per-PE progress for the worker's PE range.
// It is rewritten atomically (temp file + rename) after every chunk, so
// on disk it is always a complete, parseable snapshot of some committed
// state — never a torn write.
type Manifest struct {
	SpecHash string       `json:"spec_hash"`
	Worker   uint64       `json:"worker"`
	PEs      []PEProgress `json:"pes"`
}

// ManifestPath returns the manifest object of one worker inside a job
// directory.
func ManifestPath(dir string, worker uint64) string {
	return storage.Join(dir, fmt.Sprintf("manifest-w%04d.json", worker))
}

// progress returns a pointer to the PE's progress record, or nil.
func (m *Manifest) progress(pe uint64) *PEProgress {
	for i := range m.PEs {
		if m.PEs[i].PE == pe {
			return &m.PEs[i]
		}
	}
	return nil
}

// newManifest returns the zero-progress manifest of one worker under a
// spec: every PE of the worker's range at zero chunks, zero offset.
func newManifest(spec Spec, worker uint64) *Manifest {
	lo, hi := spec.WorkerPEs(worker)
	m := &Manifest{SpecHash: spec.Hash(), Worker: worker}
	for pe := lo; pe < hi; pe++ {
		m.PEs = append(m.PEs, PEProgress{PE: pe})
	}
	return m
}

// WriteManifest atomically replaces path with the manifest through the
// path's backend: on the filesystem the JSON is written to a temp file,
// synced, and renamed over path; on an object store the PUT is atomic by
// contract. A crash at any point leaves either the previous manifest or
// the new one — the recorded progress can lag the shard (the extra bytes
// are truncated or re-uploaded at resume) but never lead it, because
// checkpoints only record durable shard offsets.
func WriteManifest(path string, m *Manifest) error {
	store, err := storage.Resolve(path)
	if err != nil {
		return err
	}
	return writeManifest(store, path, m)
}

// writeManifest is WriteManifest on an already resolved backend — the
// per-chunk hot path, which must not re-resolve destinations. The
// failpoint sites around the atomic publish keep their long-standing
// names on every backend.
func writeManifest(store storage.Backend, path string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return store.Put(path, b, storage.PutOptions{
		CrashBefore:  "job/crash-before-rename",
		CorruptAfter: "job/manifest-truncate",
	})
}

// ReadManifest reads and strictly validates a worker manifest: unknown
// fields, trailing garbage, duplicate or unsorted PEs, and impossible
// progress (chunks done beyond ChunksPerPE, a Done PE with missing
// chunks) are all rejected — a corrupt manifest must fail loudly rather
// than seed a resume with wrong state.
func ReadManifest(path string, spec Spec) (*Manifest, error) {
	store, err := storage.Resolve(path)
	if err != nil {
		return nil, err
	}
	return readManifest(store, path, spec)
}

// readManifest is ReadManifest on an already resolved backend.
func readManifest(store storage.Backend, path string, spec Spec) (*Manifest, error) {
	b, err := store.Get(path)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(m); err != nil {
		return nil, fmt.Errorf("job: corrupt manifest %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("job: corrupt manifest %s: trailing data", path)
	}
	if m.SpecHash != spec.Hash() {
		return nil, fmt.Errorf("job: manifest %s is bound to spec %.12s…, job spec is %.12s… — refusing to resume against a different instance definition",
			path, m.SpecHash, spec.Hash())
	}
	lo, hi := spec.WorkerPEs(m.Worker)
	if m.Worker >= spec.Normalized().Workers {
		return nil, fmt.Errorf("job: manifest %s: worker %d out of range [0, %d)", path, m.Worker, spec.Normalized().Workers)
	}
	if !sort.SliceIsSorted(m.PEs, func(i, j int) bool { return m.PEs[i].PE < m.PEs[j].PE }) {
		return nil, fmt.Errorf("job: corrupt manifest %s: PEs out of order", path)
	}
	if uint64(len(m.PEs)) != hi-lo {
		return nil, fmt.Errorf("job: corrupt manifest %s: %d PE records, worker %d owns %d", path, len(m.PEs), m.Worker, hi-lo)
	}
	cpp := spec.Normalized().ChunksPerPE
	for i := range m.PEs {
		p := &m.PEs[i]
		if p.PE != lo+uint64(i) {
			return nil, fmt.Errorf("job: corrupt manifest %s: PE %d out of worker %d's range [%d, %d)", path, p.PE, m.Worker, lo, hi)
		}
		if p.ChunksDone > cpp {
			return nil, fmt.Errorf("job: corrupt manifest %s: PE %d has %d chunks done of %d", path, p.PE, p.ChunksDone, cpp)
		}
		if p.Done && p.ChunksDone != cpp {
			return nil, fmt.Errorf("job: corrupt manifest %s: PE %d done with %d of %d chunks", path, p.PE, p.ChunksDone, cpp)
		}
		if p.Offset < 0 {
			return nil, fmt.Errorf("job: corrupt manifest %s: PE %d has negative offset", path, p.PE)
		}
		if p.ChunksDone > 0 && p.Offset == 0 {
			return nil, fmt.Errorf("job: corrupt manifest %s: PE %d has chunks but no committed bytes", path, p.PE)
		}
		if err := p.validateIntegrity(); err != nil {
			return nil, fmt.Errorf("job: corrupt manifest %s: PE %d: %w", path, p.PE, err)
		}
	}
	return m, nil
}

// validateIntegrity checks the per-chunk integrity records against the
// PE's progress counters: a record per committed chunk, offsets
// monotone from the header to Offset, edge counts summing to Edges,
// and — for a finalized PE — a root that reproduces from the leaves.
// The root re-check makes a tampered or torn integrity section fail at
// read time, before any resume or verify trusts it.
func (p *PEProgress) validateIntegrity() error {
	if uint64(len(p.Chunks)) != p.ChunksDone {
		return fmt.Errorf("%d chunk records for %d committed chunks", len(p.Chunks), p.ChunksDone)
	}
	if p.Offset == 0 && p.HeaderEnd != 0 {
		return fmt.Errorf("header end %d with no committed bytes", p.HeaderEnd)
	}
	if p.Offset > 0 && (p.HeaderEnd <= 0 || p.HeaderEnd > p.Offset) {
		return fmt.Errorf("header end %d outside (0, %d]", p.HeaderEnd, p.Offset)
	}
	if p.ChunksDone == 0 && p.Offset > 0 && p.HeaderEnd != p.Offset {
		return fmt.Errorf("no chunks but offset %d past header end %d", p.Offset, p.HeaderEnd)
	}
	prev := p.HeaderEnd
	var edges uint64
	var d merkle.Digest
	for i, c := range p.Chunks {
		if err := decodeDigest(c.Digest, &d); err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
		if c.End < prev {
			return fmt.Errorf("chunk %d ends at %d before previous end %d", i, c.End, prev)
		}
		prev = c.End
		edges += c.Edges
	}
	if len(p.Chunks) > 0 && prev != p.Offset {
		return fmt.Errorf("last chunk ends at %d, offset is %d", prev, p.Offset)
	}
	if edges != p.Edges {
		return fmt.Errorf("chunk edge counts sum to %d, progress records %d", edges, p.Edges)
	}
	if !p.Done {
		if p.Root != "" {
			return fmt.Errorf("root set on an unfinished PE")
		}
		return nil
	}
	var root merkle.Digest
	if err := decodeDigest(p.Root, &root); err != nil {
		return fmt.Errorf("root: %w", err)
	}
	leaves, err := p.leafDigests()
	if err != nil {
		return err
	}
	if merkle.Root(leaves) != root {
		return fmt.Errorf("merkle root does not reproduce from the chunk digests")
	}
	return nil
}
