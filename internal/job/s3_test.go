package job

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	kagen "repro"
	"repro/internal/storage"
	"repro/internal/storage/s3test"
)

// setupJobS3 starts an in-process S3 server holding bucket "bkt" and
// points the environment-driven backend at it. partSize 1 makes every
// committed chunk its own part, so part checksums must all be reused
// chunk digests — the no-second-hash-pass property becomes an exact
// counter assertion.
func setupJobS3(t *testing.T, partSize int) *s3test.Server {
	t.Helper()
	srv := s3test.New("test-access", "test-secret", "bkt")
	t.Cleanup(srv.Close)
	t.Setenv("KAGEN_S3_ENDPOINT", srv.URL())
	t.Setenv("AWS_ACCESS_KEY_ID", "test-access")
	t.Setenv("AWS_SECRET_ACCESS_KEY", "test-secret")
	t.Setenv("AWS_REGION", "us-east-1")
	t.Setenv("KAGEN_S3_PART_SIZE", fmt.Sprint(partSize))
	t.Setenv("KAGEN_S3_CONCURRENCY", "4")
	t.Setenv("KAGEN_S3_MAX_ATTEMPTS", "4")
	return srv
}

// s3Key maps an s3://bkt/… destination to its object key on the test
// server.
func s3Key(t *testing.T, uri string) string {
	t.Helper()
	key, ok := strings.CutPrefix(uri, "s3://bkt/")
	if !ok {
		t.Fatalf("not an s3://bkt destination: %s", uri)
	}
	return key
}

// TestS3JobByteIdenticalToLocal is the backend-transparency contract: a
// job run against an object store produces, for every format, shards and
// merged output byte-identical to the same spec run on the local
// filesystem, verifies clean in place, and never hashes a part a second
// time — every part checksum is a chunk digest the Merkle manifest
// already paid for.
func TestS3JobByteIdenticalToLocal(t *testing.T) {
	for _, spec := range testSpecs()[:4] { // gnm in text, binary, text.gz, binary.gz
		spec := spec
		t.Run(spec.Format, func(t *testing.T) {
			srv := setupJobS3(t, 1)
			storage.ResetUploadStats()

			local := t.TempDir()
			if err := Init(local, spec); err != nil {
				t.Fatal(err)
			}
			runAll(t, local, spec)

			dir := "s3://bkt/job-" + spec.Format
			if err := Init(dir, spec); err != nil {
				t.Fatal(err)
			}
			runAll(t, dir, spec)

			// Snapshot before merging: the merge writer re-streams bytes
			// the job layer never chunk-hashed, so only the shard hot path
			// is under the zero-rehash contract.
			st := storage.UploadStats()
			if st.PartsUploaded == 0 {
				t.Fatal("no parts uploaded")
			}
			if st.ChecksumReused == 0 || st.ChecksumRehashed != 0 {
				t.Errorf("checksums: reused %d rehashed %d, want all reused — part checksums must come from the chunk digests",
					st.ChecksumReused, st.ChecksumRehashed)
			}

			want := readShards(t, local, spec)
			format := spec.ShardFormat()
			for pe := uint64(0); pe < spec.Normalized().PEs; pe++ {
				got := srv.Object("bkt", s3Key(t, ShardPath(dir, pe, format)))
				if !bytes.Equal(got, want[pe]) {
					t.Errorf("shard %d differs on s3 (%d vs %d bytes)", pe, len(got), len(want[pe]))
				}
			}

			// The backend-aware reader parses shards straight off the
			// store — the path `validate -job s3://…` takes.
			if _, err := kagen.ReadEdgeListFrom(ShardPath(dir, 0, format), format); err != nil {
				t.Fatalf("read shard from s3: %v", err)
			}

			// Verify runs in place over ranged GETs.
			res, err := Verify(dir, VerifyOptions{All: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("clean s3 job has faults: %v", res.Faults)
			}

			// Merged output matches: streamed and written back to s3.
			var lb, sb bytes.Buffer
			if err := Merge(local, &lb); err != nil {
				t.Fatal(err)
			}
			if err := Merge(dir, &sb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(lb.Bytes(), sb.Bytes()) {
				t.Error("merged outputs differ between local and s3")
			}
			merged := "s3://bkt/merged-" + spec.Format
			if err := MergeToFile(dir, merged); err != nil {
				t.Fatal(err)
			}
			if got := srv.Object("bkt", s3Key(t, merged)); !bytes.Equal(got, lb.Bytes()) {
				t.Errorf("merge-to-s3 object differs (%d vs %d bytes)", len(got), lb.Len())
			}
		})
	}
}

// TestS3CrashResumeByteIdentical: a job killed mid-worker on s3 (the
// checkpoint hook aborts after 4 durable chunks, leaving an open
// multipart upload) resumes by reattaching to the uploaded parts and
// finishes byte-identical to an uninterrupted local run.
func TestS3CrashResumeByteIdentical(t *testing.T) {
	for _, format := range []string{"text", "binary.gz"} {
		format := format
		t.Run(format, func(t *testing.T) {
			spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 99,
				PEs: 4, ChunksPerPE: 3, Workers: 2, Format: format}
			srv := setupJobS3(t, 1)

			local := t.TempDir()
			if err := Init(local, spec); err != nil {
				t.Fatal(err)
			}
			runAll(t, local, spec)

			dir := "s3://bkt/crash-" + format
			if err := Init(dir, spec); err != nil {
				t.Fatal(err)
			}
			err := Run(dir, 0, RunOptions{OnCheckpoint: interruptAfter(4)})
			if !errors.Is(err, errSimCrash) {
				t.Fatalf("interrupted run returned %v, want simulated crash", err)
			}
			st, err := Inspect(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(st.Gaps()) == 0 {
				t.Fatal("interrupted s3 job reports no gaps")
			}
			if err := Resume(dir, 0, RunOptions{}); err != nil {
				t.Fatalf("resume: %v", err)
			}
			if err := Run(dir, 1, RunOptions{}); err != nil {
				t.Fatal(err)
			}

			want := readShards(t, local, spec)
			sf := spec.ShardFormat()
			for pe := uint64(0); pe < spec.Normalized().PEs; pe++ {
				got := srv.Object("bkt", s3Key(t, ShardPath(dir, pe, sf)))
				if !bytes.Equal(got, want[pe]) {
					t.Errorf("shard %d differs after crash+resume (%d vs %d bytes)", pe, len(got), len(want[pe]))
				}
			}
			res, err := Verify(dir, VerifyOptions{All: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("resumed s3 job has faults: %v", res.Faults)
			}
		})
	}
}

// TestS3VerifyRepairBitflip: a byte flipped inside a committed chunk of
// an s3 shard is caught by verify re-deriving the chunk from the spec,
// and repair splices the regenerated bytes back through the backend.
func TestS3VerifyRepairBitflip(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 99,
		PEs: 4, ChunksPerPE: 3, Workers: 2, Format: "text"}
	srv := setupJobS3(t, 1)

	local := t.TempDir()
	if err := Init(local, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, local, spec)

	dir := "s3://bkt/repairme"
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, dir, spec)

	key := s3Key(t, ShardPath(dir, 0, spec.ShardFormat()))
	b := srv.Object("bkt", key)
	if len(b) < 4 {
		t.Fatalf("shard too small to corrupt: %d bytes", len(b))
	}
	b[len(b)-2] ^= 0x40 // inside the last committed chunk
	srv.PutObject("bkt", key, b)

	res, err := Verify(dir, VerifyOptions{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 1 || res.Faults[0].Reason != FaultShard {
		t.Fatalf("want exactly one shard-corrupt fault, got %v", res.Faults)
	}
	rep, err := Repair(dir, res.Faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksSpliced != 1 || len(rep.Unrepaired) != 0 {
		t.Fatalf("repair: %+v", rep)
	}
	after, err := Verify(dir, VerifyOptions{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if !after.OK() {
		t.Fatalf("faults survive repair: %v", after.Faults)
	}
	want := readShards(t, local, spec)
	for pe := uint64(0); pe < spec.Normalized().PEs; pe++ {
		got := srv.Object("bkt", s3Key(t, ShardPath(dir, pe, spec.ShardFormat())))
		if !bytes.Equal(got, want[pe]) {
			t.Errorf("shard %d differs after repair", pe)
		}
	}
}

// TestS3JobStripesUploads: while one part upload is stalled on the
// server, the job keeps generating, sealing, and launching later parts —
// generation never waits for the network. The stalled handler releases
// itself only once it observes a second upload in flight, so the test
// passes exactly when upload and generation genuinely overlap.
func TestS3JobStripesUploads(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 7,
		PEs: 2, ChunksPerPE: 6, Workers: 1, Format: "text"}
	srv := setupJobS3(t, 1)
	storage.ResetUploadStats()

	var stalled atomic.Bool
	srv.OnPart = func(_, _ string, _ int) error {
		if stalled.CompareAndSwap(false, true) {
			deadline := time.Now().Add(10 * time.Second)
			for storage.UploadStats().PartsInFlight < 2 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
		return nil
	}

	dir := "s3://bkt/striped-job"
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, dir, spec)

	if st := storage.UploadStats(); st.MaxInFlight < 2 {
		t.Fatalf("MaxInFlight %d, want >= 2 — uploads never overlapped generation (%+v)", st.MaxInFlight, st)
	}
	res, err := Verify(dir, VerifyOptions{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("striped job has faults: %v", res.Faults)
	}
}

// TestS3JobList: an object-store root lists its jobs by spec objects one
// prefix level down, mirroring the directory scan on a filesystem root.
func TestS3JobList(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1,
		PEs: 2, ChunksPerPE: 2, Workers: 1, Format: "text"}
	setupJobS3(t, 1)
	for _, name := range []string{"a", "b"} {
		if err := Init("s3://bkt/jobs/"+name, spec); err != nil {
			t.Fatal(err)
		}
	}
	dirs, err := List("s3://bkt/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 || dirs[0] != "s3://bkt/jobs/a" || dirs[1] != "s3://bkt/jobs/b" {
		t.Fatalf("List = %v, want the two jobs", dirs)
	}
}
