package job

import (
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"

	kagen "repro"
	"repro/internal/merkle"
	"repro/internal/storage"
)

// ShardPath returns the shard object of one PE inside a job directory.
// Shards are globally numbered across workers, so merged output never
// depends on which worker produced a shard.
func ShardPath(dir string, pe uint64, format kagen.Format) string {
	return storage.Join(dir, "shards", fmt.Sprintf("pe%05d.%s", pe, format.Ext()))
}

// shardWriter writes one PE's shard with chunk-granular durability on
// top of a backend ShardWriter. Two properties make reopening a
// partially written shard safe:
//
//  1. The header is final from the start. Binary shards carry the
//     StreamingEdgeCount sentinel instead of a patched edge count, so no
//     writer ever needs to seek back into committed bytes.
//  2. Committed bytes are only ever appended to. Checkpoint flushes
//     everything written so far into the backend and commits it as one
//     chunk; for compressed shards it also finishes the current gzip
//     member, so the offset falls on a member boundary and truncating to
//     it leaves a well-formed gzip stream. On the filesystem a commit is
//     an fsync; on S3 the committed chunk joins the pending multipart
//     part, and durability (Durable) arrives when its part's upload
//     completes. Resume discards anything past the last durable offset
//     and appends, for compressed shards as a fresh member (concatenated
//     gzip members are one valid stream).
//
// Because every run checkpoints after every chunk, member boundaries are
// a pure function of the spec, and a resumed shard is byte-identical to
// an uninterrupted one.
type shardWriter struct {
	format kagen.Format
	sw     storage.ShardWriter
	cw     countingWriter
	gz     *gzip.Writer
	bw     *bufio.Writer
	// needReset marks the gzip member closed by the last checkpoint; the
	// next write starts a fresh member.
	needReset bool
	// dirty marks bytes written since the last checkpoint.
	dirty   bool
	scratch []byte
	// h accumulates the SHA-256 of the payload bytes (the format
	// encoding, before compression) written since the last checkpoint —
	// the chunk digest the manifest's Merkle tree is built over. Hashing
	// pre-compression bytes keeps the digest a pure function of the spec:
	// verify can re-derive it from a regenerated chunk without caring
	// which gzip implementation wrote the member.
	h hash.Hash
}

// countingWriter tracks the committed-plus-inflight byte offset of the
// backend writer and, for compressed shards, hashes the wire bytes on
// the way through: the backend's part checksums are over wire bytes,
// which for a compressed format differ from the payload the Merkle
// digest covers. Plain formats leave h nil — there the payload digest
// is the wire digest and is reused verbatim, so the hot path never
// hashes the same bytes twice.
type countingWriter struct {
	w io.Writer
	h hash.Hash
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if c.h != nil && n > 0 {
		c.h.Write(p[:n])
	}
	c.n += int64(n)
	return n, err
}

// createShard starts a fresh shard through the backend: it writes the
// format header and commits it as checkpoint zero, returning the writer
// and the committed header offset.
func createShard(store storage.Backend, path string, format kagen.Format, n uint64) (*shardWriter, int64, error) {
	sw, err := store.CreateShard(path)
	if err != nil {
		return nil, 0, err
	}
	w := &shardWriter{format: format}
	w.init(sw, 0)
	if err := w.write(format.AppendHeader(nil, n)); err != nil {
		sw.Close()
		return nil, 0, err
	}
	off, _, err := w.Checkpoint()
	if err != nil {
		sw.Close()
		return nil, 0, err
	}
	return w, off, nil
}

// reopenShard resumes a partially written shard at the last durable
// offset: the filesystem truncates any torn tail away, S3 reattaches to
// the multipart upload whose parts sum to the offset. A
// storage.ErrNoShard means no resumable state survives and the caller
// must reset the PE and regenerate.
func reopenShard(store storage.Backend, path string, format kagen.Format, offset int64) (*shardWriter, error) {
	sw, err := store.ResumeShard(path, offset)
	if err != nil {
		return nil, err
	}
	w := &shardWriter{format: format}
	w.init(sw, offset)
	return w, nil
}

func (w *shardWriter) init(sw storage.ShardWriter, off int64) {
	w.sw = sw
	w.h = sha256.New()
	w.cw = countingWriter{w: sw, n: off}
	var target io.Writer = &w.cw
	if w.format.Compressed() {
		w.cw.h = sha256.New()
		w.gz = gzip.NewWriter(&w.cw)
		target = w.gz
	}
	w.bw = bufio.NewWriterSize(target, 1<<20)
}

func (w *shardWriter) write(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if w.gz != nil && w.needReset {
		w.gz.Reset(&w.cw)
		w.needReset = false
	}
	w.dirty = true
	w.h.Write(p)
	_, err := w.bw.Write(p)
	return err
}

// AppendBatch encodes one batch of edges in the shard format and buffers
// it for the next checkpoint.
func (w *shardWriter) AppendBatch(edges []kagen.Edge) error {
	buf := w.format.AppendEdges(w.scratch[:0], edges)
	w.scratch = buf[:0]
	return w.write(buf)
}

// offset returns the committed-plus-inflight byte offset.
func (w *shardWriter) offset() int64 { return w.cw.n }

// Checkpoint commits everything written since the last checkpoint as one
// chunk and returns the committed byte offset plus the SHA-256 digest of
// the chunk's payload bytes — its Merkle leaf. For compressed shards it
// finishes the current gzip member so the offset is a valid truncation
// point. The backend receives the chunk's wire digest as the commit
// checksum: for plain formats that is the payload digest itself, reused
// with zero extra hashing; for compressed formats it is the member hash
// the countingWriter accumulated in passing. A checkpoint with nothing
// written since the last one (an empty chunk) is free, returns the
// unchanged offset, and digests the empty payload.
func (w *shardWriter) Checkpoint() (int64, merkle.Digest, error) {
	var d merkle.Digest
	if !w.dirty {
		w.h.Sum(d[:0]) // hasher already reset: the empty-payload digest
		return w.cw.n, d, nil
	}
	if err := w.bw.Flush(); err != nil {
		return 0, d, err
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			return 0, d, err
		}
		w.needReset = true
	}
	w.dirty = false
	w.h.Sum(d[:0])
	w.h.Reset()
	wire := [32]byte(d)
	if w.cw.h != nil {
		w.cw.h.Sum(wire[:0])
		w.cw.h.Reset()
	}
	off, err := w.sw.Commit(wire)
	if err != nil {
		return 0, d, err
	}
	return off, d, nil
}

// Durable returns the contiguous committed prefix the backend is known
// to hold — what checkpoint manifests may record.
func (w *shardWriter) Durable() (int64, error) { return w.sw.Durable() }

// Finalize publishes the shard (S3: CompleteMultipartUpload; filesystem:
// a final sync — shards live at their destination from the first byte)
// and releases the writer.
func (w *shardWriter) Finalize() error {
	if w.sw == nil {
		return nil
	}
	err := w.sw.Finalize()
	if cerr := w.sw.Close(); err == nil {
		err = cerr
	}
	w.sw = nil
	return err
}

// Close releases the writer, keeping committed state resumable. Bytes
// buffered since the last checkpoint are deliberately dropped, not
// flushed: only checkpointed state is meaningful, and a resume discards
// anything past it anyway.
func (w *shardWriter) Close() error {
	if w.sw == nil {
		return nil
	}
	err := w.sw.Close()
	w.sw = nil
	return err
}
