package job

import (
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"

	kagen "repro"
	"repro/internal/merkle"
)

// ShardPath returns the shard file of one PE inside a job directory.
// Shards are globally numbered across workers, so merged output never
// depends on which worker produced a shard.
func ShardPath(dir string, pe uint64, format kagen.Format) string {
	return filepath.Join(dir, "shards", fmt.Sprintf("pe%05d.%s", pe, format.Ext()))
}

// shardWriter writes one PE's shard with chunk-granular durability. Two
// properties make reopening a partially written shard safe:
//
//  1. The header is final from the start. Binary shards carry the
//     StreamingEdgeCount sentinel instead of a patched edge count, so no
//     writer ever needs to seek back into committed bytes.
//  2. Committed bytes are only ever appended to. Checkpoint flushes and
//     fsyncs everything written so far and returns the file offset; for
//     compressed shards it also finishes the current gzip member, so the
//     offset falls on a member boundary and truncating to it leaves a
//     well-formed gzip stream. Resume truncates to the last committed
//     offset — dropping any torn tail a crash left — and appends, for
//     compressed shards as a fresh member (concatenated gzip members are
//     one valid stream).
//
// Because every run checkpoints after every chunk, member boundaries are
// a pure function of the spec, and a resumed shard is byte-identical to
// an uninterrupted one.
type shardWriter struct {
	format kagen.Format
	f      *os.File
	cw     countingWriter
	gz     *gzip.Writer
	bw     *bufio.Writer
	// needReset marks the gzip member closed by the last checkpoint; the
	// next write starts a fresh member.
	needReset bool
	// dirty marks bytes written since the last checkpoint.
	dirty   bool
	scratch []byte
	// h accumulates the SHA-256 of the payload bytes (the format
	// encoding, before compression) written since the last checkpoint —
	// the chunk digest the manifest's Merkle tree is built over. Hashing
	// pre-compression bytes keeps the digest a pure function of the spec:
	// verify can re-derive it from a regenerated chunk without caring
	// which gzip implementation wrote the member.
	h hash.Hash
}

// countingWriter tracks the committed-plus-inflight byte offset of the
// underlying file.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// syncDir fsyncs a directory so a freshly created or renamed entry in it
// survives a power loss — without it, a durable manifest could record
// progress for a shard whose directory entry never became durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// createShard starts a fresh shard: it writes the format header and
// commits it as checkpoint zero, returning the writer and the committed
// header offset. The shard directory is synced so the new entry is
// durable before any manifest can reference it.
func createShard(path string, format kagen.Format, n uint64) (*shardWriter, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, 0, err
	}
	w := &shardWriter{format: format}
	w.init(f, 0)
	if err := w.write(format.AppendHeader(nil, n)); err != nil {
		f.Close()
		return nil, 0, err
	}
	off, _, err := w.Checkpoint()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return w, off, nil
}

// reopenShard resumes a partially written shard: the file is truncated to
// the last committed offset (discarding any torn tail) and positioned for
// appending.
func reopenShard(path string, format kagen.Format, offset int64) (*shardWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err == nil && st.Size() < offset {
		err = fmt.Errorf("job: shard %s has %d bytes, manifest committed %d — shard and manifest disagree", path, st.Size(), offset)
	}
	if err == nil {
		err = f.Truncate(offset)
	}
	if err == nil {
		_, err = f.Seek(offset, io.SeekStart)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &shardWriter{format: format}
	w.init(f, offset)
	return w, nil
}

func (w *shardWriter) init(f *os.File, off int64) {
	w.f = f
	w.h = sha256.New()
	w.cw = countingWriter{w: f, n: off}
	var target io.Writer = &w.cw
	if w.format.Compressed() {
		w.gz = gzip.NewWriter(&w.cw)
		target = w.gz
	}
	w.bw = bufio.NewWriterSize(target, 1<<20)
}

func (w *shardWriter) write(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if w.gz != nil && w.needReset {
		w.gz.Reset(&w.cw)
		w.needReset = false
	}
	w.dirty = true
	w.h.Write(p)
	_, err := w.bw.Write(p)
	return err
}

// AppendBatch encodes one batch of edges in the shard format and buffers
// it for the next checkpoint.
func (w *shardWriter) AppendBatch(edges []kagen.Edge) error {
	buf := w.format.AppendEdges(w.scratch[:0], edges)
	w.scratch = buf[:0]
	return w.write(buf)
}

// Checkpoint makes everything written so far durable and returns the
// committed byte offset plus the SHA-256 digest of the payload bytes
// written since the last checkpoint — the chunk's Merkle leaf. For
// compressed shards it finishes the current gzip member so the offset is
// a valid truncation point. A checkpoint with nothing written since the
// last one (an empty chunk) is free, returns the unchanged offset, and
// digests the empty payload.
func (w *shardWriter) Checkpoint() (int64, merkle.Digest, error) {
	var d merkle.Digest
	if !w.dirty {
		w.h.Sum(d[:0]) // hasher already reset: the empty-payload digest
		return w.cw.n, d, nil
	}
	if err := w.bw.Flush(); err != nil {
		return 0, d, err
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			return 0, d, err
		}
		w.needReset = true
	}
	if err := w.f.Sync(); err != nil {
		return 0, d, err
	}
	w.dirty = false
	w.h.Sum(d[:0])
	w.h.Reset()
	return w.cw.n, d, nil
}

// Close closes the shard file. Bytes buffered since the last checkpoint
// are deliberately dropped, not flushed: only checkpointed state is
// meaningful, and a resume truncates past anything else anyway.
func (w *shardWriter) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
