// Package job is the communication-free distributed job runner: it
// plans, executes, checkpoints and resumes multi-worker generation runs
// with zero inter-worker communication.
//
// The paper's core property — every PE (re)derives exactly its slice of
// the instance from (seed, model parameters, P) alone — means a fleet of
// independent worker processes needs no coordination beyond a shared job
// spec, and a crashed or preempted worker is trivially restartable. A
// Spec pins the instance definition (model, parameters, seed, and the
// total chunk count PEs*ChunksPerPE); its SHA-256 hash binds every
// manifest to that definition, so a resume against a changed spec is
// rejected instead of silently producing a franken-instance.
//
// Work is partitioned twice. The job's PEs (one output shard each) are
// split into disjoint contiguous ranges, one per worker; within a PE,
// generation proceeds in ChunksPerPE chunks — the checkpoint unit.
// Because restarting at chunk k costs only the model's O(log P) seeded
// descent (no replay of chunks 0..k-1), chunk granularity makes
// checkpoints as fine as desired at constant cost: a worker records, per
// PE, how many chunks are durably in the shard file and at which byte
// offset, in an atomically renamed per-worker manifest. Resume truncates
// the shard to the recorded offset and re-enters the stream at the
// recorded chunk; the result is byte-identical to an uninterrupted run.
package job

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	kagen "repro"
)

// Spec is the complete, serializable definition of a distributed
// generation job. Model, model parameters, Seed, PEs and ChunksPerPE
// define the instance (total chunk count = PEs*ChunksPerPE); Workers and
// Format define how it is executed and stored. The JSON encoding is the
// on-disk job.json format.
type Spec struct {
	// Model is the kagen registry model name (e.g. "gnm_undirected").
	Model string `json:"model"`

	// Model parameters (the union across models; see kagen.ModelParams).
	N      uint64  `json:"n,omitempty"`
	M      uint64  `json:"m,omitempty"`
	Prob   float64 `json:"p,omitempty"`
	R      float64 `json:"r,omitempty"`
	AvgDeg float64 `json:"avg_deg,omitempty"`
	Gamma  float64 `json:"gamma,omitempty"`
	D      uint64  `json:"d,omitempty"`
	Scale  uint    `json:"scale,omitempty"`
	Blocks int     `json:"blocks,omitempty"`
	PIn    float64 `json:"p_in,omitempty"`
	POut   float64 `json:"p_out,omitempty"`

	// Seed selects the instance.
	Seed uint64 `json:"seed"`
	// PEs is the number of logical PEs — one output shard each.
	PEs uint64 `json:"pes"`
	// ChunksPerPE is the checkpoint granularity: each PE's work is
	// generated as this many chunks, and a resume re-enters mid-PE at the
	// first unfinished chunk. The instance is defined by the total chunk
	// count PEs*ChunksPerPE, so ChunksPerPE is part of the instance
	// definition, not a tuning knob.
	ChunksPerPE uint64 `json:"chunks_per_pe"`
	// Workers is the number of independent worker processes; the PE set is
	// split into Workers disjoint contiguous ranges.
	Workers uint64 `json:"workers"`
	// Format is the shard encoding: text, binary, text.gz or binary.gz.
	Format string `json:"format"`
}

// Normalized returns the spec with defaults applied: PEs, ChunksPerPE and
// Workers of 0 become 1, an empty Format becomes text. Hash and the
// runner operate on the normalized spec, so writing an explicit default
// and omitting the field define the same job.
func (s Spec) Normalized() Spec {
	if s.PEs == 0 {
		s.PEs = 1
	}
	if s.ChunksPerPE == 0 {
		s.ChunksPerPE = 1
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Format == "" {
		s.Format = string(kagen.FormatText)
	}
	return s
}

// Validate checks the execution shape of the spec (model known and
// streamable, format known, partition sizes sane). Model parameter errors
// surface when the first chunk streams, exactly as in a direct run.
func (s Spec) Validate() error {
	s = s.Normalized()
	if _, err := kagen.ParseFormat(s.Format); err != nil {
		return err
	}
	if s.Workers > s.PEs {
		return fmt.Errorf("job: %d workers for %d PEs (a worker would own no shard)", s.Workers, s.PEs)
	}
	if s.ChunksPerPE > math.MaxUint64/s.PEs {
		return fmt.Errorf("job: %d PEs x %d chunks per PE overflows", s.PEs, s.ChunksPerPE)
	}
	_, err := s.Streamer()
	return err
}

// TotalChunks returns the total chunk count — the Chunks parameter of the
// underlying generator and therefore part of the instance definition.
func (s Spec) TotalChunks() uint64 {
	s = s.Normalized()
	return s.PEs * s.ChunksPerPE
}

// ShardFormat returns the parsed shard format of the normalized spec.
func (s Spec) ShardFormat() kagen.Format {
	f, err := kagen.ParseFormat(s.Normalized().Format)
	if err != nil {
		return kagen.FormatText
	}
	return f
}

// Streamer constructs the streaming generator defined by the spec.
func (s Spec) Streamer() (kagen.Streamer, error) {
	s = s.Normalized()
	gen, err := kagen.New(kagen.Model(s.Model), kagen.ModelParams{
		N: s.N, M: s.M, P: s.Prob, R: s.R, AvgDeg: s.AvgDeg, Gamma: s.Gamma,
		D: s.D, Scale: s.Scale, Blocks: s.Blocks, PIn: s.PIn, POut: s.POut,
	}, kagen.Options{Seed: s.Seed, PEs: s.TotalChunks()})
	if err != nil {
		return nil, err
	}
	st, ok := kagen.AsStreamer(gen)
	if !ok {
		return nil, fmt.Errorf("job: model %q is materialize-only and cannot run as a job", s.Model)
	}
	return st, nil
}

// Hash returns the SHA-256 hex digest of the normalized spec's canonical
// JSON encoding. It binds manifests (and thereby every recorded
// checkpoint) to one instance definition: any change to the model,
// parameters, seed, partition or format changes the hash, and the runner
// refuses to resume a manifest whose hash does not match.
func (s Spec) Hash() string {
	b, err := json.Marshal(s.Normalized())
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("job: spec hash: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// WorkerPEs returns worker w's contiguous PE range [lo, hi) under the
// balanced split of [0, PEs) into Workers ranges (the first PEs mod
// Workers ranges get one extra PE).
func (s Spec) WorkerPEs(w uint64) (lo, hi uint64) {
	s = s.Normalized()
	q, r := s.PEs/s.Workers, s.PEs%s.Workers
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// ChunkRange returns the global chunk range [first, first+count) of one
// PE: PE p owns chunks [p*ChunksPerPE, (p+1)*ChunksPerPE).
func (s Spec) ChunkRange(pe uint64) (first, count uint64) {
	s = s.Normalized()
	return pe * s.ChunksPerPE, s.ChunksPerPE
}
