package job

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strings"

	kagen "repro"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Tracing a run produces one Chrome trace-event JSON object per worker
// under <dir>/trace/, written by the worker that ran (each worker's
// spans are disjoint, and timestamps are wall-anchored, so the files
// merge onto one timeline without coordination — the same
// communication-free property as the shards themselves).

// TraceDir returns the trace prefix inside a job directory.
func TraceDir(dir string) string { return storage.Join(dir, "trace") }

// TracePath returns one worker's trace object inside a job directory.
func TracePath(dir string, worker uint64) string {
	return storage.Join(TraceDir(dir), fmt.Sprintf("worker%05d.json", worker))
}

// ErrNoTrace reports a job directory without recorded traces — the job
// ran without RunOptions.Trace.
var ErrNoTrace = errors.New("job: no trace recorded (run with tracing enabled)")

// writeWorkerTrace persists a worker's spans into the job directory.
// Called after run() joins all generation and upload goroutines, which
// is the quiescence WriteJSON requires.
func writeWorkerTrace(store storage.Backend, dir string, worker uint64, tr *obs.Trace) error {
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		return err
	}
	return store.Put(TracePath(dir, worker), buf.Bytes(), storage.PutOptions{})
}

// WriteTraceJSON merges every worker trace in a job directory into one
// Chrome trace-event JSON document on w. Returns ErrNoTrace when the
// job has no trace objects. Timestamps are wall-anchored so the files
// align on one timeline; the args.id/args.parent span annotations are
// unique only within one worker's events (viewers lay out by lane and
// time, not by these ids).
func WriteTraceJSON(dir string, w io.Writer) error {
	store, err := storage.Resolve(dir)
	if err != nil {
		return err
	}
	names, err := store.List(TraceDir(dir))
	if errors.Is(err, fs.ErrNotExist) {
		return ErrNoTrace
	}
	if err != nil {
		return err
	}
	merged := struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: []json.RawMessage{}}
	found := false
	for _, name := range names {
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := store.Get(name)
		if err != nil {
			return err
		}
		var one struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(b, &one); err != nil {
			return fmt.Errorf("job: corrupt trace %s: %w", name, err)
		}
		found = true
		merged.TraceEvents = append(merged.TraceEvents, one.TraceEvents...)
	}
	if !found {
		return ErrNoTrace
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&merged)
}

// tracingStreamer decorates a spec streamer with one chunk-generate
// span per StreamChunk call. It exists only on the traced path: with
// tracing off the undecorated streamer runs and generation pays
// nothing.
type tracingStreamer struct {
	kagen.Streamer
	tr     *obs.Trace
	parent obs.Span
}

func (t *tracingStreamer) StreamChunk(chunk uint64, emit func(kagen.Edge)) error {
	sp := t.tr.Start("job", "chunk-generate", obs.GenLane(chunk), t.parent)
	err := t.Streamer.StreamChunk(chunk, emit)
	sp.End(obs.U64("chunk", chunk))
	return err
}
