package job

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/obs"
)

// traceEvents decodes a Chrome trace export into its complete events.
func traceEvents(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("trace does not parse as JSON: %v", err)
	}
	var spans []map[string]any
	for _, e := range out.TraceEvents {
		if e["ph"] == "X" {
			spans = append(spans, e)
		}
	}
	return spans
}

// TestRunTraced runs a multi-PE sharded job with tracing and checks the
// persisted trace: worker → pe → chunk-generate/chunk-commit spans with
// correct nesting, plus the commit-latency hook firing per chunk on the
// right PEs.
func TestRunTraced(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 400, M: 2000, Seed: 21,
		PEs: 3, ChunksPerPE: 2, Workers: 1, Format: "text"}
	dir := t.TempDir()
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(1 << 12)
	var mu sync.Mutex
	latencies := map[uint64]int{}
	err := Run(dir, 0, RunOptions{
		Trace: tr,
		OnCommitLatency: func(pe uint64, seconds float64) {
			if seconds < 0 {
				t.Errorf("negative commit latency for PE %d", pe)
			}
			mu.Lock()
			latencies[pe]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe := uint64(0); pe < spec.PEs; pe++ {
		if got := latencies[pe]; uint64(got) != spec.ChunksPerPE {
			t.Errorf("PE %d: %d commit-latency observations, want %d", pe, got, spec.ChunksPerPE)
		}
	}

	var buf bytes.Buffer
	if err := WriteTraceJSON(dir, &buf); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	spans := traceEvents(t, buf.Bytes())

	count := map[string]int{}
	byID := map[uint64]map[string]any{}
	id := func(e map[string]any, k string) uint64 {
		args, _ := e["args"].(map[string]any)
		v, _ := args[k].(float64)
		return uint64(v)
	}
	for _, e := range spans {
		count[e["name"].(string)]++
		byID[id(e, "id")] = e
	}
	chunks := int(spec.PEs * spec.ChunksPerPE)
	if count["worker"] != 1 || count["pe"] != int(spec.PEs) ||
		count["chunk-generate"] != chunks || count["chunk-commit"] != chunks {
		t.Fatalf("span counts = %v, want 1 worker, %d pe, %d chunk-generate, %d chunk-commit",
			count, spec.PEs, chunks, chunks)
	}
	// Nesting: every pe span's parent is the worker span; every chunk
	// span's parent is a pe span.
	for _, e := range spans {
		parent, ok := byID[id(e, "parent")]
		switch e["name"] {
		case "pe":
			if !ok || parent["name"] != "worker" {
				t.Fatalf("pe span not nested under worker: %v", e)
			}
		case "chunk-generate", "chunk-commit":
			if !ok || parent["name"] != "pe" {
				t.Fatalf("%s span not nested under pe: %v", e["name"], e)
			}
		}
	}
}

// TestRunUntraced: with no Trace, nothing is persisted and
// WriteTraceJSON reports ErrNoTrace.
func TestRunUntraced(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 100, M: 200, Seed: 1,
		PEs: 2, ChunksPerPE: 1, Workers: 1, Format: "text"}
	dir := t.TempDir()
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	if err := Run(dir, 0, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceJSON(dir, &buf); err != ErrNoTrace {
		t.Fatalf("WriteTraceJSON on untraced job: %v, want ErrNoTrace", err)
	}
}

// TestTracedRunDeterministic: tracing must not change the generated
// bytes — the traced and untraced shards are identical.
func TestTracedRunDeterministic(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 300, M: 900, Seed: 4,
		PEs: 2, ChunksPerPE: 2, Workers: 1, Format: "binary"}
	plain, traced := t.TempDir(), t.TempDir()
	for _, d := range []string{plain, traced} {
		if err := Init(d, spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := Run(plain, 0, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := Run(traced, 0, RunOptions{Trace: obs.NewTrace(0)}); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := Merge(plain, &a); err != nil {
		t.Fatal(err)
	}
	if err := Merge(traced, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("traced run produced different merged bytes than untraced run")
	}
}
