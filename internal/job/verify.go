package job

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"

	kagen "repro"
	"repro/internal/merkle"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Fault reasons reported by Verify.
const (
	// FaultManifest: the worker manifest is missing, unparseable, or fails
	// strict validation — nothing it claims can be trusted.
	FaultManifest = "manifest-unreadable"
	// FaultManifestDigest: a chunk re-derived from the spec does not match
	// the digest (or edge count) the manifest records for it — the
	// manifest lies about what was generated.
	FaultManifestDigest = "manifest-digest"
	// FaultMerkleRoot: a chunk's inclusion proof does not carry its leaf
	// up to the PE's committed root.
	FaultMerkleRoot = "merkle-root"
	// FaultShard: the bytes on disk for a chunk do not reproduce the
	// chunk's payload digest — rot, truncation, or tampering in the shard
	// file itself. Unreadable or undecompressable chunk segments are
	// reported as this too: corruption is the conservative reading of any
	// failed read.
	FaultShard = "shard-corrupt"
)

// Fault is one integrity failure found by Verify. PE and Chunk are -1
// for faults scoped to a whole worker or a whole shard file.
type Fault struct {
	Worker uint64 `json:"worker"`
	PE     int64  `json:"pe"`
	Chunk  int64  `json:"chunk"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
}

func (f Fault) String() string {
	return fmt.Sprintf("worker %d pe %d chunk %d: %s (%s)", f.Worker, f.PE, f.Chunk, f.Reason, f.Detail)
}

// VerifyOptions tune a verification pass.
type VerifyOptions struct {
	// All checks every committed chunk of every PE; otherwise a random
	// sample of Sample chunks per PE is checked.
	All bool
	// Sample is the number of chunks checked per PE when All is false
	// (0 = 2). With a corruption fraction f among a PE's chunks, a sample
	// of s misses with probability (1-f)^s — see DESIGN.md.
	Sample int
	// Seed seeds the sampling; equal seeds check equal chunks.
	Seed int64
}

// VerifyResult aggregates one verification pass.
type VerifyResult struct {
	ChunksChecked int     `json:"chunks_checked"`
	PEsChecked    int     `json:"pes_checked"`
	Faults        []Fault `json:"faults,omitempty"`
}

// OK reports a clean pass.
func (r *VerifyResult) OK() bool { return len(r.Faults) == 0 }

// Verify checks a job directory's committed state against the spec. It
// is communication-free in exactly the sense the generator is: every
// chunk's expected bytes are re-derived from the spec via the O(log P)
// seeded descent, hashed, and compared against the manifest record, the
// PE's Merkle root (for finalized PEs, through an inclusion proof), and
// the bytes on disk. No worker's manifest is trusted over the spec.
//
// Workers that have not started are skipped — absence of progress is not
// a fault. An incomplete job verifies its committed prefix.
func Verify(dir string, opts VerifyOptions) (*VerifyResult, error) {
	store, err := storage.Resolve(dir)
	if err != nil {
		return nil, err
	}
	spec, err := loadSpec(store, dir)
	if err != nil {
		return nil, err
	}
	streamer, err := spec.Streamer()
	if err != nil {
		return nil, err
	}
	format := spec.ShardFormat()
	log := obs.Logger("job")
	log.Info("verify starting", "dir", dir, "spec", spec.Hash(), "all", opts.All)
	res := &VerifyResult{}
	rng := rand.New(rand.NewSource(opts.Seed))
	for w := uint64(0); w < spec.Workers; w++ {
		mpath := ManifestPath(dir, w)
		if _, serr := store.Stat(mpath); errors.Is(serr, fs.ErrNotExist) {
			continue
		}
		m, err := readManifest(store, mpath, spec)
		if err != nil {
			res.Faults = append(res.Faults, Fault{Worker: w, PE: -1, Chunk: -1, Reason: FaultManifest, Detail: err.Error()})
			continue
		}
		for i := range m.PEs {
			prog := &m.PEs[i]
			if prog.ChunksDone == 0 {
				continue
			}
			res.PEsChecked++
			res.Faults = append(res.Faults, verifyPE(store, dir, spec, streamer, format, w, prog, opts, rng, &res.ChunksChecked)...)
		}
	}
	if res.OK() {
		log.Info("verify clean", "dir", dir, "pes_checked", res.PEsChecked, "chunks_checked", res.ChunksChecked)
	} else {
		log.Warn("verify found faults", "dir", dir, "faults", len(res.Faults),
			"pes_checked", res.PEsChecked, "chunks_checked", res.ChunksChecked)
	}
	return res, nil
}

// verifyPE checks a sample (or all) of one PE's committed chunks,
// reading the shard bytes straight from the backend (ranged GETs on an
// object store — no local staging).
func verifyPE(store storage.Backend, dir string, spec Spec, streamer kagen.Streamer, format kagen.Format, worker uint64, prog *PEProgress, opts VerifyOptions, rng *rand.Rand, checked *int) []Fault {
	var faults []Fault
	pe := int64(prog.PE)
	path := ShardPath(dir, prog.PE, format)
	f, err := store.Open(path)
	if err != nil {
		return []Fault{{Worker: worker, PE: pe, Chunk: -1, Reason: FaultShard, Detail: err.Error()}}
	}
	defer f.Close()

	leaves, err := prog.leafDigests()
	if err != nil {
		// ReadManifest validated the digests already; this is unreachable
		// short of a bug, but fail loudly rather than skip.
		return []Fault{{Worker: worker, PE: pe, Chunk: -1, Reason: FaultManifest, Detail: err.Error()}}
	}
	var root merkle.Digest
	haveRoot := prog.Done && decodeDigest(prog.Root, &root) == nil

	first, _ := spec.ChunkRange(prog.PE)
	for _, c := range sampleIndices(int(prog.ChunksDone), opts, rng) {
		*checked++
		rec := prog.Chunks[c]
		payload, edges, err := regenChunk(streamer, format, first+uint64(c))
		if err != nil {
			faults = append(faults, Fault{Worker: worker, PE: pe, Chunk: int64(c), Reason: FaultManifestDigest,
				Detail: fmt.Sprintf("cannot re-derive chunk: %v", err)})
			continue
		}
		leaf := sha256.Sum256(payload)
		if hex.EncodeToString(leaf[:]) != rec.Digest || edges != rec.Edges {
			faults = append(faults, Fault{Worker: worker, PE: pe, Chunk: int64(c), Reason: FaultManifestDigest,
				Detail: fmt.Sprintf("manifest records digest %.12s…/%d edges, spec derives %.12s…/%d", rec.Digest, rec.Edges, hex.EncodeToString(leaf[:]), edges)})
			continue
		}
		if haveRoot {
			if !merkle.VerifyProof(leaf, merkle.Proof(leaves, c), root) {
				faults = append(faults, Fault{Worker: worker, PE: pe, Chunk: int64(c), Reason: FaultMerkleRoot,
					Detail: "inclusion proof does not reach the committed root"})
				continue
			}
		}
		start, end := prog.chunkBounds(c)
		disk, err := readChunkPayload(f, format, start, end)
		if err != nil {
			faults = append(faults, Fault{Worker: worker, PE: pe, Chunk: int64(c), Reason: FaultShard,
				Detail: fmt.Sprintf("bytes [%d,%d): %v", start, end, err)})
			continue
		}
		if sha256.Sum256(disk) != leaf {
			faults = append(faults, Fault{Worker: worker, PE: pe, Chunk: int64(c), Reason: FaultShard,
				Detail: fmt.Sprintf("bytes [%d,%d) do not reproduce the chunk digest", start, end)})
		}
	}
	return faults
}

// sampleIndices picks the chunk indices a pass checks: all of them, or a
// seeded random sample without replacement.
func sampleIndices(n int, opts VerifyOptions, rng *rand.Rand) []int {
	if opts.All || n == 0 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	s := opts.Sample
	if s <= 0 {
		s = 2
	}
	if s > n {
		s = n
	}
	return rng.Perm(n)[:s]
}

// regenChunk re-derives one global chunk from the spec and returns its
// payload bytes (format-encoded edges, pre-compression) and edge count.
func regenChunk(streamer kagen.Streamer, format kagen.Format, globalChunk uint64) ([]byte, uint64, error) {
	sink := &captureSink{format: format}
	if err := kagen.StreamChunksFrom(streamer, globalChunk, 1, 1, 0, sink); err != nil {
		return nil, 0, err
	}
	return sink.buf, sink.edges, nil
}

// captureSink collects one chunk's format-encoded payload in memory.
type captureSink struct {
	format kagen.Format
	buf    []byte
	edges  uint64
}

func (s *captureSink) Begin(n, pes uint64) error { return nil }
func (s *captureSink) Batch(chunk uint64, edges []kagen.Edge) error {
	s.edges += uint64(len(edges))
	s.buf = s.format.AppendEdges(s.buf, edges)
	return nil
}
func (s *captureSink) EndPE(chunk uint64) error { return nil }
func (s *captureSink) Close() error             { return nil }

// readChunkPayload reads the payload bytes of one committed chunk from
// its shard segment [start, end): verbatim for plain formats, the
// decompressed gzip member for compressed ones. An empty segment is an
// empty payload.
func readChunkPayload(ra io.ReaderAt, format kagen.Format, start, end int64) ([]byte, error) {
	if end < start {
		return nil, fmt.Errorf("inverted segment [%d,%d)", start, end)
	}
	if end == start {
		return nil, nil
	}
	raw := make([]byte, end-start)
	if _, err := ra.ReadAt(raw, start); err != nil {
		return nil, err
	}
	if !format.Compressed() {
		return raw, nil
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(gz)
	if cerr := gz.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// encodeOnDisk returns the exact bytes a shard stores for a chunk
// payload: verbatim for plain formats, one gzip member for compressed
// ones, nothing for an empty payload. For compressed shards this
// reproduces the original member byte-for-byte only under the same
// deflate implementation that wrote it — callers that splice must check
// the length and fall back to PE regeneration on mismatch.
func encodeOnDisk(format kagen.Format, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, nil
	}
	if !format.Compressed() {
		return payload, nil
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(payload); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RepairResult aggregates one repair pass.
type RepairResult struct {
	ChunksSpliced  int     `json:"chunks_spliced"`
	PEsReset       int     `json:"pes_reset"`
	WorkersRebuilt int     `json:"workers_rebuilt"`
	Unrepaired     []Fault `json:"unrepaired,omitempty"`
}

// Repair fixes the faults a Verify pass found, without regenerating
// anything that is intact. Shard corruption is repaired by regenerating
// exactly the failed chunks from the spec and splicing byte-identical
// replacements into the shard (gzip-member-aligned for compressed
// formats); if a regenerated member's length does not match the
// committed segment (a different deflate implementation), the whole PE
// is reset and regenerated instead. Manifest-level faults rebuild the
// worker's manifest from the spec and the shard bytes that still match
// it, then resume the worker to regenerate whatever did not.
//
// Repair is as communication-free as generation: any worker holding the
// spec can repair any shard.
func Repair(dir string, faults []Fault) (*RepairResult, error) {
	store, err := storage.Resolve(dir)
	if err != nil {
		return nil, err
	}
	spec, err := loadSpec(store, dir)
	if err != nil {
		return nil, err
	}
	streamer, err := spec.Streamer()
	if err != nil {
		return nil, err
	}
	format := spec.ShardFormat()
	log := obs.Logger("job")
	log.Info("repair starting", "dir", dir, "faults", len(faults))
	res := &RepairResult{}

	byWorker := map[uint64][]Fault{}
	for _, f := range faults {
		byWorker[f.Worker] = append(byWorker[f.Worker], f)
	}
	for w, wfaults := range byWorker {
		rebuild := false
		for _, f := range wfaults {
			if f.Reason != FaultShard {
				rebuild = true
			}
		}
		if rebuild {
			// The manifest cannot be trusted: reconstruct it from the spec
			// and whatever shard prefix still matches, then resume the
			// worker to regenerate the rest.
			if err := RebuildManifest(dir, w); err != nil {
				res.Unrepaired = append(res.Unrepaired, Fault{Worker: w, PE: -1, Chunk: -1, Reason: FaultManifest, Detail: err.Error()})
				continue
			}
			if err := Run(dir, w, RunOptions{}); err != nil {
				res.Unrepaired = append(res.Unrepaired, Fault{Worker: w, PE: -1, Chunk: -1, Reason: FaultManifest, Detail: err.Error()})
				continue
			}
			res.WorkersRebuilt++
			continue
		}
		if err := repairShards(store, dir, spec, streamer, format, w, wfaults, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// repairShards fixes shard-corrupt faults of one worker: chunk splices
// where the regenerated bytes fit, PE resets where they do not.
func repairShards(store storage.Backend, dir string, spec Spec, streamer kagen.Streamer, format kagen.Format, worker uint64, faults []Fault, res *RepairResult) error {
	m, err := readManifest(store, ManifestPath(dir, worker), spec)
	if err != nil {
		return err
	}
	resetPEs := map[uint64]bool{}
	lock, err := acquireWorkerLock(dir, worker)
	if err != nil {
		return err
	}
	for _, f := range faults {
		pe := uint64(f.PE)
		if resetPEs[pe] {
			continue
		}
		prog := m.progress(pe)
		if prog == nil || f.Chunk < 0 || int(f.Chunk) >= len(prog.Chunks) {
			resetPEs[pe] = true
			continue
		}
		start, end := prog.chunkBounds(int(f.Chunk))
		first, _ := spec.ChunkRange(pe)
		payload, _, err := regenChunk(streamer, format, first+uint64(f.Chunk))
		if err != nil {
			lock.Release()
			return err
		}
		member, err := encodeOnDisk(format, payload)
		if err != nil {
			lock.Release()
			return err
		}
		if int64(len(member)) != end-start {
			// A foreign deflate wrote the original member: the regenerated
			// one cannot be spliced without shifting every later offset.
			resetPEs[pe] = true
			continue
		}
		if err := spliceObject(store, ShardPath(dir, pe, format), start, end, member); err != nil {
			lock.Release()
			return err
		}
		res.ChunksSpliced++
	}
	// Reset PEs regenerate from scratch: zero their progress under the
	// lock, then resume the worker (which re-acquires it).
	if len(resetPEs) > 0 {
		for pe := range resetPEs {
			if prog := m.progress(pe); prog != nil {
				*prog = PEProgress{PE: pe}
			}
		}
		if err := WriteManifest(ManifestPath(dir, worker), m); err != nil {
			lock.Release()
			return err
		}
	}
	lock.Release()
	if len(resetPEs) > 0 {
		if err := Run(dir, worker, RunOptions{}); err != nil {
			return err
		}
		res.PEsReset += len(resetPEs)
	}
	return nil
}

// spliceObject atomically replaces bytes [start, end) of a shard with
// replacement, preserving everything around them. On the local
// filesystem the new content is assembled streaming in a temp file in
// the same directory, synced, and renamed over the original; on an
// object store the object is rewritten through one atomic PUT (shards
// sized for chunk-splice repair fit in memory — a shard too large for
// that resets its PE instead).
func spliceObject(store storage.Backend, path string, start, end int64, replacement []byte) error {
	if store.Local() {
		return spliceFile(localPath(path), start, end, replacement)
	}
	old, err := store.Get(path)
	if err != nil {
		return err
	}
	if end > int64(len(old)) {
		return fmt.Errorf("job: splice [%d,%d) past object end %d", start, end, len(old))
	}
	spliced := make([]byte, 0, int64(len(old))-(end-start)+int64(len(replacement)))
	spliced = append(spliced, old[:start]...)
	spliced = append(spliced, replacement...)
	spliced = append(spliced, old[end:]...)
	return store.Put(path, spliced, storage.PutOptions{})
}

// spliceFile is spliceObject's streaming filesystem path.
func spliceFile(path string, start, end int64, replacement []byte) error {
	src, err := os.Open(path)
	if err != nil {
		return err
	}
	defer src.Close()
	tmp := path + ".splice"
	dst, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = io.CopyN(dst, src, start); err == nil {
		_, err = dst.Write(replacement)
	}
	if err == nil {
		if _, serr := src.Seek(end, io.SeekStart); serr != nil {
			err = serr
		} else {
			_, err = io.Copy(dst, src)
		}
	}
	if err == nil {
		err = dst.Sync()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return storage.SyncDir(filepath.Dir(path))
}

// RebuildManifest reconstructs one worker's manifest from the spec and
// its shard files alone: each shard's bytes are compared, chunk by
// chunk, against the spec-derived encoding, and progress is recorded for
// exactly the prefix that matches. The old manifest — missing, corrupt,
// or lying — is not consulted. A shard whose matching prefix covers
// every chunk and whose length matches exactly is finalized with its
// Merkle root; anything shorter is left resumable, so a following Run
// regenerates only the unmatched suffix.
func RebuildManifest(dir string, worker uint64) error {
	store, err := storage.Resolve(dir)
	if err != nil {
		return err
	}
	spec, err := loadSpec(store, dir)
	if err != nil {
		return err
	}
	if worker >= spec.Workers {
		return fmt.Errorf("job: worker %d out of range [0, %d)", worker, spec.Workers)
	}
	streamer, err := spec.Streamer()
	if err != nil {
		return err
	}
	format := spec.ShardFormat()
	lock, err := acquireWorkerLock(dir, worker)
	if err != nil {
		return err
	}
	defer lock.Release()
	m := newManifest(spec, worker)
	for i := range m.PEs {
		if err := rebuildPE(store, dir, spec, streamer, format, &m.PEs[i]); err != nil {
			return err
		}
	}
	return writeManifest(store, ManifestPath(dir, worker), m)
}

// rebuildPE fills one PE's progress from its shard's matching prefix.
func rebuildPE(store storage.Backend, dir string, spec Spec, streamer kagen.Streamer, format kagen.Format, prog *PEProgress) error {
	path := ShardPath(dir, prog.PE, format)
	f, err := store.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // no shard: zero progress, Run starts it fresh
	}
	if err != nil {
		return err
	}
	defer f.Close()
	size := f.Size()

	header, err := encodeOnDisk(format, format.AppendHeader(nil, streamer.N()))
	if err != nil {
		return err
	}
	if !prefixMatches(f, 0, header, size) {
		return nil // header does not match: regenerate the shard entirely
	}
	off := int64(len(header))
	prog.Offset, prog.HeaderEnd = off, off

	first, count := spec.ChunkRange(prog.PE)
	for c := uint64(0); c < count; c++ {
		payload, edges, err := regenChunk(streamer, format, first+c)
		if err != nil {
			return err
		}
		member, err := encodeOnDisk(format, payload)
		if err != nil {
			return err
		}
		if !prefixMatches(f, off, member, size) {
			return nil // mismatching suffix stays unrecorded; Run redoes it
		}
		off += int64(len(member))
		leaf := sha256.Sum256(payload)
		prog.Chunks = append(prog.Chunks, ChunkRecord{Digest: hex.EncodeToString(leaf[:]), End: off, Edges: edges})
		prog.ChunksDone = c + 1
		prog.Offset = off
		prog.Edges += edges
	}
	if off == size {
		leaves, err := prog.leafDigests()
		if err != nil {
			return err
		}
		root := merkle.Root(leaves)
		prog.Root = hex.EncodeToString(root[:])
		prog.Done = true
	}
	// off < size: a torn tail past the last good chunk — left !Done so the
	// following Run truncates it away and finalizes.
	return nil
}

// prefixMatches reports whether the file holds exactly want at offset
// off (and has room for it).
func prefixMatches(f io.ReaderAt, off int64, want []byte, size int64) bool {
	if len(want) == 0 {
		return true
	}
	if off+int64(len(want)) > size {
		return false
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, off); err != nil {
		return false
	}
	return bytes.Equal(got, want)
}

// auditCommitted re-hashes the committed chunks a resume is about to
// extend against their manifest digests. On a mismatch — rot or
// tampering since the checkpoint — the corrupt suffix is copied to a
// .quarantine file beside the shard, the PE's progress is rolled back to
// the last intact chunk, and the rolled-back manifest is committed; the
// caller then regenerates the suffix through the normal resume path.
// Silently appending to corrupt data would launder the corruption into a
// "complete" job, which is the one failure mode a tamper-evident store
// must not have.
func auditCommitted(store storage.Backend, path string, format kagen.Format, n uint64, manifest *Manifest, mpath string, prog *PEProgress) error {
	good := 0 // chunks verified intact
	headerOK := false
	f, err := store.Open(path)
	if err == nil {
		func() {
			defer f.Close()
			payload, herr := readChunkPayload(f, format, 0, prog.HeaderEnd)
			if herr != nil || !bytes.Equal(payload, format.AppendHeader(nil, n)) {
				return
			}
			headerOK = true
			var d merkle.Digest
			for c := range prog.Chunks {
				start, end := prog.chunkBounds(c)
				disk, rerr := readChunkPayload(f, format, start, end)
				if rerr != nil {
					return
				}
				if decodeDigest(prog.Chunks[c].Digest, &d) != nil || sha256.Sum256(disk) != d {
					return
				}
				good = c + 1
			}
		}()
	}
	if headerOK && good == len(prog.Chunks) {
		return nil // everything committed is intact
	}
	// Quarantine before rollback: keep the corrupt evidence, then shrink
	// the manifest so resume regenerates from the last intact chunk.
	obs.Logger("job").Warn("resume audit found corruption; quarantining",
		"shard", path, "pe", prog.PE, "header_ok", headerOK,
		"chunks_intact", good, "chunks_committed", len(prog.Chunks))
	if err := quarantine(store, path, prog, headerOK, good); err != nil {
		return err
	}
	if !headerOK {
		*prog = PEProgress{PE: prog.PE}
	} else {
		goodEnd := prog.HeaderEnd
		var edges uint64
		for c := 0; c < good; c++ {
			goodEnd = prog.Chunks[c].End
			edges += prog.Chunks[c].Edges
		}
		prog.Chunks = prog.Chunks[:good]
		prog.ChunksDone = uint64(good)
		prog.Offset = goodEnd
		prog.Edges = edges
	}
	return writeManifest(store, mpath, manifest)
}

// quarantine copies the corrupt part of a shard (the whole object if the
// header is bad, the suffix past the last intact chunk otherwise) to
// <shard>.quarantine for post-mortem, replacing any previous quarantine.
func quarantine(store storage.Backend, path string, prog *PEProgress, headerOK bool, good int) error {
	src, err := store.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // nothing in the store to preserve
	}
	if err != nil {
		return err
	}
	defer src.Close()
	var from int64
	if headerOK {
		from = prog.HeaderEnd
		if good > 0 {
			from = prog.Chunks[good-1].End
		}
	}
	if _, err := src.Seek(from, io.SeekStart); err != nil {
		return err
	}
	bad, err := io.ReadAll(src)
	if err != nil {
		return err
	}
	return store.Put(path+".quarantine", bad, storage.PutOptions{})
}
