package job

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/failpoint"
)

// assertShardsAndMergeEqual compares every shard file and the merged
// output of two job directories byte for byte.
func assertShardsAndMergeEqual(t *testing.T, clean, dir string, spec Spec) {
	t.Helper()
	want := readShards(t, clean, spec)
	got := readShards(t, dir, spec)
	for pe, wb := range want {
		if string(got[pe]) != string(wb) {
			t.Errorf("shard %d differs (%d vs %d bytes)", pe, len(got[pe]), len(wb))
		}
	}
	mc := filepath.Join(clean, "merged-cmp")
	md := filepath.Join(dir, "merged-cmp")
	if err := MergeToFile(clean, mc); err != nil {
		t.Fatal(err)
	}
	if err := MergeToFile(dir, md); err != nil {
		t.Fatal(err)
	}
	cb, _ := os.ReadFile(mc)
	db, _ := os.ReadFile(md)
	if string(cb) != string(db) {
		t.Error("merged outputs differ")
	}
}

// TestVerifyCleanJob: an uninjected job verifies clean, both sampled and
// exhaustively, across models and formats.
func TestVerifyCleanJob(t *testing.T) {
	for _, spec := range testSpecs() {
		spec := spec
		t.Run(fmt.Sprintf("%s-%s", spec.Model, spec.Format), func(t *testing.T) {
			dir := t.TempDir()
			if err := Init(dir, spec); err != nil {
				t.Fatal(err)
			}
			runAll(t, dir, spec)
			res, err := Verify(dir, VerifyOptions{All: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("clean job reports faults: %v", res.Faults)
			}
			if res.ChunksChecked != int(spec.Normalized().PEs*spec.Normalized().ChunksPerPE) {
				t.Errorf("--all checked %d chunks, want %d", res.ChunksChecked, spec.Normalized().PEs*spec.Normalized().ChunksPerPE)
			}
			sampled, err := Verify(dir, VerifyOptions{Sample: 1, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if !sampled.OK() || sampled.ChunksChecked != int(spec.Normalized().PEs) {
				t.Errorf("sampled verify: ok=%v checked=%d", sampled.OK(), sampled.ChunksChecked)
			}
		})
	}
}

// TestVerifyRepairBitflipRoundTrip is the tamper-evidence contract
// across all four formats: a single flipped bit in a committed chunk is
// detected by an exhaustive verify, repaired by splicing the regenerated
// chunk back in, and the repaired job is byte-identical — shards and
// merged output — to a never-corrupted run.
func TestVerifyRepairBitflipRoundTrip(t *testing.T) {
	for _, spec := range testSpecs()[:4] { // gnm in text, binary, text.gz, binary.gz
		spec := spec
		t.Run(spec.Format, func(t *testing.T) {
			t.Cleanup(failpoint.Reset)
			clean := t.TempDir()
			if err := Init(clean, spec); err != nil {
				t.Fatal(err)
			}
			runAll(t, clean, spec)

			dir := t.TempDir()
			if err := Init(dir, spec); err != nil {
				t.Fatal(err)
			}
			failpoint.Arm("job/chunk-bitflip", 3)
			runAll(t, dir, spec) // the bitflip does not abort the run
			if failpoint.Armed() {
				t.Fatal("bitflip failpoint never fired")
			}

			res, err := Verify(dir, VerifyOptions{All: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Faults) != 1 || res.Faults[0].Reason != FaultShard {
				t.Fatalf("want exactly one shard-corrupt fault, got %v", res.Faults)
			}

			rep, err := Repair(dir, res.Faults)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ChunksSpliced != 1 || len(rep.Unrepaired) != 0 {
				t.Fatalf("repair: %+v", rep)
			}
			after, err := Verify(dir, VerifyOptions{All: true})
			if err != nil {
				t.Fatal(err)
			}
			if !after.OK() {
				t.Fatalf("faults survive repair: %v", after.Faults)
			}
			assertShardsAndMergeEqual(t, clean, dir, spec)
		})
	}
}

// TestRepairResetsPEWhenShardGone: a shard file lost entirely (the
// file-level fault, chunk -1) cannot be spliced — repair falls back to
// resetting and regenerating the PE.
func TestRepairResetsPEWhenShardGone(t *testing.T) {
	spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 21,
		PEs: 2, ChunksPerPE: 3, Workers: 1, Format: "text.gz"}
	clean := t.TempDir()
	if err := Init(clean, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, clean, spec)

	dir := t.TempDir()
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, dir, spec)
	if err := os.Remove(ShardPath(dir, 1, spec.ShardFormat())); err != nil {
		t.Fatal(err)
	}
	res, err := Verify(dir, VerifyOptions{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 1 || res.Faults[0].Reason != FaultShard || res.Faults[0].Chunk != -1 {
		t.Fatalf("want one file-level shard fault, got %v", res.Faults)
	}
	rep, err := Repair(dir, res.Faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PEsReset != 1 {
		t.Fatalf("repair: %+v", rep)
	}
	after, err := Verify(dir, VerifyOptions{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if !after.OK() {
		t.Fatalf("faults survive repair: %v", after.Faults)
	}
	assertShardsAndMergeEqual(t, clean, dir, spec)
}

// TestResumeAuditQuarantinesCorruptSuffix: a chunk that rots after its
// checkpoint but before the PE finishes must not be extended — resume
// audits the committed prefix, quarantines the corrupt suffix, and
// regenerates it, ending byte-identical to a clean run.
func TestResumeAuditQuarantinesCorruptSuffix(t *testing.T) {
	for _, format := range []string{"text", "binary.gz"} {
		format := format
		t.Run(format, func(t *testing.T) {
			t.Cleanup(failpoint.Reset)
			spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 31,
				PEs: 4, ChunksPerPE: 3, Workers: 2, Format: format}
			clean := t.TempDir()
			if err := Init(clean, spec); err != nil {
				t.Fatal(err)
			}
			runAll(t, clean, spec)

			dir := t.TempDir()
			if err := Init(dir, spec); err != nil {
				t.Fatal(err)
			}
			// Flip a bit in PE 0's second chunk, then crash at the third
			// checkpoint — same PE, so the resume is about to extend the
			// corrupted shard.
			failpoint.Arm("job/chunk-bitflip", 2)
			failpoint.Arm("job/crash", 3)
			err := Run(dir, 0, RunOptions{})
			if !errors.Is(err, failpoint.ErrCrash) {
				t.Fatalf("injected run returned %v, want simulated crash", err)
			}
			if err := Resume(dir, 0, RunOptions{}); err != nil {
				t.Fatalf("resume over corrupt suffix: %v", err)
			}
			q := ShardPath(dir, 0, spec.ShardFormat()) + ".quarantine"
			if _, err := os.Stat(q); err != nil {
				t.Errorf("no quarantine file for the corrupt suffix: %v", err)
			}
			os.Remove(q) // not part of the byte comparison
			if err := Run(dir, 1, RunOptions{}); err != nil {
				t.Fatal(err)
			}
			res, err := Verify(dir, VerifyOptions{All: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("resumed job reports faults: %v", res.Faults)
			}
			assertShardsAndMergeEqual(t, clean, dir, spec)
		})
	}
}

// TestShardTruncateFailpointResume routes the truncated-gzip-tail crash
// case through the failpoint harness: a committed chunk cut in half
// (manifest ahead of the shard) is caught by the resume audit, rolled
// back, and regenerated byte-identically.
func TestShardTruncateFailpointResume(t *testing.T) {
	for _, format := range []string{"text", "text.gz", "binary.gz"} {
		format := format
		t.Run(format, func(t *testing.T) {
			t.Cleanup(failpoint.Reset)
			spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 41,
				PEs: 2, ChunksPerPE: 3, Workers: 1, Format: format}
			clean := t.TempDir()
			if err := Init(clean, spec); err != nil {
				t.Fatal(err)
			}
			runAll(t, clean, spec)

			dir := t.TempDir()
			if err := Init(dir, spec); err != nil {
				t.Fatal(err)
			}
			failpoint.Arm("job/shard-truncate", 2)
			err := Run(dir, 0, RunOptions{})
			if !errors.Is(err, failpoint.ErrCrash) {
				t.Fatalf("injected run returned %v, want simulated crash", err)
			}
			if err := Resume(dir, 0, RunOptions{}); err != nil {
				t.Fatalf("resume over truncated shard: %v", err)
			}
			os.Remove(ShardPath(dir, 0, spec.ShardFormat()) + ".quarantine")
			res, err := Verify(dir, VerifyOptions{All: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("resumed job reports faults: %v", res.Faults)
			}
			assertShardsAndMergeEqual(t, clean, dir, spec)
		})
	}
}

// TestTornManifestRepair routes the torn-manifest case through the
// failpoint harness: a manifest truncated mid-JSON (as disk rot, not an
// atomic writer, leaves it) fails loudly everywhere, and repair rebuilds
// it from the spec and the shard bytes that still match — regenerating
// only the unmatched suffix.
func TestTornManifestRepair(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 51,
		PEs: 2, ChunksPerPE: 3, Workers: 1, Format: "text.gz"}
	clean := t.TempDir()
	if err := Init(clean, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, clean, spec)

	dir := t.TempDir()
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	failpoint.Arm("job/manifest-truncate", 4)
	err := Run(dir, 0, RunOptions{})
	if !errors.Is(err, failpoint.ErrCrash) {
		t.Fatalf("injected run returned %v, want simulated crash", err)
	}
	if _, err := ReadManifest(ManifestPath(dir, 0), spec); err == nil {
		t.Fatal("truncated manifest read back clean")
	}
	// Resume refuses: the manifest is unreadable, not merely behind.
	if err := Resume(dir, 0, RunOptions{}); err == nil {
		t.Fatal("resume over a torn manifest succeeded")
	}
	res, err := Verify(dir, VerifyOptions{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) == 0 || res.Faults[0].Reason != FaultManifest {
		t.Fatalf("want a manifest fault, got %v", res.Faults)
	}
	rep, err := Repair(dir, res.Faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorkersRebuilt != 1 || len(rep.Unrepaired) != 0 {
		t.Fatalf("repair: %+v", rep)
	}
	after, err := Verify(dir, VerifyOptions{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if !after.OK() {
		t.Fatalf("faults survive repair: %v", after.Faults)
	}
	assertShardsAndMergeEqual(t, clean, dir, spec)
}

// TestCrashBeforeManifestRename: a crash in the window between the
// manifest temp file's fsync and its rename leaves the previous manifest
// in place and a durable .tmp beside it — resume must pick up from the
// previous checkpoint and stay byte-identical.
func TestCrashBeforeManifestRename(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	spec := Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 61,
		PEs: 2, ChunksPerPE: 3, Workers: 1, Format: "binary"}
	clean := t.TempDir()
	if err := Init(clean, spec); err != nil {
		t.Fatal(err)
	}
	runAll(t, clean, spec)

	dir := t.TempDir()
	if err := Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	failpoint.Arm("job/crash-before-rename", 4)
	err := Run(dir, 0, RunOptions{})
	if !errors.Is(err, failpoint.ErrCrash) {
		t.Fatalf("injected run returned %v, want simulated crash", err)
	}
	if _, err := os.Stat(ManifestPath(dir, 0) + ".tmp"); err != nil {
		t.Fatalf("crash-before-rename left no durable .tmp: %v", err)
	}
	if err := Resume(dir, 0, RunOptions{}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	res, err := Verify(dir, VerifyOptions{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("resumed job reports faults: %v", res.Faults)
	}
	assertShardsAndMergeEqual(t, clean, dir, spec)
}
