// Package merkle implements the binary SHA-256 hash tree behind the
// job runner's tamper-evident chunk manifests: the leaves are per-chunk
// payload digests, the root is a single 32-byte commitment to a PE's
// entire shard, and an inclusion proof lets a verifier check one
// re-derived chunk against the root in O(log chunks) hashes without
// reading any other chunk.
//
// Leaf and internal nodes are domain-separated (0x00 and 0x01 prefixes,
// as in RFC 6962) so an internal node can never be replayed as a leaf.
// A level with an odd node count promotes its last node unchanged; with
// the domain separation in place the promotion is unambiguous because
// node positions are fixed by the leaf count, which the manifest pins.
package merkle

import "crypto/sha256"

// Digest is a SHA-256 digest — both the leaf input (a chunk's payload
// digest) and every tree node.
type Digest = [sha256.Size]byte

// leafNode wraps a leaf digest into its level-0 tree node.
func leafNode(d Digest) Digest {
	var buf [1 + sha256.Size]byte
	buf[0] = 0x00
	copy(buf[1:], d[:])
	return sha256.Sum256(buf[:])
}

// Node combines two child nodes into their parent.
func Node(left, right Digest) Digest {
	var buf [1 + 2*sha256.Size]byte
	buf[0] = 0x01
	copy(buf[1:], left[:])
	copy(buf[1+sha256.Size:], right[:])
	return sha256.Sum256(buf[:])
}

// Root returns the tree root over the leaves. A single leaf's root is
// its wrapped leaf node; the root of zero leaves is the zero digest (no
// PE commits a shard with zero chunks).
func Root(leaves []Digest) Digest {
	if len(leaves) == 0 {
		return Digest{}
	}
	level := make([]Digest, len(leaves))
	for i, l := range leaves {
		level[i] = leafNode(l)
	}
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, Node(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// Step is one level of an inclusion proof: the sibling node to combine
// with, and which side of the running hash it sits on.
type Step struct {
	Sibling Digest
	// Right reports that the sibling is the right child (the running
	// hash is the left one).
	Right bool
}

// Proof returns the inclusion proof of leaf index in the tree over
// leaves, or nil if index is out of range. Levels where the node is
// promoted (odd tail) contribute no step.
func Proof(leaves []Digest, index int) []Step {
	if index < 0 || index >= len(leaves) {
		return nil
	}
	level := make([]Digest, len(leaves))
	for i, l := range leaves {
		level[i] = leafNode(l)
	}
	var steps []Step
	i := index
	for len(level) > 1 {
		if sib := i ^ 1; sib < len(level) {
			steps = append(steps, Step{Sibling: level[sib], Right: i&1 == 0})
		}
		next := level[:0]
		for j := 0; j+1 < len(level); j += 2 {
			next = append(next, Node(level[j], level[j+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		i /= 2
	}
	return steps
}

// VerifyProof reports whether leaf, carried up through proof, reproduces
// root.
func VerifyProof(leaf Digest, proof []Step, root Digest) bool {
	h := leafNode(leaf)
	for _, s := range proof {
		if s.Right {
			h = Node(h, s.Sibling)
		} else {
			h = Node(s.Sibling, h)
		}
	}
	return h == root
}
