package merkle

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func leavesOf(n int) []Digest {
	leaves := make([]Digest, n)
	for i := range leaves {
		leaves[i] = sha256.Sum256([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return leaves
}

func TestRootShapes(t *testing.T) {
	if Root(nil) != (Digest{}) {
		t.Error("empty tree root is not the zero digest")
	}
	one := leavesOf(1)
	if Root(one) != leafNode(one[0]) {
		t.Error("single-leaf root is not the wrapped leaf")
	}
	two := leavesOf(2)
	if Root(two) != Node(leafNode(two[0]), leafNode(two[1])) {
		t.Error("two-leaf root is not the node over both leaves")
	}
	// Odd promotion: with three leaves the last is promoted unchanged.
	three := leavesOf(3)
	want := Node(Node(leafNode(three[0]), leafNode(three[1])), leafNode(three[2]))
	if Root(three) != want {
		t.Error("three-leaf root does not promote the odd tail")
	}
}

func TestDomainSeparation(t *testing.T) {
	// A leaf whose digest equals an internal node's must not produce the
	// same tree node — the 0x00/0x01 prefixes keep the domains apart.
	l := leavesOf(2)
	inner := Node(leafNode(l[0]), leafNode(l[1]))
	if leafNode(inner) == inner {
		t.Error("leaf wrapping is the identity — no domain separation")
	}
}

func TestProofRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 64, 65} {
		leaves := leavesOf(n)
		root := Root(leaves)
		for i := 0; i < n; i++ {
			proof := Proof(leaves, i)
			if !VerifyProof(leaves[i], proof, root) {
				t.Fatalf("n=%d: proof for leaf %d does not verify", n, i)
			}
			// The proof must bind the leaf: any other leaf fails with it.
			wrong := sha256.Sum256([]byte("not the leaf"))
			if VerifyProof(wrong, proof, root) {
				t.Fatalf("n=%d: proof for leaf %d verifies a foreign leaf", n, i)
			}
		}
	}
}

func TestProofRejectsWrongIndex(t *testing.T) {
	leaves := leavesOf(5)
	if Proof(leaves, -1) != nil || Proof(leaves, 5) != nil {
		t.Error("out-of-range proof index did not return nil")
	}
	// A proof for one index must not verify another index's leaf (except
	// where the tree genuinely places the same value, which distinct
	// leaves here rule out).
	root := Root(leaves)
	for i := range leaves {
		p := Proof(leaves, i)
		for j := range leaves {
			if i != j && VerifyProof(leaves[j], p, root) {
				t.Fatalf("proof for %d verifies leaf %d", i, j)
			}
		}
	}
}

func TestRootDependsOnEveryLeaf(t *testing.T) {
	leaves := leavesOf(9)
	root := Root(leaves)
	for i := range leaves {
		mutated := append([]Digest(nil), leaves...)
		mutated[i][0] ^= 0x01
		if Root(mutated) == root {
			t.Fatalf("flipping a bit of leaf %d left the root unchanged", i)
		}
	}
	// Order matters too.
	swapped := append([]Digest(nil), leaves...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if Root(swapped) == root {
		t.Error("swapping two leaves left the root unchanged")
	}
}
