// Package obs is the repo's zero-dependency observability layer:
// structured logging on log/slog, lightweight span tracing exported as
// Chrome trace-event JSON, and build metadata. Everything is stdlib
// only, and every hook is designed so the disabled path costs a nil
// check or a single atomic load — the generation hot path (see
// BENCH_kagen.json) must not notice the instrumentation exists.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime/debug"
	"strings"
	"sync/atomic"
)

// level is the process-wide log level, shared by every handler ever
// configured so Enabled checks stay a single atomic load.
var level slog.LevelVar

// logger is the process logger. Replaced wholesale by Configure;
// loaded on every Logger call so components configured before
// Configure still pick up the final destination.
var logger atomic.Pointer[slog.Logger]

func init() {
	level.Set(slog.LevelWarn) // quiet by default: CLI runs log only trouble
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &level})
	logger.Store(slog.New(h))
}

// Configure sets the process log level ("debug", "info", "warn",
// "error") and format ("text" or "json"), writing to w (os.Stderr when
// nil). It is meant to be called once from main before serving
// traffic; later Logger calls observe the new configuration.
func Configure(levelName, format string, w io.Writer) error {
	var l slog.Level
	switch strings.ToLower(levelName) {
	case "debug":
		l = slog.LevelDebug
	case "info":
		l = slog.LevelInfo
	case "warn", "warning":
		l = slog.LevelWarn
	case "error":
		l = slog.LevelError
	default:
		return fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", levelName)
	}
	if w == nil {
		w = os.Stderr
	}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, &slog.HandlerOptions{Level: &level})
	case "json":
		h = slog.NewJSONHandler(w, &slog.HandlerOptions{Level: &level})
	default:
		return fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	level.Set(l)
	logger.Store(slog.New(h))
	return nil
}

// SetLevel adjusts the process log level without replacing the handler.
func SetLevel(l slog.Level) { level.Set(l) }

// Logger returns the process logger scoped to a component ("job",
// "serve", "storage", ...). Callers should fetch one per operation
// (request, job run), not per event: the child derivation allocates,
// the subsequent Enabled checks do not.
func Logger(component string) *slog.Logger {
	return logger.Load().With("component", component)
}

// BuildInfo reports the module version and Go toolchain of the running
// binary, via debug.ReadBuildInfo. Version is "devel" for non-module
// builds (go test, go run).
func BuildInfo() (version, goVersion string) {
	version, goVersion = "devel", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				version = s.Value[:12]
			}
		}
	}
	return version, goVersion
}
