package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestConfigureJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Configure("info", "json", &buf); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	defer func() {
		if err := Configure("warn", "text", nil); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}()

	log := Logger("job")
	log.Info("worker starting", "worker", uint64(3), "dir", "/tmp/j")
	log.Debug("suppressed") // below level

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1 (debug suppressed): %s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[0])
	}
	for _, k := range []string{"time", "level", "msg", "component", "worker", "dir"} {
		if _, ok := rec[k]; !ok {
			t.Fatalf("JSON log line missing key %q: %s", k, lines[0])
		}
	}
	if rec["component"] != "job" {
		t.Fatalf("component = %v, want job", rec["component"])
	}
	if rec["msg"] != "worker starting" {
		t.Fatalf("msg = %v", rec["msg"])
	}
}

func TestConfigureRejectsUnknown(t *testing.T) {
	if err := Configure("loud", "text", nil); err == nil {
		t.Fatal("Configure accepted unknown level")
	}
	if err := Configure("info", "xml", nil); err == nil {
		t.Fatal("Configure accepted unknown format")
	}
}

// TestDisabledLogCheap pins the guarded hot-path pattern: when the
// level is above Debug, the Enabled probe must not allocate.
func TestDisabledLogCheap(t *testing.T) {
	if err := Configure("warn", "text", nil); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	log := Logger("bench")
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		if log.Enabled(ctx, slog.LevelDebug) {
			log.Debug("never")
		}
	}); n != 0 {
		t.Fatalf("disabled log probe allocates %v allocs/op, want 0", n)
	}
}

func TestBuildInfo(t *testing.T) {
	version, goVersion := BuildInfo()
	if version == "" || goVersion == "" {
		t.Fatalf("BuildInfo returned empty fields: %q %q", version, goVersion)
	}
}
