package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// Span tracing is deliberately minimal: a Trace is a fixed-capacity
// event arena with an atomic reservation cursor. Ending a span costs
// one atomic add plus a struct store into a pre-allocated slot; there
// is no locking, no channel, no background goroutine. A nil *Trace is
// the disabled state — Start and End on it are a nil check and return,
// so call sites never branch on an "enabled" flag themselves.
//
// Exporting requires quiescence: WriteJSON must not run concurrently
// with Span.End. Every caller in the repo exports only after the
// traced operation has joined its goroutines (job.Run returns,
// storage Finalize/Close waits on part uploads).

// Attr is a span attribute: a string or uint64 value under a key.
type Attr struct {
	Key string
	Str string
	U64 uint64
	num bool
}

// Str returns a string-valued span attribute.
func Str(k, v string) Attr { return Attr{Key: k, Str: v} }

// U64 returns an integer-valued span attribute.
func U64(k string, v uint64) Attr { return Attr{Key: k, U64: v, num: true} }

// Event is one completed span.
type Event struct {
	Name   string
	Cat    string
	TID    uint64 // display lane (Chrome "thread")
	ID     uint64 // span id, unique within the trace, 1-based
	Parent uint64 // parent span id, 0 for roots
	Start  int64  // ns since the trace epoch (monotonic)
	Dur    int64  // ns
	Attrs  []Attr
}

// Trace collects completed spans. Construct with NewTrace; the zero
// value and the nil pointer are both valid disabled traces.
type Trace struct {
	epoch  time.Time // wall + monotonic anchor for every timestamp
	events []Event
	next   atomic.Uint64 // span id allocator
	widx   atomic.Uint64 // reservation cursor into events
	drops  atomic.Uint64 // spans discarded because events was full
	parent atomic.Uint64 // default parent for spans started without one
}

// DefaultTraceCap bounds a trace to a fixed memory footprint
// (~96 B/slot); beyond it spans are counted as dropped, never blocked.
const DefaultTraceCap = 1 << 16

// NewTrace returns an enabled trace holding at most capEvents spans
// (DefaultTraceCap when <= 0).
func NewTrace(capEvents int) *Trace {
	if capEvents <= 0 {
		capEvents = DefaultTraceCap
	}
	return &Trace{epoch: time.Now(), events: make([]Event, capEvents)}
}

// Span is an in-flight span. The zero Span (from a nil Trace) is
// inert: End on it is a no-op, and using it as a parent means "default
// parent".
type Span struct {
	t        *Trace
	name     string
	cat      string
	id       uint64
	parentID uint64
	tid      uint64
	start    int64
}

// Start opens a span on lane tid under the given parent (the zero Span
// defers to the trace's default parent). Safe on a nil Trace.
func (t *Trace) Start(cat, name string, tid uint64, parent Span) Span {
	if t == nil {
		return Span{}
	}
	p := parent.id
	if p == 0 {
		p = t.parent.Load()
	}
	return Span{
		t: t, name: name, cat: cat, tid: tid,
		id: t.next.Add(1), parentID: p,
		start: int64(time.Since(t.epoch)),
	}
}

// End completes the span, recording its duration and attributes.
// Safe on the zero Span.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	end := int64(time.Since(s.t.epoch))
	i := s.t.widx.Add(1) - 1
	if i >= uint64(len(s.t.events)) {
		s.t.drops.Add(1)
		return
	}
	s.t.events[i] = Event{
		Name: s.name, Cat: s.cat, TID: s.tid,
		ID: s.id, Parent: s.parentID,
		Start: s.start, Dur: end - s.start, Attrs: attrs,
	}
}

// ID reports the span's trace-unique id (0 for the zero Span).
func (s Span) ID() uint64 { return s.id }

// SetDefaultParent makes sp the parent of spans subsequently started
// with a zero parent — used to nest storage-layer spans under the
// current worker span without threading a Span through the Backend
// interface. Safe on a nil Trace.
func (t *Trace) SetDefaultParent(sp Span) {
	if t != nil {
		t.parent.Store(sp.id)
	}
}

// Len reports the number of completed spans recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	n := t.widx.Load()
	if n > uint64(len(t.events)) {
		n = uint64(len(t.events))
	}
	return int(n)
}

// Dropped reports spans discarded because the trace was full.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.drops.Load()
}

// Events returns the completed spans (a view into the arena; do not
// mutate). Requires quiescence, like WriteJSON.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events[:t.Len()]
}

// active is the process-global trace used by layers that cannot be
// handed one explicitly (the storage backends). Nil when tracing is
// off — which is the common case, so the hot-path probe is one atomic
// pointer load.
var active atomic.Pointer[Trace]

// SetActive installs (or, with nil, clears) the process-global trace.
func SetActive(t *Trace) { active.Store(t) }

// Active returns the process-global trace, nil when tracing is off.
func Active() *Trace { return active.Load() }

// Display lanes. Chrome trace viewers group events into per-"thread"
// rows; spans that can overlap in time must not share a lane or the
// viewer nests them by stack. Generation and upload spans are striped
// across a few lanes each so concurrent chunks stay readable.
const (
	LaneWorker  uint64 = 0       // worker / job / merge lifecycle spans
	lanePEBase  uint64 = 1       // one lane per PE: lanePEBase + pe
	laneGenBase uint64 = 1 << 20 // chunk generation, striped
	laneUpBase  uint64 = 1 << 21 // part uploads, striped
	laneStripes        = 8
)

// PELane returns the display lane for a PE's commit-side spans.
func PELane(pe uint64) uint64 { return lanePEBase + pe }

// GenLane returns the display lane for a chunk-generation span.
func GenLane(chunk uint64) uint64 { return laneGenBase + chunk%laneStripes }

// UploadLane returns the display lane for a part-upload span.
func UploadLane(part uint64) uint64 { return laneUpBase + part%laneStripes }

// laneName names a lane for the exported thread metadata.
func laneName(tid uint64) string {
	switch {
	case tid == LaneWorker:
		return "worker"
	case tid >= laneUpBase:
		return "upload-" + utoa(tid-laneUpBase)
	case tid >= laneGenBase:
		return "generate-" + utoa(tid-laneGenBase)
	default:
		return "pe " + utoa(tid-lanePEBase)
	}
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Chrome trace-event JSON (the "JSON Array Format" with an object
// wrapper): one complete event (ph "X") per span, timestamps in
// microseconds anchored to the trace's wall-clock epoch so traces from
// separate workers of one job merge onto a common timeline, plus
// thread_name metadata so Perfetto labels the lanes.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	// Dur has no omitempty: a complete ("X") event needs an explicit dur
	// even when truncation makes it 0µs.
	Dur  int64          `json:"dur"`
	PID  uint64         `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteJSON exports the trace as Chrome trace-event JSON. Requires
// quiescence (no concurrent Span.End). Safe on a nil Trace (writes an
// empty trace).
func (t *Trace) WriteJSON(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if t != nil {
		base := t.epoch.UnixMicro()
		lanes := make(map[uint64]bool)
		for _, e := range t.Events() {
			if !lanes[e.TID] {
				lanes[e.TID] = true
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", PID: 1, TID: e.TID,
					Args: map[string]any{"name": laneName(e.TID)},
				})
			}
			args := map[string]any{"id": e.ID}
			if e.Parent != 0 {
				args["parent"] = e.Parent
			}
			for _, a := range e.Attrs {
				if a.num {
					args[a.Key] = a.U64
				} else {
					args[a.Key] = a.Str
				}
			}
			// Integer microsecond math, truncating start and end the same
			// way: truncation is monotone, so child spans stay contained in
			// their parents even at sub-microsecond durations — a float ts
			// anchored at UnixMicro (~1.7e15) only resolves ~0.25µs and can
			// invert nesting by rounding.
			ts := base + e.Start/1e3
			end := base + (e.Start+e.Dur)/1e3
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Name, Cat: e.Cat, Ph: "X",
				TS:  ts,
				Dur: end - ts,
				PID: 1, TID: e.TID, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
