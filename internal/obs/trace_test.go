package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// decodeTrace parses exported Chrome trace JSON back into a usable
// shape for assertions.
type decodedEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  uint64         `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args"`
}

func decodeTrace(t *testing.T, b []byte) []decodedEvent {
	t.Helper()
	var out struct {
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		TraceEvents     []decodedEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", out.DisplayTimeUnit)
	}
	return out.TraceEvents
}

// TestTraceRoundTrip emits a nested span tree, exports it, parses the
// JSON back, and checks parent/child nesting and timestamp sanity.
func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace(64)
	worker := tr.Start("job", "worker", LaneWorker, Span{})
	pe := tr.Start("job", "pe", PELane(3), worker)
	gen := tr.Start("job", "chunk-generate", GenLane(3), pe)
	gen.End(U64("chunk", 3))
	commit := tr.Start("job", "chunk-commit", PELane(3), pe)
	commit.End(U64("chunk", 3), U64("edges", 17))
	pe.End(U64("pe", 3))
	worker.End(Str("dir", "/tmp/j"), U64("worker", 0))

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())

	byName := map[string]decodedEvent{}
	for _, e := range events {
		if e.Ph == "X" {
			byName[e.Name] = e
		}
	}
	for _, want := range []string{"worker", "pe", "chunk-generate", "chunk-commit"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("exported trace missing span %q", want)
		}
	}

	id := func(e decodedEvent, k string) uint64 {
		v, ok := e.Args[k].(float64)
		if !ok {
			return 0
		}
		return uint64(v)
	}
	// Parent/child identity: pe under worker, generate and commit under pe.
	if got, want := id(byName["pe"], "parent"), id(byName["worker"], "id"); got != want {
		t.Fatalf("pe parent = %d, want worker id %d", got, want)
	}
	for _, child := range []string{"chunk-generate", "chunk-commit"} {
		if got, want := id(byName[child], "parent"), id(byName["pe"], "id"); got != want {
			t.Fatalf("%s parent = %d, want pe id %d", child, got, want)
		}
	}
	// Time containment: each child's [ts, ts+dur] inside its parent's.
	contains := func(outer, inner decodedEvent) bool {
		return inner.TS >= outer.TS && inner.TS+inner.Dur <= outer.TS+outer.Dur
	}
	if !contains(byName["worker"], byName["pe"]) {
		t.Fatalf("pe span not contained in worker span")
	}
	if !contains(byName["pe"], byName["chunk-commit"]) {
		t.Fatalf("chunk-commit span not contained in pe span")
	}
	// Attributes survive the round trip.
	if got := id(byName["chunk-commit"], "edges"); got != 17 {
		t.Fatalf("chunk-commit edges attr = %d, want 17", got)
	}
	if got, _ := byName["worker"].Args["dir"].(string); got != "/tmp/j" {
		t.Fatalf("worker dir attr = %q, want /tmp/j", got)
	}
	// Spans are recorded in End order, so exported start timestamps need
	// not ascend globally — but within a lane, and for the completion
	// order itself, time must be monotone and non-negative.
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		if e.Dur < 0 {
			t.Fatalf("span %q has negative duration %g", e.Name, e.Dur)
		}
		if e.TS <= 0 {
			t.Fatalf("span %q has non-positive timestamp %g", e.Name, e.TS)
		}
	}
	// Every lane used got a thread_name metadata record.
	named := map[uint64]bool{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "thread_name" {
			named[e.TID] = true
		}
	}
	for _, e := range events {
		if e.Ph == "X" && !named[e.TID] {
			t.Fatalf("lane %d has spans but no thread_name metadata", e.TID)
		}
	}
}

// TestTraceMonotonicEndOrder checks that the recorded events' end
// times (start+dur) are non-decreasing in arena order: End commits the
// slot, so arena order is completion order.
func TestTraceMonotonicEndOrder(t *testing.T) {
	tr := NewTrace(16)
	for i := 0; i < 8; i++ {
		tr.Start("t", "s", LaneWorker, Span{}).End()
	}
	events := tr.Events()
	if len(events) != 8 {
		t.Fatalf("Len = %d, want 8", len(events))
	}
	prev := int64(-1)
	for i, e := range events {
		end := e.Start + e.Dur
		if end < prev {
			t.Fatalf("event %d ends at %d ns, before previous end %d", i, end, prev)
		}
		prev = end
	}
}

func TestTraceDefaultParent(t *testing.T) {
	tr := NewTrace(8)
	worker := tr.Start("job", "worker", LaneWorker, Span{})
	tr.SetDefaultParent(worker)
	up := tr.Start("storage", "upload-part", UploadLane(2), Span{})
	up.End()
	worker.End()
	events := tr.Events()
	if events[0].Name != "upload-part" || events[0].Parent != worker.ID() {
		t.Fatalf("upload-part parent = %d, want default parent %d", events[0].Parent, worker.ID())
	}
}

func TestTraceDropsWhenFull(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 5; i++ {
		tr.Start("t", "s", LaneWorker, Span{}).End()
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want cap 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on full trace: %v", err)
	}
}

// TestTraceConcurrent hammers span emission from many goroutines under
// the race detector: reservation is atomic, slots are disjoint.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 256; i++ {
				s := tr.Start("t", "s", GenLane(uint64(i)), Span{})
				s.End(U64("g", uint64(g)), U64("i", uint64(i)))
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 2048 {
		t.Fatalf("Len = %d, want 2048", tr.Len())
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
}

// TestDisabledTraceNoAllocs pins the disabled path: a nil *Trace and
// the zero Span must cost no allocations at all.
func TestDisabledTraceNoAllocs(t *testing.T) {
	var tr *Trace
	if n := testing.AllocsPerRun(1000, func() {
		s := tr.Start("job", "pe", PELane(1), Span{})
		s.End()
	}); n != 0 {
		t.Fatalf("disabled span path allocates %v allocs/op, want 0", n)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatalf("nil trace accessors not inert")
	}
}

func TestNilTraceWriteJSON(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil trace: %v", err)
	}
	if events := decodeTrace(t, buf.Bytes()); len(events) != 0 {
		t.Fatalf("nil trace exported %d events, want 0", len(events))
	}
}
