package pe

import (
	"fmt"
	"testing"
)

// BenchmarkStreamThroughput pins the per-item cost of the batch pipeline:
// P PEs emit into a counting consumer through pooled batches. Steady-state
// streaming must stay allocation-free per item — the allocs/op of a run
// are a small constant (per-PE closures and pool warm-up), not a function
// of the item count.
func BenchmarkStreamThroughput(b *testing.B) {
	const P = 16
	const itemsPer = 1 << 14
	produce := func(pe int, emit func(int)) {
		base := pe * itemsPer
		for i := 0; i < itemsPer; i++ {
			emit(base + i)
		}
	}
	for _, workers := range []int{1, 4} {
		for _, batchSize := range []int{256, DefaultBatchSize} {
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batchSize), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(P * itemsPer * 8) // items moved per run, as bytes
				for i := 0; i < b.N; i++ {
					total := 0
					err := StreamBatched(P, workers, batchSize, produce,
						func(pe int, batch []int, final bool) error {
							total += len(batch)
							return nil
						})
					if err != nil {
						b.Fatal(err)
					}
					if total != P*itemsPer {
						b.Fatalf("streamed %d items, want %d", total, P*itemsPer)
					}
				}
			})
		}
	}
}
