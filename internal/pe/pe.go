// Package pe executes logical processing entities (PEs) on a bounded pool
// of worker goroutines. It is the stand-in for the MPI layer of the paper:
// because the generators are communication-free, a PE is a pure function of
// (seed, P, peID), so the number of workers and the execution order must
// not influence the output — a property the test suite verifies for every
// generator.
//
// Per-PE wall-clock durations are recorded so experiments can report the
// "simulated parallel time" max_i T_i, which is the quantity an actual
// distributed run (one PE per core) would measure.
package pe

import (
	"runtime"
	"sync"
	"time"
)

// Run executes fn(pe) for every pe in [0, P) using at most workers
// goroutines. workers <= 0 selects GOMAXPROCS.
func Run(P, workers int, fn func(pe int)) {
	ForEach(P, workers, func(pe int) struct{} {
		fn(pe)
		return struct{}{}
	})
}

// ForEach executes fn(pe) for every pe in [0, P) on a bounded worker pool
// and returns the results indexed by PE id.
func ForEach[T any](P, workers int, fn func(pe int) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > P {
		workers = P
	}
	out := make([]T, P)
	if P == 0 {
		return out
	}
	if workers <= 1 {
		for i := 0; i < P; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= P {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Timing captures per-PE execution times of one run.
type Timing struct {
	PerPE []time.Duration
}

// Timed runs fn on all PEs like Run and records each PE's wall time.
func Timed(P, workers int, fn func(pe int)) Timing {
	durs := ForEach(P, workers, func(pe int) time.Duration {
		start := time.Now()
		fn(pe)
		return time.Since(start)
	})
	return Timing{PerPE: durs}
}

// Max returns the simulated parallel makespan: the maximum PE time, i.e.
// the wall time a real distributed run with one PE per processor needs.
func (t Timing) Max() time.Duration {
	var mx time.Duration
	for _, d := range t.PerPE {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Sum returns the total work, the sum of all PE times.
func (t Timing) Sum() time.Duration {
	var s time.Duration
	for _, d := range t.PerPE {
		s += d
	}
	return s
}

// Avg returns the mean PE time.
func (t Timing) Avg() time.Duration {
	if len(t.PerPE) == 0 {
		return 0
	}
	return t.Sum() / time.Duration(len(t.PerPE))
}

// Imbalance returns Max/Avg, the load-balance factor (1.0 is perfect).
func (t Timing) Imbalance() float64 {
	avg := t.Avg()
	if avg == 0 {
		return 1
	}
	return float64(t.Max()) / float64(avg)
}
