package pe

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachAllPEsRunOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const P = 37
		var counts [P]int64
		Run(P, workers, func(pe int) {
			atomic.AddInt64(&counts[pe], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: PE %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachResultsIndexed(t *testing.T) {
	out := ForEach(20, 4, func(pe int) int { return pe * pe })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestForEachZeroPEs(t *testing.T) {
	out := ForEach(0, 4, func(pe int) int { return 1 })
	if len(out) != 0 {
		t.Fatal("expected empty result")
	}
}

func TestForEachWorkerIndependence(t *testing.T) {
	// Deterministic pure function: result must not depend on worker count.
	f := func(pe int) uint64 {
		x := uint64(pe) * 0x9e3779b97f4a7c15
		x ^= x >> 31
		return x
	}
	base := ForEach(64, 1, f)
	for _, workers := range []int{2, 3, 8, 64} {
		got := ForEach(64, workers, f)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d changed result at PE %d", workers, i)
			}
		}
	}
}

func TestTiming(t *testing.T) {
	timing := Timed(4, 4, func(pe int) {
		time.Sleep(time.Duration(pe+1) * time.Millisecond)
	})
	if len(timing.PerPE) != 4 {
		t.Fatalf("got %d timings", len(timing.PerPE))
	}
	if timing.Max() < timing.Avg() {
		t.Error("max < avg")
	}
	if timing.Max() < 4*time.Millisecond {
		t.Errorf("max %v, want >= 4ms", timing.Max())
	}
	if timing.Sum() < timing.Max() {
		t.Error("sum < max")
	}
	if timing.Imbalance() < 1 {
		t.Errorf("imbalance %v < 1", timing.Imbalance())
	}
}

func TestTimingEmpty(t *testing.T) {
	var timing Timing
	if timing.Max() != 0 || timing.Sum() != 0 || timing.Avg() != 0 {
		t.Error("empty timing should be zero")
	}
	if timing.Imbalance() != 1 {
		t.Error("empty imbalance should be 1")
	}
}
