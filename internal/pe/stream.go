package pe

import (
	"runtime"
	"sync"
)

// Stream executes produce(pe, emit) for every pe in [0, P) on a bounded
// worker pool and hands each PE's emitted items to consume — exactly once
// per PE, in increasing PE order, regardless of the worker count or the
// completion order. It is the parallel streaming runtime: generation runs
// concurrently into per-worker buffers while the sink observes the same
// deterministic sequence a serial run would produce.
//
// At most 2*workers chunks are admitted beyond the delivery head, so the
// buffered item count is bounded by the window times the largest chunk —
// the whole output is never materialized at once.
//
// consume runs on whichever worker completes the head chunk; calls never
// overlap. The first error returned by consume stops the run: no further
// chunks are started or delivered, and the error is returned. A PE whose
// produce is already running completes into its buffer, which is then
// discarded.
func Stream[T any](P, workers int, produce func(pe int, emit func(T)), consume func(pe int, chunk []T) error) error {
	if P <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > P {
		workers = P
	}
	if workers <= 1 {
		for i := 0; i < P; i++ {
			var buf []T
			produce(i, func(item T) { buf = append(buf, item) })
			if err := consume(i, buf); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu         sync.Mutex
		cond       = sync.NewCond(&mu)
		next, head int
		pending    = make(map[int][]T)
		delivering bool
		firstErr   error
	)
	window := 2 * workers

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for firstErr == nil && next < P && next >= head+window {
					cond.Wait()
				}
				if firstErr != nil || next >= P {
					mu.Unlock()
					return
				}
				pe := next
				next++
				mu.Unlock()

				var buf []T
				produce(pe, func(item T) { buf = append(buf, item) })

				mu.Lock()
				if firstErr != nil {
					mu.Unlock()
					return
				}
				pending[pe] = buf
				// Drain every pending chunk at the delivery head. Only one
				// worker delivers at a time; the mutex is released around
				// the sink call so other workers keep generating.
				for firstErr == nil && !delivering {
					chunk, ok := pending[head]
					if !ok {
						break
					}
					delete(pending, head)
					h := head
					delivering = true
					mu.Unlock()
					err := consume(h, chunk)
					mu.Lock()
					delivering = false
					head++
					if err != nil && firstErr == nil {
						firstErr = err
					}
					cond.Broadcast()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}
