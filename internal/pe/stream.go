package pe

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultBatchSize is the batch capacity used by Stream: 4096 items keeps
// a batch of 16-byte edges at 64 KiB — large enough to amortize the
// per-batch synchronization to noise, small enough that the pipeline's
// buffered footprint stays tiny compared to whole chunks.
const DefaultBatchSize = 4096

// maxQueuedBatches bounds the batch list queued for one not-yet-delivered
// PE. A producer that runs this far ahead of the delivery head blocks
// until the head catches up, which caps the pipeline's buffered items at
// window * maxQueuedBatches * batchSize regardless of chunk sizes.
const maxQueuedBatches = 16

// Stream executes produce(pe, emit) for every pe in [0, P) on a bounded
// worker pool and hands the emitted items to consume in fixed-capacity
// batches — in increasing PE order, and within each PE in emission order,
// regardless of the worker count or the completion order. It is the
// parallel streaming runtime: generation runs concurrently into pooled
// batches while the sink observes the same deterministic item sequence a
// serial run would produce. Batch boundaries carry no meaning: the
// delivered concatenation is invariant under the batch size.
//
// consume receives each PE's batches in order; final marks the PE's last
// batch (a PE with no items gets exactly one final, empty batch). Batches
// are drawn from a sync.Pool and recycled after consume returns, so
// steady-state streaming performs no allocation; a batch is only valid
// during the consume call.
//
// The head PE's batches are flushed as they fill — while the chunk is
// still generating — so the pipeline's buffered footprint is bounded by
// window * maxQueuedBatches * batchSize items (window = 2*workers), not
// by the largest chunk. At most window chunks are admitted beyond the
// delivery head.
//
// consume runs on whichever worker owns the delivery head; calls never
// overlap. The first error returned by consume stops the run: no further
// batches are delivered, no further chunks are started, and the error is
// returned. A PE whose produce is already running completes, with its
// output discarded.
func Stream[T any](P, workers int, produce func(pe int, emit func(T)), consume func(pe int, batch []T, final bool) error) error {
	return StreamBatched(P, workers, DefaultBatchSize, produce, consume)
}

// StreamRange is Stream over the PE range [first, first+count): produce
// and consume receive absolute PE indices, delivery is in increasing PE
// order from first. It is the resumable entry point of the pipeline — a
// worker restarted mid-run re-enters at its checkpointed PE (or a PE at
// its checkpointed chunk, when chunks are the streamed unit) and streams
// only the remaining range, with the delivered item sequence identical to
// the corresponding suffix of a full run.
func StreamRange[T any](first, count, workers int, produce func(pe int, emit func(T)), consume func(pe int, batch []T, final bool) error) error {
	return StreamRangeBatched(first, count, workers, DefaultBatchSize, produce, consume)
}

// StreamRangeBatched is StreamRange with an explicit batch capacity (0 or
// negative selects DefaultBatchSize).
func StreamRangeBatched[T any](first, count, workers, batchSize int, produce func(pe int, emit func(T)), consume func(pe int, batch []T, final bool) error) error {
	if first == 0 {
		return StreamBatched(count, workers, batchSize, produce, consume)
	}
	return StreamBatched(count, workers, batchSize,
		func(pe int, emit func(T)) { produce(first+pe, emit) },
		func(pe int, batch []T, final bool) error { return consume(first+pe, batch, final) })
}

// StreamBatched is Stream with an explicit batch capacity (0 or negative
// selects DefaultBatchSize). The delivered item sequence is identical for
// every batch size; only the batch boundaries move.
func StreamBatched[T any](P, workers, batchSize int, produce func(pe int, emit func(T)), consume func(pe int, batch []T, final bool) error) error {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return streamBatched(P, workers, newBatchPool[T](batchSize), produce, consume)
}

// batchEntry is one queued delivery: a pooled batch and the final marker.
type batchEntry[T any] struct {
	batch *[]T
	final bool
}

// streamBatched runs the pipeline against an explicit pool (separated so
// the tests can audit that every borrowed batch is returned).
func streamBatched[T any](P, workers int, pool *batchPool[T], produce func(pe int, emit func(T)), consume func(pe int, batch []T, final bool) error) error {
	if P <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > P {
		workers = P
	}
	batchSize := pool.size

	if workers <= 1 {
		// Single-worker fallback: one pooled buffer is reused across every
		// PE — the serial path allocates exactly one batch for the whole
		// run instead of a fresh buffer per PE.
		pb := pool.get()
		defer pool.put(pb)
		var err error
		for i := 0; i < P && err == nil; i++ {
			pe := i
			buf := (*pb)[:0]
			produce(pe, func(item T) {
				if err != nil {
					return // sink already failed; drop the remainder
				}
				buf = append(buf, item)
				if len(buf) >= batchSize {
					err = consume(pe, buf, false)
					buf = buf[:0]
				}
			})
			if err == nil {
				err = consume(pe, buf, true)
			}
		}
		return err
	}

	var (
		mu         sync.Mutex
		cond       = sync.NewCond(&mu)
		next, head int
		queues     = make(map[int][]batchEntry[T])
		delivering bool
		firstErr   error
		failed     atomic.Bool
	)
	window := 2 * workers

	// drain delivers every queued entry at the delivery head, advancing
	// the head across completed PEs. Called with mu held; only one worker
	// delivers at a time, and the mutex is released around the consume
	// call so the other workers keep generating.
	drain := func() {
		if delivering {
			return
		}
		delivering = true
		for firstErr == nil {
			q := queues[head]
			if len(q) == 0 {
				break
			}
			e := q[0]
			if len(q) == 1 {
				delete(queues, head)
			} else {
				queues[head] = q[1:]
			}
			h := head
			if e.final {
				head++
			}
			mu.Unlock()
			err := consume(h, *e.batch, e.final)
			mu.Lock()
			pool.put(e.batch)
			if err != nil && firstErr == nil {
				firstErr = err
				failed.Store(true)
			}
			cond.Broadcast()
		}
		delivering = false
	}

	// flush queues one batch for delivery and returns a fresh batch (nil
	// after the final flush). A producer running too far ahead of the
	// delivery waits here: non-head PEs until the head catches up, the
	// head PE only while another worker owns the drain loop (the drainer
	// broadcasts after every consume and exits only on an empty queue, so
	// the wait always makes progress — and keeps queues[head] bounded even
	// against a sink slower than the generator). A head producer with no
	// active drainer never waits; it delivers its own backlog via drain.
	flush := func(pe int, b *[]T, final bool) *[]T {
		mu.Lock()
		for firstErr == nil && (pe != head || delivering) && len(queues[pe]) >= maxQueuedBatches {
			cond.Wait()
		}
		if firstErr != nil {
			mu.Unlock()
			pool.put(b)
			if final {
				return nil
			}
			return pool.get()
		}
		queues[pe] = append(queues[pe], batchEntry[T]{batch: b, final: final})
		if pe == head {
			drain()
		}
		mu.Unlock()
		if final {
			return nil
		}
		return pool.get()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for firstErr == nil && next < P && next >= head+window {
					cond.Wait()
				}
				if firstErr != nil || next >= P {
					mu.Unlock()
					return
				}
				pe := next
				next++
				mu.Unlock()

				pb := pool.get()
				buf := (*pb)[:0]
				produce(pe, func(item T) {
					if failed.Load() {
						buf = buf[:0] // sink already failed; drop the remainder
						return
					}
					buf = append(buf, item)
					if len(buf) >= batchSize {
						*pb = buf
						pb = flush(pe, pb, false)
						buf = (*pb)[:0]
					}
				})
				*pb = buf
				flush(pe, pb, true)
			}
		}()
	}
	wg.Wait()

	// After an aborted run, recycle whatever was queued but never
	// delivered so no batch leaks from the pool.
	for pe, q := range queues {
		for _, e := range q {
			pool.put(e.batch)
		}
		delete(queues, pe)
	}
	return firstErr
}

// batchPool hands out fixed-capacity batches backed by a sync.Pool and
// keeps a borrow count so the tests can verify that aborted runs return
// every batch.
type batchPool[T any] struct {
	pool     sync.Pool
	size     int
	borrowed atomic.Int64
}

func newBatchPool[T any](size int) *batchPool[T] {
	p := &batchPool[T]{size: size}
	p.pool.New = func() any {
		s := make([]T, 0, size)
		return &s
	}
	return p
}

func (p *batchPool[T]) get() *[]T {
	p.borrowed.Add(1)
	b := p.pool.Get().(*[]T)
	*b = (*b)[:0]
	return b
}

func (p *batchPool[T]) put(b *[]T) {
	if b == nil {
		return
	}
	p.borrowed.Add(-1)
	p.pool.Put(b)
}
