package pe

import (
	"fmt"
	"testing"
)

// TestStreamRangeMatchesSuffix: StreamRange delivers absolute PE indices
// and exactly the sub-sequence a full run would deliver for those PEs,
// for every split point and several worker counts.
func TestStreamRangeMatchesSuffix(t *testing.T) {
	const P = 7
	produce := func(pe int, emit func(string)) {
		for i := 0; i < pe%4+1; i++ {
			emit(fmt.Sprintf("pe%d-item%d", pe, i))
		}
	}
	collect := func(first, count, workers int) []string {
		var got []string
		err := StreamRangeBatched(first, count, workers, 2, produce,
			func(pe int, batch []string, final bool) error {
				for _, s := range batch {
					if want := fmt.Sprintf("pe%d-", pe); len(s) < len(want) || s[:len(want)] != want {
						t.Fatalf("item %q delivered under PE %d", s, pe)
					}
				}
				got = append(got, batch...)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	full := collect(0, P, 3)
	for first := 0; first <= P; first++ {
		for _, workers := range []int{1, 3} {
			head := collect(0, first, workers)
			tail := collect(first, P-first, workers)
			if len(head)+len(tail) != len(full) {
				t.Fatalf("split %d/w%d: %d+%d items, want %d", first, workers, len(head), len(tail), len(full))
			}
			for i := range full {
				var got string
				if i < len(head) {
					got = head[i]
				} else {
					got = tail[i-len(head)]
				}
				if got != full[i] {
					t.Fatalf("split %d/w%d: item %d = %q, want %q", first, workers, i, got, full[i])
				}
			}
		}
	}
}
