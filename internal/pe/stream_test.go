package pe

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// produceSquares emits pe*itemsPer..(pe+1)*itemsPer-1 for each PE, with a
// random delay so completion order differs from PE order.
func produceSquares(itemsPer int, jitter bool) func(pe int, emit func(int)) {
	return func(pe int, emit func(int)) {
		if jitter {
			time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
		}
		for i := 0; i < itemsPer; i++ {
			emit(pe*itemsPer + i)
		}
	}
}

// collectBatched streams with an explicit batch size and asserts the sink
// protocol: batches only for the delivery head, finals in PE order.
func collectBatched(t *testing.T, P, workers, batchSize, itemsPer int, jitter bool) []int {
	t.Helper()
	var got []int
	lastPE := -1
	err := StreamBatched(P, workers, batchSize, produceSquares(itemsPer, jitter),
		func(pe int, batch []int, final bool) error {
			if pe != lastPE+1 {
				t.Fatalf("batch for PE %d delivered while head is %d", pe, lastPE+1)
			}
			if batchSize > 0 && len(batch) > batchSize {
				t.Fatalf("batch of %d items exceeds capacity %d", len(batch), batchSize)
			}
			if !final && len(batch) == 0 {
				t.Fatal("empty non-final batch delivered")
			}
			got = append(got, batch...)
			if final {
				lastPE = pe
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if lastPE != P-1 {
		t.Fatalf("last finalized PE %d, want %d", lastPE, P-1)
	}
	return got
}

func collectStream(t *testing.T, P, workers, itemsPer int, jitter bool) []int {
	t.Helper()
	return collectBatched(t, P, workers, 0, itemsPer, jitter)
}

func TestStreamOrderAndWorkerInvariance(t *testing.T) {
	const P, itemsPer = 32, 100
	want := collectStream(t, P, 1, itemsPer, false)
	for _, workers := range []int{2, 4, 16, 64} {
		got := collectStream(t, P, workers, itemsPer, true)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d items, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: item %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestStreamBatchSizeInvariance: the delivered item sequence must be
// bit-identical for every batch size — batch boundaries carry no meaning.
// Sizes 1 (every item its own batch), 7 (chunks never divide evenly) and
// 4096 (chunks much smaller than a batch) cover the boundary cases.
func TestStreamBatchSizeInvariance(t *testing.T) {
	const P, itemsPer = 16, 157
	want := collectBatched(t, P, 1, 0, itemsPer, false)
	for _, batchSize := range []int{1, 7, 4096} {
		for _, workers := range []int{1, 4} {
			got := collectBatched(t, P, workers, batchSize, itemsPer, true)
			if len(got) != len(want) {
				t.Fatalf("batch=%d workers=%d: %d items, want %d",
					batchSize, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("batch=%d workers=%d: item %d = %d, want %d",
						batchSize, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStreamHeadFlushesEarly: the head PE's batches must reach the sink
// while that PE is still generating — the consume callback observes head
// batches before the producer has finished the chunk.
func TestStreamHeadFlushesEarly(t *testing.T) {
	const items = 10_000
	const batchSize = 64
	done := make(chan struct{})
	sawEarly := false
	err := StreamBatched(2, 2, batchSize, func(pe int, emit func(int)) {
		if pe == 1 {
			<-done // PE 1 cannot finish before PE 0's stream is fully delivered
			emit(1)
			return
		}
		for i := 0; i < items; i++ {
			emit(i)
		}
		close(done)
	}, func(pe int, batch []int, final bool) error {
		if pe == 0 && !final {
			select {
			case <-done:
			default:
				sawEarly = true // delivered while PE 0 still generating
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawEarly {
		t.Fatal("no head batch was delivered before its chunk finished generating")
	}
}

func TestStreamEmptyChunks(t *testing.T) {
	finals := 0
	err := Stream(8, 4, func(pe int, emit func(int)) {
		if pe%2 == 0 {
			emit(pe)
		}
	}, func(pe int, batch []int, final bool) error {
		if pe%2 == 1 && len(batch) != 0 {
			t.Errorf("PE %d: expected empty chunk, got %d items", pe, len(batch))
		}
		if final {
			finals++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if finals != 8 {
		t.Fatalf("%d final batches, want 8", finals)
	}
}

func TestStreamErrorStopsRun(t *testing.T) {
	sentinel := errors.New("sink full")
	for _, workers := range []int{1, 4} {
		delivered := 0
		err := Stream(64, workers, produceSquares(10, false), func(pe int, batch []int, final bool) error {
			if pe == 3 {
				return fmt.Errorf("pe %d: %w", pe, sentinel)
			}
			if final {
				delivered++
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		if delivered != 3 {
			t.Fatalf("workers=%d: %d chunks delivered before error, want 3", workers, delivered)
		}
	}
}

// TestStreamErrorRecyclesBatches: after the first sink error nothing more
// is delivered, and every pooled batch — in-flight, queued, or discarded —
// is returned to the pool (no batch leaks from an aborted run).
func TestStreamErrorRecyclesBatches(t *testing.T) {
	sentinel := errors.New("sink failed")
	for _, workers := range []int{1, 3, 8} {
		for _, batchSize := range []int{1, 7, 64} {
			pool := newBatchPool[int](batchSize)
			deliveredAfterError := false
			sawError := false
			err := streamBatched(48, workers, pool, produceSquares(100, true),
				func(pe int, batch []int, final bool) error {
					if sawError {
						deliveredAfterError = true
					}
					if pe == 5 {
						sawError = true
						return sentinel
					}
					return nil
				})
			if !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d batch=%d: err = %v, want sentinel", workers, batchSize, err)
			}
			if deliveredAfterError {
				t.Fatalf("workers=%d batch=%d: delivery after the first error", workers, batchSize)
			}
			if n := pool.borrowed.Load(); n != 0 {
				t.Fatalf("workers=%d batch=%d: %d batches never returned to the pool",
					workers, batchSize, n)
			}
		}
	}
}

// TestStreamSuccessRecyclesBatches: a clean run returns every batch too.
func TestStreamSuccessRecyclesBatches(t *testing.T) {
	pool := newBatchPool[int](8)
	err := streamBatched(16, 4, pool, produceSquares(50, true),
		func(pe int, batch []int, final bool) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n := pool.borrowed.Load(); n != 0 {
		t.Fatalf("%d batches never returned to the pool", n)
	}
}

func TestStreamZeroPEs(t *testing.T) {
	if err := Stream(0, 4, func(int, func(int)) {}, func(int, []int, bool) error {
		t.Fatal("consume called for P=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
