package pe

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// produceSquares emits pe*itemsPer..(pe+1)*itemsPer-1 for each PE, with a
// random delay so completion order differs from PE order.
func produceSquares(itemsPer int, jitter bool) func(pe int, emit func(int)) {
	return func(pe int, emit func(int)) {
		if jitter {
			time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
		}
		for i := 0; i < itemsPer; i++ {
			emit(pe*itemsPer + i)
		}
	}
}

func collectStream(t *testing.T, P, workers, itemsPer int, jitter bool) []int {
	t.Helper()
	var got []int
	lastPE := -1
	err := Stream(P, workers, produceSquares(itemsPer, jitter), func(pe int, chunk []int) error {
		if pe != lastPE+1 {
			t.Fatalf("chunk for PE %d delivered after PE %d", pe, lastPE)
		}
		lastPE = pe
		got = append(got, chunk...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastPE != P-1 {
		t.Fatalf("last delivered PE %d, want %d", lastPE, P-1)
	}
	return got
}

func TestStreamOrderAndWorkerInvariance(t *testing.T) {
	const P, itemsPer = 32, 100
	want := collectStream(t, P, 1, itemsPer, false)
	for _, workers := range []int{2, 4, 16, 64} {
		got := collectStream(t, P, workers, itemsPer, true)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d items, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: item %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestStreamEmptyChunks(t *testing.T) {
	calls := 0
	err := Stream(8, 4, func(pe int, emit func(int)) {
		if pe%2 == 0 {
			emit(pe)
		}
	}, func(pe int, chunk []int) error {
		calls++
		if pe%2 == 1 && len(chunk) != 0 {
			t.Errorf("PE %d: expected empty chunk, got %d items", pe, len(chunk))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Fatalf("consume called %d times, want 8", calls)
	}
}

func TestStreamErrorStopsRun(t *testing.T) {
	sentinel := errors.New("sink full")
	for _, workers := range []int{1, 4} {
		delivered := 0
		err := Stream(64, workers, produceSquares(10, false), func(pe int, chunk []int) error {
			if pe == 3 {
				return fmt.Errorf("pe %d: %w", pe, sentinel)
			}
			delivered++
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		if delivered != 3 {
			t.Fatalf("workers=%d: %d chunks delivered before error, want 3", workers, delivered)
		}
	}
}

func TestStreamZeroPEs(t *testing.T) {
	if err := Stream(0, 4, func(int, func(int)) {}, func(int, []int) error {
		t.Fatal("consume called for P=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
