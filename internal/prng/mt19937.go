package prng

// MT19937 is the 64-bit Mersenne Twister (mt19937-64) of Matsumoto and
// Nishimura, ported from the 2004 reference implementation. It is the
// variate source used throughout the generators, matching the choice of the
// KaGen implementation described in §8.1 of the paper.
type MT19937 struct {
	mt  [mtNN]uint64
	mti int
}

const (
	mtNN      = 312
	mtMM      = 156
	mtMatrixA = 0xB5026F5AA96619E9
	mtUpper   = 0xFFFFFFFF80000000 // most significant 33 bits
	mtLower   = 0x000000007FFFFFFF // least significant 31 bits
)

// NewMT19937 returns a generator initialized with the given seed.
func NewMT19937(seed uint64) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// NewMT19937Array returns a generator initialized with an array seed,
// mirroring init_by_array64 of the reference implementation.
func NewMT19937Array(key []uint64) *MT19937 {
	m := &MT19937{}
	m.SeedArray(key)
	return m
}

// Seed reinitializes the state from a single 64-bit seed (init_genrand64).
func (m *MT19937) Seed(seed uint64) {
	m.mt[0] = seed
	for i := 1; i < mtNN; i++ {
		m.mt[i] = 6364136223846793005*(m.mt[i-1]^(m.mt[i-1]>>62)) + uint64(i)
	}
	m.mti = mtNN
}

// SeedArray reinitializes the state from an array seed (init_by_array64).
func (m *MT19937) SeedArray(key []uint64) {
	m.Seed(19650218)
	i, j := 1, 0
	k := mtNN
	if len(key) > k {
		k = len(key)
	}
	for ; k > 0; k-- {
		m.mt[i] = (m.mt[i] ^ ((m.mt[i-1] ^ (m.mt[i-1] >> 62)) * 3935559000370003845)) + key[j] + uint64(j)
		i++
		j++
		if i >= mtNN {
			m.mt[0] = m.mt[mtNN-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = mtNN - 1; k > 0; k-- {
		m.mt[i] = (m.mt[i] ^ ((m.mt[i-1] ^ (m.mt[i-1] >> 62)) * 2862933555777941757)) - uint64(i)
		i++
		if i >= mtNN {
			m.mt[0] = m.mt[mtNN-1]
			i = 1
		}
	}
	m.mt[0] = 1 << 63 // MSB is 1, assuring a non-zero initial array
	m.mti = mtNN
}

// Uint64 returns the next number in [0, 2^64) (genrand64_int64).
func (m *MT19937) Uint64() uint64 {
	if m.mti >= mtNN {
		var x uint64
		var i int
		for i = 0; i < mtNN-mtMM; i++ {
			x = (m.mt[i] & mtUpper) | (m.mt[i+1] & mtLower)
			m.mt[i] = m.mt[i+mtMM] ^ (x >> 1) ^ ((x & 1) * mtMatrixA)
		}
		for ; i < mtNN-1; i++ {
			x = (m.mt[i] & mtUpper) | (m.mt[i+1] & mtLower)
			m.mt[i] = m.mt[i+(mtMM-mtNN)] ^ (x >> 1) ^ ((x & 1) * mtMatrixA)
		}
		x = (m.mt[mtNN-1] & mtUpper) | (m.mt[0] & mtLower)
		m.mt[mtNN-1] = m.mt[mtMM-1] ^ (x >> 1) ^ ((x & 1) * mtMatrixA)
		m.mti = 0
	}
	x := m.mt[m.mti]
	m.mti++
	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}

// Float64 returns the next number in [0, 1) with 53-bit resolution
// (genrand64_real2).
func (m *MT19937) Float64() float64 {
	return float64(m.Uint64()>>11) / 9007199254740992.0
}

// Float64Open returns the next number in (0, 1) (genrand64_real3). Useful
// when a logarithm of the variate is taken.
func (m *MT19937) Float64Open() float64 {
	return (float64(m.Uint64()>>12) + 0.5) / 4503599627370496.0
}
