package prng

import (
	"math"
	"testing"
)

// TestMT19937ReferenceVector checks the first outputs of init_by_array64
// with the key {0x12345, 0x23456, 0x34567, 0x45678} against the published
// output of Matsumoto & Nishimura's mt19937-64.c (mt19937-64.out.txt).
func TestMT19937ReferenceVector(t *testing.T) {
	m := NewMT19937Array([]uint64{0x12345, 0x23456, 0x34567, 0x45678})
	want := []uint64{
		7266447313870364031,
		4946485549665804864,
		16945909448695747420,
		16394063075524226720,
		4873882236456199058,
		14877448043947020171,
		6740343660852211943,
		13857871200353263164,
		5249110015610582907,
	}
	for i, w := range want {
		got := m.Uint64()
		if got != w {
			t.Fatalf("output %d: got %d, want %d", i, got, w)
		}
	}
}

func TestMT19937SeedDeterminism(t *testing.T) {
	a := NewMT19937(42)
	b := NewMT19937(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at output %d", i)
		}
	}
	c := NewMT19937(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestMT19937Float64Range(t *testing.T) {
	m := NewMT19937(7)
	for i := 0; i < 100000; i++ {
		f := m.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
	for i := 0; i < 100000; i++ {
		f := m.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestMT19937Float64Moments(t *testing.T) {
	m := NewMT19937(12345)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := m.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12.0) > 0.005 {
		t.Errorf("variance = %v, want ~%v", variance, 1.0/12.0)
	}
}

func TestMT19937BitBalance(t *testing.T) {
	m := NewMT19937(999)
	const n = 50000
	var ones [64]int
	for i := 0; i < n; i++ {
		v := m.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b := 0; b < 64; b++ {
		frac := float64(ones[b]) / n
		if frac < 0.48 || frac > 0.52 {
			t.Errorf("bit %d set fraction %v, want ~0.5", b, frac)
		}
	}
}
