package prng

import "math/bits"

// Random is the variate source handed to the samplers. Its seed is derived
// from structural identifiers with SpookyHash, which is what makes
// recomputation across processing entities consistent: the same
// identifiers always yield the same stream.
//
// The generators create a Random per structural stream — per chunk, per
// grid cell, per R-MAT edge — so construction is on the hottest paths in
// the library. Random is therefore a plain value holding the 4-word
// xoshiro256** state inline: New performs no heap allocation, and a
// derived stream lives and dies on the caller's stack. The Mersenne
// Twister baselines attach their (heap-backed) state through the mt
// field instead.
type Random struct {
	x  xoshiro256
	mt *MT19937 // when non-nil, overrides the inline xoshiro state
}

// New derives a Random from a user seed and a list of structural
// identifiers (generator tag, chunk id, recursion node id, ...). Every PE
// that calls New with the same arguments obtains an identical stream.
// Derived streams are short-lived by design, so they use the O(1)-setup
// xoshiro256** generator seeded from the 128-bit SpookyHash.
func New(seed uint64, ids ...uint64) Random {
	h1, h2 := HashWords128(seed, ids...)
	var r Random
	r.x.seed(h1, h2)
	return r
}

// NewFromRaw wraps a raw 64-bit seed without hashing, backed by the
// Mersenne Twister. Used by the sequential baseline algorithms and tests.
func NewFromRaw(seed uint64) *Random {
	return &Random{mt: NewMT19937(seed)}
}

// NewMTHashed derives an MT19937-backed Random from structural ids, for
// callers that want the paper's exact generator class on a long stream.
func NewMTHashed(seed uint64, ids ...uint64) *Random {
	h1, h2 := HashWords128(seed, ids...)
	return &Random{mt: NewMT19937Array([]uint64{h1, h2, seed})}
}

// Uint64 returns a uniform 64-bit value.
func (r *Random) Uint64() uint64 {
	if r.mt != nil {
		return r.mt.Uint64()
	}
	return r.x.Uint64()
}

// Float64 returns a uniform value in [0, 1).
func (r *Random) Float64() float64 {
	if r.mt != nil {
		return r.mt.Float64()
	}
	return r.x.Float64()
}

// Float64Open returns a uniform value in (0, 1).
func (r *Random) Float64Open() float64 {
	if r.mt != nil {
		return r.mt.Float64Open()
	}
	return r.x.Float64Open()
}

// UintN returns a uniform value in [0, n) without modulo bias using
// Lemire's multiply-shift rejection method. n must be positive.
func (r *Random) UintN(n uint64) uint64 {
	if n == 0 {
		panic("prng: UintN with n == 0")
	}
	v := r.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// UniformRange returns a uniform float64 in [lo, hi).
func (r *Random) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}
