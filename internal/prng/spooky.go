// Package prng provides the pseudorandomization substrate of the
// communication-free generators: a port of Bob Jenkins' SpookyHash V2 used
// to derive seeds from structural identifiers (chunk ids, recursion-subtree
// ids), and a port of the 64-bit Mersenne Twister used to draw the actual
// variates. Both match the reference C implementations bit for bit.
//
// The central idea of the paper (Funke et al., "Communication-free
// Massively Distributed Graph Generation") is that two processing entities
// that need the same random decision derive the seed for that decision from
// the same structural identifier and therefore obtain the same value
// without communicating.
package prng

import "encoding/binary"

// spookyConst is sc_const from SpookyHash V2: a primeless arbitrary value,
// odd and not "flat" (no zero or all-one bytes).
const spookyConst = 0xdeadbeefdeadbeef

const (
	spookyNumVars   = 12
	spookyBlockSize = spookyNumVars * 8 // 96
	spookyBufSize   = 2 * spookyBlockSize
)

func rot64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// ShortHash128 computes the SpookyHash V2 short hash (used by the reference
// implementation for messages under 192 bytes). seed1 and seed2 are the two
// 64-bit seed words; the two returned words are the 128-bit hash.
func ShortHash128(data []byte, seed1, seed2 uint64) (uint64, uint64) {
	length := len(data)
	remainder := length % 32
	a := seed1
	b := seed2
	c := uint64(spookyConst)
	d := uint64(spookyConst)

	p := data
	if length > 15 {
		// Handle all complete sets of 32 bytes.
		for len(p) >= 32 {
			c += binary.LittleEndian.Uint64(p[0:])
			d += binary.LittleEndian.Uint64(p[8:])
			a, b, c, d = shortMix(a, b, c, d)
			a += binary.LittleEndian.Uint64(p[16:])
			b += binary.LittleEndian.Uint64(p[24:])
			p = p[32:]
		}
		// Handle the case of 16+ remaining bytes.
		if remainder >= 16 {
			c += binary.LittleEndian.Uint64(p[0:])
			d += binary.LittleEndian.Uint64(p[8:])
			a, b, c, d = shortMix(a, b, c, d)
			p = p[16:]
			remainder -= 16
		}
	}

	// Handle the last 0..15 bytes and their length.
	d += uint64(length) << 56
	switch remainder {
	case 15:
		d += uint64(p[14]) << 48
		fallthrough
	case 14:
		d += uint64(p[13]) << 40
		fallthrough
	case 13:
		d += uint64(p[12]) << 32
		fallthrough
	case 12:
		d += uint64(binary.LittleEndian.Uint32(p[8:]))
		c += binary.LittleEndian.Uint64(p[0:])
	case 11:
		d += uint64(p[10]) << 16
		fallthrough
	case 10:
		d += uint64(p[9]) << 8
		fallthrough
	case 9:
		d += uint64(p[8])
		fallthrough
	case 8:
		c += binary.LittleEndian.Uint64(p[0:])
	case 7:
		c += uint64(p[6]) << 48
		fallthrough
	case 6:
		c += uint64(p[5]) << 40
		fallthrough
	case 5:
		c += uint64(p[4]) << 32
		fallthrough
	case 4:
		c += uint64(binary.LittleEndian.Uint32(p[0:]))
	case 3:
		c += uint64(p[2]) << 16
		fallthrough
	case 2:
		c += uint64(p[1]) << 8
		fallthrough
	case 1:
		c += uint64(p[0])
	case 0:
		c += spookyConst
		d += spookyConst
	}
	a, b, _, _ = shortEnd(a, b, c, d)
	return a, b
}

// shortMix: the inner mix of the short hash. Reversible; every input bit
// affects every output bit after three rounds.
func shortMix(a, b, c, d uint64) (uint64, uint64, uint64, uint64) {
	c = rot64(c, 50)
	c += d
	a ^= c
	d = rot64(d, 52)
	d += a
	b ^= d
	a = rot64(a, 30)
	a += b
	c ^= a
	b = rot64(b, 41)
	b += c
	d ^= b
	c = rot64(c, 54)
	c += d
	a ^= c
	d = rot64(d, 48)
	d += a
	b ^= d
	a = rot64(a, 38)
	a += b
	c ^= a
	b = rot64(b, 37)
	b += c
	d ^= b
	c = rot64(c, 62)
	c += d
	a ^= c
	d = rot64(d, 34)
	d += a
	b ^= d
	a = rot64(a, 5)
	a += b
	c ^= a
	b = rot64(b, 36)
	b += c
	d ^= b
	return a, b, c, d
}

// shortEnd: the final mix of the short hash.
func shortEnd(a, b, c, d uint64) (uint64, uint64, uint64, uint64) {
	d ^= c
	c = rot64(c, 15)
	d += c
	a ^= d
	d = rot64(d, 52)
	a += d
	b ^= a
	a = rot64(a, 26)
	b += a
	c ^= b
	b = rot64(b, 51)
	c += b
	d ^= c
	c = rot64(c, 28)
	d += c
	a ^= d
	d = rot64(d, 9)
	a += d
	b ^= a
	a = rot64(a, 47)
	b += a
	c ^= b
	b = rot64(b, 54)
	c += b
	d ^= c
	c = rot64(c, 32)
	d += c
	a ^= d
	d = rot64(d, 25)
	a += d
	b ^= a
	a = rot64(a, 63)
	b += a
	return a, b, c, d
}

// Hash128 computes the 128-bit SpookyHash V2 of data. Messages under 192
// bytes go through the short hash exactly like the reference implementation.
func Hash128(data []byte, seed1, seed2 uint64) (uint64, uint64) {
	if len(data) < spookyBufSize {
		return ShortHash128(data, seed1, seed2)
	}

	var h [spookyNumVars]uint64
	h[0], h[3], h[6], h[9] = seed1, seed1, seed1, seed1
	h[1], h[4], h[7], h[10] = seed2, seed2, seed2, seed2
	h[2], h[5], h[8], h[11] = spookyConst, spookyConst, spookyConst, spookyConst

	p := data
	var block [spookyNumVars]uint64
	for len(p) >= spookyBlockSize {
		for i := range block {
			block[i] = binary.LittleEndian.Uint64(p[8*i:])
		}
		mix(&block, &h)
		p = p[spookyBlockSize:]
	}

	// Handle the last partial block of spookyBlockSize bytes.
	remainder := len(p)
	var buf [spookyBlockSize]byte
	copy(buf[:], p)
	buf[spookyBlockSize-1] = byte(remainder)
	for i := range block {
		block[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	end(&block, &h)
	return h[0], h[1]
}

// Hash64 returns the first 64 bits of Hash128.
func Hash64(data []byte, seed uint64) uint64 {
	h1, _ := Hash128(data, seed, seed)
	return h1
}

func mix(data *[spookyNumVars]uint64, s *[spookyNumVars]uint64) {
	s[0] += data[0]
	s[2] ^= s[10]
	s[11] ^= s[0]
	s[0] = rot64(s[0], 11)
	s[11] += s[1]
	s[1] += data[1]
	s[3] ^= s[11]
	s[0] ^= s[1]
	s[1] = rot64(s[1], 32)
	s[0] += s[2]
	s[2] += data[2]
	s[4] ^= s[0]
	s[1] ^= s[2]
	s[2] = rot64(s[2], 43)
	s[1] += s[3]
	s[3] += data[3]
	s[5] ^= s[1]
	s[2] ^= s[3]
	s[3] = rot64(s[3], 31)
	s[2] += s[4]
	s[4] += data[4]
	s[6] ^= s[2]
	s[3] ^= s[4]
	s[4] = rot64(s[4], 17)
	s[3] += s[5]
	s[5] += data[5]
	s[7] ^= s[3]
	s[4] ^= s[5]
	s[5] = rot64(s[5], 28)
	s[4] += s[6]
	s[6] += data[6]
	s[8] ^= s[4]
	s[5] ^= s[6]
	s[6] = rot64(s[6], 39)
	s[5] += s[7]
	s[7] += data[7]
	s[9] ^= s[5]
	s[6] ^= s[7]
	s[7] = rot64(s[7], 57)
	s[6] += s[8]
	s[8] += data[8]
	s[10] ^= s[6]
	s[7] ^= s[8]
	s[8] = rot64(s[8], 55)
	s[7] += s[9]
	s[9] += data[9]
	s[11] ^= s[7]
	s[8] ^= s[9]
	s[9] = rot64(s[9], 54)
	s[8] += s[10]
	s[10] += data[10]
	s[0] ^= s[8]
	s[9] ^= s[10]
	s[10] = rot64(s[10], 22)
	s[9] += s[11]
	s[11] += data[11]
	s[1] ^= s[9]
	s[10] ^= s[11]
	s[11] = rot64(s[11], 46)
	s[10] += s[0]
}

func endPartial(h *[spookyNumVars]uint64) {
	h[11] += h[1]
	h[2] ^= h[11]
	h[1] = rot64(h[1], 44)
	h[0] += h[2]
	h[3] ^= h[0]
	h[2] = rot64(h[2], 15)
	h[1] += h[3]
	h[4] ^= h[1]
	h[3] = rot64(h[3], 34)
	h[2] += h[4]
	h[5] ^= h[2]
	h[4] = rot64(h[4], 21)
	h[3] += h[5]
	h[6] ^= h[3]
	h[5] = rot64(h[5], 38)
	h[4] += h[6]
	h[7] ^= h[4]
	h[6] = rot64(h[6], 33)
	h[5] += h[7]
	h[8] ^= h[5]
	h[7] = rot64(h[7], 10)
	h[6] += h[8]
	h[9] ^= h[6]
	h[8] = rot64(h[8], 13)
	h[7] += h[9]
	h[10] ^= h[7]
	h[9] = rot64(h[9], 38)
	h[8] += h[10]
	h[11] ^= h[8]
	h[10] = rot64(h[10], 53)
	h[9] += h[11]
	h[0] ^= h[9]
	h[11] = rot64(h[11], 42)
	h[10] += h[0]
	h[1] ^= h[10]
	h[0] = rot64(h[0], 54)
}

func end(data *[spookyNumVars]uint64, h *[spookyNumVars]uint64) {
	for i := range data {
		h[i] += data[i]
	}
	endPartial(h)
	endPartial(h)
	endPartial(h)
}

// hashWordsMax is the identifier count encoded on the stack by the
// HashWords entry points; longer lists fall back to a heap buffer. The
// generators pass at most four words (tag plus up to three structural ids).
const hashWordsMax = 8

// wordBytes serializes words little-endian into scratch when they fit
// (keeping the buffer on the caller's stack — seed derivation runs per
// edge/cell on the hot paths) and into a fresh heap buffer otherwise.
// The bytes are identical either way, so hashes are unchanged.
func wordBytes(scratch *[8 * hashWordsMax]byte, words []uint64) []byte {
	buf := scratch[:]
	if len(words) > hashWordsMax {
		buf = make([]byte, 8*len(words))
	}
	buf = buf[:8*len(words)]
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return buf
}

// HashWords64 hashes a sequence of 64-bit words. It is the primary seed
// derivation entry point: callers pass structural identifiers (user seed,
// generator tag, chunk id, recursion node id) and obtain a stream seed.
func HashWords64(seed uint64, words ...uint64) uint64 {
	var scratch [8 * hashWordsMax]byte
	return Hash64(wordBytes(&scratch, words), seed)
}

// HashWords128 is HashWords64 returning the full 128-bit hash.
func HashWords128(seed uint64, words ...uint64) (uint64, uint64) {
	var scratch [8 * hashWordsMax]byte
	return Hash128(wordBytes(&scratch, words), seed, seed)
}
