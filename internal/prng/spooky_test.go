package prng

import (
	"testing"
	"testing/quick"
)

// TestSpookyShortLongBoundary checks that Hash128 dispatches to the short
// hash below 192 bytes and to the long hash at and above it, and that both
// paths are deterministic.
func TestSpookyDeterminism(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 191, 192, 193, 500, 1000} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 131)
		}
		a1, a2 := Hash128(data, 1, 2)
		b1, b2 := Hash128(data, 1, 2)
		if a1 != b1 || a2 != b2 {
			t.Fatalf("len %d: hash not deterministic", n)
		}
		c1, c2 := Hash128(data, 3, 4)
		if a1 == c1 && a2 == c2 {
			t.Fatalf("len %d: seed change did not change hash", n)
		}
	}
}

// TestSpookyAvalanche flips single input bits and requires roughly half of
// the output bits to change on average (within a generous tolerance).
func TestSpookyAvalanche(t *testing.T) {
	data := make([]byte, 48)
	for i := range data {
		data[i] = byte(i)
	}
	base1, base2 := Hash128(data, 0, 0)
	totalFlips := 0
	trials := 0
	for byteIdx := 0; byteIdx < len(data); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			data[byteIdx] ^= 1 << uint(bit)
			h1, h2 := Hash128(data, 0, 0)
			data[byteIdx] ^= 1 << uint(bit)
			diff := popcount(h1^base1) + popcount(h2^base2)
			totalFlips += diff
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 56 || avg > 72 { // expect ~64 of 128 bits
		t.Errorf("avalanche average %v bits of 128, want ~64", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// TestSpookyLengthExtension checks that messages that are prefixes of each
// other hash differently (the length is folded into the state).
func TestSpookyLengthSensitivity(t *testing.T) {
	data := make([]byte, 256)
	seen := make(map[[2]uint64]int)
	for n := 0; n <= 256; n++ {
		h1, h2 := Hash128(data[:n], 0, 0)
		key := [2]uint64{h1, h2}
		if prev, ok := seen[key]; ok {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[key] = n
	}
}

func TestHashWords64Distinct(t *testing.T) {
	seen := make(map[uint64][]uint64)
	for a := uint64(0); a < 50; a++ {
		for b := uint64(0); b < 50; b++ {
			h := HashWords64(7, a, b)
			if prev, ok := seen[h]; ok {
				t.Fatalf("collision: (%d,%d) and %v", a, b, prev)
			}
			seen[h] = []uint64{a, b}
		}
	}
}

// TestHashWordsQuick property: hashing is a pure function of its inputs.
func TestHashWordsQuick(t *testing.T) {
	f := func(seed, a, b uint64) bool {
		return HashWords64(seed, a, b) == HashWords64(seed, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(seed, a, b uint64) bool {
		// Argument order matters.
		if a == b {
			return true
		}
		return HashWords64(seed, a, b) != HashWords64(seed, b, a)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestUintNBounds(t *testing.T) {
	r := NewFromRaw(5)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 2000; i++ {
			v := r.UintN(n)
			if v >= n {
				t.Fatalf("UintN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUintNUniform(t *testing.T) {
	r := NewFromRaw(11)
	const n = 10
	const trials = 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.UintN(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if frac < 0.09 || frac > 0.11 {
			t.Errorf("bucket %d: fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestNewConsistency(t *testing.T) {
	// The paper's core mechanism: same structural ids => same stream.
	a := New(42, 1, 2, 3)
	b := New(42, 1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical structural ids produced different streams")
		}
	}
	c := New(42, 1, 2, 4)
	d := New(43, 1, 2, 3)
	if c.Uint64() == d.Uint64() {
		t.Error("different ids should (almost surely) differ")
	}
}

func BenchmarkSpookyHashWords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashWords64(42, uint64(i), 17)
	}
}

func BenchmarkMT19937Uint64(b *testing.B) {
	m := NewMT19937(42)
	for i := 0; i < b.N; i++ {
		m.Uint64()
	}
}
