package prng

// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. The
// structural-identifier streams of the generators draw only a handful of
// variates per stream (one binomial per recursion node, a few coordinates
// per cell), so initializing a 312-word Mersenne Twister per stream would
// dominate the running time. The 4-word xoshiro state keeps per-stream
// setup O(1) while retaining excellent statistical quality; the upstream
// KaGen library pays the analogous cost trade-off inside its sampling
// library. The Mersenne Twister port remains the generator of the
// sequential baselines and of anything seeded through NewFromRaw.
type xoshiro256 struct {
	s [4]uint64
}

// splitMix64 is the recommended seeding generator for xoshiro.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// seed initializes the state in place from two 64-bit hash words, so a
// xoshiro256 embedded by value (see Random) is seeded without allocating.
func (x *xoshiro256) seed(h1, h2 uint64) {
	seed := h1
	x.s[0] = splitMix64(&seed)
	x.s[1] = splitMix64(&seed)
	seed ^= h2
	x.s[2] = splitMix64(&seed)
	x.s[3] = splitMix64(&seed)
	// A zero state would be a fixed point; splitMix64 output is zero with
	// probability 2^-256 across four words, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

// newXoshiro seeds a fresh state from two 64-bit hash words.
func newXoshiro(h1, h2 uint64) *xoshiro256 {
	x := &xoshiro256{}
	x.seed(h1, h2)
	return x
}

func (x *xoshiro256) Uint64() uint64 {
	// The all-zero state is unreachable after seed(); hitting it means a
	// zero-value Random was used without New. Panic like the previous
	// interface-backed Random did, instead of emitting zeros forever —
	// the state words are in registers anyway, so the guard is free.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		panic("prng: use of an unseeded Random (use prng.New)")
	}
	result := rot64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rot64(x.s[3], 45)
	return result
}

func (x *xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / 9007199254740992.0
}

func (x *xoshiro256) Float64Open() float64 {
	return (float64(x.Uint64()>>12) + 0.5) / 4503599627370496.0
}
