package prng

import (
	"math"
	"testing"
)

func TestXoshiroDeterminism(t *testing.T) {
	a := newXoshiro(1, 2)
	b := newXoshiro(1, 2)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := newXoshiro(1, 3)
	d := newXoshiro(1, 2)
	diff := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() != d.Uint64() {
			diff++
		}
	}
	if diff < 990 {
		t.Fatalf("different seeds mostly identical (%d of 1000 differ)", diff)
	}
}

func TestXoshiroMoments(t *testing.T) {
	x := newXoshiro(42, 43)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("out of range: %v", f)
		}
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance %v", variance)
	}
}

func TestXoshiroBitBalance(t *testing.T) {
	x := newXoshiro(7, 9)
	const n = 50000
	var ones [64]int
	for i := 0; i < n; i++ {
		v := x.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b := 0; b < 64; b++ {
		frac := float64(ones[b]) / n
		if frac < 0.48 || frac > 0.52 {
			t.Errorf("bit %d fraction %v", b, frac)
		}
	}
}

func TestXoshiroZeroGuard(t *testing.T) {
	x := &xoshiro256{} // all-zero state is the fixed point we guard against
	if y := newXoshiro(0, 0); y.s == x.s {
		t.Fatal("zero hash produced zero state")
	}
}

func TestSplitMix64Known(t *testing.T) {
	// First outputs of splitmix64 from seed 0 (published reference).
	seed := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := splitMix64(&seed); got != w {
			t.Fatalf("output %d: got %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkNewDerivedStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := New(42, uint64(i), 7)
		_ = r.Uint64()
	}
}

func BenchmarkNewMTHashedStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewMTHashed(42, uint64(i), 7).Uint64()
	}
}
