// Package rdg implements the communication-free random Delaunay graph
// generator of the paper (§6) for two and three dimensions with periodic
// (torus) boundary conditions.
//
// Points are placed exactly like the RGG generator but with cell side
// target ((d+1)/n)^(1/d), the mean distance of the (d+1)-th nearest
// neighbour. Each PE triangulates its chunk plus a halo of neighbouring
// cells (regenerated from their seeds, wrapping around the torus with
// coordinate offsets in {-1,0,1}) and grows the halo until the
// circumsphere of every simplex incident to an interior point lies inside
// the generated region — the convergence criterion of §6.
package rdg

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/delaunay"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/pe"
	"repro/internal/rgg"
)

// Params configures a random Delaunay graph.
type Params struct {
	N    uint64 // number of vertices
	Dim  int    // 2 or 3
	Seed uint64
	// Chunks is the number of logical PEs (chunk grid as in the RGG
	// generator). 0 means 1.
	Chunks uint64
}

func (p Params) chunks() uint64 {
	if p.Chunks == 0 {
		return 1
	}
	return p.Chunks
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N < uint64(p.Dim)+2 {
		return fmt.Errorf("rdg: need at least dim+2 points")
	}
	if p.Dim != 2 && p.Dim != 3 {
		return fmt.Errorf("rdg: dim must be 2 or 3, got %d", p.Dim)
	}
	return nil
}

func (p Params) grid() *rgg.Grid {
	return rgg.NewGrid(p.N, p.Dim, rgg.RDGTarget(p.N, p.Dim), p.chunks(),
		p.Seed, core.TagRDGCell+1, core.TagRDGCell+2, core.TagRDGCell+3)
}

// Generate produces the full graph; undirected edges appear once per
// endpoint across the merged PE outputs.
func Generate(p Params, workers int) (*graph.EdgeList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	results := pe.ForEach(int(p.chunks()), workers, func(c int) core.Result {
		return GenerateChunk(p, uint64(c))
	})
	return core.MergeResults(p.N, results), nil
}

// GenerateChunk runs one logical PE: for each of its chunks it computes
// the Delaunay triangulation of the chunk plus an adaptively grown halo
// and emits the triangulation edges incident to chunk-owned points.
func GenerateChunk(p Params, peID uint64) core.Result {
	res := core.Result{PE: int(peID)}
	res.Edges = make([]graph.Edge, 0, ExpectedChunkEdges(p))
	res.RedundantVertices, res.Comparisons = StreamChunk(p, peID, func(e graph.Edge) {
		res.Edges = append(res.Edges, e)
	})
	return res
}

// ExpectedChunkEdges estimates one PE's local edge count from the mean
// Delaunay degree of a Poisson point set — 6 in 2-D (Euler), ~15.54 in
// 3-D — with headroom; used to pre-size the chunk edge list in one
// allocation. It is an estimate only: emission never depends on it.
func ExpectedChunkEdges(p Params) uint64 {
	deg := 6.0
	if p.Dim == 3 {
		deg = 15.54
	}
	verts := float64(p.N) / float64(p.chunks())
	return uint64(1.2*deg*verts) + 64
}

// StreamChunk emits the chunk's simplex-derived edges through the callback
// in the exact deterministic order of GenerateChunk. Each of the PE's
// chunks is triangulated in turn and its edges are emitted before the next
// chunk's triangulation is built, so at most one triangulation (chunk +
// converged halo) is alive at a time; the triangulation's stores and the
// emission dedup state are pooled in one scratch struct reused across the
// PE's chunks, so steady-state chunk processing stays allocation-light.
// It returns the redundant-vertex and halo-expansion counters of the
// chunk.
func StreamChunk(p Params, peID uint64, emit func(graph.Edge)) (redundantVertices, comparisons uint64) {
	g := p.grid()
	acc := rgg.NewCellAccess(g)
	res := core.Result{PE: int(peID)}
	var scratch triScratch
	lo, hi := g.ChunkRange(peID)
	for chunk := lo; chunk < hi; chunk++ {
		triangulateChunk(p, g, acc, chunk, &res, &scratch, emit)
		acc.Reset() // bound memory by one chunk + converged halo
	}
	return res.RedundantVertices, res.Comparisons
}

// pair is one directed emission key of the per-chunk dedup.
type pair struct{ u, v uint64 }

// triScratch pools the Delaunay layer's per-chunk state across a PE's
// chunks: the simplex stores (via T2/T3 Reset), the triangulation-index
// to point-ID maps, and the emitted-pair dedup set. Reuse changes no
// observable behaviour — a Reset triangulation inserts bit-identically to
// a fresh one, and the dedup map is only ever queried point-wise.
type triScratch struct {
	t2    *delaunay.T2
	t3    *delaunay.T3
	idOf  []uint64
	isInt []bool
	seen  map[pair]bool
}

func triangulateChunk(p Params, g *rgg.Grid, acc *rgg.CellAccess, chunk uint64, res *core.Result, scratch *triScratch, emit func(graph.Edge)) {
	dim := p.Dim
	// Chunk cell bounding box in global cell coordinates.
	first := g.ChunkCellCoord(chunk, 0)
	var cellLo, cellHi [3]int64 // inclusive box of the chunk's cells
	for i := 0; i < dim; i++ {
		cellLo[i] = int64(first[i])
		cellHi[i] = int64(first[i]) + int64(g.CellsPerDim) - 1
	}

	// Insert boxes strictly nest as the halo grows, so "cell already
	// inserted" is exactly "inside the previously inserted box" — no
	// per-cell set needed.
	havePrev := false
	var prevLo, prevHi [3]int64

	// Expected chunk+halo point count (with one expansion of headroom):
	// sizes the cell arena, the simplex arenas, and the dedup scratch so
	// the steady state — and in the common converged-at-first-halo case
	// even the first chunk — allocates nothing beyond the initial arenas.
	expPts := acc.ChunkHaloTotal(chunk, 2)
	acc.Reserve(expPts)

	var t2 *delaunay.T2
	var t3 *delaunay.T3
	if dim == 2 {
		if scratch.t2 == nil {
			scratch.t2 = delaunay.NewT2(expPts)
		} else {
			scratch.t2.Reset()
		}
		t2 = scratch.t2
	} else {
		if scratch.t3 == nil {
			scratch.t3 = delaunay.NewT3(expPts)
		} else {
			scratch.t3.Reset()
		}
		t3 = scratch.t3
	}
	// idOf maps triangulation indices to original point IDs; isInt marks
	// the chunk-owned instances (a wrapped periodic copy of an interior
	// point is NOT interior — only the original position is).
	if cap(scratch.idOf) < expPts+4 {
		scratch.idOf = make([]uint64, 0, expPts+4)
		scratch.isInt = make([]bool, 0, expPts+4)
	}
	idOf := scratch.idOf[:0]
	isInt := scratch.isInt[:0]
	superCount := 3
	if dim == 3 {
		superCount = 4
	}
	for i := 0; i < superCount; i++ {
		idOf = append(idOf, ^uint64(0))
		isInt = append(isInt, false)
	}

	insertBox := func(blo, bhi [3]int64, isInterior func([3]int64) bool) {
		inPrev := func(c [3]int64) bool {
			if !havePrev {
				return false
			}
			for i := 0; i < dim; i++ {
				if c[i] < prevLo[i] || c[i] > prevHi[i] {
					return false
				}
			}
			return true
		}
		var it func(d int, c [3]int64)
		it = func(d int, c [3]int64) {
			if d == dim {
				if inPrev(c) {
					return
				}
				pts := acc.CellTorus(c)
				inCore := isInterior(c)
				if !inCore {
					res.RedundantVertices += uint64(len(pts))
				}
				for _, pt := range pts {
					if dim == 2 {
						t2.Insert([2]float64{pt.X[0], pt.X[1]})
					} else {
						t3.Insert(pt.X)
					}
					idOf = append(idOf, pt.ID)
					isInt = append(isInt, inCore)
				}
				return
			}
			for v := blo[d]; v <= bhi[d]; v++ {
				c[d] = v
				it(d+1, c)
			}
		}
		it(0, [3]int64{})
		prevLo, prevHi, havePrev = blo, bhi, true
	}

	inChunk := func(c [3]int64) bool {
		for i := 0; i < dim; i++ {
			if c[i] < cellLo[i] || c[i] > cellHi[i] {
				return false
			}
		}
		return true
	}

	// Start with the chunk plus one halo layer.
	halo := int64(1)
	var blo, bhi [3]int64
	for i := 0; i < dim; i++ {
		blo[i] = cellLo[i] - halo
		bhi[i] = cellHi[i] + halo
	}
	insertBox(blo, bhi, inChunk)

	// Maximum halo: one full wrap in every direction (offsets stay within
	// {-1, 0, 1}).
	maxHalo := int64(g.GlobalDim)

	var boxLo, boxHi [3]float64
	for {
		// Convergence: every simplex with an interior vertex must have its
		// circumsphere inside the generated box.
		for i := 0; i < dim; i++ {
			boxLo[i] = float64(blo[i]) * g.CellSide
			boxHi[i] = float64(bhi[i]+1) * g.CellSide
		}
		ok := true
		contains2 := func(cx, cy, r2 float64) bool {
			r := sqrt(r2)
			return cx-r >= boxLo[0] && cx+r <= boxHi[0] && cy-r >= boxLo[1] && cy+r <= boxHi[1]
		}
		isInterior := func(v int32) bool {
			return isInt[v]
		}
		if dim == 2 {
			// A triangle incident to an interior point must neither touch
			// the artificial bounding triangle (the paper's convex-hull
			// condition) nor have a circumcircle leaving the generated box.
			for ti := range t2.Tris {
				if !ok {
					break
				}
				if t2.Dead(ti) {
					continue
				}
				v := t2.Tris[ti].V
				if !isInterior(v[0]) && !isInterior(v[1]) && !isInterior(v[2]) {
					continue
				}
				if isSuperIdx(2, v[0]) || isSuperIdx(2, v[1]) || isSuperIdx(2, v[2]) {
					ok = false
					break
				}
				cx, cy, r2 := t2.Circumcircle(v[0], v[1], v[2])
				if !contains2(cx, cy, r2) {
					ok = false
				}
			}
		} else {
			for ti := range t3.Tets {
				if !ok {
					break
				}
				if t3.Dead(ti) {
					continue
				}
				v := t3.Tets[ti].V
				if !isInterior(v[0]) && !isInterior(v[1]) && !isInterior(v[2]) && !isInterior(v[3]) {
					continue
				}
				if isSuperIdx(3, v[0]) || isSuperIdx(3, v[1]) || isSuperIdx(3, v[2]) || isSuperIdx(3, v[3]) {
					ok = false
					break
				}
				c, r2 := t3.Circumsphere(v)
				r := sqrt(r2)
				for i := 0; i < dim; i++ {
					if c[i]-r < boxLo[i] || c[i]+r > boxHi[i] {
						ok = false
						break
					}
				}
			}
		}
		if ok || halo >= maxHalo {
			break
		}
		// Expand by one layer and insert the new ring of cells.
		halo++
		res.Comparisons++ // counts halo expansions for diagnostics
		var nlo, nhi [3]int64
		for i := 0; i < dim; i++ {
			nlo[i] = cellLo[i] - halo
			nhi[i] = cellHi[i] + halo
		}
		insertBox(nlo, nhi, inChunk) // the nested-box check skips the previous box's cells
		blo, bhi = nlo, nhi
	}

	// Emit edges incident to interior points (deduplicated per original
	// pair; periodic copies of the same pair collapse). Only edges of
	// fully real simplices count — simplices touching the artificial
	// bounding vertices are never part of the converged region.
	if scratch.seen == nil {
		// Both directed keys of every interior-incident edge land here:
		// ~2 * mean-degree * chunk points, sized up front so emission does
		// not regrow the table.
		deg := 6.0
		if dim == 3 {
			deg = 15.54
		}
		scratch.seen = make(map[pair]bool, int(2.4*deg*float64(acc.ChunkTotal(chunk)))+64)
	} else {
		clear(scratch.seen)
	}
	seen := scratch.seen
	emitPair := func(a, b int32) {
		u, v := idOf[a], idOf[b]
		if u == v {
			return // an edge between a point and its own periodic copy
		}
		if isInt[a] && !seen[pair{u, v}] {
			seen[pair{u, v}] = true
			emit(graph.Edge{U: u, V: v})
		}
		if isInt[b] && !seen[pair{v, u}] {
			seen[pair{v, u}] = true
			emit(graph.Edge{U: v, V: u})
		}
	}
	if dim == 2 {
		t2.Triangles(func(v0, v1, v2 int32) {
			emitPair(v0, v1)
			emitPair(v1, v2)
			emitPair(v0, v2)
		})
	} else {
		t3.Tetrahedra(func(v [4]int32) {
			for i := 0; i < 4; i++ {
				for j := i + 1; j < 4; j++ {
					emitPair(v[i], v[j])
				}
			}
		})
	}
	// Hand the (possibly regrown) index slices back for the next chunk.
	scratch.idOf, scratch.isInt = idOf, isInt
}

func isSuperIdx(dim int, v int32) bool {
	if dim == 2 {
		return v < 3
	}
	return v < 4
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Points returns all generated vertex positions in ID order.
func Points(p Params) []geometry.Point {
	return p.grid().AllPoints()
}
