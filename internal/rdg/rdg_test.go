package rdg

import (
	"testing"

	"repro/internal/delaunay"
	"repro/internal/geometry"
	"repro/internal/graph"
)

// periodicReference computes the exact periodic Delaunay edge set by
// triangulating the points together with all 3^d - 1 shifted copies and
// keeping edges incident to at least one original point.
func periodicReference(p Params, pts []geometry.Point) map[graph.Edge]bool {
	dim := p.Dim
	offsets := [][3]float64{}
	var build func(d int, cur [3]float64)
	build = func(d int, cur [3]float64) {
		if d == dim {
			offsets = append(offsets, cur)
			return
		}
		for _, o := range []float64{-1, 0, 1} {
			cur[d] = o
			build(d+1, cur)
		}
	}
	build(0, [3]float64{})

	set := make(map[graph.Edge]bool)
	if dim == 2 {
		var coords [][2]float64
		var ids []uint64
		var real []bool
		for _, off := range offsets {
			isReal := off == [3]float64{}
			for _, pt := range pts {
				coords = append(coords, [2]float64{pt.X[0] + off[0], pt.X[1] + off[1]})
				ids = append(ids, pt.ID)
				real = append(real, isReal)
			}
		}
		t := delaunay.Triangulate2D(coords)
		t.Edges(func(a, b int32) {
			ia, ib := a-3, b-3
			u, v := ids[ia], ids[ib]
			if u == v {
				return
			}
			if real[ia] {
				set[graph.Edge{U: u, V: v}] = true
			}
			if real[ib] {
				set[graph.Edge{U: v, V: u}] = true
			}
		})
		return set
	}
	var coords [][3]float64
	var ids []uint64
	var real []bool
	for _, off := range offsets {
		isReal := off == [3]float64{}
		for _, pt := range pts {
			coords = append(coords, [3]float64{pt.X[0] + off[0], pt.X[1] + off[1], pt.X[2] + off[2]})
			ids = append(ids, pt.ID)
			real = append(real, isReal)
		}
	}
	t := delaunay.Triangulate3D(coords)
	t.Edges(func(a, b int32) {
		ia, ib := a-4, b-4
		u, v := ids[ia], ids[ib]
		if u == v {
			return
		}
		if real[ia] {
			set[graph.Edge{U: u, V: v}] = true
		}
		if real[ib] {
			set[graph.Edge{U: v, V: u}] = true
		}
	})
	return set
}

// TestMatchesPeriodicReference: the distributed chunk+halo triangulation
// reproduces the exact periodic Delaunay graph.
func TestMatchesPeriodicReference(t *testing.T) {
	cases := []Params{
		{N: 120, Dim: 2, Seed: 1, Chunks: 1},
		{N: 120, Dim: 2, Seed: 1, Chunks: 4},
		{N: 200, Dim: 2, Seed: 2, Chunks: 9},
		{N: 80, Dim: 3, Seed: 3, Chunks: 1},
		{N: 90, Dim: 3, Seed: 4, Chunks: 8},
	}
	for _, p := range cases {
		pts := Points(p)
		if uint64(len(pts)) != p.N {
			t.Fatalf("%+v: %d points, want %d", p, len(pts), p.N)
		}
		want := periodicReference(p, pts)
		el, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[graph.Edge]bool)
		for _, e := range el.Edges {
			if got[e] {
				t.Errorf("%+v: duplicate edge %v", p, e)
			}
			got[e] = true
		}
		missing, spurious := 0, 0
		for e := range want {
			if !got[e] {
				missing++
			}
		}
		for e := range got {
			if !want[e] {
				spurious++
			}
		}
		if missing > 0 || spurious > 0 {
			t.Errorf("%+v: %d missing, %d spurious of %d expected", p, missing, spurious, len(want))
		}
	}
}

// TestDegreeBounds: periodic planar Delaunay in 2D has average degree
// exactly 6 (no convex hull); 3D random Delaunay about 15.5.
func TestAverageDegree2D(t *testing.T) {
	p := Params{N: 2000, Dim: 2, Seed: 5, Chunks: 4}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	stats := graph.ComputeStats(el)
	if stats.AvgDegree < 5.9 || stats.AvgDegree > 6.1 {
		t.Errorf("2D periodic Delaunay avg degree %v, want ~6", stats.AvgDegree)
	}
	if stats.Components != 1 {
		t.Errorf("Delaunay graph should be connected, got %d components", stats.Components)
	}
}

func TestAverageDegree3D(t *testing.T) {
	p := Params{N: 500, Dim: 3, Seed: 6, Chunks: 2}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	stats := graph.ComputeStats(el)
	// The asymptotic mean degree of 3D Poisson-Delaunay is 2 + 48*pi^2/35
	// ~ 15.54.
	if stats.AvgDegree < 14 || stats.AvgDegree > 17 {
		t.Errorf("3D periodic Delaunay avg degree %v, want ~15.5", stats.AvgDegree)
	}
}

func TestWorkerIndependence(t *testing.T) {
	p := Params{N: 600, Dim: 2, Seed: 7, Chunks: 4}
	base, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	base.Sort()
	got, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	got.Sort()
	if got.Len() != base.Len() {
		t.Fatal("edge count depends on workers")
	}
	for i := range base.Edges {
		if base.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestSymmetry(t *testing.T) {
	p := Params{N: 400, Dim: 2, Seed: 8, Chunks: 4}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[graph.Edge]bool, el.Len())
	for _, e := range el.Edges {
		set[e] = true
	}
	for _, e := range el.Edges {
		if !set[graph.Edge{U: e.V, V: e.U}] {
			t.Fatalf("edge %v has no mirror", e)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{N: 2, Dim: 2}).Validate(); err == nil {
		t.Error("tiny n accepted")
	}
	if err := (Params{N: 100, Dim: 4}).Validate(); err == nil {
		t.Error("dim=4 accepted")
	}
	if err := (Params{N: 100, Dim: 2}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func BenchmarkChunk2D(b *testing.B) {
	p := Params{N: 1 << 12, Dim: 2, Seed: 1, Chunks: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 1)
	}
}

func BenchmarkChunk3D(b *testing.B) {
	p := Params{N: 1 << 10, Dim: 3, Seed: 1, Chunks: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 3)
	}
}
