package rgg

import (
	"math"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/graph"
)

// GenerateChunkBatched is the CPU realization of the three-phase GPGPU
// edge pipeline of §5.3: a first pass over all cell pairs only *counts*
// edges, a prefix sum over the counts allocates one exact-size edge array
// with per-pair offsets, and a second pass re-evaluates the comparisons
// and writes the edges into their slots. On a GPU the first and third
// phases are the data-parallel kernels and the prefix sum sizes the device
// allocation; on the CPU the benefit is a single exact allocation instead
// of append growth. The emitted edge multiset is identical to
// GenerateChunk (verified by tests).
func GenerateChunkBatched(p Params, peID uint64) core.Result {
	g := p.grid()
	acc := NewCellAccess(g)
	res := core.Result{PE: int(peID)}
	lo, hi := g.ChunkRange(peID)

	layers := int64(math.Ceil(p.R / g.CellSide))
	if layers < 1 {
		layers = 1
	}
	r2 := p.R * p.R

	type pairTask struct {
		own, neigh [3]uint32
		same       bool
	}
	var tasks []pairTask

	// Enumerate the cell-pair tasks (own cell x neighbour cell).
	for chunk := lo; chunk < hi; chunk++ {
		cellsInChunk := g.CellsPerChunk()
		for ci := uint64(0); ci < cellsInChunk; ci++ {
			cc := g.ChunkCellCoord(chunk, ci)
			if len(acc.Cell(cc)) == 0 {
				continue
			}
			var off [3]int64
			addTask := func() {
				var nc [3]uint32
				for i := 0; i < p.Dim; i++ {
					v := int64(cc[i]) + off[i]
					if v < 0 || v >= int64(g.GlobalDim) {
						return
					}
					nc[i] = uint32(v)
				}
				tasks = append(tasks, pairTask{own: cc, neigh: nc, same: nc == cc})
			}
			for dx := -layers; dx <= layers; dx++ {
				off[0] = dx
				for dy := -layers; dy <= layers; dy++ {
					off[1] = dy
					if p.Dim == 2 {
						addTask()
						continue
					}
					for dz := -layers; dz <= layers; dz++ {
						off[2] = dz
						addTask()
					}
				}
			}
		}
	}

	countPair := func(t pairTask, emit func(u, v geometry.Point)) uint64 {
		own := acc.Cell(t.own)
		pts := acc.Cell(t.neigh)
		var count uint64
		for i := range own {
			for j := range pts {
				if t.same && i == j {
					continue
				}
				if geometry.Dist2(p.Dim, own[i].X, pts[j].X) <= r2 {
					count++
					if emit != nil {
						emit(own[i], pts[j])
					}
				}
			}
		}
		res.Comparisons += uint64(len(own) * len(pts))
		return count
	}

	// Phase 1: count.
	counts := make([]uint64, len(tasks)+1)
	for i, t := range tasks {
		counts[i+1] = countPair(t, nil)
	}
	// Phase 2: prefix sum.
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	// Phase 3: fill.
	edges := make([]graph.Edge, counts[len(tasks)])
	for i, t := range tasks {
		cursor := counts[i]
		countPair(t, func(u, v geometry.Point) {
			edges[cursor] = graph.Edge{U: u.ID, V: v.ID}
			cursor++
		})
	}
	res.Edges = edges
	return res
}
