package rgg

import (
	"math"

	"repro/internal/geometry"
	"repro/internal/prng"
	"repro/internal/sampling"
)

// Grid is the communication-free point-placement machinery shared by the
// spatial generators (RGG §5 and RDG §6): a power-of-two grid of chunks
// assigned along a Morton curve, each subdivided into equal cells, with
// vertex counts distributed by recursive binomial splitting and point
// coordinates drawn from per-cell hash-seeded streams. Any PE can
// recompute any cell of any chunk bit-identically.
type Grid struct {
	N      uint64
	Dim    int
	Seed   uint64
	Chunks uint64 // logical PEs

	ChunkGridDim uint64  // chunks per dimension (power of two)
	NumChunks    uint64  // ChunkGridDim^Dim
	ChunkSide    float64 // 1 / ChunkGridDim
	CellsPerDim  uint64  // cells per chunk per dimension
	CellSide     float64
	GlobalDim    uint64 // ChunkGridDim * CellsPerDim

	tagCounts, tagCells, tagPoints uint64
}

// NewGrid derives the grid for n points in [0,1)^dim with a target cell
// side length, `chunks` logical PEs and a tag triple namespacing the
// random streams (so RGG and RDG point sets are independent).
func NewGrid(n uint64, dim int, target float64, chunks uint64, seed, tagCounts, tagCells, tagPoints uint64) *Grid {
	g := &Grid{N: n, Dim: dim, Seed: seed, Chunks: chunks,
		tagCounts: tagCounts, tagCells: tagCells, tagPoints: tagPoints}
	pow := func(base uint64) uint64 {
		t := base * base
		if dim == 3 {
			t *= base
		}
		return t
	}
	g.ChunkGridDim = 1
	for pow(g.ChunkGridDim) < chunks {
		g.ChunkGridDim *= 2
	}
	g.NumChunks = pow(g.ChunkGridDim)
	g.ChunkSide = 1 / float64(g.ChunkGridDim)

	g.CellsPerDim = uint64(g.ChunkSide / target)
	if g.CellsPerDim < 1 {
		g.CellsPerDim = 1
	}
	g.CellSide = g.ChunkSide / float64(g.CellsPerDim)
	g.GlobalDim = g.ChunkGridDim * g.CellsPerDim
	return g
}

// CellsPerChunk returns the number of cells of one chunk.
func (g *Grid) CellsPerChunk() uint64 {
	c := g.CellsPerDim * g.CellsPerDim
	if g.Dim == 3 {
		c *= g.CellsPerDim
	}
	return c
}

// ChunkRange returns the Morton chunk range [lo, hi) owned by a PE.
func (g *Grid) ChunkRange(pe uint64) (uint64, uint64) {
	return pe * g.NumChunks / g.Chunks, (pe + 1) * g.NumChunks / g.Chunks
}

// ChunkCounts returns the vertex counts of all chunks. O(NumChunks) —
// used only by the reference paths (AllPoints); per-PE code uses
// ChunkRank instead.
func (g *Grid) ChunkCounts() []uint64 {
	return sampling.RecursiveSplitEqual(g.Seed^g.tagCounts, g.N, g.NumChunks, 0, g.NumChunks)
}

// ChunkRank returns the global vertex-ID base (sum of the counts of all
// lower chunks) and the vertex count of one chunk in O(log NumChunks)
// binomial draws, bit-identical to prefix-summing ChunkCounts.
func (g *Grid) ChunkRank(chunk uint64) (idBase, count uint64) {
	return sampling.RecursiveSplitEqualRank(g.Seed^g.tagCounts, g.N, g.NumChunks, chunk)
}

// CellCounts splits a chunk's vertex count over its cells (row-major
// in-chunk order).
func (g *Grid) CellCounts(chunkMorton, count uint64) []uint64 {
	seed := prng.HashWords64(g.Seed, g.tagCells, chunkMorton)
	return sampling.RecursiveSplitEqual(seed, count, g.CellsPerChunk(), 0, g.CellsPerChunk())
}

// CellCountsInto is CellCounts writing into a caller-provided buffer of
// length CellsPerChunk.
func (g *Grid) CellCountsInto(chunkMorton, count uint64, out []uint64) {
	seed := prng.HashWords64(g.Seed, g.tagCells, chunkMorton)
	sampling.RecursiveSplitEqualInto(seed, count, g.CellsPerChunk(), 0, g.CellsPerChunk(), out)
}

// ChunkCellCoord converts a chunk Morton index and a row-major in-chunk
// cell index into global cell coordinates.
func (g *Grid) ChunkCellCoord(chunkMorton, cellIdx uint64) [3]uint32 {
	cc := geometry.MortonDecode(g.Dim, chunkMorton)
	var local [3]uint32
	if g.Dim == 3 {
		local[2] = uint32(cellIdx % g.CellsPerDim)
		cellIdx /= g.CellsPerDim
	}
	local[1] = uint32(cellIdx % g.CellsPerDim)
	local[0] = uint32(cellIdx / g.CellsPerDim)
	var out [3]uint32
	for i := 0; i < g.Dim; i++ {
		out[i] = cc[i]*uint32(g.CellsPerDim) + local[i]
	}
	return out
}

// GlobalCellIndex flattens global cell coordinates row-major.
func (g *Grid) GlobalCellIndex(c [3]uint32) uint64 {
	idx := uint64(c[0])
	idx = idx*g.GlobalDim + uint64(c[1])
	if g.Dim == 3 {
		idx = idx*g.GlobalDim + uint64(c[2])
	}
	return idx
}

// CellOrigin returns the lower corner of a cell.
func (g *Grid) CellOrigin(c [3]uint32) [3]float64 {
	var o [3]float64
	for i := 0; i < g.Dim; i++ {
		o[i] = float64(c[i]) * g.CellSide
	}
	return o
}

// OwnerChunkOfCell returns the Morton index of the chunk containing a
// global cell.
func (g *Grid) OwnerChunkOfCell(c [3]uint32) uint64 {
	var cc [3]uint32
	for i := 0; i < g.Dim; i++ {
		cc[i] = c[i] / uint32(g.CellsPerDim)
	}
	return geometry.MortonEncode(g.Dim, cc)
}

// InChunkCellIndex returns the row-major in-chunk index of a global cell.
func (g *Grid) InChunkCellIndex(c [3]uint32) uint64 {
	var local [3]uint64
	for i := 0; i < g.Dim; i++ {
		local[i] = uint64(c[i] % uint32(g.CellsPerDim))
	}
	idx := local[0]*g.CellsPerDim + local[1]
	if g.Dim == 3 {
		idx = idx*g.CellsPerDim + local[2]
	}
	return idx
}

// CellPoints generates the points of one cell from its hash-seeded stream.
func (g *Grid) CellPoints(cellIdx uint64, origin [3]float64, count, idBase uint64) []geometry.Point {
	return g.AppendCellPoints(make([]geometry.Point, 0, count), cellIdx, origin, count, idBase)
}

// AppendCellPoints generates the points of one cell from its hash-seeded
// stream and appends them to dst — the in-place variant backing the cell
// arena. The random stream and the produced points are identical to
// CellPoints.
func (g *Grid) AppendCellPoints(dst []geometry.Point, cellIdx uint64, origin [3]float64, count, idBase uint64) []geometry.Point {
	r := prng.New(g.Seed, g.tagPoints, cellIdx)
	for i := uint64(0); i < count; i++ {
		var x [3]float64
		for d := 0; d < g.Dim; d++ {
			x[d] = origin[d] + r.Float64()*g.CellSide
		}
		dst = append(dst, geometry.Point{X: x, ID: idBase + i})
	}
	return dst
}

// AllPoints returns every point in ID order (chunk Morton order, then
// in-chunk cell order). Used by reference checks.
func (g *Grid) AllPoints() []geometry.Point {
	chunkTotals := g.ChunkCounts()
	var pts []geometry.Point
	var idBase uint64
	for chunk := uint64(0); chunk < g.NumChunks; chunk++ {
		split := g.CellCounts(chunk, chunkTotals[chunk])
		for ci, count := range split {
			cc := g.ChunkCellCoord(chunk, uint64(ci))
			idx := g.GlobalCellIndex(cc)
			pts = append(pts, g.CellPoints(idx, g.CellOrigin(cc), count, idBase)...)
			idBase += count
		}
	}
	return pts
}

// unmaterialized marks a cell whose points have not been written to the
// arena yet (a zero-count cell still gets a real, empty span).
const unmaterialized = ^uint64(0)

// chunkCells is the dense cell table of one materialized chunk: the
// per-cell ID prefix sums (prefix[i+1]-prefix[i] is cell i's count) and
// the arena span offset of every cell. The buffers are recycled across
// Reset cycles, so steady-state chunk materialization allocates nothing.
type chunkCells struct {
	chunk  uint64
	idBase uint64   // global ID of the chunk's first point
	total  uint64   // vertex count of the chunk
	prefix []uint64 // len CellsPerChunk+1; in-chunk ID prefix sums
	spans  []uint64 // len CellsPerChunk; arena offsets, or unmaterialized
}

// CellAccess materializes cells with globally consistent IDs for the
// per-PE generation loops. Setup is O(log NumChunks) per touched chunk
// (lazy divide-and-conquer rank queries instead of the former eager
// O(NumChunks) arrays), and all points live in one contiguous arena
// indexed by dense per-chunk {offset, length} cell tables — no per-cell
// map entries or slice headers. Reset drops the materialized state but
// keeps the buffers, bounding a streaming PE's memory by one chunk plus
// its halo. Returned point slices alias the arena; they stay valid (the
// arena only appends, and stale backing arrays keep their contents) until
// the next Reset, and must never be mutated.
type CellAccess struct {
	g      *Grid
	arena  []geometry.Point
	chunks map[uint64]*chunkCells
	last   *chunkCells   // most-recently-touched chunk, the hot-path hit
	free   []*chunkCells // recycled tables for post-Reset reuse
}

// NewCellAccess prepares lazy cell access in O(1): no per-chunk state is
// built until a cell of that chunk is requested.
func NewCellAccess(g *Grid) *CellAccess {
	return &CellAccess{g: g, chunks: make(map[uint64]*chunkCells)}
}

// ChunkTotal returns the vertex count of a chunk — from its table when
// materialized, otherwise by a single O(log NumChunks) rank query.
func (a *CellAccess) ChunkTotal(chunk uint64) uint64 {
	if a.last != nil && a.last.chunk == chunk {
		return a.last.total
	}
	if e, ok := a.chunks[chunk]; ok {
		return e.total
	}
	_, count := a.g.ChunkRank(chunk)
	return count
}

// ChunkHaloTotal estimates how many points a chunk plus halo layers of
// neighbouring cells will materialize (torus copies included): the
// chunk's exact count scaled by the cell-box volume ratio, with headroom.
// Consumers use it to pre-size arenas; correctness never depends on it.
func (a *CellAccess) ChunkHaloTotal(chunk uint64, halo uint64) int {
	total := float64(a.ChunkTotal(chunk))
	c := float64(a.g.CellsPerDim)
	ratio := (c + 2*float64(halo)) / c
	f := ratio * ratio
	if a.g.Dim == 3 {
		f *= ratio
	}
	return int(1.1*total*f) + 64
}

// Reserve grows the point arena so the next n materialized points append
// without reallocation. Existing cell spans stay valid: they are offsets
// into the arena, which is copied, and previously returned slices keep
// aliasing the old backing array (same contract as append growth).
func (a *CellAccess) Reserve(n int) {
	if cap(a.arena)-len(a.arena) < n {
		next := make([]geometry.Point, len(a.arena), len(a.arena)+n)
		copy(next, a.arena)
		a.arena = next
	}
}

// chunkFor returns the (materialized) cell table of a chunk.
func (a *CellAccess) chunkFor(chunk uint64) *chunkCells {
	if a.last != nil && a.last.chunk == chunk {
		return a.last
	}
	if e, ok := a.chunks[chunk]; ok {
		a.last = e
		return e
	}
	var e *chunkCells
	if n := len(a.free); n > 0 {
		e = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		e = &chunkCells{}
	}
	cells := a.g.CellsPerChunk()
	if uint64(cap(e.prefix)) < cells+1 {
		e.prefix = make([]uint64, cells+1)
		e.spans = make([]uint64, cells)
	}
	e.prefix = e.prefix[:cells+1]
	e.spans = e.spans[:cells]
	e.chunk = chunk
	e.idBase, e.total = a.g.ChunkRank(chunk)
	// Cell split into prefix[1:], then accumulate in place.
	a.g.CellCountsInto(chunk, e.total, e.prefix[1:])
	e.prefix[0] = 0
	for i := uint64(0); i < cells; i++ {
		e.prefix[i+1] += e.prefix[i]
		e.spans[i] = unmaterialized
	}
	a.chunks[chunk] = e
	a.last = e
	return e
}

// Cell returns the points of a global cell coordinate, materializing them
// into the arena on first access.
func (a *CellAccess) Cell(c [3]uint32) []geometry.Point {
	e := a.chunkFor(a.g.OwnerChunkOfCell(c))
	inIdx := a.g.InChunkCellIndex(c)
	count := e.prefix[inIdx+1] - e.prefix[inIdx]
	if off := e.spans[inIdx]; off != unmaterialized {
		return a.arena[off : off+count : off+count]
	}
	off := uint64(len(a.arena))
	idx := a.g.GlobalCellIndex(c)
	a.arena = a.g.AppendCellPoints(a.arena, idx, a.g.CellOrigin(c), count, e.idBase+e.prefix[inIdx])
	e.spans[inIdx] = off
	return a.arena[off : off+count : off+count]
}

// CellTorus returns the cell at possibly out-of-range global cell
// coordinates, wrapped around the torus: the points carry the original
// IDs but positions shifted by the wrap offset. Shifted copies are
// written to the arena (one append per visit, no fresh slice); unshifted
// coordinates return the canonical cell. Used by the RDG halo.
func (a *CellAccess) CellTorus(coord [3]int64) []geometry.Point {
	var cc [3]uint32
	var shift [3]float64
	gd := int64(a.g.GlobalDim)
	for i := 0; i < a.g.Dim; i++ {
		c := coord[i]
		switch {
		case c < 0:
			c += gd
			shift[i] = -1
		case c >= gd:
			c -= gd
			shift[i] = 1
		}
		cc[i] = uint32(c)
	}
	base := a.Cell(cc)
	if shift == [3]float64{} {
		return base
	}
	off := len(a.arena)
	a.arena = append(a.arena, base...)
	out := a.arena[off : off+len(base) : off+len(base)]
	for i := range out {
		for d := 0; d < a.g.Dim; d++ {
			out[i].X[d] += shift[d]
		}
	}
	return out
}

// Reset drops all materialized chunks and empties the arena while keeping
// every buffer for reuse. Called between a streaming PE's chunks so its
// live memory stays bounded by one chunk plus halo; regenerating a
// previously dropped cell is bit-identical by construction.
func (a *CellAccess) Reset() {
	for chunk, e := range a.chunks {
		a.free = append(a.free, e)
		delete(a.chunks, chunk)
	}
	a.last = nil
	a.arena = a.arena[:0]
}

// RGGTarget is the cell-side target of the RGG generator (§5):
// max(r, n^(-1/d)).
func RGGTarget(n uint64, dim int, r float64) float64 {
	return math.Max(r, math.Pow(float64(n), -1/float64(dim)))
}

// RDGTarget is the cell-side target of the RDG generator (§6): the mean
// distance of the (d+1)-th nearest neighbour, ((d+1)/n)^(1/d).
func RDGTarget(n uint64, dim int) float64 {
	return math.Pow(float64(dim+1)/float64(n), 1/float64(dim))
}
