package rgg

import (
	"math"

	"repro/internal/geometry"
	"repro/internal/prng"
	"repro/internal/sampling"
)

// Grid is the communication-free point-placement machinery shared by the
// spatial generators (RGG §5 and RDG §6): a power-of-two grid of chunks
// assigned along a Morton curve, each subdivided into equal cells, with
// vertex counts distributed by recursive binomial splitting and point
// coordinates drawn from per-cell hash-seeded streams. Any PE can
// recompute any cell of any chunk bit-identically.
type Grid struct {
	N      uint64
	Dim    int
	Seed   uint64
	Chunks uint64 // logical PEs

	ChunkGridDim uint64  // chunks per dimension (power of two)
	NumChunks    uint64  // ChunkGridDim^Dim
	ChunkSide    float64 // 1 / ChunkGridDim
	CellsPerDim  uint64  // cells per chunk per dimension
	CellSide     float64
	GlobalDim    uint64 // ChunkGridDim * CellsPerDim

	tagCounts, tagCells, tagPoints uint64
}

// NewGrid derives the grid for n points in [0,1)^dim with a target cell
// side length, `chunks` logical PEs and a tag triple namespacing the
// random streams (so RGG and RDG point sets are independent).
func NewGrid(n uint64, dim int, target float64, chunks uint64, seed, tagCounts, tagCells, tagPoints uint64) *Grid {
	g := &Grid{N: n, Dim: dim, Seed: seed, Chunks: chunks,
		tagCounts: tagCounts, tagCells: tagCells, tagPoints: tagPoints}
	pow := func(base uint64) uint64 {
		t := base * base
		if dim == 3 {
			t *= base
		}
		return t
	}
	g.ChunkGridDim = 1
	for pow(g.ChunkGridDim) < chunks {
		g.ChunkGridDim *= 2
	}
	g.NumChunks = pow(g.ChunkGridDim)
	g.ChunkSide = 1 / float64(g.ChunkGridDim)

	g.CellsPerDim = uint64(g.ChunkSide / target)
	if g.CellsPerDim < 1 {
		g.CellsPerDim = 1
	}
	g.CellSide = g.ChunkSide / float64(g.CellsPerDim)
	g.GlobalDim = g.ChunkGridDim * g.CellsPerDim
	return g
}

// CellsPerChunk returns the number of cells of one chunk.
func (g *Grid) CellsPerChunk() uint64 {
	c := g.CellsPerDim * g.CellsPerDim
	if g.Dim == 3 {
		c *= g.CellsPerDim
	}
	return c
}

// ChunkRange returns the Morton chunk range [lo, hi) owned by a PE.
func (g *Grid) ChunkRange(pe uint64) (uint64, uint64) {
	return pe * g.NumChunks / g.Chunks, (pe + 1) * g.NumChunks / g.Chunks
}

// ChunkCounts returns the vertex counts of all chunks.
func (g *Grid) ChunkCounts() []uint64 {
	return sampling.RecursiveSplitEqual(g.Seed^g.tagCounts, g.N, g.NumChunks, 0, g.NumChunks)
}

// CellCounts splits a chunk's vertex count over its cells (row-major
// in-chunk order).
func (g *Grid) CellCounts(chunkMorton, count uint64) []uint64 {
	seed := prng.HashWords64(g.Seed, g.tagCells, chunkMorton)
	return sampling.RecursiveSplitEqual(seed, count, g.CellsPerChunk(), 0, g.CellsPerChunk())
}

// ChunkCellCoord converts a chunk Morton index and a row-major in-chunk
// cell index into global cell coordinates.
func (g *Grid) ChunkCellCoord(chunkMorton, cellIdx uint64) [3]uint32 {
	cc := geometry.MortonDecode(g.Dim, chunkMorton)
	var local [3]uint32
	if g.Dim == 3 {
		local[2] = uint32(cellIdx % g.CellsPerDim)
		cellIdx /= g.CellsPerDim
	}
	local[1] = uint32(cellIdx % g.CellsPerDim)
	local[0] = uint32(cellIdx / g.CellsPerDim)
	var out [3]uint32
	for i := 0; i < g.Dim; i++ {
		out[i] = cc[i]*uint32(g.CellsPerDim) + local[i]
	}
	return out
}

// GlobalCellIndex flattens global cell coordinates row-major.
func (g *Grid) GlobalCellIndex(c [3]uint32) uint64 {
	idx := uint64(c[0])
	idx = idx*g.GlobalDim + uint64(c[1])
	if g.Dim == 3 {
		idx = idx*g.GlobalDim + uint64(c[2])
	}
	return idx
}

// CellOrigin returns the lower corner of a cell.
func (g *Grid) CellOrigin(c [3]uint32) [3]float64 {
	var o [3]float64
	for i := 0; i < g.Dim; i++ {
		o[i] = float64(c[i]) * g.CellSide
	}
	return o
}

// OwnerChunkOfCell returns the Morton index of the chunk containing a
// global cell.
func (g *Grid) OwnerChunkOfCell(c [3]uint32) uint64 {
	var cc [3]uint32
	for i := 0; i < g.Dim; i++ {
		cc[i] = c[i] / uint32(g.CellsPerDim)
	}
	return geometry.MortonEncode(g.Dim, cc)
}

// InChunkCellIndex returns the row-major in-chunk index of a global cell.
func (g *Grid) InChunkCellIndex(c [3]uint32) uint64 {
	var local [3]uint64
	for i := 0; i < g.Dim; i++ {
		local[i] = uint64(c[i] % uint32(g.CellsPerDim))
	}
	idx := local[0]*g.CellsPerDim + local[1]
	if g.Dim == 3 {
		idx = idx*g.CellsPerDim + local[2]
	}
	return idx
}

// CellPoints generates the points of one cell from its hash-seeded stream.
func (g *Grid) CellPoints(cellIdx uint64, origin [3]float64, count, idBase uint64) []geometry.Point {
	r := prng.New(g.Seed, g.tagPoints, cellIdx)
	pts := make([]geometry.Point, count)
	for i := range pts {
		var x [3]float64
		for d := 0; d < g.Dim; d++ {
			x[d] = origin[d] + r.Float64()*g.CellSide
		}
		pts[i] = geometry.Point{X: x, ID: idBase + uint64(i)}
	}
	return pts
}

// AllPoints returns every point in ID order (chunk Morton order, then
// in-chunk cell order). Used by reference checks.
func (g *Grid) AllPoints() []geometry.Point {
	chunkTotals := g.ChunkCounts()
	var pts []geometry.Point
	var idBase uint64
	for chunk := uint64(0); chunk < g.NumChunks; chunk++ {
		split := g.CellCounts(chunk, chunkTotals[chunk])
		for ci, count := range split {
			cc := g.ChunkCellCoord(chunk, uint64(ci))
			idx := g.GlobalCellIndex(cc)
			pts = append(pts, g.CellPoints(idx, g.CellOrigin(cc), count, idBase)...)
			idBase += count
		}
	}
	return pts
}

// CellAccess provides memoized cell materialization with globally
// consistent IDs, shared by the per-PE generation loops.
type CellAccess struct {
	g           *Grid
	chunkTotals []uint64
	idPrefix    []uint64
	splitCache  map[uint64][]uint64
	prefixCache map[uint64][]uint64
	cellCache   map[uint64][]geometry.Point
}

// NewCellAccess prepares the ID prefix sums (O(NumChunks)).
func NewCellAccess(g *Grid) *CellAccess {
	a := &CellAccess{
		g:           g,
		chunkTotals: g.ChunkCounts(),
		splitCache:  map[uint64][]uint64{},
		prefixCache: map[uint64][]uint64{},
		cellCache:   map[uint64][]geometry.Point{},
	}
	a.idPrefix = make([]uint64, g.NumChunks+1)
	for i := uint64(0); i < g.NumChunks; i++ {
		a.idPrefix[i+1] = a.idPrefix[i] + a.chunkTotals[i]
	}
	return a
}

// ChunkTotal returns the vertex count of a chunk.
func (a *CellAccess) ChunkTotal(chunk uint64) uint64 { return a.chunkTotals[chunk] }

func (a *CellAccess) split(chunk uint64) []uint64 {
	if s, ok := a.splitCache[chunk]; ok {
		return s
	}
	s := a.g.CellCounts(chunk, a.chunkTotals[chunk])
	a.splitCache[chunk] = s
	return s
}

func (a *CellAccess) prefix(chunk uint64) []uint64 {
	if s, ok := a.prefixCache[chunk]; ok {
		return s
	}
	split := a.split(chunk)
	pre := make([]uint64, len(split)+1)
	for i, c := range split {
		pre[i+1] = pre[i] + c
	}
	a.prefixCache[chunk] = pre
	return pre
}

// Cell returns the memoized points of a global cell coordinate.
func (a *CellAccess) Cell(c [3]uint32) []geometry.Point {
	idx := a.g.GlobalCellIndex(c)
	if pts, ok := a.cellCache[idx]; ok {
		return pts
	}
	chunk := a.g.OwnerChunkOfCell(c)
	inIdx := a.g.InChunkCellIndex(c)
	count := a.split(chunk)[inIdx]
	idBase := a.idPrefix[chunk] + a.prefix(chunk)[inIdx]
	pts := a.g.CellPoints(idx, a.g.CellOrigin(c), count, idBase)
	a.cellCache[idx] = pts
	return pts
}

// RGGTarget is the cell-side target of the RGG generator (§5):
// max(r, n^(-1/d)).
func RGGTarget(n uint64, dim int, r float64) float64 {
	return math.Max(r, math.Pow(float64(n), -1/float64(dim)))
}

// RDGTarget is the cell-side target of the RDG generator (§6): the mean
// distance of the (d+1)-th nearest neighbour, ((d+1)/n)^(1/d).
func RDGTarget(n uint64, dim int) float64 {
	return math.Pow(float64(dim+1)/float64(n), 1/float64(dim))
}
