package rgg

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geometry"
)

// mapCellAccess is the former map-backed CellAccess, kept here as the
// reference the arena-backed implementation must match pointwise.
type mapCellAccess struct {
	g           *Grid
	chunkTotals []uint64
	idPrefix    []uint64
	splitCache  map[uint64][]uint64
	prefixCache map[uint64][]uint64
	cellCache   map[uint64][]geometry.Point
}

func newMapCellAccess(g *Grid) *mapCellAccess {
	a := &mapCellAccess{
		g:           g,
		chunkTotals: g.ChunkCounts(),
		splitCache:  map[uint64][]uint64{},
		prefixCache: map[uint64][]uint64{},
		cellCache:   map[uint64][]geometry.Point{},
	}
	a.idPrefix = make([]uint64, g.NumChunks+1)
	for i := uint64(0); i < g.NumChunks; i++ {
		a.idPrefix[i+1] = a.idPrefix[i] + a.chunkTotals[i]
	}
	return a
}

func (a *mapCellAccess) split(chunk uint64) []uint64 {
	if s, ok := a.splitCache[chunk]; ok {
		return s
	}
	s := a.g.CellCounts(chunk, a.chunkTotals[chunk])
	a.splitCache[chunk] = s
	return s
}

func (a *mapCellAccess) prefix(chunk uint64) []uint64 {
	if s, ok := a.prefixCache[chunk]; ok {
		return s
	}
	split := a.split(chunk)
	pre := make([]uint64, len(split)+1)
	for i, c := range split {
		pre[i+1] = pre[i] + c
	}
	a.prefixCache[chunk] = pre
	return pre
}

func (a *mapCellAccess) Cell(c [3]uint32) []geometry.Point {
	idx := a.g.GlobalCellIndex(c)
	if pts, ok := a.cellCache[idx]; ok {
		return pts
	}
	chunk := a.g.OwnerChunkOfCell(c)
	inIdx := a.g.InChunkCellIndex(c)
	count := a.split(chunk)[inIdx]
	idBase := a.idPrefix[chunk] + a.prefix(chunk)[inIdx]
	pts := a.g.CellPoints(idx, a.g.CellOrigin(c), count, idBase)
	a.cellCache[idx] = pts
	return pts
}

func testGrids() []*Grid {
	return []*Grid{
		NewGrid(2000, 2, RGGTarget(2000, 2, 0.05), 4, 1, core.TagRGGCounts, core.TagRGGCell, core.TagRGGPoints),
		NewGrid(1500, 2, RGGTarget(1500, 2, 0.02), 16, 7, core.TagRGGCounts, core.TagRGGCell, core.TagRGGPoints),
		NewGrid(900, 3, RGGTarget(900, 3, 0.15), 8, 3, core.TagRGGCounts, core.TagRGGCell, core.TagRGGPoints),
		NewGrid(1200, 2, RDGTarget(1200, 2), 9, 5, core.TagRDGCell+1, core.TagRDGCell+2, core.TagRDGCell+3),
	}
}

func samePoints(a, b []geometry.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].X != b[i].X {
			return false
		}
	}
	return true
}

// TestArenaMatchesMapAccess: the arena-backed CellAccess returns
// pointwise-identical cells (IDs and coordinates) to the map-backed
// reference, for every cell of every chunk.
func TestArenaMatchesMapAccess(t *testing.T) {
	for gi, g := range testGrids() {
		want := newMapCellAccess(g)
		got := NewCellAccess(g)
		for chunk := uint64(0); chunk < g.NumChunks; chunk++ {
			for ci := uint64(0); ci < g.CellsPerChunk(); ci++ {
				cc := g.ChunkCellCoord(chunk, ci)
				if !samePoints(want.Cell(cc), got.Cell(cc)) {
					t.Fatalf("grid %d chunk %d cell %d: arena cell differs from map cell", gi, chunk, ci)
				}
			}
			if got.ChunkTotal(chunk) != want.chunkTotals[chunk] {
				t.Fatalf("grid %d chunk %d: total %d, want %d", gi, chunk, got.ChunkTotal(chunk), want.chunkTotals[chunk])
			}
		}
	}
}

// TestArenaResetRegenerates: dropping the arena between chunks and
// re-querying a cell reproduces it bit-identically, and ChunkTotal stays
// available without materialized state.
func TestArenaResetRegenerates(t *testing.T) {
	g := testGrids()[1]
	acc := NewCellAccess(g)
	var snap [][]geometry.Point
	for chunk := uint64(0); chunk < g.NumChunks; chunk++ {
		cc := g.ChunkCellCoord(chunk, 0)
		pts := acc.Cell(cc)
		cp := make([]geometry.Point, len(pts))
		copy(cp, pts)
		snap = append(snap, cp)
	}
	totals := g.ChunkCounts()
	acc.Reset()
	for chunk := uint64(0); chunk < g.NumChunks; chunk++ {
		if acc.ChunkTotal(chunk) != totals[chunk] {
			t.Fatalf("chunk %d: total after reset %d, want %d", chunk, acc.ChunkTotal(chunk), totals[chunk])
		}
	}
	for chunk := uint64(0); chunk < g.NumChunks; chunk++ {
		cc := g.ChunkCellCoord(chunk, 0)
		if !samePoints(acc.Cell(cc), snap[chunk]) {
			t.Fatalf("chunk %d: regenerated cell differs after Reset", chunk)
		}
	}
}

// TestCellTorusWrap: out-of-range coordinates wrap around the torus with
// the expected ±1 position shift and unchanged IDs; in-range coordinates
// return the canonical cell.
func TestCellTorusWrap(t *testing.T) {
	g := testGrids()[3]
	acc := NewCellAccess(g)
	gd := int64(g.GlobalDim)
	base := acc.Cell([3]uint32{0, 1, 0})
	wrapped := acc.CellTorus([3]int64{gd, 1, 0})
	if len(wrapped) != len(base) {
		t.Fatalf("wrapped cell has %d points, want %d", len(wrapped), len(base))
	}
	for i := range base {
		if wrapped[i].ID != base[i].ID {
			t.Fatalf("point %d: wrapped ID %d, want %d", i, wrapped[i].ID, base[i].ID)
		}
		if wrapped[i].X[0] != base[i].X[0]+1 || wrapped[i].X[1] != base[i].X[1] {
			t.Fatalf("point %d: wrapped position %v, base %v", i, wrapped[i].X, base[i].X)
		}
	}
	// In-range coordinates must alias the canonical cell verbatim.
	if !samePoints(acc.CellTorus([3]int64{0, 1, 0}), base) {
		t.Fatal("in-range CellTorus differs from Cell")
	}
}

// TestChunkRankMatchesCounts: the O(log P) rank query agrees with the
// full ChunkCounts prefix sums on every chunk.
func TestChunkRankMatchesCounts(t *testing.T) {
	for gi, g := range testGrids() {
		counts := g.ChunkCounts()
		var before uint64
		for chunk := uint64(0); chunk < g.NumChunks; chunk++ {
			idBase, count := g.ChunkRank(chunk)
			if idBase != before || count != counts[chunk] {
				t.Fatalf("grid %d chunk %d: rank (%d, %d), want (%d, %d)",
					gi, chunk, idBase, count, before, counts[chunk])
			}
			before += counts[chunk]
		}
	}
}
