// Package rgg implements the communication-free random geometric graph
// generator of the paper (§5) for two and three dimensions.
//
// The unit cube is divided into a power-of-two grid of chunks assigned to
// logical PEs along a Morton (Z-order) curve. Each chunk is subdivided
// into cells of side length at least max(r, n^(-1/d)). Vertex counts are
// distributed over chunks and cells by recursive binomial splitting seeded
// with structural identifiers, and point coordinates are drawn from
// per-cell streams — so a PE can regenerate any border ("ghost") cell of a
// neighbouring chunk bit-identically without communication.
package rgg

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/pe"
)

// Params configures a random geometric graph.
type Params struct {
	N    uint64  // number of vertices
	R    float64 // connection radius
	Dim  int     // 2 or 3
	Seed uint64
	// Chunks is the number of logical PEs. The chunk grid is the smallest
	// power-of-two grid with at least Chunks cells; chunks are distributed
	// to PEs in Morton order. 0 means 1.
	Chunks uint64
}

func (p Params) chunks() uint64 {
	if p.Chunks == 0 {
		return 1
	}
	return p.Chunks
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N == 0 {
		return fmt.Errorf("rgg: n must be positive")
	}
	if p.Dim != 2 && p.Dim != 3 {
		return fmt.Errorf("rgg: dim must be 2 or 3, got %d", p.Dim)
	}
	if p.R <= 0 || p.R > 1 {
		return fmt.Errorf("rgg: radius %v outside (0,1]", p.R)
	}
	return nil
}

func (p Params) grid() *Grid {
	return NewGrid(p.N, p.Dim, RGGTarget(p.N, p.Dim, p.R), p.chunks(),
		p.Seed, core.TagRGGCounts, core.TagRGGCell, core.TagRGGPoints)
}

// Generate produces the full graph. Undirected edges appear once per
// endpoint in the merged list.
func Generate(p Params, workers int) (*graph.EdgeList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	results := pe.ForEach(int(p.chunks()), workers, func(c int) core.Result {
		return GenerateChunk(p, uint64(c))
	})
	return core.MergeResults(p.N, results), nil
}

// GenerateChunk runs one logical PE: it generates the vertices of its
// chunks plus the ghost cells of neighbouring chunks and emits all edges
// incident to its local vertices.
func GenerateChunk(p Params, peID uint64) core.Result {
	res := core.Result{PE: int(peID)}
	res.Edges = make([]graph.Edge, 0, ExpectedChunkEdges(p))
	res.RedundantVertices, res.Comparisons = StreamChunk(p, peID, func(e graph.Edge) {
		res.Edges = append(res.Edges, e)
	})
	return res
}

// ExpectedChunkEdges estimates one PE's local edge count — its share of
// the vertices times the expected degree n * vol(ball(r)), with headroom
// for the variance — used to pre-size the chunk edge list in one
// allocation. It is an estimate only: emission never depends on it.
func ExpectedChunkEdges(p Params) uint64 {
	vol := math.Pi * p.R * p.R
	if p.Dim == 3 {
		vol = 4.0 / 3.0 * math.Pi * p.R * p.R * p.R
	}
	perVertex := float64(p.N) * vol
	if perVertex > float64(p.N) {
		perVertex = float64(p.N) // degree cannot exceed n, even for r near 1
	}
	verts := float64(p.N) / float64(p.chunks())
	return uint64(1.2*perVertex*verts) + 64
}

// ghostSet tracks which ghost chunks have been counted towards the
// redundancy statistic: a bitset over the bounded neighbour box of the
// PE's chunk range (own chunks dilated by the cell-stencil reach in
// chunks), replacing the former per-PE map[uint64]bool.
type ghostSet struct {
	g     *Grid
	base  [3]int64
	dims  [3]int64
	words []uint64
}

// newGhostSet derives the neighbour box of the chunks [lo, hi) with a
// dilation of chunkHalo chunks per side, clamped to the chunk grid.
func newGhostSet(g *Grid, lo, hi uint64, chunkHalo int64) *ghostSet {
	s := &ghostSet{g: g}
	var bmin, bmax [3]int64
	for i := range bmin {
		bmin[i], bmax[i] = int64(g.ChunkGridDim), -1
	}
	for chunk := lo; chunk < hi; chunk++ {
		cc := geometry.MortonDecode(g.Dim, chunk)
		for i := 0; i < g.Dim; i++ {
			if int64(cc[i]) < bmin[i] {
				bmin[i] = int64(cc[i])
			}
			if int64(cc[i]) > bmax[i] {
				bmax[i] = int64(cc[i])
			}
		}
	}
	for i := 0; i < g.Dim; i++ {
		bmin[i] -= chunkHalo
		bmax[i] += chunkHalo
		if bmin[i] < 0 {
			bmin[i] = 0
		}
		if bmax[i] >= int64(g.ChunkGridDim) {
			bmax[i] = int64(g.ChunkGridDim) - 1
		}
	}
	n := int64(1)
	for i := 0; i < 3; i++ {
		s.base[i] = bmin[i]
		s.dims[i] = 1
		if i < g.Dim {
			s.dims[i] = bmax[i] - bmin[i] + 1
			n *= s.dims[i]
		}
	}
	s.words = make([]uint64, (n+63)/64)
	return s
}

// add marks a chunk and reports whether it was newly added.
func (s *ghostSet) add(chunk uint64) bool {
	cc := geometry.MortonDecode(s.g.Dim, chunk)
	idx := int64(0)
	for i := 0; i < s.g.Dim; i++ {
		idx = idx*s.dims[i] + int64(cc[i]) - s.base[i]
	}
	w, b := idx/64, uint64(1)<<(idx%64)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	return true
}

// StreamChunk emits the chunk's edges through the callback in the exact
// deterministic order of GenerateChunk, cell by cell, without
// materializing the chunk edge list — only the cell arena of the chunk
// currently in flight (plus its ghost halo) is held in memory; the arena
// resets between the PE's chunks. It returns the redundant-vertex and
// comparison counters of the chunk.
func StreamChunk(p Params, peID uint64, emit func(graph.Edge)) (redundantVertices, comparisons uint64) {
	g := p.grid()
	acc := NewCellAccess(g)
	lo, hi := g.ChunkRange(peID)

	layers := int64(math.Ceil(p.R / g.CellSide))
	if layers < 1 {
		layers = 1
	}
	r2 := p.R * p.R
	chunkHalo := (layers + int64(g.CellsPerDim) - 1) / int64(g.CellsPerDim)
	ghosts := newGhostSet(g, lo, hi, chunkHalo)

	for chunk := lo; chunk < hi; chunk++ {
		cellsInChunk := g.CellsPerChunk()
		for ci := uint64(0); ci < cellsInChunk; ci++ {
			cc := g.ChunkCellCoord(chunk, ci)
			own := acc.Cell(cc)
			if len(own) == 0 {
				continue
			}
			var off [3]int64
			visit := func() {
				var nc [3]uint32
				for i := 0; i < p.Dim; i++ {
					v := int64(cc[i]) + off[i]
					if v < 0 || v >= int64(g.GlobalDim) {
						return
					}
					nc[i] = uint32(v)
				}
				pts := acc.Cell(nc)
				neighChunk := g.OwnerChunkOfCell(nc)
				if (neighChunk < lo || neighChunk >= hi) && ghosts.add(neighChunk) {
					redundantVertices += acc.ChunkTotal(neighChunk)
				}
				same := nc == cc
				for i := range own {
					for j := range pts {
						if same && i == j {
							continue
						}
						comparisons++
						if geometry.Dist2(p.Dim, own[i].X, pts[j].X) <= r2 {
							emit(graph.Edge{U: own[i].ID, V: pts[j].ID})
						}
					}
				}
			}
			for dx := -layers; dx <= layers; dx++ {
				off[0] = dx
				for dy := -layers; dy <= layers; dy++ {
					off[1] = dy
					if p.Dim == 2 {
						visit()
						continue
					}
					for dz := -layers; dz <= layers; dz++ {
						off[2] = dz
						visit()
					}
				}
			}
		}
		acc.Reset() // bound memory by one chunk + halo
	}
	return redundantVertices, comparisons
}

// Points returns all generated vertex positions in ID order. Used by
// reference checks.
func Points(p Params) []geometry.Point {
	return p.grid().AllPoints()
}

// ConnectivityRadius returns the radius 0.55 * (ln n / n)^(1/d) used by the
// paper's experiments (§8.4), which keeps the graph connected w.h.p.
func ConnectivityRadius(n uint64, dim int) float64 {
	nf := float64(n)
	return 0.55 * math.Pow(math.Log(nf)/nf, 1/float64(dim))
}
