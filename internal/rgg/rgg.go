// Package rgg implements the communication-free random geometric graph
// generator of the paper (§5) for two and three dimensions.
//
// The unit cube is divided into a power-of-two grid of chunks assigned to
// logical PEs along a Morton (Z-order) curve. Each chunk is subdivided
// into cells of side length at least max(r, n^(-1/d)). Vertex counts are
// distributed over chunks and cells by recursive binomial splitting seeded
// with structural identifiers, and point coordinates are drawn from
// per-cell streams — so a PE can regenerate any border ("ghost") cell of a
// neighbouring chunk bit-identically without communication.
package rgg

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/pe"
)

// Params configures a random geometric graph.
type Params struct {
	N    uint64  // number of vertices
	R    float64 // connection radius
	Dim  int     // 2 or 3
	Seed uint64
	// Chunks is the number of logical PEs. The chunk grid is the smallest
	// power-of-two grid with at least Chunks cells; chunks are distributed
	// to PEs in Morton order. 0 means 1.
	Chunks uint64
}

func (p Params) chunks() uint64 {
	if p.Chunks == 0 {
		return 1
	}
	return p.Chunks
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N == 0 {
		return fmt.Errorf("rgg: n must be positive")
	}
	if p.Dim != 2 && p.Dim != 3 {
		return fmt.Errorf("rgg: dim must be 2 or 3, got %d", p.Dim)
	}
	if p.R <= 0 || p.R > 1 {
		return fmt.Errorf("rgg: radius %v outside (0,1]", p.R)
	}
	return nil
}

func (p Params) grid() *Grid {
	return NewGrid(p.N, p.Dim, RGGTarget(p.N, p.Dim, p.R), p.chunks(),
		p.Seed, core.TagRGGCounts, core.TagRGGCell, core.TagRGGPoints)
}

// Generate produces the full graph. Undirected edges appear once per
// endpoint in the merged list.
func Generate(p Params, workers int) (*graph.EdgeList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	results := pe.ForEach(int(p.chunks()), workers, func(c int) core.Result {
		return GenerateChunk(p, uint64(c))
	})
	return core.MergeResults(p.N, results), nil
}

// GenerateChunk runs one logical PE: it generates the vertices of its
// chunks plus the ghost cells of neighbouring chunks and emits all edges
// incident to its local vertices.
func GenerateChunk(p Params, peID uint64) core.Result {
	res := core.Result{PE: int(peID)}
	res.Edges = make([]graph.Edge, 0, ExpectedChunkEdges(p))
	res.RedundantVertices, res.Comparisons = StreamChunk(p, peID, func(e graph.Edge) {
		res.Edges = append(res.Edges, e)
	})
	return res
}

// ExpectedChunkEdges estimates one PE's local edge count — its share of
// the vertices times the expected degree n * vol(ball(r)), with headroom
// for the variance — used to pre-size the chunk edge list in one
// allocation. It is an estimate only: emission never depends on it.
func ExpectedChunkEdges(p Params) uint64 {
	vol := math.Pi * p.R * p.R
	if p.Dim == 3 {
		vol = 4.0 / 3.0 * math.Pi * p.R * p.R * p.R
	}
	perVertex := float64(p.N) * vol
	if perVertex > float64(p.N) {
		perVertex = float64(p.N) // degree cannot exceed n, even for r near 1
	}
	verts := float64(p.N) / float64(p.chunks())
	return uint64(1.2*perVertex*verts) + 64
}

// StreamChunk emits the chunk's edges through the callback in the exact
// deterministic order of GenerateChunk, cell by cell, without
// materializing the chunk edge list — only the grid-cell context (the
// memoized points of visited cells) is held in memory. It returns the
// redundant-vertex and comparison counters of the chunk.
func StreamChunk(p Params, peID uint64, emit func(graph.Edge)) (redundantVertices, comparisons uint64) {
	g := p.grid()
	acc := NewCellAccess(g)
	lo, hi := g.ChunkRange(peID)

	layers := int64(math.Ceil(p.R / g.CellSide))
	if layers < 1 {
		layers = 1
	}
	r2 := p.R * p.R
	counted := make(map[uint64]bool) // ghost chunks already counted

	for chunk := lo; chunk < hi; chunk++ {
		cellsInChunk := g.CellsPerChunk()
		for ci := uint64(0); ci < cellsInChunk; ci++ {
			cc := g.ChunkCellCoord(chunk, ci)
			own := acc.Cell(cc)
			if len(own) == 0 {
				continue
			}
			var off [3]int64
			visit := func() {
				var nc [3]uint32
				for i := 0; i < p.Dim; i++ {
					v := int64(cc[i]) + off[i]
					if v < 0 || v >= int64(g.GlobalDim) {
						return
					}
					nc[i] = uint32(v)
				}
				neighChunk := g.OwnerChunkOfCell(nc)
				if neighChunk < lo || neighChunk >= hi {
					counted[neighChunk] = true // ghost chunk touched
				}
				pts := acc.Cell(nc)
				same := nc == cc
				for i := range own {
					for j := range pts {
						if same && i == j {
							continue
						}
						comparisons++
						if geometry.Dist2(p.Dim, own[i].X, pts[j].X) <= r2 {
							emit(graph.Edge{U: own[i].ID, V: pts[j].ID})
						}
					}
				}
			}
			for dx := -layers; dx <= layers; dx++ {
				off[0] = dx
				for dy := -layers; dy <= layers; dy++ {
					off[1] = dy
					if p.Dim == 2 {
						visit()
						continue
					}
					for dz := -layers; dz <= layers; dz++ {
						off[2] = dz
						visit()
					}
				}
			}
		}
	}
	for chunk := range counted {
		redundantVertices += acc.ChunkTotal(chunk)
	}
	return redundantVertices, comparisons
}

// Points returns all generated vertex positions in ID order. Used by
// reference checks.
func Points(p Params) []geometry.Point {
	return p.grid().AllPoints()
}

// ConnectivityRadius returns the radius 0.55 * (ln n / n)^(1/d) used by the
// paper's experiments (§8.4), which keeps the graph connected w.h.p.
func ConnectivityRadius(n uint64, dim int) float64 {
	nf := float64(n)
	return 0.55 * math.Pow(math.Log(nf)/nf, 1/float64(dim))
}
