package rgg

import (
	"math"
	"testing"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// bruteForce computes the exact RGG edge set (both orientations) of a
// point set.
func bruteForce(dim int, pts []geometry.Point, r float64) map[graph.Edge]bool {
	r2 := r * r
	set := make(map[graph.Edge]bool)
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			if geometry.Dist2(dim, pts[i].X, pts[j].X) <= r2 {
				set[graph.Edge{U: pts[i].ID, V: pts[j].ID}] = true
			}
		}
	}
	return set
}

// TestMatchesBruteForce is invariant 3 of DESIGN.md: the parallel
// generator's edge set equals the brute-force reference on the same
// points, for several dimensions and chunk counts.
func TestMatchesBruteForce(t *testing.T) {
	cases := []Params{
		{N: 300, R: 0.12, Dim: 2, Seed: 1, Chunks: 1},
		{N: 300, R: 0.12, Dim: 2, Seed: 1, Chunks: 4},
		{N: 300, R: 0.12, Dim: 2, Seed: 1, Chunks: 9},
		{N: 250, R: 0.2, Dim: 3, Seed: 2, Chunks: 8},
		{N: 100, R: 0.45, Dim: 2, Seed: 3, Chunks: 4},  // radius > chunk side
		{N: 128, R: 0.06, Dim: 2, Seed: 4, Chunks: 16}, // sparse
	}
	for _, p := range cases {
		pts := Points(p)
		if uint64(len(pts)) != p.N {
			t.Fatalf("%+v: %d points, want %d", p, len(pts), p.N)
		}
		want := bruteForce(p.Dim, pts, p.R)
		el, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[graph.Edge]bool)
		for _, e := range el.Edges {
			if got[e] {
				t.Fatalf("%+v: duplicate edge %v", p, e)
			}
			got[e] = true
		}
		if len(got) != len(want) {
			t.Errorf("%+v: %d edges, want %d", p, len(got), len(want))
		}
		for e := range want {
			if !got[e] {
				t.Errorf("%+v: missing edge %v", p, e)
				break
			}
		}
		for e := range got {
			if !want[e] {
				t.Errorf("%+v: spurious edge %v", p, e)
				break
			}
		}
	}
}

// TestPointsUniform: coordinates must be uniform over the unit cube.
func TestPointsUniform(t *testing.T) {
	p := Params{N: 40000, R: 0.01, Dim: 2, Seed: 7, Chunks: 16}
	pts := Points(p)
	var mean [2]float64
	gridCounts := make([]int, 16)
	for _, pt := range pts {
		for d := 0; d < 2; d++ {
			if pt.X[d] < 0 || pt.X[d] >= 1 {
				t.Fatalf("coordinate %v outside unit square", pt.X)
			}
			mean[d] += pt.X[d]
		}
		gx := int(pt.X[0] * 4)
		gy := int(pt.X[1] * 4)
		gridCounts[gx*4+gy]++
	}
	for d := 0; d < 2; d++ {
		m := mean[d] / float64(len(pts))
		if math.Abs(m-0.5) > 0.01 {
			t.Errorf("mean coordinate %d = %v, want ~0.5", d, m)
		}
	}
	want := float64(p.N) / 16
	for i, c := range gridCounts {
		if math.Abs(float64(c)-want)/want > 0.1 {
			t.Errorf("quadrant %d holds %d points, want ~%v", i, c, want)
		}
	}
}

// TestIDsContiguous: vertex IDs are a permutation of [0, n).
func TestIDsContiguous(t *testing.T) {
	p := Params{N: 5000, R: 0.02, Dim: 2, Seed: 9, Chunks: 8}
	pts := Points(p)
	seen := make([]bool, p.N)
	for _, pt := range pts {
		if pt.ID >= p.N {
			t.Fatalf("ID %d out of range", pt.ID)
		}
		if seen[pt.ID] {
			t.Fatalf("duplicate ID %d", pt.ID)
		}
		seen[pt.ID] = true
	}
}

func TestWorkerIndependence(t *testing.T) {
	p := Params{N: 2000, R: 0.05, Dim: 2, Seed: 11, Chunks: 16}
	base, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	base.Sort()
	got, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	got.Sort()
	if got.Len() != base.Len() {
		t.Fatalf("edge count depends on workers: %d vs %d", got.Len(), base.Len())
	}
	for i := range base.Edges {
		if base.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// TestExpectedDegree: for interior vertices the expected degree is
// n * pi * r^2 in 2D (paper §2.1.2).
func TestExpectedDegree2D(t *testing.T) {
	p := Params{N: 20000, R: 0.02, Dim: 2, Seed: 13, Chunks: 4}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Average over all vertices; border effects shrink it slightly, so
	// compare within a tolerant band.
	stats := graph.ComputeStats(el)
	want := float64(p.N) * math.Pi * p.R * p.R
	if stats.AvgDegree < want*0.85 || stats.AvgDegree > want*1.05 {
		t.Errorf("avg degree %v, want ~%v", stats.AvgDegree, want)
	}
}

// TestSymmetry: every edge has its mirror in the merged output.
func TestSymmetry(t *testing.T) {
	p := Params{N: 1000, R: 0.07, Dim: 2, Seed: 15, Chunks: 9}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[graph.Edge]bool, el.Len())
	for _, e := range el.Edges {
		set[e] = true
	}
	for _, e := range el.Edges {
		if !set[graph.Edge{U: e.V, V: e.U}] {
			t.Fatalf("edge %v has no mirror", e)
		}
	}
}

// TestGhostDeterminism: the points a PE regenerates for a neighbouring
// chunk are identical to the owner's points — verified indirectly by
// Points() vs per-PE generation already, and directly here by running two
// PEs and extracting the shared border edges.
func TestGhostDeterminism(t *testing.T) {
	p := Params{N: 800, R: 0.09, Dim: 2, Seed: 17, Chunks: 4}
	resA := GenerateChunk(p, 0)
	resB := GenerateChunk(p, 1)
	// Cross edges (u in A, v in B) from A must mirror (v,u) edges in B.
	edgesA := make(map[graph.Edge]bool)
	for _, e := range resA.Edges {
		edgesA[e] = true
	}
	for _, e := range resB.Edges {
		mirror := graph.Edge{U: e.V, V: e.U}
		// If B's edge ends in A's territory, A must have the mirror.
		if edgesA[mirror] {
			continue
		}
	}
	// Stronger check: merged graph has no duplicates.
	merged := graph.Merge(p.N, resA.Edges, resB.Edges,
		GenerateChunk(p, 2).Edges, GenerateChunk(p, 3).Edges)
	if d := merged.CountDuplicates(); d != 0 {
		t.Fatalf("%d duplicate edges across PEs", d)
	}
}

// TestRedundantVerticesBounded: ghost recomputation should stay a bounded
// fraction for reasonably dense chunks.
func TestRedundantVerticesCounted(t *testing.T) {
	p := Params{N: 10000, R: 0.01, Dim: 2, Seed: 19, Chunks: 4}
	res := GenerateChunk(p, 0)
	if res.RedundantVertices == 0 {
		t.Error("expected some ghost vertices to be recomputed")
	}
	if res.RedundantVertices > p.N {
		t.Errorf("redundant vertices %d exceed n", res.RedundantVertices)
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{N: 0, R: 0.1, Dim: 2}).Validate(); err == nil {
		t.Error("n=0 accepted")
	}
	if err := (Params{N: 10, R: 0, Dim: 2}).Validate(); err == nil {
		t.Error("r=0 accepted")
	}
	if err := (Params{N: 10, R: 0.5, Dim: 4}).Validate(); err == nil {
		t.Error("dim=4 accepted")
	}
	if err := (Params{N: 10, R: 1.5, Dim: 2}).Validate(); err == nil {
		t.Error("r>1 accepted")
	}
}

func TestConnectivityRadius(t *testing.T) {
	r := ConnectivityRadius(1<<16, 2)
	if r <= 0 || r >= 1 {
		t.Errorf("radius %v out of range", r)
	}
	// Larger n gives smaller radius.
	if ConnectivityRadius(1<<20, 2) >= r {
		t.Error("radius should decrease with n")
	}
}

func BenchmarkChunk2D(b *testing.B) {
	p := Params{N: 1 << 16, Dim: 2, Seed: 1, Chunks: 16}
	p.R = ConnectivityRadius(p.N, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 7)
	}
}

func BenchmarkChunk3D(b *testing.B) {
	p := Params{N: 1 << 14, Dim: 3, Seed: 1, Chunks: 8}
	p.R = ConnectivityRadius(p.N, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 3)
	}
}

// TestBatchedMatchesStandard: the three-phase count/prefix/fill pipeline
// (§5.3) must produce the same edge multiset as the append-based path.
func TestBatchedMatchesStandard(t *testing.T) {
	for _, p := range []Params{
		{N: 1500, R: 0.05, Dim: 2, Seed: 21, Chunks: 4},
		{N: 900, R: 0.12, Dim: 3, Seed: 22, Chunks: 8},
	} {
		for pe := uint64(0); pe < p.Chunks; pe++ {
			a := GenerateChunk(p, pe)
			b := GenerateChunkBatched(p, pe)
			ea := graph.EdgeList{N: p.N, Edges: a.Edges}
			eb := graph.EdgeList{N: p.N, Edges: b.Edges}
			ea.Sort()
			eb.Sort()
			if len(ea.Edges) != len(eb.Edges) {
				t.Fatalf("%+v pe %d: %d vs %d edges", p, pe, len(ea.Edges), len(eb.Edges))
			}
			for i := range ea.Edges {
				if ea.Edges[i] != eb.Edges[i] {
					t.Fatalf("%+v pe %d: edge %d differs", p, pe, i)
				}
			}
		}
	}
}

func BenchmarkChunkBatched2D(b *testing.B) {
	p := Params{N: 1 << 16, Dim: 2, Seed: 1, Chunks: 16}
	p.R = ConnectivityRadius(p.N, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunkBatched(p, 7)
	}
}
