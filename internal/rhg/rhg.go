// Package rhg implements the in-memory communication-free random
// hyperbolic graph generator of the paper (§7.1).
//
// The hyperbolic disk of radius R is partitioned radially into a central
// "clique core" (radius < R/2, replicated on every PE as in the paper) and
// O(log n) concentric annuli of height ~ln(2)/alpha, and angularly into
// one chunk per logical PE. Vertex counts are distributed with a global
// multinomial over annuli and recursive binomial splits over chunks, all
// seeded by structural identifiers, so any PE can recompute any chunk of
// any annulus bit-identically — which is exactly what the inward/outward
// neighbourhood queries do.
package rhg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/hyperbolic"
	"repro/internal/pe"
	"repro/internal/prng"
	"repro/internal/sampling"
)

// Params configures a random hyperbolic graph.
type Params struct {
	N      uint64  // number of vertices
	AvgDeg float64 // target average degree (sets C in R = 2 ln n + C)
	Gamma  float64 // power-law exponent (> 2); alpha = (gamma-1)/2
	Seed   uint64
	Chunks uint64 // number of logical PEs; 0 means 1
	// OutwardOnly omits the inward neighbourhood queries: every edge is
	// found exactly once, by its endpoint with the smaller radius, instead
	// of once per endpoint. The output is then no longer partitioned by
	// vertex ownership, but the expensive recomputation for high-degree
	// inner vertices disappears — the trade-off §8.6 of the paper
	// describes ("we can achieve a similar speedup for our first
	// generator by only performing outward queries").
	OutwardOnly bool
}

func (p Params) chunks() uint64 {
	if p.Chunks == 0 {
		return 1
	}
	return p.Chunks
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N == 0 {
		return fmt.Errorf("rhg: n must be positive")
	}
	if p.Gamma <= 2 {
		return fmt.Errorf("rhg: gamma must exceed 2 (got %v)", p.Gamma)
	}
	if p.AvgDeg <= 0 || p.AvgDeg >= float64(p.N) {
		return fmt.Errorf("rhg: average degree %v out of range", p.AvgDeg)
	}
	return nil
}

// instance bundles the derived geometry shared by all PEs.
type instance struct {
	p      Params
	alpha  float64
	bigR   float64
	geo    hyperbolic.Geo
	bounds []float64 // annulus boundaries over [R/2, R]; len = annuli+1
	// Precomputed per-annulus lower boundary constants for Eq. 8.
	cothLo        []float64
	coshRInvSinLo []float64

	coreCount    uint64   // vertices in the replicated core (r < R/2)
	annulusCount []uint64 // vertices per annulus
	// id prefix: core ids first, then annulus-major, chunk-minor.
	annulusPrefix []uint64 // prefix sums of annulusCount, offset by coreCount
	annulusSeed   []uint64 // per-annulus chunk-split seeds
	chunkWidth    float64  // 2*pi / P
}

func newInstance(p Params) *instance {
	inst := &instance{p: p}
	inst.alpha = hyperbolic.AlphaFromGamma(p.Gamma)
	inst.bigR = hyperbolic.DiskRadius(p.N, p.AvgDeg, inst.alpha)
	inst.geo = hyperbolic.NewGeo(inst.bigR, inst.alpha)
	inst.bounds = hyperbolic.Annuli(inst.alpha, inst.bigR/2, inst.bigR)

	k := len(inst.bounds) - 1
	inst.cothLo = make([]float64, k)
	inst.coshRInvSinLo = make([]float64, k)
	for i := 0; i < k; i++ {
		lo := inst.bounds[i]
		sinh := math.Sinh(lo)
		inst.cothLo[i] = math.Cosh(lo) / sinh
		inst.coshRInvSinLo[i] = inst.geo.CoshR / sinh
	}

	// Split n over [core, annulus 0, ..., annulus k-1].
	masses := make([]float64, k+1)
	masses[0] = hyperbolic.RadialCDFMass(inst.alpha, inst.bigR, inst.bigR/2)
	for i := 0; i < k; i++ {
		masses[i+1] = hyperbolic.AnnulusMass(inst.alpha, inst.bigR, inst.bounds[i], inst.bounds[i+1])
	}
	r := prng.New(p.Seed, core.TagRHGAnnuli)
	counts := dist.Multinomial(&r, p.N, masses)
	inst.coreCount = counts[0]
	inst.annulusCount = counts[1:]

	inst.chunkWidth = 2 * math.Pi / float64(p.chunks())
	inst.annulusPrefix = make([]uint64, k+1)
	inst.annulusPrefix[0] = inst.coreCount
	inst.annulusSeed = make([]uint64, k)
	for i := 0; i < k; i++ {
		inst.annulusPrefix[i+1] = inst.annulusPrefix[i] + inst.annulusCount[i]
		inst.annulusSeed[i] = prng.HashWords64(p.Seed, core.TagRHGChunk, uint64(i))
	}
	return inst
}

// chunkRank derives the in-annulus ID offset and vertex count of chunk c
// of annulus i in O(log P) draws — setup no longer materializes the O(P)
// per-annulus chunk count and prefix arrays.
func (inst *instance) chunkRank(i int, c uint64) (before, count uint64) {
	return sampling.RecursiveSplitEqualRank(inst.annulusSeed[i], inst.annulusCount[i], inst.p.chunks(), c)
}

// corePoints generates the replicated core identically on every PE:
// angles ascending over [0, 2*pi), radii from the density restricted to
// [0, R/2). IDs are [0, coreCount).
func (inst *instance) corePoints() []hyperbolic.Point {
	r := prng.New(inst.p.Seed, core.TagRHGPoints, ^uint64(0))
	pts := make([]hyperbolic.Point, 0, inst.coreCount)
	id := uint64(0)
	sampling.SortedUniforms(&r, inst.coreCount, 0, 2*math.Pi, func(theta float64) {
		rad := hyperbolic.SampleRadius(&r, inst.alpha, 0, inst.bigR/2)
		pts = append(pts, hyperbolic.MakePoint(id, theta, rad))
		id++
	})
	return pts
}

// chunkPoints generates the points of (annulus i, chunk c), sorted by
// angle, with globally consistent IDs.
func (inst *instance) chunkPoints(i int, c uint64) []hyperbolic.Point {
	before, count := inst.chunkRank(i, c)
	idBase := inst.annulusPrefix[i] + before
	r := prng.New(inst.p.Seed, core.TagRHGPoints, uint64(i), c)
	pts := make([]hyperbolic.Point, 0, count)
	lo := float64(c) * inst.chunkWidth
	hi := lo + inst.chunkWidth
	id := idBase
	sampling.SortedUniforms(&r, count, lo, hi, func(theta float64) {
		rad := hyperbolic.SampleRadius(&r, inst.alpha, inst.bounds[i], inst.bounds[i+1])
		pts = append(pts, hyperbolic.MakePoint(id, theta, rad))
		id++
	})
	return pts
}

// ownerOf returns the PE owning an angle.
func (inst *instance) ownerOf(theta float64) uint64 {
	c := uint64(theta / inst.chunkWidth)
	if c >= inst.p.chunks() {
		c = inst.p.chunks() - 1
	}
	return c
}

// Generate produces the full graph across all chunks; undirected edges
// appear once per endpoint.
func Generate(p Params, workers int) (*graph.EdgeList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	results := pe.ForEach(int(p.chunks()), workers, func(c int) core.Result {
		return GenerateChunk(p, uint64(c))
	})
	return core.MergeResults(p.N, results), nil
}

// GenerateChunk runs one logical PE: it owns the angular sector
// [2*pi*pe/P, 2*pi*(pe+1)/P) across the core and all annuli and emits all
// edges incident to its local vertices, recomputing foreign chunks as the
// neighbourhood queries reach them.
func GenerateChunk(p Params, peID uint64) core.Result {
	inst := newInstance(p)
	res := core.Result{PE: int(peID)}
	k := len(inst.bounds) - 1

	corePts := inst.corePoints()
	res.RedundantVertices += inst.coreCount // replicated on every PE

	cache := make(map[[2]uint64][]hyperbolic.Point)
	chunkOf := func(i int, c uint64) []hyperbolic.Point {
		key := [2]uint64{uint64(i), c}
		if pts, ok := cache[key]; ok {
			return pts
		}
		pts := inst.chunkPoints(i, c)
		if c != peID {
			res.RedundantVertices += uint64(len(pts))
		}
		cache[key] = pts
		return pts
	}

	// Local vertices: own chunks of every annulus plus owned core points
	// (annulus index -1 marks the core).
	type local struct {
		pt  hyperbolic.Point
		ann int
	}
	var locals []local
	for _, cp := range corePts {
		if inst.ownerOf(cp.Theta) == peID {
			locals = append(locals, local{cp, -1})
		}
	}
	for i := 0; i < k; i++ {
		for _, pt := range chunkOf(i, peID) {
			locals = append(locals, local{pt, i})
		}
	}

	emit := func(v, u hyperbolic.Point) {
		res.Comparisons++
		if u.ID != v.ID && inst.geo.IsNeighbor(v, u) {
			res.Edges = append(res.Edges, graph.Edge{U: v.ID, V: u.ID})
		}
	}

	if p.OutwardOnly {
		// Every edge is found once, by the endpoint in the lower annulus
		// (ID tie-break within the same annulus / the core).
		for _, l := range locals {
			v := l.pt
			if l.ann < 0 {
				// Core vertex: core partners by ID order, every annulus
				// outward in full.
				for _, u := range corePts {
					if u.ID > v.ID {
						emit(v, u)
					}
				}
				for i := 0; i < k; i++ {
					dt := inst.geo.DeltaThetaPre(v, inst.cothLo[i], inst.coshRInvSinLo[i])
					inst.scanWindow(i, v, dt, chunkOf, emit)
				}
				continue
			}
			// Annulus vertex: skip the core (found by the core endpoint)
			// and all inner annuli; ID tie-break inside the own annulus.
			for i := l.ann; i < k; i++ {
				dt := inst.geo.DeltaThetaPre(v, inst.cothLo[i], inst.coshRInvSinLo[i])
				if i == l.ann {
					inst.scanWindow(i, v, dt, chunkOf, func(v, u hyperbolic.Point) {
						if u.ID > v.ID {
							emit(v, u)
						}
					})
					continue
				}
				inst.scanWindow(i, v, dt, chunkOf, emit)
			}
		}
		return res
	}

	for _, l := range locals {
		v := l.pt
		// Core candidates: always checked, the core is replicated.
		for _, u := range corePts {
			emit(v, u)
		}
		// Annulus candidates via the angular deviation bound.
		for i := 0; i < k; i++ {
			dt := inst.geo.DeltaThetaPre(v, inst.cothLo[i], inst.coshRInvSinLo[i])
			inst.scanWindow(i, v, dt, chunkOf, emit)
		}
	}
	return res
}

// scanWindow visits every point of annulus i whose angle lies within
// [v.Theta-dt, v.Theta+dt] (mod 2*pi) exactly once.
func (inst *instance) scanWindow(i int, v hyperbolic.Point, dt float64,
	chunkOf func(int, uint64) []hyperbolic.Point, emit func(v, u hyperbolic.Point)) {
	if dt <= 0 {
		return
	}
	if dt >= math.Pi {
		inst.scanInterval(i, 0, 2*math.Pi, v, chunkOf, emit)
		return
	}
	lo := v.Theta - dt
	hi := v.Theta + dt
	switch {
	case lo < 0:
		inst.scanInterval(i, lo+2*math.Pi, 2*math.Pi, v, chunkOf, emit)
		inst.scanInterval(i, 0, hi, v, chunkOf, emit)
	case hi > 2*math.Pi:
		inst.scanInterval(i, lo, 2*math.Pi, v, chunkOf, emit)
		inst.scanInterval(i, 0, hi-2*math.Pi, v, chunkOf, emit)
	default:
		inst.scanInterval(i, lo, hi, v, chunkOf, emit)
	}
}

// scanInterval visits the points of annulus i with angles in [a, b].
func (inst *instance) scanInterval(i int, a, b float64, v hyperbolic.Point,
	chunkOf func(int, uint64) []hyperbolic.Point, emit func(v, u hyperbolic.Point)) {
	P := inst.p.chunks()
	cStart := uint64(a / inst.chunkWidth)
	if cStart >= P {
		cStart = P - 1
	}
	cEnd := uint64(b / inst.chunkWidth)
	if cEnd >= P {
		cEnd = P - 1
	}
	for c := cStart; c <= cEnd; c++ {
		pts := chunkOf(i, c)
		lo := sort.Search(len(pts), func(j int) bool { return pts[j].Theta >= a })
		for j := lo; j < len(pts) && pts[j].Theta <= b; j++ {
			emit(v, pts[j])
		}
	}
}

// Points returns all vertex coordinates in ID order (core first, then
// annulus-major chunk-minor), exactly as the PEs generate them. Used by
// the reference checks.
func Points(p Params) []hyperbolic.Point {
	inst := newInstance(p)
	pts := inst.corePoints()
	for i := 0; i < len(inst.bounds)-1; i++ {
		for c := uint64(0); c < p.chunks(); c++ {
			pts = append(pts, inst.chunkPoints(i, c)...)
		}
	}
	return pts
}

// Radius exposes the derived disk radius (for diagnostics and tests).
func Radius(p Params) float64 {
	return hyperbolic.DiskRadius(p.N, p.AvgDeg, hyperbolic.AlphaFromGamma(p.Gamma))
}
