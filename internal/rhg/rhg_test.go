package rhg

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hyperbolic"
)

// bruteForce computes the exact edge set (both orientations) using the
// same adjacency predicate on the full point set.
func bruteForce(p Params, pts []hyperbolic.Point) map[graph.Edge]bool {
	alpha := hyperbolic.AlphaFromGamma(p.Gamma)
	geo := hyperbolic.NewGeo(hyperbolic.DiskRadius(p.N, p.AvgDeg, alpha), alpha)
	set := make(map[graph.Edge]bool)
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			if geo.IsNeighbor(pts[i], pts[j]) {
				set[graph.Edge{U: pts[i].ID, V: pts[j].ID}] = true
			}
		}
	}
	return set
}

// TestMatchesBruteForce: the chunked generator with its window queries and
// foreign-chunk recomputation finds exactly the edges of the all-pairs
// reference on the same point set.
func TestMatchesBruteForce(t *testing.T) {
	cases := []Params{
		{N: 400, AvgDeg: 8, Gamma: 3.0, Seed: 1, Chunks: 1},
		{N: 400, AvgDeg: 8, Gamma: 3.0, Seed: 1, Chunks: 5},
		{N: 300, AvgDeg: 12, Gamma: 2.4, Seed: 2, Chunks: 8},
		{N: 500, AvgDeg: 6, Gamma: 4.0, Seed: 3, Chunks: 3},
		{N: 200, AvgDeg: 16, Gamma: 2.2, Seed: 4, Chunks: 4},
	}
	for _, p := range cases {
		pts := Points(p)
		if uint64(len(pts)) != p.N {
			t.Fatalf("%+v: %d points, want %d", p, len(pts), p.N)
		}
		want := bruteForce(p, pts)
		el, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[graph.Edge]bool)
		for _, e := range el.Edges {
			if got[e] {
				t.Fatalf("%+v: duplicate edge %v", p, e)
			}
			got[e] = true
		}
		if len(got) != len(want) {
			t.Errorf("%+v: %d edges, want %d", p, len(got), len(want))
		}
		missing, spurious := 0, 0
		for e := range want {
			if !got[e] {
				missing++
			}
		}
		for e := range got {
			if !want[e] {
				spurious++
			}
		}
		if missing > 0 || spurious > 0 {
			t.Errorf("%+v: %d missing, %d spurious edges", p, missing, spurious)
		}
	}
}

// TestIDsContiguous: IDs are a permutation of [0, n).
func TestIDsContiguous(t *testing.T) {
	p := Params{N: 3000, AvgDeg: 10, Gamma: 2.7, Seed: 5, Chunks: 7}
	pts := Points(p)
	seen := make([]bool, p.N)
	for _, pt := range pts {
		if pt.ID >= p.N || seen[pt.ID] {
			t.Fatalf("bad or duplicate ID %d", pt.ID)
		}
		seen[pt.ID] = true
	}
}

// TestCoordinateRanges: radii within [0, R], angles within [0, 2pi).
func TestCoordinateRanges(t *testing.T) {
	p := Params{N: 2000, AvgDeg: 8, Gamma: 3.0, Seed: 6, Chunks: 4}
	bigR := Radius(p)
	for _, pt := range Points(p) {
		if pt.R < 0 || pt.R > bigR+1e-9 {
			t.Fatalf("radius %v outside [0, %v]", pt.R, bigR)
		}
		if pt.Theta < 0 || pt.Theta >= 2*math.Pi {
			t.Fatalf("angle %v outside [0, 2pi)", pt.Theta)
		}
	}
}

func TestWorkerIndependence(t *testing.T) {
	p := Params{N: 1000, AvgDeg: 8, Gamma: 2.8, Seed: 7, Chunks: 8}
	base, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	base.Sort()
	got, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	got.Sort()
	if got.Len() != base.Len() {
		t.Fatalf("edge count depends on workers")
	}
	for i := range base.Edges {
		if base.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// TestAverageDegree: the realized average degree should approach the
// target (the paper's C calibration, Eq. 1-2). The asymptotic formula has
// 1+o(1) corrections, so the band is generous.
func TestAverageDegree(t *testing.T) {
	p := Params{N: 1 << 14, AvgDeg: 12, Gamma: 3.0, Seed: 8, Chunks: 8}
	el, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	stats := graph.ComputeStats(el)
	if stats.AvgDegree < p.AvgDeg*0.5 || stats.AvgDegree > p.AvgDeg*1.6 {
		t.Errorf("avg degree %v, want within [%v, %v]", stats.AvgDegree, p.AvgDeg*0.5, p.AvgDeg*1.6)
	}
}

// TestPowerLawTail: the degree distribution should have a power-law tail
// with exponent ~gamma.
func TestPowerLawTail(t *testing.T) {
	p := Params{N: 1 << 15, AvgDeg: 10, Gamma: 2.6, Seed: 9, Chunks: 8}
	el, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	degrees := graph.OutDegrees(el)
	gamma := graph.PowerLawExponentMLE(degrees, 20)
	if math.IsNaN(gamma) || gamma < p.Gamma-0.6 || gamma > p.Gamma+0.8 {
		t.Errorf("estimated gamma %v, want ~%v", gamma, p.Gamma)
	}
}

// TestSymmetry: each edge appears with both orientations in the merged
// output.
func TestSymmetry(t *testing.T) {
	p := Params{N: 800, AvgDeg: 8, Gamma: 3.2, Seed: 10, Chunks: 6}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[graph.Edge]bool, el.Len())
	for _, e := range el.Edges {
		set[e] = true
	}
	for _, e := range el.Edges {
		if !set[graph.Edge{U: e.V, V: e.U}] {
			t.Fatalf("edge %v has no mirror", e)
		}
	}
}

// TestCoreIsClique: all pairs of core points (r < R/2) must be adjacent.
func TestCoreIsClique(t *testing.T) {
	p := Params{N: 4000, AvgDeg: 16, Gamma: 2.5, Seed: 11, Chunks: 4}
	bigR := Radius(p)
	pts := Points(p)
	var corePts []hyperbolic.Point
	for _, pt := range pts {
		if pt.R < bigR/2 {
			corePts = append(corePts, pt)
		}
	}
	if len(corePts) < 2 {
		t.Skip("core too small for this instance")
	}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[graph.Edge]bool, el.Len())
	for _, e := range el.Edges {
		present[e] = true
	}
	for i := range corePts {
		for j := range corePts {
			if i == j {
				continue
			}
			e := graph.Edge{U: corePts[i].ID, V: corePts[j].ID}
			if !present[e] {
				t.Fatalf("core pair %v missing (r=%v, r=%v)", e, corePts[i].R, corePts[j].R)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{N: 0, AvgDeg: 8, Gamma: 3}).Validate(); err == nil {
		t.Error("n=0 accepted")
	}
	if err := (Params{N: 100, AvgDeg: 8, Gamma: 2}).Validate(); err == nil {
		t.Error("gamma=2 accepted")
	}
	if err := (Params{N: 100, AvgDeg: 0, Gamma: 3}).Validate(); err == nil {
		t.Error("deg=0 accepted")
	}
	if err := (Params{N: 100, AvgDeg: 200, Gamma: 3}).Validate(); err == nil {
		t.Error("deg>n accepted")
	}
}

func BenchmarkChunk(b *testing.B) {
	p := Params{N: 1 << 14, AvgDeg: 16, Gamma: 3.0, Seed: 1, Chunks: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 3)
	}
}

// TestOutwardOnlyMatchesFull: the outward-only mode (§8.6) must produce
// every edge exactly once, and the undirected edge set must equal the
// full partitioned mode's.
func TestOutwardOnlyMatchesFull(t *testing.T) {
	for _, chunks := range []uint64{1, 4, 7} {
		p := Params{N: 600, AvgDeg: 10, Gamma: 2.7, Seed: 21, Chunks: chunks}
		full, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		p.OutwardOnly = true
		out, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if out.CountDuplicates() != 0 {
			t.Fatalf("chunks=%d: outward mode produced duplicates", chunks)
		}
		// Each edge exactly once: count = m = half the full mode's entries.
		if 2*out.Len() != full.Len() {
			t.Fatalf("chunks=%d: outward %d edges, full %d directed copies", chunks, out.Len(), full.Len())
		}
		wantSet := full.UndirectedSet()
		gotSet := out.UndirectedSet()
		if len(wantSet) != len(gotSet) {
			t.Fatalf("chunks=%d: undirected sets differ in size: %d vs %d", chunks, len(gotSet), len(wantSet))
		}
		for i := range wantSet {
			if wantSet[i] != gotSet[i] {
				t.Fatalf("chunks=%d: undirected edge %d differs", chunks, i)
			}
		}
	}
}

// TestOutwardOnlyCheaper: outward-only performs fewer candidate
// comparisons than the partitioned mode (the speedup the paper reports).
func TestOutwardOnlyCheaper(t *testing.T) {
	p := Params{N: 4000, AvgDeg: 12, Gamma: 2.5, Seed: 23, Chunks: 8}
	fullCmp := uint64(0)
	outCmp := uint64(0)
	for pe := uint64(0); pe < 8; pe++ {
		fullCmp += GenerateChunk(p, pe).Comparisons
	}
	p.OutwardOnly = true
	for pe := uint64(0); pe < 8; pe++ {
		outCmp += GenerateChunk(p, pe).Comparisons
	}
	if outCmp*3/2 > fullCmp {
		t.Errorf("outward-only comparisons %d not well below full mode %d", outCmp, fullCmp)
	}
}
