// Package rmat implements the recursive matrix (R-MAT) generator of
// Chakrabarti et al. (paper §3.5.2), the Graph 500 reference model the
// paper benchmarks against in §8.6.1. Each of the m edges is drawn
// independently by recursively descending log2(n) levels of the adjacency
// matrix with quadrant probabilities (a, b, c, d); each edge's randomness
// is seeded by its index, which makes the generator communication-free by
// construction (and O(m log n) — the cost Figs. 17/18 attribute its
// slowness to).
package rmat

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pe"
	"repro/internal/prng"
)

// Params configures an R-MAT instance.
type Params struct {
	Scale uint   // n = 2^Scale vertices
	M     uint64 // number of edges
	// Quadrant probabilities; if all zero, the Graph 500 defaults
	// (0.57, 0.19, 0.19, 0.05) are used.
	A, B, C, D float64
	Seed       uint64
	Chunks     uint64 // number of logical PEs; 0 means 1
}

func (p Params) chunks() uint64 {
	if p.Chunks == 0 {
		return 1
	}
	return p.Chunks
}

func (p Params) probs() (a, b, c, d float64) {
	if p.A == 0 && p.B == 0 && p.C == 0 && p.D == 0 {
		return 0.57, 0.19, 0.19, 0.05
	}
	return p.A, p.B, p.C, p.D
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Scale == 0 || p.Scale > 62 {
		return fmt.Errorf("rmat: scale %d out of range", p.Scale)
	}
	a, b, c, d := p.probs()
	sum := a + b + c + d
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("rmat: quadrant probabilities sum to %v", sum)
	}
	return nil
}

// N returns the number of vertices.
func (p Params) N() uint64 { return 1 << p.Scale }

// Generate produces all m edges (duplicates and self-loops permitted, as
// in the Graph 500 reference).
func Generate(p Params, workers int) (*graph.EdgeList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	results := pe.ForEach(int(p.chunks()), workers, func(c int) []graph.Edge {
		return GenerateChunk(p, uint64(c))
	})
	return graph.Merge(p.N(), results...), nil
}

// GenerateChunk emits the edges of one chunk of the edge-index range.
func GenerateChunk(p Params, chunk uint64) []graph.Edge {
	P := p.chunks()
	edges := make([]graph.Edge, 0, (chunk+1)*p.M/P-chunk*p.M/P)
	StreamChunk(p, chunk, func(e graph.Edge) { edges = append(edges, e) })
	return edges
}

// StreamChunk emits the chunk's edges through a callback without
// materializing them (memory-bounded generation).
func StreamChunk(p Params, chunk uint64, emit func(graph.Edge)) {
	P := p.chunks()
	lo := chunk * p.M / P
	hi := (chunk + 1) * p.M / P
	a, b, c, _ := p.probs()
	for i := lo; i < hi; i++ {
		emit(Edge(p.Seed, i, p.Scale, a, b, c))
	}
}

// Edge draws edge i: a recursive descent over the adjacency matrix with
// per-edge seeded randomness.
func Edge(seed, i uint64, scale uint, a, b, c float64) graph.Edge {
	r := prng.New(seed, core.TagRMAT, i)
	var row, col uint64
	for level := uint(0); level < scale; level++ {
		u := r.Float64()
		row <<= 1
		col <<= 1
		switch {
		case u < a:
			// top-left
		case u < a+b:
			col |= 1
		case u < a+b+c:
			row |= 1
		default:
			row |= 1
			col |= 1
		}
	}
	return graph.Edge{U: row, V: col}
}
