package rmat

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestEdgeCountAndRange(t *testing.T) {
	p := Params{Scale: 10, M: 5000, Seed: 1, Chunks: 8}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(el.Len()) != p.M {
		t.Fatalf("%d edges, want %d", el.Len(), p.M)
	}
	for _, e := range el.Edges {
		if e.U >= p.N() || e.V >= p.N() {
			t.Fatalf("edge %v outside n=%d", e, p.N())
		}
	}
}

func TestWorkerAndChunkIndependence(t *testing.T) {
	// R-MAT edges are seeded by index, so even the chunk count must not
	// change the edge multiset.
	base, err := Generate(Params{Scale: 12, M: 20000, Seed: 3, Chunks: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	base.Sort()
	for _, chunks := range []uint64{4, 16} {
		got, err := Generate(Params{Scale: 12, M: 20000, Seed: 3, Chunks: chunks}, 8)
		if err != nil {
			t.Fatal(err)
		}
		got.Sort()
		for i := range base.Edges {
			if base.Edges[i] != got.Edges[i] {
				t.Fatalf("chunks=%d: edge %d differs", chunks, i)
			}
		}
	}
}

// TestQuadrantSkew: with Graph 500 probabilities the top-left quadrant
// (high bit of both row and col zero) receives a+?? of the mass — check
// the first-level distribution.
func TestQuadrantSkew(t *testing.T) {
	p := Params{Scale: 14, M: 200000, Seed: 5, Chunks: 4}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	half := p.N() / 2
	var tl, tr, bl, br float64
	for _, e := range el.Edges {
		switch {
		case e.U < half && e.V < half:
			tl++
		case e.U < half:
			tr++
		case e.V < half:
			bl++
		default:
			br++
		}
	}
	total := float64(el.Len())
	check := func(name string, got, want float64) {
		if math.Abs(got/total-want) > 0.01 {
			t.Errorf("%s fraction %v, want ~%v", name, got/total, want)
		}
	}
	check("a", tl, 0.57)
	check("b", tr, 0.19)
	check("c", bl, 0.19)
	check("d", br, 0.05)
}

// TestSkewedDegrees: R-MAT produces a heavily skewed degree distribution.
func TestSkewedDegrees(t *testing.T) {
	p := Params{Scale: 12, M: 1 << 16, Seed: 7, Chunks: 4}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	stats := graph.ComputeStats(el)
	if float64(stats.MaxDegree) < 8*stats.AvgDegree {
		t.Errorf("max degree %d not >> avg %v", stats.MaxDegree, stats.AvgDegree)
	}
}

func TestCustomProbabilities(t *testing.T) {
	// Uniform probabilities make R-MAT an (almost) uniform random digraph.
	p := Params{Scale: 10, M: 100000, A: 0.25, B: 0.25, C: 0.25, D: 0.25, Seed: 9, Chunks: 4}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	half := p.N() / 2
	tl := 0
	for _, e := range el.Edges {
		if e.U < half && e.V < half {
			tl++
		}
	}
	frac := float64(tl) / float64(el.Len())
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("uniform quadrant fraction %v, want 0.25", frac)
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{Scale: 0, M: 10}).Validate(); err == nil {
		t.Error("scale 0 accepted")
	}
	if err := (Params{Scale: 10, M: 10, A: 0.5, B: 0.1, C: 0.1, D: 0.1}).Validate(); err == nil {
		t.Error("non-normalized probabilities accepted")
	}
	if err := (Params{Scale: 10, M: 10}).Validate(); err != nil {
		t.Errorf("default probabilities rejected: %v", err)
	}
}

func BenchmarkChunk(b *testing.B) {
	p := Params{Scale: 20, M: 1 << 16, Seed: 1, Chunks: 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 7)
	}
}
