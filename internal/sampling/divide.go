package sampling

import (
	"repro/internal/dist"
	"repro/internal/prng"
)

// tagDivide namespaces the hash stream of the divide-and-conquer recursion
// so that different uses of the same user seed stay independent.
const tagDivide = 0x9e3779b97f4a7c15

// SizeFunc reports the total universe size of the chunk range [lo, hi).
// It must be additive: size(lo,hi) == size(lo,mid) + size(mid,hi).
type SizeFunc func(lo, hi uint64) uint64

// ChunkCounts splits k samples drawn without replacement from a universe
// partitioned into `chunks` sub-universes (sizes given by size) and returns
// the per-chunk sample counts for chunks in [qlo, qhi).
//
// The recursion halves the chunk range and draws a hypergeometric variate
// seeded by the subtree identity (seed, lo, hi). Any two callers — in the
// paper's setting, any two PEs — therefore compute identical counts for
// every chunk, while a caller interested in a single chunk performs only
// O(log chunks) variate draws. This is the distributed sampling scheme of
// Sanders et al. used by all generators (paper §2.2, §4).
func ChunkCounts(seed, k, chunks uint64, size SizeFunc, qlo, qhi uint64) []uint64 {
	if qhi > chunks || qlo > qhi {
		panic("sampling: invalid chunk query range")
	}
	out := make([]uint64, qhi-qlo)
	splitRec(seed, k, 0, chunks, size, qlo, qhi, out)
	return out
}

// ChunkCount is ChunkCounts for a single chunk.
func ChunkCount(seed, k, chunks uint64, size SizeFunc, chunk uint64) uint64 {
	return ChunkCounts(seed, k, chunks, size, chunk, chunk+1)[0]
}

func splitRec(seed, k, lo, hi uint64, size SizeFunc, qlo, qhi uint64, out []uint64) {
	if k == 0 {
		return // all counts in this subtree are zero; out already zeroed
	}
	if hi-lo == 1 {
		out[lo-qlo] = k
		return
	}
	mid := lo + (hi-lo)/2
	leftSize := size(lo, mid)
	total := leftSize + size(mid, hi)
	r := prng.New(seed, tagDivide, lo, hi)
	left := dist.Hypergeometric(&r, total, leftSize, k)
	if qlo < mid && lo < qhi { // left subtree intersects query
		splitRec(seed, left, lo, mid, size, qlo, qhi, out)
	}
	if qhi > mid && hi > qlo { // right subtree intersects query
		splitRec(seed, k-left, mid, hi, size, qlo, qhi, out)
	}
}

// BinomialChunkCounts is the G(n,p)-style variant: instead of conditioning
// on a global total, each chunk's count is an independent binomial over its
// own sub-universe, seeded by the chunk identity alone (paper §4.3). The
// counts for chunks [qlo, qhi) are returned.
func BinomialChunkCounts(seed uint64, p float64, chunks uint64, size SizeFunc, qlo, qhi uint64) []uint64 {
	out := make([]uint64, qhi-qlo)
	for c := qlo; c < qhi; c++ {
		r := prng.New(seed, tagDivide, ^uint64(0), c)
		out[c-qlo] = dist.Binomial(&r, size(c, c+1), p)
	}
	return out
}

// EqualSplit returns a SizeFunc for a universe of n elements divided into
// `chunks` balanced intervals: chunk i covers [i*n/chunks, (i+1)*n/chunks).
func EqualSplit(n, chunks uint64) SizeFunc {
	return func(lo, hi uint64) uint64 {
		return hi*n/chunks - lo*n/chunks
	}
}

// EqualSplitStart returns the first element of chunk i under EqualSplit.
func EqualSplitStart(n, chunks, i uint64) uint64 {
	return i * n / chunks
}

// RecursiveSplit splits total across buckets whose relative weights are
// given by weights, drawing binomials over a binary recursion seeded by
// (seed, node ids). Unlike dist.Multinomial the result is reproducible for
// any sub-range query: RecursiveSplitRange(qlo,qhi) equals the same slice
// of the full split. Used to distribute points over grid cells so that a
// neighbouring PE can recompute any single cell count in O(log cells).
func RecursiveSplit(seed, total uint64, weights []float64, qlo, qhi int) []uint64 {
	out := make([]uint64, qhi-qlo)
	prefix := make([]float64, len(weights)+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	recSplit(seed, total, 0, len(weights), prefix, qlo, qhi, out)
	return out
}

// RecursiveSplitEqual is RecursiveSplit for equally weighted buckets,
// avoiding the O(buckets) weight array. This is the common case of the
// spatial generators: grid cells of one chunk all have the same volume.
func RecursiveSplitEqual(seed, total uint64, buckets uint64, qlo, qhi uint64) []uint64 {
	out := make([]uint64, qhi-qlo)
	recSplitEqual(seed, total, 0, buckets, qlo, qhi, out)
	return out
}

// RecursiveSplitEqualInto is RecursiveSplitEqual writing into a
// caller-provided buffer of length at least qhi-qlo, so steady-state
// consumers (the flat cell index) can reuse one allocation per chunk.
func RecursiveSplitEqualInto(seed, total uint64, buckets uint64, qlo, qhi uint64, out []uint64) {
	out = out[:qhi-qlo]
	for i := range out {
		out[i] = 0
	}
	recSplitEqual(seed, total, 0, buckets, qlo, qhi, out)
}

// RecursiveSplitEqualRank walks the recursion path to bucket b and returns
// the sum of all bucket counts before b together with b's own count, in
// O(log buckets) binomial draws. The values are bit-identical to summing
// and indexing the full RecursiveSplitEqual slice: every node on the
// root-to-leaf path draws from the same (seed, lo, hi)-derived stream with
// the same subtree total, and the counts of the skipped left subtrees are
// exactly the node's left binomial draws. This is what lets a PE derive
// the vertex count and global ID base of any single chunk without
// materializing all of them (paper §2.2, §4).
func RecursiveSplitEqualRank(seed, total uint64, buckets, b uint64) (before, at uint64) {
	if b >= buckets {
		panic("sampling: bucket index out of range")
	}
	lo, hi := uint64(0), buckets
	for hi-lo > 1 {
		if total == 0 {
			return before, 0
		}
		mid := lo + (hi-lo)/2
		frac := float64(mid-lo) / float64(hi-lo)
		r := prng.New(seed, tagDivide+2, lo, hi)
		left := dist.Binomial(&r, total, frac)
		if b < mid {
			hi, total = mid, left
		} else {
			before += left
			lo, total = mid, total-left
		}
	}
	return before, total
}

// RecursiveSplitEqualPrefix returns the sum of the bucket counts in
// [0, b) of the equal-weight recursive split — the prefix-sum query behind
// global ID derivation. b == buckets returns the full total.
func RecursiveSplitEqualPrefix(seed, total uint64, buckets, b uint64) uint64 {
	if b >= buckets {
		if b == buckets {
			return total
		}
		panic("sampling: bucket index out of range")
	}
	before, _ := RecursiveSplitEqualRank(seed, total, buckets, b)
	return before
}

func recSplitEqual(seed, total, lo, hi, qlo, qhi uint64, out []uint64) {
	if total == 0 {
		return
	}
	if hi-lo == 1 {
		out[lo-qlo] = total
		return
	}
	mid := lo + (hi-lo)/2
	frac := float64(mid-lo) / float64(hi-lo)
	r := prng.New(seed, tagDivide+2, lo, hi)
	left := dist.Binomial(&r, total, frac)
	if qlo < mid && lo < qhi {
		recSplitEqual(seed, left, lo, mid, qlo, qhi, out)
	}
	if qhi > mid && hi > qlo {
		recSplitEqual(seed, total-left, mid, hi, qlo, qhi, out)
	}
}

func recSplit(seed, total uint64, lo, hi int, prefix []float64, qlo, qhi int, out []uint64) {
	if total == 0 {
		return
	}
	if hi-lo == 1 {
		out[lo-qlo] = total
		return
	}
	mid := lo + (hi-lo)/2
	all := prefix[hi] - prefix[lo]
	var frac float64
	if all > 0 {
		frac = (prefix[mid] - prefix[lo]) / all
	}
	r := prng.New(seed, tagDivide+1, uint64(lo), uint64(hi))
	left := dist.Binomial(&r, total, frac)
	if qlo < mid && lo < qhi {
		recSplit(seed, left, lo, mid, prefix, qlo, qhi, out)
	}
	if qhi > mid && hi > qlo {
		recSplit(seed, total-left, mid, hi, prefix, qlo, qhi, out)
	}
}
