package sampling

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func sum64(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestChunkCountsConservation: counts over the whole range sum to k and
// never exceed the chunk universe.
func TestChunkCountsConservation(t *testing.T) {
	f := func(seed uint32, nRaw, kRaw uint32, cRaw uint8) bool {
		n := uint64(nRaw%100000) + 1
		k := uint64(kRaw) % (n + 1)
		chunks := uint64(cRaw%32) + 1
		size := EqualSplit(n, chunks)
		counts := ChunkCounts(uint64(seed), k, chunks, size, 0, chunks)
		if sum64(counts) != k {
			return false
		}
		for i, c := range counts {
			if c > size(uint64(i), uint64(i)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestChunkCountsConsistency is the communication-free core property:
// querying each chunk individually gives exactly the same counts as
// querying the full range at once (and any sub-range agrees too).
func TestChunkCountsConsistency(t *testing.T) {
	const seed = 42
	const n = 100000
	const k = 31337
	const chunks = 23
	size := EqualSplit(n, chunks)
	full := ChunkCounts(seed, k, chunks, size, 0, chunks)
	for i := uint64(0); i < chunks; i++ {
		single := ChunkCount(seed, k, chunks, size, i)
		if single != full[i] {
			t.Errorf("chunk %d: single query %d != full query %d", i, single, full[i])
		}
	}
	// Arbitrary sub-ranges.
	sub := ChunkCounts(seed, k, chunks, size, 5, 14)
	for i := range sub {
		if sub[i] != full[5+i] {
			t.Errorf("subrange chunk %d mismatch", 5+i)
		}
	}
}

// TestChunkCountsSeedSensitivity: different seeds give different splits.
func TestChunkCountsSeedSensitivity(t *testing.T) {
	const n = 10000
	const k = 5000
	const chunks = 16
	size := EqualSplit(n, chunks)
	a := ChunkCounts(1, k, chunks, size, 0, chunks)
	b := ChunkCounts(2, k, chunks, size, 0, chunks)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical splits")
	}
}

// TestChunkCountsMarginal: each chunk's count is hypergeometric; its mean
// is k * chunkSize / n.
func TestChunkCountsMarginal(t *testing.T) {
	const n = 64000
	const k = 16000
	const chunks = 8
	size := EqualSplit(n, chunks)
	const trials = 2000
	var total float64
	for s := uint64(0); s < trials; s++ {
		total += float64(ChunkCount(s, k, chunks, size, 3))
	}
	mean := total / trials
	want := float64(k) / chunks
	if mean < want*0.98 || mean > want*1.02 {
		t.Errorf("mean chunk count %v, want ~%v", mean, want)
	}
}

func TestEqualSplitAdditivity(t *testing.T) {
	f := func(nRaw uint32, cRaw uint8, loRaw, midRaw, hiRaw uint8) bool {
		n := uint64(nRaw%1000000) + 1
		chunks := uint64(cRaw%64) + 1
		lo := uint64(loRaw) % (chunks + 1)
		mid := uint64(midRaw) % (chunks + 1)
		hi := uint64(hiRaw) % (chunks + 1)
		if lo > mid {
			lo, mid = mid, lo
		}
		if mid > hi {
			mid, hi = hi, mid
		}
		if lo > mid {
			lo, mid = mid, lo
		}
		size := EqualSplit(n, chunks)
		return size(lo, hi) == size(lo, mid)+size(mid, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEqualSplitTotal(t *testing.T) {
	for _, n := range []uint64{1, 7, 100, 12345} {
		for _, chunks := range []uint64{1, 2, 3, 7, 16} {
			size := EqualSplit(n, chunks)
			if size(0, chunks) != n {
				t.Errorf("n=%d chunks=%d: total %d", n, chunks, size(0, chunks))
			}
			// Balanced: chunk sizes differ by at most one.
			var mn, mx uint64 = n, 0
			for i := uint64(0); i < chunks; i++ {
				s := size(i, i+1)
				if s < mn {
					mn = s
				}
				if s > mx {
					mx = s
				}
			}
			if chunks <= n && mx-mn > 1 {
				t.Errorf("n=%d chunks=%d: sizes range [%d,%d]", n, chunks, mn, mx)
			}
		}
	}
}

// TestRecursiveSplitConsistency: range queries agree with the full split
// and conserve the total.
func TestRecursiveSplitConsistency(t *testing.T) {
	weights := make([]float64, 37)
	for i := range weights {
		weights[i] = float64(1 + i%5)
	}
	const seed = 9
	const total = 54321
	full := RecursiveSplit(seed, total, weights, 0, len(weights))
	if sum64(full) != total {
		t.Fatalf("full split sums to %d, want %d", sum64(full), total)
	}
	for i := 0; i < len(weights); i++ {
		one := RecursiveSplit(seed, total, weights, i, i+1)
		if one[0] != full[i] {
			t.Errorf("cell %d: single %d != full %d", i, one[0], full[i])
		}
	}
	mid := RecursiveSplit(seed, total, weights, 10, 25)
	for i := range mid {
		if mid[i] != full[10+i] {
			t.Errorf("range cell %d mismatch", 10+i)
		}
	}
}

func TestRecursiveSplitProportions(t *testing.T) {
	weights := []float64{1, 3} // bucket 1 should get ~3/4
	var b1 uint64
	const trials = 500
	const total = 4000
	for s := uint64(0); s < trials; s++ {
		counts := RecursiveSplit(s, total, weights, 0, 2)
		b1 += counts[1]
	}
	frac := float64(b1) / float64(trials*total)
	if frac < 0.74 || frac > 0.76 {
		t.Errorf("bucket 1 fraction %v, want ~0.75", frac)
	}
}

func TestBinomialChunkCountsConsistency(t *testing.T) {
	const seed = 4
	const chunks = 12
	size := EqualSplit(90000, chunks)
	full := BinomialChunkCounts(seed, 0.01, chunks, size, 0, chunks)
	for i := uint64(0); i < chunks; i++ {
		one := BinomialChunkCounts(seed, 0.01, chunks, size, i, i+1)
		if one[0] != full[i] {
			t.Errorf("chunk %d: %d != %d", i, one[0], full[i])
		}
	}
}

func BenchmarkChunkCountSingle(b *testing.B) {
	size := EqualSplit(1<<40, 1<<10)
	for i := 0; i < b.N; i++ {
		ChunkCount(uint64(i), 1<<30, 1<<10, size, 512)
	}
}

var _ = prng.New // keep import if unused in future edits

// TestRecursiveSplitEqualConsistency: equal-weight splits conserve the
// total and agree between range queries and full queries.
func TestRecursiveSplitEqualConsistency(t *testing.T) {
	const seed = 77
	const total = 99999
	const buckets = 53
	full := RecursiveSplitEqual(seed, total, buckets, 0, buckets)
	if sum64(full) != total {
		t.Fatalf("sums to %d, want %d", sum64(full), total)
	}
	for i := uint64(0); i < buckets; i++ {
		one := RecursiveSplitEqual(seed, total, buckets, i, i+1)
		if one[0] != full[i] {
			t.Errorf("bucket %d: single %d != full %d", i, one[0], full[i])
		}
	}
	mid := RecursiveSplitEqual(seed, total, buckets, 13, 31)
	for i := range mid {
		if mid[i] != full[13+i] {
			t.Errorf("range bucket %d mismatch", 13+i)
		}
	}
}

// TestRecursiveSplitEqualUniform: each bucket receives ~total/buckets.
func TestRecursiveSplitEqualUniform(t *testing.T) {
	const buckets = 16
	const total = 8000
	sums := make([]uint64, buckets)
	const trials = 400
	for s := uint64(0); s < trials; s++ {
		counts := RecursiveSplitEqual(s, total, buckets, 0, buckets)
		for i, c := range counts {
			sums[i] += c
		}
	}
	want := float64(total) / buckets
	for i, s := range sums {
		mean := float64(s) / trials
		if mean < want*0.97 || mean > want*1.03 {
			t.Errorf("bucket %d mean %v, want ~%v", i, mean, want)
		}
	}
}

// TestRecursiveSplitEqualRankProperty is the contract behind the O(log P)
// per-PE setup: for randomized seeds, totals and bucket counts, the rank
// walk returns exactly (sum of the full split before b, full split at b).
func TestRecursiveSplitEqualRankProperty(t *testing.T) {
	f := func(seed uint32, totalRaw uint32, bRaw uint8, pick uint8) bool {
		total := uint64(totalRaw % 200000)
		buckets := uint64(bRaw%80) + 1
		b := uint64(pick) % buckets
		full := RecursiveSplitEqual(uint64(seed), total, buckets, 0, buckets)
		var wantBefore uint64
		for _, c := range full[:b] {
			wantBefore += c
		}
		before, at := RecursiveSplitEqualRank(uint64(seed), total, buckets, b)
		return before == wantBefore && at == full[b]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRecursiveSplitEqualPrefixBefore: PrefixBefore(b) equals summing the
// full split slice, for every b including the b == buckets total.
func TestRecursiveSplitEqualPrefixBefore(t *testing.T) {
	const seed = 123
	const total = 77777
	const buckets = 41
	full := RecursiveSplitEqual(seed, total, buckets, 0, buckets)
	var sum uint64
	for b := uint64(0); b <= buckets; b++ {
		if got := RecursiveSplitEqualPrefix(seed, total, buckets, b); got != sum {
			t.Errorf("prefix before %d: got %d, want %d", b, got, sum)
		}
		if b < buckets {
			sum += full[b]
		}
	}
}

// TestRecursiveSplitEqualInto: the buffer variant matches the allocating
// one even when the buffer holds stale values.
func TestRecursiveSplitEqualInto(t *testing.T) {
	const seed = 5
	const total = 31415
	const buckets = 29
	want := RecursiveSplitEqual(seed, total, buckets, 0, buckets)
	out := make([]uint64, buckets)
	for i := range out {
		out[i] = ^uint64(0) // stale garbage the call must overwrite
	}
	RecursiveSplitEqualInto(seed, total, buckets, 0, buckets, out)
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("bucket %d: got %d, want %d", i, out[i], want[i])
		}
	}
	sub := make([]uint64, 10)
	RecursiveSplitEqualInto(seed, total, buckets, 7, 17, sub)
	for i := range sub {
		if sub[i] != want[7+i] {
			t.Errorf("subrange bucket %d: got %d, want %d", 7+i, sub[i], want[7+i])
		}
	}
}

func TestRecursiveSplitEqualProperty(t *testing.T) {
	f := func(seed uint32, totalRaw uint32, bRaw uint8) bool {
		total := uint64(totalRaw % 100000)
		buckets := uint64(bRaw%60) + 1
		counts := RecursiveSplitEqual(uint64(seed), total, buckets, 0, buckets)
		return sum64(counts) == total && uint64(len(counts)) == buckets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
