// Package sampling implements sequential and distributed sampling without
// replacement: Vitter's Algorithm D for drawing a sorted random sample in
// expected linear time, and the divide-and-conquer sample-count splitting
// of Sanders et al. that lets every processing entity compute, without
// communication, how many samples land in its chunk of the universe.
package sampling

import (
	"math"

	"repro/internal/prng"
)

// alphaInv is Vitter's 1/alpha: Method D switches to Method A when the
// remaining sample is denser than universe/alphaInv.
const alphaInv = 13

// maxUniverse bounds the universe size so that float64 arithmetic inside
// Method D stays exact enough (2^52 < 2^53 mantissa).
const maxUniverse = 1 << 52

// SampleSorted draws n distinct indices uniformly from [0, universe) and
// calls emit with each index in increasing order. It implements Vitter's
// sequential sampling Algorithm D (with the Method A fallback for dense
// samples) and runs in expected O(n) time independent of the universe size.
func SampleSorted(r *prng.Random, universe, n uint64, emit func(uint64)) {
	if n > universe {
		panic("sampling: sample larger than universe")
	}
	if universe > maxUniverse {
		panic("sampling: universe exceeds 2^52")
	}
	if n == 0 {
		return
	}
	methodD(r, universe, n, 0, emit)
}

// methodA is Vitter's Method A: sequential skip generation in O(universe).
// Used when the sampling fraction is high, where it is cache-friendly and
// fast in practice.
func methodA(r *prng.Random, N, n, base uint64, emit func(uint64)) {
	top := float64(N - n)
	Nreal := float64(N)
	idx := base
	for n >= 2 {
		v := r.Float64()
		var s uint64
		quot := top / Nreal
		for quot > v {
			s++
			top--
			Nreal--
			quot *= top / Nreal
		}
		emit(idx + s)
		idx += s + 1
		Nreal--
		n--
	}
	// n == 1: choose uniformly among the remaining records.
	s := uint64(Nreal * r.Float64())
	if s >= uint64(Nreal) { // guard against u ~ 1.0 rounding
		s = uint64(Nreal) - 1
	}
	emit(idx + s)
}

// methodD is Vitter's Method D: generates skip distances S directly from
// their distribution via rejection, visiting only selected records.
func methodD(r *prng.Random, N, n, base uint64, emit func(uint64)) {
	if alphaInv*n >= N {
		methodA(r, N, n, base, emit)
		return
	}

	idx := base
	ninv := 1.0 / float64(n)
	vprime := math.Exp(math.Log(r.Float64Open()) * ninv)
	qu1 := N - n + 1
	qu1real := float64(qu1)
	threshold := alphaInv * n

	for n > 1 && threshold < N {
		nmin1inv := 1.0 / float64(n-1)
		var s uint64
		var sreal float64
		for {
			// Step D2: generate U and X.
			var x float64
			for {
				x = float64(N) * (1 - vprime)
				s = uint64(x)
				if s < qu1 {
					break
				}
				vprime = math.Exp(math.Log(r.Float64Open()) * ninv)
			}
			sreal = float64(s)
			u := r.Float64Open()

			// Step D3: squeeze acceptance.
			y1 := math.Exp(math.Log(u*float64(N)/qu1real) * nmin1inv)
			vprime = y1 * (-x/float64(N) + 1.0) * (qu1real / (qu1real - sreal))
			if vprime <= 1.0 {
				break // accept; vprime already valid for the next round
			}

			// Step D4: exact acceptance test.
			y2 := 1.0
			top := float64(N - 1)
			var bottom, limit float64
			if float64(n-1) > sreal {
				bottom = float64(N - n)
				limit = float64(N - s)
			} else {
				bottom = float64(N) - sreal - 1
				limit = qu1real
			}
			for t := float64(N - 1); t >= limit; t-- {
				y2 *= top / bottom
				top--
				bottom--
			}
			if float64(N)/(float64(N)-x) >= y1*math.Exp(math.Log(y2)*nmin1inv) {
				vprime = math.Exp(math.Log(r.Float64Open()) * nmin1inv)
				break // accept
			}
			vprime = math.Exp(math.Log(r.Float64Open()) * ninv)
		}

		// Step D5: select the (s+1)st remaining record.
		emit(idx + s)
		idx += s + 1
		N -= s + 1
		n--
		ninv = nmin1inv
		qu1 -= s
		qu1real -= sreal
		threshold -= alphaInv
	}

	if n > 1 {
		methodA(r, N, n, idx, emit)
		return
	}
	// n == 1
	s := uint64(float64(N) * vprime)
	if s >= N {
		s = N - 1
	}
	emit(idx + s)
}

// SortedUniforms emits k uniform variates over [lo, hi) in ascending order
// using sequential order statistics (the sweep-line generator of sRHG needs
// monotonically increasing positions without buffering the whole set).
func SortedUniforms(r *prng.Random, k uint64, lo, hi float64, emit func(float64)) {
	cur := lo
	for j := k; j >= 1; j-- {
		u := r.Float64Open()
		cur += (hi - cur) * (1 - math.Pow(u, 1.0/float64(j)))
		if cur > hi {
			cur = hi
		}
		emit(cur)
	}
}
