package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func collect(r *prng.Random, universe, n uint64) []uint64 {
	var out []uint64
	SampleSorted(r, universe, n, func(v uint64) { out = append(out, v) })
	return out
}

// TestSampleSortedInvariants: output has exactly n strictly increasing
// values inside [0, universe). Exercises both Method A (dense) and D
// (sparse) paths.
func TestSampleSortedInvariants(t *testing.T) {
	cases := []struct{ universe, n uint64 }{
		{10, 10}, // full universe
		{10, 1},
		{100, 50},       // dense: method A
		{1000, 10},      // sparse: method D
		{1 << 30, 1000}, // very sparse
		{1 << 20, 1 << 18},
		{1, 1},
		{5, 0},
	}
	for _, c := range cases {
		r := prng.NewFromRaw(17)
		out := collect(r, c.universe, c.n)
		if uint64(len(out)) != c.n {
			t.Fatalf("universe %d, n %d: got %d samples", c.universe, c.n, len(out))
		}
		for i, v := range out {
			if v >= c.universe {
				t.Fatalf("sample %d out of universe %d", v, c.universe)
			}
			if i > 0 && out[i-1] >= v {
				t.Fatalf("samples not strictly increasing: %d then %d", out[i-1], v)
			}
		}
	}
}

func TestSampleSortedProperty(t *testing.T) {
	f := func(seedRaw uint32, uRaw uint32, nRaw uint16) bool {
		universe := uint64(uRaw%100000) + 1
		n := uint64(nRaw) % (universe + 1)
		r := prng.NewFromRaw(uint64(seedRaw))
		out := collect(r, universe, n)
		if uint64(len(out)) != n {
			return false
		}
		for i, v := range out {
			if v >= universe || (i > 0 && out[i-1] >= v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSampleSortedUniformity: every universe element should be selected
// with probability n/universe.
func TestSampleSortedUniformity(t *testing.T) {
	const universe = 40
	const n = 10
	const trials = 60000
	counts := make([]int, universe)
	r := prng.NewFromRaw(23)
	for i := 0; i < trials; i++ {
		SampleSorted(r, universe, n, func(v uint64) { counts[v]++ })
	}
	want := float64(trials) * n / universe
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("element %d selected %d times, want ~%v", i, c, want)
		}
	}
}

// TestSampleSortedFirstGapDistribution: the probability that element 0 is
// in the sample is n/universe; sharper than the mean test for detecting
// skip-distribution bugs in Method D.
func TestSampleSortedFirstElement(t *testing.T) {
	const universe = 1 << 16
	const n = 64 // sparse: method D path
	const trials = 40000
	hit := 0
	r := prng.NewFromRaw(31)
	for i := 0; i < trials; i++ {
		first := uint64(math.MaxUint64)
		SampleSorted(r, universe, n, func(v uint64) {
			if v < first {
				first = v
			}
		})
		if first == 0 {
			hit++
		}
	}
	p := float64(n) / float64(universe)
	got := float64(hit) / trials
	sigma := math.Sqrt(p * (1 - p) / trials)
	if math.Abs(got-p) > 6*sigma {
		t.Errorf("P[0 selected] = %v, want %v +- %v", got, p, 6*sigma)
	}
}

func TestSortedUniformsMonotone(t *testing.T) {
	r := prng.NewFromRaw(5)
	prev := -1.0
	count := 0
	SortedUniforms(r, 10000, 0, 1, func(x float64) {
		if x < prev {
			t.Fatalf("not monotone: %v after %v", x, prev)
		}
		if x < 0 || x > 1 {
			t.Fatalf("out of range: %v", x)
		}
		prev = x
		count++
	})
	if count != 10000 {
		t.Fatalf("emitted %d values, want 10000", count)
	}
}

// TestSortedUniformsDistribution: sorted generation must still be uniform
// marginally — compare the empirical CDF at a few quantiles.
func TestSortedUniformsDistribution(t *testing.T) {
	r := prng.NewFromRaw(6)
	const k = 200000
	var below25, below50, below75 int
	SortedUniforms(r, k, 0, 1, func(x float64) {
		if x < 0.25 {
			below25++
		}
		if x < 0.5 {
			below50++
		}
		if x < 0.75 {
			below75++
		}
	})
	check := func(name string, got int, want float64) {
		frac := float64(got) / k
		if math.Abs(frac-want) > 0.01 {
			t.Errorf("%s: %v, want ~%v", name, frac, want)
		}
	}
	check("P[<0.25]", below25, 0.25)
	check("P[<0.50]", below50, 0.50)
	check("P[<0.75]", below75, 0.75)
}

func TestSortedUniformsRange(t *testing.T) {
	r := prng.NewFromRaw(7)
	SortedUniforms(r, 1000, 2.5, 7.5, func(x float64) {
		if x < 2.5 || x > 7.5 {
			t.Fatalf("value %v outside [2.5, 7.5]", x)
		}
	})
}

func BenchmarkSampleSortedSparse(b *testing.B) {
	r := prng.NewFromRaw(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SampleSorted(r, 1<<40, 1000, func(uint64) {})
	}
}

func BenchmarkSampleSortedDense(b *testing.B) {
	r := prng.NewFromRaw(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SampleSorted(r, 2000, 1000, func(uint64) {})
	}
}
