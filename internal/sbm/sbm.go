// Package sbm implements a communication-free stochastic block model
// generator — the first extension the paper's conclusion names as future
// work ("we would like to extend our communication-free paradigm to
// various other network models such as the stochastic block-model", §9).
//
// The construction generalizes the undirected G(n,p) generator: vertices
// are partitioned into blocks; each unordered pair (u, v) is an edge
// independently with probability Prob[block(u)][block(v)]. The chunk-pair
// matrix of §4.2 is intersected with the block structure, giving
// rectangular (or triangular) sub-universes of constant probability, each
// sampled with a binomial count plus sorted sampling, seeded purely by
// the (chunk pair, block pair) identity — so both owning PEs regenerate
// identical edges, exactly like the ER generators.
package sbm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/pe"
	"repro/internal/prng"
	"repro/internal/sampling"
)

// tagSBM namespaces the model's hash streams.
const tagSBM uint64 = 0x55 << 32

// Params configures a stochastic block model instance.
type Params struct {
	// BlockSizes lists the number of vertices per block; vertices are
	// numbered block by block.
	BlockSizes []uint64
	// Prob[i][j] is the edge probability between block i and block j.
	// The matrix must be symmetric (the model is undirected).
	Prob [][]float64
	Seed uint64
	// Chunks is the number of logical PEs. 0 means 1.
	Chunks uint64
}

// PlantedPartition returns Params for the classic planted-partition model:
// `blocks` equal blocks over n vertices, intra-block probability pIn and
// inter-block probability pOut.
func PlantedPartition(n uint64, blocks int, pIn, pOut float64, seed, chunks uint64) Params {
	sizes := make([]uint64, blocks)
	ch := core.Chunking{N: n, Chunks: uint64(blocks)}
	for i := range sizes {
		sizes[i] = ch.Size(uint64(i))
	}
	prob := make([][]float64, blocks)
	for i := range prob {
		prob[i] = make([]float64, blocks)
		for j := range prob[i] {
			if i == j {
				prob[i][j] = pIn
			} else {
				prob[i][j] = pOut
			}
		}
	}
	return Params{BlockSizes: sizes, Prob: prob, Seed: seed, Chunks: chunks}
}

func (p Params) chunks() uint64 {
	if p.Chunks == 0 {
		return 1
	}
	return p.Chunks
}

// N returns the total number of vertices.
func (p Params) N() uint64 {
	var n uint64
	for _, s := range p.BlockSizes {
		n += s
	}
	return n
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if len(p.BlockSizes) == 0 {
		return fmt.Errorf("sbm: no blocks")
	}
	if len(p.Prob) != len(p.BlockSizes) {
		return fmt.Errorf("sbm: probability matrix has %d rows for %d blocks", len(p.Prob), len(p.BlockSizes))
	}
	for i, row := range p.Prob {
		if len(row) != len(p.BlockSizes) {
			return fmt.Errorf("sbm: probability row %d has %d entries", i, len(row))
		}
		for j, v := range row {
			if v < 0 || v > 1 {
				return fmt.Errorf("sbm: probability [%d][%d] = %v outside [0,1]", i, j, v)
			}
			if p.Prob[j][i] != v {
				return fmt.Errorf("sbm: probability matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if p.chunks() > p.N() {
		return fmt.Errorf("sbm: more chunks (%d) than vertices (%d)", p.chunks(), p.N())
	}
	return nil
}

// blockStarts returns the first vertex of each block plus the total.
func (p Params) blockStarts() []uint64 {
	starts := make([]uint64, len(p.BlockSizes)+1)
	for i, s := range p.BlockSizes {
		starts[i+1] = starts[i] + s
	}
	return starts
}

// Generate produces the full graph; undirected edges appear once per
// endpoint across PEs.
func Generate(p Params, workers int) (*graph.EdgeList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	results := pe.ForEach(int(p.chunks()), workers, func(c int) []graph.Edge {
		return GenerateChunk(p, uint64(c))
	})
	return graph.Merge(p.N(), results...), nil
}

// interval is a half-open vertex range.
type interval struct{ lo, hi uint64 }

func (iv interval) size() uint64 { return iv.hi - iv.lo }

// intersect clips the interval to [lo, hi).
func (iv interval) intersect(lo, hi uint64) interval {
	if lo > iv.lo {
		iv.lo = lo
	}
	if hi < iv.hi {
		iv.hi = hi
	}
	if iv.hi < iv.lo {
		iv.hi = iv.lo
	}
	return iv
}

// GenerateChunk is a thin collector over StreamChunk: it returns all edges
// incident to the chunk's vertex range, oriented away from local vertices.
func GenerateChunk(p Params, chunk uint64) []graph.Edge {
	var edges []graph.Edge
	StreamChunk(p, chunk, func(e graph.Edge) { edges = append(edges, e) })
	return edges
}

// StreamChunk emits all edges incident to the chunk's vertex range through
// a callback without materializing them. It composes the per-block-pair
// undirected streams along the chunk's triangular row exactly like the
// undirected G(n,p) streamer: for each chunk pair the constant-probability
// sub-rectangles (block pair intersections) are sampled in block order,
// seeded purely by the (chunk pair, block pair) identity, so both owning
// PEs regenerate identical edges and the working set is one sub-rectangle's
// sampler state.
func StreamChunk(p Params, chunk uint64, emit func(graph.Edge)) {
	n := p.N()
	P := p.chunks()
	ch := core.Chunking{N: n, Chunks: P}
	starts := p.blockStarts()
	blocks := len(p.BlockSizes)

	for other := uint64(0); other < P; other++ {
		i, j := chunk, other
		if other > chunk {
			i, j = other, chunk
		}
		rows := interval{ch.Start(i), ch.End(i)}
		cols := interval{ch.Start(j), ch.End(j)}
		local := chunk == i

		// Sub-rectangles of constant probability: block pair (bi, bj).
		for bi := 0; bi < blocks; bi++ {
			rowPart := rows.intersect(starts[bi], starts[bi+1])
			if rowPart.size() == 0 {
				continue
			}
			for bj := 0; bj < blocks; bj++ {
				colPart := cols.intersect(starts[bj], starts[bj+1])
				if colPart.size() == 0 {
					continue
				}
				prob := p.Prob[bi][bj]
				r := prng.New(p.Seed, tagSBM, i<<32|j, uint64(bi)<<32|uint64(bj))
				if i == j {
					// Diagonal chunk: only the strict lower triangle of
					// the chunk counts; clip the rectangle accordingly.
					sampleLowerTriangleRect(&r, rowPart, colPart, prob, func(u, v uint64) {
						// Both endpoints local: emit both orientations.
						emit(graph.Edge{U: u, V: v})
						emit(graph.Edge{U: v, V: u})
					})
					continue
				}
				sampleRect(&r, rowPart, colPart, prob, func(u, v uint64) {
					if local {
						emit(graph.Edge{U: u, V: v})
					} else {
						emit(graph.Edge{U: v, V: u})
					}
				})
			}
		}
	}
}

// sampleRect Bernoulli-samples a full rectangle rows x cols.
func sampleRect(r *prng.Random, rows, cols interval, prob float64, emit func(u, v uint64)) {
	universe := rows.size() * cols.size()
	if universe == 0 || prob <= 0 {
		return
	}
	k := dist.Binomial(r, universe, prob)
	w := cols.size()
	sampling.SampleSorted(r, universe, k, func(idx uint64) {
		emit(rows.lo+idx/w, cols.lo+idx%w)
	})
}

// sampleLowerTriangleRect Bernoulli-samples the part of the rectangle that
// lies strictly below the diagonal (u > v). Both intervals are the same
// chunk range intersected with (contiguous) blocks, so only three shapes
// occur: rows entirely above cols (full rectangle below the diagonal),
// rows entirely below cols (nothing), or the identical square (bi == bj,
// strict lower triangle).
func sampleLowerTriangleRect(r *prng.Random, rows, cols interval, prob float64, emit func(u, v uint64)) {
	if prob <= 0 || rows.size() == 0 || cols.size() == 0 {
		return
	}
	switch {
	case rows.lo >= cols.hi:
		sampleRect(r, rows, cols, prob, emit)
	case rows == cols:
		size := rows.size()
		universe := size * (size - 1) / 2
		if universe == 0 {
			return
		}
		k := dist.Binomial(r, universe, prob)
		sampling.SampleSorted(r, universe, k, func(idx uint64) {
			row, col := core.TriangularIndex(idx)
			emit(rows.lo+row, rows.lo+col)
		})
	default:
		// rows entirely below the diagonal's column range: the mirrored
		// block pair (bj, bi) emits these pairs.
	}
}
