package sbm

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestPlantedPartitionDensities(t *testing.T) {
	const n = 3000
	const blocks = 3
	const pIn, pOut = 0.02, 0.002
	p := PlantedPartition(n, blocks, pIn, pOut, 7, 8)
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	starts := p.blockStarts()
	blockOf := func(v uint64) int {
		for b := 0; b < blocks; b++ {
			if v < starts[b+1] {
				return b
			}
		}
		return blocks - 1
	}
	// Count undirected edges per block pair.
	intra, inter := 0, 0
	for _, e := range el.UndirectedSet() {
		if blockOf(e.U) == blockOf(e.V) {
			intra++
		} else {
			inter++
		}
	}
	// Expected counts.
	perBlock := float64(n / blocks)
	wantIntra := float64(blocks) * perBlock * (perBlock - 1) / 2 * pIn
	wantInter := float64(blocks*(blocks-1)) / 2 * perBlock * perBlock * pOut
	if math.Abs(float64(intra)-wantIntra) > 6*math.Sqrt(wantIntra) {
		t.Errorf("intra edges %d, want ~%v", intra, wantIntra)
	}
	if math.Abs(float64(inter)-wantInter) > 6*math.Sqrt(wantInter) {
		t.Errorf("inter edges %d, want ~%v", inter, wantInter)
	}
}

func TestConventionAndConsistency(t *testing.T) {
	p := PlantedPartition(1200, 4, 0.05, 0.005, 3, 6)
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if el.CountSelfLoops() != 0 {
		t.Error("self loops present")
	}
	if el.CountDuplicates() != 0 {
		t.Error("duplicates present")
	}
	set := make(map[graph.Edge]bool, el.Len())
	for _, e := range el.Edges {
		set[e] = true
	}
	for _, e := range el.Edges {
		if !set[graph.Edge{U: e.V, V: e.U}] {
			t.Fatalf("edge %v has no mirror", e)
		}
	}
}

func TestWorkerIndependence(t *testing.T) {
	p := PlantedPartition(900, 3, 0.04, 0.004, 11, 8)
	a, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	a.Sort()
	b.Sort()
	if a.Len() != b.Len() {
		t.Fatal("edge count depends on workers")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// TestUniformMatrixMatchesGNP: with a constant probability matrix the SBM
// is exactly G(n,p); compare densities across seeds.
func TestUniformMatrixMatchesGNP(t *testing.T) {
	const n = 1500
	const prob = 0.01
	var total int
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		p := PlantedPartition(n, 4, prob, prob, s, 4)
		el, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		total += len(el.UndirectedSet())
	}
	mean := float64(total) / trials
	want := float64(n) * (n - 1) / 2 * prob
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean undirected edges %v, want ~%v", mean, want)
	}
}

// TestCommunityStructure: with strong intra-block probability the blocks
// are denser than the cut — detectable by simple conductance.
func TestCommunityStructure(t *testing.T) {
	p := PlantedPartition(2000, 2, 0.05, 0.001, 5, 4)
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	half := p.N() / 2
	var cut, vol int
	for _, e := range el.Edges {
		vol++
		if (e.U < half) != (e.V < half) {
			cut++
		}
	}
	conductance := float64(cut) / float64(vol)
	if conductance > 0.1 {
		t.Errorf("conductance %v, want << 1 for planted partition", conductance)
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{}).Validate(); err == nil {
		t.Error("empty params accepted")
	}
	bad := PlantedPartition(100, 2, 0.5, 0.1, 1, 1)
	bad.Prob[0][1] = 0.2 // break symmetry
	if err := bad.Validate(); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	bad2 := PlantedPartition(100, 2, 1.5, 0.1, 1, 1)
	if err := bad2.Validate(); err == nil {
		t.Error("probability > 1 accepted")
	}
}

// TestBlockBoundariesRespectChunks: chunks that split a block mid-way must
// still produce consistent results (regression guard for the interval
// intersection logic).
func TestBlockBoundariesVsChunks(t *testing.T) {
	// 5 blocks of 101 vertices across 7 chunks: nothing aligns.
	p := Params{
		BlockSizes: []uint64{101, 101, 101, 101, 101},
		Seed:       13,
		Chunks:     7,
	}
	p.Prob = make([][]float64, 5)
	for i := range p.Prob {
		p.Prob[i] = make([]float64, 5)
		for j := range p.Prob[i] {
			p.Prob[i][j] = 0.01
			if i == j {
				p.Prob[i][j] = 0.08
			}
		}
	}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if el.CountDuplicates() != 0 || el.CountSelfLoops() != 0 {
		t.Fatal("duplicates or self loops with unaligned blocks")
	}
	und := el.UndirectedSet()
	if el.Len() != 2*len(und) {
		t.Fatalf("partitioned-output convention broken: %d vs %d", el.Len(), 2*len(und))
	}
}

// TestStreamChunkMatchesGenerate: concatenating the streamed chunks must
// reproduce Generate edge for edge — the SBM streamer is the composition
// of its per-(chunk pair, block pair) undirected streams in chunk-row
// order.
func TestStreamChunkMatchesGenerate(t *testing.T) {
	p := PlantedPartition(400, 3, 0.05, 0.005, 11, 5)
	whole, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []graph.Edge
	for c := uint64(0); c < p.chunks(); c++ {
		StreamChunk(p, c, func(e graph.Edge) { streamed = append(streamed, e) })
	}
	if len(streamed) != whole.Len() {
		t.Fatalf("streamed %d edges, Generate has %d", len(streamed), whole.Len())
	}
	for i := range streamed {
		if streamed[i] != whole.Edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, streamed[i], whole.Edges[i])
		}
	}
}

// TestStreamChunkAllocs: the streaming sweep allocates only per-call
// constants (block starts), never per chunk pair.
func TestStreamChunkAllocs(t *testing.T) {
	p := PlantedPartition(1<<12, 4, 0.01, 0.001, 1, 16)
	var sink uint64
	allocs := testing.AllocsPerRun(5, func() {
		StreamChunk(p, 8, func(e graph.Edge) { sink += e.U })
	})
	if allocs > 8 {
		t.Errorf("StreamChunk allocates %.0f times per chunk, want O(1)", allocs)
	}
	_ = sink
}
