package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/storage"
)

// The metrics layer is deliberately flat: a fixed set of typed fields on
// one struct, each a few atomic words, exposed in Prometheus text
// exposition format (0.0.4) on GET /metrics. No registry, no dependency
// — the serving hot path (a checkpoint hook firing after every chunk)
// touches only atomics. The one concession to dimensionality is
// LabeledCounter: a single label whose values are discovered at runtime
// (job models), still just an atomic per value after first touch.

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

func (c *Counter) Add(n uint64)  { c.v.Add(n) }
func (c *Counter) Inc()          { c.v.Add(1) }
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable, signed instantaneous value.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free; WriteText reads may tear between bucket and sum updates,
// which Prometheus scrapes tolerate (the next scrape converges).
type Histogram struct {
	bounds []float64       // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// LabeledCounter is a counter family over one label dimension whose
// values appear at runtime. Incrementing an existing label value is a
// map load plus an atomic add; creating a value is a one-time
// LoadOrStore. This is deliberately as far from a registry as label
// support can get: one dimension, counters only.
type LabeledCounter struct{ m sync.Map }

// Inc increments the counter for one label value.
func (c *LabeledCounter) Inc(value string) {
	if v, ok := c.m.Load(value); ok {
		v.(*Counter).Inc()
		return
	}
	v, _ := c.m.LoadOrStore(value, &Counter{})
	v.(*Counter).Inc()
}

// Value returns the count for one label value (0 if never incremented).
func (c *LabeledCounter) Value(value string) uint64 {
	if v, ok := c.m.Load(value); ok {
		return v.(*Counter).Value()
	}
	return 0
}

// escapeLabel escapes a label value per the exposition format.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// writeText emits the family sorted by label value, so scrapes are
// deterministic.
func (c *LabeledCounter) writeText(w io.Writer, name, label, help string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name); err != nil {
		return err
	}
	type kv struct {
		k string
		v uint64
	}
	var vals []kv
	c.m.Range(func(k, v any) bool {
		vals = append(vals, kv{k.(string), v.(*Counter).Value()})
		return true
	})
	sort.Slice(vals, func(i, j int) bool { return vals[i].k < vals[j].k })
	for _, e := range vals {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, label, escapeLabel.Replace(e.k), e.v); err != nil {
			return err
		}
	}
	return nil
}

// Metrics is the server's flat metric set.
type Metrics struct {
	JobsSubmitted   Counter // new specs accepted into the queue
	JobsDeduped     Counter // submissions matching a queued/running job
	CacheHits       Counter // submissions served by a completed job
	JobsResumed     Counter // incomplete jobs re-enqueued at startup
	JobsCompleted   Counter
	JobsFailed      Counter
	JobsCancelled   Counter
	QueueRejected   Counter // 429s from the bounded submission queue
	EdgesGenerated  Counter // edges durably committed (rate = edges/sec)
	ChunksCommitted Counter // durable checkpoints
	// Verify/repair counters, fed by POST /jobs/{id}/verify.
	VerifyChunksChecked Counter        // chunks re-derived and checked
	VerifyFailures      Counter        // integrity faults found
	VerifyRepaired      Counter        // chunks spliced + PEs reset + manifests rebuilt
	JobsByModel         LabeledCounter // jobs accepted, by spec model
	QueueDepth          Gauge          // jobs waiting in the submission queue
	JobsInflight        Gauge          // jobs currently executing
	Checkpoint          *Histogram     // seconds between durable checkpoints, per PE
	QueueWait           *Histogram     // seconds from accepted submission to execution start
	Commit              *Histogram     // seconds one chunk's shard commit (fsync / part seal) took
	PartUpload          *Histogram     // seconds one S3 part upload took (storage observer)
}

// NewMetrics returns a zeroed metric set. Checkpoint/commit buckets span
// sub-millisecond chunk commits to multi-second stalls; queue-wait
// buckets span instant dispatch to a minutes-deep backlog; part-upload
// buckets span LAN object stores to cross-region puts.
func NewMetrics() *Metrics {
	return &Metrics{
		Checkpoint: NewHistogram(0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5),
		Commit:     NewHistogram(0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5),
		QueueWait:  NewHistogram(0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300),
		PartUpload: NewHistogram(0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60),
	}
}

// WriteText writes the metric set in Prometheus text exposition format,
// in a fixed order so scrapes and tests are deterministic.
func (m *Metrics) WriteText(w io.Writer) error {
	counters := []struct {
		name, help string
		c          *Counter
	}{
		{"kagen_jobs_submitted_total", "New job specs accepted into the queue.", &m.JobsSubmitted},
		{"kagen_jobs_deduped_total", "Submissions matching an already queued or running job.", &m.JobsDeduped},
		{"kagen_cache_hits_total", "Submissions served from the content-addressed result cache.", &m.CacheHits},
		{"kagen_jobs_resumed_total", "Incomplete jobs re-enqueued by the startup scan.", &m.JobsResumed},
		{"kagen_jobs_completed_total", "Jobs run to completion.", &m.JobsCompleted},
		{"kagen_jobs_failed_total", "Jobs that ended with an error.", &m.JobsFailed},
		{"kagen_jobs_cancelled_total", "Jobs cancelled by DELETE.", &m.JobsCancelled},
		{"kagen_queue_rejected_total", "Submissions rejected with 429 because the queue was full.", &m.QueueRejected},
		{"kagen_edges_generated_total", "Edges durably committed across all jobs.", &m.EdgesGenerated},
		{"kagen_chunks_committed_total", "Durable chunk checkpoints across all jobs.", &m.ChunksCommitted},
		{"kagen_verify_chunks_checked_total", "Chunks re-derived from the spec and checked by verify.", &m.VerifyChunksChecked},
		{"kagen_verify_failures_total", "Integrity faults found by verify.", &m.VerifyFailures},
		{"kagen_verify_repaired_total", "Repair actions taken (chunks spliced, PEs reset, manifests rebuilt).", &m.VerifyRepaired},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.c.Value()); err != nil {
			return err
		}
	}
	if err := m.JobsByModel.writeText(w, "kagen_jobs_by_model_total", "model",
		"Jobs accepted into the queue, by spec model."); err != nil {
		return err
	}
	// Striped-upload counters from the storage layer, process-global:
	// they cover every S3 destination the process writes (jobs, merges),
	// not just serve's own. All zero when every destination is local.
	up := storage.UploadStats()
	uploads := []struct {
		name, help string
		v          int64
	}{
		{"kagen_storage_parts_uploaded_total", "Multipart parts uploaded to object-store backends.", up.PartsUploaded},
		{"kagen_storage_part_retries_total", "Part uploads retried after a transient object-store error.", up.PartRetries},
		{"kagen_storage_bytes_uploaded_total", "Part payload bytes uploaded to object-store backends.", up.BytesUploaded},
		{"kagen_storage_checksums_reused_total", "Part checksums reused verbatim from chunk commit digests.", up.ChecksumReused},
		{"kagen_storage_checksums_rehashed_total", "Part checksums recomputed because parts coalesced chunks.", up.ChecksumRehashed},
	}
	for _, c := range uploads {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	const inflight = "kagen_storage_parts_max_inflight"
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
		inflight, "High-water mark of concurrently uploading parts.",
		inflight, inflight, up.MaxInFlight); err != nil {
		return err
	}
	gauges := []struct {
		name, help string
		g          *Gauge
	}{
		{"kagen_queue_depth", "Jobs waiting in the submission queue.", &m.QueueDepth},
		{"kagen_jobs_inflight", "Jobs currently executing.", &m.JobsInflight},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			g.name, g.help, g.name, g.name, g.g.Value()); err != nil {
			return err
		}
	}
	version, goVersion := obs.BuildInfo()
	if _, err := fmt.Fprintf(w,
		"# HELP kagen_build_info Build metadata of the running binary; value is always 1.\n"+
			"# TYPE kagen_build_info gauge\n"+
			"kagen_build_info{version=\"%s\",go=\"%s\"} 1\n",
		escapeLabel.Replace(version), escapeLabel.Replace(goVersion)); err != nil {
		return err
	}
	hists := []struct {
		name, help string
		h          *Histogram
	}{
		{"kagen_checkpoint_seconds", "Seconds between successive durable chunk checkpoints of one PE.", m.Checkpoint},
		{"kagen_queue_wait_seconds", "Seconds an accepted job waited in the queue before executing.", m.QueueWait},
		{"kagen_commit_seconds", "Seconds one chunk's shard commit (fsync / gzip flush / part seal) took.", m.Commit},
		{"kagen_storage_part_upload_seconds", "Seconds one multipart part upload took.", m.PartUpload},
	}
	for _, h := range hists {
		if err := h.h.writeText(w, h.name, h.help); err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) writeText(w io.Writer, name, help string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
		name, cum, name, math.Float64frombits(h.sum.Load()), name, h.count.Load())
	return err
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
