package serve

import (
	"strings"
	"sync"
	"testing"
)

// TestMetricsExposition: the text exposition carries every metric with
// HELP/TYPE lines, cumulative histogram buckets, and the exact values
// the typed API recorded.
func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.JobsSubmitted.Add(3)
	m.CacheHits.Inc()
	m.EdgesGenerated.Add(12345)
	m.QueueDepth.Set(2)
	m.JobsInflight.Add(1)
	m.Checkpoint.Observe(0.0007) // le 0.001
	m.Checkpoint.Observe(0.3)    // le 0.5
	m.Checkpoint.Observe(99)     // +Inf only

	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE kagen_jobs_submitted_total counter",
		"kagen_jobs_submitted_total 3",
		"kagen_cache_hits_total 1",
		"kagen_edges_generated_total 12345",
		"# TYPE kagen_storage_parts_uploaded_total counter",
		"# TYPE kagen_storage_parts_max_inflight gauge",
		"# TYPE kagen_queue_depth gauge",
		"kagen_queue_depth 2",
		"kagen_jobs_inflight 1",
		"# TYPE kagen_checkpoint_seconds histogram",
		`kagen_checkpoint_seconds_bucket{le="0.0005"} 0`,
		`kagen_checkpoint_seconds_bucket{le="0.001"} 1`,
		`kagen_checkpoint_seconds_bucket{le="0.5"} 2`,
		`kagen_checkpoint_seconds_bucket{le="+Inf"} 3`,
		"kagen_checkpoint_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if m.Checkpoint.Count() != 3 {
		t.Errorf("histogram count %d, want 3", m.Checkpoint.Count())
	}
}

// TestMetricsConcurrent: the hot-path types are safe under concurrent
// writers (the race detector is the assertion).
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.EdgesGenerated.Add(2)
				m.QueueDepth.Add(1)
				m.QueueDepth.Add(-1)
				m.Checkpoint.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := m.EdgesGenerated.Value(); got != 16000 {
		t.Errorf("counter %d, want 16000", got)
	}
	if got := m.Checkpoint.Count(); got != 8000 {
		t.Errorf("histogram count %d, want 8000", got)
	}
	if got := m.QueueDepth.Value(); got != 0 {
		t.Errorf("gauge %d, want 0", got)
	}
}
