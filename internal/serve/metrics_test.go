package serve

import (
	"strings"
	"sync"
	"testing"
)

// TestMetricsExposition: the text exposition carries every metric with
// HELP/TYPE lines, cumulative histogram buckets, and the exact values
// the typed API recorded.
func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.JobsSubmitted.Add(3)
	m.CacheHits.Inc()
	m.EdgesGenerated.Add(12345)
	m.QueueDepth.Set(2)
	m.JobsInflight.Add(1)
	m.Checkpoint.Observe(0.0007) // le 0.001
	m.Checkpoint.Observe(0.3)    // le 0.5
	m.Checkpoint.Observe(99)     // +Inf only
	m.JobsByModel.Inc("rgg2d")
	m.JobsByModel.Inc("gnm_undirected")
	m.JobsByModel.Inc("rgg2d")
	m.QueueWait.Observe(0.05)
	m.Commit.Observe(0.002)
	m.PartUpload.Observe(0.12)

	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE kagen_jobs_submitted_total counter",
		"kagen_jobs_submitted_total 3",
		"kagen_cache_hits_total 1",
		"kagen_edges_generated_total 12345",
		"# TYPE kagen_storage_parts_uploaded_total counter",
		"# TYPE kagen_storage_parts_max_inflight gauge",
		"# TYPE kagen_queue_depth gauge",
		"kagen_queue_depth 2",
		"kagen_jobs_inflight 1",
		"# TYPE kagen_checkpoint_seconds histogram",
		`kagen_checkpoint_seconds_bucket{le="0.0005"} 0`,
		`kagen_checkpoint_seconds_bucket{le="0.001"} 1`,
		`kagen_checkpoint_seconds_bucket{le="0.5"} 2`,
		`kagen_checkpoint_seconds_bucket{le="+Inf"} 3`,
		"kagen_checkpoint_seconds_count 3",
		"# TYPE kagen_jobs_by_model_total counter",
		`kagen_jobs_by_model_total{model="gnm_undirected"} 1`,
		`kagen_jobs_by_model_total{model="rgg2d"} 2`,
		"# TYPE kagen_build_info gauge",
		"# TYPE kagen_queue_wait_seconds histogram",
		"kagen_queue_wait_seconds_count 1",
		`kagen_queue_wait_seconds_bucket{le="0.1"} 1`,
		"# TYPE kagen_commit_seconds histogram",
		"kagen_commit_seconds_count 1",
		"# TYPE kagen_storage_part_upload_seconds histogram",
		"kagen_storage_part_upload_seconds_count 1",
		`kagen_storage_part_upload_seconds_bucket{le="0.5"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if m.Checkpoint.Count() != 3 {
		t.Errorf("histogram count %d, want 3", m.Checkpoint.Count())
	}
	if !strings.Contains(out, `kagen_build_info{version="`) {
		t.Errorf("exposition missing build info labels\n%s", out)
	}
	// Labeled series are emitted in sorted label order so scrapes diff
	// cleanly.
	if strings.Index(out, `model="gnm_undirected"`) > strings.Index(out, `model="rgg2d"`) {
		t.Errorf("labeled series not sorted by label value\n%s", out)
	}
	if got := m.JobsByModel.Value("rgg2d"); got != 2 {
		t.Errorf("JobsByModel[rgg2d] = %d, want 2", got)
	}
	if got := m.JobsByModel.Value("missing"); got != 0 {
		t.Errorf("JobsByModel[missing] = %d, want 0", got)
	}
}

// TestMetricsExpositionLint: every sample family has exactly one HELP
// and one TYPE line, every sample belongs to a declared family, and no
// family is declared twice — the same invariants the CI smoke enforces
// against a live /metrics endpoint.
func TestMetricsExpositionLint(t *testing.T) {
	m := NewMetrics()
	m.JobsByModel.Inc("ba")
	m.QueueWait.Observe(1)
	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	help := map[string]int{}
	typ := map[string]int{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "# HELP "):
			help[f[2]]++
		case strings.HasPrefix(line, "# TYPE "):
			typ[f[2]]++
		default:
			name := f[0]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if s, ok := strings.CutSuffix(name, suffix); ok && typ[s] > 0 {
					base = s
					break
				}
			}
			if typ[base] == 0 {
				t.Errorf("sample %q has no TYPE declaration", f[0])
			}
			if help[base] == 0 {
				t.Errorf("sample %q has no HELP declaration", f[0])
			}
		}
	}
	for name, n := range typ {
		if n != 1 {
			t.Errorf("family %s declared %d times", name, n)
		}
	}
	if len(typ) == 0 {
		t.Fatal("no TYPE lines in exposition")
	}
}

// TestLabeledCounterConcurrent: concurrent Inc on colliding and fresh
// labels is safe (race detector) and loses no increments.
func TestLabeledCounterConcurrent(t *testing.T) {
	var c LabeledCounter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("shared")
				if j%100 == 0 {
					c.Inc("only-" + string(rune('a'+i)))
				}
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value("shared"); got != 8000 {
		t.Errorf("shared = %d, want 8000", got)
	}
	if got := c.Value("only-a"); got != 10 {
		t.Errorf("only-a = %d, want 10", got)
	}
}

// TestMetricsConcurrent: the hot-path types are safe under concurrent
// writers (the race detector is the assertion).
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.EdgesGenerated.Add(2)
				m.QueueDepth.Add(1)
				m.QueueDepth.Add(-1)
				m.Checkpoint.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := m.EdgesGenerated.Value(); got != 16000 {
		t.Errorf("counter %d, want 16000", got)
	}
	if got := m.Checkpoint.Count(); got != 8000 {
		t.Errorf("histogram count %d, want 8000", got)
	}
	if got := m.QueueDepth.Value(); got != 0 {
		t.Errorf("gauge %d, want 0", got)
	}
}
