package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// traceDoc mirrors the Chrome trace-event JSON shape the trace endpoint
// serves.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
		Ph   string `json:"ph"`
		TS   float64
		Dur  float64
	} `json:"traceEvents"`
}

// TestServeTraceEndpoint: an executed job records spans per worker and
// GET /jobs/{id}/trace serves them merged as valid Chrome trace JSON
// with worker, PE, and chunk events.
func TestServeTraceEndpoint(t *testing.T) {
	spec := testSpec() // 2 PEs x 3 chunks, 1 job worker
	srv, err := New(Config{Dir: t.TempDir(), Executors: 1, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, code := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitState(t, ts, st.ID, StateComplete)

	code, body := get(t, ts.URL+"/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace returned %d: %s", code, body)
	}
	var doc traceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace endpoint served invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			counts[e.Name]++
		}
	}
	norm := spec.Normalized()
	if counts["worker"] != int(norm.Workers) {
		t.Errorf("worker spans %d, want %d", counts["worker"], norm.Workers)
	}
	if counts["pe"] != int(norm.PEs) {
		t.Errorf("pe spans %d, want %d", counts["pe"], norm.PEs)
	}
	total := int(norm.PEs * norm.ChunksPerPE)
	if counts["chunk-generate"] != total || counts["chunk-commit"] != total {
		t.Errorf("chunk spans generate=%d commit=%d, want %d each",
			counts["chunk-generate"], counts["chunk-commit"], total)
	}

	// Commit latency flowed into the dedicated histogram.
	if got := srv.Metrics().Commit.Count(); got != uint64(total) {
		t.Errorf("commit histogram count %d, want %d", got, total)
	}

	// Unknown job: 404.
	if code, _ := get(t, ts.URL+"/jobs/nope/trace"); code != http.StatusNotFound {
		t.Errorf("trace of unknown job returned %d, want 404", code)
	}
}

// TestServeTraceDisabled: with DisableTrace no spans are recorded and
// the endpoint reports 404 rather than an empty document.
func TestServeTraceDisabled(t *testing.T) {
	spec := testSpec()
	srv, err := New(Config{Dir: t.TempDir(), Executors: 1, QueueCap: 4, DisableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, code := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitState(t, ts, st.ID, StateComplete)
	if code, body := get(t, ts.URL+"/jobs/"+st.ID+"/trace"); code != http.StatusNotFound {
		t.Errorf("trace with tracing disabled returned %d (%s), want 404", code, body)
	}
}

// TestServePprofGate: /debug/pprof/ is mounted only when Config.Pprof
// is set.
func TestServePprofGate(t *testing.T) {
	for _, on := range []bool{false, true} {
		srv, err := New(Config{Dir: t.TempDir(), Executors: 1, QueueCap: 1, Pprof: on})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		code, body := get(t, ts.URL+"/debug/pprof/")
		want := http.StatusNotFound
		if on {
			want = http.StatusOK
		}
		if code != want {
			t.Errorf("pprof=%v: /debug/pprof/ returned %d, want %d", on, code, want)
		}
		if on && !strings.Contains(string(body), "goroutine") {
			t.Errorf("pprof index does not list profiles: %s", body)
		}
		ts.Close()
		srv.Close()
	}
}
