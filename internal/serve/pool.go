package serve

import (
	"context"
	"sync"
)

// pool is the bounded execution layer: a fixed number of executor
// goroutines draining a fixed-capacity task queue. The queue bound is
// the server's backpressure — trySubmit fails immediately when it is
// full, which the HTTP layer turns into a 429 — so a burst of
// submissions degrades into fast rejections instead of unbounded memory
// growth and unbounded promised work.
type pool struct {
	queue chan func(ctx context.Context)
	depth *Gauge // mirrors len(queue) for /metrics
	wg    sync.WaitGroup
}

// newPool starts executors goroutines draining a queue of capacity
// queueCap. ctx cancellation stops the executors after their current
// task; tasks themselves watch the same ctx to abort at their next
// checkpoint.
func newPool(ctx context.Context, executors, queueCap int, depth *Gauge) *pool {
	p := &pool{queue: make(chan func(context.Context), queueCap), depth: depth}
	for i := 0; i < executors; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case task := <-p.queue:
					p.depth.Add(-1)
					task(ctx)
				}
			}
		}()
	}
	return p
}

// trySubmit enqueues a task, reporting false when the queue is full.
func (p *pool) trySubmit(task func(ctx context.Context)) bool {
	select {
	case p.queue <- task:
		p.depth.Add(1)
		return true
	default:
		return false
	}
}

// wait blocks until every executor has exited (after ctx cancellation).
func (p *pool) wait() { p.wg.Wait() }
