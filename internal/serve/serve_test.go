package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/job"
)

func testSpec() job.Spec {
	return job.Spec{Model: "gnm_undirected", N: 600, M: 4000, Seed: 42,
		PEs: 2, ChunksPerPE: 3, Workers: 1, Format: "text"}
}

// directMerged runs the spec directly through the job runner and returns
// the merged bytes — the ground truth the service must reproduce.
func directMerged(t *testing.T, spec job.Spec) []byte {
	t.Helper()
	dir := t.TempDir()
	if err := job.Init(dir, spec); err != nil {
		t.Fatal(err)
	}
	for w := uint64(0); w < spec.Normalized().Workers; w++ {
		if err := job.Run(dir, w, job.RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "merged")
	if err := job.MergeToFile(dir, path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func submit(t *testing.T, ts *httptest.Server, spec job.Spec) (JobStatus, int) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// waitState polls a job until it reaches want (failing on failed states
// that are not the wanted one) or the deadline passes.
func waitState(t *testing.T, ts *httptest.Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return JobStatus{}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServeEndToEnd: submit → poll → merged result identical to a direct
// job run; an identical re-submission is a content-addressed cache hit
// that runs no generator; shards stream with range support.
func TestServeEndToEnd(t *testing.T) {
	spec := testSpec()
	want := directMerged(t, spec)

	srv, err := New(Config{Dir: t.TempDir(), Executors: 1, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, code := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", code)
	}
	if st.ID != spec.Hash() {
		t.Fatalf("job ID %s is not the spec hash %s", st.ID, spec.Hash())
	}
	fin := waitState(t, ts, st.ID, StateComplete)
	if fin.ChunksDone != fin.ChunksTotal || fin.ChunksTotal != spec.TotalChunks() {
		t.Errorf("progress %d/%d, want %d/%d", fin.ChunksDone, fin.ChunksTotal,
			spec.TotalChunks(), spec.TotalChunks())
	}
	if fin.Edges != 2*spec.M { // undirected: both orientations emitted
		t.Errorf("edge count %d, want %d", fin.Edges, 2*spec.M)
	}

	code, got := get(t, ts.URL+"/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result returned %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served result differs from direct run (%d vs %d bytes)", len(got), len(want))
	}

	// Content-addressed cache: same spec again is a hit, with zero new
	// generator work (chunk checkpoint counter frozen).
	chunksBefore := srv.Metrics().ChunksCommitted.Value()
	st2, code := submit(t, ts, spec)
	if code != http.StatusOK || !st2.Cached || st2.State != StateComplete {
		t.Fatalf("re-submission: code %d, cached %v, state %s — want a cache hit", code, st2.Cached, st2.State)
	}
	if hits := srv.Metrics().CacheHits.Value(); hits != 1 {
		t.Errorf("cache hits %d, want 1", hits)
	}
	if after := srv.Metrics().ChunksCommitted.Value(); after != chunksBefore {
		t.Errorf("cache hit ran the generator: %d checkpoints before, %d after", chunksBefore, after)
	}

	// Shard streaming with a range request.
	code, whole := get(t, ts.URL+"/jobs/"+st.ID+"/shards/0")
	if code != http.StatusOK || len(whole) == 0 {
		t.Fatalf("shard fetch: code %d, %d bytes", code, len(whole))
	}
	req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+st.ID+"/shards/0", nil)
	req.Header.Set("Range", "bytes=0-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range request returned %d, want 206", resp.StatusCode)
	}
	if !bytes.Equal(part, whole[:10]) {
		t.Error("range body is not the shard prefix")
	}

	// The exposition endpoint reflects the counters.
	code, metrics := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics returned %d", code)
	}
	for _, want := range []string{
		"kagen_cache_hits_total 1",
		"kagen_jobs_submitted_total 1",
		"kagen_jobs_completed_total 1",
		fmt.Sprintf("kagen_edges_generated_total %d", 2*spec.M),
		"kagen_checkpoint_seconds_count",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestServeShutdownResume is the crash-recovery contract in-process: a
// server stopped mid-job leaves durable checkpoints; a new server over
// the same directory auto-resumes and the final result is byte-identical
// to an uninterrupted run. (CI's serve-smoke does the same with kill -9.)
func TestServeShutdownResume(t *testing.T) {
	spec := testSpec()
	want := directMerged(t, spec)
	dir := t.TempDir()

	interrupted := make(chan struct{})
	var once sync.Once
	srv1, err := New(Config{Dir: dir, Executors: 1, QueueCap: 4,
		OnCheckpoint: func(id string, pe, chunks uint64) error {
			once.Do(func() { close(interrupted) })
			// Slow the checkpoints down so the shutdown lands mid-job,
			// after at least one durable checkpoint.
			time.Sleep(5 * time.Millisecond)
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	st, code := submit(t, ts1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	<-interrupted
	srv1.Close() // running job aborts at its next durable checkpoint
	ts1.Close()

	stDisk, err := job.Inspect(filepath.Join(dir, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if stDisk.Complete() {
		t.Skip("job finished before shutdown landed; nothing to resume")
	}

	srv2, err := New(Config{Dir: dir, Executors: 1, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if resumed := srv2.Metrics().JobsResumed.Value(); resumed != 1 {
		t.Fatalf("restart resumed %d jobs, want 1", resumed)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	waitState(t, ts2, st.ID, StateComplete)

	code, got := get(t, ts2.URL+"/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result after resume returned %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed result differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestServeBackpressure: with the lone executor wedged and the queue
// full, a further submission is rejected with 429 and counted.
func TestServeBackpressure(t *testing.T) {
	release := make(chan struct{})
	var hold, unhold sync.Once
	unblock := func() { unhold.Do(func() { close(release) }) }
	srv, err := New(Config{Dir: t.TempDir(), Executors: 1, QueueCap: 1,
		OnCheckpoint: func(id string, pe, chunks uint64) error {
			hold.Do(func() { <-release })
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer unblock()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := make([]job.Spec, 3)
	for i := range specs {
		specs[i] = testSpec()
		specs[i].Seed = uint64(100 + i) // three distinct jobs
	}
	if _, code := submit(t, ts, specs[0]); code != http.StatusAccepted {
		t.Fatalf("first submit returned %d", code)
	}
	// Wait until the executor picked up job 0 (it wedges in the hook), so
	// job 1 occupies the queue slot.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().JobsInflight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, code := submit(t, ts, specs[1]); code != http.StatusAccepted {
		t.Fatalf("second submit returned %d", code)
	}
	st, code := submit(t, ts, specs[2])
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit returned %d (state %+v), want 429", code, st)
	}
	if rej := srv.Metrics().QueueRejected.Value(); rej != 1 {
		t.Errorf("queue rejections %d, want 1", rej)
	}
	// The rejected spec left nothing behind: once capacity frees up it
	// can be submitted again.
	unblock()
	waitState(t, ts, specs[0].Hash(), StateComplete)
	waitState(t, ts, specs[1].Hash(), StateComplete)
	if _, code := submit(t, ts, specs[2]); code != http.StatusAccepted {
		t.Fatalf("re-submit after rejection returned %d", code)
	}
	waitState(t, ts, specs[2].Hash(), StateComplete)
}

// TestServeCancel: cancelling a running job aborts it at the next
// checkpoint, removes its partial directory from the cache, and a
// re-submission starts a fresh run.
func TestServeCancel(t *testing.T) {
	slow := make(chan struct{})
	srv, err := New(Config{Dir: t.TempDir(), Executors: 1, QueueCap: 4,
		OnCheckpoint: func(id string, pe, chunks uint64) error {
			select {
			case <-slow:
			case <-time.After(20 * time.Millisecond):
			}
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := testSpec()
	st, code := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitState(t, ts, st.ID, StateRunning)
	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitState(t, ts, st.ID, StateCancelled)
	if fin.State != StateCancelled {
		t.Fatalf("state %s after cancel", fin.State)
	}
	if cancelled := srv.Metrics().JobsCancelled.Value(); cancelled != 1 {
		t.Errorf("cancelled count %d, want 1", cancelled)
	}
	if _, err := os.Stat(filepath.Join(srv.cfg.Dir, st.ID)); !os.IsNotExist(err) {
		t.Error("cancelled job directory not removed")
	}
	close(slow) // let the re-run proceed at full speed
	if _, code := submit(t, ts, spec); code != http.StatusAccepted {
		t.Fatalf("re-submit after cancel returned %d", code)
	}
	waitState(t, ts, st.ID, StateComplete)
}

// TestServeRejectsBadSpecs: malformed JSON, unknown fields and invalid
// specs are 400s, unknown jobs 404, results of unfinished jobs 409.
func TestServeRejectsBadSpecs(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"malformed":     `{not json`,
		"unknown field": `{"model":"gnm_undirected","n":10,"bogus":1}`,
		"bad model":     `{"model":"nope","n":10}`,
		"too many workers": `{"model":"gnm_undirected","n":10,"m":5,` +
			`"pes":2,"workers":8}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: returned %d, want 400", name, resp.StatusCode)
		}
	}
	if code, _ := get(t, ts.URL+"/jobs/deadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown job returned %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/jobs/deadbeef/result"); code != http.StatusNotFound {
		t.Errorf("unknown result returned %d, want 404", code)
	}
}

// TestServeVerifyAndRepair: the integrity surface end to end — a chunk
// corrupted (by the armed failpoint) during generation is caught by
// POST /jobs/{id}/verify, repaired by ?repair=true, the job's integrity
// status tracks the passes, and the repaired result is byte-identical to
// a clean run.
func TestServeVerifyAndRepair(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	spec := testSpec()
	want := directMerged(t, spec)

	srv, err := New(Config{Dir: t.TempDir(), Executors: 1, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	failpoint.Arm("job/chunk-bitflip", 2)
	st, code := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitState(t, ts, st.ID, StateComplete)
	if failpoint.Armed() {
		t.Fatal("bitflip failpoint never fired")
	}

	post := func(url string) (int, VerifyResponse) {
		t.Helper()
		resp, err := http.Post(url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var vr VerifyResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, vr
	}

	code, vr := post(ts.URL + "/jobs/" + st.ID + "/verify?all=true")
	if code != http.StatusOK {
		t.Fatalf("verify returned %d", code)
	}
	if len(vr.Faults) == 0 || vr.Integrity.State != "corrupt" {
		t.Fatalf("verify of corrupted job: %+v", vr)
	}
	// The corrupt status surfaces in GET /jobs/{id}.
	stNow := waitState(t, ts, st.ID, StateComplete)
	if stNow.Integrity == nil || stNow.Integrity.State != "corrupt" {
		t.Fatalf("status integrity %+v, want corrupt", stNow.Integrity)
	}

	code, vr = post(ts.URL + "/jobs/" + st.ID + "/verify?all=true&repair=true")
	if code != http.StatusOK {
		t.Fatalf("repair returned %d", code)
	}
	if vr.Integrity.State != "repaired" || vr.Repair == nil || vr.Repair.ChunksSpliced == 0 {
		t.Fatalf("repair outcome: %+v (repair %+v)", vr.Integrity, vr.Repair)
	}

	code, got := get(t, ts.URL+"/jobs/"+st.ID+"/result")
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("repaired result: code %d, matches clean run: %v", code, bytes.Equal(got, want))
	}

	_, metrics := get(t, ts.URL+"/metrics")
	for _, wantMetric := range []string{
		"kagen_verify_chunks_checked_total",
		"kagen_verify_failures_total",
		"kagen_verify_repaired_total",
	} {
		if !strings.Contains(string(metrics), wantMetric) {
			t.Errorf("metrics exposition missing %q", wantMetric)
		}
	}
	if strings.Contains(string(metrics), "kagen_verify_failures_total 0\n") {
		t.Error("verify failures counter never moved")
	}
}

// TestServeETags: the spec hash is a strong ETag for the merged result
// and (suffixed with the PE) for each shard; If-None-Match revalidation
// returns 304 with no body.
func TestServeETags(t *testing.T) {
	spec := testSpec()
	srv, err := New(Config{Dir: t.TempDir(), Executors: 1, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	st, _ := submit(t, ts, spec)
	waitState(t, ts, st.ID, StateComplete)

	check := func(url, wantTag string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("ETag"); got != wantTag {
			t.Fatalf("%s: ETag %q, want %q", url, got, wantTag)
		}
		req, _ := http.NewRequest("GET", url, nil)
		req.Header.Set("If-None-Match", wantTag)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("%s with If-None-Match: %d, want 304", url, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Errorf("%s: 304 carried a %d-byte body", url, len(body))
		}
	}
	check(ts.URL+"/jobs/"+st.ID+"/result", `"`+st.ID+`"`)
	check(ts.URL+"/jobs/"+st.ID+"/shards/1", `"`+st.ID+`-pe1"`)
}

// TestServeFailedCompaction: a terminally failed job is moved to
// failed/, is not re-resumed by a restart's startup scan, stays visible
// (with its error) until DELETEd, and an identical re-submission starts
// a fresh run.
func TestServeFailedCompaction(t *testing.T) {
	dir := t.TempDir()
	var failing atomic.Bool
	failing.Store(true)
	srv1, err := New(Config{Dir: dir, Executors: 1, QueueCap: 4,
		OnCheckpoint: func(id string, pe, chunks uint64) error {
			if failing.Load() {
				return fmt.Errorf("injected terminal failure")
			}
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	spec := testSpec()
	st, code := submit(t, ts1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	fin := waitState(t, ts1, st.ID, StateFailed)
	if !strings.Contains(fin.Error, "injected terminal failure") {
		t.Errorf("failed job error %q does not carry the cause", fin.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, "failed", st.ID, "job.json")); err != nil {
		t.Fatalf("failed job not compacted into failed/: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID)); !os.IsNotExist(err) {
		t.Error("failed job directory still in the scan path")
	}
	srv1.Close()
	ts1.Close()

	// Restart: the failed job is registered, not resumed.
	srv2, err := New(Config{Dir: dir, Executors: 1, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if resumed := srv2.Metrics().JobsResumed.Value(); resumed != 0 {
		t.Fatalf("restart resumed %d jobs; failed jobs must stay compacted", resumed)
	}
	code, body := get(t, ts2.URL+"/jobs/"+st.ID)
	if code != http.StatusOK || !strings.Contains(string(body), StateFailed) {
		t.Fatalf("failed job not listed after restart: %d %s", code, body)
	}

	// DELETE works on the compacted job.
	req, _ := http.NewRequest("DELETE", ts2.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := os.Stat(filepath.Join(dir, "failed", st.ID)); !os.IsNotExist(err) {
		t.Error("DELETE left the compacted directory behind")
	}
	if code, _ := get(t, ts2.URL+"/jobs/"+st.ID); code != http.StatusNotFound {
		t.Errorf("deleted job still listed: %d", code)
	}

	// A healthy re-submission of the same spec runs fresh.
	failing.Store(false)
	if _, code := submit(t, ts2, spec); code != http.StatusAccepted {
		t.Fatalf("re-submit after failure returned %d", code)
	}
	waitState(t, ts2, st.ID, StateComplete)
}
