// Package serve is the multi-tenant generation service over the job
// runner: an HTTP API where submitting a job.Spec returns a job ID, a
// bounded worker pool executes jobs through internal/job's
// chunk-granular checkpoint machinery, and results stream back as one
// merged edge list or as per-PE shards with HTTP range support.
//
// The paper's communication-free property makes the service shape
// almost free. The spec's SHA-256 hash is a complete instance identity —
// (model, parameters, seed, partition) determine every output byte — so
// the hash is the job ID, completed job directories form a
// content-addressed result cache (an identical re-submission returns the
// existing job without touching a generator), and crash recovery is a
// restart: the startup scan finds every incomplete job directory and
// re-enqueues it, and each resumed worker re-enters its stream at the
// last durable checkpoint, producing bytes identical to an uninterrupted
// run.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	kagen "repro"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Job lifecycle states. Queued and running live only in memory; the
// durable truth is the job directory (spec + manifests), which is why a
// crashed server re-derives queued/running as "resume" and complete as
// "cache entry" from the directory alone.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateComplete    = "complete"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted" // shutdown mid-run; resumed on restart
)

var (
	errCancelled = errors.New("serve: job cancelled")
	errShutdown  = errors.New("serve: server shutting down")
)

// Config tunes a Server; only Dir is required.
type Config struct {
	// Dir is the data directory: one job directory per spec hash.
	Dir string
	// Executors bounds the number of concurrently running jobs (default 2).
	Executors int
	// QueueCap bounds the submission queue; a full queue rejects new
	// submissions with 429 (default 16).
	QueueCap int
	// Goroutines bounds each job's chunk pipeline (0 = GOMAXPROCS).
	Goroutines int
	// OnCheckpoint, if set, runs after every durable checkpoint of every
	// job; returning an error aborts that job's run exactly as a crash at
	// that checkpoint would. Test hook.
	OnCheckpoint func(jobID string, pe, chunks uint64) error
	// Pprof mounts net/http/pprof under /debug/pprof/ on the handler.
	// Off by default: profiling endpoints on a public listener are a
	// conscious choice, not a side effect.
	Pprof bool
	// DisableTrace turns off per-job span collection. Traces are on by
	// default (bounded per worker, a few MB at worst) because a stall
	// report without a trace is just a wall clock.
	DisableTrace bool
}

// traceCapPerWorker bounds one worker run's span arena (~96 B/slot).
const traceCapPerWorker = 1 << 14

// jobState is the in-memory view of one job; all fields are guarded by
// Server.mu.
type jobState struct {
	id          string
	dir         string
	spec        job.Spec
	state       string
	errMsg      string
	cancel      context.CancelFunc // set while running
	chunksDone  uint64
	chunksTotal uint64
	edges       uint64
	queuedAt    time.Time // when the job entered the queue (zero = resumed/unknown)
	// integrity is the last verify pass's outcome (nil = never verified).
	// Snapshots are immutable: handlers replace the pointer, never mutate
	// through it.
	integrity *IntegrityStatus
}

// IntegrityStatus is the outcome of the last POST /jobs/{id}/verify.
type IntegrityStatus struct {
	// State is "verified" (clean pass), "corrupt" (faults found and not
	// — or not fully — repaired), or "repaired" (faults found, repaired,
	// and a follow-up pass came back clean).
	State         string    `json:"state"`
	ChunksChecked int       `json:"chunks_checked"`
	Faults        int       `json:"faults"`
	CheckedAt     time.Time `json:"checked_at"`
}

// Server is the generation service. Create with New, mount Handler on an
// http.Server, stop with Close.
type Server struct {
	cfg     Config
	metrics *Metrics
	log     *slog.Logger
	mux     *http.ServeMux
	pool    *pool
	cancel  context.CancelFunc
	ctx     context.Context

	mu   sync.Mutex // guards jobs and every jobState field
	jobs map[string]*jobState
}

// New opens (or creates) the data directory, registers every existing
// job — completed directories as cache entries, incomplete ones
// re-enqueued for resume — and starts the executor pool.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("serve: Config.Dir is required")
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		metrics: NewMetrics(),
		log:     obs.Logger("serve"),
		cancel:  cancel,
		ctx:     ctx,
		jobs:    make(map[string]*jobState),
	}
	// Feed S3 part-upload latencies into the histogram. Process-global
	// like the upload counters themselves; Close uninstalls it.
	storage.SetPartUploadObserver(func(seconds float64) { s.metrics.PartUpload.Observe(seconds) })

	// Terminally failed jobs live under failed/ so the startup scan never
	// re-enqueues them: without the compaction, a job that fails its
	// resume on every restart would be retried forever. They stay
	// registered (listable, DELETEable) but inert.
	for _, dir := range mustList(filepath.Join(cfg.Dir, "failed")) {
		id := filepath.Base(dir)
		msg := "failed (moved to failed/ by a previous run)"
		if b, err := os.ReadFile(filepath.Join(dir, "error.txt")); err == nil && len(b) > 0 {
			msg = string(b)
		}
		js := &jobState{id: id, dir: dir, state: StateFailed, errMsg: msg}
		if spec, err := job.Load(dir); err == nil {
			js.spec, js.chunksTotal = spec, spec.TotalChunks()
		}
		s.jobs[id] = js
	}

	dirs, err := job.List(cfg.Dir)
	if err != nil {
		cancel()
		return nil, err
	}
	var resume []*jobState
	for _, dir := range dirs {
		st, err := job.Inspect(dir)
		if err != nil {
			// A corrupt directory must not take the server down — surface
			// it as a failed job and compact it into failed/ so the next
			// restart does not rediscover (and re-report) it.
			js := &jobState{
				id: filepath.Base(dir), dir: dir, state: StateFailed, errMsg: err.Error(),
			}
			s.moveToFailed(js)
			s.jobs[js.id] = js
			continue
		}
		js := &jobState{
			id: st.SpecHash, dir: dir, spec: st.Spec,
			chunksTotal: st.Spec.TotalChunks(),
		}
		for _, w := range st.Workers {
			for _, pe := range w.PEs {
				js.chunksDone += pe.ChunksDone
				js.edges += pe.Edges
			}
		}
		if st.Complete() {
			js.state = StateComplete
		} else {
			js.state = StateQueued
			resume = append(resume, js)
		}
		s.jobs[js.id] = js
	}
	sort.Slice(resume, func(i, j int) bool { return resume[i].id < resume[j].id })

	// The resume backlog must never be rejected by backpressure — size the
	// queue to hold all of it on top of the configured submission bound.
	s.pool = newPool(ctx, cfg.Executors, cfg.QueueCap+len(resume), &s.metrics.QueueDepth)
	for _, js := range resume {
		s.metrics.JobsResumed.Inc()
		js := js
		js.queuedAt = time.Now()
		s.log.Info("resuming incomplete job", "job", js.id, "model", js.spec.Model,
			"chunks_done", js.chunksDone, "chunks_total", js.chunksTotal)
		s.pool.trySubmit(func(ctx context.Context) { s.execute(ctx, js) })
	}
	s.log.Info("startup scan done", "dir", cfg.Dir,
		"jobs", len(s.jobs), "resumed", len(resume), "executors", cfg.Executors)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /jobs/{id}/verify", s.handleVerify)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/shards/{pe}", s.handleShard)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// mustList is job.List tolerating a missing root (no failed/ yet).
func mustList(root string) []string {
	dirs, err := job.List(root)
	if err != nil {
		return nil
	}
	return dirs
}

// moveToFailed compacts a terminally failed job into failed/<id>: the
// directory is moved out of the startup scan's path (so restarts stop
// retrying it), the failure message is persisted beside it, and js.dir
// is repointed so status and DELETE keep working.
func (s *Server) moveToFailed(js *jobState) {
	dest := filepath.Join(s.cfg.Dir, "failed", js.id)
	if js.dir == dest {
		return
	}
	if err := os.MkdirAll(filepath.Join(s.cfg.Dir, "failed"), 0o755); err != nil {
		return // leave it in place; the next restart reports it again
	}
	os.RemoveAll(dest)
	if err := os.Rename(js.dir, dest); err != nil {
		return
	}
	js.dir = dest
	os.WriteFile(filepath.Join(dest, "error.txt"), []byte(js.errMsg), 0o644)
}

// statusWriter records the response code for the request log. Unwrap
// keeps http.ResponseController (and everything built on it) working
// through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Handler returns the HTTP handler to mount: the API mux wrapped in
// request-lifecycle logging (one line per request at info level — the
// deferred log also fires when a handler panics to abort a stream).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.log.Enabled(r.Context(), slog.LevelInfo) {
			s.mux.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			s.log.Info("request", "method", r.Method, "path", r.URL.Path,
				"status", sw.code, "remote", r.RemoteAddr,
				"elapsed", time.Since(start).Seconds())
		}()
		s.mux.ServeHTTP(sw, r)
	})
}

// Metrics returns the server's metric set (shared, live).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops the executors: running jobs abort at their next durable
// checkpoint (state "interrupted", resumed by the next startup scan) and
// queued jobs stay queued on disk. Close returns once every executor has
// exited; it does not touch job directories.
func (s *Server) Close() {
	s.log.Info("shutting down", "dir", s.cfg.Dir)
	s.cancel()
	s.pool.wait()
	storage.SetPartUploadObserver(nil)
}

// JobStatus is the JSON shape of one job in API responses.
type JobStatus struct {
	ID          string           `json:"id"`
	State       string           `json:"state"`
	Model       string           `json:"model"`
	Format      string           `json:"format"`
	Seed        uint64           `json:"seed"`
	PEs         uint64           `json:"pes"`
	ChunksPerPE uint64           `json:"chunks_per_pe"`
	Workers     uint64           `json:"workers"`
	ChunksDone  uint64           `json:"chunks_done"`
	ChunksTotal uint64           `json:"chunks_total"`
	Edges       uint64           `json:"edges"`
	Cached      bool             `json:"cached,omitempty"`
	Error       string           `json:"error,omitempty"`
	Integrity   *IntegrityStatus `json:"integrity,omitempty"`
}

// statusLocked snapshots a jobState; the caller holds s.mu.
func (js *jobState) statusLocked() JobStatus {
	return JobStatus{
		ID: js.id, State: js.state, Model: js.spec.Model,
		Format: js.spec.Format, Seed: js.spec.Seed, PEs: js.spec.PEs,
		ChunksPerPE: js.spec.ChunksPerPE, Workers: js.spec.Workers,
		ChunksDone: js.chunksDone, ChunksTotal: js.chunksTotal,
		Edges: js.edges, Error: js.errMsg, Integrity: js.integrity,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a job.Spec, returns the job it identifies:
// 202 a fresh job was enqueued, 200 the spec matched an existing job
// (complete = content-addressed cache hit, in-flight = dedupe),
// 429 the submission queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec job.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	id := spec.Hash()

	s.mu.Lock()
	if js, ok := s.jobs[id]; ok {
		switch js.state {
		case StateComplete:
			s.metrics.CacheHits.Inc()
			st := js.statusLocked()
			st.Cached = true
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		case StateQueued, StateRunning, StateInterrupted:
			s.metrics.JobsDeduped.Inc()
			st := js.statusLocked()
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		default:
			// failed or cancelled: drop the stale directory (a compacted
			// failure lives under failed/) and enqueue afresh under the
			// same identity.
			stale := js.dir
			delete(s.jobs, id)
			os.RemoveAll(stale)
		}
	}
	js := &jobState{
		id: id, dir: filepath.Join(s.cfg.Dir, id), spec: spec,
		state: StateQueued, chunksTotal: spec.TotalChunks(),
		queuedAt: time.Now(),
	}
	s.jobs[id] = js
	s.mu.Unlock()

	// Init is durable (fsynced file + dir): once we answer 202, a crashed
	// server still finds — and finishes — the job on restart.
	if _, err := os.Stat(job.SpecPath(js.dir)); errors.Is(err, os.ErrNotExist) {
		if err := job.Init(js.dir, spec); err != nil {
			s.dropJob(js)
			writeError(w, http.StatusInternalServerError, "init: %v", err)
			return
		}
	} else if err != nil {
		s.dropJob(js)
		writeError(w, http.StatusInternalServerError, "stat: %v", err)
		return
	}
	if !s.pool.trySubmit(func(ctx context.Context) { s.execute(ctx, js) }) {
		s.metrics.QueueRejected.Inc()
		s.dropJob(js)
		os.RemoveAll(js.dir)
		s.log.Warn("submission rejected: queue full", "job", id, "model", spec.Model, "queue_cap", s.cfg.QueueCap)
		writeError(w, http.StatusTooManyRequests, "submission queue full (%d queued)", s.cfg.QueueCap)
		return
	}
	s.metrics.JobsSubmitted.Inc()
	s.metrics.JobsByModel.Inc(spec.Model)
	s.log.Info("job accepted", "job", id, "model", spec.Model,
		"pes", spec.PEs, "workers", spec.Workers, "chunks", js.chunksTotal)

	s.mu.Lock()
	st := js.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) dropJob(js *jobState) {
	s.mu.Lock()
	if cur, ok := s.jobs[js.id]; ok && cur == js {
		delete(s.jobs, js.id)
	}
	s.mu.Unlock()
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, js := range s.jobs {
		out = append(out, js.statusLocked())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// lookup returns the job for the request's {id}, or writes 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*jobState, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	js, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", id)
		return nil, false
	}
	return js, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	st := js.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleCancel cancels a queued or running job (its partial directory is
// removed — a cancelled partial result must not linger in the
// content-addressed cache) or evicts a finished one.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	switch js.state {
	case StateQueued:
		js.state = StateCancelled
		js.errMsg = "cancelled before start"
		s.metrics.JobsCancelled.Inc()
		os.RemoveAll(js.dir)
	case StateRunning:
		// The executor observes the cancellation at its next checkpoint,
		// marks the job cancelled and removes the directory.
		js.cancel()
	case StateComplete, StateFailed, StateCancelled, StateInterrupted:
		delete(s.jobs, js.id)
		os.RemoveAll(js.dir)
	}
	st := js.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// VerifyResponse is the JSON shape of POST /jobs/{id}/verify.
type VerifyResponse struct {
	Integrity *IntegrityStatus  `json:"integrity"`
	Faults    []job.Fault       `json:"faults,omitempty"`
	Repair    *job.RepairResult `json:"repair,omitempty"`
}

// handleVerify runs an integrity pass over a completed job: chunks are
// re-derived from the spec and checked against manifests, Merkle roots
// and disk bytes. Query parameters: all=true for an exhaustive pass,
// sample=N per-PE otherwise, repair=true to regenerate and splice
// whatever the pass finds (followed by a second pass to prove it clean).
// The outcome is recorded as the job's integrity status.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	state, dir := js.state, js.dir
	s.mu.Unlock()
	if state != StateComplete {
		writeError(w, http.StatusConflict, "job %s is %s, not complete", js.id, state)
		return
	}
	q := r.URL.Query()
	opts := job.VerifyOptions{All: q.Get("all") == "true" || q.Get("all") == "1"}
	if v := q.Get("sample"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad sample %q", v)
			return
		}
		opts.Sample = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
		opts.Seed = n
	}
	repair := q.Get("repair") == "true" || q.Get("repair") == "1"

	// Verify and repair run without s.mu: they only read the spec and
	// touch the job directory under the per-worker file locks.
	res, err := job.Verify(dir, opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "verify: %v", err)
		return
	}
	s.metrics.VerifyChunksChecked.Add(uint64(res.ChunksChecked))
	s.metrics.VerifyFailures.Add(uint64(len(res.Faults)))

	resp := VerifyResponse{Faults: res.Faults}
	integrity := &IntegrityStatus{
		State: "verified", ChunksChecked: res.ChunksChecked,
		Faults: len(res.Faults), CheckedAt: time.Now().UTC(),
	}
	if !res.OK() {
		integrity.State = "corrupt"
		if repair {
			rep, err := job.Repair(dir, res.Faults)
			if err != nil {
				writeError(w, http.StatusInternalServerError, "repair: %v", err)
				return
			}
			s.metrics.VerifyRepaired.Add(uint64(rep.ChunksSpliced + rep.PEsReset + rep.WorkersRebuilt))
			resp.Repair = rep
			after, err := job.Verify(dir, job.VerifyOptions{All: true})
			if err != nil {
				writeError(w, http.StatusInternalServerError, "re-verify: %v", err)
				return
			}
			s.metrics.VerifyChunksChecked.Add(uint64(after.ChunksChecked))
			s.metrics.VerifyFailures.Add(uint64(len(after.Faults)))
			if after.OK() && len(rep.Unrepaired) == 0 {
				integrity.State = "repaired"
			} else {
				resp.Faults = after.Faults
				integrity.Faults = len(after.Faults)
			}
		}
	}
	resp.Integrity = integrity
	s.mu.Lock()
	js.integrity = integrity
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// contentType maps a shard format to its HTTP media type.
func contentType(f kagen.Format) string {
	switch {
	case f.Compressed():
		return "application/gzip"
	case f.Binary():
		return "application/octet-stream"
	default:
		return "text/plain; charset=utf-8"
	}
}

// handleResult streams the job's shards merged into one edge list of the
// job's format — the single-stream consumer path. Shard-granular (and
// range-capable) access is under /shards/{pe}.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	state, dir, format := js.state, js.dir, js.spec.ShardFormat()
	s.mu.Unlock()
	if state != StateComplete {
		writeError(w, http.StatusConflict, "job %s is %s, not complete", js.id, state)
		return
	}
	// The spec hash determines every output byte, so it is a perfect
	// strong ETag: a client that has the bytes for this hash has *the*
	// bytes, forever.
	etag := `"` + js.id + `"`
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", contentType(format))
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", js.id[:12]+"."+format.Ext()))
	if err := job.Merge(dir, w); err != nil {
		// Headers are gone; all we can do is cut the stream short so the
		// client sees a truncated body instead of silently missing edges.
		panic(http.ErrAbortHandler)
	}
}

// handleShard serves one PE's shard through its storage backend.
// http.ServeContent gives range requests for free (the backend reader
// seeks, and on S3 a seek+read is a ranged GET), so consumers can stripe
// downloads or re-fetch a tail. A shard is served as soon as its PE is
// finalized, even while the rest of the job still runs — finalized
// shards are immutable.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	pe, err := strconv.ParseUint(r.PathValue("pe"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad PE index %q", r.PathValue("pe"))
		return
	}
	s.mu.Lock()
	state, dir, spec := js.state, js.dir, js.spec
	s.mu.Unlock()
	if pe >= spec.PEs {
		writeError(w, http.StatusNotFound, "job has %d PEs, no PE %d", spec.PEs, pe)
		return
	}
	if state != StateComplete {
		st, err := job.Inspect(dir)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "inspect: %v", err)
			return
		}
		done := false
		for _, p := range st.CompletedPEs() {
			if p == pe {
				done = true
				break
			}
		}
		if !done {
			writeError(w, http.StatusConflict, "shard %d is not finalized yet", pe)
			return
		}
	}
	format := spec.ShardFormat()
	path := job.ShardPath(dir, pe, format)
	store, err := storage.Resolve(path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "resolve shard: %v", err)
		return
	}
	f, err := store.Open(path)
	if err != nil {
		if errors.Is(err, storage.ErrNotExist) {
			writeError(w, http.StatusNotFound, "shard %d not found", pe)
			return
		}
		writeError(w, http.StatusInternalServerError, "open shard: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", contentType(format))
	// Spec hash + PE pins the shard's bytes; ServeContent handles
	// If-None-Match (304) and If-Range against it. The zero modtime
	// disables Last-Modified, which could not be trusted anyway — the
	// ETag is the whole identity.
	w.Header().Set("ETag", fmt.Sprintf(`"%s-pe%d"`, js.id, pe))
	http.ServeContent(w, r, storage.Base(path), time.Time{}, f)
}

// handleTrace serves the merged Chrome trace-event JSON of a job's
// recorded worker runs — loadable directly in Perfetto or
// chrome://tracing. 404 when the job ran with tracing disabled (or
// predates it).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	dir := js.dir
	s.mu.Unlock()
	// Buffer before writing: a merge error after the header is sent
	// could not change the status code anymore.
	var buf bytes.Buffer
	if err := job.WriteTraceJSON(dir, &buf); err != nil {
		if errors.Is(err, job.ErrNoTrace) {
			writeError(w, http.StatusNotFound, "job %s has no recorded trace", js.id)
		} else {
			writeError(w, http.StatusInternalServerError, "trace: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteText(w)
}

// execute runs one job to completion (or abort) on an executor.
func (s *Server) execute(srvCtx context.Context, js *jobState) {
	s.mu.Lock()
	if js.state != StateQueued {
		// Cancelled while queued; the directory is already gone.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(srvCtx)
	js.state = StateRunning
	js.cancel = cancel
	queuedAt := js.queuedAt
	s.mu.Unlock()
	defer cancel()

	if !queuedAt.IsZero() {
		s.metrics.QueueWait.Observe(time.Since(queuedAt).Seconds())
	}
	started := time.Now()
	s.metrics.JobsInflight.Add(1)
	err := s.runJob(ctx, js)
	s.metrics.JobsInflight.Add(-1)

	s.mu.Lock()
	defer s.mu.Unlock()
	js.cancel = nil
	switch {
	case err == nil:
		js.state = StateComplete
		s.metrics.JobsCompleted.Inc()
	case errors.Is(err, errCancelled):
		js.state = StateCancelled
		js.errMsg = "cancelled"
		s.metrics.JobsCancelled.Inc()
		// A cancelled partial must not be mistaken for a cache entry.
		os.RemoveAll(js.dir)
	case srvCtx.Err() != nil:
		// Shutdown, not failure: the directory stays, and the next
		// startup scan resumes from the last durable checkpoint.
		js.state = StateInterrupted
		js.errMsg = "interrupted by shutdown"
	default:
		js.state = StateFailed
		js.errMsg = err.Error()
		s.metrics.JobsFailed.Inc()
		// Compact immediately: the next startup scan must not re-enqueue
		// a job that just failed for a non-transient reason.
		s.moveToFailed(js)
	}
	if js.state == StateFailed {
		s.log.Error("job failed", "job", js.id, "err", js.errMsg,
			"elapsed", time.Since(started).Seconds())
	} else {
		s.log.Info("job finished", "job", js.id, "state", js.state,
			"edges", js.edges, "elapsed", time.Since(started).Seconds())
	}
}

// runJob drives every worker of the job through job.Run with a
// checkpoint hook that feeds the metrics, updates the in-memory progress
// snapshot, and turns context cancellation into a clean abort at the
// next durable checkpoint.
func (s *Server) runJob(ctx context.Context, js *jobState) error {
	spec := js.spec.Normalized()
	// The hook reports cumulative per-PE edges; seed the delta tracker
	// from the manifests so a resumed PE's pre-crash edges are neither
	// re-counted in the metric nor double-added to the snapshot.
	//
	// hmu guards everything the hook mutates: job.Run promotes
	// checkpoints from whichever pipeline goroutine owns the delivery
	// head, so consecutive hook calls can come from different goroutines
	// (and, on striped backends, back to back for different PEs).
	var hmu sync.Mutex
	peEdges := make(map[uint64]uint64)
	if st, err := job.Inspect(js.dir); err == nil {
		for _, w := range st.Workers {
			for _, pe := range w.PEs {
				peEdges[pe.PE] = pe.Edges
			}
		}
	}
	// Checkpoint latency is tracked per PE: chunks of different PEs
	// commit interleaved, and measuring across the interleave would
	// report intervals far shorter than any PE's real checkpoint cadence.
	// A PE's first checkpoint has no predecessor and records nothing.
	lastByPE := make(map[uint64]time.Time)
	hook := func(pe, chunks, edges uint64) error {
		now := time.Now()
		hmu.Lock()
		if last, ok := lastByPE[pe]; ok {
			s.metrics.Checkpoint.Observe(now.Sub(last).Seconds())
		}
		lastByPE[pe] = now
		d := edges - peEdges[pe]
		peEdges[pe] = edges
		hmu.Unlock()
		s.metrics.ChunksCommitted.Inc()
		s.metrics.EdgesGenerated.Add(d)
		s.mu.Lock()
		js.chunksDone++
		js.edges += d
		s.mu.Unlock()
		if s.cfg.OnCheckpoint != nil {
			if err := s.cfg.OnCheckpoint(js.id, pe, chunks); err != nil {
				return err
			}
		}
		if ctx.Err() != nil {
			if s.ctx.Err() != nil {
				return errShutdown
			}
			return errCancelled
		}
		return nil
	}
	for w := uint64(0); w < spec.Workers; w++ {
		var tr *obs.Trace
		if !s.cfg.DisableTrace {
			// One trace per worker run: the runner persists it to
			// <dir>/trace/workerNNNNN.json, and GET /jobs/{id}/trace merges
			// the per-worker files.
			tr = obs.NewTrace(traceCapPerWorker)
		}
		if err := job.Run(js.dir, w, job.RunOptions{
			Goroutines: s.cfg.Goroutines, OnCheckpoint: hook,
			Trace:           tr,
			OnCommitLatency: func(pe uint64, seconds float64) { s.metrics.Commit.Observe(seconds) },
		}); err != nil {
			return err
		}
	}
	return nil
}
