package srhg

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hyperbolic"
)

func bruteForce(p Params, pts []hyperbolic.Point) map[graph.Edge]bool {
	alpha := hyperbolic.AlphaFromGamma(p.Gamma)
	geo := hyperbolic.NewGeo(hyperbolic.DiskRadius(p.N, p.AvgDeg, alpha), alpha)
	set := make(map[graph.Edge]bool)
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			if geo.IsNeighbor(pts[i], pts[j]) {
				set[graph.Edge{U: pts[i].ID, V: pts[j].ID}] = true
			}
		}
	}
	return set
}

// TestMatchesBruteForce: the sweep-line with requests, causality inversion
// and the final phase finds exactly the edges of the all-pairs reference on
// the same point set — for a single PE (pure streaming + wrap-around) and
// for several PE counts (global phase + chunk hand-off).
func TestMatchesBruteForce(t *testing.T) {
	cases := []Params{
		{N: 300, AvgDeg: 8, Gamma: 3.0, Seed: 1, Chunks: 1},
		{N: 300, AvgDeg: 8, Gamma: 3.0, Seed: 1, Chunks: 4},
		{N: 400, AvgDeg: 10, Gamma: 2.4, Seed: 2, Chunks: 8},
		{N: 250, AvgDeg: 16, Gamma: 2.2, Seed: 3, Chunks: 2},
		{N: 500, AvgDeg: 6, Gamma: 4.5, Seed: 4, Chunks: 6},
		{N: 350, AvgDeg: 12, Gamma: 2.8, Seed: 5, Chunks: 16},
	}
	for _, p := range cases {
		pts := Points(p)
		if uint64(len(pts)) != p.N {
			t.Fatalf("%+v: %d points, want %d", p, len(pts), p.N)
		}
		want := bruteForce(p, pts)
		el, err := Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[graph.Edge]bool)
		for _, e := range el.Edges {
			if got[e] {
				t.Errorf("%+v: duplicate edge %v", p, e)
			}
			got[e] = true
		}
		missing, spurious := 0, 0
		for e := range want {
			if !got[e] {
				missing++
			}
		}
		for e := range got {
			if !want[e] {
				spurious++
			}
		}
		if missing > 0 || spurious > 0 {
			t.Errorf("%+v: %d missing, %d spurious of %d expected", p, missing, spurious, len(want))
		}
	}
}

func TestIDsContiguous(t *testing.T) {
	p := Params{N: 2000, AvgDeg: 8, Gamma: 2.9, Seed: 6, Chunks: 8}
	seen := make([]bool, p.N)
	for _, pt := range Points(p) {
		if pt.ID >= p.N || seen[pt.ID] {
			t.Fatalf("bad or duplicate ID %d", pt.ID)
		}
		seen[pt.ID] = true
	}
}

func TestWorkerIndependence(t *testing.T) {
	p := Params{N: 900, AvgDeg: 8, Gamma: 3.0, Seed: 7, Chunks: 8}
	base, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	base.Sort()
	got, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	got.Sort()
	if got.Len() != base.Len() {
		t.Fatal("edge count depends on workers")
	}
	for i := range base.Edges {
		if base.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// TestGlobalStreamingSplit: the classification must put wide-request annuli
// below narrow ones, and more PEs must push the boundary outward.
func TestGlobalStreamingSplit(t *testing.T) {
	base := Params{N: 1 << 14, AvgDeg: 16, Gamma: 2.5, Seed: 8}
	p1 := base
	p1.Chunks = 1
	p16 := base
	p16.Chunks = 16
	s1 := FirstStreamingAnnulus(p1)
	s16 := FirstStreamingAnnulus(p16)
	if s1 != 0 {
		t.Errorf("P=1: first streaming annulus %d, want 0 (every annulus fits one chunk)", s1)
	}
	if s16 < s1 {
		t.Errorf("more PEs should not shrink the global region: %d < %d", s16, s1)
	}
}

// TestAverageDegree: realized average degree within a generous band of the
// target (asymptotic calibration).
func TestAverageDegree(t *testing.T) {
	p := Params{N: 1 << 14, AvgDeg: 12, Gamma: 3.0, Seed: 9, Chunks: 8}
	el, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	stats := graph.ComputeStats(el)
	if stats.AvgDegree < p.AvgDeg*0.5 || stats.AvgDegree > p.AvgDeg*1.6 {
		t.Errorf("avg degree %v, want near %v", stats.AvgDegree, p.AvgDeg)
	}
}

// TestPowerLawTail as for the in-memory generator.
func TestPowerLawTail(t *testing.T) {
	p := Params{N: 1 << 15, AvgDeg: 10, Gamma: 2.6, Seed: 10, Chunks: 8}
	el, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	gamma := graph.PowerLawExponentMLE(graph.OutDegrees(el), 20)
	if math.IsNaN(gamma) || gamma < p.Gamma-0.6 || gamma > p.Gamma+0.8 {
		t.Errorf("estimated gamma %v, want ~%v", gamma, p.Gamma)
	}
}

func TestSymmetry(t *testing.T) {
	p := Params{N: 700, AvgDeg: 8, Gamma: 3.1, Seed: 11, Chunks: 5}
	el, err := Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[graph.Edge]bool, el.Len())
	for _, e := range el.Edges {
		set[e] = true
	}
	for _, e := range el.Edges {
		if !set[graph.Edge{U: e.V, V: e.U}] {
			t.Fatalf("edge %v has no mirror", e)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{N: 0, AvgDeg: 8, Gamma: 3}).Validate(); err == nil {
		t.Error("n=0 accepted")
	}
	if err := (Params{N: 100, AvgDeg: 8, Gamma: 1.9}).Validate(); err == nil {
		t.Error("gamma<2 accepted")
	}
}

func BenchmarkChunk(b *testing.B) {
	p := Params{N: 1 << 14, AvgDeg: 16, Gamma: 3.0, Seed: 1, Chunks: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateChunk(p, 3)
	}
}
