package storage

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/failpoint"
)

// fsBackend is the filesystem backend. It preserves the durability
// discipline the job layer was built on: control objects are written to
// a temp file, fsynced, renamed into place, and the directory is synced;
// shards are committed with fsync and stay plain in-place files so
// os-level tooling (and the fault injectors) can inspect them.
type fsBackend struct{}

func (fsBackend) Scheme() string     { return "file" }
func (fsBackend) Local() bool        { return true }
func (fsBackend) PartialReads() bool { return true }

// fsReader adapts an *os.File to Reader with a cached size.
type fsReader struct {
	*os.File
	size int64
}

func (r *fsReader) Size() int64 { return r.size }

func (fsBackend) Open(name string) (Reader, error) {
	f, err := os.Open(fsPath(name))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fsReader{File: f, size: st.Size()}, nil
}

func (fsBackend) Get(name string) ([]byte, error) { return os.ReadFile(fsPath(name)) }

func (fsBackend) Stat(name string) (int64, error) {
	st, err := os.Stat(fsPath(name))
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (fsBackend) List(prefix string) ([]string, error) {
	root := fsPath(prefix)
	var names []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		names = append(names, Join(prefix, rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sortedNames(names), nil
}

func (fsBackend) Delete(name string) error { return os.Remove(fsPath(name)) }

func (fsBackend) EnsureDir(name string) error { return os.MkdirAll(fsPath(name), 0o755) }

// SyncDir fsyncs a directory so a freshly created or renamed entry in it
// survives a power loss — without it, a durable manifest could record
// progress for a shard whose directory entry never became durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Put writes data to a temp file in the target directory, fsyncs it,
// renames it over name, and fsyncs the directory: a crash at any point
// leaves either the previous object or the new one, never a torn mix.
// The failpoint sites of opts fire at the same instants they always
// have: CrashBefore between the fsync and the rename (durable .tmp left
// behind), CorruptAfter after the rename (published object truncated).
func (fsBackend) Put(name string, data []byte, opts PutOptions) error {
	p := fsPath(name)
	if opts.IfAbsent {
		if _, err := os.Stat(p); err == nil {
			return fmt.Errorf("%w: %s", ErrExists, name)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp := p + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if opts.CrashBefore != "" && failpoint.Armed() && failpoint.Eval(opts.CrashBefore) {
		// Simulated crash between the fsync and the rename: the durable
		// .tmp is left behind and name still holds the previous object.
		return failpoint.Crash(opts.CrashBefore)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := SyncDir(filepath.Dir(p)); err != nil {
		return err
	}
	if opts.CorruptAfter != "" && failpoint.Armed() && failpoint.Eval(opts.CorruptAfter) {
		// Simulated external rot: the durably renamed object is cut in
		// half, then the process "crashes". Atomic renames cannot produce
		// this state — a disk can.
		if st, err := os.Stat(p); err == nil {
			os.Truncate(p, st.Size()/2)
		}
		return failpoint.Crash(opts.CorruptAfter)
	}
	return nil
}

// fsWriter is the single-shot writer: it streams into <name>.tmp and
// publishes with rename at Finalize. With excl the final name is
// reserved up front with O_EXCL, so a dirty destination fails at Create
// instead of being truncated — the reservation (an empty file) is what
// the rename atomically replaces.
type fsWriter struct {
	f        *os.File
	name     string // final path
	tmp      string
	reserved bool
}

func (fsBackend) Create(name string, excl bool) (Writer, error) {
	p := fsPath(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	reserved := false
	if excl {
		r, err := os.OpenFile(p, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			if os.IsExist(err) {
				return nil, fmt.Errorf("%w: destination %s already exists — refusing to overwrite", ErrExists, name)
			}
			return nil, err
		}
		r.Close()
		reserved = true
	}
	f, err := os.OpenFile(p+".tmp", os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		if reserved {
			os.Remove(p)
		}
		return nil, err
	}
	return &fsWriter{f: f, name: p, tmp: p + ".tmp", reserved: reserved}, nil
}

func (w *fsWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

// Seek and WriteAt expose the staging file's random access: the binary
// sinks probe for io.WriteSeeker to patch the header edge count before
// the object is published.
func (w *fsWriter) Seek(offset int64, whence int) (int64, error) { return w.f.Seek(offset, whence) }
func (w *fsWriter) WriteAt(p []byte, off int64) (int, error)     { return w.f.WriteAt(p, off) }

func (w *fsWriter) Finalize() error {
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(w.tmp)
		return err
	}
	if err := os.Rename(w.tmp, w.name); err != nil {
		os.Remove(w.tmp)
		return err
	}
	return SyncDir(filepath.Dir(w.name))
}

func (w *fsWriter) Abort() error {
	err := w.f.Close()
	if rerr := os.Remove(w.tmp); err == nil && !os.IsNotExist(rerr) {
		err = rerr
	}
	if w.reserved {
		os.Remove(w.name)
	}
	return err
}

// fsShard is the checkpointed shard writer: a plain in-place file whose
// Commit is an fsync. Durable equals the last commit — the filesystem
// never lags.
type fsShard struct {
	f   *os.File
	off int64 // bytes written
	dur int64 // bytes committed (synced)
}

func (fsBackend) CreateShard(name string) (ShardWriter, error) {
	p := fsPath(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	// Sync the directory so the new entry is durable before any manifest
	// can reference the shard.
	if err := SyncDir(filepath.Dir(p)); err != nil {
		f.Close()
		return nil, err
	}
	return &fsShard{f: f}, nil
}

func (fsBackend) ResumeShard(name string, offset int64) (ShardWriter, error) {
	p := fsPath(name)
	f, err := os.OpenFile(p, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err == nil && st.Size() < offset {
		err = fmt.Errorf("storage: shard %s has %d bytes, committed offset is %d — object and checkpoint disagree", name, st.Size(), offset)
	}
	if err == nil {
		// Drop any torn tail a crash left past the committed offset.
		err = f.Truncate(offset)
	}
	if err == nil {
		_, err = f.Seek(offset, io.SeekStart)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fsShard{f: f, off: offset, dur: offset}, nil
}

func (s *fsShard) Write(p []byte) (int, error) {
	n, err := s.f.Write(p)
	s.off += int64(n)
	return n, err
}

func (s *fsShard) Commit(_ [32]byte) (int64, error) {
	if err := s.f.Sync(); err != nil {
		return 0, err
	}
	s.dur = s.off
	return s.off, nil
}

func (s *fsShard) Durable() (int64, error) { return s.dur, nil }

// Finalize is a no-op beyond a final sync: filesystem shards live at
// their destination from the first byte (the manifest, not a rename,
// governs their meaning), which the byte-level CI checks rely on.
func (s *fsShard) Finalize() error { return s.f.Sync() }

func (s *fsShard) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

func (s *fsShard) Abort() error {
	name := s.f.Name()
	err := s.Close()
	if rerr := os.Remove(name); err == nil && !os.IsNotExist(rerr) {
		err = rerr
	}
	return err
}

// fsLock is the flock(2)-based worker lock (see lock_unix.go); the lock
// file is left behind on release — unlinking it would race a concurrent
// acquirer onto an orphaned inode, letting two processes both "hold"
// the lock.
type fsLock struct {
	f *os.File
}

func (fsBackend) Lock(name string) (Unlock, error) {
	p := fsPath(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := tryLockFile(f); err != nil {
		holder := ""
		if b, rerr := os.ReadFile(p); rerr == nil {
			if pid := bytes.TrimSpace(b); len(pid) > 0 {
				holder = fmt.Sprintf(" by pid %s", pid)
			}
		}
		f.Close()
		return nil, fmt.Errorf("%w: %s is held%s", ErrLocked, name, holder)
	}
	// Record the holder for diagnostics only — the kernel lock, not the
	// PID, is the source of truth.
	if err := f.Truncate(0); err == nil {
		f.WriteAt([]byte(fmt.Sprintf("%d\n", os.Getpid())), 0)
	}
	return &fsLock{f: f}, nil
}

func (l *fsLock) Release() error {
	if l.f == nil {
		return nil
	}
	err := unlockFile(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
