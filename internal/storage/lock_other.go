//go:build !unix

package storage

import (
	"fmt"
	"os"
)

// Non-unix fallback: no flock(2), so exclusivity comes from an O_EXCL
// sentinel next to the lock file. Unlike flock, a crashed holder leaves
// the sentinel behind and the next Run must remove it manually — the
// tradeoff is documented in DESIGN.md; all supported CI targets take the
// flock path.
func tryLockFile(f *os.File) error {
	s, err := os.OpenFile(f.Name()+".held", os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return fmt.Errorf("lock sentinel %s.held exists", f.Name())
		}
		return err
	}
	fmt.Fprintf(s, "%d\n", os.Getpid())
	return s.Close()
}

func unlockFile(f *os.File) error {
	return os.Remove(f.Name() + ".held")
}
