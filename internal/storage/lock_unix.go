//go:build unix

package storage

import (
	"os"
	"syscall"
)

// tryLockFile takes a non-blocking exclusive flock(2) on f. The lock
// lives on the open file description, so it survives nothing: a crashed
// or kill -9'd holder releases it the instant its descriptors close,
// which is exactly the recovery property the serve layer's
// resume-on-restart relies on.
func tryLockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

func unlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
