package storage

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// memSpace is the in-memory backend: a process-lifetime map of objects
// keyed by full mem:// destination. It mimics the object-store model —
// atomic Put, single-shot Create invisible until Finalize, exclusive
// create — while staying readable mid-shard (PartialReads), so the unit
// tests of every layer above can run against it without a filesystem.
type memSpace struct {
	name string
	mu   sync.Mutex
	obj  map[string][]byte
	lock map[string]bool
}

func newMemSpace(name string) *memSpace {
	return &memSpace{name: name, obj: map[string][]byte{}, lock: map[string]bool{}}
}

func (*memSpace) Scheme() string     { return "mem" }
func (*memSpace) Local() bool        { return false }
func (*memSpace) PartialReads() bool { return true }

// memReader reads a snapshot of an object. bytes.Reader already
// provides ReadAt, Seek and the total Size.
type memReader struct {
	*bytes.Reader
}

func (r memReader) Close() error { return nil }

func (s *memSpace) Open(name string) (Reader, error) {
	b, err := s.Get(name)
	if err != nil {
		return nil, err
	}
	return memReader{bytes.NewReader(b)}, nil
}

func (s *memSpace) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.obj[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return append([]byte(nil), b...), nil
}

func (s *memSpace) Stat(name string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.obj[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return int64(len(b)), nil
}

func (s *memSpace) List(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for k := range s.obj {
		if strings.HasPrefix(k, strings.TrimSuffix(prefix, "/")+"/") || k == prefix {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (s *memSpace) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.obj[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(s.obj, name)
	return nil
}

func (*memSpace) EnsureDir(string) error { return nil }

func (s *memSpace) Put(name string, data []byte, opts PutOptions) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if opts.IfAbsent {
		if _, ok := s.obj[name]; ok {
			return fmt.Errorf("%w: %s", ErrExists, name)
		}
	}
	s.obj[name] = append([]byte(nil), data...)
	return nil
}

// memWriter buffers a single-shot object and publishes it at Finalize.
type memWriter struct {
	s    *memSpace
	name string
	excl bool
	buf  bytes.Buffer
	done bool
}

func (s *memSpace) Create(name string, excl bool) (Writer, error) {
	if excl {
		s.mu.Lock()
		_, exists := s.obj[name]
		s.mu.Unlock()
		if exists {
			return nil, fmt.Errorf("%w: destination %s already exists — refusing to overwrite", ErrExists, name)
		}
	}
	return &memWriter{s: s, name: name, excl: excl}, nil
}

func (w *memWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *memWriter) Finalize() error {
	if w.done {
		return nil
	}
	w.done = true
	return w.s.Put(w.name, w.buf.Bytes(), PutOptions{IfAbsent: w.excl})
}

func (w *memWriter) Abort() error {
	w.done = true
	w.buf.Reset()
	return nil
}

// memShard is the checkpointed shard writer: committed bytes publish
// into the object map at every Commit, so readers (and a resume) see
// exactly the committed prefix — uncommitted tail bytes never escape.
type memShard struct {
	s    *memSpace
	name string
	buf  []byte // committed + uncommitted
	dur  int64  // committed length
}

func (s *memSpace) CreateShard(name string) (ShardWriter, error) {
	s.mu.Lock()
	s.obj[name] = nil
	s.mu.Unlock()
	return &memShard{s: s, name: name}, nil
}

func (s *memSpace) ResumeShard(name string, offset int64) (ShardWriter, error) {
	b, err := s.Get(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoShard, name)
	}
	if int64(len(b)) < offset {
		return nil, fmt.Errorf("storage: shard %s has %d bytes, committed offset is %d — object and checkpoint disagree", name, len(b), offset)
	}
	return &memShard{s: s, name: name, buf: b[:offset], dur: offset}, nil
}

func (w *memShard) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *memShard) Commit(_ [32]byte) (int64, error) {
	w.dur = int64(len(w.buf))
	w.s.mu.Lock()
	w.s.obj[w.name] = append([]byte(nil), w.buf...)
	w.s.mu.Unlock()
	return w.dur, nil
}

func (w *memShard) Durable() (int64, error) { return w.dur, nil }
func (w *memShard) Finalize() error         { return nil }
func (w *memShard) Close() error            { return nil }

func (w *memShard) Abort() error {
	w.s.mu.Lock()
	delete(w.s.obj, w.name)
	w.s.mu.Unlock()
	return nil
}

// memLock is a map-entry mutex.
type memLock struct {
	s    *memSpace
	name string
}

func (s *memSpace) Lock(name string) (Unlock, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock[name] {
		return nil, fmt.Errorf("%w: %s is held", ErrLocked, name)
	}
	s.lock[name] = true
	return &memLock{s: s, name: name}, nil
}

func (l *memLock) Release() error {
	l.s.mu.Lock()
	delete(l.s.lock, l.name)
	l.s.mu.Unlock()
	return nil
}
