package storage

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
)

// s3Config is the endpoint/credential configuration of the S3 backend,
// read from the environment: KAGEN_S3_ENDPOINT (or AWS_ENDPOINT_URL)
// for MinIO and other compatible stores, AWS_ACCESS_KEY_ID /
// AWS_SECRET_ACCESS_KEY / AWS_SESSION_TOKEN for credentials, AWS_REGION
// (default us-east-1). Path-style addressing is the default whenever an
// explicit endpoint is set (MinIO), virtual-host style otherwise;
// KAGEN_S3_PATH_STYLE=0/1 overrides. KAGEN_S3_PART_SIZE (bytes, default
// 5 MiB — the S3 minimum part size) is the chunk-coalescing threshold
// of the striped uploader and KAGEN_S3_CONCURRENCY (default 4) its
// in-flight part bound; tests shrink both.
type s3Config struct {
	endpoint    *url.URL // nil: AWS virtual-host endpoints
	region      string
	access      string
	secret      string
	token       string
	pathStyle   bool
	partSize    int64
	concurrency int
	maxAttempts int
	retryBase   time.Duration
	lockTTL     time.Duration
}

func s3ConfigFromEnv() (s3Config, error) {
	cfg := s3Config{
		region:      "us-east-1",
		partSize:    5 << 20,
		concurrency: 4,
		maxAttempts: 4,
		retryBase:   50 * time.Millisecond,
		lockTTL:     time.Hour,
	}
	if r := os.Getenv("AWS_REGION"); r != "" {
		cfg.region = r
	} else if r := os.Getenv("AWS_DEFAULT_REGION"); r != "" {
		cfg.region = r
	}
	cfg.access = os.Getenv("AWS_ACCESS_KEY_ID")
	cfg.secret = os.Getenv("AWS_SECRET_ACCESS_KEY")
	cfg.token = os.Getenv("AWS_SESSION_TOKEN")
	if cfg.access == "" || cfg.secret == "" {
		return cfg, errors.New("storage: s3 destination needs AWS_ACCESS_KEY_ID and AWS_SECRET_ACCESS_KEY in the environment")
	}
	ep := os.Getenv("KAGEN_S3_ENDPOINT")
	if ep == "" {
		ep = os.Getenv("AWS_ENDPOINT_URL")
	}
	if ep != "" {
		u, err := url.Parse(ep)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return cfg, fmt.Errorf("storage: bad s3 endpoint %q", ep)
		}
		cfg.endpoint = u
		cfg.pathStyle = true
	}
	if v := os.Getenv("KAGEN_S3_PATH_STYLE"); v != "" {
		cfg.pathStyle = v != "0" && v != "false"
	}
	if v := os.Getenv("KAGEN_S3_PART_SIZE"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			return cfg, fmt.Errorf("storage: bad KAGEN_S3_PART_SIZE %q", v)
		}
		cfg.partSize = n
	}
	if v := os.Getenv("KAGEN_S3_CONCURRENCY"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return cfg, fmt.Errorf("storage: bad KAGEN_S3_CONCURRENCY %q", v)
		}
		cfg.concurrency = n
	}
	if v := os.Getenv("KAGEN_S3_MAX_ATTEMPTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return cfg, fmt.Errorf("storage: bad KAGEN_S3_MAX_ATTEMPTS %q", v)
		}
		cfg.maxAttempts = n
	}
	if v := os.Getenv("KAGEN_S3_LOCK_TTL"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return cfg, fmt.Errorf("storage: bad KAGEN_S3_LOCK_TTL %q", v)
		}
		cfg.lockTTL = d
	}
	return cfg, nil
}

// s3Backend talks the S3 REST dialect (AWS or MinIO) over net/http with
// SigV4 signing — no SDK. It implements Backend for s3://bucket/key
// destinations.
type s3Backend struct {
	cfg  s3Config
	hc   *http.Client
	sign signer
}

func newS3FromEnv() (Backend, error) {
	cfg, err := s3ConfigFromEnv()
	if err != nil {
		return nil, err
	}
	return &s3Backend{
		cfg: cfg,
		hc:  &http.Client{Timeout: 5 * time.Minute},
		sign: signer{
			accessKey: cfg.access, secretKey: cfg.secret, sessionToken: cfg.token,
			region: cfg.region, service: "s3",
		},
	}, nil
}

func (*s3Backend) Scheme() string     { return "s3" }
func (*s3Backend) Local() bool        { return false }
func (*s3Backend) PartialReads() bool { return false }

// splitS3 parses s3://bucket/key into its bucket and key.
func splitS3(name string) (bucket, key string, err error) {
	rest := strings.TrimPrefix(name, "s3://")
	if rest == name {
		return "", "", fmt.Errorf("storage: %q is not an s3:// destination", name)
	}
	bucket, key, _ = strings.Cut(rest, "/")
	if bucket == "" {
		return "", "", fmt.Errorf("storage: s3 destination %q has no bucket", name)
	}
	return bucket, key, nil
}

// urlFor builds the request URL of one object (or bucket operation when
// key is empty). query must already be canonical (buildQuery).
func (b *s3Backend) urlFor(bucket, key, query string) (*url.URL, string) {
	u := &url.URL{Scheme: "https"}
	if b.cfg.endpoint != nil {
		u.Scheme = b.cfg.endpoint.Scheme
		u.Host = b.cfg.endpoint.Host
	} else {
		u.Host = "s3." + b.cfg.region + ".amazonaws.com"
	}
	p := "/" + key
	if b.cfg.pathStyle || b.cfg.endpoint != nil {
		p = "/" + bucket + "/" + key
	} else {
		u.Host = bucket + "." + u.Host
	}
	u.Path = strings.TrimSuffix(p, "/")
	if key == "" {
		u.Path = p[:len(p)-len(key)] // keep the trailing slash of a bucket URL
	}
	u.RawQuery = query
	return u, u.Host
}

// s3Error is the parsed XML error body of a failed request.
type s3Error struct {
	Status  int
	Code    string `xml:"Code"`
	Message string `xml:"Message"`
}

func (e *s3Error) Error() string {
	return fmt.Sprintf("s3: http %d %s: %s", e.Status, e.Code, e.Message)
}

// asSentinel maps an s3Error onto the package sentinels so errors.Is
// keeps working across backends.
func (e *s3Error) Unwrap() error {
	switch {
	case e.Status == http.StatusNotFound:
		return ErrNotExist
	case e.Status == http.StatusPreconditionFailed, e.Code == "PreconditionFailed":
		return ErrExists
	}
	return nil
}

// retryable reports whether a request error or status is transient.
func retryable(err error, status int) bool {
	if err != nil {
		return true // network-level errors: connection reset, timeout, EOF
	}
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout,
		http.StatusTooManyRequests, http.StatusRequestTimeout:
		return true
	}
	return false
}

// do signs and performs one request built by build, retrying transient
// failures with exponential backoff. build is called once per attempt so
// request bodies restart from the beginning. Returns the response (body
// unread) and the number of retries performed.
func (b *s3Backend) do(build func() (*http.Request, error)) (*http.Response, int, error) {
	var lastErr error
	for attempt := 0; attempt < b.cfg.maxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(b.cfg.retryBase << (attempt - 1))
		}
		req, err := build()
		if err != nil {
			return nil, attempt, err
		}
		resp, err := b.hc.Do(req)
		if err == nil && resp.StatusCode < 300 {
			return resp, attempt, nil
		}
		status := 0
		if err == nil {
			status = resp.StatusCode
			if !retryable(nil, status) {
				defer resp.Body.Close()
				return nil, attempt, parseS3Error(resp)
			}
			lastErr = parseS3Error(resp)
			resp.Body.Close()
		} else {
			lastErr = err
		}
		if !retryable(err, status) {
			break
		}
	}
	return nil, b.cfg.maxAttempts - 1, fmt.Errorf("storage: s3 request failed after %d attempts: %w", b.cfg.maxAttempts, lastErr)
}

// parseS3Error reads a failed response's XML error body.
func parseS3Error(resp *http.Response) error {
	e := &s3Error{Status: resp.StatusCode}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	_ = xml.Unmarshal(body, e)
	if e.Code == "" {
		e.Message = strings.TrimSpace(string(body))
	}
	return e
}

// newReq builds one signed request. body may be nil.
func (b *s3Backend) newReq(method, bucket, key, query string, body []byte, hdr http.Header) (*http.Request, error) {
	u, host := b.urlFor(bucket, key, query)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u.String(), rd)
	if err != nil {
		return nil, err
	}
	req.Host = host
	if body != nil {
		req.ContentLength = int64(len(body))
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	b.sign.sign(req, unsignedPayload, time.Now())
	return req, nil
}

// --- basic object operations ---

func (b *s3Backend) Get(name string) ([]byte, error) {
	bucket, key, err := splitS3(name)
	if err != nil {
		return nil, err
	}
	resp, _, err := b.do(func() (*http.Request, error) {
		return b.newReq(http.MethodGet, bucket, key, "", nil, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func (b *s3Backend) Stat(name string) (int64, error) {
	bucket, key, err := splitS3(name)
	if err != nil {
		return 0, err
	}
	resp, _, err := b.do(func() (*http.Request, error) {
		return b.newReq(http.MethodHead, bucket, key, "", nil, nil)
	})
	if err != nil {
		// HEAD errors carry no XML body; normalize 404s to the sentinel.
		var se *s3Error
		if errors.As(err, &se) && se.Status == http.StatusNotFound {
			return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return 0, err
	}
	defer resp.Body.Close()
	return resp.ContentLength, nil
}

func (b *s3Backend) Delete(name string) error {
	bucket, key, err := splitS3(name)
	if err != nil {
		return err
	}
	resp, _, err := b.do(func() (*http.Request, error) {
		return b.newReq(http.MethodDelete, bucket, key, "", nil, nil)
	})
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

func (*s3Backend) EnsureDir(string) error { return nil } // object stores have no directories

func (b *s3Backend) List(prefix string) ([]string, error) {
	bucket, keyPrefix, err := splitS3(prefix)
	if err != nil {
		return nil, err
	}
	if keyPrefix != "" && !strings.HasSuffix(keyPrefix, "/") {
		keyPrefix += "/"
	}
	var names []string
	token := ""
	for {
		q := map[string]string{"list-type": "2", "prefix": keyPrefix}
		if token != "" {
			q["continuation-token"] = token
		}
		resp, _, err := b.do(func() (*http.Request, error) {
			return b.newReq(http.MethodGet, bucket, "", buildQuery(q), nil, nil)
		})
		if err != nil {
			return nil, err
		}
		var out struct {
			Contents []struct {
				Key string `xml:"Key"`
			} `xml:"Contents"`
			IsTruncated           bool   `xml:"IsTruncated"`
			NextContinuationToken string `xml:"NextContinuationToken"`
		}
		err = xml.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("storage: bad ListObjectsV2 response: %w", err)
		}
		for _, c := range out.Contents {
			names = append(names, "s3://"+bucket+"/"+c.Key)
		}
		if !out.IsTruncated || out.NextContinuationToken == "" {
			break
		}
		token = out.NextContinuationToken
	}
	return sortedNames(names), nil
}

// Put uploads data as one atomic PUT. The failpoint semantics mirror the
// filesystem backend at the analogous instants: CrashBefore fires before
// the PUT (previous object still current), CorruptAfter overwrites the
// published object with its truncated first half before crashing.
func (b *s3Backend) Put(name string, data []byte, opts PutOptions) error {
	bucket, key, err := splitS3(name)
	if err != nil {
		return err
	}
	if opts.CrashBefore != "" && failpoint.Armed() && failpoint.Eval(opts.CrashBefore) {
		return failpoint.Crash(opts.CrashBefore)
	}
	hdr := http.Header{}
	if opts.IfAbsent {
		hdr.Set("If-None-Match", "*")
	}
	resp, _, err := b.do(func() (*http.Request, error) {
		return b.newReq(http.MethodPut, bucket, key, "", data, hdr)
	})
	if err != nil {
		if opts.IfAbsent && errors.Is(err, ErrExists) {
			return fmt.Errorf("%w: %s", ErrExists, name)
		}
		return err
	}
	resp.Body.Close()
	if opts.CorruptAfter != "" && failpoint.Armed() && failpoint.Eval(opts.CorruptAfter) {
		if resp, _, err := b.do(func() (*http.Request, error) {
			return b.newReq(http.MethodPut, bucket, key, "", data[:len(data)/2], nil)
		}); err == nil {
			resp.Body.Close()
		}
		return failpoint.Crash(opts.CorruptAfter)
	}
	return nil
}

// --- reader ---

// s3Reader reads an object with ranged GETs: sequential reads stream one
// long-lived GET from the current position, ReadAt issues independent
// range requests (what verify's chunk reads want).
type s3Reader struct {
	b      *s3Backend
	bucket string
	key    string
	size   int64
	pos    int64
	body   io.ReadCloser
}

func (b *s3Backend) Open(name string) (Reader, error) {
	size, err := b.Stat(name)
	if err != nil {
		return nil, err
	}
	bucket, key, err := splitS3(name)
	if err != nil {
		return nil, err
	}
	return &s3Reader{b: b, bucket: bucket, key: key, size: size}, nil
}

func (r *s3Reader) Size() int64 { return r.size }

func (r *s3Reader) Read(p []byte) (int, error) {
	if r.pos >= r.size {
		return 0, io.EOF
	}
	if r.body == nil {
		hdr := http.Header{}
		if r.pos > 0 {
			hdr.Set("Range", fmt.Sprintf("bytes=%d-", r.pos))
		}
		resp, _, err := r.b.do(func() (*http.Request, error) {
			return r.b.newReq(http.MethodGet, r.bucket, r.key, "", nil, hdr)
		})
		if err != nil {
			return 0, err
		}
		r.body = resp.Body
	}
	n, err := r.body.Read(p)
	r.pos += int64(n)
	if err == io.EOF && r.pos < r.size {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (r *s3Reader) ReadAt(p []byte, off int64) (int, error) {
	if off >= r.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > r.size {
		want = r.size - off
	}
	if want == 0 {
		return 0, nil
	}
	hdr := http.Header{}
	hdr.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+want-1))
	resp, _, err := r.b.do(func() (*http.Request, error) {
		return r.b.newReq(http.MethodGet, r.bucket, r.key, "", nil, hdr)
	})
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	n, err := io.ReadFull(resp.Body, p[:want])
	if err == nil && int64(n) < int64(len(p)) {
		err = io.EOF
	}
	return n, err
}

func (r *s3Reader) Seek(offset int64, whence int) (int64, error) {
	var next int64
	switch whence {
	case io.SeekStart:
		next = offset
	case io.SeekCurrent:
		next = r.pos + offset
	case io.SeekEnd:
		next = r.size + offset
	default:
		return 0, fmt.Errorf("storage: bad seek whence %d", whence)
	}
	if next < 0 {
		return 0, fmt.Errorf("storage: negative seek position %d", next)
	}
	if next != r.pos && r.body != nil {
		r.body.Close()
		r.body = nil
	}
	r.pos = next
	return next, nil
}

func (r *s3Reader) Close() error {
	if r.body != nil {
		err := r.body.Close()
		r.body = nil
		return err
	}
	return nil
}

// --- multipart plumbing ---

type s3Part struct {
	Num      int
	Size     int64
	ETag     string
	Checksum string // base64 SHA-256, empty when the store reported none
}

func (b *s3Backend) createMultipart(bucket, key string) (string, error) {
	hdr := http.Header{}
	hdr.Set("x-amz-checksum-algorithm", "SHA256")
	resp, _, err := b.do(func() (*http.Request, error) {
		return b.newReq(http.MethodPost, bucket, key, buildQuery(map[string]string{"uploads": ""}), nil, hdr)
	})
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		UploadID string `xml:"UploadId"`
	}
	if err := xml.NewDecoder(resp.Body).Decode(&out); err != nil || out.UploadID == "" {
		return "", fmt.Errorf("storage: bad InitiateMultipartUpload response: %v", err)
	}
	return out.UploadID, nil
}

// uploadPart uploads one part with its SHA-256 checksum, retrying
// transient failures. ctx aborts the upload between attempts and
// mid-request (Abort cancels it). The storage/s3-part-transient
// failpoint injects a retryable failure before a real attempt;
// storage/s3-part-fail injects a permanent one.
func (b *s3Backend) uploadPart(ctx context.Context, bucket, key, uploadID string, num int, data []byte, checksumB64 string) (string, error) {
	if failpoint.Armed() && failpoint.Eval("storage/s3-part-fail") {
		return "", fmt.Errorf("storage: injected permanent part-upload failure (part %d)", num)
	}
	attempt := func() (*http.Request, error) {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if failpoint.Armed() && failpoint.Eval("storage/s3-part-transient") {
			return nil, errInjectedTransient
		}
		hdr := http.Header{}
		hdr.Set("x-amz-checksum-sha256", checksumB64)
		req, err := b.newReq(http.MethodPut, bucket, key,
			buildQuery(map[string]string{"partNumber": strconv.Itoa(num), "uploadId": uploadID}),
			data, hdr)
		if err == nil && ctx != nil {
			req = req.WithContext(ctx)
		}
		return req, err
	}
	resp, retries, err := b.doTransient(attempt)
	stats.partRetries.Add(int64(retries))
	if retries > 0 {
		obs.Logger("storage").Warn("part upload retried",
			"key", key, "part", num, "retries", retries, "bytes", len(data), "err", err)
	}
	if err != nil {
		return "", err
	}
	etag := resp.Header.Get("ETag")
	resp.Body.Close()
	stats.partsUploaded.Add(1)
	stats.bytesUploaded.Add(int64(len(data)))
	return etag, nil
}

var errInjectedTransient = errors.New("storage: injected transient part-upload failure")

// doTransient is do, but treats errInjectedTransient from the builder as
// a retryable attempt instead of a hard error.
func (b *s3Backend) doTransient(build func() (*http.Request, error)) (*http.Response, int, error) {
	var lastErr error
	for attempt := 0; attempt < b.cfg.maxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(b.cfg.retryBase << (attempt - 1))
		}
		req, err := build()
		if err == errInjectedTransient {
			lastErr = err
			continue
		}
		if err != nil {
			return nil, attempt, err
		}
		resp, err := b.hc.Do(req)
		if err == nil && resp.StatusCode < 300 {
			return resp, attempt, nil
		}
		if err == nil {
			if !retryable(nil, resp.StatusCode) {
				defer resp.Body.Close()
				return nil, attempt, parseS3Error(resp)
			}
			lastErr = parseS3Error(resp)
			resp.Body.Close()
		} else {
			lastErr = err
		}
	}
	return nil, b.cfg.maxAttempts, fmt.Errorf("storage: s3 part upload failed after %d attempts: %w", b.cfg.maxAttempts, lastErr)
}

func (b *s3Backend) completeMultipart(bucket, key, uploadID string, parts []s3Part, excl bool) error {
	type xmlPart struct {
		XMLName        xml.Name `xml:"Part"`
		PartNumber     int      `xml:"PartNumber"`
		ETag           string   `xml:"ETag"`
		ChecksumSHA256 string   `xml:"ChecksumSHA256,omitempty"`
	}
	type completeReq struct {
		XMLName xml.Name `xml:"CompleteMultipartUpload"`
		Parts   []xmlPart
	}
	creq := completeReq{}
	for _, p := range parts {
		creq.Parts = append(creq.Parts, xmlPart{PartNumber: p.Num, ETag: p.ETag, ChecksumSHA256: p.Checksum})
	}
	body, err := xml.Marshal(creq)
	if err != nil {
		return err
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/xml")
	if excl {
		hdr.Set("If-None-Match", "*")
	}
	resp, _, err := b.do(func() (*http.Request, error) {
		return b.newReq(http.MethodPost, bucket, key, buildQuery(map[string]string{"uploadId": uploadID}), body, hdr)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// CompleteMultipartUpload can return 200 with an error body.
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if bytes.Contains(out, []byte("<Error>")) {
		e := &s3Error{Status: resp.StatusCode}
		_ = xml.Unmarshal(out, e)
		return e
	}
	return nil
}

func (b *s3Backend) abortMultipart(bucket, key, uploadID string) error {
	resp, _, err := b.do(func() (*http.Request, error) {
		return b.newReq(http.MethodDelete, bucket, key, buildQuery(map[string]string{"uploadId": uploadID}), nil, nil)
	})
	if err != nil {
		var se *s3Error
		if errors.As(err, &se) && se.Code == "NoSuchUpload" {
			return nil
		}
		return err
	}
	resp.Body.Close()
	return nil
}

// listUploads returns the in-progress multipart uploads whose key equals
// key exactly.
func (b *s3Backend) listUploads(bucket, key string) ([]string, error) {
	resp, _, err := b.do(func() (*http.Request, error) {
		return b.newReq(http.MethodGet, bucket, "", buildQuery(map[string]string{"uploads": "", "prefix": key}), nil, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Uploads []struct {
			Key      string `xml:"Key"`
			UploadID string `xml:"UploadId"`
			// Initiated orders concurrent uploads; the newest wins.
			Initiated string `xml:"Initiated"`
		} `xml:"Upload"`
	}
	if err := xml.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("storage: bad ListMultipartUploads response: %w", err)
	}
	var ids []string
	for _, u := range out.Uploads {
		if u.Key == key {
			ids = append(ids, u.UploadID)
		}
	}
	return ids, nil
}

func (b *s3Backend) listParts(bucket, key, uploadID string) ([]s3Part, error) {
	var parts []s3Part
	marker := ""
	for {
		q := map[string]string{"uploadId": uploadID}
		if marker != "" {
			q["part-number-marker"] = marker
		}
		resp, _, err := b.do(func() (*http.Request, error) {
			return b.newReq(http.MethodGet, bucket, key, buildQuery(q), nil, nil)
		})
		if err != nil {
			return nil, err
		}
		var out struct {
			Parts []struct {
				PartNumber     int    `xml:"PartNumber"`
				Size           int64  `xml:"Size"`
				ETag           string `xml:"ETag"`
				ChecksumSHA256 string `xml:"ChecksumSHA256"`
			} `xml:"Part"`
			IsTruncated          bool   `xml:"IsTruncated"`
			NextPartNumberMarker string `xml:"NextPartNumberMarker"`
		}
		err = xml.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("storage: bad ListParts response: %w", err)
		}
		for _, p := range out.Parts {
			parts = append(parts, s3Part{Num: p.PartNumber, Size: p.Size, ETag: p.ETag, Checksum: p.ChecksumSHA256})
		}
		if !out.IsTruncated || out.NextPartNumberMarker == "" {
			break
		}
		marker = out.NextPartNumberMarker
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Num < parts[j].Num })
	return parts, nil
}

// --- locks ---

// s3Lock is a lease object taken with a conditional PUT
// (If-None-Match: *, supported by AWS and MinIO). The body records the
// holder and an expiry; an expired lease is broken and retaken once. A
// crashed holder therefore blocks the worker only until the TTL lapses —
// the flock-style instant release has no object-store equivalent.
type s3Lock struct {
	b    *s3Backend
	name string
}

func (b *s3Backend) Lock(name string) (Unlock, error) {
	body := fmt.Sprintf("pid %d expires %s\n", os.Getpid(), time.Now().Add(b.cfg.lockTTL).UTC().Format(time.RFC3339))
	for attempt := 0; attempt < 2; attempt++ {
		err := b.Put(name, []byte(body), PutOptions{IfAbsent: true})
		if err == nil {
			return &s3Lock{b: b, name: name}, nil
		}
		if !errors.Is(err, ErrExists) {
			return nil, err
		}
		holder, gerr := b.Get(name)
		if gerr != nil {
			if errors.Is(gerr, ErrNotExist) {
				continue // released between PUT and GET: retry
			}
			return nil, gerr
		}
		if exp, ok := lockExpiry(string(holder)); ok && time.Now().After(exp) {
			// Expired lease: break it and retake once.
			if derr := b.Delete(name); derr != nil && !errors.Is(derr, ErrNotExist) {
				return nil, derr
			}
			continue
		}
		return nil, fmt.Errorf("%w: %s is held (%s)", ErrLocked, name, strings.TrimSpace(string(holder)))
	}
	return nil, fmt.Errorf("%w: %s is held", ErrLocked, name)
}

// lockExpiry parses the expiry out of a lease body.
func lockExpiry(body string) (time.Time, bool) {
	fields := strings.Fields(body)
	for i, f := range fields {
		if f == "expires" && i+1 < len(fields) {
			t, err := time.Parse(time.RFC3339, fields[i+1])
			return t, err == nil
		}
	}
	return time.Time{}, false
}

func (l *s3Lock) Release() error { return l.b.Delete(l.name) }
