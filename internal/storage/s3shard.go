package storage

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
)

// s3Shard is the striped multipart shard writer: committed chunks
// coalesce into multipart parts (>= partSize, chunk-aligned) that upload
// in background goroutines while the generator keeps producing the next
// chunks. The semaphore bounds both in-flight uploads and buffered part
// memory — sealing a part blocks when cfg.concurrency uploads are
// already running, which is the backpressure that keeps a slow store
// from buffering the whole shard in RAM.
//
// Durability model: a chunk is durable once every part up to and
// including its bytes has finished uploading (the store verified each
// part's SHA-256 on receipt). Durable() reports that contiguous prefix;
// the job layer's checkpoint manifests only record offsets at or below
// it, so a crash never leaves a manifest pointing past what the store
// holds.
type s3Shard struct {
	b      *s3Backend
	bucket string
	key    string
	upload string // multipart UploadId
	excl   bool   // If-None-Match on Complete (single-shot writers)

	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu           sync.Mutex
	cur          []byte // bytes written since the last Commit
	pending      []byte // committed chunks not yet sealed into a part
	pendingN     int    // chunks in pending
	pendingSum   [32]byte
	pendingKnown bool  // pendingSum valid (single whole chunk)
	off          int64 // absolute committed offset
	resumeOff    int64 // durable offset inherited from a resumed upload
	resumeParts  []s3Part
	local        []*s3PartState // sealed this session, in part order
	nextPart     int
	uploadErr    error
	finalized    bool
}

type s3PartState struct {
	part s3Part
	done bool
	data []byte // released once uploaded
}

func (b *s3Backend) newShard(bucket, key, uploadID string, resumeOff int64, resumeParts []s3Part) *s3Shard {
	ctx, cancel := context.WithCancel(context.Background())
	next := 1
	for _, p := range resumeParts {
		if p.Num >= next {
			next = p.Num + 1
		}
	}
	return &s3Shard{
		b: b, bucket: bucket, key: key, upload: uploadID,
		ctx: ctx, cancel: cancel,
		sem:       make(chan struct{}, b.cfg.concurrency),
		off:       resumeOff,
		resumeOff: resumeOff, resumeParts: resumeParts,
		nextPart: next,
	}
}

// CreateShard starts a fresh shard: any stale multipart upload for the
// key is aborted (its parts are unreachable garbage otherwise), then a
// new upload is initiated eagerly so part uploads can start with the
// first sealed part.
func (b *s3Backend) CreateShard(name string) (ShardWriter, error) {
	bucket, key, err := splitS3(name)
	if err != nil {
		return nil, err
	}
	stale, err := b.listUploads(bucket, key)
	if err != nil {
		return nil, err
	}
	for _, id := range stale {
		if err := b.abortMultipart(bucket, key, id); err != nil {
			return nil, fmt.Errorf("storage: aborting stale upload of %s: %w", name, err)
		}
	}
	id, err := b.createMultipart(bucket, key)
	if err != nil {
		return nil, err
	}
	return b.newShard(bucket, key, id, 0, nil), nil
}

// ResumeShard reattaches to the in-progress multipart upload of name.
// The committed offset recorded by the manifest is always a part
// boundary (promotion only ever records Durable() values, and Durable
// moves in whole parts), so resume looks for a contiguous prefix of
// uploaded parts summing exactly to offset. Anything else — no upload,
// a gap, a sum mismatch — means the store-side state cannot back the
// checkpoint, and the caller gets ErrNoShard to regenerate from zero.
func (b *s3Backend) ResumeShard(name string, offset int64) (ShardWriter, error) {
	bucket, key, err := splitS3(name)
	if err != nil {
		return nil, err
	}
	ids, err := b.listUploads(bucket, key)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		parts, err := b.listParts(bucket, key, id)
		if err != nil {
			return nil, err
		}
		// Contiguous prefix 1..k summing exactly to offset.
		var sum int64
		k := 0
		for i, p := range parts {
			if p.Num != i+1 || sum >= offset {
				break
			}
			sum += p.Size
			k = i + 1
		}
		if sum == offset {
			return b.newShard(bucket, key, id, offset, parts[:k]), nil
		}
	}
	// No usable upload. A finalized object whose size equals the
	// committed offset means the crash fell between Complete and the
	// final manifest write: the data is all there, nothing to write.
	if size, serr := b.Stat(name); serr == nil && size == offset {
		return &finalizedShard{off: offset}, nil
	}
	return nil, fmt.Errorf("%w: %s at offset %d", ErrNoShard, name, offset)
}

func (w *s3Shard) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.uploadErr; err != nil {
		return 0, err
	}
	w.cur = append(w.cur, p...)
	return len(p), nil
}

// Commit seals everything written since the last Commit as one chunk.
// digest is the chunk's wire SHA-256 from the job layer's Merkle
// manifest; when the chunk becomes a part on its own the digest is
// forwarded verbatim as the part checksum — no second hash pass.
func (w *s3Shard) Commit(digest [32]byte) (int64, error) {
	return w.commit(digest, true)
}

func (w *s3Shard) commit(digest [32]byte, known bool) (int64, error) {
	w.mu.Lock()
	if err := w.uploadErr; err != nil {
		w.mu.Unlock()
		return 0, err
	}
	w.off += int64(len(w.cur))
	w.pending = append(w.pending, w.cur...)
	w.cur = w.cur[:0]
	w.pendingN++
	if w.pendingN == 1 {
		w.pendingSum, w.pendingKnown = digest, known
	} else {
		w.pendingKnown = false
	}
	off := w.off
	var ps *s3PartState
	if int64(len(w.pending)) >= w.b.cfg.partSize {
		ps = w.seal()
	}
	w.mu.Unlock()
	if ps != nil {
		w.launch(ps)
	}
	return off, nil
}

// seal turns the pending chunk run into one part. Caller holds mu.
func (w *s3Shard) seal() *s3PartState {
	if len(w.pending) == 0 {
		return nil
	}
	var sum string
	if w.pendingN == 1 && w.pendingKnown {
		sum = base64.StdEncoding.EncodeToString(w.pendingSum[:])
		stats.checksumReused.Add(1)
	} else {
		d := sha256.Sum256(w.pending)
		sum = base64.StdEncoding.EncodeToString(d[:])
		stats.checksumRehashed.Add(1)
	}
	ps := &s3PartState{
		part: s3Part{Num: w.nextPart, Size: int64(len(w.pending)), Checksum: sum},
		data: w.pending,
	}
	w.nextPart++
	w.pending = nil
	w.pendingN = 0
	w.pendingKnown = false
	w.local = append(w.local, ps)
	return ps
}

// launch starts the background upload of a sealed part. The semaphore
// acquire happens here, on the generator's goroutine: when the
// concurrency budget is exhausted, sealing the next part blocks until a
// slot frees, bounding buffered part memory.
func (w *s3Shard) launch(ps *s3PartState) {
	w.sem <- struct{}{}
	w.wg.Add(1)
	trackInFlight(1)
	go func() {
		defer func() {
			trackInFlight(-1)
			<-w.sem
			w.wg.Done()
		}()
		// Observability: a span on the process-global trace (nil check when
		// tracing is off) and a latency observation for the part-upload
		// histogram (one atomic load when no observer is installed).
		sp := obs.Active().Start("storage", "upload-part", obs.UploadLane(uint64(ps.part.Num)), obs.Span{})
		start := time.Now()
		etag, err := w.b.uploadPart(w.ctx, w.bucket, w.key, w.upload, ps.part.Num, ps.data, ps.part.Checksum)
		observePartUpload(time.Since(start).Seconds())
		sp.End(obs.U64("part", uint64(ps.part.Num)), obs.U64("bytes", uint64(ps.part.Size)), obs.Str("key", w.key))
		w.mu.Lock()
		if err != nil {
			if w.uploadErr == nil {
				w.uploadErr = fmt.Errorf("storage: upload of %s part %d: %w", w.key, ps.part.Num, err)
			}
		} else {
			ps.part.ETag = etag
			ps.done = true
			ps.data = nil
		}
		w.mu.Unlock()
	}()
}

// Durable returns the contiguous committed prefix whose parts have all
// finished uploading, plus the first background upload error.
func (w *s3Shard) Durable() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.finalized {
		return w.off, w.uploadErr
	}
	dur := w.resumeOff
	for _, ps := range w.local {
		if !ps.done {
			break
		}
		dur += ps.part.Size
	}
	return dur, w.uploadErr
}

// Finalize seals the remainder, drains every upload, and completes the
// multipart upload — the instant the shard becomes an object. An empty
// shard degenerates to a plain PUT (Complete with zero parts is
// invalid).
func (w *s3Shard) Finalize() error {
	w.mu.Lock()
	if len(w.cur) > 0 {
		// Uncommitted tail: seal it as an implicit final chunk (single-shot
		// writers land here; the job layer always commits first).
		w.off += int64(len(w.cur))
		w.pending = append(w.pending, w.cur...)
		w.cur = nil
		w.pendingN += 2 // force a rehash — no digest accompanies these bytes
	}
	ps := w.seal()
	w.mu.Unlock()
	if ps != nil {
		w.launch(ps)
	}
	w.wg.Wait()

	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.uploadErr; err != nil {
		return err
	}
	parts := append([]s3Part(nil), w.resumeParts...)
	for _, p := range w.local {
		parts = append(parts, p.part)
	}
	if len(parts) == 0 {
		if err := w.b.abortMultipart(w.bucket, w.key, w.upload); err != nil {
			return err
		}
		return w.b.Put("s3://"+w.bucket+"/"+w.key, nil, PutOptions{IfAbsent: w.excl})
	}
	if failpoint.Armed() && failpoint.Eval("storage/s3-finalize-crash") {
		// Simulated crash after every part uploaded but before Complete:
		// the upload (and all its parts) survives for resume.
		return failpoint.Crash("storage/s3-finalize-crash")
	}
	if err := w.b.completeMultipart(w.bucket, w.key, w.upload, parts, w.excl); err != nil {
		if w.excl && errors.Is(err, ErrExists) {
			return fmt.Errorf("%w: destination s3://%s/%s already exists — refusing to overwrite", ErrExists, w.bucket, w.key)
		}
		return err
	}
	w.finalized = true
	return nil
}

// Close drains in-flight uploads and releases resources without
// completing or aborting the multipart upload: committed parts stay on
// the store for a later ResumeShard.
func (w *s3Shard) Close() error {
	w.wg.Wait()
	w.cancel()
	return nil
}

// Abort cancels in-flight part uploads and aborts the multipart upload,
// discarding every part.
func (w *s3Shard) Abort() error {
	obs.Logger("storage").Info("aborting multipart upload", "key", w.key, "upload", w.upload)
	w.cancel()
	w.wg.Wait()
	if failpoint.Armed() && failpoint.Eval("storage/s3-abort-crash") {
		// Simulated crash before AbortMultipartUpload: the orphaned upload
		// must be swept by the next CreateShard.
		return failpoint.Crash("storage/s3-abort-crash")
	}
	return w.b.abortMultipart(w.bucket, w.key, w.upload)
}

// finalizedShard backs a resume that found the object already complete
// at exactly the committed offset (crash between Complete and the final
// manifest write): everything is durable, nothing may be written.
type finalizedShard struct{ off int64 }

func (s *finalizedShard) Write([]byte) (int, error) {
	return 0, errors.New("storage: shard already finalized")
}
func (s *finalizedShard) Commit([32]byte) (int64, error) {
	return 0, errors.New("storage: shard already finalized")
}
func (s *finalizedShard) Durable() (int64, error) { return s.off, nil }
func (s *finalizedShard) Finalize() error         { return nil }
func (s *finalizedShard) Close() error            { return nil }
func (s *finalizedShard) Abort() error            { return nil }

// s3Writer is the single-shot object writer: small objects buffer in
// memory and publish with one conditional PUT; anything reaching the
// part-size threshold spills into a striped multipart upload.
type s3Writer struct {
	b     *s3Backend
	name  string
	excl  bool
	buf   []byte
	shard *s3Shard
	done  bool
}

func (b *s3Backend) Create(name string, excl bool) (Writer, error) {
	if _, _, err := splitS3(name); err != nil {
		return nil, err
	}
	if excl {
		// Early refusal for a clear error at Create time; the conditional
		// PUT / Complete still guards the race at publish time.
		if _, err := b.Stat(name); err == nil {
			return nil, fmt.Errorf("%w: destination %s already exists — refusing to overwrite", ErrExists, name)
		} else if !errors.Is(err, ErrNotExist) {
			return nil, err
		}
	}
	return &s3Writer{b: b, name: name, excl: excl}, nil
}

func (w *s3Writer) Write(p []byte) (int, error) {
	if w.shard != nil {
		n, err := w.shard.Write(p)
		if err != nil {
			return n, err
		}
		if _, err := w.shard.commit([32]byte{}, false); err != nil {
			return n, err
		}
		return n, nil
	}
	w.buf = append(w.buf, p...)
	if int64(len(w.buf)) >= w.b.cfg.partSize {
		bucket, key, err := splitS3(w.name)
		if err != nil {
			return len(p), err
		}
		id, err := w.b.createMultipart(bucket, key)
		if err != nil {
			return len(p), err
		}
		w.shard = w.b.newShard(bucket, key, id, 0, nil)
		w.shard.excl = w.excl
		if _, err := w.shard.Write(w.buf); err != nil {
			return len(p), err
		}
		if _, err := w.shard.commit([32]byte{}, false); err != nil {
			return len(p), err
		}
		w.buf = nil
	}
	return len(p), nil
}

func (w *s3Writer) Finalize() error {
	if w.done {
		return nil
	}
	w.done = true
	if w.shard != nil {
		err := w.shard.Finalize()
		w.shard.cancel()
		return err
	}
	err := w.b.Put(w.name, w.buf, PutOptions{IfAbsent: w.excl})
	if err != nil && errors.Is(err, ErrExists) {
		return fmt.Errorf("%w: destination %s already exists — refusing to overwrite", ErrExists, w.name)
	}
	return err
}

func (w *s3Writer) Abort() error {
	if w.done {
		return nil
	}
	w.done = true
	w.buf = nil
	if w.shard != nil {
		return w.shard.Abort()
	}
	return nil
}
