// Package s3test is an in-process S3-compatible server for unit tests:
// path-style buckets, conditional PUTs, ranged GETs, ListObjectsV2, and
// the full multipart lifecycle with server-side part checksum
// verification — the subset the storage package's client speaks. It
// independently re-derives each request's SigV4 signature from the wire
// form, so a canonicalization bug in the client (query ordering, path
// escaping, host handling) fails loudly in unit tests instead of only
// against MinIO in CI.
package s3test

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Server is one in-memory S3 endpoint. Create with New, point the
// client at URL(), and configure the same credentials on both sides.
type Server struct {
	Access string
	Secret string

	// OnPart, when set, runs before a part upload is stored; returning an
	// error turns the upload into a 500 (the client retries it). Tests use
	// it to block parts (prove striping) or fail them (prove retry).
	OnPart func(bucket, key string, partNumber int) error

	mu      sync.Mutex
	buckets map[string]*bucket
	nextID  int
	ts      *httptest.Server
}

type bucket struct {
	obj     map[string][]byte
	uploads map[string]*upload
}

type upload struct {
	key   string
	parts map[int]part
}

type part struct {
	data     []byte
	etag     string
	checksum string
}

// New starts a server holding the named buckets.
func New(access, secret string, bucketNames ...string) *Server {
	s := &Server{Access: access, Secret: secret, buckets: map[string]*bucket{}}
	for _, b := range bucketNames {
		s.buckets[b] = &bucket{obj: map[string][]byte{}, uploads: map[string]*upload{}}
	}
	s.ts = httptest.NewServer(s)
	return s
}

func (s *Server) URL() string { return s.ts.URL }
func (s *Server) Close()      { s.ts.Close() }

// Object returns a copy of an object's bytes, or nil if absent.
func (s *Server) Object(bucketName, key string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[bucketName]
	if b == nil {
		return nil
	}
	data, ok := b.obj[key]
	if !ok {
		return nil
	}
	return append([]byte(nil), data...)
}

// PutObject plants an object directly (corruption injection in tests).
func (s *Server) PutObject(bucketName, key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.buckets[bucketName]; b != nil {
		b.obj[key] = append([]byte(nil), data...)
	}
}

// Uploads returns the number of in-progress multipart uploads.
func (s *Server) Uploads(bucketName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.buckets[bucketName]; b != nil {
		return len(b.uploads)
	}
	return 0
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		xmlError(w, http.StatusBadRequest, "IncompleteBody", err.Error())
		return
	}
	if msg := s.checkSignature(r); msg != "" {
		xmlError(w, http.StatusForbidden, "SignatureDoesNotMatch", msg)
		return
	}
	bucketName, key, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/"), "/")
	s.mu.Lock()
	b := s.buckets[bucketName]
	s.mu.Unlock()
	if b == nil {
		xmlError(w, http.StatusNotFound, "NoSuchBucket", bucketName)
		return
	}
	q := r.URL.Query()
	switch {
	case q.Has("uploads") && r.Method == http.MethodPost:
		s.initiateUpload(w, b, bucketName, key)
	case q.Has("uploads") && r.Method == http.MethodGet:
		s.listUploads(w, b, bucketName, q.Get("prefix"))
	case q.Has("uploadId") && q.Has("partNumber") && r.Method == http.MethodPut:
		s.uploadPart(w, r, b, bucketName, key, q.Get("uploadId"), q.Get("partNumber"), body)
	case q.Has("uploadId") && r.Method == http.MethodPost:
		s.completeUpload(w, r, b, bucketName, key, q.Get("uploadId"), body)
	case q.Has("uploadId") && r.Method == http.MethodDelete:
		s.abortUpload(w, b, key, q.Get("uploadId"))
	case q.Has("uploadId") && r.Method == http.MethodGet:
		s.listParts(w, b, key, q.Get("uploadId"))
	case q.Get("list-type") == "2" && r.Method == http.MethodGet:
		s.listObjects(w, b, bucketName, q.Get("prefix"))
	case r.Method == http.MethodPut:
		s.putObject(w, r, b, key, body)
	case r.Method == http.MethodGet:
		s.getObject(w, r, b, key)
	case r.Method == http.MethodHead:
		s.headObject(w, b, key)
	case r.Method == http.MethodDelete:
		s.deleteObject(w, b, key)
	default:
		xmlError(w, http.StatusMethodNotAllowed, "MethodNotAllowed", r.Method)
	}
}

func (s *Server) putObject(w http.ResponseWriter, r *http.Request, b *bucket, key string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.Header.Get("If-None-Match") == "*" {
		if _, exists := b.obj[key]; exists {
			xmlError(w, http.StatusPreconditionFailed, "PreconditionFailed", key)
			return
		}
	}
	b.obj[key] = body
	w.WriteHeader(http.StatusOK)
}

func (s *Server) getObject(w http.ResponseWriter, r *http.Request, b *bucket, key string) {
	s.mu.Lock()
	data, ok := b.obj[key]
	s.mu.Unlock()
	if !ok {
		xmlError(w, http.StatusNotFound, "NoSuchKey", key)
		return
	}
	if rng := r.Header.Get("Range"); rng != "" {
		start, end, ok := parseRange(rng, int64(len(data)))
		if !ok {
			xmlError(w, http.StatusRequestedRangeNotSatisfiable, "InvalidRange", rng)
			return
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, end, len(data)))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(data[start : end+1])
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) headObject(w http.ResponseWriter, b *bucket, key string) {
	s.mu.Lock()
	data, ok := b.obj[key]
	s.mu.Unlock()
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
}

func (s *Server) deleteObject(w http.ResponseWriter, b *bucket, key string) {
	s.mu.Lock()
	delete(b.obj, key)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) listObjects(w http.ResponseWriter, b *bucket, bucketName, prefix string) {
	s.mu.Lock()
	var keys []string
	for k := range b.obj {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("<ListBucketResult><Name>" + bucketName + "</Name>")
	for _, k := range keys {
		sb.WriteString("<Contents><Key>" + xmlEscape(k) + "</Key></Contents>")
	}
	sb.WriteString("<IsTruncated>false</IsTruncated></ListBucketResult>")
	writeXML(w, sb.String())
}

func (s *Server) initiateUpload(w http.ResponseWriter, b *bucket, bucketName, key string) {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("upload-%d", s.nextID)
	b.uploads[id] = &upload{key: key, parts: map[int]part{}}
	s.mu.Unlock()
	writeXML(w, "<InitiateMultipartUploadResult><Bucket>"+bucketName+"</Bucket><Key>"+
		xmlEscape(key)+"</Key><UploadId>"+id+"</UploadId></InitiateMultipartUploadResult>")
}

func (s *Server) listUploads(w http.ResponseWriter, b *bucket, bucketName, prefix string) {
	s.mu.Lock()
	type up struct{ id, key string }
	var ups []up
	for id, u := range b.uploads {
		if strings.HasPrefix(u.key, prefix) {
			ups = append(ups, up{id, u.key})
		}
	}
	s.mu.Unlock()
	sort.Slice(ups, func(i, j int) bool { return ups[i].id < ups[j].id })
	var sb strings.Builder
	sb.WriteString("<ListMultipartUploadsResult><Bucket>" + bucketName + "</Bucket>")
	for _, u := range ups {
		sb.WriteString("<Upload><Key>" + xmlEscape(u.key) + "</Key><UploadId>" + u.id + "</UploadId></Upload>")
	}
	sb.WriteString("</ListMultipartUploadsResult>")
	writeXML(w, sb.String())
}

func (s *Server) uploadPart(w http.ResponseWriter, r *http.Request, b *bucket, bucketName, key, id, partStr string, body []byte) {
	num, err := strconv.Atoi(partStr)
	if err != nil || num < 1 {
		xmlError(w, http.StatusBadRequest, "InvalidArgument", "bad part number")
		return
	}
	if hook := s.OnPart; hook != nil {
		if err := hook(bucketName, key, num); err != nil {
			xmlError(w, http.StatusInternalServerError, "InternalError", err.Error())
			return
		}
	}
	sum := sha256.Sum256(body)
	if want := r.Header.Get("x-amz-checksum-sha256"); want != "" {
		if got := base64.StdEncoding.EncodeToString(sum[:]); got != want {
			xmlError(w, http.StatusBadRequest, "BadDigest", "part checksum mismatch")
			return
		}
	}
	etag := `"` + hex.EncodeToString(sum[:16]) + `"`
	s.mu.Lock()
	u := b.uploads[id]
	if u == nil || u.key != key {
		s.mu.Unlock()
		xmlError(w, http.StatusNotFound, "NoSuchUpload", id)
		return
	}
	u.parts[num] = part{data: body, etag: etag, checksum: r.Header.Get("x-amz-checksum-sha256")}
	s.mu.Unlock()
	w.Header().Set("ETag", etag)
	w.WriteHeader(http.StatusOK)
}

func (s *Server) completeUpload(w http.ResponseWriter, r *http.Request, b *bucket, bucketName, key, id string, body []byte) {
	var req struct {
		Parts []struct {
			PartNumber     int    `xml:"PartNumber"`
			ETag           string `xml:"ETag"`
			ChecksumSHA256 string `xml:"ChecksumSHA256"`
		} `xml:"Part"`
	}
	if err := xml.Unmarshal(body, &req); err != nil {
		xmlError(w, http.StatusBadRequest, "MalformedXML", err.Error())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u := b.uploads[id]
	if u == nil || u.key != key {
		xmlError(w, http.StatusNotFound, "NoSuchUpload", id)
		return
	}
	if r.Header.Get("If-None-Match") == "*" {
		if _, exists := b.obj[key]; exists {
			xmlError(w, http.StatusPreconditionFailed, "PreconditionFailed", key)
			return
		}
	}
	var data []byte
	last := 0
	for _, p := range req.Parts {
		if p.PartNumber <= last {
			xmlError(w, http.StatusBadRequest, "InvalidPartOrder", "part numbers not ascending")
			return
		}
		last = p.PartNumber
		stored, ok := u.parts[p.PartNumber]
		if !ok || stored.etag != p.ETag {
			xmlError(w, http.StatusBadRequest, "InvalidPart", fmt.Sprintf("part %d", p.PartNumber))
			return
		}
		if p.ChecksumSHA256 != "" && stored.checksum != "" && p.ChecksumSHA256 != stored.checksum {
			xmlError(w, http.StatusBadRequest, "InvalidPart", fmt.Sprintf("part %d checksum", p.PartNumber))
			return
		}
		data = append(data, stored.data...)
	}
	if len(req.Parts) == 0 {
		xmlError(w, http.StatusBadRequest, "InvalidRequest", "complete with no parts")
		return
	}
	b.obj[key] = data
	delete(b.uploads, id)
	writeXML(w, "<CompleteMultipartUploadResult><Bucket>"+bucketName+"</Bucket><Key>"+
		xmlEscape(key)+"</Key></CompleteMultipartUploadResult>")
}

func (s *Server) abortUpload(w http.ResponseWriter, b *bucket, key, id string) {
	s.mu.Lock()
	u := b.uploads[id]
	if u != nil && u.key == key {
		delete(b.uploads, id)
		u = nil
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.mu.Unlock()
	xmlError(w, http.StatusNotFound, "NoSuchUpload", id)
}

func (s *Server) listParts(w http.ResponseWriter, b *bucket, key, id string) {
	s.mu.Lock()
	u := b.uploads[id]
	if u == nil || u.key != key {
		s.mu.Unlock()
		xmlError(w, http.StatusNotFound, "NoSuchUpload", id)
		return
	}
	nums := make([]int, 0, len(u.parts))
	for n := range u.parts {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	var sb strings.Builder
	sb.WriteString("<ListPartsResult><Key>" + xmlEscape(key) + "</Key><UploadId>" + id + "</UploadId>")
	for _, n := range nums {
		p := u.parts[n]
		sb.WriteString(fmt.Sprintf("<Part><PartNumber>%d</PartNumber><Size>%d</Size><ETag>%s</ETag><ChecksumSHA256>%s</ChecksumSHA256></Part>",
			n, len(p.data), xmlEscape(p.etag), p.checksum))
	}
	sb.WriteString("<IsTruncated>false</IsTruncated></ListPartsResult>")
	s.mu.Unlock()
	writeXML(w, sb.String())
}

// checkSignature re-derives the request's SigV4 signature from the wire
// form and compares it to the Authorization header. Returns a diagnostic
// on mismatch, "" on success.
func (s *Server) checkSignature(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	if !strings.HasPrefix(auth, "AWS4-HMAC-SHA256 ") {
		return "missing AWS4-HMAC-SHA256 authorization"
	}
	var cred, signedHeaders, sig string
	for _, f := range strings.Split(strings.TrimPrefix(auth, "AWS4-HMAC-SHA256 "), ",") {
		f = strings.TrimSpace(f)
		switch {
		case strings.HasPrefix(f, "Credential="):
			cred = strings.TrimPrefix(f, "Credential=")
		case strings.HasPrefix(f, "SignedHeaders="):
			signedHeaders = strings.TrimPrefix(f, "SignedHeaders=")
		case strings.HasPrefix(f, "Signature="):
			sig = strings.TrimPrefix(f, "Signature=")
		}
	}
	credParts := strings.Split(cred, "/")
	if len(credParts) != 5 || credParts[0] != s.Access {
		return "bad credential scope " + cred
	}
	date, region, service := credParts[1], credParts[2], credParts[3]

	var canonHeaders strings.Builder
	for _, h := range strings.Split(signedHeaders, ";") {
		v := r.Header.Get(h)
		if h == "host" {
			v = r.Host
		}
		canonHeaders.WriteString(h + ":" + strings.TrimSpace(v) + "\n")
	}
	// The wire query re-canonicalized: parsed and re-sorted by key.
	vals := r.URL.Query()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var q strings.Builder
	for i, k := range keys {
		if i > 0 {
			q.WriteByte('&')
		}
		q.WriteString(sigEscape(k) + "=" + sigEscape(vals.Get(k)))
	}
	canonical := strings.Join([]string{
		r.Method, r.URL.EscapedPath(), q.String(), canonHeaders.String(),
		signedHeaders, r.Header.Get("x-amz-content-sha256"),
	}, "\n")
	csum := sha256.Sum256([]byte(canonical))
	toSign := strings.Join([]string{
		"AWS4-HMAC-SHA256", r.Header.Get("x-amz-date"),
		date + "/" + region + "/" + service + "/aws4_request",
		hex.EncodeToString(csum[:]),
	}, "\n")
	mac := func(key []byte, msg string) []byte {
		m := hmac.New(sha256.New, key)
		m.Write([]byte(msg))
		return m.Sum(nil)
	}
	k := mac([]byte("AWS4"+s.Secret), date)
	k = mac(k, region)
	k = mac(k, service)
	k = mac(k, "aws4_request")
	want := hex.EncodeToString(mac(k, toSign))
	if want != sig {
		return "signature mismatch for " + r.Method + " " + r.URL.String()
	}
	return ""
}

func sigEscape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~':
			b.WriteByte(c)
		default:
			const hexdig = "0123456789ABCDEF"
			b.WriteByte('%')
			b.WriteByte(hexdig[c>>4])
			b.WriteByte(hexdig[c&0xf])
		}
	}
	return b.String()
}

func parseRange(spec string, size int64) (start, end int64, ok bool) {
	spec = strings.TrimPrefix(spec, "bytes=")
	a, b, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	start, err := strconv.ParseInt(a, 10, 64)
	if err != nil || start < 0 || start >= size {
		return 0, 0, false
	}
	end = size - 1
	if b != "" {
		end, err = strconv.ParseInt(b, 10, 64)
		if err != nil || end < start {
			return 0, 0, false
		}
		if end >= size {
			end = size - 1
		}
	}
	return start, end, true
}

func writeXML(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, `<?xml version="1.0" encoding="UTF-8"?>`+body)
}

func xmlError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	fmt.Fprintf(w, `<?xml version="1.0" encoding="UTF-8"?><Error><Code>%s</Code><Message>%s</Message></Error>`,
		code, xmlEscape(msg))
}

func xmlEscape(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}
