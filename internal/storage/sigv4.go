package storage

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"sort"
	"strings"
	"time"
)

// AWS Signature Version 4 request signing, stdlib only. Bodies are
// declared UNSIGNED-PAYLOAD: part integrity rides on the explicit
// x-amz-checksum-sha256 headers (the chunk digests the manifest already
// carries), so signing never re-hashes the payload.

const unsignedPayload = "UNSIGNED-PAYLOAD"

// signer holds the static credentials and scope of one endpoint.
type signer struct {
	accessKey, secretKey, sessionToken string
	region, service                    string
}

// sign computes the SigV4 authorization header for req. The request's
// RawQuery must already be in canonical form (sorted, AWS-escaped) —
// buildQuery guarantees that — so the canonical query string is the wire
// query string and the server reconstructs the exact same canonical
// request.
func (s signer) sign(req *http.Request, payloadHash string, now time.Time) {
	amzDate := now.UTC().Format("20060102T150405Z")
	date := amzDate[:8]
	req.Header.Set("x-amz-date", amzDate)
	req.Header.Set("x-amz-content-sha256", payloadHash)
	if s.sessionToken != "" {
		req.Header.Set("x-amz-security-token", s.sessionToken)
	}

	names := []string{"host"}
	for k := range req.Header {
		lk := strings.ToLower(k)
		if strings.HasPrefix(lk, "x-amz-") || lk == "content-type" {
			names = append(names, lk)
		}
	}
	sort.Strings(names)
	var canonHeaders strings.Builder
	for _, h := range names {
		canonHeaders.WriteString(h)
		canonHeaders.WriteByte(':')
		if h == "host" {
			host := req.Host
			if host == "" {
				host = req.URL.Host
			}
			canonHeaders.WriteString(host)
		} else {
			canonHeaders.WriteString(strings.TrimSpace(req.Header.Get(h)))
		}
		canonHeaders.WriteByte('\n')
	}
	signedHeaders := strings.Join(names, ";")

	canonical := strings.Join([]string{
		req.Method,
		awsEscape(req.URL.Path, false),
		req.URL.RawQuery,
		canonHeaders.String(),
		signedHeaders,
		payloadHash,
	}, "\n")

	scope := date + "/" + s.region + "/" + s.service + "/aws4_request"
	toSign := strings.Join([]string{
		"AWS4-HMAC-SHA256", amzDate, scope, hexSHA256([]byte(canonical)),
	}, "\n")

	k := hmacSHA256([]byte("AWS4"+s.secretKey), date)
	k = hmacSHA256(k, s.region)
	k = hmacSHA256(k, s.service)
	k = hmacSHA256(k, "aws4_request")
	sig := hex.EncodeToString(hmacSHA256(k, toSign))

	req.Header.Set("Authorization",
		"AWS4-HMAC-SHA256 Credential="+s.accessKey+"/"+scope+
			", SignedHeaders="+signedHeaders+", Signature="+sig)
}

func hmacSHA256(key []byte, msg string) []byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(msg))
	return h.Sum(nil)
}

func hexSHA256(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// awsEscape percent-encodes s by the SigV4 rules: unreserved characters
// (A-Z a-z 0-9 - . _ ~) stay, everything else becomes %XX — notably
// space is %20, never '+'. Path encoding keeps '/'.
func awsEscape(s string, encodeSlash bool) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~':
			b.WriteByte(c)
		case c == '/' && !encodeSlash:
			b.WriteByte(c)
		default:
			const hexdig = "0123456789ABCDEF"
			b.WriteByte('%')
			b.WriteByte(hexdig[c>>4])
			b.WriteByte(hexdig[c&0xf])
		}
	}
	return b.String()
}

// buildQuery renders key/value pairs as a canonical (sorted,
// AWS-escaped) query string usable both on the wire and in the signed
// canonical request.
func buildQuery(pairs map[string]string) string {
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(awsEscape(k, true))
		b.WriteByte('=')
		b.WriteString(awsEscape(pairs[k], true))
	}
	return b.String()
}
