// Package storage abstracts where generated artifacts live: the local
// filesystem, an S3/MinIO-compatible object store, or memory (tests).
// Destinations are URIs — a bare path or file://path resolves to the
// filesystem backend, s3://bucket/prefix to the object store, mem://space
// to the in-memory backend — and every consumer (the sinks in the root
// package, the job runner, the serve layer) goes through the Backend
// interface instead of the os package.
//
// The interface is shaped by the paper's communication-free invariants
// rather than by generic blob semantics:
//
//   - Small control objects (specs, manifests) are replaced atomically:
//     readers see the old bytes or the new bytes, never a torn write. On
//     the filesystem that is the temp-file + fsync + rename discipline;
//     on S3 a PUT is atomic by contract.
//   - Shards are append-only streams with chunk-granular commits. The
//     filesystem commits with fsync; S3 seals committed chunks into
//     multipart parts that upload concurrently with ongoing generation
//     ("striped" upload), so Durable — the contiguous prefix the store
//     is known to hold — can lag Commit. Checkpoint manifests must only
//     ever record durable offsets, which is exactly what Durable exposes.
//   - Single-shot objects (merged outputs, ShardedSink shards) are
//     invisible until Finalize and can be created exclusively, so a dirty
//     destination is an explicit error instead of a silent truncate.
package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Sentinel errors. ErrNotExist and ErrExists alias the fs package's
// sentinels so call sites keep using errors.Is(err, fs.ErrNotExist)
// regardless of backend.
var (
	ErrNotExist = fs.ErrNotExist
	ErrExists   = fs.ErrExist
	// ErrLocked reports a Lock refused because another holder owns it.
	ErrLocked = errors.New("storage: locked")
	// ErrNoShard reports a ResumeShard that found neither an in-progress
	// upload nor a finalized object matching the committed offset: the
	// partial state is gone (expired multipart upload, deleted staging)
	// and the caller must regenerate from scratch.
	ErrNoShard = errors.New("storage: no resumable shard state")
)

// PutOptions tune an atomic small-object write.
type PutOptions struct {
	// IfAbsent refuses to replace an existing object with ErrExists.
	IfAbsent bool
	// CrashBefore and CorruptAfter name failpoint sites the backend
	// evaluates around its atomic publish step: CrashBefore fires between
	// making the new bytes durable and publishing them (filesystem: between
	// the temp-file fsync and the rename), CorruptAfter fires after a
	// successful publish and truncates the published object before
	// crashing (simulated external rot). Empty names are not evaluated.
	// Keeping the sites inside the backend keeps the job layer's
	// long-standing failpoint names meaningful on every backend.
	CrashBefore  string
	CorruptAfter string
}

// Reader is a readable object handle: sequential reads, random-access
// reads (ranged GETs on S3), and a known size.
type Reader interface {
	io.Reader
	io.ReaderAt
	io.Seeker
	io.Closer
	Size() int64
}

// Writer is a single-shot object writer: bytes stream in, nothing is
// visible at the destination until Finalize, and Abort discards
// everything. Exactly one of Finalize or Abort must be called.
//
// The filesystem implementation also supports io.Seeker/io.WriterAt on
// the staging file, which the binary sinks detect to patch headers.
type Writer interface {
	io.Writer
	Finalize() error
	Abort() error
}

// ShardWriter is a checkpointed append writer for one PE's shard.
//
// Write appends; Commit marks everything appended since the previous
// Commit as one committed chunk and returns the absolute end offset.
// digest is the SHA-256 of the chunk's wire bytes (what Write received),
// which the S3 backend forwards verbatim as the part checksum when the
// chunk becomes a part of its own — the digest the job layer already
// computed for its Merkle manifest, so the hot path never hashes twice.
//
// Durable returns the contiguous committed prefix the backend is known
// to hold (filesystem: the last Commit, synced; S3: the contiguous run
// of parts whose uploads completed) plus any background upload failure.
// Finalize drains outstanding uploads and publishes the object; Close
// releases resources keeping committed state resumable; Abort discards
// the partial object (S3: AbortMultipartUpload).
type ShardWriter interface {
	io.Writer
	Commit(digest [32]byte) (int64, error)
	Durable() (int64, error)
	Finalize() error
	Close() error
	Abort() error
}

// Unlock releases a Lock.
type Unlock interface {
	Release() error
}

// Backend is one storage target. Names passed to it are full
// destinations of its own scheme (the strings Resolve and Join hand
// around), so a name can be logged or stored and resolved again later.
type Backend interface {
	// Scheme is the URI scheme ("file", "s3", "mem").
	Scheme() string
	// Local reports whether objects are plain local files that os-level
	// tooling (and the byte-level fault injectors) can touch in place.
	Local() bool
	// PartialReads reports whether the committed prefix of an in-progress
	// shard can be read back before Finalize. The filesystem can (the
	// resume audit re-hashes committed chunks); S3 cannot (parts of an
	// open multipart upload are unreadable), so resume there trusts the
	// server-verified part checksums instead.
	PartialReads() bool

	Open(name string) (Reader, error)
	Get(name string) ([]byte, error)
	// Stat returns the object's size.
	Stat(name string) (int64, error)
	// List returns the names under prefix (recursively), sorted.
	List(prefix string) ([]string, error)
	Delete(name string) error
	// EnsureDir prepares a directory-like destination (no-op on flat
	// object stores).
	EnsureDir(name string) error

	// Put atomically replaces name with data.
	Put(name string, data []byte, opts PutOptions) error
	// Create opens a single-shot writer; excl makes Finalize (and, where
	// the backend can, Create itself) fail with ErrExists if name exists.
	Create(name string, excl bool) (Writer, error)

	// CreateShard starts a fresh checkpointed shard at name.
	CreateShard(name string) (ShardWriter, error)
	// ResumeShard reopens a shard whose committed prefix ends at offset,
	// discarding anything past it. ErrNoShard means no resumable state
	// survives and the caller must start over with CreateShard.
	ResumeShard(name string, offset int64) (ShardWriter, error)

	// Lock takes an exclusive advisory lock on name, failing fast with an
	// error wrapping ErrLocked when held elsewhere.
	Lock(name string) (Unlock, error)
}

// Resolve parses a destination URI and returns the backend that serves
// it. Names keep their full spelling (scheme included) through every
// Backend call, so a destination can be stored, logged, joined with
// Join, and resolved again later without loss.
func Resolve(dest string) (Backend, error) {
	switch {
	case strings.HasPrefix(dest, "s3://"):
		return newS3FromEnv()
	case strings.HasPrefix(dest, "mem://"):
		return memBackendFor(dest)
	case strings.HasPrefix(dest, "file://"):
		return fsBackend{}, nil
	case strings.Contains(dest, "://"):
		return nil, fmt.Errorf("storage: unknown scheme in destination %q (want a path, file://, s3:// or mem://)", dest)
	default:
		return fsBackend{}, nil
	}
}

// Join joins destination path elements, URI-aware: scheme-prefixed
// destinations join with "/", bare paths with the OS separator. The
// scheme and authority of a URI are never cleaned away.
func Join(dest string, elem ...string) string {
	i := strings.Index(dest, "://")
	if i < 0 {
		return filepath.Join(append([]string{dest}, elem...)...)
	}
	scheme, rest := dest[:i+3], dest[i+3:]
	return scheme + path.Join(append([]string{rest}, elem...)...)
}

// Base returns the last path element of a destination.
func Base(dest string) string {
	if i := strings.Index(dest, "://"); i >= 0 {
		return path.Base(dest[i+3:])
	}
	return filepath.Base(dest)
}

// fsPath strips an optional file:// prefix.
func fsPath(name string) string { return strings.TrimPrefix(name, "file://") }

// --- upload observability ---

// Stats is a snapshot of the striped uploader's counters — the test and
// metrics hook that makes the upload/generation overlap observable.
type Stats struct {
	// PartsUploaded counts completed part uploads.
	PartsUploaded int64
	// PartRetries counts part upload attempts retried after a transient
	// failure.
	PartRetries int64
	// PartsInFlight is the number of part uploads currently running.
	PartsInFlight int64
	// MaxInFlight is the high-water mark of PartsInFlight.
	MaxInFlight int64
	// ChecksumReused counts parts whose checksum was taken verbatim from
	// the committed chunk digest (no re-hash).
	ChecksumReused int64
	// ChecksumRehashed counts parts whose checksum had to be recomputed
	// because several chunks coalesced into one part.
	ChecksumRehashed int64
	// BytesUploaded counts part payload bytes successfully uploaded.
	BytesUploaded int64
}

var stats struct {
	partsUploaded, partRetries, partsInFlight, maxInFlight atomic.Int64
	checksumReused, checksumRehashed, bytesUploaded        atomic.Int64
}

// UploadStats returns a snapshot of the uploader counters.
func UploadStats() Stats {
	return Stats{
		PartsUploaded:    stats.partsUploaded.Load(),
		PartRetries:      stats.partRetries.Load(),
		PartsInFlight:    stats.partsInFlight.Load(),
		MaxInFlight:      stats.maxInFlight.Load(),
		ChecksumReused:   stats.checksumReused.Load(),
		ChecksumRehashed: stats.checksumRehashed.Load(),
		BytesUploaded:    stats.bytesUploaded.Load(),
	}
}

// ResetUploadStats zeroes the uploader counters (tests).
func ResetUploadStats() {
	stats.partsUploaded.Store(0)
	stats.partRetries.Store(0)
	stats.partsInFlight.Store(0)
	stats.maxInFlight.Store(0)
	stats.checksumReused.Store(0)
	stats.checksumRehashed.Store(0)
	stats.bytesUploaded.Store(0)
}

// partUploadObserver, when installed, receives the wall seconds of
// every completed part upload attempt — serve feeds it into the
// kagen_storage_part_upload_seconds histogram. Process-global like the
// upload counters; nil (one atomic load) when nothing is scraping.
var partUploadObserver atomic.Pointer[func(seconds float64)]

// SetPartUploadObserver installs (or, with nil, removes) the process
// part-upload latency observer.
func SetPartUploadObserver(fn func(seconds float64)) {
	if fn == nil {
		partUploadObserver.Store(nil)
		return
	}
	partUploadObserver.Store(&fn)
}

func observePartUpload(seconds float64) {
	if fn := partUploadObserver.Load(); fn != nil {
		(*fn)(seconds)
	}
}

func trackInFlight(delta int64) {
	n := stats.partsInFlight.Add(delta)
	if delta > 0 {
		for {
			max := stats.maxInFlight.Load()
			if n <= max || stats.maxInFlight.CompareAndSwap(max, n) {
				break
			}
		}
	}
}

// --- mem registry ---

var (
	memMu     sync.Mutex
	memSpaces = map[string]*memSpace{}
)

// memBackendFor returns the backend of a mem:// destination's space,
// creating it on first use. Spaces live for the process — exactly the
// lifetime unit tests need.
func memBackendFor(dest string) (Backend, error) {
	rest := strings.TrimPrefix(dest, "mem://")
	space := rest
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		space = rest[:i]
	}
	if space == "" {
		return nil, fmt.Errorf("storage: mem destination %q needs a space name (mem://space/...)", dest)
	}
	memMu.Lock()
	defer memMu.Unlock()
	sp, ok := memSpaces[space]
	if !ok {
		sp = newMemSpace(space)
		memSpaces[space] = sp
	}
	return sp, nil
}

// ResetMem drops every in-memory space (tests).
func ResetMem() {
	memMu.Lock()
	defer memMu.Unlock()
	memSpaces = map[string]*memSpace{}
}

// sortedNames sorts a name list in place and returns it.
func sortedNames(names []string) []string {
	sort.Strings(names)
	return names
}
