package storage_test

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/storage"
	"repro/internal/storage/s3test"
)

// setupS3 starts an in-process S3 server with one bucket and points the
// environment-driven backend at it. partSize is KAGEN_S3_PART_SIZE.
func setupS3(t *testing.T, partSize int) *s3test.Server {
	t.Helper()
	srv := s3test.New("test-access", "test-secret", "bkt")
	t.Cleanup(srv.Close)
	t.Setenv("KAGEN_S3_ENDPOINT", srv.URL())
	t.Setenv("AWS_ACCESS_KEY_ID", "test-access")
	t.Setenv("AWS_SECRET_ACCESS_KEY", "test-secret")
	t.Setenv("AWS_REGION", "us-east-1")
	t.Setenv("KAGEN_S3_PART_SIZE", fmt.Sprint(partSize))
	t.Setenv("KAGEN_S3_CONCURRENCY", "4")
	t.Setenv("KAGEN_S3_MAX_ATTEMPTS", "4")
	return srv
}

// backendCases returns one destination root per backend.
func backendCases(t *testing.T) map[string]string {
	t.Helper()
	setupS3(t, 16)
	storage.ResetMem()
	return map[string]string{
		"fs":  t.TempDir(),
		"mem": "mem://conformance",
		"s3":  "s3://bkt/conformance",
	}
}

func sum(b []byte) [32]byte { return sha256.Sum256(b) }

func TestBackendObjects(t *testing.T) {
	for name, root := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			be, err := storage.Resolve(root)
			if err != nil {
				t.Fatal(err)
			}
			obj := storage.Join(root, "dir", "a.txt")
			if _, err := be.Get(obj); !errors.Is(err, storage.ErrNotExist) {
				t.Fatalf("Get missing: got %v, want ErrNotExist", err)
			}
			if err := be.Put(obj, []byte("hello"), storage.PutOptions{}); err != nil {
				t.Fatal(err)
			}
			if b, err := be.Get(obj); err != nil || string(b) != "hello" {
				t.Fatalf("Get: %q, %v", b, err)
			}
			if n, err := be.Stat(obj); err != nil || n != 5 {
				t.Fatalf("Stat: %d, %v", n, err)
			}
			// IfAbsent refuses to replace.
			if err := be.Put(obj, []byte("x"), storage.PutOptions{IfAbsent: true}); !errors.Is(err, storage.ErrExists) {
				t.Fatalf("Put IfAbsent over existing: got %v, want ErrExists", err)
			}
			// Plain Put replaces atomically.
			if err := be.Put(obj, []byte("world!"), storage.PutOptions{}); err != nil {
				t.Fatal(err)
			}
			names, err := be.List(storage.Join(root, "dir"))
			if err != nil || len(names) != 1 || names[0] != obj {
				t.Fatalf("List: %v, %v", names, err)
			}
			if err := be.Delete(obj); err != nil {
				t.Fatal(err)
			}
			if _, err := be.Stat(obj); !errors.Is(err, storage.ErrNotExist) {
				t.Fatalf("Stat after delete: got %v, want ErrNotExist", err)
			}
		})
	}
}

func TestBackendReader(t *testing.T) {
	payload := []byte("0123456789abcdefghijklmnopqrstuvwxyz")
	for name, root := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			be, err := storage.Resolve(root)
			if err != nil {
				t.Fatal(err)
			}
			obj := storage.Join(root, "r.bin")
			if err := be.Put(obj, payload, storage.PutOptions{}); err != nil {
				t.Fatal(err)
			}
			r, err := be.Open(obj)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.Size() != int64(len(payload)) {
				t.Fatalf("Size: %d", r.Size())
			}
			all, err := io.ReadAll(r)
			if err != nil || string(all) != string(payload) {
				t.Fatalf("ReadAll: %q, %v", all, err)
			}
			mid := make([]byte, 10)
			if _, err := r.ReadAt(mid, 10); err != nil || string(mid) != "abcdefghij" {
				t.Fatalf("ReadAt: %q, %v", mid, err)
			}
			if _, err := r.Seek(30, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			tail, err := io.ReadAll(r)
			if err != nil || string(tail) != "uvwxyz" {
				t.Fatalf("Seek+ReadAll: %q, %v", tail, err)
			}
		})
	}
}

func TestBackendCreateExclusive(t *testing.T) {
	for name, root := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			be, err := storage.Resolve(root)
			if err != nil {
				t.Fatal(err)
			}
			obj := storage.Join(root, "out.txt")
			w, err := be.Create(obj, true)
			if err != nil {
				t.Fatal(err)
			}
			io.WriteString(w, "first")
			if err := w.Finalize(); err != nil {
				t.Fatal(err)
			}
			if b, _ := be.Get(obj); string(b) != "first" {
				t.Fatalf("finalized object: %q", b)
			}
			// Dirty destination: exclusive create refuses.
			if _, err := be.Create(obj, true); !errors.Is(err, storage.ErrExists) {
				t.Fatalf("excl Create over existing: got %v, want ErrExists", err)
			} else if !strings.Contains(err.Error(), "refusing to overwrite") {
				t.Fatalf("error should explain the refusal: %v", err)
			}
			// Abort leaves nothing.
			obj2 := storage.Join(root, "aborted.txt")
			w2, err := be.Create(obj2, true)
			if err != nil {
				t.Fatal(err)
			}
			io.WriteString(w2, "garbage")
			if err := w2.Abort(); err != nil {
				t.Fatal(err)
			}
			if _, err := be.Stat(obj2); !errors.Is(err, storage.ErrNotExist) {
				t.Fatalf("aborted object exists: %v", err)
			}
			// Non-exclusive create replaces.
			w3, err := be.Create(obj, false)
			if err != nil {
				t.Fatal(err)
			}
			io.WriteString(w3, "second")
			if err := w3.Finalize(); err != nil {
				t.Fatal(err)
			}
			if b, _ := be.Get(obj); string(b) != "second" {
				t.Fatalf("replaced object: %q", b)
			}
		})
	}
}

func TestBackendShardLifecycle(t *testing.T) {
	chunks := [][]byte{
		[]byte("chunk-zero-is-long-enough-to-seal"), // >= the 16-byte s3 part size
		[]byte("chunk-one-also-comfortably-long"),
		[]byte("chunk-two-the-last-one"),
	}
	for name, root := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			be, err := storage.Resolve(root)
			if err != nil {
				t.Fatal(err)
			}
			shard := storage.Join(root, "shards", "pe0.bin")
			w, err := be.CreateShard(shard)
			if err != nil {
				t.Fatal(err)
			}
			var want []byte
			var off int64
			for _, c := range chunks[:2] {
				if _, err := w.Write(c); err != nil {
					t.Fatal(err)
				}
				if off, err = w.Commit(sum(c)); err != nil {
					t.Fatal(err)
				}
				want = append(want, c...)
			}
			if off != int64(len(want)) {
				t.Fatalf("Commit offset %d, want %d", off, len(want))
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			// After Close every launched upload has drained; Durable must
			// cover everything committed (fs: synced, s3: sealed parts).
			dur, err := w.Durable()
			if err != nil {
				t.Fatal(err)
			}
			if dur != off {
				t.Fatalf("Durable after Close: %d, want %d", dur, off)
			}

			// Resume at the committed offset, append the last chunk, finalize.
			w2, err := be.ResumeShard(shard, dur)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w2.Write(chunks[2]); err != nil {
				t.Fatal(err)
			}
			if _, err := w2.Commit(sum(chunks[2])); err != nil {
				t.Fatal(err)
			}
			want = append(want, chunks[2]...)
			if err := w2.Finalize(); err != nil {
				t.Fatal(err)
			}
			w2.Close()
			got, err := be.Get(shard)
			if err != nil || string(got) != string(want) {
				t.Fatalf("final shard: %d bytes, %v, want %d", len(got), err, len(want))
			}

			// A resume offset the store can't back is an explicit error.
			if _, err := be.ResumeShard(storage.Join(root, "shards", "missing.bin"), 10); err == nil {
				t.Fatal("ResumeShard on missing shard succeeded")
			}
		})
	}
}

func TestBackendLock(t *testing.T) {
	for name, root := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			be, err := storage.Resolve(root)
			if err != nil {
				t.Fatal(err)
			}
			lk := storage.Join(root, "worker.lock")
			l, err := be.Lock(lk)
			if err != nil {
				t.Fatal(err)
			}
			if name == "fs" {
				// flock exclusion is per file description, not per process:
				// a second in-process acquire would succeed. The cross-process
				// contract is covered by the job layer's crash tests.
				l.Release()
				return
			}
			if _, err := be.Lock(lk); !errors.Is(err, storage.ErrLocked) {
				t.Fatalf("double lock: got %v, want ErrLocked", err)
			}
			if err := l.Release(); err != nil {
				t.Fatal(err)
			}
			l2, err := be.Lock(lk)
			if err != nil {
				t.Fatalf("relock after release: %v", err)
			}
			l2.Release()
		})
	}
}

func TestS3LockTTLTakeover(t *testing.T) {
	setupS3(t, 1<<20)
	t.Setenv("KAGEN_S3_LOCK_TTL", "1ns")
	be, err := storage.Resolve("s3://bkt/x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Lock("s3://bkt/locks/w0"); err != nil {
		t.Fatal(err)
	}
	// The first lease expired instantly; a second worker breaks it.
	l2, err := be.Lock("s3://bkt/locks/w0")
	if err != nil {
		t.Fatalf("takeover of expired lease: %v", err)
	}
	l2.Release()
}

// TestStripedUploadOverlap proves parts upload concurrently with ongoing
// generation: the server blocks part 1 until the writer has sealed and
// launched two more parts behind it.
func TestStripedUploadOverlap(t *testing.T) {
	srv := setupS3(t, 8)
	storage.ResetUploadStats()
	release := make(chan struct{})
	var blocked atomic.Bool
	srv.OnPart = func(_, _ string, num int) error {
		if num == 1 && blocked.CompareAndSwap(false, true) {
			<-release
		}
		return nil
	}
	be, err := storage.Resolve("s3://bkt/x")
	if err != nil {
		t.Fatal(err)
	}
	w, err := be.CreateShard("s3://bkt/striped/pe0.bin")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	// Part 1 is stuck on the server; parts 2 and 3 seal and launch while
	// it hangs — generation never waits for upload.
	for i := 0; i < 3; i++ {
		c := []byte(fmt.Sprintf("chunk-%d-padding-past-part-size", i))
		w.Write(c)
		if _, err := w.Commit(sum(c)); err != nil {
			t.Fatal(err)
		}
		want = append(want, c...)
	}
	// Wait until all three uploads are genuinely in flight.
	deadline := time.Now().Add(5 * time.Second)
	for storage.UploadStats().PartsInFlight < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("uploads never overlapped: %+v", storage.UploadStats())
		}
		time.Sleep(time.Millisecond)
	}
	if dur, _ := w.Durable(); dur != 0 {
		t.Fatalf("Durable %d while part 1 incomplete, want 0", dur)
	}
	close(release)
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if got := srv.Object("bkt", "striped/pe0.bin"); string(got) != string(want) {
		t.Fatalf("striped object mismatch: %d bytes, want %d", len(got), len(want))
	}
	st := storage.UploadStats()
	if st.MaxInFlight < 3 {
		t.Fatalf("MaxInFlight %d, want >= 3", st.MaxInFlight)
	}
	if st.ChecksumReused != 3 || st.ChecksumRehashed != 0 {
		t.Fatalf("checksums: reused %d rehashed %d, want 3/0 — part checksums must be the chunk digests", st.ChecksumReused, st.ChecksumRehashed)
	}
}

// TestPartRetry: a transiently failing part upload is retried with
// backoff and the shard still finalizes byte-perfect.
func TestPartRetry(t *testing.T) {
	srv := setupS3(t, 8)
	storage.ResetUploadStats()
	var failed atomic.Bool
	srv.OnPart = func(_, _ string, num int) error {
		if num == 2 && failed.CompareAndSwap(false, true) {
			return errors.New("injected 500")
		}
		return nil
	}
	be, _ := storage.Resolve("s3://bkt/x")
	w, err := be.CreateShard("s3://bkt/retry/pe0.bin")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 3; i++ {
		c := []byte(fmt.Sprintf("retry-chunk-%d-padded-out", i))
		w.Write(c)
		if _, err := w.Commit(sum(c)); err != nil {
			t.Fatal(err)
		}
		want = append(want, c...)
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if got := srv.Object("bkt", "retry/pe0.bin"); string(got) != string(want) {
		t.Fatalf("object mismatch after retry: %d bytes, want %d", len(got), len(want))
	}
	if st := storage.UploadStats(); st.PartRetries < 1 {
		t.Fatalf("PartRetries %d, want >= 1", st.PartRetries)
	}
}

// TestPartPermanentFailure: a part that keeps failing surfaces as an
// error from the writer, and Abort cleans the multipart upload up.
func TestPartPermanentFailure(t *testing.T) {
	srv := setupS3(t, 8)
	t.Setenv("KAGEN_S3_MAX_ATTEMPTS", "2")
	failpoint.Arm("storage/s3-part-fail", 1)
	defer failpoint.Reset()
	be, _ := storage.Resolve("s3://bkt/x")
	w, err := be.CreateShard("s3://bkt/permfail/pe0.bin")
	if err != nil {
		t.Fatal(err)
	}
	c := []byte("doomed-chunk-padded-past-size")
	w.Write(c)
	w.Commit(sum(c))
	err = w.Finalize()
	if err == nil {
		t.Fatal("Finalize succeeded despite permanent part failure")
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := srv.Uploads("bkt"); n != 0 {
		t.Fatalf("%d uploads left after Abort, want 0", n)
	}
	if srv.Object("bkt", "permfail/pe0.bin") != nil {
		t.Fatal("aborted shard became an object")
	}
}

// TestS3FinalizeCrashResume: a crash between the last part upload and
// CompleteMultipartUpload leaves every part on the store; resuming at
// the full committed offset completes without re-uploading anything.
func TestS3FinalizeCrashResume(t *testing.T) {
	srv := setupS3(t, 8)
	be, _ := storage.Resolve("s3://bkt/x")
	w, err := be.CreateShard("s3://bkt/crash/pe0.bin")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	var off int64
	for i := 0; i < 2; i++ {
		c := []byte(fmt.Sprintf("crash-chunk-%d-padded-out", i))
		w.Write(c)
		off, _ = w.Commit(sum(c))
		want = append(want, c...)
	}
	failpoint.Arm("storage/s3-finalize-crash", 1)
	err = w.Finalize()
	failpoint.Reset()
	if err == nil || !errors.Is(err, failpoint.ErrCrash) {
		t.Fatalf("Finalize: got %v, want simulated crash", err)
	}
	w.Close()

	w2, err := be.ResumeShard("s3://bkt/crash/pe0.bin", off)
	if err != nil {
		t.Fatal(err)
	}
	if dur, _ := w2.Durable(); dur != off {
		t.Fatalf("resumed Durable %d, want %d", dur, off)
	}
	if err := w2.Finalize(); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if got := srv.Object("bkt", "crash/pe0.bin"); string(got) != string(want) {
		t.Fatalf("resumed object mismatch: %d bytes, want %d", len(got), len(want))
	}
	// Crash after Complete but before the caller's manifest write: the
	// finalized object at exactly the committed offset resumes as a
	// no-op writer.
	w3, err := be.ResumeShard("s3://bkt/crash/pe0.bin", int64(len(want)))
	if err != nil {
		t.Fatalf("resume of finalized shard: %v", err)
	}
	if err := w3.Finalize(); err != nil {
		t.Fatal(err)
	}
}

// TestS3ChunkCoalescing: chunks smaller than the part size coalesce into
// one part whose checksum is recomputed (counted, not silently hashed).
func TestS3ChunkCoalescing(t *testing.T) {
	srv := setupS3(t, 64)
	storage.ResetUploadStats()
	be, _ := storage.Resolve("s3://bkt/x")
	w, err := be.CreateShard("s3://bkt/coalesce/pe0.bin")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 8; i++ {
		c := []byte(fmt.Sprintf("tiny-%d|", i)) // 7 bytes: 10 chunks per 64-byte part
		w.Write(c)
		if _, err := w.Commit(sum(c)); err != nil {
			t.Fatal(err)
		}
		want = append(want, c...)
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if got := srv.Object("bkt", "coalesce/pe0.bin"); string(got) != string(want) {
		t.Fatalf("coalesced object mismatch: %q", got)
	}
	if st := storage.UploadStats(); st.ChecksumRehashed == 0 {
		t.Fatalf("coalesced parts must count rehashes: %+v", st)
	}
}

func TestResolveAndJoin(t *testing.T) {
	if _, err := storage.Resolve("ftp://x/y"); err == nil {
		t.Fatal("unknown scheme resolved")
	}
	for _, tc := range []struct{ dest, elem, want string }{
		{"s3://bkt/prefix", "shards", "s3://bkt/prefix/shards"},
		{"mem://space/j", "a.txt", "mem://space/j/a.txt"},
		{filepath.Join("x", "y"), "z", filepath.Join("x", "y", "z")},
	} {
		if got := storage.Join(tc.dest, tc.elem); got != tc.want {
			t.Errorf("Join(%q, %q) = %q, want %q", tc.dest, tc.elem, got, tc.want)
		}
	}
	if storage.Base("s3://bkt/a/b.txt") != "b.txt" {
		t.Error("Base on URI")
	}
}
