// Package validate checks generated instances against the defining
// properties and the distributional theory of their network models. It is
// the acceptance layer a benchmark pipeline runs before trusting a
// generator: structural invariants (exact counts, no self-loops, the
// partitioned-output symmetry) and statistical expectations (degree
// concentration, power-law tails) with explicit tolerances.
package validate

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Check is one named validation with its outcome.
type Check struct {
	Name   string
	Passed bool
	Detail string
}

func check(name string, passed bool, format string, args ...any) Check {
	return Check{Name: name, Passed: passed, Detail: fmt.Sprintf(format, args...)}
}

// AllPassed reports whether every check passed.
func AllPassed(checks []Check) bool {
	for _, c := range checks {
		if !c.Passed {
			return false
		}
	}
	return true
}

// Failed returns the subset of failed checks.
func Failed(checks []Check) []Check {
	var out []Check
	for _, c := range checks {
		if !c.Passed {
			out = append(out, c)
		}
	}
	return out
}

// structural runs the invariants shared by all simple-graph models.
func structural(el *graph.EdgeList, wantSymmetric bool) []Check {
	checks := []Check{
		check("no-self-loops", el.CountSelfLoops() == 0,
			"%d self loops", el.CountSelfLoops()),
		check("no-duplicate-edges", el.CountDuplicates() == 0,
			"%d duplicates", el.CountDuplicates()),
	}
	inRange := true
	for _, e := range el.Edges {
		if e.U >= el.N || e.V >= el.N {
			inRange = false
			break
		}
	}
	checks = append(checks, check("endpoints-in-range", inRange, "n = %d", el.N))
	if !inRange {
		// Degree-based checks would index out of range; stop here.
		return checks
	}
	if wantSymmetric {
		set := make(map[graph.Edge]bool, el.Len())
		for _, e := range el.Edges {
			set[e] = true
		}
		sym := true
		for _, e := range el.Edges {
			if !set[graph.Edge{U: e.V, V: e.U}] {
				sym = false
				break
			}
		}
		checks = append(checks, check("partitioned-output-symmetry", sym,
			"every edge must appear once per endpoint"))
	}
	return checks
}

// endpointsOK reports whether the endpoints-in-range structural check
// passed (degree-based checks must not run otherwise).
func endpointsOK(checks []Check) bool {
	for _, c := range checks {
		if c.Name == "endpoints-in-range" {
			return c.Passed
		}
	}
	return true
}

// GNM validates a uniform G(n,m) instance.
func GNM(el *graph.EdgeList, n, m uint64, directed bool) []Check {
	checks := structural(el, !directed)
	if !endpointsOK(checks) {
		return checks
	}
	wantLen := m
	if !directed {
		wantLen = 2 * m
	}
	checks = append(checks, check("exact-edge-count", uint64(el.Len()) == wantLen,
		"%d entries, want %d", el.Len(), wantLen))
	// Degree concentration: in G(n,m) degrees are hypergeometric-ish with
	// mean 2m/n (undirected) or m/n (out-degree, directed); the maximum
	// should stay within a generous band around the Poisson tail.
	stats := graph.ComputeStats(el)
	mean := float64(m) / float64(n)
	if !directed {
		mean = 2 * float64(m) / float64(n)
	}
	bound := mean + 12*math.Sqrt(mean+1) + 12
	checks = append(checks, check("max-degree-band", float64(stats.MaxDegree) < bound,
		"max degree %d, bound %.1f (mean %.2f)", stats.MaxDegree, bound, mean))
	return checks
}

// GNP validates a Gilbert G(n,p) instance.
func GNP(el *graph.EdgeList, n uint64, p float64, directed bool) []Check {
	checks := structural(el, !directed)
	if !endpointsOK(checks) {
		return checks
	}
	universe := float64(n) * float64(n-1)
	if !directed {
		universe /= 2
	}
	mean := universe * p
	sigma := math.Sqrt(mean*(1-p)) + 1
	entries := float64(el.Len())
	if !directed {
		entries /= 2
	}
	checks = append(checks, check("edge-count-concentration",
		math.Abs(entries-mean) <= 8*sigma,
		"%.0f edges, want %.0f +- %.0f", entries, mean, 8*sigma))
	return checks
}

// RGG validates a random geometric graph (dim 2 or 3) with radius r.
func RGG(el *graph.EdgeList, n uint64, r float64, dim int) []Check {
	checks := structural(el, true)
	if !endpointsOK(checks) {
		return checks
	}
	stats := graph.ComputeStats(el)
	// Expected interior degree: n * volume of the r-ball (paper §2.1.2);
	// boundary effects only reduce it.
	var ball float64
	if dim == 2 {
		ball = math.Pi * r * r
	} else {
		ball = 4.0 / 3.0 * math.Pi * r * r * r
	}
	want := float64(n) * ball
	checks = append(checks, check("avg-degree-band",
		stats.AvgDegree > want*0.6 && stats.AvgDegree < want*1.1,
		"avg degree %.2f, interior expectation %.2f", stats.AvgDegree, want))
	return checks
}

// RDG validates a periodic random Delaunay graph.
func RDG(el *graph.EdgeList, n uint64, dim int) []Check {
	checks := structural(el, true)
	if !endpointsOK(checks) {
		return checks
	}
	stats := graph.ComputeStats(el)
	if dim == 2 {
		// Periodic planar triangulation: average degree exactly 6.
		checks = append(checks, check("planar-average-degree",
			math.Abs(stats.AvgDegree-6) < 0.2,
			"avg degree %.3f, want 6 (torus Euler formula)", stats.AvgDegree))
	} else {
		// Poisson-Delaunay in 3-D: 2 + 48 pi^2 / 35 ~ 15.54.
		want := 2 + 48*math.Pi*math.Pi/35
		checks = append(checks, check("poisson-delaunay-degree",
			math.Abs(stats.AvgDegree-want) < 1.0,
			"avg degree %.3f, want ~%.2f", stats.AvgDegree, want))
	}
	checks = append(checks, check("connected", stats.Components == 1,
		"%d components, a Delaunay graph is connected", stats.Components))
	return checks
}

// RHG validates a random hyperbolic graph against its target degree and
// power-law exponent.
func RHG(el *graph.EdgeList, n uint64, avgDeg, gamma float64) []Check {
	checks := structural(el, true)
	if !endpointsOK(checks) {
		return checks
	}
	stats := graph.ComputeStats(el)
	checks = append(checks, check("avg-degree-band",
		stats.AvgDegree > avgDeg*0.4 && stats.AvgDegree < avgDeg*1.8,
		"avg degree %.2f, target %.1f (asymptotic calibration)", stats.AvgDegree, avgDeg))
	est := graph.PowerLawExponentMLE(graph.OutDegrees(el), 2*uint64(avgDeg))
	checks = append(checks, check("power-law-exponent",
		!math.IsNaN(est) && est > gamma-0.8 && est < gamma+1.0,
		"MLE exponent %.2f, target %.1f", est, gamma))
	return checks
}

// BA validates a Barabási–Albert instance with d edges per vertex.
func BA(el *graph.EdgeList, n, d uint64) []Check {
	var checks []Check
	checks = append(checks, check("edge-count", uint64(el.Len()) == n*d,
		"%d edges, want %d", el.Len(), n*d))
	outDeg := graph.OutDegrees(el)
	exact := true
	for _, dd := range outDeg {
		if dd != d {
			exact = false
			break
		}
	}
	checks = append(checks, check("uniform-out-degree", exact,
		"every vertex must emit exactly %d edges", d))
	noFuture := true
	for _, e := range el.Edges {
		if e.V > e.U {
			noFuture = false
			break
		}
	}
	checks = append(checks, check("attaches-backwards", noFuture,
		"targets must precede sources"))
	inDeg := make([]uint64, el.N)
	for _, e := range el.Edges {
		inDeg[e.V]++
	}
	est := graph.PowerLawExponentMLE(inDeg, 2*d)
	checks = append(checks, check("power-law-in-degree",
		!math.IsNaN(est) && est > 2.2 && est < 3.8,
		"MLE exponent %.2f, want ~3", est))
	return checks
}

// RMAT validates an R-MAT instance (duplicates and loops permitted).
func RMAT(el *graph.EdgeList, scale uint, m uint64) []Check {
	var checks []Check
	checks = append(checks, check("edge-count", uint64(el.Len()) == m,
		"%d edges, want %d", el.Len(), m))
	n := uint64(1) << scale
	inRange := true
	for _, e := range el.Edges {
		if e.U >= n || e.V >= n {
			inRange = false
			break
		}
	}
	checks = append(checks, check("endpoints-in-range", inRange, "n = %d", n))
	stats := graph.ComputeStats(el)
	checks = append(checks, check("skewed-degrees",
		float64(stats.MaxDegree) > 4*stats.AvgDegree,
		"max %d vs avg %.2f: R-MAT must be skewed", stats.MaxDegree, stats.AvgDegree))
	return checks
}

// SBM validates a planted-partition instance.
func SBM(el *graph.EdgeList, blockSizes []uint64, pIn, pOut float64) []Check {
	checks := structural(el, true)
	if !endpointsOK(checks) {
		return checks
	}
	starts := make([]uint64, len(blockSizes)+1)
	for i, s := range blockSizes {
		starts[i+1] = starts[i] + s
	}
	blockOf := func(v uint64) int {
		for b := 0; b < len(blockSizes); b++ {
			if v < starts[b+1] {
				return b
			}
		}
		return len(blockSizes) - 1
	}
	var intra, inter float64
	for _, e := range el.UndirectedSet() {
		if blockOf(e.U) == blockOf(e.V) {
			intra++
		} else {
			inter++
		}
	}
	var wantIntra, wantInter float64
	for i, si := range blockSizes {
		wantIntra += float64(si) * float64(si-1) / 2 * pIn
		for j := i + 1; j < len(blockSizes); j++ {
			wantInter += float64(si) * float64(blockSizes[j]) * pOut
		}
	}
	tolIntra := 8*math.Sqrt(wantIntra) + 8
	tolInter := 8*math.Sqrt(wantInter) + 8
	checks = append(checks,
		check("intra-block-density", math.Abs(intra-wantIntra) <= tolIntra,
			"%.0f intra edges, want %.0f +- %.0f", intra, wantIntra, tolIntra),
		check("inter-block-density", math.Abs(inter-wantInter) <= tolInter,
			"%.0f inter edges, want %.0f +- %.0f", inter, wantInter, tolInter))
	return checks
}
