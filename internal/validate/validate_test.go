package validate

import (
	"testing"

	"repro/internal/ba"
	"repro/internal/gnm"
	"repro/internal/gnp"
	"repro/internal/graph"
	"repro/internal/rdg"
	"repro/internal/rgg"
	"repro/internal/rhg"
	"repro/internal/rmat"
	"repro/internal/sbm"
)

func requireAllPassed(t *testing.T, name string, checks []Check) {
	t.Helper()
	for _, c := range Failed(checks) {
		t.Errorf("%s: check %q failed: %s", name, c.Name, c.Detail)
	}
}

// TestGeneratedInstancesValidate: every generator's output passes its own
// model validation.
func TestGeneratedInstancesValidate(t *testing.T) {
	{
		p := gnm.Params{N: 4000, M: 30000, Directed: false, Seed: 1, Chunks: 8}
		el, err := gnm.Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireAllPassed(t, "gnm", GNM(el, p.N, p.M, false))
	}
	{
		p := gnp.Params{N: 4000, P: 0.004, Directed: true, Seed: 2, Chunks: 8}
		el, err := gnp.Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireAllPassed(t, "gnp", GNP(el, p.N, p.P, true))
	}
	{
		p := rgg.Params{N: 8000, R: 0.03, Dim: 2, Seed: 3, Chunks: 4}
		el, err := rgg.Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireAllPassed(t, "rgg", RGG(el, p.N, p.R, 2))
	}
	{
		p := rdg.Params{N: 3000, Dim: 2, Seed: 4, Chunks: 4}
		el, err := rdg.Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireAllPassed(t, "rdg2", RDG(el, p.N, 2))
	}
	{
		p := rdg.Params{N: 800, Dim: 3, Seed: 5, Chunks: 2}
		el, err := rdg.Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireAllPassed(t, "rdg3", RDG(el, p.N, 3))
	}
	{
		p := rhg.Params{N: 1 << 14, AvgDeg: 12, Gamma: 2.7, Seed: 6, Chunks: 8}
		el, err := rhg.Generate(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		requireAllPassed(t, "rhg", RHG(el, p.N, p.AvgDeg, p.Gamma))
	}
	{
		p := ba.Params{N: 1 << 14, D: 4, Seed: 7, Chunks: 8}
		el, err := ba.Generate(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		requireAllPassed(t, "ba", BA(el, p.N, p.D))
	}
	{
		p := rmat.Params{Scale: 12, M: 1 << 16, Seed: 8, Chunks: 8}
		el, err := rmat.Generate(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		requireAllPassed(t, "rmat", RMAT(el, p.Scale, p.M))
	}
	{
		p := sbm.PlantedPartition(3000, 3, 0.02, 0.002, 9, 6)
		el, err := sbm.Generate(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireAllPassed(t, "sbm", SBM(el, p.BlockSizes, 0.02, 0.002))
	}
}

// TestFailureInjection: corrupted instances must be rejected — validation
// that cannot fail validates nothing.
func TestFailureInjection(t *testing.T) {
	p := gnm.Params{N: 1000, M: 5000, Directed: false, Seed: 10, Chunks: 4}
	el, err := gnm.Generate(p, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Drop one orientation of one edge: symmetry must fail.
	broken := &graph.EdgeList{N: el.N, Edges: append([]graph.Edge(nil), el.Edges[1:]...)}
	if AllPassed(GNM(broken, p.N, p.M, false)) {
		t.Error("missing mirror orientation not detected")
	}

	// Add a self-loop.
	withLoop := &graph.EdgeList{N: el.N, Edges: append(append([]graph.Edge(nil), el.Edges...),
		graph.Edge{U: 5, V: 5})}
	if AllPassed(GNM(withLoop, p.N, p.M, false)) {
		t.Error("self loop not detected")
	}

	// Wrong edge count.
	if AllPassed(GNM(el, p.N, p.M+1, false)) {
		t.Error("wrong edge count not detected")
	}

	// Out-of-range vertex.
	outOfRange := &graph.EdgeList{N: 10, Edges: []graph.Edge{{U: 50, V: 1}, {U: 1, V: 50}}}
	if AllPassed(GNM(outOfRange, 10, 1, false)) {
		t.Error("out-of-range endpoint not detected")
	}

	// A uniform random graph must fail the BA checks.
	if AllPassed(BA(el, p.N, 10)) {
		t.Error("non-BA graph passed BA validation")
	}

	// A regular-degree graph must fail R-MAT skew.
	cycle := &graph.EdgeList{N: 64}
	for v := uint64(0); v < 64; v++ {
		cycle.Edges = append(cycle.Edges, graph.Edge{U: v, V: (v + 1) % 64})
	}
	if AllPassed(RMAT(cycle, 6, 64)) {
		t.Error("unskewed graph passed R-MAT validation")
	}

	// An ER graph must fail the RHG power-law check.
	erp := gnp.Params{N: 1 << 13, P: 12.0 / (1 << 13), Directed: false, Seed: 11, Chunks: 4}
	er, err := gnp.Generate(erp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if AllPassed(RHG(er, erp.N, 12, 2.5)) {
		t.Error("ER graph passed RHG validation")
	}

	// Wrong block densities must fail the SBM checks.
	sp := sbm.PlantedPartition(2000, 2, 0.02, 0.002, 12, 4)
	sel, err := sbm.Generate(sp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if AllPassed(SBM(sel, sp.BlockSizes, 0.002, 0.02)) { // swapped
		t.Error("swapped pIn/pOut passed SBM validation")
	}
}

func TestHelpers(t *testing.T) {
	checks := []Check{{Name: "a", Passed: true}, {Name: "b", Passed: false}}
	if AllPassed(checks) {
		t.Error("AllPassed wrong")
	}
	if len(Failed(checks)) != 1 || Failed(checks)[0].Name != "b" {
		t.Error("Failed wrong")
	}
	if !AllPassed(checks[:1]) {
		t.Error("AllPassed on passing subset wrong")
	}
}
