package kagen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/graph"
)

// WriteEdgeListText writes "# n m" followed by one "u v" pair per line.
func WriteEdgeListText(w io.Writer, e *EdgeList) error {
	return graph.WriteEdgeListText(w, e)
}

// ReadEdgeListText parses the format written by WriteEdgeListText.
func ReadEdgeListText(r io.Reader) (*EdgeList, error) {
	return graph.ReadEdgeListText(r)
}

// WriteEdgeListBinary writes a compact little-endian binary edge list.
func WriteEdgeListBinary(w io.Writer, e *EdgeList) error {
	return graph.WriteEdgeListBinary(w, e)
}

// ReadEdgeListBinary parses the format written by WriteEdgeListBinary.
func ReadEdgeListBinary(r io.Reader) (*EdgeList, error) {
	return graph.ReadEdgeListBinary(r)
}

// WriteMetis writes METIS adjacency format (undirected interpretation; the
// list must contain both orientations of every edge, which is the native
// output convention of the undirected generators).
func WriteMetis(w io.Writer, e *EdgeList) error {
	return graph.WriteMetis(w, e)
}

// --- streaming sinks ---

// Sink consumes the edge stream of a Streamer run driven by Stream:
// Begin once, then for each PE in increasing PE order zero or more Batch
// calls (non-empty, in emission order) followed by exactly one EndPE
// call, then Close. A batch slice is only valid during the call — it is
// recycled into the pipeline's pool as soon as Batch returns.
type Sink interface {
	// Begin announces the instance: n vertices, pes logical PEs.
	Begin(n, pes uint64) error
	// Batch delivers one batch of the PE's local edges.
	Batch(pe uint64, edges []Edge) error
	// EndPE marks the end of one PE's edges.
	EndPE(pe uint64) error
	// Close flushes and releases the sink. It is called exactly once,
	// also after an aborted run.
	Close() error
}

// TextSink streams edges as one "u v" line per edge behind a "# n" header
// line. The edge count is not part of the header (it is unknown until the
// stream ends); ReadEdgeListText accepts the format regardless.
type TextSink struct {
	bw      *bufio.Writer
	scratch []byte
}

// NewTextSink returns a Sink writing the text edge-list format to w.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{bw: bufio.NewWriterSize(w, 1<<20)}
}

// Begin writes the header line.
func (s *TextSink) Begin(n, pes uint64) error {
	_, err := fmt.Fprintf(s.bw, "# %d\n", n)
	return err
}

// Batch formats the whole batch into a reusable scratch buffer with
// strconv.AppendUint and writes it with a single buffered write.
func (s *TextSink) Batch(pe uint64, edges []Edge) error {
	buf := appendEdgeText(s.scratch, edges)
	s.scratch = buf[:0]
	_, err := s.bw.Write(buf)
	return err
}

// appendEdgeText appends "u v\n" lines for edges to buf[:0] with
// strconv.AppendUint and returns the text frame; shared by the text and
// sharded-text sinks (the binary counterpart is encodeEdgeFrame).
func appendEdgeText(buf []byte, edges []Edge) []byte {
	buf = buf[:0]
	for _, e := range edges {
		buf = strconv.AppendUint(buf, e.U, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, e.V, 10)
		buf = append(buf, '\n')
	}
	return buf
}

// EndPE is a no-op: the text format has no per-PE structure.
func (s *TextSink) EndPE(pe uint64) error { return nil }

// Close flushes the buffered output.
func (s *TextSink) Close() error { return s.bw.Flush() }

// BinarySink streams the little-endian binary edge-list format of
// WriteEdgeListBinary: n, m, then m (u, v) pairs. Because m is unknown
// until the stream ends, the writer must be an io.WriteSeeker (for
// example an *os.File): a placeholder edge count is written at Begin and
// patched at Close.
type BinarySink struct {
	ws      io.WriteSeeker
	bw      *bufio.Writer
	count   uint64
	scratch []byte
}

// NewBinarySink returns a Sink writing the binary edge-list format to ws.
func NewBinarySink(ws io.WriteSeeker) *BinarySink {
	return &BinarySink{ws: ws, bw: bufio.NewWriterSize(ws, 1<<20)}
}

// Begin writes the header with a placeholder edge count.
func (s *BinarySink) Begin(n, pes uint64) error {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], n)
	binary.LittleEndian.PutUint64(buf[8:], 0) // patched at Close
	_, err := s.bw.Write(buf[:])
	return err
}

// Batch encodes the whole batch as one little-endian frame in a reusable
// scratch buffer and writes it with a single buffered write.
func (s *BinarySink) Batch(pe uint64, edges []Edge) error {
	frame := encodeEdgeFrame(s.scratch, edges)
	s.scratch = frame[:0]
	s.count += uint64(len(edges))
	_, err := s.bw.Write(frame)
	return err
}

// EndPE is a no-op: the binary format has no per-PE structure.
func (s *BinarySink) EndPE(pe uint64) error { return nil }

// encodeEdgeFrame appends the 16-byte little-endian encodings of edges to
// buf[:0], growing it as needed, and returns the frame.
func encodeEdgeFrame(buf []byte, edges []Edge) []byte {
	need := 16 * len(edges)
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:need]
	for i, e := range edges {
		binary.LittleEndian.PutUint64(buf[16*i:], e.U)
		binary.LittleEndian.PutUint64(buf[16*i+8:], e.V)
	}
	return buf
}

// Close flushes the stream and patches the edge count into the header.
func (s *BinarySink) Close() error {
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if _, err := s.ws.Seek(8, io.SeekStart); err != nil {
		return fmt.Errorf("kagen: binary sink cannot patch edge count: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], s.count)
	if _, err := s.ws.Write(buf[:]); err != nil {
		return err
	}
	_, err := s.ws.Seek(0, io.SeekEnd)
	return err
}

// ShardedSink writes one self-contained edge-list file per PE into a
// directory: <prefix>-pe<id>.<txt|bin>, each readable with
// ReadEdgeListText / ReadEdgeListBinary and carrying the global vertex
// count — the per-PE partitioned output a distributed consumer expects.
// Each shard is written incrementally batch by batch: a shard file is
// opened at the PE's first batch and finalized at its EndPE, so no chunk
// is ever held in memory. Binary shards get their edge count patched into
// the header at EndPE; text shards use the streaming "# n" header (no
// edge count), which ReadEdgeListText accepts.
type ShardedSink struct {
	dir    string
	prefix string
	binary bool
	n      uint64
	pes    uint64

	f       *os.File
	bw      *bufio.Writer
	count   uint64 // edges written to the open shard
	scratch []byte
}

// NewShardedSink returns a Sink writing per-PE shard files into dir,
// creating it if necessary. binary selects the binary edge-list format.
func NewShardedSink(dir, prefix string, binary bool) *ShardedSink {
	return &ShardedSink{dir: dir, prefix: prefix, binary: binary}
}

// ShardPath returns the file path of one PE's shard.
func (s *ShardedSink) ShardPath(pe uint64) string {
	ext := "txt"
	if s.binary {
		ext = "bin"
	}
	return filepath.Join(s.dir, fmt.Sprintf("%s-pe%05d.%s", s.prefix, pe, ext))
}

// Begin creates the shard directory.
func (s *ShardedSink) Begin(n, pes uint64) error {
	s.n, s.pes = n, pes
	return os.MkdirAll(s.dir, 0o755)
}

// openShard starts the PE's shard file and writes its header.
func (s *ShardedSink) openShard(pe uint64) error {
	f, err := os.Create(s.ShardPath(pe))
	if err != nil {
		return err
	}
	s.f = f
	if s.bw == nil {
		s.bw = bufio.NewWriterSize(f, 1<<20)
	} else {
		s.bw.Reset(f)
	}
	s.count = 0
	if s.binary {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[0:], s.n)
		binary.LittleEndian.PutUint64(buf[8:], 0) // patched at EndPE
		_, err = s.bw.Write(buf[:])
	} else {
		_, err = fmt.Fprintf(s.bw, "# %d\n", s.n)
	}
	return err
}

// Batch appends one batch to the PE's shard, opening it first if this is
// the PE's first batch.
func (s *ShardedSink) Batch(pe uint64, edges []Edge) error {
	if s.f == nil {
		if err := s.openShard(pe); err != nil {
			return err
		}
	}
	s.count += uint64(len(edges))
	var frame []byte
	if s.binary {
		frame = encodeEdgeFrame(s.scratch, edges)
	} else {
		frame = appendEdgeText(s.scratch, edges)
	}
	s.scratch = frame[:0]
	_, err := s.bw.Write(frame)
	return err
}

// EndPE finalizes the PE's shard: it flushes the buffered edges, patches
// the binary edge count, and closes the file. A PE without any batches
// still produces a complete (empty) shard. If finalization fails the
// partial file is deleted — a shard on disk is always complete.
func (s *ShardedSink) EndPE(pe uint64) error {
	if s.f == nil {
		if err := s.openShard(pe); err != nil {
			return err
		}
	}
	err := s.bw.Flush()
	if err == nil && s.binary {
		if _, serr := s.f.Seek(8, io.SeekStart); serr != nil {
			err = fmt.Errorf("kagen: sharded sink cannot patch edge count: %w", serr)
		} else {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], s.count)
			_, err = s.f.Write(buf[:])
		}
	}
	name := s.f.Name()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	if err != nil {
		os.Remove(name) // best effort: never leave a truncated shard behind
	}
	return err
}

// Close handles a shard left open by an aborted run: the partial file is
// closed and deleted, so an abort never leaves a shard that would later
// read back as a valid (but truncated or empty) edge list.
func (s *ShardedSink) Close() error {
	if s.f == nil {
		return nil
	}
	name := s.f.Name()
	err := s.f.Close()
	if rerr := os.Remove(name); err == nil {
		err = rerr
	}
	s.f = nil
	return err
}

// ReadShardedEdgeList reads the shard files written by a ShardedSink with
// the given directory, prefix and format, and merges them in PE order.
func ReadShardedEdgeList(dir, prefix string, binary bool, pes uint64) (*EdgeList, error) {
	s := ShardedSink{dir: dir, prefix: prefix, binary: binary}
	merged := &EdgeList{}
	for pe := uint64(0); pe < pes; pe++ {
		f, err := os.Open(s.ShardPath(pe))
		if err != nil {
			return nil, err
		}
		var el *EdgeList
		if binary {
			el, err = ReadEdgeListBinary(f)
		} else {
			el, err = ReadEdgeListText(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		if el.N > merged.N {
			merged.N = el.N
		}
		merged.Edges = append(merged.Edges, el.Edges...)
	}
	return merged, nil
}
