package kagen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/graph"
)

// WriteEdgeListText writes "# n m" followed by one "u v" pair per line.
func WriteEdgeListText(w io.Writer, e *EdgeList) error {
	return graph.WriteEdgeListText(w, e)
}

// ReadEdgeListText parses the format written by WriteEdgeListText.
func ReadEdgeListText(r io.Reader) (*EdgeList, error) {
	return graph.ReadEdgeListText(r)
}

// WriteEdgeListBinary writes a compact little-endian binary edge list.
func WriteEdgeListBinary(w io.Writer, e *EdgeList) error {
	return graph.WriteEdgeListBinary(w, e)
}

// ReadEdgeListBinary parses the format written by WriteEdgeListBinary.
func ReadEdgeListBinary(r io.Reader) (*EdgeList, error) {
	return graph.ReadEdgeListBinary(r)
}

// WriteMetis writes METIS adjacency format (undirected interpretation; the
// list must contain both orientations of every edge, which is the native
// output convention of the undirected generators).
func WriteMetis(w io.Writer, e *EdgeList) error {
	return graph.WriteMetis(w, e)
}

// --- streaming sinks ---

// Sink consumes the edge stream of a Streamer run driven by Stream:
// Begin once, then exactly one Chunk call per PE in increasing PE order,
// then Close. The chunk slice is only valid during the call.
type Sink interface {
	// Begin announces the instance: n vertices, pes logical PEs.
	Begin(n, pes uint64) error
	// Chunk delivers the complete local edge list of one PE.
	Chunk(pe uint64, edges []Edge) error
	// Close flushes and releases the sink. It is called exactly once,
	// also after an aborted run.
	Close() error
}

// TextSink streams edges as one "u v" line per edge behind a "# n" header
// line. The edge count is not part of the header (it is unknown until the
// stream ends); ReadEdgeListText accepts the format regardless.
type TextSink struct {
	bw *bufio.Writer
}

// NewTextSink returns a Sink writing the text edge-list format to w.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{bw: bufio.NewWriterSize(w, 1<<20)}
}

// Begin writes the header line.
func (s *TextSink) Begin(n, pes uint64) error {
	_, err := fmt.Fprintf(s.bw, "# %d\n", n)
	return err
}

// Chunk writes one line per edge.
func (s *TextSink) Chunk(pe uint64, edges []Edge) error {
	for _, e := range edges {
		s.bw.WriteString(strconv.FormatUint(e.U, 10))
		s.bw.WriteByte(' ')
		s.bw.WriteString(strconv.FormatUint(e.V, 10))
		if err := s.bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the buffered output.
func (s *TextSink) Close() error { return s.bw.Flush() }

// BinarySink streams the little-endian binary edge-list format of
// WriteEdgeListBinary: n, m, then m (u, v) pairs. Because m is unknown
// until the stream ends, the writer must be an io.WriteSeeker (for
// example an *os.File): a placeholder edge count is written at Begin and
// patched at Close.
type BinarySink struct {
	ws    io.WriteSeeker
	bw    *bufio.Writer
	count uint64
}

// NewBinarySink returns a Sink writing the binary edge-list format to ws.
func NewBinarySink(ws io.WriteSeeker) *BinarySink {
	return &BinarySink{ws: ws, bw: bufio.NewWriterSize(ws, 1<<20)}
}

// Begin writes the header with a placeholder edge count.
func (s *BinarySink) Begin(n, pes uint64) error {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], n)
	binary.LittleEndian.PutUint64(buf[8:], 0) // patched at Close
	_, err := s.bw.Write(buf[:])
	return err
}

// Chunk writes the edges as little-endian pairs.
func (s *BinarySink) Chunk(pe uint64, edges []Edge) error {
	var buf [16]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint64(buf[0:], e.U)
		binary.LittleEndian.PutUint64(buf[8:], e.V)
		if _, err := s.bw.Write(buf[:]); err != nil {
			return err
		}
	}
	s.count += uint64(len(edges))
	return nil
}

// Close flushes the stream and patches the edge count into the header.
func (s *BinarySink) Close() error {
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if _, err := s.ws.Seek(8, io.SeekStart); err != nil {
		return fmt.Errorf("kagen: binary sink cannot patch edge count: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], s.count)
	if _, err := s.ws.Write(buf[:]); err != nil {
		return err
	}
	_, err := s.ws.Seek(0, io.SeekEnd)
	return err
}

// ShardedSink writes one self-contained edge-list file per PE into a
// directory: <prefix>-pe<id>.<txt|bin>, each readable with
// ReadEdgeListText / ReadEdgeListBinary and carrying the global vertex
// count — the per-PE partitioned output a distributed consumer expects.
type ShardedSink struct {
	dir    string
	prefix string
	binary bool
	n      uint64
	pes    uint64
}

// NewShardedSink returns a Sink writing per-PE shard files into dir,
// creating it if necessary. binary selects the binary edge-list format.
func NewShardedSink(dir, prefix string, binary bool) *ShardedSink {
	return &ShardedSink{dir: dir, prefix: prefix, binary: binary}
}

// ShardPath returns the file path of one PE's shard.
func (s *ShardedSink) ShardPath(pe uint64) string {
	ext := "txt"
	if s.binary {
		ext = "bin"
	}
	return filepath.Join(s.dir, fmt.Sprintf("%s-pe%05d.%s", s.prefix, pe, ext))
}

// Begin creates the shard directory.
func (s *ShardedSink) Begin(n, pes uint64) error {
	s.n, s.pes = n, pes
	return os.MkdirAll(s.dir, 0o755)
}

// Chunk writes one complete shard file. The chunk edge count is known
// here, so shards use the standard writers, full headers included.
func (s *ShardedSink) Chunk(pe uint64, edges []Edge) error {
	f, err := os.Create(s.ShardPath(pe))
	if err != nil {
		return err
	}
	el := &EdgeList{N: s.n, Edges: edges}
	if s.binary {
		err = WriteEdgeListBinary(f, el)
	} else {
		err = WriteEdgeListText(f, el)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close is a no-op: every shard is already complete.
func (s *ShardedSink) Close() error { return nil }

// ReadShardedEdgeList reads the shard files written by a ShardedSink with
// the given directory, prefix and format, and merges them in PE order.
func ReadShardedEdgeList(dir, prefix string, binary bool, pes uint64) (*EdgeList, error) {
	s := ShardedSink{dir: dir, prefix: prefix, binary: binary}
	merged := &EdgeList{}
	for pe := uint64(0); pe < pes; pe++ {
		f, err := os.Open(s.ShardPath(pe))
		if err != nil {
			return nil, err
		}
		var el *EdgeList
		if binary {
			el, err = ReadEdgeListBinary(f)
		} else {
			el, err = ReadEdgeListText(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		if el.N > merged.N {
			merged.N = el.N
		}
		merged.Edges = append(merged.Edges, el.Edges...)
	}
	return merged, nil
}
