package kagen

import (
	"io"

	"repro/internal/graph"
)

// WriteEdgeListText writes "# n m" followed by one "u v" pair per line.
func WriteEdgeListText(w io.Writer, e *EdgeList) error {
	return graph.WriteEdgeListText(w, e)
}

// ReadEdgeListText parses the format written by WriteEdgeListText.
func ReadEdgeListText(r io.Reader) (*EdgeList, error) {
	return graph.ReadEdgeListText(r)
}

// WriteEdgeListBinary writes a compact little-endian binary edge list.
func WriteEdgeListBinary(w io.Writer, e *EdgeList) error {
	return graph.WriteEdgeListBinary(w, e)
}

// ReadEdgeListBinary parses the format written by WriteEdgeListBinary.
func ReadEdgeListBinary(r io.Reader) (*EdgeList, error) {
	return graph.ReadEdgeListBinary(r)
}

// WriteMetis writes METIS adjacency format (undirected interpretation; the
// list must contain both orientations of every edge, which is the native
// output convention of the undirected generators).
func WriteMetis(w io.Writer, e *EdgeList) error {
	return graph.WriteMetis(w, e)
}
