package kagen

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
	"repro/internal/storage"
)

// WriteEdgeListText writes "# n m" followed by one "u v" pair per line.
func WriteEdgeListText(w io.Writer, e *EdgeList) error {
	return graph.WriteEdgeListText(w, e)
}

// ReadEdgeListText parses the format written by WriteEdgeListText.
func ReadEdgeListText(r io.Reader) (*EdgeList, error) {
	return graph.ReadEdgeListText(r)
}

// WriteEdgeListBinary writes a compact little-endian binary edge list.
func WriteEdgeListBinary(w io.Writer, e *EdgeList) error {
	return graph.WriteEdgeListBinary(w, e)
}

// ReadEdgeListBinary parses the format written by WriteEdgeListBinary.
func ReadEdgeListBinary(r io.Reader) (*EdgeList, error) {
	return graph.ReadEdgeListBinary(r)
}

// WriteMetis writes METIS adjacency format (undirected interpretation; the
// list must contain both orientations of every edge, which is the native
// output convention of the undirected generators).
func WriteMetis(w io.Writer, e *EdgeList) error {
	return graph.WriteMetis(w, e)
}

// --- streaming sinks ---

// Sink consumes the edge stream of a Streamer run driven by Stream:
// Begin once, then for each PE in increasing PE order zero or more Batch
// calls (non-empty, in emission order) followed by exactly one EndPE
// call, then Close. A batch slice is only valid during the call — it is
// recycled into the pipeline's pool as soon as Batch returns.
type Sink interface {
	// Begin announces the instance: n vertices, pes logical PEs.
	Begin(n, pes uint64) error
	// Batch delivers one batch of the PE's local edges.
	Batch(pe uint64, edges []Edge) error
	// EndPE marks the end of one PE's edges.
	EndPE(pe uint64) error
	// Close flushes and releases the sink. It is called exactly once,
	// also after an aborted run.
	Close() error
}

// TextSink streams edges as one "u v" line per edge behind a "# n" header
// line. The edge count is not part of the header (it is unknown until the
// stream ends); ReadEdgeListText accepts the format regardless.
type TextSink struct {
	bw      *bufio.Writer
	scratch []byte
}

// NewTextSink returns a Sink writing the text edge-list format to w.
//
// Deprecated: use OpenSink (for destinations) or NewFormatSink (for an
// existing io.Writer).
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{bw: bufio.NewWriterSize(w, 1<<20)}
}

// Begin writes the header line.
func (s *TextSink) Begin(n, pes uint64) error {
	_, err := fmt.Fprintf(s.bw, "# %d\n", n)
	return err
}

// Batch formats the whole batch into a reusable scratch buffer with
// strconv.AppendUint and writes it with a single buffered write.
func (s *TextSink) Batch(pe uint64, edges []Edge) error {
	buf := appendEdgeText(s.scratch[:0], edges)
	s.scratch = buf[:0]
	_, err := s.bw.Write(buf)
	return err
}

// appendEdgeText appends "u v\n" lines for edges to buf with
// strconv.AppendUint and returns the grown buffer; shared by the text
// sinks (the binary counterpart is appendEdgeBinary).
func appendEdgeText(buf []byte, edges []Edge) []byte {
	for _, e := range edges {
		buf = strconv.AppendUint(buf, e.U, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, e.V, 10)
		buf = append(buf, '\n')
	}
	return buf
}

// EndPE is a no-op: the text format has no per-PE structure.
func (s *TextSink) EndPE(pe uint64) error { return nil }

// Close flushes the buffered output.
func (s *TextSink) Close() error { return s.bw.Flush() }

// BinarySink streams the little-endian binary edge-list format of
// WriteEdgeListBinary: n, m, then m (u, v) pairs. Because m is unknown
// until the stream ends, the writer must be an io.WriteSeeker (for
// example an *os.File): a placeholder edge count is written at Begin and
// patched at Close.
type BinarySink struct {
	ws      io.WriteSeeker
	bw      *bufio.Writer
	count   uint64
	scratch []byte
}

// NewBinarySink returns a Sink writing the binary edge-list format to ws.
//
// Deprecated: use OpenSink (for destinations) or NewFormatSink (for an
// existing io.Writer), which also handle non-seekable writers.
func NewBinarySink(ws io.WriteSeeker) *BinarySink {
	return &BinarySink{ws: ws, bw: bufio.NewWriterSize(ws, 1<<20)}
}

// Begin writes the header with a placeholder edge count.
func (s *BinarySink) Begin(n, pes uint64) error {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], n)
	binary.LittleEndian.PutUint64(buf[8:], 0) // patched at Close
	_, err := s.bw.Write(buf[:])
	return err
}

// Batch encodes the whole batch as one little-endian frame in a reusable
// scratch buffer and writes it with a single buffered write.
func (s *BinarySink) Batch(pe uint64, edges []Edge) error {
	frame := appendEdgeBinary(s.scratch[:0], edges)
	s.scratch = frame[:0]
	s.count += uint64(len(edges))
	_, err := s.bw.Write(frame)
	return err
}

// EndPE is a no-op: the binary format has no per-PE structure.
func (s *BinarySink) EndPE(pe uint64) error { return nil }

// appendEdgeBinary appends the 16-byte little-endian encodings of edges
// to buf, growing it as needed, and returns the grown buffer.
func appendEdgeBinary(buf []byte, edges []Edge) []byte {
	off := len(buf)
	need := off + 16*len(edges)
	if cap(buf) < need {
		grown := make([]byte, off, need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:need]
	for i, e := range edges {
		binary.LittleEndian.PutUint64(buf[off+16*i:], e.U)
		binary.LittleEndian.PutUint64(buf[off+16*i+8:], e.V)
	}
	return buf
}

// appendBinaryHeader appends the 16-byte binary edge-list header.
func appendBinaryHeader(buf []byte, n, m uint64) []byte {
	var h [16]byte
	binary.LittleEndian.PutUint64(h[0:], n)
	binary.LittleEndian.PutUint64(h[8:], m)
	return append(buf, h[:]...)
}

// BinaryStreamSink streams the binary edge-list format to a plain
// io.Writer — a pipe, or the inside of a gzip stream — by writing the
// StreamingEdgeCount sentinel instead of seeking back to patch the true
// edge count: readers consume pairs until EOF (see ReadEdgeListBinary).
type BinaryStreamSink struct {
	bw      *bufio.Writer
	scratch []byte
}

// NewBinaryStreamSink returns a Sink writing the sentinel-framed binary
// edge-list format to w.
//
// Deprecated: use OpenSink (for destinations) or NewFormatSink (for an
// existing io.Writer).
func NewBinaryStreamSink(w io.Writer) *BinaryStreamSink {
	return &BinaryStreamSink{bw: bufio.NewWriterSize(w, 1<<20)}
}

// Begin writes the header with the sentinel edge count.
func (s *BinaryStreamSink) Begin(n, pes uint64) error {
	_, err := s.bw.Write(appendBinaryHeader(nil, n, StreamingEdgeCount))
	return err
}

// Batch encodes the whole batch as one little-endian frame.
func (s *BinaryStreamSink) Batch(pe uint64, edges []Edge) error {
	frame := appendEdgeBinary(s.scratch[:0], edges)
	s.scratch = frame[:0]
	_, err := s.bw.Write(frame)
	return err
}

// EndPE is a no-op: the binary format has no per-PE structure.
func (s *BinaryStreamSink) EndPE(pe uint64) error { return nil }

// Close flushes the buffered output.
func (s *BinaryStreamSink) Close() error { return s.bw.Flush() }

// Close flushes the stream and patches the edge count into the header.
func (s *BinarySink) Close() error {
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if _, err := s.ws.Seek(8, io.SeekStart); err != nil {
		return fmt.Errorf("kagen: binary sink cannot patch edge count: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], s.count)
	if _, err := s.ws.Write(buf[:]); err != nil {
		return err
	}
	_, err := s.ws.Seek(0, io.SeekEnd)
	return err
}

// ShardedSink writes one self-contained edge-list file per PE under a
// destination — a directory, or an object-store prefix when the
// destination is a URI: <prefix>-pe<id>.<ext>, each readable with
// ReadEdgeList and carrying the global vertex count — the per-PE
// partitioned output a distributed consumer expects. All four streaming
// formats are supported; compressed shards are gzipped whole. Each shard
// is written incrementally batch by batch: a shard object is created at
// the PE's first batch and finalized at its EndPE, so no chunk is ever
// held in memory. Shards are created exclusively: a pre-existing shard
// at the destination is an error, never a silent truncate. Plain binary
// shards get their edge count patched into the header at EndPE when the
// backend's writer supports it (the filesystem's staging file does);
// otherwise — and always for text and compressed shards — the streaming
// header the readers accept is used.
type ShardedSink struct {
	dest   string
	prefix string
	format Format
	be     storage.Backend
	n      uint64
	pes    uint64

	w       storage.Writer
	gz      *gzip.Writer
	bw      *bufio.Writer
	patch   bool   // open shard's header count is patched at EndPE
	count   uint64 // edges written to the open shard
	scratch []byte
}

// NewShardedSink returns a Sink writing per-PE shard files into dir,
// creating it if necessary, in the given streaming format.
//
// Deprecated: use OpenSink with SinkSharded, which also accepts
// object-store destinations.
func NewShardedSink(dir, prefix string, format Format) *ShardedSink {
	return &ShardedSink{dest: dir, prefix: prefix, format: format}
}

// ShardPath returns the destination of one PE's shard.
func (s *ShardedSink) ShardPath(pe uint64) string {
	return shardDest(s.dest, s.prefix, pe, s.format)
}

// Begin resolves the destination's backend and prepares the shard
// directory.
func (s *ShardedSink) Begin(n, pes uint64) error {
	s.n, s.pes = n, pes
	if s.be == nil {
		be, err := storage.Resolve(s.dest)
		if err != nil {
			return err
		}
		s.be = be
	}
	return s.be.EnsureDir(s.dest)
}

// openShard starts the PE's shard object and writes its header.
func (s *ShardedSink) openShard(pe uint64) error {
	if s.be == nil {
		if err := s.Begin(s.n, s.pes); err != nil {
			return err
		}
	}
	w, err := s.be.Create(s.ShardPath(pe), true)
	if err != nil {
		return err
	}
	s.w = w
	var target io.Writer = w
	if s.format.Compressed() {
		if s.gz == nil {
			s.gz = gzip.NewWriter(target)
		} else {
			s.gz.Reset(target)
		}
		target = s.gz
	}
	if s.bw == nil {
		s.bw = bufio.NewWriterSize(target, 1<<20)
	} else {
		s.bw.Reset(target)
	}
	s.count = 0
	s.patch = false
	if s.format == FormatBinary {
		if ws, ok := w.(io.WriteSeeker); ok && seekPatchable(ws) {
			s.patch = true
		}
	}
	if s.patch {
		// Seekable plain binary: placeholder count, patched at EndPE.
		_, err = s.bw.Write(appendBinaryHeader(s.scratch[:0], s.n, 0))
		s.scratch = s.scratch[:0]
	} else {
		buf := s.format.AppendHeader(s.scratch[:0], s.n)
		s.scratch = buf[:0]
		_, err = s.bw.Write(buf)
	}
	return err
}

// Batch appends one batch to the PE's shard, opening it first if this is
// the PE's first batch.
func (s *ShardedSink) Batch(pe uint64, edges []Edge) error {
	if s.w == nil {
		if err := s.openShard(pe); err != nil {
			return err
		}
	}
	s.count += uint64(len(edges))
	frame := s.format.AppendEdges(s.scratch[:0], edges)
	s.scratch = frame[:0]
	_, err := s.bw.Write(frame)
	return err
}

// EndPE finalizes the PE's shard: it flushes the buffered edges, finishes
// the gzip stream of a compressed shard, patches the plain-binary edge
// count, and publishes the object. A PE without any batches still
// produces a complete (empty) shard. If finalization fails the partial
// object is aborted — a shard at the destination is always complete.
func (s *ShardedSink) EndPE(pe uint64) error {
	if s.w == nil {
		if err := s.openShard(pe); err != nil {
			return err
		}
	}
	err := s.bw.Flush()
	if s.format.Compressed() {
		if cerr := s.gz.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil && s.patch {
		ws := s.w.(io.WriteSeeker)
		if _, serr := ws.Seek(8, io.SeekStart); serr != nil {
			err = fmt.Errorf("kagen: sharded sink cannot patch edge count: %w", serr)
		} else {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], s.count)
			if _, err = ws.Write(buf[:]); err == nil {
				_, err = ws.Seek(0, io.SeekEnd)
			}
		}
	}
	w := s.w
	s.w = nil
	if err != nil {
		w.Abort() // best effort: never leave a truncated shard behind
		return err
	}
	return w.Finalize()
}

// Close handles a shard left open by an aborted run: the partial object
// is aborted, so an abort never leaves a shard that would later read
// back as a valid (but truncated or empty) edge list.
func (s *ShardedSink) Close() error {
	if s.w == nil {
		return nil
	}
	err := s.w.Abort()
	s.w = nil
	return err
}

// ReadShardedEdgeList reads the shard files written by a ShardedSink with
// the given directory, prefix and format, and merges them in PE order.
// ReadShardedEdgeListFrom is the same over any destination URI.
func ReadShardedEdgeList(dir, prefix string, format Format, pes uint64) (*EdgeList, error) {
	return ReadShardedEdgeListFrom(dir, prefix, format, pes)
}
