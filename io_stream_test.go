package kagen

import (
	"os"
	"path/filepath"
	"testing"
)

// streamRoundTripCases: one sampling-stream model and two spatial models
// cover the three streamer families.
func streamRoundTripCases(t *testing.T) []struct {
	name string
	s    Streamer
	gen  Generator
} {
	t.Helper()
	opt := Options{Seed: 21, PEs: 4}
	return []struct {
		name string
		s    Streamer
		gen  Generator
	}{
		{"gnm", NewGNMStreamer(500, 3000, true, opt), NewGNM(500, 3000, true, opt)},
		{"rgg2d", NewRGGStreamer(400, 0.08, 2, opt), NewRGG(400, 0.08, 2, opt)},
		{"srhg", NewSRHGStreamer(400, 8, 2.8, opt), NewSRHG(400, 8, 2.8, opt)},
	}
}

func requireSameList(t *testing.T, name string, got, want *EdgeList) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: n = %d, want %d", name, got.N, want.N)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d edges, want %d", name, got.Len(), want.Len())
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("%s: edge %d = %v, want %v", name, i, got.Edges[i], want.Edges[i])
		}
	}
}

// TestTextSinkRoundTrip: pe.Stream → text sink → reader equals Generate.
func TestTextSinkRoundTrip(t *testing.T) {
	for _, c := range streamRoundTripCases(t) {
		want, err := c.gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "edges.txt")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := Stream(c.s, 3, NewTextSink(f)); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		rf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeListText(rf)
		rf.Close()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		requireSameList(t, c.name, got, want)
	}
}

// TestBinarySinkRoundTrip: the binary sink must also patch the edge count
// into the header at Close.
func TestBinarySinkRoundTrip(t *testing.T) {
	for _, c := range streamRoundTripCases(t) {
		want, err := c.gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "edges.bin")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := Stream(c.s, 3, NewBinarySink(f)); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		rf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeListBinary(rf)
		rf.Close()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		requireSameList(t, c.name, got, want)
	}
}

// TestShardedSinkRoundTrip: per-PE shard files merged in PE order equal
// Generate, in both shard formats, and each shard equals its Chunk.
func TestShardedSinkRoundTrip(t *testing.T) {
	for _, c := range streamRoundTripCases(t) {
		want, err := c.gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, format := range Formats() {
			dir := t.TempDir()
			sink := NewShardedSink(dir, c.name, format)
			if err := Stream(c.s, 3, sink); err != nil {
				t.Fatalf("%s/%s: %v", c.name, format, err)
			}
			got, err := ReadShardedEdgeList(dir, c.name, format, c.s.PEs())
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, format, err)
			}
			requireSameList(t, c.name, got, want)

			// Spot-check one shard against its chunk.
			pe := c.s.PEs() - 1
			chunk, err := c.gen.Chunk(pe)
			if err != nil {
				t.Fatal(err)
			}
			shard, err := ReadEdgeListFile(sink.ShardPath(pe), format)
			if err != nil {
				t.Fatal(err)
			}
			if shard.Len() != len(chunk) {
				t.Fatalf("%s/%s: shard %d has %d edges, chunk has %d",
					c.name, format, pe, shard.Len(), len(chunk))
			}
			for i := range chunk {
				if shard.Edges[i] != chunk[i] {
					t.Fatalf("%s/%s: shard %d edge %d differs", c.name, format, pe, i)
				}
			}
		}
	}
}

// TestStreamSinkErrorPropagates: a failing sink aborts the run and the
// error surfaces through Stream.
func TestStreamSinkErrorPropagates(t *testing.T) {
	s := NewGNMStreamer(500, 3000, true, Options{Seed: 1, PEs: 4})
	sink := &failingSink{failAt: 2}
	err := Stream(s, 2, sink)
	if err == nil {
		t.Fatal("sink error did not surface")
	}
	if !sink.closed {
		t.Fatal("sink not closed after error")
	}
}

// TestShardedSinkAbortRemovesPartialShard: an aborted run must not leave
// a shard file that would later read back as a valid (empty or truncated)
// edge list — the open shard is deleted at Close.
func TestShardedSinkAbortRemovesPartialShard(t *testing.T) {
	s := NewGNMStreamer(500, 3000, true, Options{Seed: 1, PEs: 4})
	for _, format := range Formats() {
		dir := t.TempDir()
		sink := NewShardedSink(dir, "gnm", format)
		// Fail while PE 2's shard is open: its first batch errors after
		// openShard has created the file.
		ferr := &failAfterOpen{ShardedSink: sink, failPE: 2}
		if err := Stream(s, 2, ferr); err == nil {
			t.Fatal("sink error did not surface")
		}
		for pe := uint64(0); pe < 4; pe++ {
			_, err := os.Stat(sink.ShardPath(pe))
			if pe < 2 && err != nil {
				t.Errorf("format=%v: completed shard %d missing: %v", format, pe, err)
			}
			if pe >= 2 && err == nil {
				t.Errorf("format=%v: aborted run left shard %d on disk", format, pe)
			}
		}
	}
}

// failAfterOpen lets the embedded ShardedSink open the failPE shard, then
// fails the batch, leaving the partial file for Close to clean up.
type failAfterOpen struct {
	*ShardedSink
	failPE uint64
}

func (f *failAfterOpen) Batch(pe uint64, edges []Edge) error {
	if err := f.ShardedSink.Batch(pe, edges); err != nil {
		return err
	}
	if pe == f.failPE {
		return os.ErrInvalid
	}
	return nil
}

type failingSink struct {
	failAt uint64
	closed bool
}

func (f *failingSink) Begin(n, pes uint64) error { return nil }
func (f *failingSink) Batch(pe uint64, e []Edge) error {
	if pe == f.failAt {
		return os.ErrInvalid
	}
	return nil
}
func (f *failingSink) EndPE(pe uint64) error { return nil }
func (f *failingSink) Close() error {
	f.closed = true
	return nil
}
