// Package kagen is a Go reproduction of the communication-free massively
// distributed graph generators of Funke, Lamm, Meyer, Penschuck, Sanders,
// Schulz, Strash and von Looz ("Communication-free Massively Distributed
// Graph Generation", IPDPS 2018) — the KaGen library.
//
// Every generator divides its work into chunks owned by logical processing
// entities (PEs). A PE derives every random decision from a hash of a
// structural identifier (chunk, cell, recursion subtree), so redundant
// recomputation replaces communication: the output is a pure function of
// (seed, PEs) and in particular independent of how many worker goroutines
// execute the PEs.
//
// Supported models: Erdős–Rényi G(n,m) and G(n,p) (directed/undirected),
// random geometric graphs (2-D/3-D), random Delaunay graphs (2-D/3-D,
// periodic), random hyperbolic graphs (in-memory RHG and streaming sRHG),
// Barabási–Albert preferential attachment, and R-MAT.
//
// Undirected generators emit each edge once per endpoint: the merged edge
// list contains both orientations of every edge (2m entries), partitioned
// by the owning PE — the convention of the original library.
package kagen

import (
	"fmt"

	"repro/internal/ba"
	"repro/internal/gnm"
	"repro/internal/gnp"
	"repro/internal/graph"
	"repro/internal/rdg"
	"repro/internal/rgg"
	"repro/internal/rhg"
	"repro/internal/rmat"
	"repro/internal/sbm"
	"repro/internal/srhg"
)

// Edge is a directed edge (U, V); see the package comment for the
// undirected convention.
type Edge = graph.Edge

// EdgeList is a list of edges over vertices [0, N).
type EdgeList = graph.EdgeList

// Stats summarizes a generated instance.
type Stats = graph.Stats

// Options control how a generator executes.
type Options struct {
	// Seed selects the instance; the same seed and PEs always produce the
	// same graph.
	Seed uint64
	// PEs is the number of logical processing entities (chunks). It is
	// part of the instance definition for most models. 0 means 1.
	PEs uint64
	// Workers bounds the goroutines executing the PEs; 0 uses GOMAXPROCS.
	// Workers never affects the generated graph.
	Workers int
}

func (o Options) pes() uint64 {
	if o.PEs == 0 {
		return 1
	}
	return o.PEs
}

// Generator produces a graph instance, as a whole or chunk by chunk.
type Generator interface {
	// Generate runs all logical PEs and merges their local edge lists.
	Generate() (*EdgeList, error)
	// Chunk returns the local edges of one logical PE.
	Chunk(pe uint64) ([]Edge, error)
	// PEs returns the number of logical PEs.
	PEs() uint64
}

// --- G(n,m) ---

type gnmGen struct {
	p   gnm.Params
	opt Options
}

// NewGNM returns a generator for the Erdős–Rényi G(n,m) model: a graph
// drawn uniformly from all graphs with n vertices and m edges (§4).
func NewGNM(n, m uint64, directed bool, opt Options) Generator {
	return gnmGen{gnm.Params{N: n, M: m, Directed: directed, Seed: opt.Seed, Chunks: opt.pes()}, opt}
}

func (g gnmGen) Generate() (*EdgeList, error) { return gnm.Generate(g.p, g.opt.Workers) }
func (g gnmGen) PEs() uint64                  { return g.p.Chunks }
func (g gnmGen) Chunk(pe uint64) ([]Edge, error) {
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	return gnm.GenerateChunk(g.p, pe), nil
}

// GNM generates a uniform G(n,m) instance.
func GNM(n, m uint64, directed bool, opt Options) (*EdgeList, error) {
	return NewGNM(n, m, directed, opt).Generate()
}

// --- G(n,p) ---

type gnpGen struct {
	p   gnp.Params
	opt Options
}

// NewGNP returns a generator for the Gilbert G(n,p) model: every possible
// edge exists independently with probability p (§4.3).
func NewGNP(n uint64, p float64, directed bool, opt Options) Generator {
	return gnpGen{gnp.Params{N: n, P: p, Directed: directed, Seed: opt.Seed, Chunks: opt.pes()}, opt}
}

func (g gnpGen) Generate() (*EdgeList, error) { return gnp.Generate(g.p, g.opt.Workers) }
func (g gnpGen) PEs() uint64                  { return g.p.Chunks }
func (g gnpGen) Chunk(pe uint64) ([]Edge, error) {
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	return gnp.GenerateChunk(g.p, pe), nil
}

// GNP generates a G(n,p) instance.
func GNP(n uint64, p float64, directed bool, opt Options) (*EdgeList, error) {
	return NewGNP(n, p, directed, opt).Generate()
}

// --- RGG ---

type rggGen struct {
	p   rgg.Params
	opt Options
}

// NewRGG returns a generator for random geometric graphs in dim (2 or 3)
// dimensions: n points uniform in the unit cube, an edge between every
// pair at Euclidean distance at most r (§5).
func NewRGG(n uint64, r float64, dim int, opt Options) Generator {
	return rggGen{rgg.Params{N: n, R: r, Dim: dim, Seed: opt.Seed, Chunks: opt.pes()}, opt}
}

func (g rggGen) Generate() (*EdgeList, error) { return rgg.Generate(g.p, g.opt.Workers) }
func (g rggGen) PEs() uint64                  { return g.p.Chunks }
func (g rggGen) Chunk(pe uint64) ([]Edge, error) {
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	return rgg.GenerateChunk(g.p, pe).Edges, nil
}

// RGG2D generates a two-dimensional random geometric graph.
func RGG2D(n uint64, r float64, opt Options) (*EdgeList, error) {
	return NewRGG(n, r, 2, opt).Generate()
}

// RGG3D generates a three-dimensional random geometric graph.
func RGG3D(n uint64, r float64, opt Options) (*EdgeList, error) {
	return NewRGG(n, r, 3, opt).Generate()
}

// RGGConnectivityRadius returns the radius 0.55*(ln n / n)^(1/dim) used
// throughout the paper's experiments; it keeps the RGG connected w.h.p.
func RGGConnectivityRadius(n uint64, dim int) float64 {
	return rgg.ConnectivityRadius(n, dim)
}

// --- RDG ---

type rdgGen struct {
	p   rdg.Params
	opt Options
}

// NewRDG returns a generator for random Delaunay graphs in dim (2 or 3)
// dimensions with periodic boundary conditions: the Delaunay
// triangulation (tetrahedralization) of n uniform points on the unit
// torus (§6).
func NewRDG(n uint64, dim int, opt Options) Generator {
	return rdgGen{rdg.Params{N: n, Dim: dim, Seed: opt.Seed, Chunks: opt.pes()}, opt}
}

func (g rdgGen) Generate() (*EdgeList, error) { return rdg.Generate(g.p, g.opt.Workers) }
func (g rdgGen) PEs() uint64                  { return g.p.Chunks }
func (g rdgGen) Chunk(pe uint64) ([]Edge, error) {
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	return rdg.GenerateChunk(g.p, pe).Edges, nil
}

// RDG2D generates a two-dimensional periodic random Delaunay graph.
func RDG2D(n uint64, opt Options) (*EdgeList, error) {
	return NewRDG(n, 2, opt).Generate()
}

// RDG3D generates a three-dimensional periodic random Delaunay graph.
func RDG3D(n uint64, opt Options) (*EdgeList, error) {
	return NewRDG(n, 3, opt).Generate()
}

// --- RHG ---

type rhgGen struct {
	p   rhg.Params
	opt Options
}

// NewRHG returns the in-memory random hyperbolic graph generator (§7.1):
// n points on a hyperbolic disk, power-law degree exponent gamma (> 2) and
// target average degree avgDeg.
func NewRHG(n uint64, avgDeg, gamma float64, opt Options) Generator {
	return rhgGen{rhg.Params{N: n, AvgDeg: avgDeg, Gamma: gamma, Seed: opt.Seed, Chunks: opt.pes()}, opt}
}

func (g rhgGen) Generate() (*EdgeList, error) { return rhg.Generate(g.p, g.opt.Workers) }
func (g rhgGen) PEs() uint64                  { return g.p.Chunks }
func (g rhgGen) Chunk(pe uint64) ([]Edge, error) {
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	return rhg.GenerateChunk(g.p, pe).Edges, nil
}

// RHG generates an in-memory random hyperbolic graph.
func RHG(n uint64, avgDeg, gamma float64, opt Options) (*EdgeList, error) {
	return NewRHG(n, avgDeg, gamma, opt).Generate()
}

// RHGOutward generates a random hyperbolic graph with outward-only
// queries (§8.6): each edge appears exactly once (m entries instead of
// 2m), the output is not partitioned by vertex ownership, and the
// expensive inward recomputation of high-degree vertices is skipped.
func RHGOutward(n uint64, avgDeg, gamma float64, opt Options) (*EdgeList, error) {
	p := rhg.Params{N: n, AvgDeg: avgDeg, Gamma: gamma, Seed: opt.Seed,
		Chunks: opt.pes(), OutwardOnly: true}
	return rhg.Generate(p, opt.Workers)
}

// --- sRHG ---

type srhgGen struct {
	p   srhg.Params
	opt Options
}

// NewSRHG returns the streaming random hyperbolic graph generator (§7.2):
// same model as RHG, processed by a sweep-line with request tokens, with
// far better load balancing and memory behaviour at scale.
func NewSRHG(n uint64, avgDeg, gamma float64, opt Options) Generator {
	return srhgGen{srhg.Params{N: n, AvgDeg: avgDeg, Gamma: gamma, Seed: opt.Seed, Chunks: opt.pes()}, opt}
}

func (g srhgGen) Generate() (*EdgeList, error) { return srhg.Generate(g.p, g.opt.Workers) }
func (g srhgGen) PEs() uint64                  { return g.p.Chunks }
func (g srhgGen) Chunk(pe uint64) ([]Edge, error) {
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	return srhg.GenerateChunk(g.p, pe).Edges, nil
}

// SRHG generates a streaming random hyperbolic graph.
func SRHG(n uint64, avgDeg, gamma float64, opt Options) (*EdgeList, error) {
	return NewSRHG(n, avgDeg, gamma, opt).Generate()
}

// --- BA ---

type baGen struct {
	p   ba.Params
	opt Options
}

// NewBA returns the Barabási–Albert preferential-attachment generator
// (Sanders–Schulz algorithm, §3.5.1): each new vertex attaches d edges to
// earlier vertices with probability proportional to their degree.
func NewBA(n, d uint64, opt Options) Generator {
	return baGen{ba.Params{N: n, D: d, Seed: opt.Seed, Chunks: opt.pes()}, opt}
}

func (g baGen) Generate() (*EdgeList, error) { return ba.Generate(g.p, g.opt.Workers) }
func (g baGen) PEs() uint64                  { return g.p.Chunks }
func (g baGen) Chunk(pe uint64) ([]Edge, error) {
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	return ba.GenerateChunk(g.p, pe), nil
}

// BA generates a Barabási–Albert graph (n*d directed attachment edges).
func BA(n, d uint64, opt Options) (*EdgeList, error) {
	return NewBA(n, d, opt).Generate()
}

// --- R-MAT ---

type rmatGen struct {
	p   rmat.Params
	opt Options
}

// NewRMAT returns the R-MAT generator with Graph 500 default quadrant
// probabilities (0.57, 0.19, 0.19, 0.05): 2^scale vertices, m edges
// (§3.5.2). Duplicate edges and self-loops are permitted, as in the
// Graph 500 reference.
func NewRMAT(scale uint, m uint64, opt Options) Generator {
	return rmatGen{rmat.Params{Scale: scale, M: m, Seed: opt.Seed, Chunks: opt.pes()}, opt}
}

func (g rmatGen) Generate() (*EdgeList, error) { return rmat.Generate(g.p, g.opt.Workers) }
func (g rmatGen) PEs() uint64                  { return g.p.Chunks }
func (g rmatGen) Chunk(pe uint64) ([]Edge, error) {
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	return rmat.GenerateChunk(g.p, pe), nil
}

// RMAT generates an R-MAT graph.
func RMAT(scale uint, m uint64, opt Options) (*EdgeList, error) {
	return NewRMAT(scale, m, opt).Generate()
}

// --- SBM (extension beyond the paper: its §9 future-work model) ---

type sbmGen struct {
	p   sbm.Params
	opt Options
}

// NewSBM returns a communication-free stochastic block model generator
// with the planted-partition parameterization: `blocks` equal communities
// over n vertices, intra-community edge probability pIn and
// inter-community probability pOut. The paper's conclusion names this
// model as the first target for extending the communication-free
// paradigm; the construction generalizes the undirected G(n,p) chunk
// matrix (see internal/sbm).
func NewSBM(n uint64, blocks int, pIn, pOut float64, opt Options) Generator {
	return sbmGen{sbm.PlantedPartition(n, blocks, pIn, pOut, opt.Seed, opt.pes()), opt}
}

func (g sbmGen) Generate() (*EdgeList, error) { return sbm.Generate(g.p, g.opt.Workers) }
func (g sbmGen) PEs() uint64                  { return g.p.Chunks }
func (g sbmGen) Chunk(pe uint64) ([]Edge, error) {
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	return sbm.GenerateChunk(g.p, pe), nil
}

// SBM generates a planted-partition stochastic block model graph.
func SBM(n uint64, blocks int, pIn, pOut float64, opt Options) (*EdgeList, error) {
	return NewSBM(n, blocks, pIn, pOut, opt).Generate()
}

// --- model registry (for the CLI and the benchmark harness) ---

// Model identifies one of the supported network models by name.
type Model string

// Supported model names.
const (
	ModelGNMDirected   Model = "gnm_directed"
	ModelGNMUndirected Model = "gnm_undirected"
	ModelGNPDirected   Model = "gnp_directed"
	ModelGNPUndirected Model = "gnp_undirected"
	ModelRGG2D         Model = "rgg2d"
	ModelRGG3D         Model = "rgg3d"
	ModelRDG2D         Model = "rdg2d"
	ModelRDG3D         Model = "rdg3d"
	ModelRHG           Model = "rhg"
	ModelSRHG          Model = "srhg"
	ModelBA            Model = "ba"
	ModelRMAT          Model = "rmat"
	ModelSBM           Model = "sbm"
)

// Models lists all supported model names.
func Models() []Model {
	return []Model{
		ModelGNMDirected, ModelGNMUndirected, ModelGNPDirected,
		ModelGNPUndirected, ModelRGG2D, ModelRGG3D, ModelRDG2D, ModelRDG3D,
		ModelRHG, ModelSRHG, ModelBA, ModelRMAT, ModelSBM,
	}
}

// ModelParams carries the union of model parameters for the registry
// constructor New.
type ModelParams struct {
	N      uint64  // vertices (all models except rmat)
	M      uint64  // edges (gnm, rmat)
	P      float64 // edge probability (gnp)
	R      float64 // radius (rgg; 0 selects the connectivity radius)
	AvgDeg float64 // average degree (rhg, srhg)
	Gamma  float64 // power-law exponent (rhg, srhg)
	D      uint64  // edges per vertex (ba)
	Scale  uint    // log2 vertices (rmat)
	Blocks int     // communities (sbm; 0 selects 2)
	PIn    float64 // intra-community probability (sbm; 0 selects 8*P)
	POut   float64 // inter-community probability (sbm; 0 selects P)
}

// ResolveModelParams returns p with the registry's model defaults
// applied: the RGG connectivity radius for a zero radius, and the SBM
// planted-partition defaults (2 blocks, pIn = 8p, pOut = p). It is the
// single source of these defaults — New generates with them, and
// cmd/validate resolves a job spec through the same function, so
// generation and validation cannot drift apart.
func ResolveModelParams(model Model, p ModelParams) ModelParams {
	switch model {
	case ModelRGG2D, ModelRGG3D:
		if p.R == 0 {
			dim := 2
			if model == ModelRGG3D {
				dim = 3
			}
			p.R = RGGConnectivityRadius(p.N, dim)
		}
	case ModelSBM:
		if p.Blocks == 0 {
			p.Blocks = 2
		}
		if p.PIn == 0 {
			p.PIn = 8 * p.P
		}
		if p.POut == 0 {
			p.POut = p.P
		}
	}
	return p
}

// New constructs a Generator by model name, with the ResolveModelParams
// defaults applied.
func New(model Model, p ModelParams, opt Options) (Generator, error) {
	p = ResolveModelParams(model, p)
	switch model {
	case ModelGNMDirected:
		return NewGNM(p.N, p.M, true, opt), nil
	case ModelGNMUndirected:
		return NewGNM(p.N, p.M, false, opt), nil
	case ModelGNPDirected:
		return NewGNP(p.N, p.P, true, opt), nil
	case ModelGNPUndirected:
		return NewGNP(p.N, p.P, false, opt), nil
	case ModelRGG2D:
		return NewRGG(p.N, p.R, 2, opt), nil
	case ModelRGG3D:
		return NewRGG(p.N, p.R, 3, opt), nil
	case ModelRDG2D:
		return NewRDG(p.N, 2, opt), nil
	case ModelRDG3D:
		return NewRDG(p.N, 3, opt), nil
	case ModelRHG:
		return NewRHG(p.N, p.AvgDeg, p.Gamma, opt), nil
	case ModelSRHG:
		return NewSRHG(p.N, p.AvgDeg, p.Gamma, opt), nil
	case ModelBA:
		return NewBA(p.N, p.D, opt), nil
	case ModelRMAT:
		return NewRMAT(p.Scale, p.M, opt), nil
	case ModelSBM:
		return NewSBM(p.N, p.Blocks, p.PIn, p.POut, opt), nil
	}
	return nil, fmt.Errorf("kagen: unknown model %q", model)
}

// ComputeStats summarizes an edge list.
func ComputeStats(e *EdgeList) Stats { return graph.ComputeStats(e) }

// OutDegrees returns per-vertex out-degrees.
func OutDegrees(e *EdgeList) []uint64 { return graph.OutDegrees(e) }

// DegreeHistogram returns hist[d] = number of vertices with out-degree d.
func DegreeHistogram(e *EdgeList) []uint64 { return graph.DegreeHistogram(e) }

// PowerLawExponentMLE estimates the power-law exponent of a degree
// sequence with cutoff dmin.
func PowerLawExponentMLE(degrees []uint64, dmin uint64) float64 {
	return graph.PowerLawExponentMLE(degrees, dmin)
}

// BFSDistances returns hop distances from root over the undirected
// interpretation of the edge list (-1 for unreachable vertices) together
// with the number of reached vertices.
func BFSDistances(e *EdgeList, root uint64) ([]int32, int) {
	return graph.BFSDistances(e, root)
}

// EffectiveDiameter returns the 90th-percentile BFS distance from root.
func EffectiveDiameter(e *EdgeList, root uint64) int32 {
	return graph.EffectiveDiameter(e, root)
}

// DegreeAssortativity returns Newman's degree assortativity coefficient.
func DegreeAssortativity(e *EdgeList) float64 {
	return graph.DegreeAssortativity(e)
}

// LabelPropagation runs the label-propagation community-detection
// heuristic for at most maxRounds sweeps and returns per-vertex labels.
func LabelPropagation(e *EdgeList, maxRounds int) []uint64 {
	return graph.LabelPropagation(e, maxRounds, 0)
}

// RandIndexSample estimates the Rand index (pair-counting agreement)
// between a clustering and a ground truth by sampling vertex pairs.
func RandIndexSample(labels, truth []uint64, samples int) float64 {
	return graph.RandIndexSample(labels, truth, samples, 0)
}

// GlobalClusteringCoefficient computes 3*triangles/wedges on the simple
// undirected graph induced by the edge list (intended for small graphs).
func GlobalClusteringCoefficient(e *EdgeList) float64 {
	return graph.GlobalClusteringCoefficient(e)
}
