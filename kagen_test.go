package kagen

import (
	"bytes"
	"math"
	"testing"
)

// TestAllModelsSmoke: every registered model produces a valid non-trivial
// instance through the public registry API.
func TestAllModelsSmoke(t *testing.T) {
	params := ModelParams{
		N: 1 << 10, M: 1 << 12, P: 0.01, AvgDeg: 8, Gamma: 2.8, D: 4, Scale: 10,
	}
	opt := Options{Seed: 42, PEs: 4, Workers: 4}
	for _, model := range Models() {
		gen, err := New(model, params, opt)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		el, err := gen.Generate()
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if el.Len() == 0 {
			t.Errorf("%s: empty graph", model)
		}
		if el.N == 0 {
			t.Errorf("%s: zero vertices", model)
		}
		for _, e := range el.Edges[:min(100, el.Len())] {
			if e.U >= el.N || e.V >= el.N {
				t.Fatalf("%s: edge %v out of range", model, e)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestWorkerIndependenceAllModels is the global communication-free
// invariant at the API level: worker count never changes the output.
func TestWorkerIndependenceAllModels(t *testing.T) {
	params := ModelParams{
		N: 600, M: 2400, P: 0.02, AvgDeg: 8, Gamma: 3.0, D: 3, Scale: 9,
	}
	for _, model := range Models() {
		gen1, err := New(model, params, Options{Seed: 7, PEs: 8, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		gen8, err := New(model, params, Options{Seed: 7, PEs: 8, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		a, err := gen1.Generate()
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		b, err := gen8.Generate()
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		a.Sort()
		b.Sort()
		if a.Len() != b.Len() {
			t.Fatalf("%s: edge counts differ between worker counts", model)
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatalf("%s: edge %d differs between worker counts", model, i)
			}
		}
	}
}

// TestSeedSensitivity: different seeds give different graphs.
func TestSeedSensitivity(t *testing.T) {
	a, err := GNM(200, 400, true, Options{Seed: 1, PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GNM(200, 400, true, Options{Seed: 2, PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	a.Sort()
	b.Sort()
	same := 0
	for i := range a.Edges {
		if a.Edges[i] == b.Edges[i] {
			same++
		}
	}
	if same == a.Len() {
		t.Error("different seeds produced identical graphs")
	}
}

// TestChunkConcatenationEqualsGenerate: Chunk(0..P-1) concatenated equals
// Generate for every model.
func TestChunkConcatenationEqualsGenerate(t *testing.T) {
	params := ModelParams{
		N: 500, M: 1500, P: 0.01, AvgDeg: 6, Gamma: 3.0, D: 2, Scale: 9,
	}
	opt := Options{Seed: 11, PEs: 4, Workers: 2}
	for _, model := range Models() {
		gen, err := New(model, params, opt)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := gen.Generate()
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		var concat EdgeList
		concat.N = whole.N
		for pe := uint64(0); pe < gen.PEs(); pe++ {
			part, err := gen.Chunk(pe)
			if err != nil {
				t.Fatalf("%s chunk %d: %v", model, pe, err)
			}
			concat.Edges = append(concat.Edges, part...)
		}
		whole.Sort()
		concat.Sort()
		if whole.Len() != concat.Len() {
			t.Fatalf("%s: chunk concatenation has %d edges, Generate %d", model, concat.Len(), whole.Len())
		}
		for i := range whole.Edges {
			if whole.Edges[i] != concat.Edges[i] {
				t.Fatalf("%s: edge %d differs", model, i)
			}
		}
	}
}

// TestDegreeExpectations: coarse model-level sanity for the main models.
func TestDegreeExpectations(t *testing.T) {
	opt := Options{Seed: 3, PEs: 8, Workers: 8}

	// G(n,m) undirected: avg degree = 2m/n.
	el, err := GNM(1<<12, 1<<14, false, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(el)
	want := 2.0 * float64(1<<14) / float64(1<<12)
	if math.Abs(s.AvgDegree-want) > 1e-9 {
		t.Errorf("gnm avg degree %v, want %v", s.AvgDegree, want)
	}

	// RGG 2D at the paper's radius (0.55 sqrt(ln n / n), slightly below
	// the exact threshold ~0.564): a giant component with at most a few
	// stragglers, and average degree ~ n*pi*r^2.
	n := uint64(1 << 11)
	r := RGGConnectivityRadius(n, 2)
	el, err = RGG2D(n, r, opt)
	if err != nil {
		t.Fatal(err)
	}
	s = ComputeStats(el)
	if s.Components > int(n/50) {
		t.Errorf("rgg at connectivity radius has %d components", s.Components)
	}
	wantDeg := float64(n) * math.Pi * r * r
	if s.AvgDegree < wantDeg*0.8 || s.AvgDegree > wantDeg*1.1 {
		t.Errorf("rgg avg degree %v, want ~%v", s.AvgDegree, wantDeg)
	}

	// RDG 2D periodic: avg degree exactly 6.
	el, err = RDG2D(1<<11, opt)
	if err != nil {
		t.Fatal(err)
	}
	s = ComputeStats(el)
	if math.Abs(s.AvgDegree-6) > 0.1 {
		t.Errorf("rdg2d avg degree %v, want 6", s.AvgDegree)
	}

	// BA: m = n*d edges.
	el, err = BA(1<<12, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if el.Len() != (1<<12)*5 {
		t.Errorf("ba edge count %d", el.Len())
	}
}

// TestRHGAndSRHGSameModel: both hyperbolic generators target the same
// distribution — their average degrees should be close.
func TestRHGAndSRHGSameModel(t *testing.T) {
	opt := Options{Seed: 5, PEs: 4, Workers: 4}
	a, err := RHG(1<<13, 10, 2.9, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SRHG(1<<13, 10, 2.9, opt)
	if err != nil {
		t.Fatal(err)
	}
	da := ComputeStats(a).AvgDegree
	db := ComputeStats(b).AvgDegree
	if math.Abs(da-db)/da > 0.15 {
		t.Errorf("rhg avg degree %v vs srhg %v", da, db)
	}
}

func TestRoundTripIO(t *testing.T) {
	el, err := GNM(100, 300, true, Options{Seed: 1, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, el); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeListText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != el.N || back.Len() != el.Len() {
		t.Fatal("text round trip mismatch")
	}
	buf.Reset()
	if err := WriteEdgeListBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	back, err = ReadEdgeListBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != el.N || back.Len() != el.Len() {
		t.Fatal("binary round trip mismatch")
	}
}

func TestUnknownModel(t *testing.T) {
	if _, err := New("bogus", ModelParams{}, Options{}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestInvalidParamsSurface(t *testing.T) {
	if _, err := GNM(10, 1000, false, Options{}); err == nil {
		t.Error("infeasible m accepted")
	}
	if _, err := GNP(10, 1.5, false, Options{}); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := RHG(100, 8, 1.5, Options{}); err == nil {
		t.Error("gamma < 2 accepted")
	}
	if _, err := RGG2D(100, 0, Options{}); err == nil {
		t.Error("r = 0 accepted")
	}
}
