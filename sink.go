package kagen

import (
	"fmt"
	"io"
	"os"

	"repro/internal/storage"
)

// OpenSink opens a streaming Sink on a destination URI — the single
// entry point behind which the sink constructor family lives. The
// destination decides where the bytes go, the format decides what they
// look like:
//
//	""            stdout
//	"-"           stdout
//	"graph.bin"   local file (file:// optional)
//	"s3://b/k"    object store (striped multipart upload)
//	"mem://s/k"   in-memory backend (tests)
//
// A single-object destination is written through the backend's
// single-shot writer: nothing is visible at the destination until the
// sink's Close, and a sink that saw an error aborts instead of
// publishing. With SinkSharded the destination is a directory (or
// object-store prefix) receiving one self-contained shard per PE, each
// created exclusively — a pre-existing shard is an error, never a
// silent truncate.
func OpenSink(dest string, format Format, opts ...SinkOption) (Sink, error) {
	var cfg sinkConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.sharded {
		if dest == "" || dest == "-" {
			return nil, fmt.Errorf("kagen: sharded output needs a directory or URI destination, not stdout")
		}
		prefix := cfg.prefix
		if prefix == "" {
			prefix = "kagen"
		}
		be, err := storage.Resolve(dest)
		if err != nil {
			return nil, err
		}
		return &ShardedSink{dest: dest, prefix: prefix, format: format, be: be}, nil
	}
	if dest == "" || dest == "-" {
		return NewFormatSink(os.Stdout, format), nil
	}
	be, err := storage.Resolve(dest)
	if err != nil {
		return nil, err
	}
	w, err := be.Create(dest, false)
	if err != nil {
		return nil, err
	}
	return &objectSink{inner: NewFormatSink(w, format), w: w}, nil
}

// SinkOption configures OpenSink.
type SinkOption func(*sinkConfig)

type sinkConfig struct {
	sharded bool
	prefix  string
}

// SinkSharded makes OpenSink write one self-contained edge-list file per
// PE under the destination, named <prefix>-pe<id>.<ext> (prefix "kagen"
// when empty) — the per-PE partitioned output a distributed consumer
// expects.
func SinkSharded(prefix string) SinkOption {
	return func(c *sinkConfig) {
		c.sharded = true
		c.prefix = prefix
	}
}

// objectSink runs a format sink into a backend's single-shot writer and
// ties the sink lifecycle to the object lifecycle: a clean Close
// finalizes (publishes) the object, a Close after any sink error aborts
// it so a failed run never leaves a plausible-looking partial object at
// the destination.
type objectSink struct {
	inner  Sink
	w      storage.Writer
	failed bool
}

func (s *objectSink) track(err error) error {
	if err != nil {
		s.failed = true
	}
	return err
}

func (s *objectSink) Begin(n, pes uint64) error           { return s.track(s.inner.Begin(n, pes)) }
func (s *objectSink) Batch(pe uint64, edges []Edge) error { return s.track(s.inner.Batch(pe, edges)) }
func (s *objectSink) EndPE(pe uint64) error               { return s.track(s.inner.EndPE(pe)) }

func (s *objectSink) Close() error {
	err := s.inner.Close()
	if err != nil || s.failed {
		s.w.Abort()
		if err == nil {
			err = fmt.Errorf("kagen: sink aborted after earlier write error")
		}
		return err
	}
	return s.w.Finalize()
}

// shardDest names one PE's shard under a sharded destination.
func shardDest(dest, prefix string, pe uint64, f Format) string {
	return storage.Join(dest, fmt.Sprintf("%s-pe%05d.%s", prefix, pe, f.Ext()))
}

// ReadEdgeListFrom reads one edge-list object from a destination URI
// ("" and "-" read stdin), decompressing the gzip formats. It is the
// backend-aware counterpart of ReadEdgeListFile: a bare path reads the
// local filesystem, s3:// streams straight from the object store.
func ReadEdgeListFrom(src string, f Format) (*EdgeList, error) {
	if src == "" || src == "-" {
		return ReadEdgeList(os.Stdin, f)
	}
	be, err := storage.Resolve(src)
	if err != nil {
		return nil, err
	}
	r, err := be.Open(src)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return ReadEdgeList(io.Reader(r), f)
}

// ReadShardedEdgeListFrom reads the per-PE shards written by a sharded
// sink under a destination URI and merges them in PE order.
func ReadShardedEdgeListFrom(dest, prefix string, format Format, pes uint64) (*EdgeList, error) {
	merged := &EdgeList{}
	for pe := uint64(0); pe < pes; pe++ {
		el, err := ReadEdgeListFrom(shardDest(dest, prefix, pe, format), format)
		if err != nil {
			return nil, err
		}
		if el.N > merged.N {
			merged.N = el.N
		}
		merged.Edges = append(merged.Edges, el.Edges...)
	}
	return merged, nil
}
