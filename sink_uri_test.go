package kagen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestOpenSinkObjectURI: a single-object destination round-trips through
// the backend, and nothing is visible at the destination until the clean
// Close publishes it.
func TestOpenSinkObjectURI(t *testing.T) {
	dest := "mem://sinkuri-obj/graph.txt"
	s, err := OpenSink(dest, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	if err := s.Begin(4, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Batch(0, edges); err != nil {
		t.Fatal(err)
	}
	if err := s.EndPE(0); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEdgeListFrom(dest, FormatText); err == nil {
		t.Fatal("object visible before the sink's Close published it")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListFrom(dest, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	requireSameList(t, "object URI", got, &EdgeList{N: 4, Edges: edges})
}

// TestOpenSinkShardedURI: a sharded destination on an object backend
// writes one self-contained shard per PE, read back and merged in PE
// order by the sharded reader.
func TestOpenSinkShardedURI(t *testing.T) {
	dest := "mem://sinkuri-sharded/out"
	s, err := OpenSink(dest, FormatText, SinkSharded("g"))
	if err != nil {
		t.Fatal(err)
	}
	e0 := []Edge{{U: 0, V: 1}}
	e1 := []Edge{{U: 2, V: 3}, {U: 3, V: 0}}
	if err := s.Begin(4, 2); err != nil {
		t.Fatal(err)
	}
	for pe, edges := range [][]Edge{e0, e1} {
		if err := s.Batch(uint64(pe), edges); err != nil {
			t.Fatal(err)
		}
		if err := s.EndPE(uint64(pe)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShardedEdgeListFrom(dest, "g", FormatText, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireSameList(t, "sharded URI", got, &EdgeList{N: 4, Edges: append(append([]Edge{}, e0...), e1...)})
}

// TestShardedSinkRefusesDirtyDestination: a shard already present at the
// destination is an error at open time — never a silent truncate. The
// pre-existing bytes must survive untouched.
func TestShardedSinkRefusesDirtyDestination(t *testing.T) {
	dir := t.TempDir()
	stale := []byte("precious bytes from an earlier run\n")
	path := shardDest(dir, "g", 0, FormatText)
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSink(dir, FormatText, SinkSharded("g"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(4, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Batch(0, []Edge{{U: 0, V: 1}}); err == nil {
		t.Fatal("sink overwrote an existing shard")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(stale) {
		t.Fatalf("existing shard was modified: %q", b)
	}

	// Same contract on an object backend.
	dest := "mem://sinkuri-dirty/out"
	s2, err := OpenSink(dest, FormatText, SinkSharded("g"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Begin(4, 1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Batch(0, []Edge{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.EndPE(0); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenSink(dest, FormatText, SinkSharded("g"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Begin(4, 1); err != nil {
		t.Fatal(err)
	}
	if err := s3.Batch(0, []Edge{{U: 0, V: 1}}); err == nil {
		t.Fatal("sink overwrote an existing object-store shard")
	}
}

// TestOpenSinkRejectsBadDestinations: sharded output cannot go to
// stdout, and an unknown scheme fails at open time, not mid-stream.
func TestOpenSinkRejectsBadDestinations(t *testing.T) {
	if _, err := OpenSink("-", FormatText, SinkSharded("")); err == nil {
		t.Fatal("sharded sink accepted stdout")
	}
	if _, err := OpenSink("gopher://x/y", FormatText); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestOpenSinkFileURI: file:// destinations are the local filesystem.
func TestOpenSinkFileURI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graph.txt")
	s, err := OpenSink("file://"+path, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	edges := []Edge{{U: 0, V: 1}}
	if err := s.Begin(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Batch(0, edges); err != nil {
		t.Fatal(err)
	}
	if err := s.EndPE(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "0 1") {
		t.Fatalf("file:// output missing edges: %q", b)
	}
}
