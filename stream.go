package kagen

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ba"
	"repro/internal/gnm"
	"repro/internal/gnp"
	"repro/internal/graph"
	"repro/internal/pe"
	"repro/internal/rdg"
	"repro/internal/rgg"
	"repro/internal/rmat"
	"repro/internal/sbm"
	"repro/internal/srhg"
)

// Streamer generates a chunk's edges through a callback without
// materializing them, enabling generation of graphs larger than memory —
// the "full streaming approach" the paper names as the way past the
// per-core memory limit of its experiments (§8.2, §9). The edge order
// within a chunk is deterministic and identical to the corresponding
// Generator's Chunk output.
//
// Every model streams except the in-memory RHG, which remains
// materialize-only because sRHG supersedes it for streaming (see
// AsStreamer). The sampling-stream models (G(n,m), G(n,p), SBM, BA,
// R-MAT) emit edges straight from their per-chunk sample streams — the
// undirected ER variants and SBM walk their triangular chunk row pair by
// pair, deriving each pair's count on demand, so no per-pair buffering
// remains; the spatial models (RGG, RDG) emit neighborhood edges cell by
// cell while holding only their grid-cell context, and sRHG's annulus
// sweep emits edges as node tokens meet active requests, holding only the
// sweep state.
//
// Use Stream to run all PEs of a Streamer on a worker pool and deliver the
// chunks to a Sink in deterministic PE order.
type Streamer interface {
	// StreamChunk calls emit for every local edge of the logical PE.
	StreamChunk(pe uint64, emit func(Edge)) error
	// PEs returns the number of logical PEs.
	PEs() uint64
	// N returns the number of vertices of the instance.
	N() uint64
}

// AsStreamer returns the streaming view of a registry Generator. It
// reports false for the single materialize-only model: the in-memory RHG,
// which sRHG supersedes for streaming.
func AsStreamer(g Generator) (Streamer, bool) {
	switch t := g.(type) {
	case gnmGen:
		return gnmStreamer{t.p}, true
	case gnpGen:
		return gnpStreamer{t.p}, true
	case sbmGen:
		return sbmStreamer{t.p}, true
	case baGen:
		return baStreamer{t.p}, true
	case rmatGen:
		return rmatStreamer{t.p}, true
	case rggGen:
		return rggStreamer{t.p}, true
	case rdgGen:
		return rdgStreamer{t.p}, true
	case srhgGen:
		return srhgStreamer{t.p}, true
	}
	return nil, false
}

func checkPE(pe, pes uint64) error {
	if pe >= pes {
		return fmt.Errorf("kagen: PE %d out of range [0, %d)", pe, pes)
	}
	return nil
}

// NewGNMStreamer returns a streaming G(n,m) generator. The directed
// variant emits each PE's row-partitioned sample stream; the undirected
// variant walks the PE's triangular chunk row, deriving each pair's edge
// count by an O(log P) descent of the splitting recursion, so neither
// buffers anything per pair.
func NewGNMStreamer(n, m uint64, directed bool, opt Options) Streamer {
	return gnmStreamer{gnm.Params{N: n, M: m, Directed: directed, Seed: opt.Seed, Chunks: opt.pes()}}
}

type gnmStreamer struct{ p gnm.Params }

func (g gnmStreamer) PEs() uint64 { return g.p.Chunks }
func (g gnmStreamer) N() uint64   { return g.p.N }

func (g gnmStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if err := checkPE(pe, g.p.Chunks); err != nil {
		return err
	}
	gnm.StreamChunk(g.p, pe, emit)
	return nil
}

// NewGNPStreamer returns a streaming G(n,p) generator (directed or
// undirected; the undirected variant streams its triangular chunk row
// pair by pair with independent binomial pair counts).
func NewGNPStreamer(n uint64, p float64, directed bool, opt Options) Streamer {
	return gnpStreamer{gnp.Params{N: n, P: p, Directed: directed, Seed: opt.Seed, Chunks: opt.pes()}}
}

type gnpStreamer struct{ p gnp.Params }

func (g gnpStreamer) PEs() uint64 { return g.p.Chunks }
func (g gnpStreamer) N() uint64   { return g.p.N }

func (g gnpStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if err := checkPE(pe, g.p.Chunks); err != nil {
		return err
	}
	gnp.StreamChunk(g.p, pe, emit)
	return nil
}

// NewSBMStreamer returns a streaming planted-partition stochastic block
// model generator: per-block undirected G(n,p)-style streams composed
// along each PE's triangular chunk row, seeded by the (chunk pair, block
// pair) identity.
func NewSBMStreamer(n uint64, blocks int, pIn, pOut float64, opt Options) Streamer {
	return sbmStreamer{sbm.PlantedPartition(n, blocks, pIn, pOut, opt.Seed, opt.pes())}
}

type sbmStreamer struct{ p sbm.Params }

func (g sbmStreamer) PEs() uint64 { return g.p.Chunks }
func (g sbmStreamer) N() uint64   { return g.p.N() }

func (g sbmStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if err := checkPE(pe, g.p.Chunks); err != nil {
		return err
	}
	sbm.StreamChunk(g.p, pe, emit)
	return nil
}

// NewBAStreamer returns a streaming Barabási–Albert generator.
func NewBAStreamer(n, d uint64, opt Options) Streamer {
	return baStreamer{ba.Params{N: n, D: d, Seed: opt.Seed, Chunks: opt.pes()}}
}

type baStreamer struct{ p ba.Params }

func (g baStreamer) PEs() uint64 { return g.p.Chunks }
func (g baStreamer) N() uint64   { return g.p.N }

func (g baStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if err := checkPE(pe, g.p.Chunks); err != nil {
		return err
	}
	ba.StreamChunk(g.p, pe, emit)
	return nil
}

// NewRMATStreamer returns a streaming R-MAT generator.
func NewRMATStreamer(scale uint, m uint64, opt Options) Streamer {
	return rmatStreamer{rmat.Params{Scale: scale, M: m, Seed: opt.Seed, Chunks: opt.pes()}}
}

type rmatStreamer struct{ p rmat.Params }

func (g rmatStreamer) PEs() uint64 { return g.p.Chunks }
func (g rmatStreamer) N() uint64   { return g.p.N() }

func (g rmatStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if err := checkPE(pe, g.p.Chunks); err != nil {
		return err
	}
	rmat.StreamChunk(g.p, pe, emit)
	return nil
}

// NewRGGStreamer returns a streaming random geometric graph generator in
// dim (2 or 3) dimensions: each PE emits its neighborhood edges cell by
// cell, holding only the memoized points of visited grid cells.
func NewRGGStreamer(n uint64, r float64, dim int, opt Options) Streamer {
	return rggStreamer{rgg.Params{N: n, R: r, Dim: dim, Seed: opt.Seed, Chunks: opt.pes()}}
}

type rggStreamer struct{ p rgg.Params }

func (g rggStreamer) PEs() uint64 { return g.p.Chunks }
func (g rggStreamer) N() uint64   { return g.p.N }

func (g rggStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if err := checkPE(pe, g.p.Chunks); err != nil {
		return err
	}
	rgg.StreamChunk(g.p, pe, emit)
	return nil
}

// NewRDGStreamer returns a streaming random Delaunay graph generator in
// dim (2 or 3) dimensions: each PE triangulates one chunk at a time and
// emits the simplex-derived edges before the next chunk's triangulation
// is built.
func NewRDGStreamer(n uint64, dim int, opt Options) Streamer {
	return rdgStreamer{rdg.Params{N: n, Dim: dim, Seed: opt.Seed, Chunks: opt.pes()}}
}

type rdgStreamer struct{ p rdg.Params }

func (g rdgStreamer) PEs() uint64 { return g.p.Chunks }
func (g rdgStreamer) N() uint64   { return g.p.N }

func (g rdgStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if err := checkPE(pe, g.p.Chunks); err != nil {
		return err
	}
	rdg.StreamChunk(g.p, pe, emit)
	return nil
}

// NewSRHGStreamer returns a streaming random hyperbolic graph generator:
// the sRHG annulus sweep emits edges as soon as a node token meets an
// active request, holding only the sweep state of the PE's sector.
func NewSRHGStreamer(n uint64, avgDeg, gamma float64, opt Options) Streamer {
	return srhgStreamer{srhg.Params{N: n, AvgDeg: avgDeg, Gamma: gamma, Seed: opt.Seed, Chunks: opt.pes()}}
}

type srhgStreamer struct{ p srhg.Params }

func (g srhgStreamer) PEs() uint64 { return g.p.Chunks }
func (g srhgStreamer) N() uint64   { return g.p.N }

func (g srhgStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if err := checkPE(pe, g.p.Chunks); err != nil {
		return err
	}
	srhg.StreamChunk(g.p, pe, emit)
	return nil
}

// Stream runs every PE of s concurrently on at most `workers` goroutines
// (0 selects GOMAXPROCS) and writes the edge stream to sink: Begin once,
// then per PE — in increasing PE order, identical for every worker count —
// zero or more Batch calls followed by one EndPE call, then Close. The
// head PE's batches reach the sink while that chunk is still generating,
// so the pipeline buffers a bounded number of fixed-size batches instead
// of whole chunks (see pe.Stream). Close is called even when a chunk or
// sink error aborts the run; the first error is returned. A chunk that
// fails to generate aborts the run, but batches it emitted before failing
// may already have reached the sink (the registry models validate their
// parameters before emitting anything, so their failures produce no
// partial output).
func Stream(s Streamer, workers int, sink Sink) error {
	return StreamBatched(s, workers, pe.DefaultBatchSize, sink)
}

// StreamBatched is Stream with an explicit edge-batch capacity (0 selects
// pe.DefaultBatchSize). The edge sequence the sink observes is identical
// for every batch size; only the Batch call boundaries move.
func StreamBatched(s Streamer, workers, batchSize int, sink Sink) error {
	return StreamChunksFrom(s, 0, s.PEs(), workers, batchSize, sink)
}

// StreamChunksFrom is the resumable entry point of the streaming stack:
// it streams only the chunk range [first, first+count) of s to sink, with
// the same per-PE call protocol and the same deterministic order as a
// full run restricted to that range. Because every chunk derives its
// random decisions from (seed, chunk identity) alone, starting at an
// arbitrary chunk costs only the model's O(log P) per-chunk setup — no
// replay of earlier chunks — which is what makes chunk-granular
// checkpoint/resume practical (see internal/job). Begin still announces
// the full instance (N, PEs); Close is called exactly once, also on
// abort.
func StreamChunksFrom(s Streamer, first, count uint64, workers, batchSize int, sink Sink) error {
	P := s.PEs()
	if first > P || count > P-first {
		err := fmt.Errorf("kagen: chunk range [%d, %d) outside [0, %d)", first, first+count, P)
		if cerr := sink.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return err
	}
	err := sink.Begin(s.N(), P)
	if err == nil {
		var mu sync.Mutex
		var chunkErr error
		err = pe.StreamRangeBatched(int(first), int(count), workers, batchSize, func(peID int, emit func(graph.Edge)) {
			if e := s.StreamChunk(uint64(peID), emit); e != nil {
				mu.Lock()
				if chunkErr == nil {
					chunkErr = e
				}
				mu.Unlock()
			}
		}, func(peID int, batch []graph.Edge, final bool) error {
			mu.Lock()
			e := chunkErr
			mu.Unlock()
			if e != nil {
				return e // abort delivery once a chunk failed to generate
			}
			if len(batch) > 0 {
				if err := sink.Batch(uint64(peID), batch); err != nil {
					return err
				}
			}
			if final {
				return sink.EndPE(uint64(peID))
			}
			return nil
		})
		if err == nil {
			err = chunkErr
		}
	}
	if cerr := sink.Close(); err == nil {
		err = cerr
	}
	return err
}

// Compile-time interface checks.
var (
	_ Streamer = gnmStreamer{}
	_ Streamer = gnpStreamer{}
	_ Streamer = sbmStreamer{}
	_ Streamer = baStreamer{}
	_ Streamer = rmatStreamer{}
	_ Streamer = rggStreamer{}
	_ Streamer = rdgStreamer{}
	_ Streamer = srhgStreamer{}
)
