package kagen

import (
	"fmt"

	"repro/internal/ba"
	"repro/internal/gnm"
	"repro/internal/gnp"
	"repro/internal/rmat"
)

// Streamer generates a chunk's edges through a callback without
// materializing them, enabling generation of graphs larger than memory —
// the "full streaming approach" the paper names as the way past the
// per-core memory limit of its experiments (§8.2, §9). The edge order
// within a chunk is deterministic.
//
// Streaming is available for the models whose chunks are pure sampling
// streams (G(n,m), G(n,p), BA, R-MAT); the spatial models need their cell
// and annulus context materialized and expose only Chunk.
type Streamer interface {
	// StreamChunk calls emit for every local edge of the logical PE.
	StreamChunk(pe uint64, emit func(Edge)) error
	// PEs returns the number of logical PEs.
	PEs() uint64
}

// NewGNMStreamer returns a streaming directed G(n,m) generator.
// (The undirected variant buffers per chunk pair internally and is not
// exposed as a streamer.)
func NewGNMStreamer(n, m uint64, opt Options) Streamer {
	return gnmStreamer{gnm.Params{N: n, M: m, Directed: true, Seed: opt.Seed, Chunks: opt.pes()}}
}

type gnmStreamer struct{ p gnm.Params }

func (g gnmStreamer) PEs() uint64 { return g.p.Chunks }

func (g gnmStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if pe >= g.p.Chunks {
		return fmt.Errorf("kagen: PE %d out of range", pe)
	}
	gnm.StreamDirectedChunk(g.p, pe, emit)
	return nil
}

// NewGNPStreamer returns a streaming directed G(n,p) generator.
func NewGNPStreamer(n uint64, p float64, opt Options) Streamer {
	return gnpStreamer{gnp.Params{N: n, P: p, Directed: true, Seed: opt.Seed, Chunks: opt.pes()}}
}

type gnpStreamer struct{ p gnp.Params }

func (g gnpStreamer) PEs() uint64 { return g.p.Chunks }

func (g gnpStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if pe >= g.p.Chunks {
		return fmt.Errorf("kagen: PE %d out of range", pe)
	}
	gnp.StreamDirectedChunk(g.p, pe, emit)
	return nil
}

// NewBAStreamer returns a streaming Barabási–Albert generator.
func NewBAStreamer(n, d uint64, opt Options) Streamer {
	return baStreamer{ba.Params{N: n, D: d, Seed: opt.Seed, Chunks: opt.pes()}}
}

type baStreamer struct{ p ba.Params }

func (g baStreamer) PEs() uint64 { return g.p.Chunks }

func (g baStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if pe >= g.p.Chunks {
		return fmt.Errorf("kagen: PE %d out of range", pe)
	}
	ba.StreamChunk(g.p, pe, emit)
	return nil
}

// NewRMATStreamer returns a streaming R-MAT generator.
func NewRMATStreamer(scale uint, m uint64, opt Options) Streamer {
	return rmatStreamer{rmat.Params{Scale: scale, M: m, Seed: opt.Seed, Chunks: opt.pes()}}
}

type rmatStreamer struct{ p rmat.Params }

func (g rmatStreamer) PEs() uint64 { return g.p.Chunks }

func (g rmatStreamer) StreamChunk(pe uint64, emit func(Edge)) error {
	if err := g.p.Validate(); err != nil {
		return err
	}
	if pe >= g.p.Chunks {
		return fmt.Errorf("kagen: PE %d out of range", pe)
	}
	rmat.StreamChunk(g.p, pe, emit)
	return nil
}

// Compile-time interface checks.
var (
	_ Streamer = gnmStreamer{}
	_ Streamer = gnpStreamer{}
	_ Streamer = baStreamer{}
	_ Streamer = rmatStreamer{}
)
