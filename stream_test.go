package kagen

import (
	"testing"
)

// TestStreamersMatchChunk: the streaming path must emit exactly the edges
// of the materializing path, in the same deterministic order.
func TestStreamersMatchChunk(t *testing.T) {
	opt := Options{Seed: 17, PEs: 4}
	cases := []struct {
		name     string
		streamer Streamer
		gen      Generator
	}{
		{"gnm", NewGNMStreamer(1000, 8000, true, opt), NewGNM(1000, 8000, true, opt)},
		{"gnm_undirected", NewGNMStreamer(1000, 8000, false, opt), NewGNM(1000, 8000, false, opt)},
		{"gnp", NewGNPStreamer(1000, 0.01, true, opt), NewGNP(1000, 0.01, true, opt)},
		{"gnp_undirected", NewGNPStreamer(1000, 0.01, false, opt), NewGNP(1000, 0.01, false, opt)},
		{"sbm", NewSBMStreamer(1000, 4, 0.04, 0.004, opt), NewSBM(1000, 4, 0.04, 0.004, opt)},
		{"ba", NewBAStreamer(1000, 3, opt), NewBA(1000, 3, opt)},
		{"rmat", NewRMATStreamer(10, 5000, opt), NewRMAT(10, 5000, opt)},
	}
	for _, c := range cases {
		for pe := uint64(0); pe < c.streamer.PEs(); pe++ {
			want, err := c.gen.Chunk(pe)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			var got []Edge
			if err := c.streamer.StreamChunk(pe, func(e Edge) { got = append(got, e) }); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s pe %d: %d streamed vs %d materialized", c.name, pe, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s pe %d: edge %d differs (%v vs %v)", c.name, pe, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStreamBatchSizeInvariance: the sink must observe the identical edge
// sequence for every batch size — batch boundaries carry no meaning. This
// is the kagen-level referee for the batch pipeline; the pe package holds
// the generic counterpart. The undirected triangular streamers are
// included explicitly: their per-pair emission must survive arbitrary
// re-batching too.
func TestStreamBatchSizeInvariance(t *testing.T) {
	opt := Options{Seed: 9, PEs: 4}
	cases := []struct {
		name Model
		s    Streamer
	}{
		{"gnm", NewGNMStreamer(600, 4000, true, opt)},
		{"gnm_undirected", NewGNMStreamer(600, 4000, false, opt)},
		{"gnp_undirected", NewGNPStreamer(600, 0.02, false, opt)},
		{"sbm", NewSBMStreamer(600, 3, 0.05, 0.005, opt)},
	}
	for _, c := range cases {
		want := &collectSink{}
		if err := StreamBatched(c.s, 1, 0, want); err != nil {
			t.Fatal(err)
		}
		for _, batchSize := range []int{1, 7, 4096} {
			for _, workers := range []int{1, 3} {
				got := &collectSink{}
				if err := StreamBatched(c.s, workers, batchSize, got); err != nil {
					t.Fatalf("%s batch=%d workers=%d: %v", c.name, batchSize, workers, err)
				}
				if !got.closed {
					t.Fatalf("%s batch=%d workers=%d: sink not closed", c.name, batchSize, workers)
				}
				sameEdges(t, c.name, "batch-size invariance", got.edges, want.edges)
			}
		}
	}
}

func TestStreamerErrors(t *testing.T) {
	s := NewGNMStreamer(10, 1000, false, Options{PEs: 2}) // m too large
	if err := s.StreamChunk(0, func(Edge) {}); err == nil {
		t.Error("invalid params accepted")
	}
	s = NewGNMStreamer(100, 50, true, Options{PEs: 2})
	if err := s.StreamChunk(5, func(Edge) {}); err == nil {
		t.Error("out-of-range PE accepted")
	}
}

// TestStreamerConstantMemoryShape: streaming a large chunk must not retain
// edges — we can only check behaviourally that the callback count matches
// the expected count without building a slice.
func TestStreamerCounts(t *testing.T) {
	const n, m = 1 << 14, 1 << 18
	s := NewGNMStreamer(n, m, true, Options{Seed: 3, PEs: 8})
	total := 0
	for pe := uint64(0); pe < s.PEs(); pe++ {
		if err := s.StreamChunk(pe, func(Edge) { total++ }); err != nil {
			t.Fatal(err)
		}
	}
	if total != m {
		t.Fatalf("streamed %d edges, want %d", total, m)
	}
}

// TestUndirectedStreamerCounts: the undirected triangular decomposition
// must emit exactly 2m locally-oriented copies across all PEs — every
// sampled pair once per endpoint owner — without any PE holding per-pair
// state.
func TestUndirectedStreamerCounts(t *testing.T) {
	const n, m = 1 << 13, 1 << 16
	s := NewGNMStreamer(n, m, false, Options{Seed: 3, PEs: 8})
	total := 0
	for pe := uint64(0); pe < s.PEs(); pe++ {
		if err := s.StreamChunk(pe, func(Edge) { total++ }); err != nil {
			t.Fatal(err)
		}
	}
	if total != 2*m {
		t.Fatalf("streamed %d locally-oriented copies, want %d", total, 2*m)
	}
}
